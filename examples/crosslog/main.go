// Crosslog reproduces the shape of the paper's case study 2: a full
// machine over two consecutive windows (a hot, busy shift and a cooler,
// quieter one), each scored against its own baseline band, with the two
// mrDMD spectra contrasted and persistent hardware-error nodes singled
// out across windows.
//
// Writes crosslog_report.html (both rack views + both spectra) to -out.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"imrdmd"
	"imrdmd/internal/hwlog"
	"imrdmd/internal/joblog"
	"imrdmd/internal/telemetry"
	"imrdmd/internal/viz"
)

func main() {
	log.SetFlags(0)
	outDir := flag.String("out", ".", "output directory")
	nodes := flag.Int("nodes", 256, "nodes (paper: 4,392)")
	stepsPerWindow := flag.Int("steps", 1440, "steps per 8-hour window (paper: 8 h at 20 s)")
	flag.Parse()

	prof := telemetry.ThetaEnv()
	total := 2 * *stepsPerWindow
	horizon := float64(total) * prof.SampleInterval

	// Busy first shift, quiet second shift.
	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: *nodes, Horizon: horizon / 2, Seed: 31,
		MeanInterarrival: horizon / 200, MeanDuration: horizon / 6,
	})
	quiet := joblog.Simulate(joblog.SimConfig{
		NumNodes: *nodes, Horizon: horizon / 2, Seed: 32,
		MeanInterarrival: horizon / 20, MeanDuration: horizon / 12,
	})
	for _, j := range quiet.Jobs {
		j.Start += horizon / 2
		j.End += horizon / 2
		j.ID += 100000
		sched.Jobs = append(sched.Jobs, j)
	}
	sched.Horizon = horizon

	gen := telemetry.NewGenerator(prof, *nodes, 31)
	gen.Schedule = sched
	// A node that reports hardware errors in both windows — the
	// "persistent issue" the paper's Fig. 6(b) highlights.
	persistent := 77 % *nodes
	hlog := hwlog.Generate(hwlog.GenConfig{
		NumNodes: *nodes, Horizon: horizon, Seed: 31, BackgroundRate: 0.05,
		Bursts: []hwlog.Burst{
			{Node: persistent, Cat: hwlog.MachineCheck, Start: 0, End: horizon, Count: 24},
			{Node: (persistent + 50) % *nodes, Cat: hwlog.MachineCheck, Start: 0, End: horizon / 2, Count: 8},
		},
	})

	data := gen.Matrix(0, total)
	series := imrdmd.FromDense(*nodes, total, data.Data)
	report := &viz.Report{Title: "Case study 2: two shifts, two baselines"}
	spec := fmt.Sprintf("xc40 1 2 row0-0:0-%d 2 c:0-3 1 s:0-15 b:0 n:0", (*nodes+63)/64-1)

	var spectra []viz.Series
	for w := 0; w < 2; w++ {
		lo, hi := w**stepsPerWindow, (w+1)**stepsPerWindow
		win := series.Slice(lo, hi)
		a, err := imrdmd.New(imrdmd.Options{
			DT: prof.SampleInterval, MaxLevels: 7, MaxCycles: 2, UseSVHT: true, Parallel: true, Workers: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Stream in 1,000-step increments as the case study does.
		first := *stepsPerWindow * 7 / 8
		if err := a.InitialFit(win.Slice(0, first)); err != nil {
			log.Fatal(err)
		}
		if _, err := a.PartialFit(win.Slice(first, win.Steps())); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: ‖actual−recon‖_F = %.2f, modes = %d\n",
			w+1, a.ReconstructionError(), a.NumModes())

		// Per-window baseline band: hotter for the busy shift, cooler
		// for the quiet one (45–60 vs 30–45 in the paper).
		bandLo, bandHi := 45.0, 60.0
		name := "hot shift (45–60 °C baselines)"
		if w == 1 {
			bandLo, bandHi = 40.0, 52.0
			name = "cool shift (40–52 °C baselines)"
		}
		base := imrdmd.BaselineByMeanRange(win, bandLo, bandHi)
		if len(base) < 2 {
			log.Fatalf("window %d: baseline band [%g,%g] selected %d nodes", w+1, bandLo, bandHi, len(base))
		}
		z, err := a.ZScores(base, 0, math.Inf(1))
		if err != nil {
			log.Fatal(err)
		}
		errNodes := hlog.NodesWith(hwlog.MachineCheck, 4,
			float64(lo)*prof.SampleInterval, float64(hi)*prof.SampleInterval)
		var buf bytes.Buffer
		if err := imrdmd.RackView(&buf, spec,
			fmt.Sprintf("window %d — %s", w+1, name), z, errNodes, nil); err != nil {
			log.Fatal(err)
		}
		report.AddFigure(fmt.Sprintf("Rack view, window %d", w+1),
			fmt.Sprintf("%d baseline nodes; dark outlines mark machine-check nodes.", len(base)),
			buf.String())

		// Spectrum series for the Fig. 7 style comparison.
		pts := a.Spectrum()
		xs := make([]float64, 0, len(pts))
		ys := make([]float64, 0, len(pts))
		for _, p := range pts {
			xs = append(xs, p.Freq*1000) // mHz for readability
			ys = append(ys, p.Amp)
		}
		color := "#d62728" // hot window: red
		if w == 1 {
			color = "#1f77b4" // cool window: blue
		}
		spectra = append(spectra, viz.Series{Name: name, X: xs, Y: ys, Color: color, Points: true})
	}

	var specBuf bytes.Buffer
	if err := viz.RenderPlot(&specBuf, viz.PlotConfig{
		Title: "I-mrDMD spectra: hot vs cool shift", XLabel: "frequency (mHz)", YLabel: "mode amplitude",
	}, spectra...); err != nil {
		log.Fatal(err)
	}
	report.AddFigure("Spectrum comparison",
		"Red: busy/hot window. Blue: quiet/cool window (cf. paper Fig. 7).", specBuf.String())

	// Persistent-error callout.
	w1 := hlog.NodesWith(hwlog.MachineCheck, 4, 0, horizon/2)
	w2 := hlog.NodesWith(hwlog.MachineCheck, 4, horizon/2, horizon)
	both := intersect(w1, w2)
	report.AddTable("Persistent hardware errors",
		"Nodes reporting machine checks in both windows deserve attention regardless of temperature.",
		fmt.Sprintf("window 1: %v\nwindow 2: %v\npersistent: %v", w1, w2, both))
	fmt.Printf("persistent machine-check nodes: %v\n", both)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*outDir, "crosslog_report.html")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.Render(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}

func intersect(a, b []int) []int {
	set := map[int]bool{}
	for _, x := range a {
		set[x] = true
	}
	var out []int
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}
