// Quickstart: decompose a small multiscale signal with I-mrDMD, stream an
// update, and read the spectrum — the 90-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"imrdmd"
)

func main() {
	log.SetFlags(0)
	// 16 synthetic sensors over 768 steps: a slow trend every sensor
	// shares, a mid-frequency oscillation, and sensor noise. Sensors 3
	// and 11 run hot.
	const p, t = 16, 768
	rng := rand.New(rand.NewSource(7))
	s := imrdmd.NewSeries(p, t)
	for i := 0; i < p; i++ {
		base := 50.0
		if i == 3 || i == 11 {
			base = 65 // anomalously hot
		}
		phase := rng.Float64() * 2 * math.Pi
		for k := 0; k < t; k++ {
			tt := float64(k)
			v := base +
				3*math.Sin(2*math.Pi*tt/float64(t)) + // slow: one cycle over the window
				1*math.Sin(2*math.Pi*tt/48+phase) + // fast: every 48 steps
				0.3*rng.NormFloat64()
			s.Set(i, k, v)
		}
	}

	// Fit the first 512 steps, then stream the remaining 256 in.
	a, err := imrdmd.New(imrdmd.Options{DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.InitialFit(s.Slice(0, 512)); err != nil {
		log.Fatal(err)
	}
	stats, err := a.PartialFit(s.Slice(512, t))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("absorbed %d steps in %d update (drift %.3g)\n",
		a.Steps(), a.Updates(), stats.Drift)

	// The reconstruction is the denoised multiscale approximation.
	rel := a.ReconstructionError() / s.FrobNorm()
	fmt.Printf("modes=%d levels=%d relative reconstruction error=%.2f%%\n",
		a.NumModes(), a.Levels(), 100*rel)

	// Spectrum: where the energy lives in frequency.
	var slow, fast int
	for _, pt := range a.Spectrum() {
		if pt.Freq < 1.0/96 {
			slow++
		} else {
			fast++
		}
	}
	fmt.Printf("spectrum: %d slow modes, %d faster modes\n", slow, fast)

	// Baseline z-scores flag the two hot sensors.
	base := imrdmd.BaselineByMeanRange(s, 46, 57)
	z, err := a.ZScores(base, 0, math.Inf(1))
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range z {
		if imrdmd.ClassifyZ(v) == "hot" {
			fmt.Printf("sensor %2d: z=%+.2f  <-- flagged hot\n", i, v)
		}
	}
}
