// Gpumetrics mirrors the paper's Polaris scenario: per-GPU temperature
// streams (4 GPUs per node) analyzed online with I-mrDMD, comparing the
// cost of incremental updates against full refits — the §IV "Evaluation
// with GPU metrics data" experiment at laptop scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"imrdmd"
	"imrdmd/internal/joblog"
	"imrdmd/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	gpus := flag.Int("gpus", 512, "GPU sensors (paper: 5,824)")
	steps := flag.Int("steps", 3000, "time steps (paper: 16,329 at 3 s)")
	batches := flag.Int("batches", 4, "streamed update batches")
	flag.Parse()

	prof := telemetry.PolarisGPU()
	horizon := float64(*steps) * prof.SampleInterval
	nodes := *gpus / 4

	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon, Seed: 21,
		MeanInterarrival: horizon / 60, MeanDuration: horizon / 5,
	})
	// Four GPU sensors per node share the node's job schedule: expand the
	// schedule to GPU granularity by mapping GPU g -> node g/4.
	gpuSched := &joblog.Schedule{NumNodes: *gpus, Horizon: horizon}
	for _, j := range sched.Jobs {
		gj := j
		gj.Nodes = nil
		for _, n := range j.Nodes {
			for g := 0; g < 4; g++ {
				gj.Nodes = append(gj.Nodes, n*4+g)
			}
		}
		gpuSched.Jobs = append(gpuSched.Jobs, gj)
	}

	gen := telemetry.NewGenerator(prof, *gpus, 21)
	gen.Schedule = gpuSched
	data := gen.Matrix(0, *steps)
	series := imrdmd.FromDense(*gpus, *steps, data.Data)

	// The paper uses max_levels=9 for GPU metrics (more levels -> more
	// modes, because the GPU profile carries more fast-band energy).
	opts := imrdmd.Options{
		DT: prof.SampleInterval, MaxLevels: 7, MaxCycles: 2, UseSVHT: true,
		// One long-lived 4-lane pool (process-wide for Workers=4) serves
		// the whole streamed run.
		Parallel: true, Workers: 4,
	}

	// Streamed I-mrDMD.
	a, err := imrdmd.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	half := *steps / 2
	t0 := time.Now()
	if err := a.InitialFit(series.Slice(0, half)); err != nil {
		log.Fatal(err)
	}
	initDur := time.Since(t0)
	blk := (*steps - half) / *batches
	var updTotal time.Duration
	for b := 0; b < *batches; b++ {
		lo := half + b*blk
		hi := lo + blk
		if b == *batches-1 {
			hi = *steps
		}
		t0 = time.Now()
		if _, err := a.PartialFit(series.Slice(lo, hi)); err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		updTotal += d
		fmt.Printf("partial fit %d (+%d steps): %v\n", b+1, hi-lo, d.Round(time.Millisecond))
	}

	// Full refit comparator ("without our incremental algorithm" in §IV:
	// when a batch of new points lands, recompute mrDMD over everything).
	b, err := imrdmd.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	if err := b.InitialFit(series); err != nil {
		log.Fatal(err)
	}
	refit := time.Since(t0)

	meanUpd := updTotal / time.Duration(*batches)
	fmt.Printf("\ninitial fit (%d steps):            %v\n", half, initDur.Round(time.Millisecond))
	fmt.Printf("mean incremental update:          %v\n", meanUpd.Round(time.Millisecond))
	fmt.Printf("full recomputation (%d steps):  %v\n", *steps, refit.Round(time.Millisecond))
	if meanUpd < refit {
		fmt.Printf("absorbing a batch incrementally is %.1f× faster than recomputing\n",
			float64(refit)/float64(meanUpd))
	}
	fmt.Printf("modes=%d levels=%d rel.err=%.2f%%\n",
		a.NumModes(), a.Levels(), 100*a.ReconstructionError()/series.FrobNorm())
}
