// Thetamonitor reproduces the shape of the paper's case study 1 on a
// scaled-down Theta: nodes allocated to two projects stream temperature
// readings; I-mrDMD runs online; z-scores against a 46–57 °C baseline are
// rendered as a rack view; and hardware-log memory errors are overlaid so
// the multifidelity logs can be read together.
//
// Writes theta_rack.svg and theta_report.html into -out (default ".").
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"imrdmd"
	"imrdmd/internal/hwlog"
	"imrdmd/internal/joblog"
	"imrdmd/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	outDir := flag.String("out", ".", "output directory")
	nodes := flag.Int("nodes", 256, "compute nodes to monitor (paper: 871)")
	steps := flag.Int("steps", 2000, "time steps (paper: 2,000 at 20 s)")
	flag.Parse()

	prof := telemetry.ThetaEnv()
	horizon := float64(*steps) * prof.SampleInterval

	// Two projects drive the workload, as in case study 1.
	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: *nodes, Horizon: horizon, Seed: 11,
		MeanInterarrival: horizon / 40, MeanDuration: horizon / 4,
		Projects: []joblog.ProjectMix{
			{Name: "ClimateSim", Weight: 1, MeanSize: *nodes / 6, MaxSize: *nodes / 2},
			{Name: "LatticeQCD", Weight: 1, MeanSize: *nodes / 10, MaxSize: *nodes / 3},
		},
	})

	// Ground truth anomalies: two hot nodes, one stalled node, and two
	// nodes with correctable memory errors but no thermal signature.
	gen := telemetry.NewGenerator(prof, *nodes, 11)
	gen.Schedule = sched
	hotNodes := []int{17, 93 % *nodes}
	gen.Anomalies = []telemetry.Anomaly{
		{Kind: telemetry.HotNode, Node: hotNodes[0], Start: 0, End: horizon, Magnitude: 13},
		{Kind: telemetry.HotNode, Node: hotNodes[1], Start: horizon / 3, End: horizon, Magnitude: 10},
		{Kind: telemetry.StalledNode, Node: 41 % *nodes, Start: horizon / 2, End: horizon},
	}
	memErrNodes := []int{5, 123 % *nodes}
	hlog := hwlog.Generate(hwlog.GenConfig{
		NumNodes: *nodes, Horizon: horizon, Seed: 11, BackgroundRate: 0.02,
		Bursts: []hwlog.Burst{
			{Node: memErrNodes[0], Cat: hwlog.MemCorrectable, Start: 0, End: horizon, Count: 18},
			{Node: memErrNodes[1], Cat: hwlog.MemCorrectable, Start: horizon / 4, End: horizon, Count: 9},
		},
	})

	// Stream: initial fit on the first half, one update with the rest —
	// the same 1,000 + 1,000 shape as the case study.
	data := gen.Matrix(0, *steps)
	series := imrdmd.FromDense(*nodes, *steps, data.Data)
	a, err := imrdmd.New(imrdmd.Options{
		DT: prof.SampleInterval, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if err := a.InitialFit(series.Slice(0, *steps/2)); err != nil {
		log.Fatal(err)
	}
	initDur := time.Since(t0)
	t0 = time.Now()
	if _, err := a.PartialFit(series.Slice(*steps/2, *steps)); err != nil {
		log.Fatal(err)
	}
	updDur := time.Since(t0)
	fmt.Printf("initial fit %v, incremental update %v\n",
		initDur.Round(time.Millisecond), updDur.Round(time.Millisecond))
	fmt.Printf("‖actual − reconstruction‖_F = %.2f\n", a.ReconstructionError())

	// Z-scores against a baseline band covering normally idle and
	// normally busy nodes (the paper's 46–57 °C band, widened for this
	// profile's job-heat amplitude) so the injected anomalies stand out.
	base := imrdmd.BaselineByMeanRange(series, 46, 68)
	z, err := a.ZScores(base, 0, math.Inf(1))
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hotNodes {
		fmt.Printf("hot node %3d: z=%+.2f (%s)\n", h, z[h], imrdmd.ClassifyZ(z[h]))
	}
	memErrWindow := hlog.NodesWith(hwlog.MemCorrectable, 5, 0, horizon)
	for _, n := range memErrWindow {
		fmt.Printf("mem-error node %3d: z=%+.2f (%s) — errors without thermal signature\n",
			n, z[n], imrdmd.ClassifyZ(z[n]))
	}

	// Rack view: 256 nodes as 4 racks × 4 cabinets × 16 slots.
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	spec := fmt.Sprintf("xc40 1 2 row0-0:0-%d 2 c:0-3 1 s:0-15 b:0 n:0", (*nodes+63)/64-1)
	rackPath := filepath.Join(*outDir, "theta_rack.svg")
	f, err := os.Create(rackPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := imrdmd.RackView(f, spec, "Theta case study: z-scores with memory-error outlines",
		z, nil, memErrWindow); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote", rackPath)

	// Cross-log summary: how flagged nodes distribute over projects.
	flaggedByProject := map[string]int{}
	flagged, cold := 0, 0
	for i, v := range z {
		switch imrdmd.ClassifyZ(v) {
		case "hot":
			flagged++
			proj := "(idle)"
			if job, ok := sched.BusyAt(i, horizon*3/4); ok {
				proj = job.Project
			}
			flaggedByProject[proj]++
		case "cold":
			cold++
		}
	}
	fmt.Printf("%d nodes hot (z>2), %d cold (z<-1.5) of %d; utilization %.0f%%\n",
		flagged, cold, *nodes, 100*sched.Utilization(0, horizon))
	for proj, n := range flaggedByProject {
		fmt.Printf("  hot nodes running %s: %d\n", proj, n)
	}
}
