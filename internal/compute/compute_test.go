package compute

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCoversRange(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1001} {
		seen := make([]int32, n)
		e.ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestParallelForNilEngine(t *testing.T) {
	var e *Engine
	if w := e.Workers(); w != 1 {
		t.Fatalf("nil engine workers = %d", w)
	}
	sum := 0
	e.ParallelFor(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("nil engine ParallelFor sum = %d", sum)
	}
	done := false
	e.Do(func() { done = true })
	if !done {
		t.Fatal("nil engine Do did not run")
	}
	ran := false
	e.Go(func() { ran = true })
	if !ran {
		t.Fatal("nil engine Go must run synchronously")
	}
}

func TestNestedParallelForDoesNotDeadlock(t *testing.T) {
	e := NewEngine(3)
	defer e.Close()
	var total int64
	e.ParallelFor(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.ParallelFor(8, func(lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != 64 {
		t.Fatalf("nested total = %d, want 64", total)
	}
}

func TestNestedDoDoesNotDeadlock(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	var count int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			atomic.AddInt64(&count, 1)
			return
		}
		e.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(6)
	if count != 64 {
		t.Fatalf("leaf count = %d, want 64", count)
	}
}

func TestEngineGoroutineBound(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine(3) // 2 pool workers
	defer e.Close()
	var peak int32
	var cur int32
	e.ParallelFor(64, func(lo, hi int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Fatalf("concurrency peak %d exceeds 3 lanes", peak)
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d; want at most +2", before, after)
	}
}

func TestGoRunsSeriallyInOrder(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		e.Go(func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("async order[%d] = %d", i, v)
		}
	}
}

func TestClosedEngineRunsInline(t *testing.T) {
	e := NewEngine(4)
	e.Close()
	// Workers that have not yet observed quit may still take a band, so
	// accumulate atomically; the point is completion, not serialization.
	var sum int64
	e.ParallelFor(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&sum, int64(i))
		}
	})
	if sum != 45 {
		t.Fatalf("closed engine sum = %d", sum)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.GetF64(100)
	a[0] = 42
	ws.PutF64(a)
	b := ws.GetF64(100)
	if &a[0] != &b[0] {
		t.Fatal("expected pooled buffer to be reused")
	}
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("len=%d cap=%d, want 100/128", len(b), cap(b))
	}
	// A slightly larger request in the same class also hits the pool.
	ws.PutF64(b)
	c := ws.GetF64(120)
	if &a[0] != &c[0] {
		t.Fatal("same size class must reuse the buffer")
	}
	gets, hits := ws.Stats()
	if gets != 3 || hits != 2 {
		t.Fatalf("stats = %d gets / %d hits, want 3/2", gets, hits)
	}
}

func TestWorkspaceZeroAndNil(t *testing.T) {
	ws := NewWorkspace()
	a := ws.GetF64(64)
	for i := range a {
		a[i] = 1
	}
	ws.PutF64(a)
	z := ws.GetF64Zero(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetF64Zero[%d] = %v", i, v)
		}
	}
	var nilWS *Workspace
	b := nilWS.GetF64Zero(10)
	if len(b) != 10 {
		t.Fatal("nil workspace must allocate")
	}
	nilWS.PutF64(b) // must not panic
	cz := nilWS.GetC128(5)
	if len(cz) != 5 {
		t.Fatal("nil workspace complex alloc")
	}
	nilWS.PutC128(cz)
}

func TestWorkspaceComplexReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.GetC128(33)
	ws.PutC128(a)
	b := ws.GetC128(40) // same class (64)
	if &a[0] != &b[0] {
		t.Fatal("complex pool must reuse")
	}
}

func TestSharedEnginesAreCached(t *testing.T) {
	if Shared(2) != Shared(2) {
		t.Fatal("Shared(2) must return the same engine")
	}
	if Default() != Shared(0) {
		t.Fatal("Default must be Shared(0)")
	}
	if Shared(2).Workers() != 2 {
		t.Fatalf("Shared(2).Workers() = %d", Shared(2).Workers())
	}
}

// TestWorkspaceLargeClassCap checks the tighter retention bound on
// megabyte-scale size classes: small classes keep maxPerClass buffers,
// large ones only largeClassCap, and excess large Puts are dropped rather
// than pinned (returning a dropped buffer allocates fresh).
func TestWorkspaceLargeClassCap(t *testing.T) {
	if got := classCap(1 << 10); got != maxPerClass {
		t.Fatalf("classCap(small) = %d, want %d", got, maxPerClass)
	}
	if got := classCap(largeClassMin); got != largeClassCap {
		t.Fatalf("classCap(large) = %d, want %d", got, largeClassCap)
	}

	ws := NewWorkspace()
	const n = largeClassMin
	bufs := make([][]float64, largeClassCap+2)
	for i := range bufs {
		bufs[i] = ws.GetF64(n)
	}
	for _, b := range bufs {
		ws.PutF64(b)
	}
	for i := 0; i < largeClassCap+2; i++ {
		_ = ws.GetF64(n)
	}
	if _, hits := ws.Stats(); hits != largeClassCap {
		t.Fatalf("pool served %d large buffers, want exactly %d retained", hits, largeClassCap)
	}
}
