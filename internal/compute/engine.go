// Package compute is the shared compute engine underneath the linear
// algebra stack: a long-lived worker pool (Engine) that replaces per-call
// goroutine spawning in hot kernels, and a Workspace of pooled, size-keyed
// scratch buffers that makes repeated decompositions allocation-stable.
//
// The package is a leaf (stdlib only, no imrdmd imports) so every layer —
// mat kernels, incremental SVD, DMD, the mrDMD core — can route its
// parallelism and scratch storage through one scheduler. See DESIGN.md §2
// for the engine contract.
package compute

import (
	"runtime"
	"sync"
)

// Engine is a fixed-size pool of worker goroutines fed by an unbuffered
// task channel. An Engine with W workers uses at most W concurrent lanes:
// the calling goroutine plus W−1 pool workers. Work is handed to a worker
// only when one is parked in receive; otherwise it runs inline on the
// caller, which makes nested ParallelFor/Do calls deadlock-free by
// construction (no task ever waits in a queue while its submitter blocks).
//
// A nil *Engine is valid and runs everything serially on the caller.
type Engine struct {
	workers int
	tasks   chan func()
	quit    chan struct{}
	once    sync.Once

	lane Lane
}

// Lane is a serial background execution lane: an unbounded FIFO drained
// by a single goroutine that starts lazily and exits when the queue
// empties, so it costs at most one goroutine and only while work is
// pending. Tasks run in submission order. The zero value is ready to use.
//
// Owners that must not share head-of-line blocking (e.g. independent
// analyzers whose async recomputes serialize on their own mutexes)
// embed their own Lane rather than using the engine's.
type Lane struct {
	mu      sync.Mutex
	q       []func()
	running bool
}

// Go enqueues fn on the lane.
func (l *Lane) Go(fn func()) {
	l.mu.Lock()
	l.q = append(l.q, fn)
	if !l.running {
		l.running = true
		go l.drain()
	}
	l.mu.Unlock()
}

func (l *Lane) drain() {
	for {
		l.mu.Lock()
		if len(l.q) == 0 {
			l.running = false
			l.mu.Unlock()
			return
		}
		fn := l.q[0]
		l.q[0] = nil // release the closure; the backing array outlives it
		l.q = l.q[1:]
		l.mu.Unlock()
		fn()
	}
}

// NewEngine creates an engine with the given number of lanes. workers <= 0
// defaults to runtime.GOMAXPROCS(0). The pool spawns workers−1 goroutines
// immediately; they live until Close.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers-1; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	for {
		select {
		case f := <-e.tasks:
			f()
		case <-e.quit:
			return
		}
	}
}

// Workers returns the lane count (1 for a nil engine).
func (e *Engine) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// Close stops the pool workers. Tasks already handed to a worker finish;
// subsequent ParallelFor/Do/Go calls run inline on the caller. Close is
// idempotent. Shared engines (Shared/Default) are never closed.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.once.Do(func() { close(e.quit) })
}

// offer hands t to a parked worker, or runs it inline when none is free
// (or the engine is closed).
func (e *Engine) offer(t func()) {
	select {
	case e.tasks <- t:
	case <-e.quit:
		t()
	default:
		t()
	}
}

// ParallelFor splits [0,n) into at most Workers() contiguous bands and
// runs fn(lo, hi) on each, returning when all bands are done. The caller
// executes at least one band itself. Safe to call from inside a band of an
// outer ParallelFor or Do on the same engine.
func (e *Engine) ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := e.Workers()
	if w > n {
		w = n
	}
	if e == nil || w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		e.offer(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	fn(0, chunk)
	wg.Wait()
}

// Do runs the given tasks, possibly concurrently, and returns when all
// have finished. The first task always runs on the caller. Like
// ParallelFor, Do nests without deadlocking.
func (e *Engine) Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if e == nil || e.workers <= 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range fns[1:] {
		f := f
		wg.Add(1)
		e.offer(func() {
			defer wg.Done()
			f()
		})
	}
	fns[0]()
	wg.Wait()
}

// Go schedules fn on the engine's own background Lane, keeping the
// engine's goroutine count bounded by Workers()+1. Tasks run serially in
// submission order (each may itself use ParallelFor/Do for internal
// parallelism). On a nil engine fn runs synchronously. Callers that need
// completion tracking wrap fn with their own WaitGroup; callers that need
// isolation from other Go users of a shared engine should own a Lane
// directly instead.
func (e *Engine) Go(fn func()) {
	if e == nil {
		fn()
		return
	}
	e.lane.Go(fn)
}

var (
	sharedMu sync.Mutex
	shared   = map[int]*Engine{}
)

// Shared returns a process-wide engine with the given lane count (<= 0
// normalizes to GOMAXPROCS), creating it on first use. Shared engines are
// long-lived — the whole point is that repeated Decompose/PartialFit calls
// reuse one pool instead of spawning goroutine fleets per call — and must
// not be Closed.
func Shared(workers int) *Engine {
	if workers <= 0 {
		workers = 0
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	e, ok := shared[workers]
	if !ok {
		e = NewEngine(workers)
		shared[workers] = e
	}
	return e
}

// Default returns the GOMAXPROCS-sized shared engine used by package-level
// kernels (mat.Mul and friends) when no engine is threaded explicitly.
func Default() *Engine { return Shared(0) }
