package compute

import (
	"sync"
	"unsafe"
)

// Float is the element-type constraint of the mixed-precision numeric
// stack: every generic kernel, matrix type and buffer pool upstream (mat,
// svd) is parameterized over it. float32 is the screening (low-fidelity)
// tier, float64 the refinement (high-fidelity) tier — the multifidelity
// principle of the paper applied to arithmetic precision. See DESIGN.md §6.
type Float interface {
	~float32 | ~float64
}

// Workspace is a pool of scratch buffers keyed by power-of-two size
// class, with Get/Put semantics. Hot paths that repeatedly build
// same-shaped intermediates (the augmented core kk, the extended bases
// uext/vext, residual blocks, reconstruction scratch) borrow storage here
// instead of allocating, which is what makes repeated PartialFit calls
// allocation-stable under sustained streaming.
//
// Buffers are allocated with capacity rounded up to the next power of two,
// so a slowly growing shape (the incremental SVD's V gains rows every
// update) still hits the pool on most updates. All methods are safe for
// concurrent use; a nil *Workspace degrades to plain allocation.
type Workspace struct {
	mu   sync.Mutex
	f64  map[int][][]float64
	f32  map[int][][]float32
	c128 map[int][][]complex128

	gets int
	hits int
}

// maxPerClass bounds how many buffers are retained per size class so a
// transient burst cannot pin memory forever.
const maxPerClass = 32

// largeClassMin is the element count from which a size class counts as
// large and retains at most largeClassCap buffers. Autotuned GEMM blocking
// (mat's pack buffers) can push single classes past a megabyte; 32 retained
// megabyte-scale buffers would pin tens of MB per pool, and no workload
// holds more than a handful of large buffers concurrently (one B panel
// plus one A panel per worker).
const (
	largeClassMin = 1 << 20
	largeClassCap = 4
)

// classCap is the retention bound for size class c.
func classCap(c int) int {
	if c >= largeClassMin {
		return largeClassCap
	}
	return maxPerClass
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		f64:  map[int][][]float64{},
		f32:  map[int][][]float32{},
		c128: map[int][][]complex128{},
	}
}

// Drain releases every retained buffer across all tiers so the GC can
// reclaim them. Pooled buffers otherwise stay reachable forever, which
// both pins idle memory and makes ReadMemStats-based resident-bytes
// accounting report pool slack as live state. Safe concurrently with
// Get/Put; the pools simply refill on demand. A nil workspace is a no-op.
func (w *Workspace) Drain() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.f64 = map[int][][]float64{}
	w.f32 = map[int][][]float32{}
	w.c128 = map[int][][]complex128{}
	w.mu.Unlock()
}

// sizeClass rounds n up to the next power of two (minimum 8).
func sizeClass(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// GetF64 returns a []float64 of length n with unspecified contents.
func (ws *Workspace) GetF64(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if ws != nil {
		ws.mu.Lock()
		ws.gets++
		if l := ws.f64[c]; len(l) > 0 {
			b := l[len(l)-1]
			ws.f64[c] = l[:len(l)-1]
			ws.hits++
			ws.mu.Unlock()
			return b[:n]
		}
		ws.mu.Unlock()
	}
	return make([]float64, n, c)
}

// GetF64Zero returns a zeroed []float64 of length n.
func (ws *Workspace) GetF64Zero(n int) []float64 {
	b := ws.GetF64(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutF64 returns a buffer to the pool. Buffers whose capacity is not a
// size class (i.e. not obtained from GetF64) are dropped. Callers must not
// use b after Put.
func (ws *Workspace) PutF64(b []float64) {
	if ws == nil {
		return
	}
	c := cap(b)
	if c == 0 || c != sizeClass(c) {
		return
	}
	ws.mu.Lock()
	if len(ws.f64[c]) < classCap(c) {
		ws.f64[c] = append(ws.f64[c], b[:c])
	}
	ws.mu.Unlock()
}

// GetF32 returns a []float32 of length n with unspecified contents. The
// float32 size classes back the screening tier's pack buffers and factor
// scratch; they are pooled separately from float64 so neither tier's bursts
// evict the other's buffers.
func (ws *Workspace) GetF32(n int) []float32 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if ws != nil {
		ws.mu.Lock()
		ws.gets++
		if l := ws.f32[c]; len(l) > 0 {
			b := l[len(l)-1]
			ws.f32[c] = l[:len(l)-1]
			ws.hits++
			ws.mu.Unlock()
			return b[:n]
		}
		ws.mu.Unlock()
	}
	return make([]float32, n, c)
}

// PutF32 returns a float32 buffer to the pool.
func (ws *Workspace) PutF32(b []float32) {
	if ws == nil {
		return
	}
	c := cap(b)
	if c == 0 || c != sizeClass(c) {
		return
	}
	ws.mu.Lock()
	if len(ws.f32[c]) < classCap(c) {
		ws.f32[c] = append(ws.f32[c], b[:c])
	}
	ws.mu.Unlock()
}

// resliceFloat reinterprets a float slice as another float type of the
// SAME size (identity in practice). It exists so the generic accessors
// below can return the concrete pool buffer as []T without a copy; callers
// guarantee E and T have equal size, making the cast layout-safe.
func resliceFloat[E, T Float](s []T) []E {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*E)(unsafe.Pointer(unsafe.SliceData(s[:cap(s)]))), cap(s))[:len(s)]
}

// GetFloats borrows a []T of length n with unspecified contents from the
// per-type pool (methods cannot be generic, hence the package function).
func GetFloats[T Float](ws *Workspace, n int) []T {
	var z T
	if unsafe.Sizeof(z) == 8 {
		return resliceFloat[T](ws.GetF64(n))
	}
	return resliceFloat[T](ws.GetF32(n))
}

// GetFloatsZero borrows a zeroed []T of length n.
func GetFloatsZero[T Float](ws *Workspace, n int) []T {
	b := GetFloats[T](ws, n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutFloats returns a buffer obtained from GetFloats to its pool.
func PutFloats[T Float](ws *Workspace, b []T) {
	var z T
	if unsafe.Sizeof(z) == 8 {
		ws.PutF64(resliceFloat[float64](b))
		return
	}
	ws.PutF32(resliceFloat[float32](b))
}

// GetC128 returns a []complex128 of length n with unspecified contents.
func (ws *Workspace) GetC128(n int) []complex128 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if ws != nil {
		ws.mu.Lock()
		ws.gets++
		if l := ws.c128[c]; len(l) > 0 {
			b := l[len(l)-1]
			ws.c128[c] = l[:len(l)-1]
			ws.hits++
			ws.mu.Unlock()
			return b[:n]
		}
		ws.mu.Unlock()
	}
	return make([]complex128, n, c)
}

// GetC128Zero returns a zeroed []complex128 of length n.
func (ws *Workspace) GetC128Zero(n int) []complex128 {
	b := ws.GetC128(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutC128 returns a complex buffer to the pool.
func (ws *Workspace) PutC128(b []complex128) {
	if ws == nil {
		return
	}
	c := cap(b)
	if c == 0 || c != sizeClass(c) {
		return
	}
	ws.mu.Lock()
	if len(ws.c128[c]) < classCap(c) {
		ws.c128[c] = append(ws.c128[c], b[:c])
	}
	ws.mu.Unlock()
}

// Stats reports lifetime Get calls and how many were served from the pool
// (used by buffer-reuse tests and diagnostics).
func (ws *Workspace) Stats() (gets, hits int) {
	if ws == nil {
		return 0, 0
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gets, ws.hits
}
