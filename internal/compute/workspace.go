package compute

import "sync"

// Workspace is a pool of scratch buffers keyed by power-of-two size
// class, with Get/Put semantics. Hot paths that repeatedly build
// same-shaped intermediates (the augmented core kk, the extended bases
// uext/vext, residual blocks, reconstruction scratch) borrow storage here
// instead of allocating, which is what makes repeated PartialFit calls
// allocation-stable under sustained streaming.
//
// Buffers are allocated with capacity rounded up to the next power of two,
// so a slowly growing shape (the incremental SVD's V gains rows every
// update) still hits the pool on most updates. All methods are safe for
// concurrent use; a nil *Workspace degrades to plain allocation.
type Workspace struct {
	mu   sync.Mutex
	f64  map[int][][]float64
	c128 map[int][][]complex128

	gets int
	hits int
}

// maxPerClass bounds how many buffers are retained per size class so a
// transient burst cannot pin memory forever.
const maxPerClass = 32

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		f64:  map[int][][]float64{},
		c128: map[int][][]complex128{},
	}
}

// sizeClass rounds n up to the next power of two (minimum 8).
func sizeClass(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// GetF64 returns a []float64 of length n with unspecified contents.
func (ws *Workspace) GetF64(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if ws != nil {
		ws.mu.Lock()
		ws.gets++
		if l := ws.f64[c]; len(l) > 0 {
			b := l[len(l)-1]
			ws.f64[c] = l[:len(l)-1]
			ws.hits++
			ws.mu.Unlock()
			return b[:n]
		}
		ws.mu.Unlock()
	}
	return make([]float64, n, c)
}

// GetF64Zero returns a zeroed []float64 of length n.
func (ws *Workspace) GetF64Zero(n int) []float64 {
	b := ws.GetF64(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutF64 returns a buffer to the pool. Buffers whose capacity is not a
// size class (i.e. not obtained from GetF64) are dropped. Callers must not
// use b after Put.
func (ws *Workspace) PutF64(b []float64) {
	if ws == nil {
		return
	}
	c := cap(b)
	if c == 0 || c != sizeClass(c) {
		return
	}
	ws.mu.Lock()
	if len(ws.f64[c]) < maxPerClass {
		ws.f64[c] = append(ws.f64[c], b[:c])
	}
	ws.mu.Unlock()
}

// GetC128 returns a []complex128 of length n with unspecified contents.
func (ws *Workspace) GetC128(n int) []complex128 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if ws != nil {
		ws.mu.Lock()
		ws.gets++
		if l := ws.c128[c]; len(l) > 0 {
			b := l[len(l)-1]
			ws.c128[c] = l[:len(l)-1]
			ws.hits++
			ws.mu.Unlock()
			return b[:n]
		}
		ws.mu.Unlock()
	}
	return make([]complex128, n, c)
}

// GetC128Zero returns a zeroed []complex128 of length n.
func (ws *Workspace) GetC128Zero(n int) []complex128 {
	b := ws.GetC128(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutC128 returns a complex buffer to the pool.
func (ws *Workspace) PutC128(b []complex128) {
	if ws == nil {
		return
	}
	c := cap(b)
	if c == 0 || c != sizeClass(c) {
		return
	}
	ws.mu.Lock()
	if len(ws.c128[c]) < maxPerClass {
		ws.c128[c] = append(ws.c128[c], b[:c])
	}
	ws.mu.Unlock()
}

// Stats reports lifetime Get calls and how many were served from the pool
// (used by buffer-reuse tests and diagnostics).
func (ws *Workspace) Stats() (gets, hits int) {
	if ws == nil {
		return 0, 0
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gets, ws.hits
}
