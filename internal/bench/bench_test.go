package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWorkloadShapes(t *testing.T) {
	sc := SCLogData(32, 200, 1)
	if sc.R != 32 || sc.C != 200 {
		t.Fatalf("SCLogData shape %dx%d", sc.R, sc.C)
	}
	gpu := GPUData(32, 200, 1)
	if gpu.R != 32 || gpu.C != 200 {
		t.Fatalf("GPUData shape %dx%d", gpu.R, gpu.C)
	}
	if sc.HasNaN() || gpu.HasNaN() {
		t.Fatal("workload data contains NaN")
	}
	// Determinism.
	sc2 := SCLogData(32, 200, 1)
	for i := range sc.Data {
		if sc.Data[i] != sc2.Data[i] {
			t.Fatal("SCLogData not deterministic")
		}
	}
}

func TestGPUWorkloadFasterDynamics(t *testing.T) {
	// The GPU profile must carry more high-frequency energy (the paper's
	// "more modes on GPU metrics" mechanism): compare lag-1 differences.
	sc := SCLogData(16, 400, 2)
	gpu := GPUData(16, 400, 2)
	diffEnergy := func(m interface{ Row(int) []float64 }, rows int) float64 {
		var s float64
		for i := 0; i < rows; i++ {
			row := m.Row(i)
			for k := 1; k < len(row); k++ {
				d := row[k] - row[k-1]
				s += d * d
			}
		}
		return s
	}
	if diffEnergy(gpu, 16) <= diffEnergy(sc, 16) {
		t.Fatal("GPU workload should have more fast-band energy than SC Log")
	}
}

func TestTableFormatter(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Fatal("header missing")
	}
}

func TestRunTable1Small(t *testing.T) {
	rows, err := RunTable1(Table1Config{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d want 8 (2 datasets × 4 sizes)", len(rows))
	}
	for _, r := range rows {
		if r.InitialFit <= 0 || r.PartialFit <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.Modes <= 0 {
			t.Fatalf("no modes extracted: %+v", r)
		}
	}
	if s := FormatTable1(rows); !strings.Contains(s, "SC Log") || !strings.Contains(s, "GPU Metrics") {
		t.Fatal("formatted table missing datasets")
	}
}

func TestCheckTable1ShapeDetectsViolations(t *testing.T) {
	good := []Table1Row{
		{Dataset: "X", T: 100, InitialFit: 1, PartialFit: 0.5},
		{Dataset: "X", T: 200, InitialFit: 2, PartialFit: 0.6},
	}
	if err := CheckTable1Shape(good); err != nil {
		t.Fatalf("good shape rejected: %v", err)
	}
	flatInitial := []Table1Row{
		{Dataset: "X", T: 100, InitialFit: 2, PartialFit: 0.5},
		{Dataset: "X", T: 200, InitialFit: 1, PartialFit: 0.5},
	}
	if err := CheckTable1Shape(flatInitial); err == nil {
		t.Fatal("shrinking initial fit accepted")
	}
	slowPartial := []Table1Row{
		{Dataset: "X", T: 100, InitialFit: 1, PartialFit: 0.5},
		{Dataset: "X", T: 200, InitialFit: 2, PartialFit: 3},
	}
	if err := CheckTable1Shape(slowPartial); err == nil {
		t.Fatal("partial above initial accepted")
	}
}

func TestRunUpdateTimingSmall(t *testing.T) {
	res, err := RunUpdateTiming("env", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental <= 0 || res.Refit <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if _, err := RunUpdateTiming("bogus", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunCaseStudy1Artifacts(t *testing.T) {
	dir := t.TempDir()
	res, err := RunCaseStudy1(64, 256, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrobError <= 0 || res.RelError <= 0 || res.RelError > 0.5 {
		t.Fatalf("implausible error: %+v", res)
	}
	for _, p := range res.Artifacts {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("artifact %s missing or empty", p)
		}
	}
	// The paper's observation: memory-error nodes sit near/below baseline.
	if res.MemErrNearOrCold == 0 {
		t.Fatal("no memory-error node classified near/below baseline")
	}
}

func TestRunCaseStudy2Artifacts(t *testing.T) {
	dir := t.TempDir()
	res, err := RunCaseStudy2(96, 192, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.HotWindowMeanLevel <= res.CoolWindowMeanLevel {
		t.Fatalf("hot window %.1f not above cool %.1f",
			res.HotWindowMeanLevel, res.CoolWindowMeanLevel)
	}
	if len(res.Persistent) == 0 {
		t.Fatal("persistent hardware-error node not found")
	}
	svgs := 0
	for _, p := range res.Artifacts {
		if filepath.Ext(p) == ".svg" {
			svgs++
		}
	}
	if svgs != 3 {
		t.Fatalf("expected 3 SVGs (fig6a, fig6b, fig7), got %d", svgs)
	}
}

func TestRunFig8Separation(t *testing.T) {
	dir := t.TempDir()
	res, err := RunFig8(400, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 7 {
		t.Fatalf("methods = %v want 7", res.Methods)
	}
	// mrDMD-family z-scores must separate the populations.
	if res.Separation["mrDMD"] <= 0 {
		t.Fatalf("mrDMD separation %+.3f not positive", res.Separation["mrDMD"])
	}
	if res.Separation["I-mrDMD"] <= 0 {
		t.Fatalf("I-mrDMD separation %+.3f not positive", res.Separation["I-mrDMD"])
	}
	if s := FormatFig8(res); !strings.Contains(s, "I-mrDMD") {
		t.Fatal("formatted fig8 output incomplete")
	}
}

func TestRunFig9SmallShape(t *testing.T) {
	rows, err := RunFig9(Fig9Config{Scale: 0.02, Seed: 1, SkipUMAP: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 methods (PCA, IPCA, mrDMD, I-mrDMD) × 6 sizes.
	if len(rows) != 24 {
		t.Fatalf("rows = %d want 24", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Method] = true
		if r.InitialFit <= 0 {
			t.Fatalf("bad timing %+v", r)
		}
	}
	for _, m := range []string{"PCA", "IPCA", "mrDMD", "I-mrDMD"} {
		if !seen[m] {
			t.Fatalf("method %s missing", m)
		}
	}
	if s := FormatFig9(rows); !strings.Contains(s, "I-mrDMD") {
		t.Fatal("formatted fig9 incomplete")
	}
	dir := t.TempDir()
	if _, err := WriteFig9Plot(rows, dir); err != nil {
		t.Fatal(err)
	}
}

func TestRunQ2SmallAndCheck(t *testing.T) {
	res, err := RunQ2(48, 768, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckQ2Shape(res); err != nil {
		t.Fatalf("Q2 shape: %v (result %+v)", err, res)
	}
	if math.IsNaN(res.DriftTotal) {
		t.Fatal("drift not recorded")
	}
	if s := FormatQ2(res); !strings.Contains(s, "recompute") {
		t.Fatal("formatted Q2 incomplete")
	}
}

func TestCheckFig9ShapeDetectsViolation(t *testing.T) {
	rows := []Fig9Row{
		{Method: "mrDMD", T: 1000, InitialFit: 1},
		{Method: "I-mrDMD", T: 1000, InitialFit: 1, PartialFit: 2},
	}
	if err := CheckFig9Shape(rows); err == nil {
		t.Fatal("slow partial fit accepted")
	}
	good := []Fig9Row{
		{Method: "mrDMD", T: 1000, InitialFit: 1},
		{Method: "I-mrDMD", T: 1000, InitialFit: 1, PartialFit: 0.2},
	}
	if err := CheckFig9Shape(good); err != nil {
		t.Fatalf("good shape rejected: %v", err)
	}
}
