package bench

import (
	"fmt"

	"imrdmd/internal/core"
)

// CompressionRow measures the mode-storage footprint of the decomposition
// against the raw data at one level count — quantifying the paper's
// "reduce the data size from terabytes to megabytes" claim (§I) and its
// future-work item of evaluating compression savings (§VI).
type CompressionRow struct {
	Levels    int
	Modes     int
	RawBytes  int
	ModeBytes int
	Ratio     float64
	RelError  float64
}

// RunCompression sweeps tree depth on the environment-log workload: more
// levels keep more modes, trading compression for reconstruction error.
func RunCompression(p, t int, seed int64) ([]CompressionRow, error) {
	if p <= 0 {
		p = 256
	}
	if t <= 0 {
		t = 4096
	}
	data := SCLogData(p, t, seed)
	norm := data.FrobNorm()
	var rows []CompressionRow
	for _, levels := range []int{2, 4, 6, 8} {
		opts := scOpts(levels)
		tree, err := core.Decompose(data, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompressionRow{
			Levels:    levels,
			Modes:     tree.NumModes(),
			RawBytes:  p * t * 8,
			ModeBytes: tree.StorageBytes(),
			Ratio:     tree.CompressionRatio(),
			RelError:  tree.ReconError(data) / norm,
		})
	}
	return rows, nil
}

// FormatCompression renders the sweep.
func FormatCompression(rows []CompressionRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Levels), fmt.Sprint(r.Modes),
			fmt.Sprintf("%.1f MB", float64(r.RawBytes)/1e6),
			fmt.Sprintf("%.2f MB", float64(r.ModeBytes)/1e6),
			fmt.Sprintf("%.1f×", r.Ratio),
			fmt.Sprintf("%.2f%%", 100*r.RelError),
		})
	}
	return Table([]string{"Levels", "Modes", "Raw", "Modes stored", "Compression", "Rel. error"}, cells)
}

// CheckCompressionShape verifies the claim's shape: the decomposition is
// smaller than the data, and depth trades compression for accuracy
// monotonically at the sweep's endpoints.
func CheckCompressionShape(rows []CompressionRow) error {
	if len(rows) < 2 {
		return nil
	}
	for _, r := range rows {
		if r.Ratio <= 1 {
			return fmt.Errorf("levels=%d: no compression (ratio %.2f)", r.Levels, r.Ratio)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Ratio > first.Ratio {
		return fmt.Errorf("deeper tree compresses better (%.1f× at %d levels vs %.1f× at %d)",
			last.Ratio, last.Levels, first.Ratio, first.Levels)
	}
	if last.RelError > first.RelError {
		return fmt.Errorf("deeper tree reconstructs worse (%.2f%% vs %.2f%%)",
			100*last.RelError, 100*first.RelError)
	}
	return nil
}
