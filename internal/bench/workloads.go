// Package bench is the experiment harness behind cmd/paperbench and the
// repository's top-level benchmarks: it builds the synthetic equivalents
// of the paper's workloads and regenerates every table and figure of the
// evaluation (see DESIGN.md §3 for the experiment index).
package bench

import (
	"fmt"
	"strings"
	"time"

	"imrdmd/internal/core"
	"imrdmd/internal/joblog"
	"imrdmd/internal/mat"
	"imrdmd/internal/telemetry"
)

// SCLogData synthesizes the "SC Log" workload (Theta environment-log
// temperatures, job-coupled) of the paper's Table I and case studies.
func SCLogData(p, t int, seed int64) *mat.Dense {
	prof := telemetry.ThetaEnv()
	horizon := float64(t) * prof.SampleInterval
	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: p, Horizon: horizon, Seed: seed,
		MeanInterarrival: horizon / 60, MeanDuration: horizon / 5,
	})
	gen := telemetry.NewGenerator(prof, p, seed)
	gen.Schedule = sched
	return gen.Matrix(0, t)
}

// GPUData synthesizes the "GPU Metrics" workload (Polaris GPU
// temperatures: faster dynamics, more fast-band energy, hence more
// extracted modes, as the paper observes).
func GPUData(p, t int, seed int64) *mat.Dense {
	prof := telemetry.PolarisGPU()
	horizon := float64(t) * prof.SampleInterval
	nodes := p / 4
	if nodes < 1 {
		nodes = 1
	}
	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon, Seed: seed,
		MeanInterarrival: horizon / 80, MeanDuration: horizon / 6,
	})
	gpuSched := &joblog.Schedule{NumNodes: p, Horizon: horizon}
	for _, j := range sched.Jobs {
		gj := j
		gj.Nodes = nil
		for _, n := range j.Nodes {
			for g := 0; g < 4; g++ {
				if idx := n*4 + g; idx < p {
					gj.Nodes = append(gj.Nodes, idx)
				}
			}
		}
		gpuSched.Jobs = append(gpuSched.Jobs, gj)
	}
	gen := telemetry.NewGenerator(prof, p, seed)
	gen.Schedule = gpuSched
	return gen.Matrix(0, t)
}

// scOpts mirrors the paper's SC Log configuration at the given level
// count.
func scOpts(levels int) core.Options {
	return core.Options{
		DT:        telemetry.ThetaEnv().SampleInterval,
		MaxLevels: levels, MaxCycles: 2, UseSVHT: true, Parallel: true,
	}
}

// gpuOpts mirrors the paper's GPU Metrics configuration.
func gpuOpts(levels int) core.Options {
	return core.Options{
		DT:        telemetry.PolarisGPU().SampleInterval,
		MaxLevels: levels, MaxCycles: 2, UseSVHT: true, Parallel: true,
	}
}

// timeIt runs f once and returns elapsed seconds.
func timeIt(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return time.Since(start).Seconds(), err
}

// Table renders rows of labelled columns as an aligned text table.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func secs(v float64) string { return fmt.Sprintf("%.3f", v) }
