package bench

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"imrdmd/internal/baseline"
	"imrdmd/internal/core"
	"imrdmd/internal/hwlog"
	"imrdmd/internal/joblog"
	"imrdmd/internal/mat"
	"imrdmd/internal/rack"
	"imrdmd/internal/telemetry"
	"imrdmd/internal/viz"
)

// CaseStudy1Result carries the quantities the paper reports in §V-A:
// initial and incremental timings, the Frobenius reconstruction error
// (paper: 3958.58 on 871×2000), z-score statistics, and where the
// artifacts were written.
type CaseStudy1Result struct {
	Nodes, Steps     int
	InitialSecs      float64
	UpdateSecs       float64
	FrobError        float64
	RelError         float64
	ZSummary         baseline.Summary
	MemErrNodes      []int
	MemErrNearOrCold int // paper: mem-error nodes sit near/below baseline
	Artifacts        []string
}

// caseStudy1Setup builds the 2-project workload of §V-A with ground-truth
// anomalies: persistent hot nodes, a stalled node, memory-error nodes.
func caseStudy1Setup(nodes, steps int, seed int64) (*telemetry.Generator, *joblog.Schedule, *hwlog.Log, []int, []int) {
	prof := telemetry.ThetaEnv()
	horizon := float64(steps) * prof.SampleInterval
	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon, Seed: seed,
		MeanInterarrival: horizon / 50, MeanDuration: horizon / 4,
		Projects: []joblog.ProjectMix{
			{Name: "ProjectA", Weight: 1, MeanSize: nodes / 6, MaxSize: nodes / 2},
			{Name: "ProjectB", Weight: 1, MeanSize: nodes / 10, MaxSize: nodes / 3},
		},
	})
	gen := telemetry.NewGenerator(prof, nodes, seed)
	gen.Schedule = sched
	hotNodes := []int{17 % nodes, 93 % nodes}
	gen.Anomalies = []telemetry.Anomaly{
		{Kind: telemetry.HotNode, Node: hotNodes[0], Start: 0, End: horizon, Magnitude: 14},
		{Kind: telemetry.HotNode, Node: hotNodes[1], Start: horizon / 3, End: horizon, Magnitude: 11},
		{Kind: telemetry.StalledNode, Node: 41 % nodes, Start: horizon / 2, End: horizon},
	}
	memErr := []int{5 % nodes, 123 % nodes}
	hl := hwlog.Generate(hwlog.GenConfig{
		NumNodes: nodes, Horizon: horizon, Seed: seed, BackgroundRate: 0.02,
		Bursts: []hwlog.Burst{
			{Node: memErr[0], Cat: hwlog.MemCorrectable, Start: 0, End: horizon, Count: 18},
			{Node: memErr[1], Cat: hwlog.MemCorrectable, Start: horizon / 4, End: horizon, Count: 9},
		},
	})
	return gen, sched, hl, hotNodes, memErr
}

// RunCaseStudy1 regenerates Figs. 3, 4 and 5 (E4–E6). nodes/steps default
// to the paper's 871×2000 when ≤0.
func RunCaseStudy1(nodes, steps int, seed int64, outDir string) (*CaseStudy1Result, error) {
	if nodes <= 0 {
		nodes = 871
	}
	if steps <= 0 {
		steps = 2000
	}
	gen, _, hl, _, memErr := caseStudy1Setup(nodes, steps, seed)
	prof := gen.Profile
	data := gen.Matrix(0, steps)

	// 1,000 + 1,000 streaming, 6 levels — §V-A's configuration.
	opts := scOpts(6)
	inc := core.NewIncremental(opts)
	half := steps / 2
	initSecs, err := timeIt(func() error { return inc.InitialFit(data.ColSlice(0, half)) })
	if err != nil {
		return nil, err
	}
	updSecs, err := timeIt(func() error {
		_, err := inc.PartialFit(data.ColSlice(half, steps))
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &CaseStudy1Result{
		Nodes: nodes, Steps: steps,
		InitialSecs: initSecs, UpdateSecs: updSecs,
		MemErrNodes: memErr,
	}
	res.FrobError = inc.ReconError()
	res.RelError = res.FrobError / data.FrobNorm()

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}

	// Fig. 3: actual vs reconstruction for a handful of nodes.
	recon := inc.Reconstruct()
	fig3 := filepath.Join(outDir, "fig3_reconstruction.svg")
	if err := writeFig3(fig3, data, recon, prof.SampleInterval); err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, fig3)
	fig3csv := filepath.Join(outDir, "fig3_reconstruction.csv")
	if err := writeFig3CSV(fig3csv, data, recon); err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, fig3csv)

	// Z-scores for Fig. 4 (baseline band per §V-A, widened to include
	// busy-normal nodes for this profile's job heat).
	tree := inc.Tree()
	levels := tree.ReadingLevels(core.FullBand())
	baseIdx := baseline.SelectByMeanRange(data, 46, 68)
	z, err := baseline.ZScores(levels, baseIdx)
	if err != nil {
		return nil, err
	}
	res.ZSummary = baseline.Summarize(z)
	horizon := float64(steps) * prof.SampleInterval
	memErrSeen := hl.NodesWith(hwlog.MemCorrectable, 5, 0, horizon)
	for _, n := range memErrSeen {
		if c := baseline.Classify(z[n]); c == baseline.Near || c == baseline.Cold {
			res.MemErrNearOrCold++
		}
	}

	// Fig. 4: rack view with memory-error outlines.
	layout := caseStudyLayout(nodes)
	fig4 := filepath.Join(outDir, "fig4_rackview.svg")
	f, err := os.Create(fig4)
	if err != nil {
		return nil, err
	}
	outline := map[int]bool{}
	for _, n := range memErrSeen {
		outline[n] = true
	}
	err = viz.RenderRackView(f, layout, padValues(z, layout.TotalNodes()), viz.RackViewConfig{
		Title: "Case study 1: z-scores, memory-error nodes outlined", ZMax: 5, Highlighted: outline,
	})
	f.Close()
	if err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, fig4)

	// Fig. 5: mrDMD spectrum, 0–60 Hz band in paper units.
	fig5 := filepath.Join(outDir, "fig5_spectrum.svg")
	if err := writeSpectrum(fig5, "Case study 1: I-mrDMD spectrum",
		[]spectrumSeries{{name: "case 1", color: "#1f77b4", tree: tree}}); err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, fig5)
	return res, nil
}

// caseStudyLayout picks an XC40-flavored layout that holds `nodes` nodes:
// racks of 64 (4 cabinets × 16 slots).
func caseStudyLayout(nodes int) *rack.Layout {
	racks := (nodes + 63) / 64
	rows := 1
	if racks > 12 {
		rows = 2
		racks = (racks + 1) / 2
	}
	spec := fmt.Sprintf("xc40 1 2 row0-%d:0-%d 2 c:0-3 1 s:0-15 b:0 n:0", rows-1, racks-1)
	l, err := rack.Parse(spec)
	if err != nil {
		panic("bench: generated layout invalid: " + err.Error())
	}
	return l
}

// padValues extends z with NaNs so unpopulated layout slots render gray.
func padValues(z []float64, total int) []float64 {
	if len(z) >= total {
		return z[:total]
	}
	out := make([]float64, total)
	copy(out, z)
	for i := len(z); i < total; i++ {
		out[i] = math.NaN()
	}
	return out
}

func writeFig3(path string, data, recon *mat.Dense, dt float64) error {
	const show = 3 // sensors plotted
	var series []viz.Series
	t := data.C
	xs := make([]float64, t)
	for k := range xs {
		xs[k] = float64(k)
	}
	for i := 0; i < show && i < data.R; i++ {
		sensor := i * (data.R / show)
		series = append(series,
			viz.Series{Name: fmt.Sprintf("node %d actual", sensor), X: xs, Y: data.Row(sensor), Color: "#bbbbbb"},
			viz.Series{Name: fmt.Sprintf("node %d I-mrDMD", sensor), X: xs, Y: recon.Row(sensor)},
		)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return viz.RenderPlot(f, viz.PlotConfig{
		Title:  "Actual vs I-mrDMD reconstruction (Fig. 3)",
		XLabel: "time step", YLabel: "temperature (°C)", W: 900, H: 420,
	}, series...)
}

func writeFig3CSV(path string, data, recon *mat.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf bytes.Buffer
	buf.WriteString("step,actual_node0,recon_node0\n")
	for k := 0; k < data.C; k++ {
		fmt.Fprintf(&buf, "%d,%.4f,%.4f\n", k, data.At(0, k), recon.At(0, k))
	}
	_, err = f.Write(buf.Bytes())
	return err
}

type spectrumSeries struct {
	name  string
	color string
	tree  *core.Tree
}

// writeSpectrum renders mode amplitude vs frequency (Eq. 9/10, Figs. 5/7).
func writeSpectrum(path, title string, series []spectrumSeries) error {
	var plotted []viz.Series
	for _, s := range series {
		pts := s.tree.Spectrum()
		xs := make([]float64, 0, len(pts))
		ys := make([]float64, 0, len(pts))
		for _, p := range pts {
			xs = append(xs, p.Freq*1000) // mHz: our Δt=20 s puts modes in the mHz range
			ys = append(ys, p.Amp)
		}
		plotted = append(plotted, viz.Series{Name: s.name, X: xs, Y: ys, Color: s.color, Points: true})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return viz.RenderPlot(f, viz.PlotConfig{
		Title: title, XLabel: "frequency (mHz)", YLabel: "I-mrDMD mode amplitude", W: 720, H: 420,
	}, plotted...)
}

// CaseStudy2Result carries §V-B's quantities: per-window reconstruction
// errors (paper: 3423.85), per-window baselines, the spectrum comparison,
// and the persistent hardware-error nodes.
type CaseStudy2Result struct {
	Nodes, StepsPerWindow int
	FrobError             [2]float64
	ZSummary              [2]baseline.Summary
	HotWindowMeanLevel    float64
	CoolWindowMeanLevel   float64
	Persistent            []int
	Artifacts             []string
}

// RunCaseStudy2 regenerates Figs. 6 and 7 (E7–E8): a hot busy window and
// a cooler quiet window, each z-scored against its own baseline band.
func RunCaseStudy2(nodes, stepsPerWindow int, seed int64, outDir string) (*CaseStudy2Result, error) {
	if nodes <= 0 {
		nodes = 512
	}
	if stepsPerWindow <= 0 {
		stepsPerWindow = 1440
	}
	prof := telemetry.ThetaEnv()
	total := 2 * stepsPerWindow
	horizon := float64(total) * prof.SampleInterval

	busy := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon / 2, Seed: seed,
		MeanInterarrival: horizon / 400, MeanDuration: horizon / 6,
	})
	quiet := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon / 2, Seed: seed + 1,
		MeanInterarrival: horizon / 30, MeanDuration: horizon / 12,
	})
	for _, j := range quiet.Jobs {
		j.Start += horizon / 2
		j.End += horizon / 2
		j.ID += 100000
		busy.Jobs = append(busy.Jobs, j)
	}
	busy.Horizon = horizon

	gen := telemetry.NewGenerator(prof, nodes, seed)
	gen.Schedule = busy
	persistent := 77 % nodes
	hl := hwlog.Generate(hwlog.GenConfig{
		NumNodes: nodes, Horizon: horizon, Seed: seed, BackgroundRate: 0.05,
		Bursts: []hwlog.Burst{
			{Node: persistent, Cat: hwlog.MachineCheck, Start: 0, End: horizon, Count: 24},
			{Node: (persistent + 50) % nodes, Cat: hwlog.MachineCheck, Start: 0, End: horizon / 2, Count: 8},
		},
	})

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	data := gen.Matrix(0, total)
	res := &CaseStudy2Result{Nodes: nodes, StepsPerWindow: stepsPerWindow}
	layout := caseStudyLayout(nodes)
	var spectra []spectrumSeries
	for w := 0; w < 2; w++ {
		lo, hi := w*stepsPerWindow, (w+1)*stepsPerWindow
		win := data.ColSlice(lo, hi)
		opts := scOpts(7)
		inc := core.NewIncremental(opts)
		first := stepsPerWindow * 3 / 4
		if err := inc.InitialFit(win.ColSlice(0, first)); err != nil {
			return nil, err
		}
		if _, err := inc.PartialFit(win.ColSlice(first, stepsPerWindow)); err != nil {
			return nil, err
		}
		res.FrobError[w] = inc.ReconError()

		tree := inc.Tree()
		levels := tree.ReadingLevels(core.FullBand())
		meanLevel := 0.0
		for _, v := range levels {
			meanLevel += v
		}
		meanLevel /= float64(len(levels))
		// Per-window baseline bands (§V-B: hotter for the busy window).
		bandLo, bandHi := 45.0, 68.0
		title := "window 1 (hot): baselines 45–68 °C"
		color := "#d62728"
		if w == 1 {
			bandLo, bandHi = 40.0, 55.0
			title = "window 2 (cool): baselines 40–55 °C"
			color = "#1f77b4"
			res.CoolWindowMeanLevel = meanLevel
		} else {
			res.HotWindowMeanLevel = meanLevel
		}
		baseIdx := baseline.SelectByMeanRange(win, bandLo, bandHi)
		z, err := baseline.ZScores(levels, baseIdx)
		if err != nil {
			return nil, err
		}
		res.ZSummary[w] = baseline.Summarize(z)

		errNodes := hl.NodesWith(hwlog.MachineCheck, 4,
			float64(lo)*prof.SampleInterval, float64(hi)*prof.SampleInterval)
		outline := map[int]bool{}
		for _, n := range errNodes {
			outline[n] = true
		}
		fig6 := filepath.Join(outDir, fmt.Sprintf("fig6%c_rackview.svg", 'a'+w))
		f, err := os.Create(fig6)
		if err != nil {
			return nil, err
		}
		err = viz.RenderRackView(f, layout, padValues(z, layout.TotalNodes()), viz.RackViewConfig{
			Title: "Case study 2, " + title, ZMax: 5, Outlined: outline,
		})
		f.Close()
		if err != nil {
			return nil, err
		}
		res.Artifacts = append(res.Artifacts, fig6)
		spectra = append(spectra, spectrumSeries{name: title, color: color, tree: tree})
	}

	w1 := hl.NodesWith(hwlog.MachineCheck, 4, 0, horizon/2)
	w2 := hl.NodesWith(hwlog.MachineCheck, 4, horizon/2, horizon)
	set := map[int]bool{}
	for _, n := range w1 {
		set[n] = true
	}
	for _, n := range w2 {
		if set[n] {
			res.Persistent = append(res.Persistent, n)
		}
	}

	fig7 := filepath.Join(outDir, "fig7_spectrum.svg")
	if err := writeSpectrum(fig7, "Case study 2: hot vs cool spectra (Fig. 7)", spectra); err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, fig7)
	return res, nil
}
