package bench

import (
	"fmt"
	"math"

	"imrdmd/internal/core"
)

// Q2Result answers the paper's Q2: how much accuracy does the online
// update give up relative to recomputing mrDMD from scratch? The paper
// reports the reconstruction-difference growing "only by a sum of
// 10–5000, depending on the underlying dynamics and the time step
// upgrades".
type Q2Result struct {
	P, T       int
	Updates    int
	DataNorm   float64 // ‖data‖_F, the scale reference
	BatchError float64 // ‖data − mrDMD recon‖_F
	IncError   float64 // ‖data − I-mrDMD recon‖_F
	Gap        float64 // IncError − BatchError
	DriftTotal float64 // Σ per-update slow-mode drift
	// WithRecompute repeats the run with drift-triggered recomputation
	// enabled; its gap should shrink.
	RecomputeError float64
	RecomputeGap   float64
	Recomputes     int
}

// RunQ2 measures the online-vs-batch accuracy gap (E12) and the effect of
// the drift-triggered recomputation the paper defers to future work
// (E13).
func RunQ2(p, t, updates int, seed int64) (*Q2Result, error) {
	if p <= 0 {
		p = 256
	}
	if t <= 0 {
		t = 4096
	}
	if updates <= 0 {
		updates = 4
	}
	data := SCLogData(p, t, seed)
	opts := scOpts(6)

	batch, err := core.Decompose(data, opts)
	if err != nil {
		return nil, err
	}
	res := &Q2Result{P: p, T: t, Updates: updates}
	res.DataNorm = data.FrobNorm()
	res.BatchError = batch.ReconError(data)

	run := func(threshold float64, async bool) (*core.Incremental, error) {
		inc := core.NewIncremental(opts)
		inc.DriftThreshold = threshold
		inc.AsyncRecompute = async
		first := t / 2
		if err := inc.InitialFit(data.ColSlice(0, first)); err != nil {
			return nil, err
		}
		blk := (t - first) / updates
		for u := 0; u < updates; u++ {
			lo := first + u*blk
			hi := lo + blk
			if u == updates-1 {
				hi = t
			}
			if _, err := inc.PartialFit(data.ColSlice(lo, hi)); err != nil {
				return nil, err
			}
		}
		inc.Wait()
		return inc, nil
	}

	plain, err := run(0, false)
	if err != nil {
		return nil, err
	}
	res.IncError = plain.ReconError()
	res.Gap = res.IncError - res.BatchError
	for _, d := range plain.DriftLog() {
		res.DriftTotal += d
	}

	recomputed, err := run(1e-9, true) // recompute on any drift
	if err != nil {
		return nil, err
	}
	res.RecomputeError = recomputed.ReconError()
	res.RecomputeGap = res.RecomputeError - res.BatchError
	res.Recomputes = recomputed.Recomputes()
	return res, nil
}

// CheckQ2Shape verifies the paper's claims: the incremental
// reconstruction stays a faithful approximation (small error relative to
// the data, like the paper's ≈5% case studies), the gap to batch mrDMD is
// bounded (the paper's "sum of 10–5000" band, which is a few percent of
// the data norm at their scales), and drift-triggered recomputation
// closes most of that gap.
func CheckQ2Shape(res *Q2Result) error {
	if math.IsNaN(res.Gap) || math.IsInf(res.Gap, 0) {
		return fmt.Errorf("gap is not finite")
	}
	if res.DataNorm <= 0 {
		return fmt.Errorf("degenerate data norm")
	}
	if rel := res.IncError / res.DataNorm; rel > 0.15 {
		return fmt.Errorf("incremental relative error %.1f%% too large", 100*rel)
	}
	if rel := res.Gap / res.DataNorm; rel > 0.10 {
		return fmt.Errorf("accuracy gap is %.1f%% of the data norm, want bounded", 100*rel)
	}
	if res.RecomputeError > res.IncError {
		return fmt.Errorf("recomputation made the error worse (%.3f > %.3f)",
			res.RecomputeError, res.IncError)
	}
	return nil
}

// FormatQ2 renders the result.
func FormatQ2(res *Q2Result) string {
	rel := func(v float64) string {
		return fmt.Sprintf("%s (%.2f%% of ‖data‖)", secs(v), 100*v/res.DataNorm)
	}
	rows := [][]string{
		{"‖data‖_F", secs(res.DataNorm)},
		{"batch mrDMD ‖err‖_F", rel(res.BatchError)},
		{"I-mrDMD ‖err‖_F", rel(res.IncError)},
		{"gap (paper: 10–5000 band)", rel(res.Gap)},
		{"Σ slow-mode drift", secs(res.DriftTotal)},
		{"I-mrDMD + recompute ‖err‖_F", rel(res.RecomputeError)},
		{"gap after recompute", rel(res.RecomputeGap)},
		{"recomputations triggered", fmt.Sprint(res.Recomputes)},
	}
	return Table([]string{"Quantity", "Value"}, rows)
}
