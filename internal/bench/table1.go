package bench

import (
	"fmt"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// Table1Row is one row of the paper's Table I: completion time of the
// initial fit on N×T data and of the incremental addition of `added`
// further time points.
type Table1Row struct {
	Dataset    string
	N, T       int
	Added      int
	InitialFit float64 // seconds
	PartialFit float64 // seconds
	Modes      int
}

// Table1Config scales the experiment; the paper uses N=1000,
// T ∈ {2000, 5000, 10000, 16000}, added=1000, 6 levels for SC Log and 7
// for GPU Metrics.
type Table1Config struct {
	Scale float64 // scales N, T and the added block (default 1)
	Seed  int64
}

// RunTable1 regenerates Table I (experiment E3 in DESIGN.md).
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	n := scaled(1000, cfg.Scale)
	added := scaled(1000, cfg.Scale)
	sizes := []int{2000, 5000, 10000, 16000}
	var rows []Table1Row
	for _, ds := range []struct {
		name string
		opts core.Options
		gen  func(p, t int, seed int64) *mat.Dense
	}{
		{"SC Log", scOpts(6), SCLogData},
		{"GPU Metrics", gpuOpts(7), GPUData},
	} {
		for _, t0 := range sizes {
			t := scaled(t0, cfg.Scale)
			data := ds.gen(n, t+added, cfg.Seed)
			inc := core.NewIncremental(ds.opts)
			initSecs, err := timeIt(func() error { return inc.InitialFit(data.ColSlice(0, t)) })
			if err != nil {
				return nil, fmt.Errorf("table1 %s T=%d initial: %w", ds.name, t, err)
			}
			partSecs, err := timeIt(func() error {
				_, err := inc.PartialFit(data.ColSlice(t, t+added))
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("table1 %s T=%d partial: %w", ds.name, t, err)
			}
			rows = append(rows, Table1Row{
				Dataset: ds.name, N: n, T: t, Added: added,
				InitialFit: initSecs, PartialFit: partSecs,
				Modes: inc.Tree().NumModes(),
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, fmt.Sprint(r.N), fmt.Sprint(r.T),
			secs(r.InitialFit), secs(r.PartialFit), fmt.Sprint(r.Modes),
		})
	}
	return Table([]string{"Dataset", "N", "T", "Initial Fit (s)", "Partial Fit (s)", "Modes"}, cells)
}

// CheckTable1Shape verifies the paper's qualitative claims on the rows:
// within each dataset the initial fit grows with T while the partial fit
// stays roughly flat (bounded well below the largest initial fit).
func CheckTable1Shape(rows []Table1Row) error {
	byDS := map[string][]Table1Row{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rs := range byDS {
		if len(rs) < 2 {
			continue
		}
		first, last := rs[0], rs[len(rs)-1]
		if last.InitialFit <= first.InitialFit {
			return fmt.Errorf("%s: initial fit did not grow with T (%.3fs at T=%d vs %.3fs at T=%d)",
				ds, first.InitialFit, first.T, last.InitialFit, last.T)
		}
		// Partial fit at the largest T must undercut that initial fit.
		if last.PartialFit >= last.InitialFit {
			return fmt.Errorf("%s: partial fit %.3fs not below initial fit %.3fs at T=%d",
				ds, last.PartialFit, last.InitialFit, last.T)
		}
		// Flatness: the largest partial fit stays within 4× the smallest
		// (the paper's SC Log column spans 3.77–4.33 s).
		minP, maxP := rs[0].PartialFit, rs[0].PartialFit
		for _, r := range rs {
			if r.PartialFit < minP {
				minP = r.PartialFit
			}
			if r.PartialFit > maxP {
				maxP = r.PartialFit
			}
		}
		if minP > 0 && maxP/minP > 4 {
			return fmt.Errorf("%s: partial fit not flat (%.3f–%.3fs)", ds, minP, maxP)
		}
	}
	return nil
}

// EnvTimingResult is the §IV streaming-update experiment (E1/E2): the
// cost of absorbing a new block incrementally vs recomputing everything.
type EnvTimingResult struct {
	Dataset     string
	P, T, Added int
	Incremental float64 // seconds for the partial fit
	Refit       float64 // seconds for recomputation over T+added
	Speedup     float64
}

// RunUpdateTiming regenerates E1 (dataset "env") or E2 ("gpu"). The paper
// ran env at 4392×50000+5000 (80.6 s vs 14.7 s) and gpu at
// 5824×16329+5825 (59.3 s vs 29.9 s); Scale shrinks both dimensions.
func RunUpdateTiming(dataset string, scale float64, seed int64) (*EnvTimingResult, error) {
	if scale <= 0 {
		scale = 1
	}
	var (
		p, t, added int
		opts        core.Options
		gen         func(p, t int, seed int64) *mat.Dense
	)
	switch dataset {
	case "env":
		p, t, added = scaled(4392, scale), scaled(50000, scale), scaled(5000, scale)
		opts = scOpts(8)
		gen = SCLogData
	case "gpu":
		p, t, added = scaled(5824, scale), scaled(16329, scale), scaled(5825, scale)
		opts = gpuOpts(9)
		gen = GPUData
	default:
		return nil, fmt.Errorf("unknown dataset %q (want env or gpu)", dataset)
	}
	data := gen(p, t+added, seed)
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, t)); err != nil {
		return nil, err
	}
	incSecs, err := timeIt(func() error {
		_, err := inc.PartialFit(data.ColSlice(t, t+added))
		return err
	})
	if err != nil {
		return nil, err
	}
	refitSecs, err := timeIt(func() error {
		_, err := core.Decompose(data, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &EnvTimingResult{
		Dataset: dataset, P: p, T: t, Added: added,
		Incremental: incSecs, Refit: refitSecs,
	}
	if incSecs > 0 {
		res.Speedup = refitSecs / incSecs
	}
	return res, nil
}

func scaled(v int, scale float64) int {
	s := int(float64(v) * scale)
	if s < 8 {
		s = 8
	}
	return s
}
