package bench

import (
	"testing"

	"imrdmd/internal/core"
)

// TestMixedPrecisionMatchesFloat64OnPaperWorkloads is the acceptance gate
// for the mixed-precision tier on the paperbench scenarios: Precision
// "mixed" must keep the same mode set as float64 (same per-node counts —
// the SVHT decisions agree) and reconstruct the data essentially as well,
// on both the SC Log and GPU Metrics workloads.
func TestMixedPrecisionMatchesFloat64OnPaperWorkloads(t *testing.T) {
	scenarios := []struct {
		name string
		p, T int
		dt   float64
	}{
		{"sclog", 48, 600, 20},
		{"gpu", 48, 600, 1},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var data = SCLogData(sc.p, sc.T, 3)
			if sc.name == "gpu" {
				data = GPUData(sc.p, sc.T, 3)
			}
			opts := core.Options{DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true}
			want, err := core.Decompose(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Precision = core.PrecisionMixed
			got, err := core.Decompose(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("node count %d vs %d", len(got.Nodes), len(want.Nodes))
			}
			for i, wn := range want.Nodes {
				gn := got.Nodes[i]
				if len(gn.Modes) != len(wn.Modes) {
					t.Fatalf("node %d (L%d [%d,%d)): mixed kept %d modes, f64 kept %d",
						i, wn.Level, wn.Start, wn.End, len(gn.Modes), len(wn.Modes))
				}
			}
			wantErr := want.ReconError(data)
			gotErr := got.ReconError(data)
			if gotErr > wantErr*1.01 {
				t.Fatalf("mixed reconstruction error %.6g vs f64 %.6g", gotErr, wantErr)
			}
		})
	}
}
