package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"imrdmd/internal/core"
	"imrdmd/internal/embed"
	"imrdmd/internal/viz"
)

// Fig9Row is one (method, size) measurement of the scaling comparison:
// InitialFit is the batch/initial cost at P×T, PartialFit the cost of
// absorbing the next 1,000-point (scaled) block for methods that support
// it (NaN otherwise).
type Fig9Row struct {
	Method     string
	P, T       int
	InitialFit float64
	PartialFit float64
}

// Fig9Config scales the experiment. The paper uses P=1,000 and
// T ∈ {1k, 2k, 5k, 10k, 20k, 30k} with 1,000-point partial fits,
// I-mrDMD at max_levels=4, max_cycles=2, do_svht=True.
type Fig9Config struct {
	Scale float64
	Seed  int64
	// SkipUMAP skips the O(P²·T) kNN methods (for quick runs).
	SkipUMAP bool
	// WithTSNE adds t-SNE (excluded from the paper's figure, reported in
	// its prose).
	WithTSNE bool
}

// RunFig9 regenerates the Fig. 9 completion-time comparison (E10).
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	p := scaled(1000, cfg.Scale)
	block := scaled(1000, cfg.Scale)
	sizes := []int{1000, 2000, 5000, 10000, 20000, 30000}
	var rows []Fig9Row

	// One dataset at the largest size serves every measurement.
	maxT := scaled(30000, cfg.Scale) + block
	data := SCLogData(p, maxT, cfg.Seed)

	for _, t0 := range sizes {
		t := scaled(t0, cfg.Scale)
		x := data.ColSlice(0, t)
		nxt := data.ColSlice(t, t+block)

		// PCA: batch only.
		pcaSecs, err := timeIt(func() error {
			_, err := (&embed.PCA{Components: 2}).FitTransform(x)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 PCA T=%d: %w", t, err)
		}
		rows = append(rows, Fig9Row{"PCA", p, t, pcaSecs, math.NaN()})

		// IPCA: initial fit = chunked batches; partial fit = one block.
		// Orientation: samples = time points (the natural streaming axis
		// for IncrementalPCA), i.e. the transpose of the sensor matrix.
		ip := &embed.IPCA{Components: 2, BatchSize: 10 * block}
		xt := x.T()
		ipcaInit, err := timeIt(func() error { return ip.PartialFit(xt) })
		if err != nil {
			return nil, err
		}
		nt := nxt.T()
		ipcaPart, err := timeIt(func() error { return ip.PartialFit(nt) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{"IPCA", p, t, ipcaInit, ipcaPart})

		if !cfg.SkipUMAP {
			umapSecs, err := timeIt(func() error {
				_, err := (&embed.UMAP{NNeighbors: 15, Epochs: 100, Seed: cfg.Seed}).FitTransform(x)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{"UMAP", p, t, umapSecs, math.NaN()})

			au := &embed.AlignedUMAP{Base: embed.UMAP{NNeighbors: 15, Epochs: 100, Seed: cfg.Seed}}
			auInit, err := timeIt(func() error {
				_, err := au.InitialFit(x)
				return err
			})
			if err != nil {
				return nil, err
			}
			// Aligned-UMAP's partial fit embeds the newest window of the
			// same width as the update block.
			win := data.ColSlice(t+block-minInt(t, block), t+block)
			auPart, err := timeIt(func() error {
				_, err := au.PartialFit(win)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{"Aligned-UMAP", p, t, auInit, auPart})
		}

		if cfg.WithTSNE {
			tsneSecs, err := timeIt(func() error {
				_, err := (&embed.TSNE{Perplexity: 30, Iters: 250, Seed: cfg.Seed}).FitTransform(x)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{"TSNE", p, t, tsneSecs, math.NaN()})
		}

		// mrDMD: batch refit; I-mrDMD: initial + one partial (the paper's
		// max_levels=4, max_cycles=2, do_svht=True configuration).
		opts := core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Parallel: true}
		mrSecs, err := timeIt(func() error {
			_, err := core.Decompose(x, opts)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{"mrDMD", p, t, mrSecs, math.NaN()})

		inc := core.NewIncremental(opts)
		incInit, err := timeIt(func() error { return inc.InitialFit(x) })
		if err != nil {
			return nil, err
		}
		incPart, err := timeIt(func() error {
			_, err := inc.PartialFit(nxt)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{"I-mrDMD", p, t, incInit, incPart})
	}
	return rows, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatFig9 renders the measurement table.
func FormatFig9(rows []Fig9Row) string {
	var cells [][]string
	for _, r := range rows {
		part := "-"
		if !math.IsNaN(r.PartialFit) {
			part = secs(r.PartialFit)
		}
		cells = append(cells, []string{
			r.Method, fmt.Sprint(r.P), fmt.Sprint(r.T), secs(r.InitialFit), part,
		})
	}
	return Table([]string{"Method", "P", "T", "Initial/Full (s)", "Partial (s)"}, cells)
}

// CheckFig9Shape asserts the paper's qualitative ordering — I-mrDMD's
// partial fit beats the mrDMD refit — at every size beyond the smallest
// (where fixed per-update overhead dominates; the paper's own Table I
// shows partial > initial at its smallest GPU size too).
func CheckFig9Shape(rows []Fig9Row) error {
	type key struct {
		method string
		t      int
	}
	idx := map[key]Fig9Row{}
	maxT := 0
	for _, r := range rows {
		idx[key{r.Method, r.T}] = r
		if r.T > maxT {
			maxT = r.T
		}
	}
	for _, r := range rows {
		// Below half the sweep, both sides are dominated by fixed
		// per-call overhead at bench scale; the claim is about the
		// compute-dominated regime.
		if r.Method != "I-mrDMD" || r.T < maxT/2 {
			continue
		}
		mr, ok := idx[key{"mrDMD", r.T}]
		if !ok {
			continue
		}
		if r.PartialFit >= mr.InitialFit {
			return fmt.Errorf("T=%d: I-mrDMD partial %.3fs not below mrDMD %.3fs",
				r.T, r.PartialFit, mr.InitialFit)
		}
	}
	// At the largest size the advantage must be decisive (paper: always).
	inc, okI := idx[key{"I-mrDMD", maxT}]
	mr, okM := idx[key{"mrDMD", maxT}]
	if okI && okM && inc.PartialFit >= 0.75*mr.InitialFit {
		return fmt.Errorf("T=%d: I-mrDMD partial %.3fs not well below mrDMD %.3fs",
			maxT, inc.PartialFit, mr.InitialFit)
	}
	return nil
}

// WriteFig9Plot renders the scaling curves (log-y, like reading the
// paper's bar chart as trends).
func WriteFig9Plot(rows []Fig9Row, outDir string) (string, error) {
	byMethod := map[string][][2]float64{}
	var order []string
	for _, r := range rows {
		v := r.InitialFit
		name := r.Method
		if !math.IsNaN(r.PartialFit) {
			// Plot partial-fit cost for incremental methods; that is the
			// quantity Fig. 9 emphasizes.
			v = r.PartialFit
			name += " (partial)"
		}
		if _, seen := byMethod[name]; !seen {
			order = append(order, name)
		}
		byMethod[name] = append(byMethod[name], [2]float64{float64(r.T), v})
	}
	var series []viz.Series
	for _, name := range order {
		pts := byMethod[name]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		series = append(series, viz.Series{Name: name, X: xs, Y: ys})
	}
	path := filepath.Join(outDir, "fig9_scaling.svg")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	err = viz.RenderPlot(f, viz.PlotConfig{
		Title:  "Fig. 9: completion time vs data size",
		XLabel: "time points", YLabel: "seconds (log)", W: 820, H: 480, LogY: true,
	}, series...)
	return path, err
}
