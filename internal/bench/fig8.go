package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"imrdmd/internal/baseline"
	"imrdmd/internal/core"
	"imrdmd/internal/embed"
	"imrdmd/internal/mat"
	"imrdmd/internal/telemetry"
	"imrdmd/internal/viz"
)

// Fig8Result compares how each method separates baseline from
// non-baseline readings (experiment E9). Separation is the gap statistic
// of DESIGN.md §3: positive = the populations separate.
type Fig8Result struct {
	Methods    []string
	Separation map[string]float64
	Artifacts  []string
}

// RunFig8 reproduces Fig. 8: 40 readings (20 baseline around 46–57 °C, 20
// non-baseline) embedded by PCA, IPCA, UMAP, t-SNE and Aligned-UMAP, and
// z-scored by mrDMD and I-mrDMD. The paper's observation: the embedding
// methods produce interleaved micro-clusters while the mrDMD z-scores
// separate the populations.
func RunFig8(steps int, seed int64, outDir string) (*Fig8Result, error) {
	if steps <= 0 {
		steps = 1000
	}
	const nBase, nAnom = 20, 20
	n := nBase + nAnom

	// Baseline readings: normal idle nodes. Non-baseline: hot nodes with
	// close-lying magnitudes (the paper deliberately picks a hard case:
	// "the dataset has very close lying measurements between the
	// baselines and non-baselines").
	prof := telemetry.ThetaEnv()
	gen := telemetry.NewGenerator(prof, n, seed)
	horizon := float64(steps) * prof.SampleInterval
	for i := nBase; i < n; i++ {
		gen.Anomalies = append(gen.Anomalies, telemetry.Anomaly{
			Kind: telemetry.HotNode, Node: i, Start: 0, End: horizon,
			Magnitude: 4 + float64(i-nBase)*0.4, // close-lying to well-separated
		})
	}
	data := gen.Matrix(0, steps)

	normal := make([]int, nBase)
	anomalous := make([]int, nAnom)
	for i := range normal {
		normal[i] = i
	}
	for i := range anomalous {
		anomalous[i] = nBase + i
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	res := &Fig8Result{Separation: map[string]float64{}}
	var panels []viz.Series
	addPanel := func(name string, y *mat.Dense) {
		// 2-D embedding panel: baseline blue, non-baseline red.
		var bx, by, ax, ay []float64
		for _, i := range normal {
			bx = append(bx, y.At(i, 0))
			by = append(by, y.At(i, 1))
		}
		for _, i := range anomalous {
			ax = append(ax, y.At(i, 0))
			ay = append(ay, y.At(i, 1))
		}
		panels = append(panels,
			viz.Series{Name: name + " baseline", X: bx, Y: by, Color: "#1f77b4", Points: true},
			viz.Series{Name: name + " non-baseline", X: ax, Y: ay, Color: "#d62728", Points: true},
		)
		// Separation in embedding space: treat the first component as the
		// score (matches eyeballing cluster separation along an axis).
		score := make([]float64, n)
		for i := 0; i < n; i++ {
			score[i] = y.At(i, 0)
		}
		if z, err := baseline.ZScores(score, normal); err == nil {
			res.Separation[name] = baseline.SeparationGap(z, normal, anomalous)
		}
		res.Methods = append(res.Methods, name)
	}

	embedders := []embed.Embedder{
		&embed.PCA{Components: 2},
		&embed.IPCA{Components: 2, BatchSize: 10},
		&embed.UMAP{NNeighbors: 15, Epochs: 150, Seed: seed},
		&embed.TSNE{Components: 2, Perplexity: 10, Iters: 400, Seed: seed},
	}
	for _, e := range embedders {
		y, err := e.FitTransform(data)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", e.Name(), err)
		}
		addPanel(e.Name(), y)
	}
	// Aligned-UMAP over two half windows (its sequential mode).
	au := &embed.AlignedUMAP{Base: embed.UMAP{NNeighbors: 15, Epochs: 150, Seed: seed}}
	if _, err := au.InitialFit(data.ColSlice(0, steps/2)); err != nil {
		return nil, err
	}
	y2, err := au.PartialFit(data.ColSlice(steps/2, steps))
	if err != nil {
		return nil, err
	}
	addPanel(au.Name(), y2)

	// mrDMD and I-mrDMD: per-reading z-scores (the paper plots z-score vs
	// node ID for these two).
	opts := scOpts(5)
	batch, err := core.Decompose(data, opts)
	if err != nil {
		return nil, err
	}
	zBatch, err := baseline.ZScores(batch.ReadingLevels(core.FullBand()), normal)
	if err != nil {
		return nil, err
	}
	res.Separation["mrDMD"] = baseline.SeparationGap(zBatch, normal, anomalous)
	res.Methods = append(res.Methods, "mrDMD")

	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, steps/2)); err != nil {
		return nil, err
	}
	if _, err := inc.PartialFit(data.ColSlice(steps/2, steps)); err != nil {
		return nil, err
	}
	zInc, err := baseline.ZScores(inc.Tree().ReadingLevels(core.FullBand()), normal)
	if err != nil {
		return nil, err
	}
	res.Separation["I-mrDMD"] = baseline.SeparationGap(zInc, normal, anomalous)
	res.Methods = append(res.Methods, "I-mrDMD")

	// Artifacts: embedding panel + z-score strip chart + CSV.
	panelPath := filepath.Join(outDir, "fig8_embeddings.svg")
	f, err := os.Create(panelPath)
	if err != nil {
		return nil, err
	}
	err = viz.RenderPlot(f, viz.PlotConfig{
		Title: "Fig. 8: embedding methods (blue=baseline, red=non-baseline)",
		W:     860, H: 560,
	}, panels...)
	f.Close()
	if err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, panelPath)

	zPath := filepath.Join(outDir, "fig8_zscores.svg")
	f, err = os.Create(zPath)
	if err != nil {
		return nil, err
	}
	ids := make([]float64, n)
	for i := range ids {
		ids[i] = float64(i)
	}
	err = viz.RenderPlot(f, viz.PlotConfig{
		Title:  "Fig. 8: mrDMD / I-mrDMD z-scores by node ID",
		XLabel: "node ID", YLabel: "z-score", W: 720, H: 360,
	},
		viz.Series{Name: "mrDMD", X: ids, Y: zBatch, Points: true, Color: "#2ca02c"},
		viz.Series{Name: "I-mrDMD", X: ids, Y: zInc, Points: true, Color: "#9467bd"},
	)
	f.Close()
	if err != nil {
		return nil, err
	}
	res.Artifacts = append(res.Artifacts, zPath)

	csvPath := filepath.Join(outDir, "fig8_zscores.csv")
	fc, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(fc, "node,is_baseline,z_mrdmd,z_imrdmd")
	for i := 0; i < n; i++ {
		isBase := 0
		if i < nBase {
			isBase = 1
		}
		fmt.Fprintf(fc, "%d,%d,%.4f,%.4f\n", i, isBase, zBatch[i], zInc[i])
	}
	fc.Close()
	res.Artifacts = append(res.Artifacts, csvPath)
	return res, nil
}

// FormatFig8 renders the separation table.
func FormatFig8(res *Fig8Result) string {
	var rows [][]string
	for _, m := range res.Methods {
		rows = append(rows, []string{m, fmt.Sprintf("%+.3f", res.Separation[m])})
	}
	return Table([]string{"Method", "Separation gap"}, rows)
}
