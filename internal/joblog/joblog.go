// Package joblog models the job-log fidelity level of the paper's
// multifidelity stack: job records (project, queue, node allocation,
// start/end times), a first-fit scheduler simulator that produces
// realistic schedules over a rack topology, and a Cobalt-style CSV
// encoding. The case studies align these records with environment-log
// patterns (which nodes ran which project when temperatures rose).
package joblog

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Job is one scheduler record.
type Job struct {
	ID      int
	Project string
	Queue   string
	Nodes   []int   // dense node indices (rack enumeration order)
	Start   float64 // seconds since the trace epoch
	End     float64 // seconds since the trace epoch
}

// Duration returns the job's wall time in seconds.
func (j *Job) Duration() float64 { return j.End - j.Start }

// Schedule is a set of jobs over a machine of NumNodes nodes.
type Schedule struct {
	NumNodes int
	Horizon  float64 // seconds covered by the trace
	Jobs     []Job

	// byNode[i] lists the indices into Jobs that touched node i, sorted
	// by start time. Built lazily by index().
	byNode [][]int
}

// index builds the per-node interval lookup.
func (s *Schedule) index() {
	if s.byNode != nil {
		return
	}
	s.byNode = make([][]int, s.NumNodes)
	order := make([]int, len(s.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.Jobs[order[a]].Start < s.Jobs[order[b]].Start })
	for _, ji := range order {
		for _, n := range s.Jobs[ji].Nodes {
			if n >= 0 && n < s.NumNodes {
				s.byNode[n] = append(s.byNode[n], ji)
			}
		}
	}
}

// BusyAt returns the job occupying node at time t, if any. Nodes run at
// most one job at a time (the scheduler never double-books).
func (s *Schedule) BusyAt(node int, t float64) (*Job, bool) {
	if node < 0 || node >= s.NumNodes {
		return nil, false
	}
	s.index()
	for _, ji := range s.byNode[node] {
		j := &s.Jobs[ji]
		if j.Start > t {
			break
		}
		if t < j.End {
			return j, true
		}
	}
	return nil, false
}

// NodesOf returns the union of nodes used by jobs of the given projects.
func (s *Schedule) NodesOf(projects ...string) []int {
	want := map[string]bool{}
	for _, p := range projects {
		want[p] = true
	}
	seen := map[int]bool{}
	for i := range s.Jobs {
		if want[s.Jobs[i].Project] {
			for _, n := range s.Jobs[i].Nodes {
				seen[n] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Utilization returns the fraction of node-seconds busy over [t0, t1).
func (s *Schedule) Utilization(t0, t1 float64) float64 {
	if t1 <= t0 || s.NumNodes == 0 {
		return 0
	}
	var busy float64
	for i := range s.Jobs {
		j := &s.Jobs[i]
		lo, hi := j.Start, j.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi > lo {
			busy += (hi - lo) * float64(len(j.Nodes))
		}
	}
	return busy / ((t1 - t0) * float64(s.NumNodes))
}

// Validate checks scheduler invariants: jobs within the horizon, node
// indices in range, and no node double-booked.
func (s *Schedule) Validate() error {
	type iv struct {
		start, end float64
		id         int
	}
	per := make(map[int][]iv)
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if j.End <= j.Start {
			return fmt.Errorf("joblog: job %d has nonpositive duration", j.ID)
		}
		if len(j.Nodes) == 0 {
			return fmt.Errorf("joblog: job %d has no nodes", j.ID)
		}
		for _, n := range j.Nodes {
			if n < 0 || n >= s.NumNodes {
				return fmt.Errorf("joblog: job %d uses out-of-range node %d", j.ID, n)
			}
			per[n] = append(per[n], iv{j.Start, j.End, j.ID})
		}
	}
	for n, list := range per {
		sort.Slice(list, func(a, b int) bool { return list[a].start < list[b].start })
		for i := 1; i < len(list); i++ {
			if list[i].start < list[i-1].end {
				return fmt.Errorf("joblog: node %d double-booked by jobs %d and %d",
					n, list[i-1].id, list[i].id)
			}
		}
	}
	return nil
}

// WriteCSV emits Cobalt-style records:
// id,project,queue,node_count,node_list(';'-separated),start,end.
func (s *Schedule) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job_id", "project", "queue", "node_count", "nodes", "start_s", "end_s"}); err != nil {
		return err
	}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		nodes := make([]string, len(j.Nodes))
		for k, n := range j.Nodes {
			nodes[k] = strconv.Itoa(n)
		}
		rec := []string{
			strconv.Itoa(j.ID), j.Project, j.Queue,
			strconv.Itoa(len(j.Nodes)), strings.Join(nodes, ";"),
			strconv.FormatFloat(j.Start, 'f', 3, 64),
			strconv.FormatFloat(j.End, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV.
func ReadCSV(r io.Reader, numNodes int, horizon float64) (*Schedule, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("joblog: %w", err)
	}
	s := &Schedule{NumNodes: numNodes, Horizon: horizon}
	for i, rec := range rows {
		if i == 0 && len(rec) > 0 && rec[0] == "job_id" {
			continue // header
		}
		if len(rec) != 7 {
			return nil, fmt.Errorf("joblog: row %d has %d fields, want 7", i, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("joblog: row %d id: %w", i, err)
		}
		var nodes []int
		if rec[4] != "" {
			for _, f := range strings.Split(rec[4], ";") {
				n, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("joblog: row %d nodes: %w", i, err)
				}
				nodes = append(nodes, n)
			}
		}
		start, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("joblog: row %d start: %w", i, err)
		}
		end, err := strconv.ParseFloat(rec[6], 64)
		if err != nil {
			return nil, fmt.Errorf("joblog: row %d end: %w", i, err)
		}
		s.Jobs = append(s.Jobs, Job{ID: id, Project: rec[1], Queue: rec[2], Nodes: nodes, Start: start, End: end})
	}
	return s, nil
}
