package joblog

import (
	"math"
	"math/rand"
	"sort"
)

// SimConfig parameterizes the scheduler simulator.
type SimConfig struct {
	NumNodes int
	Horizon  float64 // seconds of trace to generate
	Seed     int64

	// Projects to draw from; weights need not be normalized. Empty uses a
	// small default mix.
	Projects []ProjectMix

	// MeanInterarrival is the mean seconds between job submissions
	// (exponential). Default 600.
	MeanInterarrival float64
	// MeanDuration is the mean job wall time in seconds (exponential,
	// clipped to [MinDuration, Horizon/2]). Default 4 hours.
	MeanDuration float64
	// MinDuration floors job length. Default 300 s.
	MinDuration float64
}

// ProjectMix weights a project's share of submissions and its typical
// allocation size.
type ProjectMix struct {
	Name     string
	Weight   float64
	MeanSize int // mean nodes per job (geometric-ish)
	MaxSize  int // hard cap; 0 = quarter of the machine
}

func defaultProjects(numNodes int) []ProjectMix {
	quarter := numNodes / 4
	if quarter < 1 {
		quarter = 1
	}
	return []ProjectMix{
		{Name: "ClimateSim", Weight: 3, MeanSize: numNodes / 8, MaxSize: quarter},
		{Name: "LatticeQCD", Weight: 2, MeanSize: numNodes / 16, MaxSize: quarter},
		{Name: "Genomics", Weight: 2, MeanSize: numNodes / 32, MaxSize: quarter},
		{Name: "MatSci", Weight: 3, MeanSize: numNodes / 24, MaxSize: quarter},
	}
}

// Simulate produces a schedule with a first-fit contiguous allocator:
// arrivals are Poisson, sizes per-project, durations exponential, and
// allocations prefer contiguous node ranges (locality — nodes in close
// proximity show similar z-scores in the paper's Fig. 4).
func Simulate(cfg SimConfig) *Schedule {
	if cfg.NumNodes <= 0 || cfg.Horizon <= 0 {
		return &Schedule{NumNodes: cfg.NumNodes, Horizon: cfg.Horizon}
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 600
	}
	if cfg.MeanDuration <= 0 {
		cfg.MeanDuration = 4 * 3600
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = 300
	}
	projects := cfg.Projects
	if len(projects) == 0 {
		projects = defaultProjects(cfg.NumNodes)
	}
	var wsum float64
	for _, p := range projects {
		wsum += p.Weight
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{NumNodes: cfg.NumNodes, Horizon: cfg.Horizon}

	// freeAt[n] = time when node n becomes free.
	freeAt := make([]float64, cfg.NumNodes)
	now := 0.0
	id := 1
	for {
		now += rng.ExpFloat64() * cfg.MeanInterarrival
		if now >= cfg.Horizon {
			break
		}
		// Pick a project.
		var proj ProjectMix
		r := rng.Float64() * wsum
		for _, p := range projects {
			if r -= p.Weight; r <= 0 {
				proj = p
				break
			}
		}
		if proj.Name == "" {
			proj = projects[len(projects)-1]
		}
		size := sampleSize(rng, proj, cfg.NumNodes)
		dur := cfg.MinDuration + rng.ExpFloat64()*cfg.MeanDuration
		if maxDur := cfg.Horizon / 2; dur > maxDur {
			dur = maxDur
		}
		nodes := allocate(freeAt, now, size)
		if nodes == nil {
			continue // machine busy; job abandoned (backfill out of scope)
		}
		end := now + dur
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		if end <= now {
			continue
		}
		for _, n := range nodes {
			freeAt[n] = end
		}
		s.Jobs = append(s.Jobs, Job{
			ID: id, Project: proj.Name, Queue: queueFor(size, cfg.NumNodes),
			Nodes: nodes, Start: now, End: end,
		})
		id++
	}
	return s
}

func sampleSize(rng *rand.Rand, p ProjectMix, numNodes int) int {
	mean := p.MeanSize
	if mean < 1 {
		mean = 1
	}
	size := int(math.Round(rng.ExpFloat64() * float64(mean)))
	if size < 1 {
		size = 1
	}
	maxSize := p.MaxSize
	if maxSize <= 0 {
		maxSize = numNodes / 4
		if maxSize < 1 {
			maxSize = 1
		}
	}
	if size > maxSize {
		size = maxSize
	}
	if size > numNodes {
		size = numNodes
	}
	return size
}

// queueFor mimics facility queue naming by allocation size.
func queueFor(size, numNodes int) string {
	switch {
	case size >= numNodes/2:
		return "large"
	case size >= numNodes/8:
		return "medium"
	default:
		return "small"
	}
}

// allocate finds `size` nodes free at time now, preferring the longest
// contiguous runs (first-fit over runs sorted by start index). Returns
// nil when not enough nodes are free.
func allocate(freeAt []float64, now float64, size int) []int {
	free := make([]int, 0, len(freeAt))
	for n, t := range freeAt {
		if t <= now {
			free = append(free, n)
		}
	}
	if len(free) < size {
		return nil
	}
	// Find contiguous runs in the free list.
	type run struct{ start, length int }
	var runs []run
	cur := run{start: free[0], length: 1}
	for i := 1; i < len(free); i++ {
		if free[i] == free[i-1]+1 {
			cur.length++
			continue
		}
		runs = append(runs, cur)
		cur = run{start: free[i], length: 1}
	}
	runs = append(runs, cur)
	// First-fit: first run that holds the whole job.
	for _, r := range runs {
		if r.length >= size {
			nodes := make([]int, size)
			for i := range nodes {
				nodes[i] = r.start + i
			}
			return nodes
		}
	}
	// Fragmented: take the largest runs first.
	sort.Slice(runs, func(a, b int) bool { return runs[a].length > runs[b].length })
	nodes := make([]int, 0, size)
	for _, r := range runs {
		for i := 0; i < r.length && len(nodes) < size; i++ {
			nodes = append(nodes, r.start+i)
		}
		if len(nodes) == size {
			break
		}
	}
	sort.Ints(nodes)
	return nodes
}
