package joblog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func simSmall(seed int64) *Schedule {
	return Simulate(SimConfig{
		NumNodes: 64, Horizon: 24 * 3600, Seed: seed,
		MeanInterarrival: 300, MeanDuration: 2 * 3600,
	})
}

func TestSimulateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := simSmall(seed)
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateProducesJobs(t *testing.T) {
	s := simSmall(1)
	if len(s.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	if u := s.Utilization(0, s.Horizon); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of (0,1]", u)
	}
}

func TestBusyAtConsistent(t *testing.T) {
	s := simSmall(2)
	for i := range s.Jobs {
		j := &s.Jobs[i]
		mid := (j.Start + j.End) / 2
		for _, n := range j.Nodes {
			got, ok := s.BusyAt(n, mid)
			if !ok {
				t.Fatalf("node %d not busy during its own job %d", n, j.ID)
			}
			if got.ID != j.ID {
				t.Fatalf("node %d at %f: got job %d want %d", n, mid, got.ID, j.ID)
			}
			// Just before start the node must not be running this job.
			if g, ok := s.BusyAt(n, j.Start-1e-6); ok && g.ID == j.ID {
				t.Fatalf("job %d active before its start", j.ID)
			}
		}
	}
}

func TestBusyAtOutOfRange(t *testing.T) {
	s := simSmall(3)
	if _, ok := s.BusyAt(-1, 0); ok {
		t.Fatal("negative node busy")
	}
	if _, ok := s.BusyAt(10_000, 0); ok {
		t.Fatal("out-of-range node busy")
	}
}

func TestNodesOfProjects(t *testing.T) {
	s := simSmall(4)
	// Union over all projects covers every allocated node exactly.
	projects := map[string]bool{}
	for i := range s.Jobs {
		projects[s.Jobs[i].Project] = true
	}
	var names []string
	for p := range projects {
		names = append(names, p)
	}
	all := s.NodesOf(names...)
	seen := map[int]bool{}
	for i := range s.Jobs {
		for _, n := range s.Jobs[i].Nodes {
			seen[n] = true
		}
	}
	if len(all) != len(seen) {
		t.Fatalf("NodesOf union returned %d nodes, want %d", len(all), len(seen))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := simSmall(5)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, s.NumNodes, s.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(s.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(got.Jobs), len(s.Jobs))
	}
	for i := range s.Jobs {
		a, b := s.Jobs[i], got.Jobs[i]
		if a.ID != b.ID || a.Project != b.Project || a.Queue != b.Queue ||
			len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"job_id,project,queue,node_count,nodes,start_s,end_s\nx,p,q,1,0,0,10\n",
		"job_id,project,queue,node_count,nodes,start_s,end_s\n1,p,q,1,z,0,10\n",
		"job_id,project,queue,node_count,nodes,start_s,end_s\n1,p,q,1,0,z,10\n",
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s), 4, 100); err == nil {
			t.Errorf("ReadCSV(%q) should fail", s)
		}
	}
}

func TestValidateCatchesDoubleBooking(t *testing.T) {
	s := &Schedule{NumNodes: 4, Horizon: 100, Jobs: []Job{
		{ID: 1, Project: "a", Nodes: []int{1}, Start: 0, End: 50},
		{ID: 2, Project: "b", Nodes: []int{1}, Start: 25, End: 75},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("double booking not detected")
	}
}

func TestValidateCatchesBadJobs(t *testing.T) {
	cases := []*Schedule{
		{NumNodes: 4, Jobs: []Job{{ID: 1, Nodes: []int{0}, Start: 10, End: 10}}},
		{NumNodes: 4, Jobs: []Job{{ID: 1, Nodes: nil, Start: 0, End: 10}}},
		{NumNodes: 4, Jobs: []Job{{ID: 1, Nodes: []int{9}, Start: 0, End: 10}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
}

func TestAllocateContiguityPreference(t *testing.T) {
	// With an empty machine the allocator must hand out a contiguous run.
	freeAt := make([]float64, 32)
	nodes := allocate(freeAt, 0, 8)
	if len(nodes) != 8 {
		t.Fatalf("allocated %d nodes, want 8", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] != nodes[i-1]+1 {
			t.Fatalf("allocation not contiguous: %v", nodes)
		}
	}
}

func TestAllocateFragmented(t *testing.T) {
	// Only fragmented space: must still gather enough nodes.
	freeAt := make([]float64, 10)
	for i := 0; i < 10; i += 2 {
		freeAt[i] = 100 // evens busy
	}
	nodes := allocate(freeAt, 0, 3)
	if len(nodes) != 3 {
		t.Fatalf("allocated %v, want 3 odd nodes", nodes)
	}
	for _, n := range nodes {
		if n%2 == 0 {
			t.Fatalf("allocated busy node %d", n)
		}
	}
}

func TestAllocateInsufficient(t *testing.T) {
	freeAt := []float64{100, 100, 0}
	if nodes := allocate(freeAt, 0, 2); nodes != nil {
		t.Fatalf("allocation should fail, got %v", nodes)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	a := simSmall(42)
	b := simSmall(42)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("same seed produced different schedules")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Start != b.Jobs[i].Start || a.Jobs[i].Project != b.Jobs[i].Project {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestUtilizationEdges(t *testing.T) {
	s := &Schedule{NumNodes: 2, Horizon: 100, Jobs: []Job{
		{ID: 1, Project: "a", Nodes: []int{0, 1}, Start: 0, End: 100},
	}}
	if u := s.Utilization(0, 100); u != 1 {
		t.Fatalf("full utilization = %g want 1", u)
	}
	if u := s.Utilization(100, 100); u != 0 {
		t.Fatal("empty window should be 0")
	}
}
