package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// lowRankPlusNoise builds an m×n matrix with r dominant directions at the
// given scale plus small noise — the shape of a subtree-window residual.
func lowRankPlusNoise(rng *rand.Rand, m, n, r int, scale, noise float64) *mat.Dense {
	a := mat.NewDense(m, n)
	for k := 0; k < r; k++ {
		u := make([]float64, m)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		w := scale / float64(int(1)<<k) // geometrically decaying spectrum
		for i := 0; i < m; i++ {
			row := a.Row(i)
			for j := 0; j < n; j++ {
				row[j] += w * u[i] * v[j]
			}
		}
	}
	for i := range a.Data {
		a.Data[i] += noise * scale * rng.NormFloat64()
	}
	return a
}

// TestMixedComputeMatchesFloat64 pins the refinement contract: the mixed
// tier keeps the same SVHT rank as the f64 SVHT decision on clear-cut
// spectra, its kept singular values agree to ~1e-6 relative, and its
// factors reconstruct the kept part of the data as well as the truncated
// f64 factors do.
func TestMixedComputeMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := compute.NewWorkspace()
	shapes := []struct{ m, n, r int }{
		{40, 9, 3},   // tall: QR-preconditioned screen
		{9, 40, 3},   // wide: transpose route
		{24, 24, 4},  // square
		{200, 16, 5}, // subtree-window shape
		{7, 5, 2},    // small
	}
	for _, sh := range shapes {
		a := lowRankPlusNoise(rng, sh.m, sh.n, sh.r, 10, 1e-3)
		want := ComputeWith(nil, ws, a)
		r64 := SVHTRank(want.S, sh.m, sh.n)
		got := MixedCompute(nil, ws, a, true, 0)
		if got.Rank() != r64 {
			t.Fatalf("%dx%d: mixed kept rank %d, f64 SVHT rank %d (σ64=%v)",
				sh.m, sh.n, got.Rank(), r64, want.S)
		}
		for i := 0; i < r64; i++ {
			rel := math.Abs(want.S[i]-got.S[i]) / want.S[i]
			if rel > 1e-6 {
				t.Fatalf("%dx%d: σ[%d] relative error %.2e (%v vs %v)",
					sh.m, sh.n, i, rel, got.S[i], want.S[i])
			}
		}
		// Reconstruction of the kept part: mixed factors must explain the
		// data as well as the SVHT-truncated f64 factors.
		wantErr := mat.Sub(a, want.Truncate(r64).Reconstruct()).FrobNorm()
		gotErr := mat.Sub(a, got.Reconstruct()).FrobNorm()
		if gotErr > wantErr*(1+1e-4)+1e-6*want.S[0] {
			t.Fatalf("%dx%d: mixed reconstruction ‖err‖=%.6e vs f64 %.6e", sh.m, sh.n, gotErr, wantErr)
		}
	}
}

// TestMixedComputeFixedRank pins the rankCap route (core.Options.Rank):
// the screen truncates at the cap and the refined triplets match the f64
// factorization's leading ones.
func TestMixedComputeFixedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := compute.NewWorkspace()
	a := lowRankPlusNoise(rng, 60, 12, 5, 1, 1e-4)
	want := ComputeWith(nil, ws, a)
	got := MixedCompute(nil, ws, a, false, 3)
	if got.Rank() != 3 {
		t.Fatalf("rankCap=3 kept %d", got.Rank())
	}
	for i := 0; i < 3; i++ {
		rel := math.Abs(want.S[i]-got.S[i]) / want.S[i]
		if rel > 1e-6 {
			t.Fatalf("σ[%d] relative error %.2e", i, rel)
		}
	}
}

// TestMixedComputeOutOfF32Range pins the screen's pre-scaling: windows
// whose magnitudes sit entirely outside float32 range (below ~1e-38 the
// raw narrowing underflows to zero, above ~3e38 it overflows to ±Inf)
// must still keep the same SVHT rank as the f64 tier, because the screen
// normalizes by ‖A‖max before narrowing.
func TestMixedComputeOutOfF32Range(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ws := compute.NewWorkspace()
	for _, scale := range []float64{1e-300, 1e-46, 1e200} {
		a := lowRankPlusNoise(rng, 50, 10, 3, scale, 1e-3)
		want := ComputeWith(nil, ws, a)
		r64 := SVHTRank(want.S, 50, 10)
		got := MixedCompute(nil, ws, a, true, 0)
		if got.Rank() != r64 {
			t.Fatalf("scale %.0e: mixed kept %d directions, f64 SVHT keeps %d (σ=%v)",
				scale, got.Rank(), r64, got.S)
		}
		for i := 0; i < r64; i++ {
			rel := math.Abs(want.S[i]-got.S[i]) / want.S[i]
			if rel > 1e-6 {
				t.Fatalf("scale %.0e: σ[%d] relative error %.2e", scale, i, rel)
			}
		}
	}
}

// TestMixedComputeZeroWindow pins the screening skip: a numerically zero
// window short-circuits to the canonical zero decomposition without a
// float64 refinement pass, matching ComputeWith's rank-0 shape.
func TestMixedComputeZeroWindow(t *testing.T) {
	ws := compute.NewWorkspace()
	a := mat.NewDense(30, 8)
	got := MixedCompute(nil, ws, a, true, 0)
	if got.Rank() != 1 || got.S[0] != 0 {
		t.Fatalf("zero window: rank=%d S=%v, want the canonical zero triplet", got.Rank(), got.S)
	}
	if got.U.R != 30 || got.U.C != 1 || got.V.R != 8 || got.V.C != 1 {
		t.Fatalf("zero window factor shapes: U %dx%d V %dx%d", got.U.R, got.U.C, got.V.R, got.V.C)
	}
}

// TestScreeningNeverDropsKeptWindow is the mixed-vs-float64 agreement
// property (ISSUE 3 satellite): across random window shapes, ranks,
// scales (1e-12…1e12) and noise levels, the f32 screening pass must never
// drop a window — or a direction — that the f64 SVHT decision keeps. The
// guard is tolerance-based, skipping windows where the two tiers may
// legitimately disagree: a singular value within ±5% of the SVHT
// threshold (either decision is defensible there), or spectrum mass below
// f32 visibility (3e-6 relative — the f64 tier sees directions the f32
// screen cannot represent, which shifts SVHT's median). Everywhere else
// the mixed kept rank must equal the f64 SVHT rank exactly. CI runs this
// under -race, which also exercises the shared f32 pack-buffer pool
// through the concurrent test binary.
func TestScreeningNeverDropsKeptWindow(t *testing.T) {
	ws := compute.NewWorkspace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(60)
		n := 2 + rng.Intn(24)
		r := 1 + rng.Intn(min(m, n))
		scale := math.Pow(10, float64(rng.Intn(25)-12)) // 1e-12 … 1e12
		noise := math.Pow(10, -float64(rng.Intn(6)))    // 1e0 … 1e-5 relative
		a := lowRankPlusNoise(rng, m, n, r, scale, noise)

		want := ComputeWith(nil, ws, a)
		got := MixedCompute(nil, ws, a, true, 0)

		// A window with any signal must never be screened away entirely.
		if want.S[0] > 0 && (got.Rank() == 0 || got.S[0] == 0) {
			t.Logf("seed %d %dx%d: window with σmax=%v screened to zero", seed, m, n, want.S[0])
			return false
		}

		// Tolerance guards.
		for _, s := range want.S {
			if s > relDropTol*want.S[0] && s < 3e-6*want.S[0] {
				return true // sub-f32-visible direction: median shift is legitimate
			}
		}
		beta := float64(min(m, n)) / float64(max(m, n))
		omega := 0.56*beta*beta*beta - 0.95*beta*beta + 1.82*beta + 1.43
		tau := omega * medianWith(nil, want.S)
		for _, s := range want.S {
			if s > tau/1.05 && s < tau*1.05 {
				return true // borderline SVHT call
			}
		}

		r64 := SVHTRank(want.S, m, n)
		if got.Rank() < r64 {
			t.Logf("seed %d %dx%d scale=%.0e: mixed kept %d directions, f64 SVHT keeps %d (σ64=%v)",
				seed, m, n, scale, got.Rank(), r64, want.S[:r64])
			return false
		}
		if got.Rank() != r64 {
			t.Logf("seed %d %dx%d scale=%.0e: mixed kept rank %d != f64 SVHT rank %d",
				seed, m, n, scale, got.Rank(), r64)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
