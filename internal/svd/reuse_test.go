package svd

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// reconError returns ‖X − U diag(S) Vᵀ‖_F / ‖X‖_F.
func reconError(x *mat.Dense, r *Result) float64 {
	diff := mat.Sub(x, r.Reconstruct())
	return diff.FrobNorm() / (1 + x.FrobNorm())
}

// TestIncrementalBufferReuseUnderRepeatedUpdates drives a long stream of
// column updates through one Incremental and checks that (a) the
// workspace pool is actually being hit once warm, and (b) accuracy does
// not degrade versus a from-scratch SVD of the accumulated matrix. Run
// with -race this also shakes out any buffer recycled while still
// referenced.
func TestIncrementalBufferReuseUnderRepeatedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, rounds := 60, 5, 24
	first := randDense(rng, m, 12)
	eng := compute.NewEngine(4)
	defer eng.Close()
	inc := NewIncrementalWith(eng, nil, first, 0)
	all := first.Clone()
	for i := 0; i < rounds; i++ {
		blk := randDense(rng, m, k)
		inc.Update(blk)
		all = mat.HStack(all, blk)
	}
	if inc.Cols() != all.C {
		t.Fatalf("cols = %d, want %d", inc.Cols(), all.C)
	}
	if err := reconError(all, inc.Result()); err > 1e-8 {
		t.Fatalf("incremental reconstruction error %.3e too large", err)
	}
	gets, hits := inc.WorkspaceStats()
	if gets == 0 {
		t.Fatal("updates did not touch the workspace pool")
	}
	ratio := float64(hits) / float64(gets)
	if ratio < 0.5 {
		t.Fatalf("workspace hit rate %.2f (%d/%d) — buffers are not being reused", ratio, hits, gets)
	}
}

// TestAddRowsBufferReuseUnderRepeatedUpdates does the same for the
// row-extension path: interleave row additions, verify against a
// from-scratch decomposition, and require pool hits.
func TestAddRowsBufferReuseUnderRepeatedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, tcols, k, rounds := 24, 50, 3, 12
	first := randDense(rng, m, tcols)
	inc := NewIncrementalWith(nil, nil, first, 0)
	all := first.Clone()
	for i := 0; i < rounds; i++ {
		rows := randDense(rng, k, tcols)
		inc.AddRows(rows)
		all = mat.VStack(all, rows)
	}
	if inc.Rows() != all.R {
		t.Fatalf("rows = %d, want %d", inc.Rows(), all.R)
	}
	if err := reconError(all, inc.Result()); err > 1e-8 {
		t.Fatalf("row-update reconstruction error %.3e too large", err)
	}
	gets, hits := inc.WorkspaceStats()
	if gets == 0 || float64(hits)/float64(gets) < 0.5 {
		t.Fatalf("workspace hit rate %d/%d — AddRows is not reusing buffers", hits, gets)
	}
}

// TestIncrementalMixedUpdatesMatchBatch mixes column and row updates and
// compares singular values against a batch SVD.
func TestIncrementalMixedUpdatesMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	first := randDense(rng, 30, 20)
	inc := NewIncrementalWith(compute.Shared(2), nil, first, 0)
	all := first.Clone()
	for i := 0; i < 6; i++ {
		cols := randDense(rng, all.R, 4)
		inc.Update(cols)
		all = mat.HStack(all, cols)
		rows := randDense(rng, 2, all.C)
		inc.AddRows(rows)
		all = mat.VStack(all, rows)
	}
	batch := Compute(all)
	got := inc.Result()
	if len(got.S) < 10 {
		t.Fatalf("suspiciously low rank %d", len(got.S))
	}
	for i := 0; i < 10; i++ {
		if math.Abs(got.S[i]-batch.S[i]) > 1e-6*(1+batch.S[0]) {
			t.Fatalf("σ[%d]: incremental %v batch %v", i, got.S[i], batch.S[i])
		}
	}
}

// TestSVHTRankWithPoolsScratch pins the satellite fix: the SVHT decision's
// median scratch comes from the workspace pool (warm calls are
// allocation-free) and the pooled path decides identically to the
// allocating one.
func TestSVHTRankWithPoolsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := make([]float64, 40)
	for i := range s {
		s[i] = math.Abs(rng.NormFloat64()) * float64(len(s)-i)
	}
	// Descending spectrum, as every caller provides.
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			s[i] = s[i-1]
		}
	}
	ws := compute.NewWorkspace()
	want := SVHTRank(s, 200, 41)
	if got := SVHTRankWith(ws, s, 200, 41); got != want {
		t.Fatalf("pooled SVHT rank %d, allocating path %d", got, want)
	}
	gets0, hits0 := ws.Stats()
	if gets0 == 0 {
		t.Fatal("SVHTRankWith did not draw scratch from the workspace")
	}
	for i := 0; i < 8; i++ {
		if got := SVHTRankWith(ws, s, 200, 41); got != want {
			t.Fatalf("warm call %d: rank %d, want %d", i, got, want)
		}
	}
	gets, hits := ws.Stats()
	if hits-hits0 != gets-gets0 {
		t.Fatalf("warm SVHT calls missed the pool: %d gets, %d hits", gets-gets0, hits-hits0)
	}
}
