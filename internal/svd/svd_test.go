package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imrdmd/internal/mat"
)

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// lowRank builds an r×c matrix of known rank k with singular values sv.
func lowRank(rng *rand.Rand, r, c, k int, sv []float64) *mat.Dense {
	u := mat.QRFactor(randDense(rng, r, k)).Q
	v := mat.QRFactor(randDense(rng, c, k)).Q
	us := u.Clone()
	for i := 0; i < us.R; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= sv[j]
		}
	}
	return mat.Mul(us, v.T())
}

func checkSVD(t *testing.T, a *mat.Dense, r *Result, tol float64) {
	t.Helper()
	// U orthonormal columns.
	utu := mat.Mul(r.U.T(), r.U)
	if d := mat.Sub(utu, mat.Eye(r.Rank())).FrobNorm(); d > tol {
		t.Fatalf("UᵀU deviates from I by %g", d)
	}
	// V orthonormal columns.
	vtv := mat.Mul(r.V.T(), r.V)
	if d := mat.Sub(vtv, mat.Eye(r.Rank())).FrobNorm(); d > tol {
		t.Fatalf("VᵀV deviates from I by %g", d)
	}
	// Reconstruction.
	if d := mat.Sub(r.Reconstruct(), a).FrobNorm(); d > tol*(1+a.FrobNorm()) {
		t.Fatalf("reconstruction deviates by %g", d)
	}
	// Descending singular values, nonnegative.
	for i := 1; i < len(r.S); i++ {
		if r.S[i] > r.S[i-1] {
			t.Fatalf("singular values not descending: %v", r.S)
		}
	}
	if len(r.S) > 0 && r.S[len(r.S)-1] < 0 {
		t.Fatalf("negative singular value: %v", r.S)
	}
}

func TestJacobiSVDTallAndWide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tall := randDense(rng, 20, 6)
	checkSVD(t, tall, jacobiSVD(tall), 1e-9)
	wide := randDense(rng, 6, 20)
	checkSVD(t, wide, jacobiSVD(wide), 1e-9)
}

func TestJacobiSVDKnownSingularValues(t *testing.T) {
	// diag(3, 2, 1) embedded in a rotation-free matrix.
	a := mat.DiagOf([]float64{3, 1, 2})
	r := jacobiSVD(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(r.S[i]-w) > 1e-12 {
			t.Fatalf("singular values %v want %v", r.S, want)
		}
	}
}

func TestSnapshotSVDMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{40, 15}, {15, 40}} {
		a := randDense(rng, dims[0], dims[1])
		j := jacobiSVD(a)
		s := snapshotSVD(nil, nil, a)
		if len(j.S) != len(s.S) {
			t.Fatalf("rank mismatch %d vs %d", len(j.S), len(s.S))
		}
		for i := range j.S {
			if math.Abs(j.S[i]-s.S[i]) > 1e-6*(1+j.S[0]) {
				t.Fatalf("σ[%d]: jacobi %v snapshot %v", i, j.S[i], s.S[i])
			}
		}
		checkSVD(t, a, s, 1e-6)
	}
}

func TestComputeDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := SetJacobiCutoff(4)
	defer SetJacobiCutoff(old)
	// min dim 10 > 4 → snapshots path; still correct.
	a := randDense(rng, 30, 10)
	checkSVD(t, a, Compute(a), 1e-6)
	// min dim 3 ≤ 4 → Jacobi path.
	b := randDense(rng, 30, 3)
	checkSVD(t, b, Compute(b), 1e-9)
}

func TestComputeEmpty(t *testing.T) {
	r := Compute(mat.NewDense(0, 0))
	if r.Rank() != 0 {
		t.Fatal("empty matrix should have empty SVD")
	}
}

func TestRankDeficientDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := lowRank(rng, 30, 20, 3, []float64{5, 2, 1})
	r := Compute(a)
	if r.Rank() != 3 {
		t.Fatalf("rank = %d want 3 (S=%v)", r.Rank(), r.S)
	}
	want := []float64{5, 2, 1}
	for i, w := range want {
		if math.Abs(r.S[i]-w) > 1e-6 {
			t.Fatalf("S = %v want %v", r.S, want)
		}
	}
}

func TestZeroMatrix(t *testing.T) {
	a := mat.NewDense(5, 4)
	r := Compute(a)
	if r.Rank() < 1 || r.S[0] != 0 {
		t.Fatalf("zero matrix SVD: rank %d S %v", r.Rank(), r.S)
	}
	if r.U.HasNaN() || r.V.HasNaN() {
		t.Fatal("zero matrix SVD produced NaNs")
	}
}

func TestSVDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(25)
		n := 2 + rng.Intn(25)
		a := randDense(rng, m, n)
		r := Compute(a)
		// Frobenius norm preserved by singular values.
		var s2 float64
		for _, s := range r.S {
			s2 += s * s
		}
		if math.Abs(math.Sqrt(s2)-a.FrobNorm()) > 1e-6*(1+a.FrobNorm()) {
			return false
		}
		return mat.Sub(r.Reconstruct(), a).FrobNorm() < 1e-6*(1+a.FrobNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 10, 8)
	r := Compute(a)
	tr := r.Truncate(3)
	if tr.Rank() != 3 || tr.U.C != 3 || tr.V.C != 3 {
		t.Fatalf("Truncate(3) rank = %d", tr.Rank())
	}
	// Truncating beyond rank is a clamp.
	tr2 := r.Truncate(100)
	if tr2.Rank() != r.Rank() {
		t.Fatal("Truncate beyond rank should clamp")
	}
	// Eckart–Young: rank-3 truncation error equals sqrt(sum of dropped σ²).
	var want float64
	for _, s := range r.S[3:] {
		want += s * s
	}
	got := mat.Sub(tr.Reconstruct(), a).FrobNorm()
	if math.Abs(got-math.Sqrt(want)) > 1e-8*(1+got) {
		t.Fatalf("truncation error %g want %g", got, math.Sqrt(want))
	}
}

func TestSVHTRankKeepsSignalDropsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n := 200, 100
	// Strong rank-2 signal plus small noise.
	a := lowRank(rng, m, n, 2, []float64{500, 300})
	for i := range a.Data {
		a.Data[i] += 0.1 * rng.NormFloat64()
	}
	r := Compute(a)
	k := SVHTRank(r.S, m, n)
	if k < 2 || k > 6 {
		t.Fatalf("SVHT rank = %d, want to keep ≈2 signal directions", k)
	}
}

func TestSVHTRankAtLeastOne(t *testing.T) {
	if k := SVHTRank([]float64{1e-30}, 10, 10); k != 1 {
		t.Fatalf("SVHT must keep at least one direction, got %d", k)
	}
	if k := SVHTRank[float64](nil, 10, 10); k != 0 {
		t.Fatalf("empty spectrum should give 0, got %d", k)
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := 40
	full := randDense(rng, m, 60)
	inc := NewIncremental(full.ColSlice(0, 20), 0)
	for j := 20; j < 60; j += 8 {
		hi := j + 8
		if hi > 60 {
			hi = 60
		}
		inc.Update(full.ColSlice(j, hi))
	}
	batch := Compute(full)
	if inc.Cols() != 60 {
		t.Fatalf("Cols = %d want 60", inc.Cols())
	}
	// Same leading singular values.
	for i := 0; i < 10; i++ {
		if math.Abs(inc.S[i]-batch.S[i]) > 1e-6*(1+batch.S[0]) {
			t.Fatalf("σ[%d]: incremental %v batch %v", i, inc.S[i], batch.S[i])
		}
	}
	// Same reconstruction.
	d := mat.Sub(inc.Result().Reconstruct(), full).FrobNorm()
	if d > 1e-6*(1+full.FrobNorm()) {
		t.Fatalf("incremental reconstruction deviates by %g", d)
	}
}

func TestIncrementalTruncatedTracksDominantSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := 50
	// Rank-3 signal, so a rank-5 truncated incremental SVD is exact.
	full := lowRank(rng, m, 80, 3, []float64{10, 5, 2})
	inc := NewIncremental(full.ColSlice(0, 10), 5)
	for j := 10; j < 80; j += 10 {
		inc.Update(full.ColSlice(j, j+10))
	}
	d := mat.Sub(inc.Result().Reconstruct(), full).FrobNorm()
	if d > 1e-5*(1+full.FrobNorm()) {
		t.Fatalf("truncated incremental SVD deviates by %g on low-rank data", d)
	}
	if inc.Rank() > 5 {
		t.Fatalf("rank cap violated: %d", inc.Rank())
	}
}

func TestIncrementalUOrthonormalAfterManyUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := 30
	inc := NewIncremental(randDense(rng, m, 5), 10)
	for k := 0; k < 40; k++ {
		inc.Update(randDense(rng, m, 3))
	}
	utu := mat.Mul(inc.U.T(), inc.U)
	if d := mat.Sub(utu, mat.Eye(inc.Rank())).FrobNorm(); d > 1e-8 {
		t.Fatalf("U drifted from orthonormality by %g after 40 updates", d)
	}
}

func TestIncrementalEmptyUpdateNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inc := NewIncremental(randDense(rng, 10, 4), 0)
	before := inc.Cols()
	inc.Update(mat.NewDense(10, 0))
	if inc.Cols() != before {
		t.Fatal("empty update changed state")
	}
}

func TestIncrementalRowMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inc := NewIncremental(randDense(rng, 10, 4), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row mismatch")
		}
	}()
	inc.Update(mat.NewDense(11, 2))
}

func BenchmarkComputeSnapshot500x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 500, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(a)
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inc := NewIncremental(randDense(rng, 500, 50), 30)
	blk := randDense(rng, 500, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Update(blk)
	}
}
