package svd

import (
	"bytes"
	"math/rand"
	"testing"

	"imrdmd/internal/codec"
	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// TestIncrementalSnapshotRoundTrip: encode mid-stream, decode, continue
// both streams — the decoded Incremental must stay bit-identical to the
// uninterrupted one, including across the re-orthogonalization boundary
// (the restored update counter keeps the every-8-updates schedule in
// phase).
func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		m     = 45
		seedT = 24
		w     = 4
	)
	pre, post := 5, 8 // crosses updates%8 == 0 after the restore point
	data := mat.NewDense(m, seedT+(pre+post)*w)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	eng := compute.Shared(4)
	ref := NewIncrementalWith(eng, nil, data.ColSlice(0, seedT), 13)
	for b := 0; b < pre; b++ {
		ref.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
	}

	var buf bytes.Buffer
	enc := codec.NewWriter(&buf)
	ref.Encode(enc)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIncrementalState(dec, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Rank() != ref.Rank() || got.Cols() != ref.Cols() || got.Rows() != ref.Rows() {
		t.Fatalf("restored shape %d/%d/%d vs %d/%d/%d",
			got.Rows(), got.Cols(), got.Rank(), ref.Rows(), ref.Cols(), ref.Rank())
	}

	for b := pre; b < pre+post; b++ {
		blk := data.ColSlice(seedT+b*w, seedT+(b+1)*w)
		ref.Update(blk)
		got.Update(blk)
	}
	rr, gr := ref.Result(), got.Result()
	if d := mat.Sub(gr.U, rr.U).FrobNorm(); d != 0 {
		t.Fatalf("restored U deviates by %g", d)
	}
	if d := mat.Sub(gr.V, rr.V).FrobNorm(); d != 0 {
		t.Fatalf("restored V deviates by %g", d)
	}
	for i := range rr.S {
		if gr.S[i] != rr.S[i] {
			t.Fatalf("σ[%d]: %v vs %v", i, gr.S[i], rr.S[i])
		}
	}
}

// TestDecodeIncrementalStateRejectsShapeMismatch: U/S/V rank disagreement
// must fail validation.
func TestDecodeIncrementalStateRejectsShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := codec.NewWriter(&buf)
	enc.Dense(mat.NewDense(6, 3)) // U rank 3
	enc.Floats([]float64{2, 1})   // but 2 singular values
	enc.Dense(mat.NewDense(9, 2))
	enc.Int(0)
	enc.Float(DefaultDropTol)
	enc.Int(DefaultReorthEvery)
	enc.Int(0)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeIncrementalState(dec, nil, nil); err == nil {
		t.Fatal("factor shape mismatch accepted")
	}
}
