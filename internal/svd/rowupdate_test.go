package svd

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

func TestAddRowsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := randDense(rng, 50, 30)
	inc := NewIncremental(full.RowSlice(0, 30), 0)
	for i := 30; i < 50; i += 7 {
		hi := i + 7
		if hi > 50 {
			hi = 50
		}
		inc.AddRows(full.RowSlice(i, hi))
	}
	if inc.Rows() != 50 {
		t.Fatalf("Rows = %d want 50", inc.Rows())
	}
	batch := Compute(full)
	for i := 0; i < 10; i++ {
		if math.Abs(inc.S[i]-batch.S[i]) > 1e-6*(1+batch.S[0]) {
			t.Fatalf("σ[%d]: incremental %v batch %v", i, inc.S[i], batch.S[i])
		}
	}
	d := mat.Sub(inc.Result().Reconstruct(), full).FrobNorm()
	if d > 1e-6*(1+full.FrobNorm()) {
		t.Fatalf("row-updated reconstruction deviates by %g", d)
	}
}

func TestAddRowsWideBlockChunked(t *testing.T) {
	// A row block taller than the column count must be chunked internally.
	rng := rand.New(rand.NewSource(2))
	full := randDense(rng, 40, 10)
	inc := NewIncremental(full.RowSlice(0, 10), 0)
	inc.AddRows(full.RowSlice(10, 40)) // 30 rows > 10 cols
	d := mat.Sub(inc.Result().Reconstruct(), full).FrobNorm()
	if d > 1e-6*(1+full.FrobNorm()) {
		t.Fatalf("chunked row update deviates by %g", d)
	}
}

func TestAddRowsThenColumns(t *testing.T) {
	// Mixed growth: add rows, then columns; compare against batch SVD.
	rng := rand.New(rand.NewSource(3))
	full := randDense(rng, 30, 40)
	inc := NewIncremental(full.RowSlice(0, 20).ColSlice(0, 25), 0)
	inc.AddRows(full.RowSlice(20, 30).ColSlice(0, 25))
	inc.Update(full.ColSlice(25, 40))
	batch := Compute(full)
	for i := 0; i < 8; i++ {
		if math.Abs(inc.S[i]-batch.S[i]) > 1e-6*(1+batch.S[0]) {
			t.Fatalf("σ[%d]: incremental %v batch %v", i, inc.S[i], batch.S[i])
		}
	}
}

func TestAddRowsOrthonormalityPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inc := NewIncremental(randDense(rng, 20, 15), 0)
	for k := 0; k < 20; k++ {
		inc.AddRows(randDense(rng, 3, 15))
	}
	utu := mat.Mul(inc.U.T(), inc.U)
	if d := mat.Sub(utu, mat.Eye(inc.Rank())).FrobNorm(); d > 1e-8 {
		t.Fatalf("U drifted by %g after 20 row updates", d)
	}
	vtv := mat.Mul(inc.V.T(), inc.V)
	if d := mat.Sub(vtv, mat.Eye(inc.Rank())).FrobNorm(); d > 1e-8 {
		t.Fatalf("V drifted by %g after 20 row updates", d)
	}
}

func TestAddRowsEmptyNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inc := NewIncremental(randDense(rng, 10, 8), 0)
	before := inc.Rows()
	inc.AddRows(mat.NewDense(0, 8))
	if inc.Rows() != before {
		t.Fatal("empty row update changed state")
	}
}

func TestAddRowsColumnMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inc := NewIncremental(randDense(rng, 10, 8), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on column mismatch")
		}
	}()
	inc.AddRows(mat.NewDense(2, 9))
}
