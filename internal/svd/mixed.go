package svd

import (
	"math"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// This file is the mixed-precision compute tier of the SVD layer: the
// multifidelity principle of the paper (cheap low-fidelity passes
// everywhere, expensive high-fidelity analysis only where it matters)
// applied to arithmetic precision.
//
// MixedCompute factors a float64 window in two passes:
//
//  1. Screening (low fidelity): the window is narrowed to float32 and
//     factored by the QR-preconditioned one-sided Jacobi SVD running
//     entirely in the f32 tier — half the memory traffic and twice the
//     SIMD width of the f64 path (the 4×8 micro-kernel of gemm32_amd64.s).
//     The truncation decision is made HERE, on the f32 spectrum, with the
//     same rule the f64 pipeline would apply (SVHT, a fixed rank cap, or
//     full numerical rank). Making the decision in the screen is what
//     keeps it consistent: SVHT's threshold is median-based, so it must
//     see the full spectrum, and the f32 spectrum matches the f64 one to
//     ~1e-7 relative wherever f32 can represent it at all.
//  2. Refinement (high fidelity): one float64 subspace iteration over
//     only the kept directions (plus screenKeepPad safety margin), warm-
//     started from the f32 right singular basis — B = A·V₀ (f64 GEMM),
//     B = Q·R (f64 QR), SVD of the small k×k R by f64 Jacobi, then
//     U = Q·U_R and V = V₀·V_R. The subspace error of V₀ is O(ε₃₂) ≈ 1e-7
//     and one iteration squares it, so the refined triplets match the
//     all-f64 factorization to well within the SVHT decision tolerance
//     (mixed_test.go pins 1e-6 relative agreement on the kept values).
//
// Windows whose f32 screen finds a numerically zero spectrum skip the
// refinement entirely — the multifidelity payoff for quiet subtree
// windows whose residual is already fully explained by slower levels.
// For kept windows the f64 cost scales with the kept rank k, not the
// window width n: under SVHT k is typically a small fraction of n, which
// is exactly the "expensive analysis only where it matters" trade.

// screenKeepPad is how many extra trailing directions the refinement
// carries beyond the screen's keep count, so the k-th kept direction is
// refined against a slightly larger subspace and a borderline direction
// still benefits from f64 arithmetic before truncation.
const screenKeepPad = 2

// MixedCompute returns the economy SVD of a through the mixed-precision
// tier: an f32 screening pass that decides the retained rank, then an f64
// refinement of exactly the kept directions. The decision rule mirrors
// dmd.FromSVD: SVHT when useSVHT is set, capped by rankCap when rankCap >
// 0, full numerical rank otherwise — so callers feed the result to
// FromSVD with the decision already applied (UseSVHT off, Rank 0).
//
// The returned factors are float64 and freshly owned (never workspace
// storage), like ComputeWith. Kept triplets agree with the all-f64
// factorization to the screening subspace error (~1e-7 relative) — ample
// for DMD mode extraction — but are NOT bit-identical to it; callers that
// need bit-stable f64 results use ComputeWith.
func MixedCompute(e *compute.Engine, ws *compute.Workspace, a *mat.Dense, useSVHT bool, rankCap int) *Result {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: mat.NewDense(m, 0), S: nil, V: mat.NewDense(n, 0)}
	}
	// Degenerate widths have nothing to screen: the f64 Jacobi on a 1-2
	// column factor is already cheaper than a convert-screen-refine round
	// trip.
	if min(m, n) < 2 {
		return ComputeWith(e, ws, a)
	}

	// The screen works on A/‖A‖max so windows far outside float32 range
	// survive the narrowing: without the scaling, entries below ~1e-38
	// underflow to zero (a quiet deep-level residual would read as an
	// empty window and lose its modes) and entries above ~3e38 overflow
	// to ±Inf (poisoning the spectrum). The SVD is linear in the scale, so
	// the screen's two outputs — the basis and the relative spectrum the
	// scale-invariant SVHT decision reads — are unaffected, and the f64
	// refinement works on the unscaled A.
	maxAbs := a.MaxAbs()
	if maxAbs == 0 {
		return &Result{U: mat.NewDense(m, 1), S: []float64{0}, V: mat.NewDense(n, 1)}
	}

	// Screening pass, entirely in the f32 tier. Only the short-side
	// singular basis and the spectrum are computed — the screen never
	// needs the long-side factor, so the m-sized basis rotation the full
	// f32 SVD would pay is skipped. For wide matrices (m < n) the roles
	// of U and V swap; screening the transpose iterates the short side.
	a32 := narrowScaled(ws, a, 1/maxAbs)
	var s32 []float32
	var basis32 *mat.Dense32
	if m >= n {
		s32, basis32 = screen32(e, ws, a32)
	} else {
		at32 := mat.TWith(ws, a32)
		s32, basis32 = screen32(e, ws, at32)
		mat.PutDense(ws, at32)
	}
	mat.PutDense(ws, a32)

	if s32[0] == 0 {
		// Numerically zero window: skip refinement, return the canonical
		// zero decomposition (same shape ComputeWith produces via its
		// rank-0 guard).
		mat.PutDense(ws, basis32)
		return &Result{U: mat.NewDense(m, 1), S: []float64{0}, V: mat.NewDense(n, 1)}
	}

	// The truncation decision, on the f32 spectrum.
	rank := len(s32)
	if useSVHT {
		rank = SVHTRankWith(ws, s32, m, n)
	}
	if rankCap > 0 && rankCap < rank {
		rank = rankCap
	}
	k := min(rank+screenKeepPad, len(s32))

	// Widen the leading k f32 singular directions as the refinement's
	// warm start.
	w0 := widenCols(ws, basis32, k)
	mat.PutDense(ws, basis32)
	if m >= n {
		u, s, v := refineSubspace(e, ws, a, false, w0, rank)
		mat.PutDense(ws, w0)
		return &Result{U: u, S: s, V: v}
	}
	// Aᵀ = V S Uᵀ: refine the transpose problem with the screened left
	// basis as its right basis, then swap factors back.
	v, s, u := refineSubspace(e, ws, a, true, w0, rank)
	mat.PutDense(ws, w0)
	return &Result{U: u, S: s, V: v}
}

// screen32 computes the f32 spectrum and right singular basis of a32
// (m ≥ n after the caller's orientation), skipping the left factor the
// screen never uses: tall windows go straight through QR preconditioning
// and keep only the small Jacobi's V, saving the m×n×k basis rotation of
// a full SVD. The returned basis is workspace storage (PutDense it back).
func screen32(e *compute.Engine, ws *compute.Workspace, a32 *mat.Dense32) ([]float32, *mat.Dense32) {
	m, n := a32.Dims()
	if n >= 2 && m >= qrPrecondRatio*n {
		qr := mat.QRFactorOn(e, ws, a32)
		rs := jacobiSVDWS(e, qr.R, ws, true)
		qr.Release(ws)
		mat.PutDense(ws, rs.U)
		return rs.S, rs.V
	}
	rs := jacobiSVDWS(e, a32, ws, true)
	mat.PutDense(ws, rs.U)
	return rs.S, rs.V
}

// narrowScaled narrows s·m into a workspace-borrowed float32 matrix (the
// screen's normalized copy; s = 1/‖m‖max puts the largest entry at ±1).
func narrowScaled(ws *compute.Workspace, m *mat.Dense, s float64) *mat.Dense32 {
	out := mat.GetDenseRawOf[float32](ws, m.R, m.C)
	for i, v := range m.Data {
		out.Data[i] = float32(v * s)
	}
	return out
}

// widenCols widens the leading k columns of a float32 factor into a
// workspace-borrowed float64 matrix.
func widenCols(ws *compute.Workspace, f *mat.Dense32, k int) *mat.Dense {
	out := mat.GetDenseRawOf[float64](ws, f.R, k)
	for i := 0; i < f.R; i++ {
		src := f.Row(i)
		dst := out.Row(i)
		for j := 0; j < k; j++ {
			dst[j] = float64(src[j])
		}
	}
	return out
}

// refineSubspace runs one float64 subspace iteration of a (or aᵀ when aT)
// against the warm-start right basis v0 (k ≥ rank columns): B = A·V₀,
// B = Q·R, R = U_R S V_Rᵀ, giving U = Q·U_R, V = V₀·V_R, truncated to the
// screen-decided rank (directions that refine to numerical zero below
// relDropTol·σmax are cut further, but at least one triplet is always
// kept). Returns freshly owned factors.
func refineSubspace(e *compute.Engine, ws *compute.Workspace, a *mat.Dense, aT bool, v0 *mat.Dense, rank int) (u *mat.Dense, s []float64, v *mat.Dense) {
	var b *mat.Dense
	if aT {
		// B = Aᵀ·V₀ without materializing the transpose.
		b = mat.MulTWith(e, ws, a, v0)
	} else {
		b = mat.MulWith(e, ws, a, v0)
	}
	qr := mat.QRFactorOn(e, ws, b)
	mat.PutDense(ws, b)
	rs := jacobiSVDWS(e, qr.R, ws, true)

	if rank > rs.Rank() {
		rank = rs.Rank()
	}
	smax := rs.S[0]
	for rank > 1 && rs.S[rank-1] <= relDropTol*smax {
		rank--
	}
	ur := rs.U.ColSlice(0, rank)
	vr := rs.V.ColSlice(0, rank)
	u = mat.MulWith(e, nil, qr.Q, ur)
	v = mat.MulWith(e, nil, v0, vr)
	s = make([]float64, rank)
	copy(s, rs.S[:rank])
	// A zero matrix refines to σ = {0}: normalize the -0.0 the Jacobi can
	// leave behind so the zero decomposition is canonical.
	for i := range s {
		if s[i] == 0 {
			s[i] = math.Abs(s[i])
		}
	}
	qr.Release(ws)
	mat.PutDense(ws, rs.U)
	mat.PutDense(ws, rs.V)
	return u, s, v
}
