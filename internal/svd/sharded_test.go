package svd

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// shardedHarness drives the shard-local/replicated phase split directly
// (payload → in-test sum → plan → per-shard apply), standing in for the
// internal/shard coordinator so the math is validated at this layer.
type shardedHarness struct {
	s    []float64
	v    *mat.Dense
	bigU *mat.Dense
	offs []int // nshards+1 row boundaries
	ws   *compute.Workspace

	maxRank int
	updates int
}

func newShardedHarness(first *mat.Dense, maxRank, nshards int) *shardedHarness {
	ws := compute.NewWorkspace()
	r := ComputeWith(nil, ws, first)
	if maxRank > 0 && r.Rank() > maxRank {
		r = r.Truncate(maxRank)
	}
	m := first.R
	offs := make([]int, nshards+1)
	for i := 1; i <= nshards; i++ {
		offs[i] = offs[i-1] + m/nshards
		if i <= m%nshards {
			offs[i]++
		}
	}
	return &shardedHarness{s: r.S, v: r.V, bigU: r.U, offs: offs, ws: ws, maxRank: maxRank}
}

// rowView returns rows [lo,hi) of m as a view (no copy).
func rowView(m *mat.Dense, lo, hi int) *mat.Dense {
	return &mat.Dense{R: hi - lo, C: m.C, Data: m.Data[lo*m.C : hi*m.C]}
}

func (h *shardedHarness) update(c *mat.Dense) {
	q, w := len(h.s), c.C
	n := len(h.offs) - 1
	// Shard-local payloads, then the in-test "all-reduce" (plain sum).
	sum := make([]float64, BlockPayloadLen(q, w))
	part := make([]float64, BlockPayloadLen(q, w))
	for sh := 0; sh < n; sh++ {
		u := rowView(h.bigU, h.offs[sh], h.offs[sh+1])
		cs := rowView(c, h.offs[sh], h.offs[sh+1])
		ShardBlockPayload(nil, h.ws, u, cs, part)
		for i, v := range part {
			sum[i] += v
		}
	}
	plan := PlanBlockUpdate(nil, h.ws, h.s, h.v, sum, w, h.maxRank, 0, GramEps(false))
	r := len(plan.NewS)
	newBig := mat.NewDense(h.bigU.R, r)
	for sh := 0; sh < n; sh++ {
		dst := rowView(newBig, h.offs[sh], h.offs[sh+1])
		u := rowView(h.bigU, h.offs[sh], h.offs[sh+1])
		cs := rowView(c, h.offs[sh], h.offs[sh+1])
		ApplyShardBlock(nil, h.ws, dst, u, cs, plan)
	}
	plan.Release(h.ws)
	h.bigU, h.s, h.v = newBig, plan.NewS, plan.NewV
	h.updates++
	if h.updates%8 == 0 {
		h.reorth()
	}
}

func (h *shardedHarness) reorth() {
	q := len(h.s)
	n := len(h.offs) - 1
	sum := make([]float64, GramPayloadLen(q))
	part := make([]float64, GramPayloadLen(q))
	for sh := 0; sh < n; sh++ {
		ShardGramPayload(nil, h.ws, rowView(h.bigU, h.offs[sh], h.offs[sh+1]), part)
		for i, v := range part {
			sum[i] += v
		}
	}
	plan := PlanShardReorth(nil, h.ws, h.s, h.v, sum, h.maxRank, 0)
	newBig := mat.NewDense(h.bigU.R, len(plan.NewS))
	for sh := 0; sh < n; sh++ {
		ApplyShardReorth(nil, rowView(newBig, h.offs[sh], h.offs[sh+1]), rowView(h.bigU, h.offs[sh], h.offs[sh+1]), plan)
	}
	plan.Release(h.ws)
	h.bigU, h.s, h.v = newBig, plan.NewS, plan.NewV
}

func (h *shardedHarness) addRows(b *mat.Dense) {
	plan := PlanShardRowUpdate(nil, h.ws, h.s, h.v, b, h.maxRank, 0)
	r := len(plan.NewS)
	m := h.bigU.R
	newBig := mat.NewDense(m+b.R, r)
	n := len(h.offs) - 1
	for sh := 0; sh < n; sh++ {
		dst := rowView(newBig, h.offs[sh], h.offs[sh+1])
		mat.MulIntoWith(nil, dst, rowView(h.bigU, h.offs[sh], h.offs[sh+1]), plan.UA)
	}
	// New sensors land on the last shard's bottom = the global bottom.
	copy(newBig.Data[m*r:], plan.NewRows.Data)
	h.offs[n] += b.R
	plan.Release(h.ws)
	h.bigU, h.s, h.v = newBig, plan.NewS, plan.NewV
	h.updates++
	if h.updates%8 == 0 {
		h.reorth()
	}
}

func (h *shardedHarness) reconstruct() *mat.Dense {
	us := h.bigU.Clone()
	for i := 0; i < us.R; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= h.s[j]
		}
	}
	return mat.Mul(us, h.v.T())
}

// relFrobDiff returns ‖a−b‖_F / (1+‖b‖_F).
func relFrobDiff(a, b *mat.Dense) float64 {
	return mat.Sub(a, b).FrobNorm() / (1 + b.FrobNorm())
}

// TestShardedBlockUpdateMatchesIncremental streams the same column blocks
// through the unsharded Incremental and the phase-split harness at 1, 2
// and 3 shards: the reconstructions and spectra must agree to roundoff
// (the two residual orthogonalizations differ only by an orthogonal
// factor that cancels in the rotated bases), including across the 8-update
// re-orthogonalization boundary.
func TestShardedBlockUpdateMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		m       = 41
		seedT   = 30
		w       = 6
		blocks  = 11 // crosses the reorth at update 8
		maxRank = 12 // keeps the rank cap active every update
	)
	data := mat.NewDense(m, seedT+blocks*w)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	for _, nshards := range []int{1, 2, 3} {
		inc := NewIncremental(data.ColSlice(0, seedT), maxRank)
		h := newShardedHarness(data.ColSlice(0, seedT), maxRank, nshards)
		for b := 0; b < blocks; b++ {
			blk := data.ColSlice(seedT+b*w, seedT+(b+1)*w)
			inc.Update(blk)
			h.update(blk)

			if len(h.s) != len(inc.S) {
				t.Fatalf("shards=%d block %d: rank %d vs %d", nshards, b, len(h.s), len(inc.S))
			}
			for i := range h.s {
				if d := math.Abs(h.s[i]-inc.S[i]) / inc.S[0]; d > 1e-10 {
					t.Fatalf("shards=%d block %d: σ[%d]=%v vs %v (rel %g)", nshards, b, i, h.s[i], inc.S[i], d)
				}
			}
		}
		want := inc.Result().Reconstruct()
		got := h.reconstruct()
		if d := relFrobDiff(got, want); d > 1e-9 {
			t.Fatalf("shards=%d: reconstruction deviates by %g (> 1e-9)", nshards, d)
		}
	}
}

// TestShardedRowUpdateMatchesAddRows interleaves column blocks with a row
// (new-sensor) update: the sharded row plan must track AddRows the same
// way the block phases track Update.
func TestShardedRowUpdateMatchesAddRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		m       = 30
		seedT   = 24
		w       = 6
		newRows = 3
		maxRank = 10
	)
	total := seedT + 4*w
	data := mat.NewDense(m+newRows, total)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	top := data.RowSlice(0, m)

	for _, nshards := range []int{2, 3} {
		inc := NewIncremental(top.ColSlice(0, seedT), maxRank)
		h := newShardedHarness(top.ColSlice(0, seedT), maxRank, nshards)
		for b := 0; b < 2; b++ {
			blk := top.ColSlice(seedT+b*w, seedT+(b+1)*w)
			inc.Update(blk)
			h.update(blk)
		}
		// New sensors arrive with their history over the absorbed columns.
		hist := data.RowSlice(m, m+newRows).ColSlice(0, seedT+2*w)
		inc.AddRows(hist)
		h.addRows(hist)
		// Stream continues over the grown sensor dimension.
		for b := 2; b < 4; b++ {
			blk := data.ColSlice(seedT+b*w, seedT+(b+1)*w)
			inc.Update(blk)
			h.update(blk)
		}
		want := inc.Result().Reconstruct()
		got := h.reconstruct()
		if d := relFrobDiff(got, want); d > 1e-9 {
			t.Fatalf("shards=%d: reconstruction after row update deviates by %g", nshards, d)
		}
	}
}

// TestGramSqrt pins the eigen square root's contracts: RᵀR reproduces the
// Gram, X·B is orthonormal for any X with XᵀX = G, and sub-clamp
// directions are dropped rather than normalized into noise.
func TestGramSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := compute.NewWorkspace()
	x := mat.NewDense(50, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Make the last column tiny so the clamp has a direction to cut.
	for i := 0; i < x.R; i++ {
		x.Row(i)[7] = 1e-10 * x.Row(i)[0]
	}
	g := mat.Gram(x, true)
	var tr float64
	for i := 0; i < g.R; i++ {
		tr += g.At(i, i)
	}
	b, r := gramSqrt(ws, g.Clone(), 1e-13*tr)
	if r.R != 7 {
		t.Fatalf("kept %d directions, want 7 (tiny direction must be clamped)", r.R)
	}
	rtr := mat.MulT(r, r)
	if d := relFrobDiff(rtr, g); d > 1e-10 {
		t.Fatalf("RᵀR deviates from G by %g", d)
	}
	q := mat.Mul(x, b)
	qtq := mat.Gram(q, true)
	eye := mat.Eye(7)
	if d := relFrobDiff(qtq, eye); d > 1e-8 {
		t.Fatalf("X·B not orthonormal: deviation %g", d)
	}
}

// TestShardBlockPayloadLayout pins the payload wire format: the projection
// block is exactly UᵀC and the rider exactly CᵀC, and shard contributions
// sum to the unsharded quantities.
func TestShardBlockPayloadLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, q, w = 23, 5, 4
	u := mat.NewDense(m, q)
	c := mat.NewDense(m, w)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	offs := []int{0, 9, 16, m}
	sum := make([]float64, BlockPayloadLen(q, w))
	part := make([]float64, BlockPayloadLen(q, w))
	for sh := 0; sh+1 < len(offs); sh++ {
		ShardBlockPayload(nil, nil, rowView(u, offs[sh], offs[sh+1]), rowView(c, offs[sh], offs[sh+1]), part)
		for i, v := range part {
			sum[i] += v
		}
	}
	l := mat.MulT(u, c)
	g := mat.Gram(c, true)
	for i, v := range l.Data {
		if math.Abs(sum[i]-v) > 1e-12 {
			t.Fatalf("projection element %d: %v vs %v", i, sum[i], v)
		}
	}
	for i, v := range g.Data {
		if math.Abs(sum[q*w+i]-v) > 1e-12 {
			t.Fatalf("Gram rider element %d: %v vs %v", i, sum[q*w+i], v)
		}
	}
}
