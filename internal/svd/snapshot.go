package svd

import (
	"fmt"

	"imrdmd/internal/codec"
	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// Encode serializes the running decomposition: the factors plus every
// knob and counter that shapes future updates — MaxRank/DropTol decide
// truncation, reorthEvery and the update counter phase the periodic
// re-orthogonalization — so a decoded Incremental continues the update
// stream bit-compatibly with the original.
func (inc *Incremental) Encode(w *codec.Writer) {
	w.Dense(inc.U)
	w.Floats(inc.S)
	w.Dense(inc.V)
	w.Int(inc.MaxRank)
	w.Float(inc.DropTol)
	w.Int(inc.reorthEvery)
	w.Int(inc.updates)
}

// DecodeIncrementalState reconstructs an Incremental written by Encode,
// attaching the given engine and workspace (nil ws creates a private one;
// nil eng runs serially). Factor shapes are cross-checked so a corrupt
// stream fails here instead of deep inside a later update.
func DecodeIncrementalState(r *codec.Reader, eng *compute.Engine, ws *compute.Workspace) (*Incremental, error) {
	if ws == nil {
		ws = compute.NewWorkspace()
	}
	u := r.Dense()
	s := r.Floats()
	v := r.Dense()
	maxRank := r.Int()
	dropTol := r.Float()
	reorthEvery := r.Int()
	updates := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if u == nil || v == nil || u.C != len(s) || v.C != len(s) {
		return nil, fmt.Errorf("svd: decoded factor shapes inconsistent (U %s, %d singular values, V %s)",
			shapeOf(u), len(s), shapeOf(v))
	}
	return &Incremental{
		U:           u,
		S:           s,
		V:           v,
		MaxRank:     maxRank,
		DropTol:     dropTol,
		reorthEvery: reorthEvery,
		updates:     updates,
		eng:         eng,
		ws:          ws,
	}, nil
}

func shapeOf(m *mat.Dense) string {
	if m == nil {
		return "nil"
	}
	return fmt.Sprintf("%d×%d", m.R, m.C)
}
