// Package svd implements the singular value decompositions the DMD layer
// is built on: an accurate one-sided Jacobi SVD for small factors, a
// method-of-snapshots SVD for strongly rectangular matrices, the
// Gavish–Donoho optimal singular value hard threshold (SVHT), and the
// Brand-style incremental SVD the paper adopts for I-mrDMD (Kühl et al.,
// "An incremental singular value decomposition approach for large-scale
// spatially parallel & distributed but temporally serial data").
//
// The Jacobi path is generic over the element tier: the float32
// instantiation is the mixed-precision screening SVD (see mixed.go and
// DESIGN.md §6), the float64 instantiation the unchanged accurate solver.
package svd

import (
	"math"
	"sort"
	"unsafe"

	"imrdmd/internal/compute"
	"imrdmd/internal/eig"
	"imrdmd/internal/mat"
)

// GResult is an economy SVD A ≈ U diag(S) Vᵀ with U m×k, V n×k and k the
// retained rank (k ≤ min(m,n); tiny singular values may be dropped), over
// element tier T.
type GResult[T mat.Element] struct {
	U *mat.GDense[T]
	S []T
	V *mat.GDense[T]
}

// Result is the float64 economy SVD.
type Result = GResult[float64]

// Result32 is the float32 economy SVD produced by the screening tier.
type Result32 = GResult[float32]

// Rank returns the number of retained singular values.
func (r *GResult[T]) Rank() int { return len(r.S) }

// Truncate returns a copy of the decomposition keeping the leading k
// singular triplets. k larger than the current rank is clamped.
func (r *GResult[T]) Truncate(k int) *GResult[T] {
	if k >= r.Rank() {
		return &GResult[T]{U: r.U.Clone(), S: append([]T(nil), r.S...), V: r.V.Clone()}
	}
	return &GResult[T]{
		U: r.U.ColSlice(0, k),
		S: append([]T(nil), r.S[:k]...),
		V: r.V.ColSlice(0, k),
	}
}

// TruncateWith is Truncate with the factor copies borrowed from ws. When
// k >= Rank() the receiver itself is returned unchanged (no copy) — check
// `tr != r` before returning borrowed factors to the pool. The result is
// read-only for the borrower.
func (r *GResult[T]) TruncateWith(ws *compute.Workspace, k int) *GResult[T] {
	if k >= r.Rank() {
		return r
	}
	return &GResult[T]{
		U: mat.ColSliceWith(ws, r.U, 0, k),
		S: r.S[:k],
		V: mat.ColSliceWith(ws, r.V, 0, k),
	}
}

// Reconstruct returns U diag(S) Vᵀ.
func (r *GResult[T]) Reconstruct() *mat.GDense[T] {
	us := r.U.Clone()
	for i := 0; i < us.R; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= r.S[j]
		}
	}
	return mat.Mul(us, r.V.T())
}

// jacobiCutoff is the min-dimension above which Compute switches from
// one-sided Jacobi to the method of snapshots. Exported for tests via
// SetJacobiCutoff.
var jacobiCutoff = 96

// SetJacobiCutoff overrides the Jacobi/snapshots switch point and returns
// the previous value; intended for tests and benchmarks.
func SetJacobiCutoff(n int) int {
	old := jacobiCutoff
	jacobiCutoff = n
	return old
}

// relDropTol drops float64 singular values below this multiple of the
// largest; they are numerically zero and their singular vectors are noise.
// The float32 tier uses relDropTol32 (scaled to f32 machine epsilon).
const (
	relDropTol   = 1e-12
	relDropTol32 = 1e-6
)

// jacobiTols returns the per-tier numerical thresholds: the off-diagonal
// convergence tolerance of the rotation sweep and the relative drop
// tolerance for retained singular values, each a small multiple of the
// element type's machine epsilon (2⁻⁵² for float64, 2⁻²⁴ for float32).
// The sizeof comparison folds per instantiation.
func jacobiTols[T mat.Element]() (rotTol, dropTol float64) {
	var z T
	if unsafe.Sizeof(z) == 8 {
		return 1e-15, relDropTol
	}
	return 1e-7, relDropTol32
}

// Compute returns the economy SVD of a. Small factors go through
// one-sided Jacobi (high accuracy); larger ones through the method of
// snapshots on the smaller Gram matrix (accuracy ~√ε relative to the
// largest singular value, which is ample for sensor data and is exactly
// the classical POD/DMD route).
func Compute(a *mat.Dense) *Result {
	return ComputeWith(compute.Default(), nil, a)
}

// ComputeWith is Compute with its parallel sections routed through engine
// e and its internal scratch borrowed from ws (either may be nil). The
// returned factors are freshly owned — never workspace storage — so they
// may be retained indefinitely.
func ComputeWith(e *compute.Engine, ws *compute.Workspace, a *mat.Dense) *Result {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: mat.NewDense(m, 0), S: nil, V: mat.NewDense(n, 0)}
	}
	if min(m, n) <= jacobiCutoff {
		return jacobiSVDWS(e, a, ws, false)
	}
	return snapshotSVD(e, ws, a)
}

// jacobiSVD computes the economy SVD by one-sided Jacobi rotations on the
// columns of the (possibly transposed) matrix.
func jacobiSVD(a *mat.Dense) *Result { return jacobiSVDWS(nil, a, nil, false) }

// qrPrecondRatio is the tall-ness (m/n) at which jacobiSVDWS switches to
// QR preconditioning: factor A = Q·R first and run the Jacobi sweeps on
// the small n×n R instead of the full m×n matrix. Each rotation then
// touches n-length columns instead of m-length ones, the QR itself goes
// through the packed-GEMM trailing update, and the final U = Q·Ur is one
// more GEMM — so the tall-window SVDs that dominate mrDMD subtree fits
// cost O(m·n²) in fast kernels plus an n-sized Jacobi, not an m-sized
// one. Accuracy is preserved: MGS2 QR is backward stable and one-sided
// Jacobi on R is the classical high-accuracy route (Drmač–Veselić).
const qrPrecondRatio = 2

// jacobiSVDWS is jacobiSVD with rotation scratch borrowed from ws, generic
// over the element tier (the float32 instantiation is the screening SVD's
// engine). When poolOut is set, the returned U and V are workspace storage
// too and the caller must PutDense them back (used by the incremental
// updates, whose factor matrices are recycled every step).
func jacobiSVDWS[T mat.Element](e *compute.Engine, a *mat.GDense[T], ws *compute.Workspace, poolOut bool) *GResult[T] {
	m, n := a.Dims()
	rotTol, dropTol := jacobiTols[T]()
	if m < n {
		// Factor the transpose and swap factors: Aᵀ = U S Vᵀ ⇒ A = V S Uᵀ.
		at := mat.TWith(ws, a)
		r := jacobiSVDWS(e, at, ws, poolOut)
		mat.PutDense(ws, at)
		return &GResult[T]{U: r.V, S: r.S, V: r.U}
	}
	if n >= 2 && m >= qrPrecondRatio*n {
		// Tall case: A = Q·R, SVD the small R, rotate Q.
		qr := mat.QRFactorOn(e, ws, a)
		rs := jacobiSVDWS(e, qr.R, ws, true)
		var u *mat.GDense[T]
		if poolOut {
			u = mat.MulWith(e, ws, qr.Q, rs.U)
		} else {
			u = mat.MulWith(e, nil, qr.Q, rs.U)
		}
		qr.Release(ws)
		mat.PutDense(ws, rs.U)
		v := rs.V
		if !poolOut {
			v = rs.V.Clone()
			mat.PutDense(ws, rs.V)
		}
		return &GResult[T]{U: u, S: rs.S, V: v}
	}
	// The sweeps run on the TRANSPOSE of a: column j becomes contiguous
	// row j, so every pair dot and rotation streams two unit-stride rows
	// instead of gathering at stride n. The per-element arithmetic and
	// accumulation order (k ascending) are identical to the column form,
	// so the factors are bit-identical — only the memory layout changes.
	wt := mat.TWith(ws, a) // n×m: row j will be rotated into column j of U·Σ
	vt := mat.GetDenseOf[T](ws, n, n)
	for i := 0; i < n; i++ {
		vt.Data[i*n+i] = 1
	}

	const maxSweeps = 48
	// Convergence: all column pairs orthogonal relative to their norms.
	// Column dots accumulate in float64 in both tiers (cheap, and it keeps
	// the f32 sweep's convergence test meaningful near its epsilon).
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rp := wt.Data[p*m : p*m+m]
				rq := wt.Data[q*m : q*m+m]
				// Two accumulator lanes per sum: the three running sums
				// share one loop-carried chain each, and splitting them
				// by parity roughly doubles the issue rate on the pair
				// scan, the O(n²m) part the convergence test always pays.
				var app0, app1, aqq0, aqq1, apq0, apq1 float64
				k := 0
				for ; k+2 <= m; k += 2 {
					wp0, wq0 := float64(rp[k]), float64(rq[k])
					wp1, wq1 := float64(rp[k+1]), float64(rq[k+1])
					app0 += wp0 * wp0
					aqq0 += wq0 * wq0
					apq0 += wp0 * wq0
					app1 += wp1 * wp1
					aqq1 += wq1 * wq1
					apq1 += wp1 * wq1
				}
				if k < m {
					wp, wq := float64(rp[k]), float64(rq[k])
					app0 += wp * wp
					aqq0 += wq * wq
					apq0 += wp * wq
				}
				app := app0 + app1
				aqq := aqq0 + aqq1
				apq := apq0 + apq1
				if app == 0 || aqq == 0 {
					continue
				}
				if math.Abs(apq) <= rotTol*math.Sqrt(app*aqq) {
					continue
				}
				rotated = true
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := T(1 / math.Sqrt(1+t*t))
				s := T(t) * c
				for k := 0; k < m; k++ {
					wp, wq := rp[k], rq[k]
					rp[k] = c*wp - s*wq
					rq[k] = s*wp + c*wq
				}
				vp0 := vt.Data[p*n : p*n+n]
				vq0 := vt.Data[q*n : q*n+n]
				for k := 0; k < n; k++ {
					vp, vq := vp0[k], vq0[k]
					vp0[k] = c*vp - s*vq
					vq0[k] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the rotated rows' norms (= column norms of U·Σ);
	// U the normalized columns.
	type triplet struct {
		s   float64
		idx int
	}
	tr := make([]triplet, n)
	for j := 0; j < n; j++ {
		row := wt.Data[j*m : j*m+m]
		var s float64
		for k := 0; k < m; k++ {
			x := float64(row[k])
			s += x * x
		}
		tr[j] = triplet{math.Sqrt(s), j}
	}
	// Insertion sort, descending: n is small (≤ jacobiCutoff) and this
	// avoids sort.Slice's reflection allocations on the update hot path.
	for i := 1; i < n; i++ {
		t := tr[i]
		j := i - 1
		for j >= 0 && tr[j].s < t.s {
			tr[j+1] = tr[j]
			j--
		}
		tr[j+1] = t
	}

	smax := tr[0].s
	rank := 0
	for rank < n && tr[rank].s > dropTol*smax && tr[rank].s > 0 {
		rank++
	}
	if rank == 0 {
		rank = 1 // zero matrix: keep a single zero triplet for shape sanity
	}

	var u, vv *mat.GDense[T]
	if poolOut {
		u = mat.GetDenseOf[T](ws, m, rank)
		vv = mat.GetDenseOf[T](ws, n, rank)
	} else {
		u = mat.NewOf[T](m, rank)
		vv = mat.NewOf[T](n, rank)
	}
	ss := make([]T, rank)
	for jOut := 0; jOut < rank; jOut++ {
		j := tr[jOut].idx
		sv := tr[jOut].s
		ss[jOut] = T(sv)
		inv := 0.0
		if sv > 0 {
			inv = 1 / sv
		}
		wrow := wt.Data[j*m : j*m+m]
		for k := 0; k < m; k++ {
			u.Data[k*rank+jOut] = wrow[k] * T(inv)
		}
		vrow := vt.Data[j*n : j*n+n]
		for k := 0; k < n; k++ {
			vv.Data[k*rank+jOut] = vrow[k]
		}
	}
	mat.PutDense(ws, wt)
	mat.PutDense(ws, vt)
	return &GResult[T]{U: u, S: ss, V: vv}
}

// snapshotSVD computes the economy SVD via the eigendecomposition of the
// smaller Gram matrix (the classical method of snapshots).
func snapshotSVD(e *compute.Engine, ws *compute.Workspace, a *mat.Dense) *Result {
	m, n := a.Dims()
	if n <= m {
		// G = AᵀA = V Λ Vᵀ; σ = √λ; U = A V Σ⁻¹.
		g := mat.GramWith(e, ws, a, true)
		w, v := eig.Symmetric(g) // clones g internally
		mat.PutDense(ws, g)
		return assembleFromGram(e, a, w, v, false)
	}
	// G = AAᵀ = U Λ Uᵀ; σ = √λ; V = Aᵀ U Σ⁻¹.
	g := mat.GramWith(e, ws, a, false)
	w, u := eig.Symmetric(g)
	mat.PutDense(ws, g)
	return assembleFromGram(e, a, w, u, true)
}

// assembleFromGram turns the Gram eigendecomposition into an SVD. When
// left is false the eigenvectors are V and U is recovered; when true the
// eigenvectors are U and V is recovered.
func assembleFromGram(e *compute.Engine, a *mat.Dense, w []float64, vecs *mat.Dense, left bool) *Result {
	var smax float64
	for _, l := range w {
		if l > smax {
			smax = l
		}
	}
	smax = math.Sqrt(math.Max(smax, 0))
	rank := 0
	// Squared spectrum: drop below (relTol·σmax)² and negatives (noise).
	for rank < len(w) {
		l := w[rank]
		if l <= 0 {
			break
		}
		if math.Sqrt(l) <= 1e-8*smax {
			break
		}
		rank++
	}
	if rank == 0 {
		m, n := a.Dims()
		z := &Result{U: mat.NewDense(m, 1), S: []float64{0}, V: mat.NewDense(n, 1)}
		return z
	}
	s := make([]float64, rank)
	for i := 0; i < rank; i++ {
		s[i] = math.Sqrt(w[i])
	}
	kept := vecs.ColSlice(0, rank)
	if !left {
		// kept = V; U = A V Σ⁻¹.
		u := mat.MulWith(e, nil, a, kept)
		scaleColsInv(u, s)
		return &Result{U: u, S: s, V: kept}
	}
	// kept = U; V = Aᵀ U Σ⁻¹ computed as (UᵀA)ᵀ Σ⁻¹ without materializing Aᵀ.
	v := mat.MulTWith(e, nil, a, kept) // aᵀ·kept — exactly Aᵀ U.
	scaleColsInv(v, s)
	return &Result{U: kept, S: s, V: v}
}

func scaleColsInv(m *mat.Dense, s []float64) {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] /= s[j]
		}
	}
}

// SVHTRank returns the number of singular values that survive the
// Gavish–Donoho optimal hard threshold τ = ω(β)·median(σ) for a matrix
// with aspect ratio β = min(m,n)/max(m,n) and unknown noise level, using
// the standard cubic approximation of ω. Generic so the screening tier
// can apply the same decision rule to its float32 spectrum.
func SVHTRank[T mat.Element](s []T, m, n int) int {
	return SVHTRankWith(nil, s, m, n)
}

// SVHTRankWith is SVHTRank with the median's sort scratch borrowed from ws
// (nil ws allocates). The threshold runs inside every window fit and every
// PartialFit refresh, so the hot callers (dmd.FromSVD, MixedCompute) pass
// their workspace to keep the decision allocation-free.
func SVHTRankWith[T mat.Element](ws *compute.Workspace, s []T, m, n int) int {
	if len(s) == 0 {
		return 0
	}
	beta := float64(min(m, n)) / float64(max(m, n))
	omega := 0.56*beta*beta*beta - 0.95*beta*beta + 1.82*beta + 1.43
	med := medianWith(ws, s)
	tau := omega * med
	rank := 0
	for rank < len(s) && float64(s[rank]) > tau {
		rank++
	}
	if rank == 0 {
		rank = 1 // always keep at least the dominant direction
	}
	return rank
}

// medianWith computes the median of a spectrum in float64, sorting a
// workspace-borrowed copy (the input is descending already, but the copy
// keeps the contract allocation-free rather than order-dependent).
func medianWith[T mat.Element](ws *compute.Workspace, s []T) float64 {
	c := ws.GetF64(len(s))
	for i, v := range s {
		c[i] = float64(v)
	}
	sort.Float64s(c)
	n := len(c)
	var med float64
	if n%2 == 1 {
		med = c[n/2]
	} else {
		med = 0.5 * (c[n/2-1] + c[n/2])
	}
	ws.PutF64(c)
	return med
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
