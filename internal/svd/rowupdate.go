package svd

import (
	"fmt"

	"imrdmd/internal/mat"
)

// AddRows extends the running decomposition with new rows (new spatial
// measurements covering the full absorbed column history) — the transpose
// counterpart of Update, supporting the paper's future-work extension of
// adding entire new time series to I-mrDMD.
//
// With X = U Σ Vᵀ and a new row block B (k×t):
//
//	[X; B] = [U 0; 0 I] · K · [V Qh]ᵀ,   K = | Σ      0  |
//	                                         | (BV)   Rhᵀ|
//
// where Hᵀ = B − (BV)Vᵀ is the out-of-subspace residual and Qh Rh its
// (transposed) QR factorization. The replicated math lives in
// PlanShardRowUpdate (sharded.go) — this path is its one-shard
// application: rotate the existing rows and append the new ones at the
// bottom. Like Update, every intermediate is borrowed from the workspace
// and the replaced factors are recycled.
func (inc *Incremental) AddRows(b *mat.Dense) {
	if b.C != inc.V.R {
		panic(fmt.Sprintf("svd: AddRows column mismatch %d vs %d", b.C, inc.V.R))
	}
	if b.R == 0 {
		return
	}
	EachRowBlock(b, inc.addRows)
}

func (inc *Incremental) addRows(b *mat.Dense) {
	ws := inc.ws
	plan := PlanShardRowUpdate(inc.eng, ws, inc.S, inc.V, b, inc.MaxRank, inc.DropTol)
	r := len(plan.NewS)
	m := inc.U.R
	newU := mat.GetDenseRaw(ws, m+b.R, r)
	top := &mat.Dense{R: m, C: r, Data: newU.Data[:m*r]}
	mat.MulIntoWith(inc.eng, top, inc.U, plan.UA)
	copy(newU.Data[m*r:], plan.NewRows.Data)
	plan.Release(ws)
	inc.replaceFactors(newU, plan.NewS, plan.NewV)
	inc.updates++
	if inc.reorthEvery > 0 && inc.updates%inc.reorthEvery == 0 {
		inc.reorthogonalize()
	}
}
