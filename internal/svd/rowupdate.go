package svd

import (
	"fmt"

	"imrdmd/internal/mat"
)

// AddRows extends the running decomposition with new rows (new spatial
// measurements covering the full absorbed column history) — the transpose
// counterpart of Update, supporting the paper's future-work extension of
// adding entire new time series to I-mrDMD.
//
// With X = U Σ Vᵀ and a new row block B (k×t):
//
//	[X; B] = [U 0; 0 I] · K · [V Qh]ᵀ,   K = | Σ      0  |
//	                                         | (BV)   Rhᵀ|
//
// where Hᵀ = B − (BV)Vᵀ is the out-of-subspace residual and Qh Rh its
// (transposed) QR factorization. Like Update, every intermediate is
// borrowed from the workspace and the replaced factors are recycled.
func (inc *Incremental) AddRows(b *mat.Dense) {
	if b.C != inc.V.R {
		panic(fmt.Sprintf("svd: AddRows column mismatch %d vs %d", b.C, inc.V.R))
	}
	if b.R == 0 {
		return
	}
	// Row blocks taller than the column count are split so the residual
	// QR stays tall.
	if b.R > b.C {
		for i := 0; i < b.R; i += b.C {
			hi := i + b.C
			if hi > b.R {
				hi = b.R
			}
			inc.addRows(b.RowSlice(i, hi))
		}
		return
	}
	inc.addRows(b)
}

func (inc *Incremental) addRows(b *mat.Dense) {
	q := inc.Rank()
	k := b.R
	t := inc.V.R
	ws := inc.ws

	l := mat.MulWith(inc.eng, ws, b, inc.V) // k×q
	// H = B − L Vᵀ (k×t residual rows), built without materializing Vᵀ:
	// H[i,:] = B[i,:] − Σ_j L[i,j]·V[:,j]ᵀ.
	h := mat.CloneWith(ws, b)
	for i := 0; i < k; i++ {
		hrow := h.Row(i)
		lrow := l.Row(i)
		for j := 0; j < q; j++ {
			lij := lrow[j]
			if lij == 0 {
				continue
			}
			for r := 0; r < t; r++ {
				hrow[r] -= lij * inc.V.Data[r*q+j]
			}
		}
	}
	ht := mat.TWith(ws, h) // t×k
	mat.PutDense(ws, h)
	qr := mat.QRFactorOn(inc.eng, ws, ht) // Qh (t×k), Rh (k×k); Hᵀ = Qh Rh
	mat.PutDense(ws, ht)

	// Augmented core ((q+k)×(q+k)): [Σ 0; L Rhᵀ].
	kk := mat.GetDense(ws, q+k, q+k)
	for i := 0; i < q; i++ {
		kk.Set(i, i, inc.S[i])
	}
	for i := 0; i < k; i++ {
		copy(kk.Row(q + i)[:q], l.Row(i))
		for j := 0; j < k; j++ {
			kk.Set(q+i, q+j, qr.R.At(j, i))
		}
	}
	core := jacobiSVDWS(inc.eng, kk, ws, true)
	mat.PutDense(ws, kk)
	mat.PutDense(ws, l)

	// U ← [[U 0];[0 I]]·Uc (rows grow by k).
	m := inc.U.R
	uext := mat.GetDense(ws, m+k, q+k)
	for i := 0; i < m; i++ {
		copy(uext.Row(i)[:q], inc.U.Row(i))
	}
	for i := 0; i < k; i++ {
		uext.Set(m+i, q+i, 1)
	}
	newU := mat.MulWith(inc.eng, ws, uext, core.U)
	mat.PutDense(ws, uext)

	// V ← [V Qh]·Vc. Raw borrow: both column blocks are fully copied.
	vq := mat.GetDenseRaw(ws, t, q+k)
	for i := 0; i < t; i++ {
		copy(vq.Row(i)[:q], inc.V.Row(i))
		copy(vq.Row(i)[q:], qr.Q.Row(i))
	}
	newV := mat.MulWith(inc.eng, ws, vq, core.V)
	mat.PutDense(ws, vq)
	qr.Release(ws)
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)

	inc.replaceFactors(newU, core.S, newV)
	inc.truncate()
	inc.updates++
	if inc.reorthEvery > 0 && inc.updates%inc.reorthEvery == 0 {
		inc.reorthogonalize()
	}
}
