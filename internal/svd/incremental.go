package svd

import (
	"fmt"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// Incremental maintains a truncated SVD X ≈ U diag(S) Vᵀ of a matrix
// that grows by columns ("spatially parallel / temporally serial" in the
// terminology of Kühl et al. [46], which the paper's I-mrDMD adopts).
//
// The update is Brand's additive algorithm: project the incoming block C
// onto the current basis, QR-factor the out-of-subspace residual, build
// the small augmented core matrix
//
//	K = | diag(S)  UᵀC |
//	    |   0      R   |
//
// take its (small, dense) SVD, and rotate the bases. Cost per update is
// O(m·q·c + q³) for m rows, rank q and c new columns — independent of how
// many columns have been absorbed before, which is exactly the property
// that makes I-mrDMD's partial fits flat in Table I of the paper.
//
// Every intermediate of the update — the projection L, the residual and
// its QR factors, the augmented core K and the extended bases — is
// borrowed from a compute.Workspace, and the replaced U/V factors are
// recycled into the same pool, so sustained streams of updates are
// allocation-stable (see DESIGN.md §2).
type Incremental struct {
	U *mat.Dense // m×q
	S []float64  // q
	V *mat.Dense // t×q, t grows with absorbed columns

	// MaxRank caps q after every update; 0 means unbounded.
	MaxRank int
	// DropTol removes singular values below DropTol·σmax after every
	// update. Zero uses a conservative default.
	DropTol float64

	updates int
	// reorthEvery controls the periodic exact re-orthogonalization of U
	// that counters Brand-update drift.
	reorthEvery int

	eng *compute.Engine
	ws  *compute.Workspace
}

// NewIncremental seeds the running SVD from a first batch of columns,
// using the shared default engine.
func NewIncremental(first *mat.Dense, maxRank int) *Incremental {
	return NewIncrementalWith(compute.Default(), nil, first, maxRank)
}

// DefaultDropTol and DefaultReorthEvery are the incremental update
// defaults both the unsharded constructor and shard.Coordinator install —
// shared so the two paths cannot drift onto different truncation or
// re-orthogonalization schedules (their agreement is test-pinned).
const (
	DefaultDropTol     = 1e-10
	DefaultReorthEvery = 8
)

// NewIncrementalWith seeds the running SVD with an explicit engine and
// workspace (nil ws creates a private one; nil eng runs serially).
func NewIncrementalWith(eng *compute.Engine, ws *compute.Workspace, first *mat.Dense, maxRank int) *Incremental {
	if ws == nil {
		ws = compute.NewWorkspace()
	}
	r := ComputeWith(eng, ws, first)
	if maxRank > 0 && r.Rank() > maxRank {
		r = r.Truncate(maxRank)
	}
	return &Incremental{
		U:           r.U,
		S:           r.S,
		V:           r.V,
		MaxRank:     maxRank,
		DropTol:     DefaultDropTol,
		reorthEvery: DefaultReorthEvery,
		eng:         eng,
		ws:          ws,
	}
}

// SetEngine redirects the update parallelism to e (nil for serial).
func (inc *Incremental) SetEngine(e *compute.Engine) { inc.eng = e }

// Rows returns m, the (fixed) row dimension.
func (inc *Incremental) Rows() int { return inc.U.R }

// Cols returns t, the number of columns absorbed so far.
func (inc *Incremental) Cols() int { return inc.V.R }

// Rank returns the current truncation rank q.
func (inc *Incremental) Rank() int { return len(inc.S) }

// WorkspaceStats reports buffer-pool gets and hits (for reuse tests).
func (inc *Incremental) WorkspaceStats() (gets, hits int) { return inc.ws.Stats() }

// UpdateBlock absorbs c in chunks of w columns. Each chunk costs one QR
// of the residual block plus one (q+w)-sized core SVD and basis rotation,
// so a block of w columns pays a single factorization where w
// column-at-a-time updates (w = 1) would pay w of them — the amortization
// behind core's BlockColumns knob. The absorbed subspace is the same:
// Brand updates compose exactly up to rank truncation, so chunked and
// columnwise absorption agree to working precision (blockcolumns tests in
// svd and core pin this).
//
// w <= 0, or w >= c.C, absorbs c as one block — identical to Update.
func (inc *Incremental) UpdateBlock(c *mat.Dense, w int) {
	if c.C == 0 {
		return // empty blocks are a no-op even with a degenerate row field
	}
	if c.R != inc.U.R {
		panic(fmt.Sprintf("svd: Incremental.Update row mismatch %d vs %d", c.R, inc.U.R))
	}
	EachUpdateBlock(inc.ws, c, w, inc.U.R, inc.update)
}

// Update absorbs a new block of columns c (m×k). Blocks wider than the
// row count are split so the residual QR stays tall.
func (inc *Incremental) Update(c *mat.Dense) {
	inc.UpdateBlock(c, 0)
}

func (inc *Incremental) update(c *mat.Dense) {
	q := inc.Rank()
	k := c.C
	ws := inc.ws

	// L = Uᵀ C (q×k); H = C − U L, the out-of-basis residual.
	l := mat.MulTWith(inc.eng, ws, inc.U, c)
	h := mat.MulWith(inc.eng, ws, inc.U, l) // holds U·L, flipped to C − U·L below
	for i := 0; i < h.R; i++ {
		hrow := h.Row(i)
		crow := c.Row(i)
		for j := range hrow {
			hrow[j] = crow[j] - hrow[j]
		}
	}
	qr := mat.QRFactorOn(inc.eng, ws, h) // J (m×k) orthonormal, R (k×k)
	mat.PutDense(ws, h)

	// Augmented core K ((q+k)×(q+k)).
	kk := mat.GetDense(ws, q+k, q+k)
	for i := 0; i < q; i++ {
		kk.Set(i, i, inc.S[i])
		copy(kk.Row(i)[q:], l.Row(i))
	}
	for i := 0; i < k; i++ {
		copy(kk.Row(q + i)[q:], qr.R.Row(i))
	}
	core := jacobiSVDWS(inc.eng, kk, ws, true)
	mat.PutDense(ws, kk)
	mat.PutDense(ws, l)

	// Rotate bases: U ← [U J]·Uc, V ← [[V 0];[0 I]]·Vc.
	// uj is a raw borrow: both column blocks are fully copied below.
	m := inc.U.R
	uj := mat.GetDenseRaw(ws, m, q+k)
	for i := 0; i < m; i++ {
		row := uj.Row(i)
		copy(row[:q], inc.U.Row(i))
		copy(row[q:], qr.Q.Row(i))
	}
	newU := mat.MulWith(inc.eng, ws, uj, core.U)
	mat.PutDense(ws, uj)
	qr.Release(ws)

	t := inc.V.R
	vext := mat.GetDense(ws, t+k, q+k)
	for i := 0; i < t; i++ {
		copy(vext.Row(i)[:q], inc.V.Row(i))
	}
	for i := 0; i < k; i++ {
		vext.Set(t+i, q+i, 1)
	}
	newV := mat.MulWith(inc.eng, ws, vext, core.V)
	mat.PutDense(ws, vext)
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)

	inc.replaceFactors(newU, core.S, newV)
	inc.truncate()

	inc.updates++
	if inc.reorthEvery > 0 && inc.updates%inc.reorthEvery == 0 {
		inc.reorthogonalize()
	}
}

// replaceFactors installs the rotated bases and recycles the previous
// factor storage into the workspace pool.
func (inc *Incremental) replaceFactors(u *mat.Dense, s []float64, v *mat.Dense) {
	mat.PutDense(inc.ws, inc.U)
	mat.PutDense(inc.ws, inc.V)
	inc.U, inc.S, inc.V = u, s, v
}

// truncate applies MaxRank and DropTol (the shared truncRank rule, so the
// sharded plans and this path decide identically).
func (inc *Incremental) truncate() {
	rank := truncRank(inc.S, inc.MaxRank, inc.DropTol)
	if rank == len(inc.S) {
		return
	}
	u := mat.ColSliceWith(inc.ws, inc.U, 0, rank)
	v := mat.ColSliceWith(inc.ws, inc.V, 0, rank)
	inc.replaceFactors(u, inc.S[:rank], v)
}

// reorthogonalize restores exact column orthonormality of U, which drifts
// slowly under repeated Brand updates. The correction is exact: with
// U = Q R, the factorization becomes Q·(R diag(S))·Vᵀ and the small SVD
// of R·diag(S) re-diagonalizes the core.
func (inc *Incremental) reorthogonalize() {
	q := inc.Rank()
	ws := inc.ws
	qr := mat.QRFactorOn(inc.eng, ws, inc.U)
	rs := mat.CloneWith(ws, qr.R)
	for i := 0; i < q; i++ {
		row := rs.Row(i)
		for j := range row {
			row[j] *= inc.S[j]
		}
	}
	core := jacobiSVDWS(inc.eng, rs, ws, true)
	mat.PutDense(ws, rs)
	newU := mat.MulWith(inc.eng, ws, qr.Q, core.U)
	newV := mat.MulWith(inc.eng, ws, inc.V, core.V)
	qr.Release(ws)
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)
	inc.replaceFactors(newU, core.S, newV)
	inc.truncate()
}

// Result snapshots the current decomposition. The returned factors are
// deep copies, independent of the workspace-pooled internals.
func (inc *Incremental) Result() *Result {
	return &Result{U: inc.U.Clone(), S: append([]float64(nil), inc.S...), V: inc.V.Clone()}
}

// ResultView returns the live factors without copying. The view is
// read-only and valid only until the next Update/AddRows — the factor
// storage is recycled into the workspace pool on replacement. Use Result
// for anything retained.
func (inc *Incremental) ResultView() *Result {
	return &Result{U: inc.U, S: inc.S, V: inc.V}
}
