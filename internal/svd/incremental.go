package svd

import (
	"fmt"

	"imrdmd/internal/mat"
)

// Incremental maintains a truncated SVD X ≈ U diag(S) Vᵀ of a matrix
// that grows by columns ("spatially parallel / temporally serial" in the
// terminology of Kühl et al. [46], which the paper's I-mrDMD adopts).
//
// The update is Brand's additive algorithm: project the incoming block C
// onto the current basis, QR-factor the out-of-subspace residual, build
// the small augmented core matrix
//
//	K = | diag(S)  UᵀC |
//	    |   0      R   |
//
// take its (small, dense) SVD, and rotate the bases. Cost per update is
// O(m·q·c + q³) for m rows, rank q and c new columns — independent of how
// many columns have been absorbed before, which is exactly the property
// that makes I-mrDMD's partial fits flat in Table I of the paper.
type Incremental struct {
	U *mat.Dense // m×q
	S []float64  // q
	V *mat.Dense // t×q, t grows with absorbed columns

	// MaxRank caps q after every update; 0 means unbounded.
	MaxRank int
	// DropTol removes singular values below DropTol·σmax after every
	// update. Zero uses a conservative default.
	DropTol float64

	updates int
	// reorthEvery controls the periodic exact re-orthogonalization of U
	// that counters Brand-update drift.
	reorthEvery int
}

// NewIncremental seeds the running SVD from a first batch of columns.
func NewIncremental(first *mat.Dense, maxRank int) *Incremental {
	r := Compute(first)
	if maxRank > 0 && r.Rank() > maxRank {
		r = r.Truncate(maxRank)
	}
	return &Incremental{
		U:           r.U,
		S:           r.S,
		V:           r.V,
		MaxRank:     maxRank,
		DropTol:     1e-10,
		reorthEvery: 8,
	}
}

// Rows returns m, the (fixed) row dimension.
func (inc *Incremental) Rows() int { return inc.U.R }

// Cols returns t, the number of columns absorbed so far.
func (inc *Incremental) Cols() int { return inc.V.R }

// Rank returns the current truncation rank q.
func (inc *Incremental) Rank() int { return len(inc.S) }

// Update absorbs a new block of columns c (m×k). Blocks wider than the
// row count are split so the residual QR stays tall.
func (inc *Incremental) Update(c *mat.Dense) {
	if c.R != inc.U.R {
		panic(fmt.Sprintf("svd: Incremental.Update row mismatch %d vs %d", c.R, inc.U.R))
	}
	if c.C == 0 {
		return
	}
	if c.C > c.R {
		for j := 0; j < c.C; j += c.R {
			hi := j + c.R
			if hi > c.C {
				hi = c.C
			}
			inc.update(c.ColSlice(j, hi))
		}
		return
	}
	inc.update(c)
}

func (inc *Incremental) update(c *mat.Dense) {
	q := inc.Rank()
	k := c.C

	// L = Uᵀ C (q×k); H = C − U L, the out-of-basis residual.
	l := mat.MulT(inc.U, c)
	h := mat.Sub(c, mat.Mul(inc.U, l))
	qr := mat.QRFactor(h) // J (m×k) orthonormal, R (k×k)

	// Augmented core K ((q+k)×(q+k)).
	kk := mat.NewDense(q+k, q+k)
	for i := 0; i < q; i++ {
		kk.Set(i, i, inc.S[i])
		copy(kk.Row(i)[q:], l.Row(i))
	}
	for i := 0; i < k; i++ {
		copy(kk.Row(q + i)[q:], qr.R.Row(i))
	}
	core := jacobiSVD(kk)

	// Rotate bases: U ← [U J]·Uc, V ← [[V 0];[0 I]]·Vc.
	uj := mat.HStack(inc.U, qr.Q)
	newU := mat.Mul(uj, core.U)

	t := inc.V.R
	vext := mat.NewDense(t+k, q+k)
	for i := 0; i < t; i++ {
		copy(vext.Row(i)[:q], inc.V.Row(i))
	}
	for i := 0; i < k; i++ {
		vext.Set(t+i, q+i, 1)
	}
	newV := mat.Mul(vext, core.V)

	inc.U, inc.S, inc.V = newU, core.S, newV
	inc.truncate()

	inc.updates++
	if inc.reorthEvery > 0 && inc.updates%inc.reorthEvery == 0 {
		inc.reorthogonalize()
	}
}

// truncate applies MaxRank and DropTol.
func (inc *Incremental) truncate() {
	rank := len(inc.S)
	if inc.MaxRank > 0 && rank > inc.MaxRank {
		rank = inc.MaxRank
	}
	tol := inc.DropTol
	if tol <= 0 {
		tol = 1e-10
	}
	if len(inc.S) > 0 {
		floor := tol * inc.S[0]
		for rank > 1 && inc.S[rank-1] <= floor {
			rank--
		}
	}
	if rank == len(inc.S) {
		return
	}
	inc.U = inc.U.ColSlice(0, rank)
	inc.V = inc.V.ColSlice(0, rank)
	inc.S = inc.S[:rank]
}

// reorthogonalize restores exact column orthonormality of U, which drifts
// slowly under repeated Brand updates. The correction is exact: with
// U = Q R, the factorization becomes Q·(R diag(S))·Vᵀ and the small SVD
// of R·diag(S) re-diagonalizes the core.
func (inc *Incremental) reorthogonalize() {
	q := inc.Rank()
	qr := mat.QRFactor(inc.U)
	rs := qr.R.Clone()
	for i := 0; i < q; i++ {
		row := rs.Row(i)
		for j := range row {
			row[j] *= inc.S[j]
		}
	}
	core := jacobiSVD(rs)
	inc.U = mat.Mul(qr.Q, core.U)
	inc.V = mat.Mul(inc.V, core.V)
	inc.S = core.S
	inc.truncate()
}

// Result snapshots the current decomposition.
func (inc *Incremental) Result() *Result {
	return &Result{U: inc.U.Clone(), S: append([]float64(nil), inc.S...), V: inc.V.Clone()}
}
