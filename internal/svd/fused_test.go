package svd

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

// TestShardBlockPayloadFusedEquivalence pins the fused payload build
// (ShardBlockPayload writing L = UᵀC and G = CᵀC straight into the
// collective buffer) against an explicit two-pass reference that computes
// each product into its own matrix and copies it in. The fused path runs
// the identical kernels into different storage, so the agreement bound is
// exact; the 1e-13 relative tolerance is the contract the streaming
// pipeline relies on and the bitwise check documents the current margin.
func TestShardBlockPayloadFusedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, c := range []struct{ m, q, w int }{
		{200, 48, 8},  // the streaming hot shape
		{101, 32, 5},  // ragged rows, narrow block
		{4096, 64, 8}, // huge inner dimension (inner-product class)
	} {
		u := mat.NewDense(c.m, c.q)
		cc := mat.NewDense(c.m, c.w)
		for i := range u.Data {
			u.Data[i] = rng.NormFloat64()
		}
		for i := range cc.Data {
			cc.Data[i] = rng.NormFloat64()
		}
		fused := make([]float64, BlockPayloadLen(c.q, c.w))
		ShardBlockPayload(nil, nil, u, cc, fused)

		l := mat.MulTWith(nil, nil, u, cc)
		g := mat.GramWith(nil, nil, cc, true)
		ref := make([]float64, BlockPayloadLen(c.q, c.w))
		copy(ref[:c.q*c.w], l.Data)
		copy(ref[c.q*c.w:], g.Data)

		var maxRel float64
		for i := range ref {
			d := math.Abs(fused[i] - ref[i])
			if rel := d / (1 + math.Abs(ref[i])); rel > maxRel {
				maxRel = rel
			}
			if fused[i] != ref[i] {
				t.Errorf("m=%d q=%d w=%d: payload element %d: fused %v vs two-pass %v",
					c.m, c.q, c.w, i, fused[i], ref[i])
			}
		}
		if maxRel > 1e-13 {
			t.Fatalf("m=%d q=%d w=%d: fused payload deviates by %g (tolerance 1e-13)",
				c.m, c.q, c.w, maxRel)
		}
	}
}

// TestShardBlockPayloadStridedBlock feeds ShardBlockPayload a strided
// column view of the incoming block — exactly what EachUpdateBlock hands
// the coordinator — and requires the payload to match the packed-clone
// run bit for bit (the kernels visit elements in the same order at any
// stride).
func TestShardBlockPayloadStridedBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	const m, q, w, total = 150, 40, 8, 40
	u := mat.NewDense(m, q)
	parent := mat.NewDense(m, total)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range parent.Data {
		parent.Data[i] = rng.NormFloat64()
	}
	cv := mat.ColsView(parent, 16, 16+w)

	strided := make([]float64, BlockPayloadLen(q, w))
	ShardBlockPayload(nil, nil, u, cv, strided)
	packed := make([]float64, BlockPayloadLen(q, w))
	ShardBlockPayload(nil, nil, u, cv.Clone(), packed)
	for i := range packed {
		if strided[i] != packed[i] {
			t.Fatalf("payload element %d: strided %v vs packed %v", i, strided[i], packed[i])
		}
	}
}
