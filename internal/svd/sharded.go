package svd

import (
	"fmt"
	"math"

	"imrdmd/internal/compute"
	"imrdmd/internal/eig"
	"imrdmd/internal/mat"
)

// This file splits the Brand-style incremental updates of incremental.go
// and rowupdate.go into shard-local and replicated phases, so a running
// decomposition can be row-partitioned across S shards (the ROADMAP's
// multi-node sharding item, in-process for now — internal/shard owns the
// orchestration and the transport seam).
//
// The partition follows the paper's row-separability observation: U shards
// by sensor rows while Σ and V replicate. For a column block C (m×w) the
// update factors into
//
//	shard-local:  P_s = [U_sᵀC_s ; C_sᵀC_s]   — the q×w projection with its
//	                                            w×w Gram rider
//	all-reduce:   P = Σ_s P_s                 — the ONE collective per update
//	replicated:   residual Gram Gh = CᵀC − LᵀL (orthonormal U makes the
//	              cross terms vanish), its eigen square root R, the
//	              augmented core K = [diag(Σ) L; 0 R], its small SVD, the
//	              rank decision, and the Σ/V refresh
//	shard-local:  U_s ← U_s·A + C_s·B         — two GEMMs per shard, with
//	              A, B derived from the core rotation (no H materialized)
//
// Equivalence with the unsharded path: the single-shard update QR-factors
// H = C − U L by MGS2 while the sharded one takes the eigen square root of
// H's Gram — the two R factors differ by an orthogonal left factor Ω, the
// core matrices by diag(I, Ω), and Ω cancels exactly in the rotated bases
// (J₂ = H R₂⁻¹ absorbs Ω⁻¹). So in exact arithmetic the sharded update
// reproduces the unsharded factors identically; in floating point they
// differ by roundoff amplified by the residual's conditioning, which the
// sharded_test.go equivalence suites and the core-level scenario tests
// bound at 1e-8. See DESIGN.md §7.

// EachUpdateBlock partitions c into the exact block schedule the
// incremental updates absorb and invokes fn on each block in order:
// chunks of w columns (w ≤ 0, or w ≥ c.C, is a single chunk), each
// further split so no block is wider than maxW — the row count, keeping
// the residual QR tall. Blocks are zero-copy column views into c (stride
// = c.C); when the schedule is a single block, c itself is passed through.
// Shared by svd.Incremental and shard.Coordinator so sharded and
// unsharded streams absorb identical block sequences.
func EachUpdateBlock(ws *compute.Workspace, c *mat.Dense, w, maxW int, fn func(*mat.Dense)) {
	if c.C == 0 {
		return
	}
	if w <= 0 || w > c.C {
		w = c.C
	}
	for j := 0; j < c.C; j += w {
		hi := min(j+w, c.C)
		blk := c
		if j != 0 || hi != c.C {
			blk = mat.ColsView(c, j, hi)
		}
		if blk.C > maxW {
			for i := 0; i < blk.C; i += maxW {
				fn(mat.ColsView(blk, i, min(i+maxW, blk.C)))
			}
		} else {
			fn(blk)
		}
	}
}

// EachRowBlock partitions a row (new-sensor) block into the schedule
// AddRows absorbs — chunks of at most b.C rows, keeping the transposed
// residual QR tall — and invokes fn on each chunk in order. Shared by
// svd.Incremental and shard.Coordinator so both paths absorb identical
// row sequences.
func EachRowBlock(b *mat.Dense, fn func(*mat.Dense)) {
	if b.R > b.C {
		for i := 0; i < b.R; i += b.C {
			fn(b.RowSlice(i, min(i+b.C, b.R)))
		}
		return
	}
	fn(b)
}

// BlockPayloadLen returns the element count of a sharded column-block
// update's reduce payload for rank q and block width w: the q×w projection
// U_sᵀC_s stacked over the w×w Gram rider C_sᵀC_s.
func BlockPayloadLen(q, w int) int { return (q + w) * w }

// GramPayloadLen returns the element count of a sharded
// re-orthogonalization's reduce payload: the q×q Gram of the shard's U
// rows.
func GramPayloadLen(q int) int { return q * q }

// ShardBlockPayload computes one shard's contribution to the column-block
// update collective into dst (length BlockPayloadLen(q, w), row-major):
// rows [0,q) hold L_s = U_sᵀC_s, rows [q,q+w) hold G_s = C_sᵀC_s. u is the
// shard's row slice of U (m_s×q) and c the shard's rows of the incoming
// block (m_s×w). Both products write straight into the payload halves —
// no intermediate borrow or copy — and c stays cache-resident between the
// two passes, so the pair behaves as one fused sweep over the block. Pure
// shard-local reads; safe to run concurrently across shards.
func ShardBlockPayload(e *compute.Engine, ws *compute.Workspace, u, c *mat.Dense, dst []float64) {
	q, w := u.C, c.C
	if len(dst) != BlockPayloadLen(q, w) {
		panic(fmt.Sprintf("svd: ShardBlockPayload dst length %d, want %d", len(dst), BlockPayloadLen(q, w)))
	}
	l := &mat.Dense{R: q, C: w, Data: dst[:q*w]}
	mat.MulTIntoWith(e, l, u, c)
	g := &mat.Dense{R: w, C: w, Data: dst[q*w:]}
	mat.GramIntoWith(e, g, c, true)
}

// ShardGramPayload computes one shard's contribution to the
// re-orthogonalization collective into dst (length GramPayloadLen(q)):
// U_sᵀU_s.
func ShardGramPayload(e *compute.Engine, ws *compute.Workspace, u *mat.Dense, dst []float64) {
	q := u.C
	if len(dst) != GramPayloadLen(q) {
		panic(fmt.Sprintf("svd: ShardGramPayload dst length %d, want %d", len(dst), GramPayloadLen(q)))
	}
	g := mat.GramWith(e, ws, u, true)
	copy(dst, g.Data)
	mat.PutDense(ws, g)
}

// BlockPlan is the replicated outcome of one sharded column-block update:
// the rotation every shard applies to its row slice (U_s ← U_s·UA + C_s·CB)
// plus the refreshed replicated Σ and V. UA and CB are workspace-borrowed —
// Release them after the shards have applied; NewV's ownership transfers to
// the caller (it replaces the previous replicated V).
type BlockPlan struct {
	UA   *mat.Dense // q×r coefficient on the shard's current U rows
	CB   *mat.Dense // w×r coefficient on the shard's incoming block rows
	NewS []float64  // r refreshed singular values
	NewV *mat.Dense // (t+w)×r refreshed right factor
}

// Release returns the plan's shard-rotation factors to the pool (NewV is
// not touched — the caller installed it as the live V).
func (p *BlockPlan) Release(ws *compute.Workspace) {
	mat.PutDense(ws, p.UA)
	mat.PutDense(ws, p.CB)
}

// gramEpsF64 and gramEpsF32 are the relative clamp applied to residual
// Gram eigenvalues, per payload tier: eigenvalues below clamp·tr(G) are
// indistinguishable from the payload's rounding noise (ε₆₄ ≈ 2e-16,
// ε₃₂ ≈ 1.2e-7, with headroom for the Ĝ − LᵀL cancellation) and their
// directions are dropped from the residual basis rather than normalized
// into noise.
const (
	gramEpsF64 = 1e-13
	gramEpsF32 = 3e-7
)

// GramEps returns the residual-Gram clamp for the given payload tier
// (payload32 = the mixed tier's float32 collective).
func GramEps(payload32 bool) float64 {
	if payload32 {
		return gramEpsF32
	}
	return gramEpsF64
}

// PlanBlockUpdate runs the replicated phase of a sharded column-block
// update on the reduced payload (layout as ShardBlockPayload, already
// summed across shards): residual Gram via Ĝ − LᵀL, its clamped eigen
// square root, the augmented core SVD, the MaxRank/DropTol rank decision,
// and the Σ/V refresh. s and v are the replicated factors (v is read, not
// consumed); w is the block width; gramEps the payload-tier clamp
// (GramEps). The returned plan carries everything a shard needs to rotate
// its rows.
func PlanBlockUpdate(e *compute.Engine, ws *compute.Workspace, s []float64, v *mat.Dense, payload []float64, w int, maxRank int, dropTol, gramEps float64) *BlockPlan {
	q := len(s)
	if len(payload) != BlockPayloadLen(q, w) {
		panic(fmt.Sprintf("svd: PlanBlockUpdate payload length %d, want %d", len(payload), BlockPayloadLen(q, w)))
	}
	l := &mat.Dense{R: q, C: w, Data: payload[:q*w]}
	ghat := &mat.Dense{R: w, C: w, Data: payload[q*w:]}

	// Gh = CᵀC − LᵀL: the Gram of the out-of-subspace residual H = C − U L
	// (UᵀU = I folds the cross terms into −LᵀL). Computed from the single
	// fused payload — no second collective.
	ltl := mat.MulTWith(e, ws, l, l)
	gh := mat.GetDenseRaw(ws, w, w)
	for i := range gh.Data {
		gh.Data[i] = ghat.Data[i] - ltl.Data[i]
	}
	mat.PutDense(ws, ltl)
	// Trace of Ĝ = Σ‖c_j‖² bounds every eigenvalue of Gh; the clamp is
	// relative to it so the noise floor scales with the block's energy.
	var tr float64
	for i := 0; i < w; i++ {
		tr += ghat.Data[i*w+i]
	}
	b, r := gramSqrt(ws, gh, gramEps*tr)
	mat.PutDense(ws, gh)
	kres := r.R // residual directions surviving the clamp (w in the generic case)

	// Augmented core K = [diag(Σ) L; 0 R] ((q+kres)×(q+w)).
	kk := mat.GetDense(ws, q+kres, q+w)
	for i := 0; i < q; i++ {
		kk.Set(i, i, s[i])
		copy(kk.Row(i)[q:], l.Row(i))
	}
	for i := 0; i < kres; i++ {
		copy(kk.Row(q + i)[q:], r.Row(i))
	}
	mat.PutDense(ws, r)
	core := jacobiSVDWS(e, kk, ws, true)
	mat.PutDense(ws, kk)

	rank := truncRank(core.S, maxRank, dropTol)
	uc := mat.ColSliceWith(ws, core.U, 0, rank) // (q+kres)×r
	vc := mat.ColSliceWith(ws, core.V, 0, rank) // (q+w)×r
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)

	// Shard rotation: U_s' = [U_s J_s]·Uc with J_s = (C_s − U_s L)·B, so
	// U_s' = U_s·(Uc_top − L·B·Uc_bot) + C_s·(B·Uc_bot) — two GEMMs per
	// shard, H never materialized.
	ucTop := &mat.Dense{R: q, C: rank, Data: uc.Data[:q*rank]}
	ucBot := &mat.Dense{R: kres, C: rank, Data: uc.Data[q*rank:]}
	cb := mat.MulWith(e, ws, b, ucBot) // w×r
	mat.PutDense(ws, b)
	lcb := mat.MulWith(e, ws, l, cb) // q×r
	ua := mat.GetDenseRaw(ws, q, rank)
	for i := range ua.Data {
		ua.Data[i] = ucTop.Data[i] - lcb.Data[i]
	}
	mat.PutDense(ws, lcb)
	mat.PutDense(ws, uc)

	// Replicated V refresh: V' = [[V 0];[0 I]]·Vc — top rows V·Vc_top,
	// bottom rows copied straight from Vc.
	t := v.R
	vcTop := &mat.Dense{R: q, C: rank, Data: vc.Data[:q*rank]}
	newV := mat.GetDenseRaw(ws, t+w, rank)
	nvTop := &mat.Dense{R: t, C: rank, Data: newV.Data[:t*rank]}
	mat.MulIntoWith(e, nvTop, v, vcTop)
	copy(newV.Data[t*rank:], vc.Data[q*rank:])
	mat.PutDense(ws, vc)

	newS := make([]float64, rank)
	copy(newS, core.S[:rank])
	return &BlockPlan{UA: ua, CB: cb, NewS: newS, NewV: newV}
}

// ApplyShardBlock rotates one shard's row slice per the plan:
// dst = u·UA + c·CB. dst (m_s×r) must not alias u or c; distinct shards
// write disjoint dst slices, so the apply phase fans out race-free.
func ApplyShardBlock(e *compute.Engine, ws *compute.Workspace, dst, u, c *mat.Dense, plan *BlockPlan) {
	mat.MulIntoWith(e, dst, u, plan.UA)
	tmp := mat.MulWith(e, ws, c, plan.CB)
	for i := 0; i < dst.R; i++ {
		drow := dst.Row(i)
		trow := tmp.Row(i)
		for j := range drow {
			drow[j] += trow[j]
		}
	}
	mat.PutDense(ws, tmp)
}

// ReorthPlan is the replicated outcome of a sharded re-orthogonalization:
// each shard applies U_s ← U_s·UA; Σ and V refresh as in BlockPlan.
type ReorthPlan struct {
	UA   *mat.Dense // q×r
	NewS []float64
	NewV *mat.Dense // t×r
}

// Release returns the plan's rotation factor to the pool.
func (p *ReorthPlan) Release(ws *compute.Workspace) { mat.PutDense(ws, p.UA) }

// PlanShardReorth runs the replicated phase of the periodic exact
// re-orthogonalization on the reduced q×q Gram of U (payload as
// ShardGramPayload, summed across shards): with G = UᵀU = WΛWᵀ, the
// orthonormalized basis is Q = U·WΛ^(−1/2) and the re-diagonalized core is
// the SVD of Λ^(1/2)Wᵀ·diag(Σ) — the eigen-square-root counterpart of the
// unsharded QR route (identical up to the orthogonal factor that cancels
// in the rotation). U drifts only slowly between reorths, so G ≈ I and the
// square root is maximally well conditioned.
func PlanShardReorth(e *compute.Engine, ws *compute.Workspace, s []float64, v *mat.Dense, payload []float64, maxRank int, dropTol float64) *ReorthPlan {
	q := len(s)
	if len(payload) != GramPayloadLen(q) {
		panic(fmt.Sprintf("svd: PlanShardReorth payload length %d, want %d", len(payload), GramPayloadLen(q)))
	}
	g := &mat.Dense{R: q, C: q, Data: payload}
	var tr float64
	for i := 0; i < q; i++ {
		tr += g.Data[i*q+i]
	}
	b, r := gramSqrt(ws, g, gramEpsF64*tr)
	kres := r.R

	// K = R·diag(Σ) (kres×q).
	kk := mat.GetDenseRaw(ws, kres, q)
	for i := 0; i < kres; i++ {
		row := kk.Row(i)
		rrow := r.Row(i)
		for j := 0; j < q; j++ {
			row[j] = rrow[j] * s[j]
		}
	}
	mat.PutDense(ws, r)
	core := jacobiSVDWS(e, kk, ws, true)
	mat.PutDense(ws, kk)

	rank := truncRank(core.S, maxRank, dropTol)
	uc := mat.ColSliceWith(ws, core.U, 0, rank) // kres×r
	vc := mat.ColSliceWith(ws, core.V, 0, rank) // q×r
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)

	ua := mat.MulWith(e, ws, b, uc) // q×r
	mat.PutDense(ws, b)
	mat.PutDense(ws, uc)
	newV := mat.MulWith(e, ws, v, vc)
	mat.PutDense(ws, vc)
	newS := make([]float64, rank)
	copy(newS, core.S[:rank])
	return &ReorthPlan{UA: ua, NewS: newS, NewV: newV}
}

// ApplyShardReorth rotates one shard's row slice: dst = u·UA.
func ApplyShardReorth(e *compute.Engine, dst, u *mat.Dense, plan *ReorthPlan) {
	mat.MulIntoWith(e, dst, u, plan.UA)
}

// RowPlan is the replicated outcome of a sharded row (new-sensor) update:
// every shard rotates its existing rows by UA, the owner shard appends
// NewRows at its bottom, and Σ/V refresh. In wire terms the owner
// broadcasts [L | Rhᵀ] plus the t×k residual basis Qh — a structural
// event, not the per-update collective (see internal/shard stats).
type RowPlan struct {
	UA      *mat.Dense // q×r coefficient on existing rows
	NewRows *mat.Dense // k×r rows for the owner shard's new sensors
	NewS    []float64
	NewV    *mat.Dense // t×r
}

// Release returns the plan's rotation factors to the pool.
func (p *RowPlan) Release(ws *compute.Workspace) {
	mat.PutDense(ws, p.UA)
	mat.PutDense(ws, p.NewRows)
}

// PlanShardRowUpdate runs the owner-local and replicated phases of a row
// update (AddRows' transposed Brand step, see rowupdate.go) against the
// replicated Σ/V: L = B·V, the residual H = B − L·Vᵀ with its transposed
// QR, the core [Σ 0; L Rhᵀ], its SVD, the rank decision and the V refresh.
// b (k×t) is the new rows' full history, owned by a single shard.
func PlanShardRowUpdate(e *compute.Engine, ws *compute.Workspace, s []float64, v *mat.Dense, b *mat.Dense, maxRank int, dropTol float64) *RowPlan {
	q := len(s)
	k := b.R
	t := v.R

	l := mat.MulWith(e, ws, b, v) // k×q
	h := mat.CloneWith(ws, b)
	for i := 0; i < k; i++ {
		hrow := h.Row(i)
		lrow := l.Row(i)
		for j := 0; j < q; j++ {
			lij := lrow[j]
			if lij == 0 {
				continue
			}
			for r := 0; r < t; r++ {
				hrow[r] -= lij * v.Data[r*q+j]
			}
		}
	}
	ht := mat.TWith(ws, h)
	mat.PutDense(ws, h)
	qr := mat.QRFactorOn(e, ws, ht) // Qh t×k, Rh k×k
	mat.PutDense(ws, ht)

	kk := mat.GetDense(ws, q+k, q+k)
	for i := 0; i < q; i++ {
		kk.Set(i, i, s[i])
	}
	for i := 0; i < k; i++ {
		copy(kk.Row(q + i)[:q], l.Row(i))
		for j := 0; j < k; j++ {
			kk.Set(q+i, q+j, qr.R.At(j, i))
		}
	}
	mat.PutDense(ws, l)
	core := jacobiSVDWS(e, kk, ws, true)
	mat.PutDense(ws, kk)

	rank := truncRank(core.S, maxRank, dropTol)
	uc := mat.ColSliceWith(ws, core.U, 0, rank) // (q+k)×r
	vc := mat.ColSliceWith(ws, core.V, 0, rank) // (q+k)×r
	mat.PutDense(ws, core.U)
	mat.PutDense(ws, core.V)

	ua := mat.GetDenseRaw(ws, q, rank)
	copy(ua.Data, uc.Data[:q*rank])
	newRows := mat.GetDenseRaw(ws, k, rank)
	copy(newRows.Data, uc.Data[q*rank:])
	mat.PutDense(ws, uc)

	// V' = [V Qh]·Vc.
	vq := mat.GetDenseRaw(ws, t, q+k)
	for i := 0; i < t; i++ {
		copy(vq.Row(i)[:q], v.Row(i))
		copy(vq.Row(i)[q:], qr.Q.Row(i))
	}
	qr.Release(ws)
	newV := mat.MulWith(e, ws, vq, vc)
	mat.PutDense(ws, vq)
	mat.PutDense(ws, vc)

	newS := make([]float64, rank)
	copy(newS, core.S[:rank])
	return &RowPlan{UA: ua, NewRows: newRows, NewS: newS, NewV: newV}
}

// gramSqrt factors a small symmetric positive semidefinite Gram matrix
// g = WΛWᵀ into the maps the sharded updates need: B = WΛ^(−1/2) (taking
// X with XᵀX = g to an orthonormal basis via X·B) and R = Λ^(1/2)Wᵀ (a
// square root with RᵀR = g). Eigenvalues at or below clamp — the payload
// tier's rounding noise — are dropped entirely, shrinking the returned
// factors to w×k' and k'×w: a direction whose residual energy is below
// the collective's noise floor cannot be meaningfully orthonormalized.
func gramSqrt(ws *compute.Workspace, g *mat.Dense, clamp float64) (b, r *mat.Dense) {
	w := g.R
	lam, vecs := eig.Symmetric(g) // descending eigenvalues
	if clamp <= 0 {
		clamp = 0
	}
	keep := 0
	for keep < len(lam) && lam[keep] > clamp {
		keep++
	}
	b = mat.GetDenseRaw(ws, w, keep)
	r = mat.GetDenseRaw(ws, keep, w)
	for j := 0; j < keep; j++ {
		sq := math.Sqrt(lam[j])
		inv := 1 / sq
		for i := 0; i < w; i++ {
			b.Data[i*keep+j] = vecs.Data[i*w+j] * inv
			r.Data[j*w+i] = vecs.Data[i*w+j] * sq
		}
	}
	return b, r
}

// truncRank applies the incremental updates' retention rule to a
// descending spectrum: cap at maxRank (0 = unbounded), then drop trailing
// values at or below dropTol·σmax (≤ 0 uses DefaultDropTol), always
// keeping at least one. Shared by the unsharded truncate and the sharded
// plans so both paths make bit-identical decisions.
func truncRank(s []float64, maxRank int, dropTol float64) int {
	rank := len(s)
	if maxRank > 0 && rank > maxRank {
		rank = maxRank
	}
	tol := dropTol
	if tol <= 0 {
		tol = DefaultDropTol
	}
	if len(s) > 0 {
		floor := tol * s[0]
		for rank > 1 && s[rank-1] <= floor {
			rank--
		}
	}
	return rank
}
