package svd

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

// TestUpdateBlockMatchesColumnwise pins the amortization contract: a
// stream absorbed in blocks of w columns spans the same subspace as the
// same stream absorbed column by column, up to rank-truncation noise.
func TestUpdateBlockMatchesColumnwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := 60
	full := randDense(rng, m, 72)
	seed := full.ColSlice(0, 16)
	rest := full.ColSlice(16, 72)

	for _, w := range []int{2, 4, 8} {
		blocked := NewIncremental(seed, 0)
		blocked.UpdateBlock(rest, w)
		colwise := NewIncremental(seed, 0)
		colwise.UpdateBlock(rest, 1)

		if blocked.Cols() != 72 || colwise.Cols() != 72 {
			t.Fatalf("w=%d: cols %d / %d want 72", w, blocked.Cols(), colwise.Cols())
		}
		for i := 0; i < 10; i++ {
			if d := math.Abs(blocked.S[i] - colwise.S[i]); d > 1e-8*(1+colwise.S[0]) {
				t.Fatalf("w=%d: σ[%d] differs by %g between block and columnwise", w, i, d)
			}
		}
		br := blocked.Result().Reconstruct()
		cr := colwise.Result().Reconstruct()
		if d := mat.Sub(br, cr).FrobNorm(); d > 1e-8*(1+full.FrobNorm()) {
			t.Fatalf("w=%d: block reconstruction deviates from columnwise by %g", w, d)
		}
		// Both must also still match the data they absorbed.
		if d := mat.Sub(br, full).FrobNorm(); d > 1e-6*(1+full.FrobNorm()) {
			t.Fatalf("w=%d: block reconstruction deviates from data by %g", w, d)
		}
	}
}

// TestUpdateBlockDegenerateWidths checks the w <= 0 / w >= cols edges
// collapse to a single-block Update, and empty input is a no-op.
func TestUpdateBlockDegenerateWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	seed := randDense(rng, 20, 6)
	blk := randDense(rng, 20, 5)

	single := NewIncremental(seed, 0)
	single.Update(blk)
	for _, w := range []int{0, -3, 5, 100} {
		inc := NewIncremental(seed, 0)
		inc.UpdateBlock(blk, w)
		if inc.Cols() != single.Cols() {
			t.Fatalf("w=%d: cols %d want %d", w, inc.Cols(), single.Cols())
		}
		for i := range single.S {
			if math.Abs(inc.S[i]-single.S[i]) > 1e-12*(1+single.S[0]) {
				t.Fatalf("w=%d: σ[%d] deviates from single-block update", w, i)
			}
		}
	}

	inc := NewIncremental(seed, 0)
	before := inc.Cols()
	inc.UpdateBlock(mat.NewDense(20, 0), 4)
	if inc.Cols() != before {
		t.Fatal("empty UpdateBlock changed state")
	}
}
