// Package hwlog models the hardware-error-log fidelity level: categorized
// per-node events (correctable memory errors, machine checks, node-down
// transitions, …), a seeded generator with background rates plus injected
// per-node bursts, and a CSV round trip. The case studies overlay these
// events on the rack view (the red/black node outlines in Figs. 4 and 6).
package hwlog

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// Category classifies an event.
type Category int

// Hardware event categories (a representative subset of the Cray
// hardware error log taxonomy).
const (
	MemCorrectable Category = iota
	MemUncorrectable
	MachineCheck
	NodeDown
	PowerFault
	LinkError
	numCategories
)

var categoryNames = [...]string{
	MemCorrectable:   "mem_correctable",
	MemUncorrectable: "mem_uncorrectable",
	MachineCheck:     "machine_check",
	NodeDown:         "node_down",
	PowerFault:       "power_fault",
	LinkError:        "link_error",
}

// String returns the log token for the category.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// ParseCategory inverts String.
func ParseCategory(s string) (Category, error) {
	for i, n := range categoryNames {
		if n == s {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("hwlog: unknown category %q", s)
}

// Severity grades an event.
type Severity int

// Severities in increasing order of concern.
const (
	Info Severity = iota
	Warn
	Error
	Fatal
)

var severityNames = [...]string{"info", "warn", "error", "fatal"}

// String returns the log token for the severity.
func (s Severity) String() string {
	if s < 0 || int(s) >= len(severityNames) {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return severityNames[s]
}

// ParseSeverity inverts String.
func ParseSeverity(s string) (Severity, error) {
	for i, n := range severityNames {
		if n == s {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("hwlog: unknown severity %q", s)
}

// defaultSeverity maps categories to their usual severity.
func defaultSeverity(c Category) Severity {
	switch c {
	case MemCorrectable:
		return Warn
	case MemUncorrectable, MachineCheck:
		return Error
	case NodeDown:
		return Fatal
	case PowerFault:
		return Error
	default:
		return Warn
	}
}

// Event is one hardware log record.
type Event struct {
	Time float64 // seconds since the trace epoch
	Node int
	Cat  Category
	Sev  Severity
	Msg  string
}

// Log is a time-ordered collection of events.
type Log struct {
	Events []Event
}

// sorted ensures time order (generators produce sorted logs; parsers may
// not).
func (l *Log) sorted() {
	sort.SliceStable(l.Events, func(a, b int) bool { return l.Events[a].Time < l.Events[b].Time })
}

// InWindow returns events with Time in [t0, t1).
func (l *Log) InWindow(t0, t1 float64) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Time >= t0 && e.Time < t1 {
			out = append(out, e)
		}
	}
	return out
}

// CountByNode tallies events of a category per node over [t0, t1).
func (l *Log) CountByNode(cat Category, t0, t1 float64) map[int]int {
	out := map[int]int{}
	for _, e := range l.Events {
		if e.Cat == cat && e.Time >= t0 && e.Time < t1 {
			out[e.Node]++
		}
	}
	return out
}

// NodesWith returns nodes with at least minCount events of the category
// in [t0, t1), sorted.
func (l *Log) NodesWith(cat Category, minCount int, t0, t1 float64) []int {
	counts := l.CountByNode(cat, t0, t1)
	var out []int
	for n, c := range counts {
		if c >= minCount {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// GenConfig drives the synthetic generator.
type GenConfig struct {
	NumNodes int
	Horizon  float64 // seconds
	Seed     int64
	// BackgroundRate is events per node per day across all categories
	// (default 0.02 — hardware errors are rare).
	BackgroundRate float64
	// Bursts inject concentrated faults on specific nodes, the ground
	// truth the case studies correlate against.
	Bursts []Burst
}

// Burst is a concentrated fault episode on one node.
type Burst struct {
	Node  int
	Cat   Category
	Start float64
	End   float64
	Count int // events spread across [Start, End)
}

// Generate produces a Log with Poisson background noise plus the
// configured bursts.
func Generate(cfg GenConfig) *Log {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rate := cfg.BackgroundRate
	if rate <= 0 {
		rate = 0.02
	}
	log := &Log{}
	// Background: expected events = rate/day × nodes × horizon.
	expected := rate * float64(cfg.NumNodes) * cfg.Horizon / 86400
	n := poisson(rng, expected)
	for i := 0; i < n; i++ {
		cat := Category(rng.Intn(int(numCategories)))
		node := rng.Intn(cfg.NumNodes)
		t := rng.Float64() * cfg.Horizon
		log.Events = append(log.Events, Event{
			Time: t, Node: node, Cat: cat, Sev: defaultSeverity(cat),
			Msg: fmt.Sprintf("%s on node %d", cat, node),
		})
	}
	for _, b := range cfg.Bursts {
		span := b.End - b.Start
		if span <= 0 || b.Count <= 0 {
			continue
		}
		for i := 0; i < b.Count; i++ {
			t := b.Start + rng.Float64()*span
			log.Events = append(log.Events, Event{
				Time: t, Node: b.Node, Cat: b.Cat, Sev: defaultSeverity(b.Cat),
				Msg: fmt.Sprintf("%s burst on node %d", b.Cat, b.Node),
			})
		}
	}
	log.sorted()
	return log
}

// poisson samples a Poisson variate by inversion for small means and a
// normal approximation above.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// WriteCSV emits time,node,category,severity,message rows.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "node", "category", "severity", "message"}); err != nil {
		return err
	}
	for _, e := range l.Events {
		rec := []string{
			strconv.FormatFloat(e.Time, 'f', 3, 64),
			strconv.Itoa(e.Node),
			e.Cat.String(),
			e.Sev.String(),
			e.Msg,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("hwlog: %w", err)
	}
	log := &Log{}
	for i, rec := range rows {
		if i == 0 && len(rec) > 0 && rec[0] == "time_s" {
			continue
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("hwlog: row %d has %d fields, want 5", i, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("hwlog: row %d time: %w", i, err)
		}
		node, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("hwlog: row %d node: %w", i, err)
		}
		cat, err := ParseCategory(rec[2])
		if err != nil {
			return nil, fmt.Errorf("hwlog: row %d: %w", i, err)
		}
		sev, err := ParseSeverity(rec[3])
		if err != nil {
			return nil, fmt.Errorf("hwlog: row %d: %w", i, err)
		}
		log.Events = append(log.Events, Event{Time: t, Node: node, Cat: cat, Sev: sev, Msg: rec[4]})
	}
	log.sorted()
	return log, nil
}
