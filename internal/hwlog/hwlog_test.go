package hwlog

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateBursts(t *testing.T) {
	log := Generate(GenConfig{
		NumNodes: 100, Horizon: 3600, Seed: 1, BackgroundRate: 0,
		Bursts: []Burst{
			{Node: 7, Cat: MemCorrectable, Start: 100, End: 200, Count: 25},
			{Node: 9, Cat: NodeDown, Start: 0, End: 3600, Count: 3},
		},
	})
	counts := log.CountByNode(MemCorrectable, 0, 3600)
	if counts[7] != 25 {
		t.Fatalf("node 7 mem_correctable count = %d want 25", counts[7])
	}
	if got := log.NodesWith(NodeDown, 3, 0, 3600); len(got) != 1 || got[0] != 9 {
		t.Fatalf("NodesWith(NodeDown) = %v want [9]", got)
	}
	// Burst events stay inside their window.
	for _, e := range log.Events {
		if e.Node == 7 && (e.Time < 100 || e.Time >= 200) {
			t.Fatalf("burst event escaped window: %+v", e)
		}
	}
}

func TestGenerateBackgroundRate(t *testing.T) {
	// 1000 nodes × 10 days × 0.5 events/node/day ≈ 5000 events.
	log := Generate(GenConfig{NumNodes: 1000, Horizon: 10 * 86400, Seed: 2, BackgroundRate: 0.5})
	n := len(log.Events)
	if n < 4000 || n > 6000 {
		t.Fatalf("background events = %d, want ≈5000", n)
	}
}

func TestEventsSorted(t *testing.T) {
	f := func(seed int64) bool {
		log := Generate(GenConfig{NumNodes: 50, Horizon: 86400, Seed: seed, BackgroundRate: 2,
			Bursts: []Burst{{Node: 3, Cat: MachineCheck, Start: 50, End: 5000, Count: 10}}})
		return sort.SliceIsSorted(log.Events, func(a, b int) bool {
			return log.Events[a].Time < log.Events[b].Time
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInWindow(t *testing.T) {
	log := &Log{Events: []Event{
		{Time: 1, Node: 0, Cat: LinkError},
		{Time: 5, Node: 1, Cat: LinkError},
		{Time: 9, Node: 2, Cat: LinkError},
	}}
	got := log.InWindow(2, 9)
	if len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("InWindow = %+v", got)
	}
}

func TestCategorySeverityStrings(t *testing.T) {
	for c := MemCorrectable; c < numCategories; c++ {
		s := c.String()
		back, err := ParseCategory(s)
		if err != nil || back != c {
			t.Fatalf("category %d round trip failed: %q", c, s)
		}
	}
	for _, sev := range []Severity{Info, Warn, Error, Fatal} {
		back, err := ParseSeverity(sev.String())
		if err != nil || back != sev {
			t.Fatalf("severity round trip failed: %v", sev)
		}
	}
	if _, err := ParseCategory("nope"); err == nil {
		t.Fatal("unknown category accepted")
	}
	if _, err := ParseSeverity("nope"); err == nil {
		t.Fatal("unknown severity accepted")
	}
}

func TestDefaultSeverities(t *testing.T) {
	if defaultSeverity(NodeDown) != Fatal {
		t.Fatal("node_down should be fatal")
	}
	if defaultSeverity(MemCorrectable) != Warn {
		t.Fatal("mem_correctable should be warn")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	log := Generate(GenConfig{NumNodes: 20, Horizon: 86400, Seed: 3, BackgroundRate: 5,
		Bursts: []Burst{{Node: 11, Cat: PowerFault, Start: 10, End: 20, Count: 4}}})
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(log.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(log.Events))
	}
	for i := range got.Events {
		a, b := log.Events[i], got.Events[i]
		if a.Node != b.Node || a.Cat != b.Cat || a.Sev != b.Sev || a.Msg != b.Msg {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"time_s,node,category,severity,message\nx,1,machine_check,error,m\n",
		"time_s,node,category,severity,message\n1,x,machine_check,error,m\n",
		"time_s,node,category,severity,message\n1,1,bogus,error,m\n",
		"time_s,node,category,severity,message\n1,1,machine_check,bogus,m\n",
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", s)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	// Sample mean of the Poisson sampler should approximate its mean
	// parameter in both the inversion and normal-approximation regimes.
	log := Generate(GenConfig{NumNodes: 1, Horizon: 86400, Seed: 4, BackgroundRate: 10})
	_ = log
	// Direct check via many draws:
	rngLog := Generate(GenConfig{NumNodes: 2000, Horizon: 86400, Seed: 5, BackgroundRate: 1})
	mean := float64(len(rngLog.Events)) / 2000
	if mean < 0.8 || mean > 1.2 {
		t.Fatalf("poisson mean per node = %g want ≈1", mean)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(GenConfig{NumNodes: 30, Horizon: 3600, Seed: 7, BackgroundRate: 3})
	b := Generate(GenConfig{NumNodes: 30, Horizon: 3600, Seed: 7, BackgroundRate: 3})
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different logs")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed, different events")
		}
	}
}
