// Package rack implements the paper's generalizable supercomputer layout
// specification (§III-B): a single string describes the hierarchy
// rows → racks → cabinets → slots → blades → nodes together with per-level
// row/column alignments, and the package turns it into node enumerations
// and normalized geometry for the rack-view visualization.
//
// The format, quoting the paper:
//
//	"system-name rack-row-align rack-col-align Rows[rack-range]:[racks-per-row]
//	 cab-row-align cab-col-align Cabinets:[range] slot-aligns Slots:[range]
//	 blade-aligns Blades:[range] Nodes:[range]"
//
// Alignments are -1 (right-to-left), 1 (left-to-right), 2 (bottom-to-top);
// the default 0 is top-to-bottom. Example (an XC40 like Theta):
//
//	"xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0"
package rack

import (
	"fmt"
	"strconv"
	"strings"
)

// Align is a layout direction code as defined by the paper.
type Align int

// Alignment codes. The zero value is the paper's default (top-to-bottom
// for row alignment, and natural order for column alignment).
const (
	TopToBottom Align = 0
	RightToLeft Align = -1
	LeftToRight Align = 1
	BottomToTop Align = 2
)

func (a Align) valid() bool {
	switch a {
	case TopToBottom, RightToLeft, LeftToRight, BottomToTop:
		return true
	}
	return false
}

// Reversed reports whether the alignment enumerates against the natural
// (left-to-right / top-to-bottom) direction.
func (a Align) Reversed() bool { return a == RightToLeft || a == BottomToTop }

// Level is one tier of the hierarchy with its index range (inclusive) and
// alignment pair.
type Level struct {
	From, To           int
	RowAlign, ColAlign Align
}

// Count returns the number of elements at this level.
func (l Level) Count() int { return l.To - l.From + 1 }

// Layout is a parsed system layout.
type Layout struct {
	System string

	// Rows of racks: rows RowFrom..RowTo, racks RackFrom..RackTo per row.
	RowFrom, RowTo   int
	RackFrom, RackTo int
	RackRowAlign     Align
	RackColAlign     Align

	Cabinets Level
	Slots    Level
	Blades   Level
	Nodes    Level
}

// NumRows returns the number of rack rows.
func (l *Layout) NumRows() int { return l.RowTo - l.RowFrom + 1 }

// RacksPerRow returns the racks in each row.
func (l *Layout) RacksPerRow() int { return l.RackTo - l.RackFrom + 1 }

// NumRacks returns the total rack count.
func (l *Layout) NumRacks() int { return l.NumRows() * l.RacksPerRow() }

// NodesPerRack returns cabinet×slot×blade×node count.
func (l *Layout) NodesPerRack() int {
	return l.Cabinets.Count() * l.Slots.Count() * l.Blades.Count() * l.Nodes.Count()
}

// TotalNodes returns the machine-wide node count.
func (l *Layout) TotalNodes() int { return l.NumRacks() * l.NodesPerRack() }

// Parse reads the layout DSL described in the package comment.
func Parse(spec string) (*Layout, error) {
	fields := strings.Fields(spec)
	if len(fields) < 2 {
		return nil, fmt.Errorf("rack: spec needs at least a system name and a row spec, got %q", spec)
	}
	l := &Layout{System: fields[0]}
	rest := fields[1:]

	// Collect alignment numbers until the next structured token; each
	// level consumes up to two pending alignments (row, column).
	var pending []Align
	takeAligns := func() (row, col Align) {
		switch len(pending) {
		case 0:
			return TopToBottom, LeftToRight
		case 1:
			row = pending[0]
			pending = nil
			return row, LeftToRight
		default:
			row, col = pending[0], pending[1]
			pending = nil
			return row, col
		}
	}

	seen := map[string]bool{}
	for _, tok := range rest {
		low := strings.ToLower(tok)
		switch {
		case isAlignToken(tok):
			n, _ := strconv.Atoi(tok)
			a := Align(n)
			if !a.valid() {
				return nil, fmt.Errorf("rack: invalid alignment %q", tok)
			}
			if len(pending) >= 2 {
				return nil, fmt.Errorf("rack: more than two alignment numbers before %q", tok)
			}
			pending = append(pending, a)

		case strings.HasPrefix(low, "row"):
			if seen["row"] {
				return nil, fmt.Errorf("rack: duplicate row spec %q", tok)
			}
			seen["row"] = true
			body := tok[len("row"):]
			parts := strings.SplitN(body, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("rack: row spec %q must look like row0-1:0-10", tok)
			}
			var err error
			if l.RowFrom, l.RowTo, err = parseRange(parts[0]); err != nil {
				return nil, fmt.Errorf("rack: row range: %w", err)
			}
			if l.RackFrom, l.RackTo, err = parseRange(parts[1]); err != nil {
				return nil, fmt.Errorf("rack: rack range: %w", err)
			}
			l.RackRowAlign, l.RackColAlign = takeAligns()

		case strings.HasPrefix(low, "c:"), strings.HasPrefix(low, "cabinets:"), strings.HasPrefix(low, "cages:"):
			lv, err := parseLevel(tok, &pending, takeAligns)
			if err != nil {
				return nil, err
			}
			if seen["c"] {
				return nil, fmt.Errorf("rack: duplicate cabinet spec %q", tok)
			}
			seen["c"] = true
			l.Cabinets = lv

		case strings.HasPrefix(low, "s:"), strings.HasPrefix(low, "slots:"):
			lv, err := parseLevel(tok, &pending, takeAligns)
			if err != nil {
				return nil, err
			}
			if seen["s"] {
				return nil, fmt.Errorf("rack: duplicate slot spec %q", tok)
			}
			seen["s"] = true
			l.Slots = lv

		case strings.HasPrefix(low, "b:"), strings.HasPrefix(low, "blades:"):
			lv, err := parseLevel(tok, &pending, takeAligns)
			if err != nil {
				return nil, err
			}
			if seen["b"] {
				return nil, fmt.Errorf("rack: duplicate blade spec %q", tok)
			}
			seen["b"] = true
			l.Blades = lv

		case strings.HasPrefix(low, "n:"), strings.HasPrefix(low, "nodes:"):
			lv, err := parseLevel(tok, &pending, takeAligns)
			if err != nil {
				return nil, err
			}
			if seen["n"] {
				return nil, fmt.Errorf("rack: duplicate node spec %q", tok)
			}
			seen["n"] = true
			l.Nodes = lv

		default:
			return nil, fmt.Errorf("rack: unrecognized token %q", tok)
		}
	}
	if !seen["row"] {
		return nil, fmt.Errorf("rack: missing row spec in %q", spec)
	}
	// Unspecified inner levels default to a single element so partial
	// specs (racks only) still enumerate.
	for _, lv := range []*Level{&l.Cabinets, &l.Slots, &l.Blades, &l.Nodes} {
		if lv.To < lv.From {
			lv.From, lv.To = 0, 0
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("rack: trailing alignment numbers in %q", spec)
	}
	return l, nil
}

func isAlignToken(tok string) bool {
	switch tok {
	case "-1", "0", "1", "2":
		return true
	}
	return false
}

func parseLevel(tok string, pending *[]Align, takeAligns func() (Align, Align)) (Level, error) {
	parts := strings.SplitN(tok, ":", 2)
	if len(parts) != 2 {
		return Level{}, fmt.Errorf("rack: level spec %q must look like c:0-7", tok)
	}
	from, to, err := parseRange(parts[1])
	if err != nil {
		return Level{}, fmt.Errorf("rack: level %q: %w", tok, err)
	}
	lv := Level{From: from, To: to}
	lv.RowAlign, lv.ColAlign = takeAligns()
	return lv, nil
}

// parseRange parses "a-b" or "a" (meaning a-a), requiring a ≤ b and a ≥ 0.
func parseRange(s string) (from, to int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("empty range")
	}
	parts := strings.SplitN(s, "-", 2)
	from, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %w", s, err)
	}
	to = from
	if len(parts) == 2 {
		to, err = strconv.Atoi(parts[1])
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w", s, err)
		}
	}
	if from < 0 || to < from {
		return 0, 0, fmt.Errorf("range %q must be nonnegative and ascending", s)
	}
	return from, to, nil
}
