package rack

import "fmt"

// NodeRef identifies one node in the hierarchy. Index is the dense
// 0-based machine-wide index in enumeration order, which is the row order
// used by the telemetry matrices.
type NodeRef struct {
	Index   int
	Row     int
	Rack    int
	Cabinet int
	Slot    int
	Blade   int
	Node    int
}

// ID returns the Cray-style component name, e.g. "c3-0c1s5n2" for rack 3
// in row 0, cabinet 1, slot 5, node 2 (the blade index is folded into the
// slot position as on real XC systems when there is one blade per slot,
// and written explicitly otherwise).
func (n NodeRef) ID() string {
	return fmt.Sprintf("c%d-%dc%ds%db%dn%d", n.Rack, n.Row, n.Cabinet, n.Slot, n.Blade, n.Node)
}

// Enumerate lists every node in deterministic order: rows, racks,
// cabinets, slots, blades, nodes.
func (l *Layout) Enumerate() []NodeRef {
	out := make([]NodeRef, 0, l.TotalNodes())
	idx := 0
	for row := l.RowFrom; row <= l.RowTo; row++ {
		for rk := l.RackFrom; rk <= l.RackTo; rk++ {
			for cb := l.Cabinets.From; cb <= l.Cabinets.To; cb++ {
				for sl := l.Slots.From; sl <= l.Slots.To; sl++ {
					for bl := l.Blades.From; bl <= l.Blades.To; bl++ {
						for nd := l.Nodes.From; nd <= l.Nodes.To; nd++ {
							out = append(out, NodeRef{
								Index: idx, Row: row, Rack: rk,
								Cabinet: cb, Slot: sl, Blade: bl, Node: nd,
							})
							idx++
						}
					}
				}
			}
		}
	}
	return out
}

// NodeIndex returns the dense index for hierarchy coordinates, inverse of
// Enumerate's ordering. It returns -1 for out-of-range coordinates.
func (l *Layout) NodeIndex(row, rk, cb, sl, bl, nd int) int {
	if row < l.RowFrom || row > l.RowTo || rk < l.RackFrom || rk > l.RackTo ||
		cb < l.Cabinets.From || cb > l.Cabinets.To ||
		sl < l.Slots.From || sl > l.Slots.To ||
		bl < l.Blades.From || bl > l.Blades.To ||
		nd < l.Nodes.From || nd > l.Nodes.To {
		return -1
	}
	idx := row - l.RowFrom
	idx = idx*l.RacksPerRow() + (rk - l.RackFrom)
	idx = idx*l.Cabinets.Count() + (cb - l.Cabinets.From)
	idx = idx*l.Slots.Count() + (sl - l.Slots.From)
	idx = idx*l.Blades.Count() + (bl - l.Blades.From)
	idx = idx*l.Nodes.Count() + (nd - l.Nodes.From)
	return idx
}

// Rect is an axis-aligned box in normalized layout units.
type Rect struct {
	X, Y, W, H float64
}

// Geometry is the computed placement of every rack and node, ready for
// rendering. Coordinates are in abstract units; the renderer scales them.
type Geometry struct {
	Width, Height float64
	Racks         []RackBox
	NodeRects     []Rect // indexed by NodeRef.Index
}

// RackBox is a rack outline with its identifying coordinates.
type RackBox struct {
	Row, Rack int
	Box       Rect
}

// rackGap and the per-level paddings (in fractions of the cell) keep the
// nested boxes visually separated.
const (
	rackW    = 100.0
	rackH    = 160.0
	rackGap  = 12.0
	innerPad = 2.0
)

// Geometry computes the normalized placement honoring the alignments.
func (l *Layout) Geometry() *Geometry {
	nRows, nRacks := l.NumRows(), l.RacksPerRow()
	g := &Geometry{
		Width:     float64(nRacks)*(rackW+rackGap) + rackGap,
		Height:    float64(nRows)*(rackH+rackGap) + rackGap,
		NodeRects: make([]Rect, l.TotalNodes()),
	}
	for row := 0; row < nRows; row++ {
		// Row alignment 2 (bottom-to-top) flips the vertical order of
		// rack rows; default fills top-to-bottom.
		ry := row
		if l.RackRowAlign == BottomToTop {
			ry = nRows - 1 - row
		}
		for rk := 0; rk < nRacks; rk++ {
			rx := rk
			if l.RackColAlign == RightToLeft {
				rx = nRacks - 1 - rk
			}
			box := Rect{
				X: rackGap + float64(rx)*(rackW+rackGap),
				Y: rackGap + float64(ry)*(rackH+rackGap),
				W: rackW,
				H: rackH,
			}
			g.Racks = append(g.Racks, RackBox{Row: l.RowFrom + row, Rack: l.RackFrom + rk, Box: box})
			l.placeRack(g, box, row, rk)
		}
	}
	return g
}

// placeRack subdivides one rack box into cabinet/slot/blade/node cells.
// Cabinets stack vertically, slots split horizontally, blades vertically,
// nodes horizontally — with each level's alignment able to flip its
// direction. This matches the visual convention of the paper's XC40 and
// Apollo figures.
func (l *Layout) placeRack(g *Geometry, box Rect, row, rk int) {
	nc, ns, nb, nn := l.Cabinets.Count(), l.Slots.Count(), l.Blades.Count(), l.Nodes.Count()
	ch := (box.H - innerPad*float64(nc+1)) / float64(nc)
	for c := 0; c < nc; c++ {
		cy := c
		// Bottom-to-top cabinets (the XC40 convention).
		if l.Cabinets.RowAlign == BottomToTop || l.Cabinets.ColAlign == BottomToTop {
			cy = nc - 1 - c
		}
		cbox := Rect{
			X: box.X + innerPad,
			Y: box.Y + innerPad + float64(cy)*(ch+innerPad),
			W: box.W - 2*innerPad,
			H: ch,
		}
		sw := (cbox.W - innerPad*float64(ns-1)) / float64(ns)
		for s := 0; s < ns; s++ {
			sx := s
			if l.Slots.RowAlign == RightToLeft || l.Slots.ColAlign == RightToLeft {
				sx = ns - 1 - s
			}
			sbox := Rect{
				X: cbox.X + float64(sx)*(sw+innerPad),
				Y: cbox.Y,
				W: sw,
				H: cbox.H,
			}
			bh := sbox.H / float64(nb)
			for b := 0; b < nb; b++ {
				by := b
				if l.Blades.RowAlign == BottomToTop || l.Blades.ColAlign == BottomToTop {
					by = nb - 1 - b
				}
				bbox := Rect{X: sbox.X, Y: sbox.Y + float64(by)*bh, W: sbox.W, H: bh}
				nw := bbox.W / float64(nn)
				for n := 0; n < nn; n++ {
					nx := n
					if l.Nodes.RowAlign == RightToLeft || l.Nodes.ColAlign == RightToLeft {
						nx = nn - 1 - n
					}
					idx := l.NodeIndex(l.RowFrom+row, l.RackFrom+rk,
						l.Cabinets.From+c, l.Slots.From+s, l.Blades.From+b, l.Nodes.From+n)
					g.NodeRects[idx] = Rect{
						X: bbox.X + float64(nx)*nw,
						Y: bbox.Y,
						W: nw,
						H: bbox.H,
					}
				}
			}
		}
	}
}

// Theta returns the layout used for the paper's Theta case studies: a
// Cray XC40 with 24 racks in two rows, 3 cabinets (chassis) per rack, 16
// slots per chassis and 4 nodes per blade — 4,608 slots of which the
// first 4,392 host compute nodes.
func Theta() *Layout {
	l, err := Parse("xc40 1 2 row0-1:0-11 2 c:0-2 1 s:0-15 1 b:0 n:0-3")
	if err != nil {
		panic("rack: builtin Theta layout invalid: " + err.Error())
	}
	return l
}

// Polaris returns a layout for the 560-node HPE Apollo 6500 Gen10+ system
// used in the paper's GPU-metrics scenario: 40 racks in one row with 14
// nodes each (two cabinets of 7).
func Polaris() *Layout {
	l, err := Parse("apollo 1 1 row0-0:0-39 2 c:0-1 1 s:0-6 1 b:0 n:0")
	if err != nil {
		panic("rack: builtin Polaris layout invalid: " + err.Error())
	}
	return l
}
