package rack

import (
	"strings"
	"testing"
	"testing/quick"
)

const xc40Spec = "xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0"

func TestParsePaperExample(t *testing.T) {
	// The exact example string from §III-B of the paper.
	l, err := Parse(xc40Spec)
	if err != nil {
		t.Fatal(err)
	}
	if l.System != "xc40" {
		t.Fatalf("system = %q", l.System)
	}
	if l.NumRows() != 2 || l.RacksPerRow() != 11 {
		t.Fatalf("rows=%d racks/row=%d want 2, 11", l.NumRows(), l.RacksPerRow())
	}
	if l.RackRowAlign != LeftToRight || l.RackColAlign != BottomToTop {
		t.Fatalf("rack aligns = %d,%d want 1,2", l.RackRowAlign, l.RackColAlign)
	}
	if l.Cabinets.Count() != 8 || l.Cabinets.RowAlign != BottomToTop {
		t.Fatalf("cabinets = %+v", l.Cabinets)
	}
	if l.Slots.Count() != 8 || l.Slots.RowAlign != LeftToRight {
		t.Fatalf("slots = %+v", l.Slots)
	}
	if l.Blades.Count() != 1 || l.Nodes.Count() != 1 {
		t.Fatalf("blades=%d nodes=%d want 1,1", l.Blades.Count(), l.Nodes.Count())
	}
	if got, want := l.TotalNodes(), 2*11*8*8; got != want {
		t.Fatalf("TotalNodes = %d want %d", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"sys",                        // no row spec
		"sys c:0-7",                  // still no row spec
		"sys row0-1",                 // row without rack range
		"sys row0-1:5-2",             // descending range
		"sys rowa-b:0-1",             // non-numeric
		"sys 5 row0-1:0-1",           // invalid alignment value
		"sys 1 2 1 row0-0:0-0",       // three alignments
		"sys row0-0:0-0 bogus",       // unknown token
		"sys row0-0:0-0 c:0-1 c:0-1", // duplicate level
		"sys row0-0:0-0 n:0 2",       // trailing alignment
		"sys row0-0:0-0 row0-0:0-0",  // duplicate row
		"sys row-1-0:0-0",            // negative index
	}
	for _, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestParseSingleValueRanges(t *testing.T) {
	l, err := Parse("mini row0:0 c:0 s:0 b:0 n:0-3")
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalNodes() != 4 {
		t.Fatalf("TotalNodes = %d want 4", l.TotalNodes())
	}
}

func TestParseDefaultsInnerLevels(t *testing.T) {
	l, err := Parse("flat row0-1:0-3")
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalNodes() != 8 {
		t.Fatalf("TotalNodes = %d want 8 (one node per rack)", l.TotalNodes())
	}
}

func TestEnumerateDenseAndUnique(t *testing.T) {
	l, err := Parse(xc40Spec)
	if err != nil {
		t.Fatal(err)
	}
	refs := l.Enumerate()
	if len(refs) != l.TotalNodes() {
		t.Fatalf("Enumerate returned %d refs, want %d", len(refs), l.TotalNodes())
	}
	ids := map[string]bool{}
	for i, r := range refs {
		if r.Index != i {
			t.Fatalf("ref %d has Index %d", i, r.Index)
		}
		id := r.ID()
		if ids[id] {
			t.Fatalf("duplicate node ID %q", id)
		}
		ids[id] = true
		if got := l.NodeIndex(r.Row, r.Rack, r.Cabinet, r.Slot, r.Blade, r.Node); got != i {
			t.Fatalf("NodeIndex inverse failed: got %d want %d", got, i)
		}
	}
}

func TestNodeIndexOutOfRange(t *testing.T) {
	l := Theta()
	if got := l.NodeIndex(99, 0, 0, 0, 0, 0); got != -1 {
		t.Fatalf("out-of-range row gave %d", got)
	}
	if got := l.NodeIndex(0, 0, 0, 99, 0, 0); got != -1 {
		t.Fatalf("out-of-range slot gave %d", got)
	}
}

func TestNodeIDFormat(t *testing.T) {
	r := NodeRef{Rack: 3, Row: 1, Cabinet: 2, Slot: 15, Blade: 0, Node: 2}
	if got := r.ID(); got != "c3-1c2s15b0n2" {
		t.Fatalf("ID = %q", got)
	}
}

func TestGeometryContainment(t *testing.T) {
	l, err := Parse(xc40Spec)
	if err != nil {
		t.Fatal(err)
	}
	g := l.Geometry()
	if len(g.NodeRects) != l.TotalNodes() {
		t.Fatalf("geometry has %d node rects, want %d", len(g.NodeRects), l.TotalNodes())
	}
	if len(g.Racks) != l.NumRacks() {
		t.Fatalf("geometry has %d racks, want %d", len(g.Racks), l.NumRacks())
	}
	// Every node rect must be inside the canvas and have positive area.
	for i, r := range g.NodeRects {
		if r.W <= 0 || r.H <= 0 {
			t.Fatalf("node %d has empty rect %+v", i, r)
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > g.Width+1e-9 || r.Y+r.H > g.Height+1e-9 {
			t.Fatalf("node %d rect %+v escapes canvas %gx%g", i, r, g.Width, g.Height)
		}
	}
}

func TestGeometryNoOverlap(t *testing.T) {
	l, err := Parse("mini row0-0:0-1 2 c:0-1 1 s:0-1 b:0 n:0-1")
	if err != nil {
		t.Fatal(err)
	}
	g := l.Geometry()
	for i := 0; i < len(g.NodeRects); i++ {
		for j := i + 1; j < len(g.NodeRects); j++ {
			a, b := g.NodeRects[i], g.NodeRects[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Fatalf("node rects %d and %d overlap: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestBottomToTopCabinetOrder(t *testing.T) {
	// With BottomToTop cabinets, cabinet 0 must sit lower (greater Y in
	// screen coordinates) than the last cabinet.
	l, err := Parse("v row0-0:0-0 2 c:0-3 s:0 b:0 n:0")
	if err != nil {
		t.Fatal(err)
	}
	g := l.Geometry()
	c0 := g.NodeRects[l.NodeIndex(0, 0, 0, 0, 0, 0)]
	c3 := g.NodeRects[l.NodeIndex(0, 0, 3, 0, 0, 0)]
	if !(c0.Y > c3.Y) {
		t.Fatalf("cabinet 0 (Y=%g) should render below cabinet 3 (Y=%g)", c0.Y, c3.Y)
	}
}

func TestBuiltinLayouts(t *testing.T) {
	theta := Theta()
	if theta.TotalNodes() != 4608 {
		t.Fatalf("Theta slots = %d want 4608", theta.TotalNodes())
	}
	if theta.NumRacks() != 24 {
		t.Fatalf("Theta racks = %d want 24", theta.NumRacks())
	}
	polaris := Polaris()
	if polaris.TotalNodes() != 560 {
		t.Fatalf("Polaris nodes = %d want 560", polaris.TotalNodes())
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Parsing must be insensitive to extra whitespace.
	f := func(pad uint8) bool {
		spec := strings.Join(strings.Fields(xc40Spec), strings.Repeat(" ", int(pad%4)+1))
		l, err := Parse(spec)
		return err == nil && l.TotalNodes() == 1408
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if !RightToLeft.Reversed() || !BottomToTop.Reversed() {
		t.Fatal("reversed alignments misreported")
	}
	if LeftToRight.Reversed() || TopToBottom.Reversed() {
		t.Fatal("forward alignments misreported")
	}
}
