// Package telemetry synthesizes the environment-log fidelity level: dense
// sensor time series with the multiscale structure the paper's pipeline is
// designed to decompose. The real Theta/Polaris logs are facility-private,
// so this generator stands in for them (see DESIGN.md §1): what I-mrDMD
// consumes is a P×T matrix whose relevant properties are its timescale
// mixture — slow facility drift, diurnal cycles, per-job thermal plateaus,
// cooling-loop oscillations, sensor noise — plus localized anomalies with
// known ground truth. All of those are modelled explicitly and seeded.
package telemetry

import (
	"math"
	"math/rand"

	"imrdmd/internal/joblog"
	"imrdmd/internal/mat"
)

// Profile is a sensor-population description.
type Profile struct {
	Name string
	// SampleInterval is Δt between columns, in seconds. Theta environment
	// logs arrive every 15–30 s (we use 20); Polaris GPU metrics every 3 s.
	SampleInterval float64

	// BaseTemp is the fleet-average idle temperature (°C).
	BaseTemp float64
	// RackGradientTemp is the top-to-bottom spread attributable to rack
	// position in the cooling loop.
	RackGradientTemp float64
	// DiurnalAmp and DiurnalPeriod describe the facility day cycle.
	DiurnalAmp    float64
	DiurnalPeriod float64
	// JobHeat is the temperature rise of a busy node at steady state, and
	// ThermalTau the first-order time constant of the rise/decay.
	JobHeat    float64
	ThermalTau float64
	// CoolingAmp/CoolingPeriod model the cooling-loop oscillation (fans,
	// pumps) — the mid-frequency band in the mrDMD spectrum.
	CoolingAmp    float64
	CoolingPeriod float64
	// FastAmp/FastPeriod add a fast jitter band (regulator/fan hunting);
	// the GPU profile has much more energy here, which is why the paper
	// observes more extracted modes on GPU metrics.
	FastAmp    float64
	FastPeriod float64
	// NoiseStd is white sensor noise.
	NoiseStd float64
}

// ThetaEnv is the Cray XC40 environment-log profile (temperatures).
func ThetaEnv() Profile {
	return Profile{
		Name:             "theta-env",
		SampleInterval:   20,
		BaseTemp:         46,
		RackGradientTemp: 6,
		DiurnalAmp:       3,
		DiurnalPeriod:    86400,
		JobHeat:          18,
		ThermalTau:       600,
		CoolingAmp:       1.2,
		CoolingPeriod:    900,
		FastAmp:          0.3,
		FastPeriod:       60,
		NoiseStd:         0.6,
	}
}

// PolarisGPU is the HPE Apollo GPU-temperature profile: hotter, faster
// dynamics, stronger fast band.
func PolarisGPU() Profile {
	return Profile{
		Name:             "polaris-gpu",
		SampleInterval:   3,
		BaseTemp:         38,
		RackGradientTemp: 4,
		DiurnalAmp:       2,
		DiurnalPeriod:    86400,
		JobHeat:          32,
		ThermalTau:       120,
		CoolingAmp:       2.0,
		CoolingPeriod:    180,
		FastAmp:          1.0,
		FastPeriod:       12,
		NoiseStd:         1.0,
	}
}

// AnomalyKind tags an injected fault scenario.
type AnomalyKind int

// Anomaly kinds used by the case studies.
const (
	// HotNode runs persistently hotter than its load explains (failing
	// fan / thermal paste): positive z-scores.
	HotNode AnomalyKind = iota
	// StalledNode stops doing work while allocated (hung job): the node
	// cools toward ambient — negative z-scores, the "low utilization"
	// signature of case study 1.
	StalledNode
	// MemErrNode reports correctable memory errors without a thermal
	// signature (case study 1's red-outlined nodes whose z-scores sit in
	// the negative-to-baseline range).
	MemErrNode
)

// Anomaly injects a fault on one node over a time interval (seconds).
type Anomaly struct {
	Kind      AnomalyKind
	Node      int
	Start     float64
	End       float64
	Magnitude float64 // °C for HotNode; unused otherwise
}

// Generator produces deterministic sensor matrices.
type Generator struct {
	Profile   Profile
	NumNodes  int
	Seed      int64
	Schedule  *joblog.Schedule // optional: thermal coupling to jobs
	Anomalies []Anomaly

	// per-node randomized traits, built lazily
	traits []nodeTraits
}

type nodeTraits struct {
	baseOffset   float64 // per-node calibration offset
	coolingPhase float64
	fastPhase    float64
	gradient     float64 // rack-position share of the gradient
	noiseSeed    int64
}

// NewGenerator builds a generator for numNodes sensors.
func NewGenerator(p Profile, numNodes int, seed int64) *Generator {
	return &Generator{Profile: p, NumNodes: numNodes, Seed: seed}
}

func (g *Generator) buildTraits() {
	if g.traits != nil {
		return
	}
	rng := rand.New(rand.NewSource(g.Seed))
	g.traits = make([]nodeTraits, g.NumNodes)
	for i := range g.traits {
		g.traits[i] = nodeTraits{
			baseOffset:   rng.NormFloat64() * 1.0,
			coolingPhase: rng.Float64() * 2 * math.Pi,
			fastPhase:    rng.Float64() * 2 * math.Pi,
			gradient:     float64(i%64) / 64, // position within the rack column
			noiseSeed:    rng.Int63(),
		}
	}
}

// Matrix generates columns [t0, t0+T) (time-step indices) for all nodes:
// a NumNodes×T matrix. Successive calls with consecutive ranges produce
// exactly the same values as one big call — the property the streaming
// harness relies on.
func (g *Generator) Matrix(t0, t1 int) *mat.Dense {
	g.buildTraits()
	p := g.NumNodes
	tcols := t1 - t0
	out := mat.NewDense(p, tcols)
	for i := 0; i < p; i++ {
		row := out.Row(i)
		tr := &g.traits[i]
		// Per-node noise stream positioned deterministically: one RNG per
		// node seeded by trait, skipped to t0 via a hash-style generator
		// (cheap: use a counter-based hash instead of sequential skip).
		for k := 0; k < tcols; k++ {
			step := t0 + k
			row[k] = g.value(i, tr, step)
		}
	}
	return out
}

// value computes sensor i at time-step index `step`.
func (g *Generator) value(i int, tr *nodeTraits, step int) float64 {
	pr := &g.Profile
	t := float64(step) * pr.SampleInterval
	v := pr.BaseTemp + tr.baseOffset + pr.RackGradientTemp*tr.gradient
	v += pr.DiurnalAmp * math.Sin(2*math.Pi*t/pr.DiurnalPeriod)
	v += pr.CoolingAmp * math.Sin(2*math.Pi*t/pr.CoolingPeriod+tr.coolingPhase)
	v += pr.FastAmp * math.Sin(2*math.Pi*t/pr.FastPeriod+tr.fastPhase)

	// Thermal load: first-order response to the job schedule. The exact
	// exponential needs history; a good memoryless surrogate is the
	// smoothed occupancy over the last ThermalTau seconds, sampled at a
	// few points (deterministic, and continuous at job boundaries).
	load := g.loadAt(i, t)
	stalled, hot, hotMag := g.anomalyAt(i, t)
	if stalled {
		load = 0
	}
	v += pr.JobHeat * load
	if hot {
		v += hotMag
	}
	v += pr.NoiseStd * hashNoise(tr.noiseSeed, step)
	return v
}

// loadAt approximates the thermally filtered occupancy of node i at time
// t: the mean busy-fraction over the trailing ThermalTau window, sampled
// at 4 points.
func (g *Generator) loadAt(i int, t float64) float64 {
	if g.Schedule == nil {
		return 0
	}
	tau := g.Profile.ThermalTau
	const samples = 4
	var acc float64
	for s := 0; s < samples; s++ {
		ts := t - tau*float64(s)/samples
		if ts < 0 {
			continue
		}
		if _, busy := g.Schedule.BusyAt(i, ts); busy {
			acc++
		}
	}
	return acc / samples
}

// anomalyAt reports the active anomaly effects for node i at time t.
func (g *Generator) anomalyAt(i int, t float64) (stalled, hot bool, hotMag float64) {
	for _, a := range g.Anomalies {
		if a.Node != i || t < a.Start || t >= a.End {
			continue
		}
		switch a.Kind {
		case StalledNode:
			stalled = true
		case HotNode:
			hot = true
			hotMag += a.Magnitude
		case MemErrNode:
			// no thermal effect by design
		}
	}
	return stalled, hot, hotMag
}

// hashNoise returns a deterministic standard-normal-ish variate for
// (seed, step) without sequential RNG state, so any column range can be
// generated independently. It uses SplitMix64 bit mixing and a
// sum-of-uniforms shaping (Irwin–Hall with n=4, rescaled), which is
// within a few percent of Gaussian for this purpose.
func hashNoise(seed int64, step int) float64 {
	x := uint64(seed) ^ (uint64(step)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	var sum float64
	for j := 0; j < 4; j++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		sum += float64(x>>11) / float64(1<<53)
	}
	// Irwin–Hall(4): mean 2, variance 4/12 → standardize.
	return (sum - 2) / math.Sqrt(4.0/12.0)
}

// Baselines returns the indices of nodes whose time-mean over steps
// [t0, t1) lies within [lo, hi] — the paper's baseline selection rule
// ("baselines are chosen so that they lie between 46°C−57°C").
func (g *Generator) Baselines(t0, t1 int, lo, hi float64) []int {
	m := g.Matrix(t0, t1)
	var out []int
	for i := 0; i < m.R; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		mean := s / float64(m.C)
		if mean >= lo && mean <= hi {
			out = append(out, i)
		}
	}
	return out
}
