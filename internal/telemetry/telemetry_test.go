package telemetry

import (
	"math"
	"testing"
	"testing/quick"

	"imrdmd/internal/joblog"
	"imrdmd/internal/mat"
)

func TestMatrixShapeAndDeterminism(t *testing.T) {
	g := NewGenerator(ThetaEnv(), 32, 1)
	a := g.Matrix(0, 100)
	if a.R != 32 || a.C != 100 {
		t.Fatalf("shape %dx%d want 32x100", a.R, a.C)
	}
	g2 := NewGenerator(ThetaEnv(), 32, 1)
	b := g2.Matrix(0, 100)
	if d := mat.Sub(a, b).FrobNorm(); d != 0 {
		t.Fatalf("same seed differs by %g", d)
	}
	g3 := NewGenerator(ThetaEnv(), 32, 2)
	c := g3.Matrix(0, 100)
	if d := mat.Sub(a, c).FrobNorm(); d == 0 {
		t.Fatal("different seeds identical")
	}
}

func TestMatrixStreamConsistency(t *testing.T) {
	// Generating [0,200) in one go must equal [0,120)+[120,200).
	f := func(seed int64) bool {
		g := NewGenerator(ThetaEnv(), 8, seed)
		whole := g.Matrix(0, 200)
		split := mat.HStack(g.Matrix(0, 120), g.Matrix(120, 200))
		return mat.Sub(whole, split).FrobNorm() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTemperatureRangesPlausible(t *testing.T) {
	g := NewGenerator(ThetaEnv(), 64, 3)
	m := g.Matrix(0, 500)
	for i := range m.Data {
		v := m.Data[i]
		if v < 20 || v > 90 {
			t.Fatalf("idle Theta temperature %g outside plausible range", v)
		}
	}
}

func TestJobCouplingRaisesTemperature(t *testing.T) {
	sched := &joblog.Schedule{NumNodes: 4, Horizon: 1e6, Jobs: []joblog.Job{
		{ID: 1, Project: "p", Nodes: []int{0, 1}, Start: 0, End: 1e6},
	}}
	g := NewGenerator(ThetaEnv(), 4, 4)
	g.Schedule = sched
	m := g.Matrix(100, 600) // past the thermal ramp
	meanRow := func(i int) float64 {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		return s / float64(m.C)
	}
	busy := (meanRow(0) + meanRow(1)) / 2
	idle := (meanRow(2) + meanRow(3)) / 2
	if busy-idle < 10 {
		t.Fatalf("busy nodes only %g °C above idle, want ≳ JobHeat", busy-idle)
	}
}

func TestStalledNodeCools(t *testing.T) {
	sched := &joblog.Schedule{NumNodes: 2, Horizon: 1e6, Jobs: []joblog.Job{
		{ID: 1, Project: "p", Nodes: []int{0, 1}, Start: 0, End: 1e6},
	}}
	g := NewGenerator(ThetaEnv(), 2, 5)
	g.Schedule = sched
	g.Anomalies = []Anomaly{{Kind: StalledNode, Node: 1, Start: 0, End: 1e6}}
	m := g.Matrix(100, 400)
	var m0, m1 float64
	for _, v := range m.Row(0) {
		m0 += v
	}
	for _, v := range m.Row(1) {
		m1 += v
	}
	m0 /= float64(m.C)
	m1 /= float64(m.C)
	if m0-m1 < 10 {
		t.Fatalf("stalled node should run ≈JobHeat cooler: busy %g vs stalled %g", m0, m1)
	}
}

func TestHotNodeAnomalyRaises(t *testing.T) {
	g := NewGenerator(ThetaEnv(), 2, 6)
	g.Anomalies = []Anomaly{{Kind: HotNode, Node: 0, Start: 0, End: 1e9, Magnitude: 12}}
	m := g.Matrix(0, 300)
	var m0, m1 float64
	for _, v := range m.Row(0) {
		m0 += v
	}
	for _, v := range m.Row(1) {
		m1 += v
	}
	diff := (m0 - m1) / float64(m.C)
	if diff < 8 {
		t.Fatalf("hot node only %g above normal, want ≈12", diff)
	}
}

func TestMemErrNodeHasNoThermalSignature(t *testing.T) {
	base := NewGenerator(ThetaEnv(), 2, 7)
	with := NewGenerator(ThetaEnv(), 2, 7)
	with.Anomalies = []Anomaly{{Kind: MemErrNode, Node: 0, Start: 0, End: 1e9}}
	a := base.Matrix(0, 200)
	b := with.Matrix(0, 200)
	if d := mat.Sub(a, b).FrobNorm(); d != 0 {
		t.Fatalf("memory-error anomaly changed temperatures by %g", d)
	}
}

func TestAnomalyWindowRespected(t *testing.T) {
	g := NewGenerator(ThetaEnv(), 1, 8)
	g.Anomalies = []Anomaly{{Kind: HotNode, Node: 0, Start: 1000, End: 2000, Magnitude: 20}}
	dt := g.Profile.SampleInterval
	before := g.Matrix(0, int(1000/dt))
	clean := NewGenerator(ThetaEnv(), 1, 8).Matrix(0, int(1000/dt))
	if d := mat.Sub(before, clean).FrobNorm(); d != 0 {
		t.Fatal("anomaly leaked before its start time")
	}
}

func TestProfilesDiffer(t *testing.T) {
	theta, gpu := ThetaEnv(), PolarisGPU()
	if theta.SampleInterval <= gpu.SampleInterval {
		t.Fatal("GPU metrics should sample faster than environment logs")
	}
	if gpu.FastAmp <= theta.FastAmp {
		t.Fatal("GPU profile should carry more fast-band energy")
	}
}

func TestHashNoiseMoments(t *testing.T) {
	var sum, sum2 float64
	n := 50000
	for i := 0; i < n; i++ {
		v := hashNoise(12345, i)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("noise mean %g not ≈0", mean)
	}
	if math.Abs(std-1) > 0.05 {
		t.Fatalf("noise std %g not ≈1", std)
	}
}

func TestBaselinesSelection(t *testing.T) {
	g := NewGenerator(ThetaEnv(), 50, 9)
	g.Anomalies = []Anomaly{{Kind: HotNode, Node: 3, Start: 0, End: 1e9, Magnitude: 40}}
	idx := g.Baselines(0, 200, 30, 70)
	found3 := false
	for _, i := range idx {
		if i == 3 {
			found3 = true
		}
	}
	if found3 {
		t.Fatal("a +40°C node should not qualify as baseline in 30–70")
	}
	if len(idx) < 40 {
		t.Fatalf("only %d of 50 nodes qualify as baseline, expected most", len(idx))
	}
}
