package eig

import (
	"math"
	"math/cmplx"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// Nonsymmetric computes eigenvalues and (right) eigenvectors of a real
// square matrix with possibly complex spectrum, as DMD's projected
// operator Ã has. The route is:
//
//  1. Householder reduction to upper Hessenberg form (real arithmetic).
//  2. Complex single-shift QR iteration with Wilkinson shifts and
//     deflation for the eigenvalues. Working in complex arithmetic
//     sidesteps the double-shift bulge-chasing machinery; the matrices
//     here are small (r×r with r ≲ 100), so the 4× arithmetic cost of
//     complex ops is irrelevant.
//  3. Inverse iteration on the original matrix for each eigenvector.
//
// Eigenvectors are normalized to unit 2-norm. For repeated eigenvalues
// inverse iteration may return linearly dependent vectors; DMD tolerates
// this (the corresponding modes coincide physically).
func Nonsymmetric(a *mat.Dense) (values []complex128, vectors *mat.CDense) {
	return NonsymmetricWith(nil, a)
}

// NonsymmetricWith is Nonsymmetric with all internal scratch — the
// Hessenberg reduction, QR rotation buffers, shifted systems and inverse
// iteration vectors — borrowed from ws, and the returned eigenvector
// matrix borrowed from ws as well (PutCDense it back when done; with nil
// ws everything is plainly allocated and owned).
func NonsymmetricWith(ws *compute.Workspace, a *mat.Dense) (values []complex128, vectors *mat.CDense) {
	if a.R != a.C {
		panic("eig: Nonsymmetric requires a square matrix")
	}
	n := a.R
	if n == 0 {
		return nil, mat.GetCDense(ws, 0, 0)
	}
	if n == 1 {
		v := mat.GetCDense(ws, 1, 1)
		v.Set(0, 0, 1)
		return []complex128{complex(a.At(0, 0), 0)}, v
	}
	hbuf := mat.CloneWith(ws, a)
	h := hessenberg(hbuf)
	ch := mat.ComplexWith(ws, h)
	mat.PutDense(ws, hbuf)
	values = hessenbergQREigenvalues(ws, ch)
	mat.PutCDense(ws, ch)
	vectors = inverseIterationVectors(ws, a, values)
	return values, vectors
}

// hessenberg reduces a (in place) to upper Hessenberg form by Householder
// reflectors and returns it. Similarity transforms preserve eigenvalues.
func hessenberg(a *mat.Dense) *mat.Dense {
	n := a.R
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		// Build the reflector that zeroes a[k+2:, k].
		var alpha float64
		for i := k + 1; i < n; i++ {
			alpha += a.At(i, k) * a.At(i, k)
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 {
			continue
		}
		if a.At(k+1, k) > 0 {
			alpha = -alpha
		}
		var vnorm float64
		for i := k + 1; i < n; i++ {
			v[i] = a.At(i, k)
			if i == k+1 {
				v[i] -= alpha
			}
			vnorm += v[i] * v[i]
		}
		if vnorm == 0 {
			continue
		}
		beta := 2 / vnorm
		// A ← (I − βvvᵀ) A
		for j := k; j < n; j++ {
			var s float64
			for i := k + 1; i < n; i++ {
				s += v[i] * a.At(i, j)
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				a.Set(i, j, a.At(i, j)-s*v[i])
			}
		}
		// A ← A (I − βvvᵀ)
		for i := 0; i < n; i++ {
			var s float64
			for j := k + 1; j < n; j++ {
				s += a.At(i, j) * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-s*v[j])
			}
		}
	}
	// Zero out the (numerically tiny) entries below the subdiagonal.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			a.Set(i, j, 0)
		}
	}
	return a
}

// hessenbergQREigenvalues runs shifted QR iteration on a complex upper
// Hessenberg matrix until it deflates to triangular, returning the
// diagonal as the eigenvalues.
func hessenbergQREigenvalues(ws *compute.Workspace, h *mat.CDense) []complex128 {
	n := h.R
	values := make([]complex128, n)
	// Rotation buffers shared by every QR step.
	cs := ws.GetC128(n)
	sn := ws.GetC128(n)
	defer func() {
		ws.PutC128(cs)
		ws.PutC128(sn)
	}()
	hi := n - 1 // active block is h[0:hi+1, 0:hi+1]
	iterSinceDeflate := 0
	const maxIterPerEig = 60
	for hi > 0 {
		// Deflation check: tiny subdiagonal?
		deflated := false
		for k := hi; k >= 1; k-- {
			sub := cmplx.Abs(h.At(k, k-1))
			scale := cmplx.Abs(h.At(k-1, k-1)) + cmplx.Abs(h.At(k, k))
			if scale == 0 {
				scale = 1
			}
			if sub <= 1e-15*scale {
				h.Set(k, k-1, 0)
				if k == hi {
					values[hi] = h.At(hi, hi)
					hi--
					iterSinceDeflate = 0
					deflated = true
					break
				}
			}
		}
		if deflated {
			continue
		}
		if hi == 0 {
			break
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		var shift complex128
		a := h.At(hi-1, hi-1)
		b := h.At(hi-1, hi)
		c := h.At(hi, hi-1)
		d := h.At(hi, hi)
		tr := a + d
		det := a*d - b*c
		disc := cmplx.Sqrt(tr*tr - 4*det)
		l1 := (tr + disc) / 2
		l2 := (tr - disc) / 2
		if cmplx.Abs(l1-d) < cmplx.Abs(l2-d) {
			shift = l1
		} else {
			shift = l2
		}
		iterSinceDeflate++
		if iterSinceDeflate%20 == 0 {
			// Exceptional shift to break symmetric stalls.
			shift = complex(cmplx.Abs(h.At(hi, hi-1))+cmplx.Abs(d), 0)
		}
		if iterSinceDeflate > maxIterPerEig {
			// Accept the current diagonal entry; for the well-behaved
			// DMD matrices this path is never hit, but it guarantees
			// termination on adversarial input.
			values[hi] = h.At(hi, hi)
			hi--
			iterSinceDeflate = 0
			continue
		}
		qrStepHessenberg(h, hi, shift, cs, sn)
	}
	values[0] = h.At(0, 0)
	return values
}

// qrStepHessenberg performs one explicit single-shift QR step
// H ← RQ + σI where H−σI = QR, restricted to the active (hi+1)-block.
// Givens rotations preserve the Hessenberg structure. Only the active
// block is touched; columns right of it belong to already-deflated
// eigenvalues and do not influence the remaining spectrum.
func qrStepHessenberg(h *mat.CDense, hi int, shift complex128, cs, sn []complex128) {
	m := hi + 1
	for i := 0; i < m; i++ {
		h.Set(i, i, h.At(i, i)-shift)
	}
	cs = cs[:m-1]
	sn = sn[:m-1]
	// QR pass: eliminate each subdiagonal entry with a row rotation.
	for k := 0; k < m-1; k++ {
		c, s := givens(h.At(k, k), h.At(k+1, k))
		cs[k], sn[k] = c, s
		for j := k; j < m; j++ {
			hkj := h.At(k, j)
			hk1j := h.At(k+1, j)
			h.Set(k, j, c*hkj+s*hk1j)
			h.Set(k+1, j, -cmplx.Conj(s)*hkj+cmplx.Conj(c)*hk1j)
		}
	}
	// RQ pass: apply the adjoint rotations on the right.
	for k := 0; k < m-1; k++ {
		c, s := cs[k], sn[k]
		maxRow := k + 2
		if maxRow > m {
			maxRow = m
		}
		for i := 0; i < maxRow; i++ {
			hik := h.At(i, k)
			hik1 := h.At(i, k+1)
			h.Set(i, k, hik*cmplx.Conj(c)+hik1*cmplx.Conj(s))
			h.Set(i, k+1, -hik*s+hik1*c)
		}
	}
	for i := 0; i < m; i++ {
		h.Set(i, i, h.At(i, i)+shift)
	}
}

// givens returns c (real-ish) and s with |c|²+|s|²=1 such that
// [c s; -conj(s) conj(c)] [x; y] = [r; 0].
func givens(x, y complex128) (c, s complex128) {
	ax, ay := cmplx.Abs(x), cmplx.Abs(y)
	if ay == 0 {
		return 1, 0
	}
	if ax == 0 {
		return 0, 1
	}
	r := math.Hypot(ax, ay)
	c = complex(ax/r, 0)
	// s = (x/|x|) * conj(y)/r
	s = (x / complex(ax, 0)) * cmplx.Conj(y) / complex(r, 0)
	return c, s
}

// inverseIterationVectors computes a right eigenvector for each eigenvalue
// by inverse iteration with a complex LU solve on (A − λ̃I), where λ̃ is
// the eigenvalue perturbed slightly off the exact value for stability.
func inverseIterationVectors(ws *compute.Workspace, a *mat.Dense, values []complex128) *mat.CDense {
	n := a.R
	vectors := mat.GetCDense(ws, n, len(values))
	anorm := a.FrobNorm()
	if anorm == 0 {
		anorm = 1
	}
	// Template copy of A and a reusable shifted system: each eigenvalue
	// re-fills `shifted` and factors it in place, so the whole sweep
	// touches only these buffers.
	ca := mat.ComplexWith(ws, a)
	shifted := mat.GetCDense(ws, n, n)
	v := ws.GetC128(n)
	w := ws.GetC128(n)
	// Deterministic start vectors via a tiny xorshift PRNG — same
	// reproducibility as the previous seeded source, no allocation.
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(int64(seed)) / float64(1<<63)
	}
	var lu mat.CLU // pivot storage reused across all eigenvalues
	for j, lam := range values {
		eps := complex(1e-10*anorm, 1e-10*anorm)
		copy(shifted.Data, ca.Data)
		for i := 0; i < n; i++ {
			shifted.Set(i, i, shifted.At(i, i)-(lam+eps))
		}
		lu.FactorInPlace(shifted)
		for i := range v {
			v[i] = complex(next(), next())
		}
		normalizeC(v)
		for iter := 0; iter < 4; iter++ {
			lu.SolveInto(w, v)
			v, w = w, v
			normalizeC(v)
		}
		// Fix the phase so the largest component is real positive; makes
		// results reproducible across runs.
		var big complex128
		var bigAbs float64
		for _, x := range v {
			if ab := cmplx.Abs(x); ab > bigAbs {
				big, bigAbs = x, ab
			}
		}
		if bigAbs > 0 {
			phase := big / complex(bigAbs, 0)
			for i := range v {
				v[i] /= phase
			}
		}
		for i := 0; i < n; i++ {
			vectors.Set(i, j, v[i])
		}
	}
	ws.PutC128(v)
	ws.PutC128(w)
	mat.PutCDense(ws, shifted)
	mat.PutCDense(ws, ca)
	return vectors
}

func normalizeC(v []complex128) {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	s = math.Sqrt(s)
	if s == 0 {
		return
	}
	inv := complex(1/s, 0)
	for i := range v {
		v[i] *= inv
	}
}
