package eig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"imrdmd/internal/mat"
)

func randSymmetric(rng *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSymmetricDiagonal(t *testing.T) {
	a := mat.DiagOf([]float64{3, 1, 2})
	w, v := Symmetric(a)
	want := []float64{3, 2, 1}
	for i, x := range want {
		if math.Abs(w[i]-x) > 1e-12 {
			t.Fatalf("eigenvalues %v want %v", w, want)
		}
	}
	// Eigenvectors must be signed unit vectors.
	for j := 0; j < 3; j++ {
		var nrm float64
		for i := 0; i < 3; i++ {
			nrm += v.At(i, j) * v.At(i, j)
		}
		if math.Abs(nrm-1) > 1e-12 {
			t.Fatalf("eigenvector %d not unit norm", j)
		}
	}
}

func TestSymmetricKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := mat.NewDenseData(2, 2, []float64{2, 1, 1, 2})
	w, _ := Symmetric(a)
	if math.Abs(w[0]-3) > 1e-12 || math.Abs(w[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues %v want [3 1]", w)
	}
}

func TestSymmetricResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randSymmetric(rng, n)
		w, v := Symmetric(a)
		// A v_j = w_j v_j for all j.
		for j := 0; j < n; j++ {
			col := v.Col(j)
			av := mat.MulVec(a, col)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-w[j]*col[i]) > 1e-8*(1+a.FrobNorm()) {
					return false
				}
			}
		}
		// V orthonormal.
		vtv := mat.Mul(v.T(), v)
		return mat.Sub(vtv, mat.Eye(n)).FrobNorm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricDescendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSymmetric(rng, 10)
	w, _ := Symmetric(a)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(w))) {
		t.Fatalf("eigenvalues not descending: %v", w)
	}
}

func TestSymmetricEmptyAndScalar(t *testing.T) {
	w, _ := Symmetric(mat.NewDense(0, 0))
	if len(w) != 0 {
		t.Fatal("empty matrix should give no eigenvalues")
	}
	w, v := Symmetric(mat.NewDenseData(1, 1, []float64{4}))
	if w[0] != 4 || v.At(0, 0) != 1 {
		t.Fatal("scalar eigendecomposition wrong")
	}
}

func TestNonsymmetricRealSpectrum(t *testing.T) {
	// Upper triangular: eigenvalues are the diagonal.
	a := mat.NewDenseData(3, 3, []float64{
		2, 1, 0,
		0, -1, 3,
		0, 0, 0.5,
	})
	vals, _ := Nonsymmetric(a)
	got := make([]float64, 0, 3)
	for _, v := range vals {
		if math.Abs(imag(v)) > 1e-8 {
			t.Fatalf("expected real spectrum, got %v", vals)
		}
		got = append(got, real(v))
	}
	sort.Float64s(got)
	want := []float64{-1, 0.5, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("eigenvalues %v want %v", got, want)
		}
	}
}

func TestNonsymmetricRotationComplexPair(t *testing.T) {
	// A rotation by θ has eigenvalues e^{±iθ}.
	theta := 0.3
	a := mat.NewDenseData(2, 2, []float64{
		math.Cos(theta), -math.Sin(theta),
		math.Sin(theta), math.Cos(theta),
	})
	vals, _ := Nonsymmetric(a)
	if len(vals) != 2 {
		t.Fatalf("want 2 eigenvalues, got %d", len(vals))
	}
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-8 {
			t.Fatalf("|λ| = %v want 1", cmplx.Abs(v))
		}
		if math.Abs(math.Abs(imag(v))-math.Sin(theta)) > 1e-8 {
			t.Fatalf("imag λ = %v want ±%v", imag(v), math.Sin(theta))
		}
	}
}

func TestNonsymmetricEigenpairResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := mat.NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		vals, vecs := Nonsymmetric(a)
		ac := mat.Complex(a)
		for j, lam := range vals {
			v := make([]complex128, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, j)
			}
			av := mat.CMulVec(ac, v)
			var res float64
			for i := 0; i < n; i++ {
				d := av[i] - lam*v[i]
				res += real(d)*real(d) + imag(d)*imag(d)
			}
			if math.Sqrt(res) > 1e-6*(1+a.FrobNorm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNonsymmetricTraceDeterminantConsistency(t *testing.T) {
	// Sum of eigenvalues equals the trace (a cheap global invariant).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := mat.NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		vals, _ := Nonsymmetric(a)
		var sum complex128
		for _, v := range vals {
			sum += v
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		return math.Abs(real(sum)-tr) < 1e-6*(1+math.Abs(tr)) && math.Abs(imag(sum)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNonsymmetricScalarAndEmpty(t *testing.T) {
	vals, vecs := Nonsymmetric(mat.NewDenseData(1, 1, []float64{-3}))
	if len(vals) != 1 || vals[0] != complex(-3, 0) || vecs.At(0, 0) != 1 {
		t.Fatal("scalar case wrong")
	}
	vals, _ = Nonsymmetric(mat.NewDense(0, 0))
	if len(vals) != 0 {
		t.Fatal("empty case wrong")
	}
}

func TestHessenbergPreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 8
	a := mat.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	h := hessenberg(a.Clone())
	// Structure: zero below the first subdiagonal.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			if h.At(i, j) != 0 {
				t.Fatalf("Hessenberg structure violated at %d,%d", i, j)
			}
		}
	}
	va, _ := Nonsymmetric(a)
	vh := hessenbergQREigenvalues(nil, mat.Complex(h))
	sortC := func(v []complex128) {
		sort.Slice(v, func(i, j int) bool {
			if real(v[i]) != real(v[j]) {
				return real(v[i]) < real(v[j])
			}
			return imag(v[i]) < imag(v[j])
		})
	}
	sortC(va)
	sortC(vh)
	for i := range va {
		if cmplx.Abs(va[i]-vh[i]) > 1e-6 {
			t.Fatalf("spectra differ: %v vs %v", va, vh)
		}
	}
}

func BenchmarkSymmetric64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSymmetric(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Symmetric(a)
	}
}

func BenchmarkNonsymmetric32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.NewDense(32, 32)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nonsymmetric(a)
	}
}
