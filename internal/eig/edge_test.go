package eig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"imrdmd/internal/mat"
)

func TestNonsymmetricJordanBlock(t *testing.T) {
	// A defective matrix: Jordan block with eigenvalue 2 (multiplicity 3).
	// Eigenvalues must still come out right even though the eigenvector
	// basis is deficient.
	a := mat.NewDenseData(3, 3, []float64{
		2, 1, 0,
		0, 2, 1,
		0, 0, 2,
	})
	vals, vecs := Nonsymmetric(a)
	for _, v := range vals {
		if cmplx.Abs(v-2) > 1e-4 {
			t.Fatalf("Jordan block eigenvalue %v want 2", v)
		}
	}
	// Eigenvectors must be finite unit vectors.
	for j := 0; j < 3; j++ {
		var nrm float64
		for i := 0; i < 3; i++ {
			c := vecs.At(i, j)
			if math.IsNaN(real(c)) || math.IsNaN(imag(c)) {
				t.Fatal("NaN eigenvector component")
			}
			nrm += real(c)*real(c) + imag(c)*imag(c)
		}
		if math.Abs(nrm-1) > 1e-8 {
			t.Fatalf("eigenvector %d not unit norm", j)
		}
	}
}

func TestNonsymmetricRepeatedRealEigenvalues(t *testing.T) {
	// diag(3,3,1) — repeated but non-defective.
	a := mat.DiagOf([]float64{3, 3, 1})
	vals, _ := Nonsymmetric(a)
	got := []float64{real(vals[0]), real(vals[1]), real(vals[2])}
	sort.Float64s(got)
	want := []float64{1, 3, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("eigenvalues %v want %v", got, want)
		}
	}
}

func TestNonsymmetricNearSingular(t *testing.T) {
	// One eigenvalue very near zero must not destabilize the others.
	a := mat.NewDenseData(3, 3, []float64{
		1e-13, 0, 0,
		0, 5, 1,
		0, 0, 7,
	})
	vals, _ := Nonsymmetric(a)
	found5, found7 := false, false
	for _, v := range vals {
		if cmplx.Abs(v-5) < 1e-6 {
			found5 = true
		}
		if cmplx.Abs(v-7) < 1e-6 {
			found7 = true
		}
	}
	if !found5 || !found7 {
		t.Fatalf("large eigenvalues lost: %v", vals)
	}
}

func TestNonsymmetricLargeScale(t *testing.T) {
	// Scaling the matrix scales the spectrum (sanity under magnitudes far
	// from 1).
	rng := rand.New(rand.NewSource(1))
	n := 6
	a := mat.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	v1, _ := Nonsymmetric(a)
	v2, _ := Nonsymmetric(mat.Scale(1e8, a))
	// Conjugate pairs may come out in either order; match each scaled
	// eigenvalue to its nearest counterpart.
	for _, w := range v1 {
		want := 1e8 * w
		best := math.Inf(1)
		for _, g := range v2 {
			if d := cmplx.Abs(g - want); d < best {
				best = d
			}
		}
		if best > 1e-6*(1+cmplx.Abs(want)) {
			t.Fatalf("scaled eigenvalue %v unmatched (closest %g away)", want, best)
		}
	}
}

func TestSymmetricClusteredEigenvalues(t *testing.T) {
	// Two nearly equal eigenvalues: Jacobi must still give an orthonormal
	// basis spanning the cluster.
	a := mat.DiagOf([]float64{1 + 1e-12, 1, 0.5})
	w, v := Symmetric(a)
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]-1) > 1e-9 {
		t.Fatalf("clustered eigenvalues %v", w)
	}
	vtv := mat.Mul(v.T(), v)
	if d := mat.Sub(vtv, mat.Eye(3)).FrobNorm(); d > 1e-10 {
		t.Fatalf("basis not orthonormal for clustered spectrum: %g", d)
	}
}

func TestSymmetricNegativeDefinite(t *testing.T) {
	a := mat.DiagOf([]float64{-1, -2, -3})
	w, _ := Symmetric(a)
	want := []float64{-1, -2, -3}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v want %v (descending)", w, want)
		}
	}
}
