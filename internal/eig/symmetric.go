// Package eig provides the eigendecompositions needed by the SVD and DMD
// layers: a cyclic Jacobi solver for symmetric matrices (used by the
// method-of-snapshots SVD) and a complex shifted-QR solver with inverse
// iteration for small nonsymmetric matrices (used to diagonalize the
// DMD-projected operator Ã).
package eig

import (
	"math"
	"sort"

	"imrdmd/internal/mat"
)

// Symmetric computes the eigendecomposition A = V diag(w) Vᵀ of a
// symmetric matrix using cyclic-by-row Jacobi rotations. Eigenvalues are
// returned in descending order with matching eigenvector columns.
//
// Jacobi is chosen over tridiagonalization+QL for its simplicity and its
// high relative accuracy on the positive semidefinite Gram matrices this
// package feeds it.
func Symmetric(a *mat.Dense) (w []float64, v *mat.Dense) {
	if a.R != a.C {
		panic("eig: Symmetric requires a square matrix")
	}
	n := a.R
	s := a.Clone()
	v = mat.Eye(n)
	if n == 0 {
		return nil, v
	}
	if n == 1 {
		return []float64{s.At(0, 0)}, v
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(s)
		if off <= 1e-14*(1+s.FrobNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := s.At(p, p)
				aqq := s.At(q, q)
				// Classic stable rotation computation.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				rotate(s, v, p, q, c, sn)
			}
		}
	}

	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = s.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] > w[idx[j]] })
	ws := make([]float64, n)
	vs := mat.NewDense(n, n)
	for k, i := range idx {
		ws[k] = w[i]
		for r := 0; r < n; r++ {
			vs.Set(r, k, v.At(r, i))
		}
	}
	return ws, vs
}

// rotate applies the Jacobi rotation J(p,q,θ) as S ← JᵀSJ and V ← VJ.
func rotate(s, v *mat.Dense, p, q int, c, sn float64) {
	n := s.R
	for k := 0; k < n; k++ {
		skp := s.At(k, p)
		skq := s.At(k, q)
		s.Set(k, p, c*skp-sn*skq)
		s.Set(k, q, sn*skp+c*skq)
	}
	for k := 0; k < n; k++ {
		spk := s.At(p, k)
		sqk := s.At(q, k)
		s.Set(p, k, c*spk-sn*sqk)
		s.Set(q, k, sn*spk+c*sqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-sn*vkq)
		v.Set(k, q, sn*vkp+c*vkq)
	}
}

func offDiagNorm(s *mat.Dense) float64 {
	var sum float64
	n := s.R
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := s.At(i, j)
				sum += v * v
			}
		}
	}
	return math.Sqrt(sum)
}
