// Package stream provides the online-analysis plumbing: batched column
// sources (from a matrix, a generator function, or CSV) and a pump that
// drives an I-mrDMD analyzer from a source while recording per-batch
// latencies — the "simulated streaming environment" of the paper's
// evaluation (§IV, §V).
package stream

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// Source yields successive column batches of a conceptually infinite
// P×∞ matrix. Next returns nil, false when exhausted.
type Source interface {
	// Next returns the next batch of columns.
	Next() (*mat.Dense, bool)
	// Rows returns P, the fixed row count.
	Rows() int
}

// matrixSource replays a fixed matrix in batches.
type matrixSource struct {
	data  *mat.Dense
	batch int
	pos   int
}

// FromMatrix replays data in batches of `batch` columns.
func FromMatrix(data *mat.Dense, batch int) Source {
	if batch <= 0 {
		batch = 1
	}
	return &matrixSource{data: data, batch: batch}
}

func (s *matrixSource) Rows() int { return s.data.R }

func (s *matrixSource) Next() (*mat.Dense, bool) {
	if s.pos >= s.data.C {
		return nil, false
	}
	hi := s.pos + s.batch
	if hi > s.data.C {
		hi = s.data.C
	}
	out := s.data.ColSlice(s.pos, hi)
	s.pos = hi
	return out, true
}

// genSource materializes batches on demand from a column-range generator.
type genSource struct {
	gen   func(t0, t1 int) *mat.Dense
	rows  int
	total int
	batch int
	pos   int
}

// FromFunc wraps a deterministic column-range generator (such as
// telemetry.Generator.Matrix) as a Source of `total` columns.
func FromFunc(gen func(t0, t1 int) *mat.Dense, rows, total, batch int) Source {
	if batch <= 0 {
		batch = 1
	}
	return &genSource{gen: gen, rows: rows, total: total, batch: batch}
}

func (s *genSource) Rows() int { return s.rows }

func (s *genSource) Next() (*mat.Dense, bool) {
	if s.pos >= s.total {
		return nil, false
	}
	hi := s.pos + s.batch
	if hi > s.total {
		hi = s.total
	}
	out := s.gen(s.pos, hi)
	s.pos = hi
	return out, true
}

// PumpStats records the timing of a streaming run.
type PumpStats struct {
	InitialColumns int
	InitialFit     time.Duration
	// PartialFits holds per-batch update latencies in arrival order.
	PartialFits []time.Duration
	// Batches is the number of partial-fit batches processed.
	Batches int
	// Columns is the total column count absorbed (initial + streamed).
	Columns int
	// ShortSeed reports that the source exhausted before the requested
	// initial column count, so InitialFit ran on fewer columns than asked
	// for (InitialColumns says how many). The fit is still valid — it just
	// resolves a shorter level-1 window than the caller planned.
	ShortSeed bool
}

// Quantile picks the nearest-rank quantile q ∈ [0,1] of an ascending
// sorted latency slice (zero when empty) — the helper behind the served
// and benchmarked p50/p99 ingest numbers, shared so the two can never
// disagree on rank convention.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TotalPartial sums the partial-fit time.
func (s *PumpStats) TotalPartial() time.Duration {
	var d time.Duration
	for _, p := range s.PartialFits {
		d += p
	}
	return d
}

// MeanPartial returns the average partial-fit latency.
func (s *PumpStats) MeanPartial() time.Duration {
	if len(s.PartialFits) == 0 {
		return 0
	}
	return s.TotalPartial() / time.Duration(len(s.PartialFits))
}

// Feeder is the push-based counterpart of Pump: batches arrive one call
// at a time (an ingest endpoint, a message consumer) instead of being
// pulled from a Source. Columns accumulate until the requested seed width
// is reached, at which point exactly initialCols columns go to InitialFit
// and the overflow becomes the first PartialFit; every later Push is one
// PartialFit per batch. A Feeder is not safe for concurrent Push calls —
// callers serialize (the server holds a per-tenant lock).
type Feeder struct {
	inc         *core.Incremental
	initialCols int
	pending     *mat.Dense
	seeded      bool
	stats       PumpStats
}

// NewFeeder prepares a feeder that seeds inc with exactly initialCols
// columns. initialCols below 2 is rejected up front: InitialFit needs at
// least two columns, and silently seeding with "whatever accumulated"
// (the old Pump behavior) hides a misconfigured seed width.
func NewFeeder(inc *core.Incremental, initialCols int) (*Feeder, error) {
	if initialCols < 2 {
		return nil, fmt.Errorf("stream: initialCols must be >= 2, got %d", initialCols)
	}
	return &Feeder{inc: inc, initialCols: initialCols}, nil
}

// ResumeFeeder wraps an analyzer that is already fitted (typically
// restored from a snapshot): the feeder starts in the seeded state and
// every Push is a PartialFit.
func ResumeFeeder(inc *core.Incremental) *Feeder {
	cols := inc.Cols()
	return &Feeder{
		inc:         inc,
		initialCols: cols,
		seeded:      true,
		stats:       PumpStats{InitialColumns: cols, Columns: cols},
	}
}

// Seeded reports whether InitialFit has run.
func (f *Feeder) Seeded() bool { return f.seeded }

// Pending returns how many columns are buffered awaiting the seed.
func (f *Feeder) Pending() int {
	if f.pending == nil {
		return 0
	}
	return f.pending.C
}

// Stats snapshots the accumulated timing record.
func (f *Feeder) Stats() PumpStats {
	s := f.stats
	s.PartialFits = append([]time.Duration(nil), f.stats.PartialFits...)
	return s
}

// Push absorbs one batch of columns: buffered until the seed width is
// reached, a PartialFit afterwards. Empty or nil batches are no-ops; a
// batch whose row count disagrees with what is already buffered is an
// error (post-seed, PartialFit makes the equivalent check itself).
func (f *Feeder) Push(b *mat.Dense) error {
	if b == nil || b.C == 0 {
		return nil
	}
	if f.seeded {
		return f.feed(b)
	}
	if f.pending == nil {
		f.pending = b.Clone() // the caller may recycle its batch buffer
	} else {
		if b.R != f.pending.R {
			return fmt.Errorf("stream: batch has %d rows, want %d", b.R, f.pending.R)
		}
		f.pending = mat.HStack(f.pending, b)
	}
	if f.pending.C < f.initialCols {
		return nil
	}
	return f.seed(f.initialCols)
}

// Finish seeds from whatever has accumulated when the stream ends before
// initialCols columns arrived — the short-seed case, surfaced in
// Stats().ShortSeed instead of silently absorbed. Finishing an already
// seeded feeder is a no-op; fewer than two buffered columns is an error.
func (f *Feeder) Finish() error {
	if f.seeded {
		return nil
	}
	if f.Pending() < 2 {
		return fmt.Errorf("stream: source yielded %d initial columns, need at least 2", f.Pending())
	}
	f.stats.ShortSeed = true
	return f.seed(f.pending.C)
}

// seed runs InitialFit on the first cols pending columns and feeds any
// overflow as the first partial fit.
func (f *Feeder) seed(cols int) error {
	first, rest := f.pending, (*mat.Dense)(nil)
	if first.C > cols {
		rest = first.ColSlice(cols, first.C)
		first = first.ColSlice(0, cols)
	}
	start := time.Now()
	if err := f.inc.InitialFit(first); err != nil {
		return err
	}
	f.stats.InitialFit = time.Since(start)
	f.stats.InitialColumns = first.C
	f.stats.Columns = first.C
	f.seeded = true
	f.pending = nil
	if rest != nil {
		return f.feed(rest)
	}
	return nil
}

func (f *Feeder) feed(b *mat.Dense) error {
	t0 := time.Now()
	if _, err := f.inc.PartialFit(b); err != nil {
		return err
	}
	f.stats.PartialFits = append(f.stats.PartialFits, time.Since(t0))
	f.stats.Batches++
	f.stats.Columns += b.C
	return nil
}

// Pump drives an I-mrDMD analyzer from a source: the first initialCols
// columns (accumulated across batches as needed) seed InitialFit, and
// every subsequent batch becomes one PartialFit. initialCols must be at
// least 2; when the source exhausts first, the accumulated columns (if at
// least two) seed a shorter initial window and the returned stats carry
// ShortSeed — check it when the seed width matters.
func Pump(inc *core.Incremental, src Source, initialCols int) (*PumpStats, error) {
	f, err := NewFeeder(inc, initialCols)
	if err != nil {
		return nil, err
	}
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if err := f.Push(b); err != nil {
			return nil, err
		}
	}
	if err := SourceErr(src); err != nil {
		return nil, err
	}
	if err := f.Finish(); err != nil {
		return nil, err
	}
	return &f.stats, nil
}

// SourceErr surfaces the terminal error of sources that can fail
// mid-stream (e.g. JSONSource): an exhausted source with a latched
// error must not be mistaken for a clean end of stream. Sources without
// an Err method cannot fail and report nil.
func SourceErr(src Source) error {
	if fs, ok := src.(interface{ Err() error }); ok {
		return fs.Err()
	}
	return nil
}

// shapeTag marks the explicit-shape header record WriteCSV emits for
// degenerate matrices (zero rows or zero columns), which plain CSV rows
// cannot represent: a P×0 matrix would write P empty records the reader
// cannot distinguish from blank lines, and a 0×C matrix writes nothing at
// all. Non-degenerate matrices keep the plain headerless format, so files
// from external tools read unchanged.
const shapeTag = "#shape"

// WriteCSV writes a P×T matrix as rows of comma-separated values (row i =
// sensor i). Degenerate shapes are written as a single "#shape,R,C"
// record so ReadCSV is a true inverse on every shape. Non-finite values
// (NaN, ±Inf) are rejected — they would poison the analyzer downstream,
// and rejecting at the serialization boundary names the offending cell.
func WriteCSV(w io.Writer, data *mat.Dense) error {
	for i := 0; i < data.R; i++ {
		for j, v := range data.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("stream: WriteCSV row %d col %d: non-finite value %v", i, j, v)
			}
		}
	}
	cw := csv.NewWriter(w)
	if data.R == 0 || data.C == 0 {
		if err := cw.Write([]string{shapeTag, strconv.Itoa(data.R), strconv.Itoa(data.C)}); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	rec := make([]string, data.C)
	for i := 0; i < data.R; i++ {
		row := data.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a matrix written by WriteCSV (every row one sensor).
// Empty input and the "#shape" header round-trip the degenerate shapes;
// non-finite values ("NaN", "Inf") are rejected with a clear error — the
// CSV ingest path must never hand the analyzer data it will choke on.
func ReadCSV(r io.Reader) (*mat.Dense, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // shape checked below with a clearer error
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if len(rows) == 0 {
		return mat.NewDense(0, 0), nil
	}
	if rows[0][0] == shapeTag {
		if len(rows[0]) != 3 || len(rows) != 1 {
			return nil, errors.New("stream: malformed #shape header")
		}
		pr, err1 := strconv.Atoi(rows[0][1])
		pc, err2 := strconv.Atoi(rows[0][2])
		if err1 != nil || err2 != nil || pr < 0 || pc < 0 || (pr != 0 && pc != 0) {
			return nil, fmt.Errorf("stream: #shape header %v is not a degenerate shape", rows[0][1:])
		}
		return mat.NewDense(pr, pc), nil
	}
	c := len(rows[0])
	out := mat.NewDense(len(rows), c)
	for i, rec := range rows {
		if len(rec) != c {
			return nil, fmt.Errorf("stream: ragged CSV: row %d has %d fields, want %d", i, len(rec), c)
		}
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: row %d col %d: %w", i, j, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("stream: row %d col %d: non-finite value %q", i, j, f)
			}
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// JSONBatch is the wire form of one JSON ingest batch: Data[i] holds
// sensor i's values for the batch's consecutive time steps. A body may
// concatenate any number of batch objects back to back (chunked ingest);
// JSONSource yields them in order.
type JSONBatch struct {
	Data [][]float64 `json:"data"`
}

// JSONSource adapts a stream of JSONBatch objects to the Source
// interface. Decode errors latch and end the stream; check Err after
// exhaustion (Pump does this itself).
type JSONSource struct {
	dec  *json.Decoder
	rows int
	next *mat.Dense
	err  error
}

// FromJSON opens a JSON batch stream, eagerly decoding the first batch so
// the row count is known up front. An input with no batches at all is an
// error — there is nothing to size the stream by.
func FromJSON(r io.Reader) (*JSONSource, error) {
	s := &JSONSource{dec: json.NewDecoder(r)}
	s.next = s.decode()
	if s.err != nil {
		return nil, s.err
	}
	if s.next == nil {
		return nil, errors.New("stream: JSON source holds no batches")
	}
	s.rows = s.next.R
	return s, nil
}

// Rows returns P, fixed by the first batch.
func (s *JSONSource) Rows() int { return s.rows }

// Err returns the decode error that ended the stream, if any.
func (s *JSONSource) Err() error { return s.err }

// Next yields the next decoded batch.
func (s *JSONSource) Next() (*mat.Dense, bool) {
	if s.next == nil {
		return nil, false
	}
	out := s.next
	s.next = s.decode()
	if s.next != nil && s.next.R != s.rows {
		s.err = fmt.Errorf("stream: JSON batch has %d rows, want %d", s.next.R, s.rows)
		s.next = nil
	}
	return out, true
}

// decode reads one batch object, returning nil at end of stream or on a
// latched error.
func (s *JSONSource) decode() *mat.Dense {
	if s.err != nil {
		return nil
	}
	var b JSONBatch
	if err := s.dec.Decode(&b); err != nil {
		if err != io.EOF {
			s.err = fmt.Errorf("stream: %w", err)
		}
		return nil
	}
	if len(b.Data) == 0 {
		s.err = errors.New("stream: JSON batch has no rows")
		return nil
	}
	c := len(b.Data[0])
	m := mat.NewDense(len(b.Data), c)
	for i, row := range b.Data {
		if len(row) != c {
			s.err = fmt.Errorf("stream: ragged JSON batch: row %d has %d values, want %d", i, len(row), c)
			return nil
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.err = fmt.Errorf("stream: JSON batch row %d col %d: non-finite value %v", i, j, v)
				return nil
			}
			m.Set(i, j, v)
		}
	}
	return m
}
