// Package stream provides the online-analysis plumbing: batched column
// sources (from a matrix, a generator function, or CSV) and a pump that
// drives an I-mrDMD analyzer from a source while recording per-batch
// latencies — the "simulated streaming environment" of the paper's
// evaluation (§IV, §V).
package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// Source yields successive column batches of a conceptually infinite
// P×∞ matrix. Next returns nil, false when exhausted.
type Source interface {
	// Next returns the next batch of columns.
	Next() (*mat.Dense, bool)
	// Rows returns P, the fixed row count.
	Rows() int
}

// matrixSource replays a fixed matrix in batches.
type matrixSource struct {
	data  *mat.Dense
	batch int
	pos   int
}

// FromMatrix replays data in batches of `batch` columns.
func FromMatrix(data *mat.Dense, batch int) Source {
	if batch <= 0 {
		batch = 1
	}
	return &matrixSource{data: data, batch: batch}
}

func (s *matrixSource) Rows() int { return s.data.R }

func (s *matrixSource) Next() (*mat.Dense, bool) {
	if s.pos >= s.data.C {
		return nil, false
	}
	hi := s.pos + s.batch
	if hi > s.data.C {
		hi = s.data.C
	}
	out := s.data.ColSlice(s.pos, hi)
	s.pos = hi
	return out, true
}

// genSource materializes batches on demand from a column-range generator.
type genSource struct {
	gen   func(t0, t1 int) *mat.Dense
	rows  int
	total int
	batch int
	pos   int
}

// FromFunc wraps a deterministic column-range generator (such as
// telemetry.Generator.Matrix) as a Source of `total` columns.
func FromFunc(gen func(t0, t1 int) *mat.Dense, rows, total, batch int) Source {
	if batch <= 0 {
		batch = 1
	}
	return &genSource{gen: gen, rows: rows, total: total, batch: batch}
}

func (s *genSource) Rows() int { return s.rows }

func (s *genSource) Next() (*mat.Dense, bool) {
	if s.pos >= s.total {
		return nil, false
	}
	hi := s.pos + s.batch
	if hi > s.total {
		hi = s.total
	}
	out := s.gen(s.pos, hi)
	s.pos = hi
	return out, true
}

// PumpStats records the timing of a streaming run.
type PumpStats struct {
	InitialColumns int
	InitialFit     time.Duration
	// PartialFits holds per-batch update latencies in arrival order.
	PartialFits []time.Duration
	// Batches is the number of partial-fit batches processed.
	Batches int
	// Columns is the total column count absorbed (initial + streamed).
	Columns int
}

// TotalPartial sums the partial-fit time.
func (s *PumpStats) TotalPartial() time.Duration {
	var d time.Duration
	for _, p := range s.PartialFits {
		d += p
	}
	return d
}

// MeanPartial returns the average partial-fit latency.
func (s *PumpStats) MeanPartial() time.Duration {
	if len(s.PartialFits) == 0 {
		return 0
	}
	return s.TotalPartial() / time.Duration(len(s.PartialFits))
}

// Pump drives an I-mrDMD analyzer from a source: the first initialCols
// columns (accumulated across batches as needed) seed InitialFit, and
// every subsequent batch becomes one PartialFit.
func Pump(inc *core.Incremental, src Source, initialCols int) (*PumpStats, error) {
	stats := &PumpStats{}
	var first *mat.Dense
	for first == nil || first.C < initialCols {
		b, ok := src.Next()
		if !ok {
			break
		}
		if first == nil {
			first = b
		} else {
			first = mat.HStack(first, b)
		}
	}
	if first == nil || first.C < 2 {
		return nil, fmt.Errorf("stream: source yielded %d initial columns, need at least 2", colsOf(first))
	}
	var spill *mat.Dense
	if first.C > initialCols && initialCols >= 2 {
		spill = first.ColSlice(initialCols, first.C)
		first = first.ColSlice(0, initialCols)
	}
	start := time.Now()
	if err := inc.InitialFit(first); err != nil {
		return nil, err
	}
	stats.InitialFit = time.Since(start)
	stats.InitialColumns = first.C
	stats.Columns = first.C

	feed := func(b *mat.Dense) error {
		t0 := time.Now()
		if _, err := inc.PartialFit(b); err != nil {
			return err
		}
		stats.PartialFits = append(stats.PartialFits, time.Since(t0))
		stats.Batches++
		stats.Columns += b.C
		return nil
	}
	if spill != nil {
		if err := feed(spill); err != nil {
			return nil, err
		}
	}
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if err := feed(b); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

func colsOf(m *mat.Dense) int {
	if m == nil {
		return 0
	}
	return m.C
}

// WriteCSV writes a P×T matrix as rows of comma-separated values with an
// optional header of column times.
func WriteCSV(w io.Writer, data *mat.Dense) error {
	cw := csv.NewWriter(w)
	rec := make([]string, data.C)
	for i := 0; i < data.R; i++ {
		row := data.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a matrix written by WriteCSV (every row one sensor).
func ReadCSV(r io.Reader) (*mat.Dense, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if len(rows) == 0 {
		return mat.NewDense(0, 0), nil
	}
	c := len(rows[0])
	out := mat.NewDense(len(rows), c)
	for i, rec := range rows {
		if len(rec) != c {
			return nil, fmt.Errorf("stream: ragged CSV: row %d has %d fields, want %d", i, len(rec), c)
		}
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: row %d col %d: %w", i, j, err)
			}
			out.Set(i, j, v)
		}
	}
	return out, nil
}
