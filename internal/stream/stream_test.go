package stream

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

func randMatrix(seed int64, r, c int) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = 50 + 5*math.Sin(float64(i)/40) + rng.NormFloat64()
	}
	return m
}

func TestFromMatrixBatches(t *testing.T) {
	data := randMatrix(1, 4, 10)
	src := FromMatrix(data, 3)
	if src.Rows() != 4 {
		t.Fatalf("Rows = %d", src.Rows())
	}
	var sizes []int
	var all *mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		sizes = append(sizes, b.C)
		if all == nil {
			all = b
		} else {
			all = mat.HStack(all, b)
		}
	}
	want := []int{3, 3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v want %v", sizes, want)
		}
	}
	if d := mat.Sub(all, data).FrobNorm(); d != 0 {
		t.Fatal("batches do not reassemble the matrix")
	}
}

func TestFromMatrixExhausted(t *testing.T) {
	src := FromMatrix(randMatrix(2, 2, 4), 4)
	if _, ok := src.Next(); !ok {
		t.Fatal("first Next should succeed")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source still yields")
	}
}

func TestFromFuncMatchesMatrix(t *testing.T) {
	data := randMatrix(3, 5, 20)
	gen := func(t0, t1 int) *mat.Dense { return data.ColSlice(t0, t1) }
	src := FromFunc(gen, 5, 20, 7)
	var all *mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if all == nil {
			all = b
		} else {
			all = mat.HStack(all, b)
		}
	}
	if d := mat.Sub(all, data).FrobNorm(); d != 0 {
		t.Fatal("FromFunc batches do not reassemble the matrix")
	}
}

func TestPumpDrivesIncremental(t *testing.T) {
	data := randMatrix(4, 8, 640)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	src := FromMatrix(data, 128)
	stats, err := Pump(inc, src, 256)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InitialColumns != 256 {
		t.Fatalf("InitialColumns = %d want 256", stats.InitialColumns)
	}
	if stats.Columns != 640 || inc.Cols() != 640 {
		t.Fatalf("Columns = %d / %d want 640", stats.Columns, inc.Cols())
	}
	if stats.Batches != 3 {
		t.Fatalf("Batches = %d want 3 (one per streamed block)", stats.Batches)
	}
	if stats.MeanPartial() < 0 || stats.TotalPartial() < stats.MeanPartial() {
		t.Fatal("timing accounting inconsistent")
	}
}

// TestPumpSpillHandling: initial columns not aligned to batch size — the
// overflow must become the first partial fit.
func TestPumpSpillHandling(t *testing.T) {
	data := randMatrix(5, 8, 500)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	stats, err := Pump(inc, FromMatrix(data, 200), 150)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InitialColumns != 150 {
		t.Fatalf("InitialColumns = %d want 150", stats.InitialColumns)
	}
	if stats.Columns != 500 {
		t.Fatalf("Columns = %d want 500", stats.Columns)
	}
}

func TestPumpTooFewColumns(t *testing.T) {
	inc := core.NewIncremental(core.Options{DT: 1})
	if _, err := Pump(inc, FromMatrix(mat.NewDense(3, 1), 1), 4); err == nil {
		t.Fatal("want error for starved source")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := randMatrix(6, 7, 13)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Sub(got, data).FrobNorm(); d != 0 {
		t.Fatalf("CSV round trip deviates by %g", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3,nope\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got.R != 0 {
		t.Fatal("empty CSV should give empty matrix")
	}
}
