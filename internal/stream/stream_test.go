package stream

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

func randMatrix(seed int64, r, c int) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = 50 + 5*math.Sin(float64(i)/40) + rng.NormFloat64()
	}
	return m
}

func TestFromMatrixBatches(t *testing.T) {
	data := randMatrix(1, 4, 10)
	src := FromMatrix(data, 3)
	if src.Rows() != 4 {
		t.Fatalf("Rows = %d", src.Rows())
	}
	var sizes []int
	var all *mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		sizes = append(sizes, b.C)
		if all == nil {
			all = b
		} else {
			all = mat.HStack(all, b)
		}
	}
	want := []int{3, 3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v want %v", sizes, want)
		}
	}
	if d := mat.Sub(all, data).FrobNorm(); d != 0 {
		t.Fatal("batches do not reassemble the matrix")
	}
}

func TestFromMatrixExhausted(t *testing.T) {
	src := FromMatrix(randMatrix(2, 2, 4), 4)
	if _, ok := src.Next(); !ok {
		t.Fatal("first Next should succeed")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source still yields")
	}
}

func TestFromFuncMatchesMatrix(t *testing.T) {
	data := randMatrix(3, 5, 20)
	gen := func(t0, t1 int) *mat.Dense { return data.ColSlice(t0, t1) }
	src := FromFunc(gen, 5, 20, 7)
	var all *mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if all == nil {
			all = b
		} else {
			all = mat.HStack(all, b)
		}
	}
	if d := mat.Sub(all, data).FrobNorm(); d != 0 {
		t.Fatal("FromFunc batches do not reassemble the matrix")
	}
}

func TestPumpDrivesIncremental(t *testing.T) {
	data := randMatrix(4, 8, 640)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	src := FromMatrix(data, 128)
	stats, err := Pump(inc, src, 256)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InitialColumns != 256 {
		t.Fatalf("InitialColumns = %d want 256", stats.InitialColumns)
	}
	if stats.Columns != 640 || inc.Cols() != 640 {
		t.Fatalf("Columns = %d / %d want 640", stats.Columns, inc.Cols())
	}
	if stats.Batches != 3 {
		t.Fatalf("Batches = %d want 3 (one per streamed block)", stats.Batches)
	}
	if stats.MeanPartial() < 0 || stats.TotalPartial() < stats.MeanPartial() {
		t.Fatal("timing accounting inconsistent")
	}
}

// TestPumpSpillHandling: initial columns not aligned to batch size — the
// overflow must become the first partial fit.
func TestPumpSpillHandling(t *testing.T) {
	data := randMatrix(5, 8, 500)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	stats, err := Pump(inc, FromMatrix(data, 200), 150)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InitialColumns != 150 {
		t.Fatalf("InitialColumns = %d want 150", stats.InitialColumns)
	}
	if stats.Columns != 500 {
		t.Fatalf("Columns = %d want 500", stats.Columns)
	}
}

func TestPumpTooFewColumns(t *testing.T) {
	inc := core.NewIncremental(core.Options{DT: 1})
	if _, err := Pump(inc, FromMatrix(mat.NewDense(3, 1), 1), 4); err == nil {
		t.Fatal("want error for starved source")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := randMatrix(6, 7, 13)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Sub(got, data).FrobNorm(); d != 0 {
		t.Fatalf("CSV round trip deviates by %g", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3,nope\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got.R != 0 {
		t.Fatal("empty CSV should give empty matrix")
	}
}

// TestPumpRejectsTinyInitialCols: the old behavior silently seeded
// InitialFit with every accumulated column when initialCols < 2 (the
// spill split was skipped); now the misconfiguration is rejected up
// front.
func TestPumpRejectsTinyInitialCols(t *testing.T) {
	data := randMatrix(11, 6, 64)
	for _, ic := range []int{-3, 0, 1} {
		inc := core.NewIncremental(core.Options{DT: 1})
		if _, err := Pump(inc, FromMatrix(data, 16), ic); err == nil {
			t.Fatalf("initialCols=%d accepted", ic)
		} else if !strings.Contains(err.Error(), "initialCols") {
			t.Fatalf("initialCols=%d: unhelpful error %v", ic, err)
		}
	}
}

// TestPumpShortSeedSurfaced: a source that exhausts below initialCols
// still seeds (with what arrived) but the stats say so.
func TestPumpShortSeedSurfaced(t *testing.T) {
	data := randMatrix(12, 6, 96)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	stats, err := Pump(inc, FromMatrix(data, 32), 256)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ShortSeed {
		t.Fatal("short seed not surfaced")
	}
	if stats.InitialColumns != 96 || stats.Batches != 0 {
		t.Fatalf("short seed absorbed wrong: initial %d, batches %d", stats.InitialColumns, stats.Batches)
	}
	// The normal path must not set the flag.
	inc2 := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	stats2, err := Pump(inc2, FromMatrix(data, 32), 64)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ShortSeed {
		t.Fatal("full seed flagged short")
	}
}

// TestFeederPushSeedsAndStreams: push-based ingestion — buffer, seed at
// the requested width, stream afterwards.
func TestFeederPushSeedsAndStreams(t *testing.T) {
	data := randMatrix(13, 8, 400)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	f, err := NewFeeder(inc, 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFeeder(inc, 1); err == nil {
		t.Fatal("initialCols=1 accepted")
	}
	for c := 0; c < data.C; c += 100 {
		if err := f.Push(data.ColSlice(c, c+100)); err != nil {
			t.Fatal(err)
		}
		if c == 0 && (f.Seeded() || f.Pending() != 100) {
			t.Fatalf("after 100 cols: seeded=%v pending=%d", f.Seeded(), f.Pending())
		}
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.InitialColumns != 150 || st.Columns != 400 || inc.Cols() != 400 {
		t.Fatalf("feeder accounting: initial %d, columns %d, absorbed %d", st.InitialColumns, st.Columns, inc.Cols())
	}
	if st.Batches != 3 { // 50 spill + 100 + 100
		t.Fatalf("Batches = %d want 3", st.Batches)
	}
	if st.ShortSeed {
		t.Fatal("full seed flagged short")
	}
}

// TestResumeFeeder: a feeder over an already fitted analyzer (the
// restored-snapshot path) starts seeded and streams immediately.
func TestResumeFeeder(t *testing.T) {
	data := randMatrix(14, 8, 300)
	inc := core.NewIncremental(core.Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	if err := inc.InitialFit(data.ColSlice(0, 200)); err != nil {
		t.Fatal(err)
	}
	f := ResumeFeeder(inc)
	if !f.Seeded() {
		t.Fatal("resumed feeder not seeded")
	}
	if err := f.Push(data.ColSlice(200, 300)); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Columns != 300 || st.Batches != 1 {
		t.Fatalf("resume accounting: %+v", st)
	}
}

// TestCSVDegenerateRoundTrip: the shapes plain CSV cannot represent must
// survive Write→Read unchanged via the #shape header.
func TestCSVDegenerateRoundTrip(t *testing.T) {
	for _, shape := range [][2]int{{0, 0}, {5, 0}, {0, 7}} {
		var buf bytes.Buffer
		in := mat.NewDense(shape[0], shape[1])
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		out, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if out == nil || out.R != in.R || out.C != in.C || out.Data == nil {
			t.Fatalf("%v round-tripped to %+v", shape, out)
		}
	}
}

// TestCSVNonFiniteRejected: both directions refuse NaN/±Inf with errors
// that name the cell.
func TestCSVNonFiniteRejected(t *testing.T) {
	m := randMatrix(15, 3, 4)
	m.Set(1, 2, math.Inf(-1))
	if err := WriteCSV(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "row 1 col 2") {
		t.Fatalf("Inf write: %v", err)
	}
	m.Set(1, 2, math.NaN())
	if err := WriteCSV(&bytes.Buffer{}, m); err == nil {
		t.Fatal("NaN write accepted")
	}
	for _, in := range []string{"1,NaN\n2,3\n", "1,2\n+Inf,3\n", "1,2\n3,-inf\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("%q read: %v", in, err)
		}
	}
}

// TestCSVExtremeFiniteValues: the largest/smallest finite values must
// survive the text round trip exactly.
func TestCSVExtremeFiniteValues(t *testing.T) {
	in := mat.NewDense(2, 2)
	in.Set(0, 0, math.MaxFloat64)
	in.Set(0, 1, -math.MaxFloat64)
	in.Set(1, 0, math.SmallestNonzeroFloat64)
	in.Set(1, 1, -0.0)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("element %d: %v != %v", i, out.Data[i], in.Data[i])
		}
	}
}

// TestJSONSourceBatches: concatenated batch objects stream in order and
// reassemble the matrix.
func TestJSONSourceBatches(t *testing.T) {
	body := `{"data":[[1,2],[3,4]]}{"data":[[5],[6]]}` + "\n" + `{"data":[[7,8,9],[10,11,12]]}`
	src, err := FromJSON(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if src.Rows() != 2 {
		t.Fatalf("Rows = %d", src.Rows())
	}
	var all *mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if all == nil {
			all = b
		} else {
			all = mat.HStack(all, b)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 5, 7, 8, 9, 3, 4, 6, 10, 11, 12}
	if all.R != 2 || all.C != 6 {
		t.Fatalf("reassembled %d×%d", all.R, all.C)
	}
	for i, v := range want {
		if all.Data[i] != v {
			t.Fatalf("element %d = %v want %v", i, all.Data[i], v)
		}
	}
}

// TestJSONSourceErrors: empty body, ragged batches and row-count changes
// all fail with latched errors.
func TestJSONSourceErrors(t *testing.T) {
	if _, err := FromJSON(strings.NewReader("")); err == nil {
		t.Fatal("empty body accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{"data":[[1,2],[3]]}`)); err == nil {
		t.Fatal("ragged batch accepted")
	}
	src, err := FromJSON(strings.NewReader(`{"data":[[1],[2]]}{"data":[[3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Fatal("row-count change not surfaced")
	}
}
