package core_test

import (
	"math"
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
)

// TestBlockColumnsAccuracySCLog enforces the PR's accuracy criterion for
// block-column SVD updates: on the SCLog workload, streaming with
// BlockColumns=8 (one residual QR + one small core SVD per 8 sampled
// columns) must reconstruct within 1e-8 of the column-at-a-time path
// (BlockColumns=1). Brand updates compose exactly up to rank truncation,
// so the two absorption schedules may only differ by truncation-level
// noise — any larger gap means the block update changed the subspace.
func TestBlockColumnsAccuracySCLog(t *testing.T) {
	const (
		p        = 96
		initialT = 1024
	)
	base := core.Options{
		DT:        20,
		MaxLevels: 4,
		MaxCycles: 2,
		Rank:      6, // fixed rank: keeps mode selection schedule-independent
	}
	// Level-1 stride for T=1024 with the 4×-Nyquist default is 64, so one
	// PartialFit of 8·64 columns delivers exactly 8 new sampled columns:
	// one block update at BlockColumns=8 versus eight rank-1 updates at
	// BlockColumns=1.
	const stride = 64
	data := bench.SCLogData(p, initialT+2*8*stride, 3)

	run := func(blockCols int) (float64, *core.Incremental) {
		opts := base
		opts.BlockColumns = blockCols
		inc := core.NewIncremental(opts)
		if err := inc.InitialFit(data.ColSlice(0, initialT)); err != nil {
			t.Fatal(err)
		}
		for c := initialT; c < data.C; c += 8 * stride {
			blk := data.ColSlice(c, c+8*stride)
			if _, err := inc.PartialFit(blk); err != nil {
				t.Fatal(err)
			}
		}
		return inc.ReconError(), inc
	}

	errBlock, incBlock := run(8)
	errCol, incCol := run(1)

	if incBlock.Cols() != data.C || incCol.Cols() != data.C {
		t.Fatalf("absorbed %d / %d columns, want %d", incBlock.Cols(), incCol.Cols(), data.C)
	}
	if d := math.Abs(errBlock - errCol); d > 1e-8 {
		t.Fatalf("BlockColumns=8 reconstruction error %v deviates from column-at-a-time %v by %g (> 1e-8)",
			errBlock, errCol, d)
	}
	// Both paths must actually fit the data, or the comparison is vacuous.
	norm := data.FrobNorm()
	if errBlock > 0.5*norm {
		t.Fatalf("reconstruction error %v not meaningfully below data norm %v", errBlock, norm)
	}
}
