package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestViewMatchesTree pins View() against the heavyweight accessors it
// replaces on the read path: the spectrum must equal Tree().Spectrum()
// point for point, the counters must match the Tree methods, and the
// grid error must equal evaluating the full-resolution reconstruction at
// the sampled columns — View is a cheaper assembly of the same values,
// not an approximation (beyond the grid restriction, which is exact on
// the grid).
func TestViewMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := multiscale(rng, 16, 768, 1, 0.1)

	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		v := inc.View()
		tree := inc.Tree()
		if v.Steps != tree.T || v.Sensors != tree.P {
			t.Fatalf("%s: view %dx%d vs tree %dx%d", stage, v.Sensors, v.Steps, tree.P, tree.T)
		}
		if v.Nodes != len(tree.Nodes) || v.NumModes != tree.NumModes() || v.MaxLevel != tree.MaxLevel() {
			t.Fatalf("%s: view counts nodes=%d modes=%d levels=%d vs tree %d/%d/%d",
				stage, v.Nodes, v.NumModes, v.MaxLevel, len(tree.Nodes), tree.NumModes(), tree.MaxLevel())
		}
		want := tree.Spectrum()
		if len(v.Spectrum) != len(want) {
			t.Fatalf("%s: %d spectrum points vs %d", stage, len(v.Spectrum), len(want))
		}
		for i := range want {
			if v.Spectrum[i] != want[i] {
				t.Fatalf("%s: spectrum point %d: %+v vs %+v", stage, i, v.Spectrum[i], want[i])
			}
		}
		// Reference grid error: the full-resolution reconstruction and
		// raw data compared at the sampled columns only.
		stride := tree.Nodes[0].Stride
		recon := tree.Reconstruct()
		raw := inc.Raw()
		var s float64
		n := 0
		for c := 0; c < tree.T; c += stride {
			n++
			for i := 0; i < tree.P; i++ {
				d := raw.At(i, c) - recon.At(i, c)
				s += d * d
			}
		}
		wantErr := math.Sqrt(s)
		if v.GridCols != n {
			t.Fatalf("%s: grid cols %d want %d", stage, v.GridCols, n)
		}
		if d := math.Abs(v.GridError - wantErr); d > 1e-9*(1+wantErr) {
			t.Fatalf("%s: grid error %v vs reference %v", stage, v.GridError, wantErr)
		}
	}
	check("after InitialFit")
	for c := 512; c < 768; c += 64 {
		if _, err := inc.PartialFit(data.ColSlice(c, c+64)); err != nil {
			t.Fatal(err)
		}
	}
	check("after PartialFits")
	v := inc.View()
	if v.Updates != inc.Updates() || v.Updates != 4 {
		t.Fatalf("updates %d (inc says %d) want 4", v.Updates, inc.Updates())
	}
	if v.LastDrift != inc.DriftLog()[len(inc.DriftLog())-1] {
		t.Fatalf("last drift %v vs drift log", v.LastDrift)
	}
}

// TestViewUnseeded: a View of an unfitted analyzer is the zero summary,
// not a panic — the server publishes pre-seed states too.
func TestViewUnseeded(t *testing.T) {
	v := NewIncremental(defaultOpts()).View()
	if v.Steps != 0 || v.NumModes != 0 || len(v.Spectrum) != 0 || v.GridError != 0 {
		t.Fatalf("unseeded view: %+v", v)
	}
}
