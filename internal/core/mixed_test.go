package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"imrdmd/internal/mat"
)

// TestDecomposeMixedMatchesFloat64 pins the tentpole contract at the tree
// level: Precision "mixed" must produce the same kept-mode set as the
// float64 tier — same windows, same per-window mode counts, matching
// frequencies — on multiscale data with a clear SVHT separation, and a
// reconstruction error within a whisker of the f64 one.
func TestDecomposeMixedMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data, _ := multiscale(rng, 16, 512, 1, 0.1)
	opts := Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true}

	want, err := Decompose(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Precision = PrecisionMixed
	got, err := Decompose(data, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("node count %d vs %d", len(got.Nodes), len(want.Nodes))
	}
	for i, wn := range want.Nodes {
		gn := got.Nodes[i]
		if gn.Level != wn.Level || gn.Start != wn.Start || gn.End != wn.End {
			t.Fatalf("node %d window differs: L%d [%d,%d) vs L%d [%d,%d)",
				i, gn.Level, gn.Start, gn.End, wn.Level, wn.Start, wn.End)
		}
		if len(gn.Modes) != len(wn.Modes) {
			t.Fatalf("node %d (L%d [%d,%d)): kept %d modes, f64 kept %d",
				i, wn.Level, wn.Start, wn.End, len(gn.Modes), len(wn.Modes))
		}
		wf := modeFreqs(wn)
		gf := modeFreqs(gn)
		for j := range wf {
			if d := math.Abs(wf[j] - gf[j]); d > 1e-4*(1+wf[j]) {
				t.Fatalf("node %d mode %d frequency %v vs %v", i, j, gf[j], wf[j])
			}
		}
	}

	wantErr := want.ReconError(data)
	gotErr := got.ReconError(data)
	if gotErr > wantErr*1.01 {
		t.Fatalf("mixed reconstruction error %.6g vs f64 %.6g", gotErr, wantErr)
	}
}

func modeFreqs(n *Node) []float64 {
	f := make([]float64, len(n.Modes))
	for i, m := range n.Modes {
		f[i] = m.Freq
	}
	sort.Float64s(f)
	return f
}

// TestIncrementalMixedMatchesFloat64 runs the streaming pipeline in both
// tiers: the level-1 incremental SVD stays float64 in both (so drift
// measurements are comparable), while subtree windows screen in f32 under
// mixed. Mode counts and reconstruction error must agree as in the batch
// case.
func TestIncrementalMixedMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data, _ := multiscale(rng, 12, 600, 1, 0.1)
	run := func(precision string) (*Tree, float64) {
		inc := NewIncremental(Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Precision: precision})
		if err := inc.InitialFit(data.ColSlice(0, 400)); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.PartialFit(data.ColSlice(400, 600)); err != nil {
			t.Fatal(err)
		}
		return inc.Tree(), inc.ReconError()
	}
	want, wantErr := run(PrecisionFloat64)
	got, gotErr := run(PrecisionMixed)
	if got.NumModes() != want.NumModes() {
		t.Fatalf("mixed kept %d modes, f64 kept %d", got.NumModes(), want.NumModes())
	}
	if gotErr > wantErr*1.01 {
		t.Fatalf("mixed reconstruction error %.6g vs f64 %.6g", gotErr, wantErr)
	}
}

// TestOptionsValidate covers the core-level knob validation shared by
// Decompose and Incremental.InitialFit.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"explicit float64", Options{Precision: PrecisionFloat64}, true},
		{"mixed", Options{Precision: PrecisionMixed}, true},
		{"negative workers", Options{Workers: -1}, false},
		{"negative block columns", Options{BlockColumns: -8}, false},
		{"unknown precision", Options{Precision: "float16"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid options accepted")
			}
		})
	}
	// The entry points must surface the same errors.
	data := mat64(4, 32)
	if _, err := Decompose(data, Options{Precision: "bf16"}); err == nil {
		t.Fatal("Decompose accepted unknown precision")
	}
	inc := NewIncremental(Options{Workers: -2})
	if err := inc.InitialFit(data); err == nil {
		t.Fatal("InitialFit accepted negative workers")
	}
}

// mat64 builds a small deterministic matrix for the validation entry-point
// checks.
func mat64(p, t int) *mat.Dense {
	rng := rand.New(rand.NewSource(1))
	d, _ := multiscale(rng, p, t, 1, 0.05)
	return d
}
