package core

import (
	"errors"
	"fmt"

	"imrdmd/internal/mat"
)

// This file implements the extensions the paper's §VI defers to future
// work: adding entire new time series (sensors) to a running I-mrDMD,
// quantifying the compression the retained modes achieve, and taming the
// divergence of growing modes at fine temporal resolutions.

// AddSensors extends a fitted I-mrDMD with new spatial measurements
// ("extend the I-mrDMD approach to add new entire time series or sensor
// measurements incrementally", §VI/§VII). rows must carry the new
// sensors' full history: one row per new sensor, one column per absorbed
// time step.
//
// The level-1 SVD is extended in place by a Brand-style row update (no
// recomputation over the time axis); the level ≥2 subtrees must be
// refitted because their spatial modes gain entries, but each subtree
// refit only spans its own window and they are independent (the same
// embarrassing parallelism as Algorithm 1's recompute path).
func (inc *Incremental) AddSensors(rows *mat.Dense) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.hist == nil {
		return errors.New("core: AddSensors before InitialFit")
	}
	if rows.R == 0 {
		return nil
	}
	if rows.C != inc.hist.Cols() {
		return fmt.Errorf("core: AddSensors needs the full %d-step history, got %d columns",
			inc.hist.Cols(), rows.C)
	}
	if rows.HasNaN() {
		return errors.New("core: input contains NaN or Inf")
	}
	inc.hist.AddRows(inc.ws, rows)
	// The cached slow-grid evaluation spans the old sensor dimension;
	// the next PartialFit re-evaluates fresh.
	inc.invalidateSlowGrid()
	newSub := mat.SubsampleWith(inc.ws, rows, inc.stride1)
	// Keep the level-1 grid consistent: sub1 holds columns 0, s, 2s, …
	if newSub.C != inc.sub1.C {
		trimmed := mat.ColSliceWith(inc.ws, newSub, 0, inc.sub1.C)
		mat.PutDense(inc.ws, newSub)
		newSub = trimmed
	}
	grownSub := mat.VStackWith(inc.ws, inc.sub1, newSub)
	mat.PutDense(inc.ws, inc.sub1)
	inc.sub1 = grownSub
	inc.p = inc.hist.Rows()
	// The running SVD tracks X = sub1[:, :ns-1].
	newX := mat.ColSliceWith(inc.ws, newSub, 0, newSub.C-1)
	inc.isvd.AddRows(newX)
	mat.PutDense(inc.ws, newX)
	mat.PutDense(inc.ws, newSub)
	if err := inc.refreshLevel1(); err != nil {
		return err
	}
	for _, seg := range inc.segments {
		inc.recomputeSegmentLocked(seg)
	}
	return nil
}

// Sensors returns the current spatial dimension.
func (inc *Incremental) Sensors() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.p
}

// modeBytes is the storage cost of one retained mode: the complex spatial
// vector plus eigenvalue, exponent and amplitude.
func modeBytes(p int) int { return 16*p + 3*16 }

// StorageBytes returns the bytes needed to hold the decomposition's
// retained modes — the compressed representation from which Reconstruct
// rebuilds the (denoised) data.
func (t *Tree) StorageBytes() int {
	total := 0
	for _, nd := range t.Nodes {
		total += len(nd.Modes)*modeBytes(t.P) + 4*8 // window metadata
	}
	return total
}

// CompressionRatio returns raw-data bytes over mode-storage bytes — the
// paper's "reduce the data size from terabytes to megabytes" measure.
// Values above 1 mean the decomposition is smaller than the data.
func (t *Tree) CompressionRatio() float64 {
	s := t.StorageBytes()
	if s == 0 {
		return 0
	}
	return float64(t.P*t.T*8) / float64(s)
}

// StabilizeGrowth projects every retained mode with positive growth rate
// onto neutral growth (Re ψ ← 0, |λ| ← 1), addressing the divergence
// issue inherent in mrDMD as temporal resolution increases (§VI, citing
// [38]): spurious growing modes, extrapolated across a window, can blow
// up the reconstruction. Returns the number of modes adjusted.
//
// The adjustment deliberately preserves each mode's frequency and
// amplitude; only the unstable envelope is flattened.
func (t *Tree) StabilizeGrowth() int {
	n := 0
	for _, nd := range t.Nodes {
		for i := range nd.Modes {
			m := &nd.Modes[i]
			if real(m.Psi) > 0 {
				m.Psi = complex(0, imag(m.Psi))
				n++
			}
		}
	}
	return n
}
