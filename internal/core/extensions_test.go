package core

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

func TestAddSensorsMatchesFreshFit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, _ := multiscale(rng, 16, 512, 1, 0.1)
	opts := defaultOpts()

	// Fit on the first 12 sensors, then add the last 4.
	inc := NewIncremental(opts)
	if err := inc.InitialFit(data.RowSlice(0, 12)); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddSensors(data.RowSlice(12, 16)); err != nil {
		t.Fatal(err)
	}
	if inc.Sensors() != 16 {
		t.Fatalf("Sensors = %d want 16", inc.Sensors())
	}
	recon := inc.Reconstruct()
	if recon.R != 16 || recon.C != 512 {
		t.Fatalf("reconstruction shape %dx%d", recon.R, recon.C)
	}
	// Reconstruction quality over the added sensors must be comparable to
	// a fresh full fit.
	fresh, err := Decompose(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	freshErr := fresh.ReconError(data)
	addedErr := mat.Sub(data, recon).FrobNorm()
	if addedErr > 2*freshErr+1e-9 {
		t.Fatalf("AddSensors reconstruction error %g more than 2× fresh fit %g", addedErr, freshErr)
	}
}

func TestAddSensorsThenPartialFit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := multiscale(rng, 12, 768, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.RowSlice(0, 8).ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddSensors(data.RowSlice(8, 12).ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	// Streaming continues with the full sensor set.
	if _, err := inc.PartialFit(data.ColSlice(512, 768)); err != nil {
		t.Fatal(err)
	}
	if inc.Cols() != 768 || inc.Sensors() != 12 {
		t.Fatalf("state %d sensors × %d cols", inc.Sensors(), inc.Cols())
	}
	if inc.Reconstruct().HasNaN() {
		t.Fatal("reconstruction has NaN after mixed growth")
	}
}

func TestAddSensorsErrors(t *testing.T) {
	inc := NewIncremental(defaultOpts())
	if err := inc.AddSensors(mat.NewDense(2, 10)); err == nil {
		t.Fatal("AddSensors before InitialFit must fail")
	}
	rng := rand.New(rand.NewSource(3))
	data, _ := multiscale(rng, 8, 256, 1, 0.1)
	if err := inc.InitialFit(data); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddSensors(mat.NewDense(2, 100)); err == nil {
		t.Fatal("partial history must fail")
	}
	bad := mat.NewDense(2, 256)
	bad.Set(0, 0, math.NaN())
	if err := inc.AddSensors(bad); err == nil {
		t.Fatal("NaN rows must fail")
	}
	if err := inc.AddSensors(mat.NewDense(0, 256)); err != nil {
		t.Fatal("empty row block should be a no-op")
	}
}

func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Long smooth data compresses well: few slow modes explain many
	// columns.
	data, _ := multiscale(rng, 64, 2048, 1, 0.05)
	tree, err := Decompose(data, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.StorageBytes() <= 0 {
		t.Fatal("storage bytes not positive")
	}
	ratio := tree.CompressionRatio()
	if ratio <= 1 {
		t.Fatalf("compression ratio %.2f should exceed 1 for smooth data", ratio)
	}
	// More levels keep more modes: compression must not improve.
	deep, err := Decompose(data, Options{DT: 1, MaxLevels: 7, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	if deep.CompressionRatio() > ratio {
		t.Fatalf("deeper tree compresses better (%.2f > %.2f)?", deep.CompressionRatio(), ratio)
	}
}

func TestStabilizeGrowthBoundsReconstruction(t *testing.T) {
	// Data with a genuinely growing transient tempts DMD into growing
	// modes; stabilization must cap the reconstruction's magnitude.
	p, tt := 8, 512
	data := mat.NewDense(p, tt)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < p; i++ {
		for k := 0; k < tt; k++ {
			grow := math.Exp(0.004 * float64(k))
			data.Set(i, k, 50+grow*math.Sin(2*math.Pi*float64(k)/128)+0.2*rng.NormFloat64())
		}
	}
	tree, err := Decompose(data, Options{DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	adjusted := tree.StabilizeGrowth()
	if adjusted == 0 {
		t.Fatal("no growing modes found to stabilize on growing data")
	}
	recon := tree.Reconstruct()
	if recon.HasNaN() {
		t.Fatal("stabilized reconstruction has NaN")
	}
	// No retained mode may still grow.
	for _, nd := range tree.Nodes {
		for _, m := range nd.Modes {
			if real(m.Psi) > 0 {
				t.Fatal("growing mode survived stabilization")
			}
		}
	}
	// Stabilizing twice is a no-op.
	if tree.StabilizeGrowth() != 0 {
		t.Fatal("second stabilization adjusted modes again")
	}
}
