package core

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

// multiscale builds a P×T signal with energy at three well-separated
// timescales plus white noise — the structure mrDMD is designed to peel
// apart. Returns the noisy data and the clean (noise-free) version.
func multiscale(rng *rand.Rand, p, t int, dt, noise float64) (data, clean *mat.Dense) {
	data = mat.NewDense(p, t)
	clean = mat.NewDense(p, t)
	dur := float64(t) * dt
	slowF := 0.5 / dur   // half a cycle over the window
	midF := 16.0 / dur   // 16 cycles
	fastF := 120.0 / dur // 120 cycles
	for i := 0; i < p; i++ {
		base := 50 + 5*rng.Float64()
		aS := 3 + rng.Float64()
		aM := 1 + 0.5*rng.Float64()
		aF := 0.5 * rng.Float64()
		phS := rng.Float64() * 2 * math.Pi
		phM := rng.Float64() * 2 * math.Pi
		phF := rng.Float64() * 2 * math.Pi
		for k := 0; k < t; k++ {
			tt := float64(k) * dt
			v := base +
				aS*math.Sin(2*math.Pi*slowF*tt+phS) +
				aM*math.Sin(2*math.Pi*midF*tt+phM) +
				aF*math.Sin(2*math.Pi*fastF*tt+phF)
			clean.Data[i*t+k] = v
			data.Data[i*t+k] = v + noise*rng.NormFloat64()
		}
	}
	return data, clean
}

func defaultOpts() Options {
	return Options{DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true}
}

func TestDecomposeTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, _ := multiscale(rng, 12, 512, 1, 0.1)
	tree, err := Decompose(data, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A full binary split to 5 levels has 1+2+4+8+16 = 31 nodes.
	if len(tree.Nodes) != 31 {
		t.Fatalf("node count = %d want 31", len(tree.Nodes))
	}
	if tree.MaxLevel() != 5 {
		t.Fatalf("max level = %d want 5", tree.MaxLevel())
	}
	// Windows at each level must tile [0, T).
	byLevel := map[int]int{}
	for _, n := range tree.Nodes {
		byLevel[n.Level] += n.Window()
		if n.Start < 0 || n.End > 512 || n.Start >= n.End {
			t.Fatalf("bad window [%d,%d)", n.Start, n.End)
		}
	}
	for lvl := 1; lvl <= 5; lvl++ {
		if byLevel[lvl] != 512 {
			t.Fatalf("level %d windows cover %d columns, want 512", lvl, byLevel[lvl])
		}
	}
}

func TestDecomposeReconstructionQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, clean := multiscale(rng, 10, 512, 1, 0.2)
	tree, err := Decompose(data, Options{DT: 1, MaxLevels: 6, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	recon := tree.Reconstruct()
	// Q1: the reconstruction strips high-frequency noise, so it must sit
	// closer to the clean signal than to the noisy observations.
	errClean := mat.Sub(recon, clean).FrobNorm()
	errData := mat.Sub(recon, data).FrobNorm()
	if errClean >= errData {
		t.Fatalf("reconstruction is closer to the noise (%g) than to the clean signal (%g)", errData, errClean)
	}
	// And it must explain most of the signal energy. The paper's own
	// case studies run at ≈5%% relative Frobenius error.
	rel := errData / data.FrobNorm()
	if rel > 0.03 {
		t.Fatalf("relative reconstruction error %g too large", rel)
	}
}

func TestMoreLevelsReduceError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := multiscale(rng, 8, 512, 1, 0.05)
	var prev float64 = math.Inf(1)
	for _, lv := range []int{1, 3, 5} {
		tree, err := Decompose(data, Options{DT: 1, MaxLevels: lv, MaxCycles: 2, UseSVHT: true})
		if err != nil {
			t.Fatal(err)
		}
		e := tree.ReconError(data)
		if e > prev*1.05 { // allow 5% slack for mode-selection jitter
			t.Fatalf("error did not decrease with levels: %g after %g", e, prev)
		}
		prev = e
	}
}

func TestReconstructLevelsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := multiscale(rng, 8, 256, 1, 0.1)
	tree, err := Decompose(data, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	full := tree.Reconstruct()
	partial := tree.ReconstructLevels(1)
	// Level-1-only reconstruction misses the finer scales, so its error
	// against the data must exceed the full tree's.
	errPartial := mat.Sub(partial, data).FrobNorm()
	errFull := mat.Sub(full, data).FrobNorm()
	if errPartial <= errFull {
		t.Fatalf("level-1-only error %g not above full-tree error %g", errPartial, errFull)
	}
	if d := mat.Sub(tree.ReconstructLevels(tree.MaxLevel()), full).FrobNorm(); d != 0 {
		t.Fatal("ReconstructLevels(max) must equal Reconstruct")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := multiscale(rng, 10, 512, 1, 0.1)
	serialOpts := defaultOpts()
	parallelOpts := defaultOpts()
	parallelOpts.Parallel = true
	st, err := Decompose(data, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Decompose(data, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Sub(st.Reconstruct(), pt.Reconstruct()).FrobNorm(); d > 1e-9*(1+data.FrobNorm()) {
		t.Fatalf("parallel and serial reconstructions differ by %g", d)
	}
	if len(st.Nodes) != len(pt.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(st.Nodes), len(pt.Nodes))
	}
}

func TestDecomposeRejectsNaN(t *testing.T) {
	data := mat.NewDense(4, 64)
	data.Set(2, 10, math.NaN())
	if _, err := Decompose(data, defaultOpts()); err == nil {
		t.Fatal("want error for NaN input")
	}
}

func TestDecomposeTooFewColumns(t *testing.T) {
	if _, err := Decompose(mat.NewDense(4, 1), defaultOpts()); err == nil {
		t.Fatal("want error for single column")
	}
}

func TestSpectrumCoversScales(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data, _ := multiscale(rng, 10, 512, 1, 0.05)
	tree, err := Decompose(data, Options{DT: 1, MaxLevels: 6, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	pts := tree.Spectrum()
	if len(pts) == 0 {
		t.Fatal("empty spectrum")
	}
	var minF, maxF = math.Inf(1), 0.0
	for _, p := range pts {
		if p.Freq < minF {
			minF = p.Freq
		}
		if p.Freq > maxF {
			maxF = p.Freq
		}
		if p.Level < 1 || p.Level > 6 {
			t.Fatalf("bad level %d in spectrum", p.Level)
		}
	}
	// The deep levels must contribute faster frequencies than level 1 can
	// hold: max over min spread of at least the level-1 threshold ratio.
	if maxF == 0 || minF == math.Inf(1) || maxF <= minF {
		t.Fatalf("spectrum spread [%g, %g] not multiscale", minF, maxF)
	}
}

func TestModeMagnitudesDiscriminate(t *testing.T) {
	// Sensors 0..4 carry a strong oscillation, sensors 5..9 are flat.
	p, tt := 10, 256
	data := mat.NewDense(p, tt)
	for i := 0; i < p; i++ {
		for k := 0; k < tt; k++ {
			v := 10.0
			if i < 5 {
				v += 5 * math.Sin(2*math.Pi*8*float64(k)/float64(tt))
			}
			data.Data[i*tt+k] = v
		}
	}
	tree, err := Decompose(data, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	mag := tree.ModeMagnitudes(FullBand())
	var active, flat float64
	for i := 0; i < 5; i++ {
		active += mag[i]
	}
	for i := 5; i < 10; i++ {
		flat += mag[i]
	}
	if active <= flat {
		t.Fatalf("mode magnitudes do not separate active (%g) from flat (%g) sensors", active, flat)
	}
}

func TestWindowStride(t *testing.T) {
	opts := Options{MaxCycles: 2, NyquistFactor: 4}.withDefaults()
	if s := windowStride(1600, opts); s != 100 {
		t.Fatalf("stride = %d want 100", s)
	}
	if s := windowStride(10, opts); s != 1 {
		t.Fatalf("small window stride = %d want 1", s)
	}
}

func TestInitialFitMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := multiscale(rng, 10, 512, 1, 0.1)
	opts := defaultOpts()
	batch, err := Decompose(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(opts)
	if err := inc.InitialFit(data); err != nil {
		t.Fatal(err)
	}
	bt := batch.Reconstruct()
	it := inc.Reconstruct()
	if d := mat.Sub(bt, it).FrobNorm(); d > 1e-6*(1+data.FrobNorm()) {
		t.Fatalf("InitialFit deviates from batch by %g", d)
	}
	if got, want := len(inc.Tree().Nodes), len(batch.Nodes); got != want {
		t.Fatalf("node count %d want %d", got, want)
	}
}

func TestPartialFitGrowsTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data, _ := multiscale(rng, 8, 768, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	stats, err := inc.PartialFit(data.ColSlice(512, 768))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Cols() != 768 {
		t.Fatalf("Cols = %d want 768", inc.Cols())
	}
	if stats.NewColumns != 256 {
		t.Fatalf("NewColumns = %d want 256", stats.NewColumns)
	}
	if inc.Updates() != 1 {
		t.Fatalf("Updates = %d want 1", inc.Updates())
	}
	// Levels were demoted: tree now contains level-3 nodes from the old
	// fit's level-2 nodes.
	tree := inc.Tree()
	if tree.MaxLevel() < 3 {
		t.Fatalf("expected demoted levels, max level = %d", tree.MaxLevel())
	}
}

func TestIncrementalAccuracyGap(t *testing.T) {
	// Q2: the I-mrDMD reconstruction error may exceed batch mrDMD's, but
	// only by a bounded amount.
	rng := rand.New(rand.NewSource(9))
	data, _ := multiscale(rng, 12, 1024, 1, 0.2)
	opts := Options{DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true}
	inc := NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	for j := 512; j < 1024; j += 128 {
		if _, err := inc.PartialFit(data.ColSlice(j, j+128)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := Decompose(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	incErr := inc.ReconError()
	batchErr := batch.ReconError(data)
	if incErr > 2*batchErr+1e-9 {
		t.Fatalf("incremental error %g more than 2× batch error %g", incErr, batchErr)
	}
}

func TestDriftRecomputeSync(t *testing.T) {
	// A regime change between windows forces slow-mode drift; with a tiny
	// threshold the old subtree must be recomputed.
	rng := rand.New(rand.NewSource(10))
	p, tt := 8, 512
	data := mat.NewDense(p, tt)
	for i := 0; i < p; i++ {
		for k := 0; k < tt; k++ {
			base := 40.0
			if k >= 256 {
				base = 70.0 // regime shift
			}
			data.Data[i*tt+k] = base + rng.NormFloat64()
		}
	}
	inc := NewIncremental(defaultOpts())
	inc.DriftThreshold = 1e-6
	if err := inc.InitialFit(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	stats, err := inc.PartialFit(data.ColSlice(256, 512))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Drift <= 0 {
		t.Fatal("regime change produced zero drift")
	}
	if !stats.Recomputed || inc.Recomputes() != 1 {
		t.Fatalf("expected a recompute: %+v", stats)
	}
}

func TestDriftRecomputeAsync(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data, _ := multiscale(rng, 8, 512, 1, 0.3)
	inc := NewIncremental(defaultOpts())
	inc.DriftThreshold = 1e-9
	inc.AsyncRecompute = true
	if err := inc.InitialFit(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.PartialFit(data.ColSlice(256, 512)); err != nil {
		t.Fatal(err)
	}
	inc.Wait()
	// After waiting, the reconstruction must be finite and sane.
	if inc.Reconstruct().HasNaN() {
		t.Fatal("async recompute corrupted state")
	}
	if inc.Recomputes() != 1 {
		t.Fatalf("Recomputes = %d want 1", inc.Recomputes())
	}
}

func TestPartialFitErrors(t *testing.T) {
	inc := NewIncremental(defaultOpts())
	if _, err := inc.PartialFit(mat.NewDense(4, 8)); err == nil {
		t.Fatal("PartialFit before InitialFit must fail")
	}
	rng := rand.New(rand.NewSource(12))
	data, _ := multiscale(rng, 4, 128, 1, 0.1)
	if err := inc.InitialFit(data); err != nil {
		t.Fatal(err)
	}
	if err := inc.InitialFit(data); err == nil {
		t.Fatal("second InitialFit must fail")
	}
	if _, err := inc.PartialFit(mat.NewDense(5, 8)); err == nil {
		t.Fatal("row mismatch must fail")
	}
	bad := mat.NewDense(4, 8)
	bad.Set(0, 0, math.Inf(1))
	if _, err := inc.PartialFit(bad); err == nil {
		t.Fatal("Inf input must fail")
	}
	// Empty update is a no-op.
	if _, err := inc.PartialFit(mat.NewDense(4, 0)); err != nil {
		t.Fatal(err)
	}
	if inc.Cols() != 128 {
		t.Fatal("empty update changed the column count")
	}
}

func TestDriftLogRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data, _ := multiscale(rng, 6, 640, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	for j := 256; j < 640; j += 128 {
		if _, err := inc.PartialFit(data.ColSlice(j, j+128)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(inc.DriftLog()); got != 3 {
		t.Fatalf("drift log has %d entries, want 3", got)
	}
}

func TestRefitBatchConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data, _ := multiscale(rng, 6, 512, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 384)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.PartialFit(data.ColSlice(384, 512)); err != nil {
		t.Fatal(err)
	}
	tree, err := inc.RefitBatch()
	if err != nil {
		t.Fatal(err)
	}
	if tree.T != 512 {
		t.Fatalf("refit T = %d want 512", tree.T)
	}
	direct, err := Decompose(data, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Sub(tree.Reconstruct(), direct.Reconstruct()).FrobNorm(); d > 1e-9*(1+data.FrobNorm()) {
		t.Fatalf("RefitBatch deviates from direct batch by %g", d)
	}
}

func BenchmarkDecompose1000x2000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := multiscale(rng, 1000, 2000, 1, 0.2)
	opts := Options{DT: 1, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialFit1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := multiscale(rng, 1000, 3000, 1, 0.2)
	opts := Options{DT: 1, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 2000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(2000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}
