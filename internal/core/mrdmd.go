// Package core implements the paper's primary contribution: multiresolution
// dynamic mode decomposition (mrDMD, Kutz et al. 2016) and its incremental
// streaming variant I-mrDMD (Algorithm 1 of the paper).
//
// mrDMD recursively separates timescales: at each level it runs DMD on the
// (subsampled) window, keeps only the modes slower than ρ = maxCycles/window
// ("slow modes"), subtracts their reconstruction from the data, splits the
// residual timeline in half and recurses. I-mrDMD keeps the level-1 SVD in
// incremental form so that newly streamed time points update the modes in
// O(new data) instead of O(all data).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"imrdmd/internal/compute"
	"imrdmd/internal/dmd"
	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// Precision values for Options.Precision.
const (
	// PrecisionFloat64 runs every numeric stage in float64 — the default,
	// bit-stable tier.
	PrecisionFloat64 = "float64"
	// PrecisionMixed screens each subtree window with the float32 tier
	// (f32 SVD + SVHT decision) and recomputes only the kept directions
	// in float64 — the multifidelity trade applied to arithmetic
	// precision. Kept-mode sets match float64 within SVHT tolerance but
	// results are not bit-identical. See DESIGN.md §6.
	PrecisionMixed = "mixed"
)

// Options configures an mrDMD / I-mrDMD analysis.
type Options struct {
	// DT is the sampling interval of the input columns (seconds, or any
	// consistent unit; frequencies come out in cycles per that unit).
	DT float64
	// MaxLevels bounds the recursion depth (level 1 = whole window).
	MaxLevels int
	// MaxCycles is the slow-mode threshold: a mode is "slow" for a window
	// of duration D when |ψ|/2π ≤ MaxCycles/D, i.e. it completes at most
	// MaxCycles oscillations across the window.
	MaxCycles int
	// NyquistFactor oversamples the slow band: each window is subsampled
	// to about NyquistFactor·2·MaxCycles columns before DMD. The paper
	// (following [2], [3]) uses four times the Nyquist limit, i.e. 4.
	NyquistFactor int
	// Rank fixes SVD truncation; 0 defers to SVHT when UseSVHT is set,
	// otherwise full numerical rank.
	Rank int
	// UseSVHT enables the Gavish–Donoho optimal hard threshold.
	UseSVHT bool
	// MinWindow stops recursion when a window has fewer columns.
	MinWindow int
	// Parallel processes the two halves of each split concurrently on the
	// compute engine; the recursion is embarrassingly parallel, as the
	// paper notes.
	Parallel bool
	// Workers bounds the engine lane count for everything this analysis
	// runs — matrix kernels, sibling windows, async recomputes. 0 uses
	// the GOMAXPROCS-sized shared pool.
	Workers int
	// BlockColumns chunks the incremental SVD's absorption of newly
	// sampled level-1 columns: each chunk of BlockColumns columns pays
	// one residual QR plus one small core SVD, so larger values mean
	// fewer factorizations per absorbed column. 1 absorbs column by
	// column; 0 (the default) absorbs each PartialFit's new samples as a
	// single block, preserving the pre-knob semantics. The absorbed
	// subspace is identical up to rank truncation for every setting
	// (blockcolumns_test.go pins BlockColumns=8 against column-at-a-time
	// within 1e-8 reconstruction error).
	BlockColumns int
	// Precision selects the arithmetic tier: "" or PrecisionFloat64
	// (default) runs everything in float64, bit-stable with prior
	// releases; PrecisionMixed routes each window's first-pass SVD
	// through the float32 screening tier and recomputes only the
	// SVHT-kept directions in float64. The incremental level-1 SVD's
	// arithmetic stays float64 — mixed mode affects per-window (subtree)
	// decompositions — except that when Shards > 1 the sharded update's
	// reduce payload narrows to float32 (half the collective bytes; the
	// refactor of the kept directions stays float64, and agreement with
	// the unsharded mixed run is at screening accuracy, 2e-5).
	Precision string
	// DriftWindow bounds PartialFit's drift measurement — the comparison
	// of old vs new level-1 slow reconstructions — to the trailing
	// DriftWindow level-1 grid columns. Combined with the slow-grid cache
	// (which already makes the old-side evaluation O(Δ) regardless), this
	// caps the one remaining O(grid) term of the per-batch pipeline at
	// O(DriftWindow). The measured drift then reflects recent history
	// only: recomputation triggers on changes visible inside the window.
	// 0 (the default) measures over the full grid, bit-identical to prior
	// releases.
	DriftWindow int
	// AmplitudeWindow bounds the level-1 amplitude refit (the Jovanović
	// normal equations inside every PartialFit) to the trailing
	// AmplitudeWindow level-1 grid columns — the last O(T) term of the
	// per-batch cost. Modes that decayed to nothing before the window
	// opens get amplitude 0 (the window carries no information about
	// them); persistent modes agree with the full-width fit to roundoff
	// on stationary signals (test-pinned). 0 (the default) fits the full
	// grid, bit-identical to prior releases.
	AmplitudeWindow int
	// ColdHorizon demotes absorbed raw columns older than this many steps
	// from float64 to float32 chunk storage, halving resident bytes for
	// long histories. The trailing ColdHorizon columns always stay exact;
	// demoted history is widened back on demand (segment recompute,
	// ReconError, snapshot) carrying one f32 rounding (rel ≤ 2⁻²⁴ per
	// element). 0 (the default) keeps everything in float64, bit-stable
	// with prior releases. See DESIGN.md §10.
	ColdHorizon int
	// Shards row-partitions the streaming level-1 SVD across this many
	// shards (internal/shard): each shard owns a contiguous slice of the
	// sensor rows of U while Σ/V replicate, and every PartialFit update
	// costs one q×w projection all-reduce — the architecture of the
	// multi-node scale-out, in-process for now. 0 or 1 (the default)
	// keeps the unsharded path, bit-identical to prior releases; counts
	// above 1 must not exceed the sensor-row count (checked at
	// InitialFit). Shard results agree with the unsharded path to
	// summation roundoff (test-pinned at 1e-8 on the paper workloads).
	// Batch Decompose ignores the knob: only the persistent streaming
	// state is sharded. See DESIGN.md §7.
	Shards int
	// Engine overrides the worker pool directly (advanced; takes
	// precedence over Workers). Shared across calls, never closed here.
	Engine *compute.Engine
}

// engine resolves the configured compute engine.
func (o Options) engine() *compute.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return compute.Shared(o.Workers)
}

// Validate rejects option values that would otherwise be accepted
// silently and misbehave later: negative worker or block-column counts
// and unknown precision tiers. The zero value of every field is valid.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: Options.Workers must be >= 0, got %d", o.Workers)
	}
	if o.BlockColumns < 0 {
		return fmt.Errorf("core: Options.BlockColumns must be >= 0, got %d", o.BlockColumns)
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: Options.Shards must be >= 0, got %d (0 or 1 = unsharded)", o.Shards)
	}
	if o.DriftWindow < 0 {
		return fmt.Errorf("core: Options.DriftWindow must be >= 0, got %d (0 = full grid)", o.DriftWindow)
	}
	if o.AmplitudeWindow < 0 {
		return fmt.Errorf("core: Options.AmplitudeWindow must be >= 0, got %d (0 = full grid)", o.AmplitudeWindow)
	}
	if o.ColdHorizon < 0 {
		return fmt.Errorf("core: Options.ColdHorizon must be >= 0, got %d (0 = no cold tier)", o.ColdHorizon)
	}
	switch o.Precision {
	case "", PrecisionFloat64, PrecisionMixed:
	default:
		return fmt.Errorf("core: unknown Options.Precision %q (valid: %q, %q or empty)",
			o.Precision, PrecisionFloat64, PrecisionMixed)
	}
	return nil
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.DT <= 0 {
		o.DT = 1
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 6
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 2
	}
	if o.NyquistFactor <= 0 {
		o.NyquistFactor = 4
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 8
	}
	if o.Precision == "" {
		o.Precision = PrecisionFloat64
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// Node is one window of the multiresolution tree holding the slow modes
// extracted there.
type Node struct {
	Level  int // 1-based; level 1 spans the whole timeline
	Start  int // global column index, inclusive
	End    int // global column index, exclusive
	Stride int // subsample stride used for the DMD at this node
	// Modes are the retained slow modes (spatial vectors are full length P).
	Modes []dmd.Mode
	// NumAllModes counts modes before the slow filter, for diagnostics.
	NumAllModes int
}

// Window returns the number of original columns this node spans.
func (n *Node) Window() int { return n.End - n.Start }

// Tree is a complete mrDMD decomposition.
type Tree struct {
	Nodes []*Node
	P     int
	T     int
	Opts  Options
}

// Decompose runs batch mrDMD on data (P×T) on the engine configured by
// opts (a long-lived shared pool by default — no goroutines are spawned
// per call).
func Decompose(data *mat.Dense, opts Options) (*Tree, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	p, t := data.Dims()
	if t < 2 {
		return nil, dmd.ErrTooFewSnapshots
	}
	if data.HasNaN() {
		return nil, errors.New("core: input contains NaN or Inf")
	}
	work := data.Clone()
	nodes, err := decompose(work, 1, 0, opts, opts.engine(), compute.NewWorkspace())
	if err != nil {
		return nil, err
	}
	return &Tree{Nodes: nodes, P: p, T: t, Opts: opts}, nil
}

// decompose processes one window (data is the residual for this window and
// will be mutated by slow-mode subtraction), returning the flattened nodes
// of the subtree. start is the window's global column offset, level its
// 1-based depth. Sibling subtrees run concurrently on the engine when
// opts.Parallel is set; the workspace is shared (it is concurrency-safe)
// so every branch draws scratch from one pool.
func decompose(data *mat.Dense, level, start int, opts Options, eng *compute.Engine, ws *compute.Workspace) ([]*Node, error) {
	node, residual, err := processWindow(data, level, start, opts, eng, ws)
	if err != nil {
		return nil, err
	}
	nodes := []*Node{node}
	n := residual.C
	if level >= opts.MaxLevels || n < 2*opts.MinWindow {
		return nodes, nil
	}
	children, err := splitDecompose(residual, level+1, start, opts, eng, ws)
	if err != nil {
		return nil, err
	}
	return append(nodes, children...), nil
}

// splitDecompose halves resid and decomposes both halves at the given
// level — concurrently on the engine when opts.Parallel is set. Used by
// the batch recursion and by the incremental subtree fit.
func splitDecompose(resid *mat.Dense, level, start int, opts Options, eng *compute.Engine, ws *compute.Workspace) ([]*Node, error) {
	n := resid.C
	half := n / 2
	left := mat.ColSliceWith(ws, resid, 0, half)
	right := mat.ColSliceWith(ws, resid, half, n)

	var (
		lnodes, rnodes    []*Node
		leftErr, rightErr error
	)
	runLeft := func() {
		lnodes, leftErr = decompose(left, level, start, opts, eng, ws)
		mat.PutDense(ws, left)
	}
	runRight := func() {
		rnodes, rightErr = decompose(right, level, start+half, opts, eng, ws)
		mat.PutDense(ws, right)
	}
	if opts.Parallel && eng.Workers() > 1 {
		eng.Do(runLeft, runRight)
	} else {
		runLeft()
		runRight()
	}
	if leftErr != nil {
		return nil, leftErr
	}
	if rightErr != nil {
		return nil, rightErr
	}
	return append(lnodes, rnodes...), nil
}

// processWindow runs the per-window step: subsample, DMD, slow-mode
// selection, slow-part subtraction. It returns the node and the residual
// (data minus slow reconstruction; aliases the mutated input).
func processWindow(data *mat.Dense, level, start int, opts Options, eng *compute.Engine, ws *compute.Workspace) (*Node, *mat.Dense, error) {
	n := data.C
	stride := windowStride(n, opts)
	sub := mat.SubsampleWith(ws, data, stride)
	dtSub := float64(stride) * opts.DT

	dec, err := windowDMD(sub, dtSub, opts, eng, ws)
	mat.PutDense(ws, sub)
	if err != nil {
		return nil, nil, fmt.Errorf("core: level %d window [%d,%d): %w", level, start, start+n, err)
	}
	rho := float64(opts.MaxCycles) / (float64(n) * opts.DT)
	slow, _ := dmd.SlowModes(dec.Modes, rho)

	node := &Node{
		Level:       level,
		Start:       start,
		End:         start + n,
		Stride:      stride,
		Modes:       slow,
		NumAllModes: len(dec.Modes),
	}
	if len(slow) > 0 {
		times := ws.GetF64(n)
		for k := range times {
			times[k] = float64(k) * opts.DT
		}
		// Accumulate-mode GEMMs flip the slow part out of the window in
		// place — no p×n reconstruction scratch, no separate subtract pass.
		dmd.SubReconstructionWith(eng, ws, data, slow, times)
		ws.PutF64(times)
	}
	return node, data, nil
}

// windowDMD runs the per-window DMD on the already-subsampled snapshots,
// routed by the configured precision tier. The float64 tier is the
// unchanged dmd.Compute path (bit-stable with Precision unset). The mixed
// tier screens the window's SVD in float32 — the SVHT (or fixed-rank)
// truncation decision is made on the f32 spectrum — and recomputes only
// the kept directions in float64 before handing the refined, already
// truncated factors to dmd.FromSVD (which therefore runs with its own
// truncation disabled).
func windowDMD(sub *mat.Dense, dtSub float64, opts Options, eng *compute.Engine, ws *compute.Workspace) (*dmd.Decomposition, error) {
	if opts.Precision != PrecisionMixed {
		return dmd.Compute(sub, dmd.Options{
			DT: dtSub, Rank: opts.Rank, UseSVHT: opts.UseSVHT,
			Engine: eng, Ws: ws,
		})
	}
	if sub.C < 2 {
		return nil, dmd.ErrTooFewSnapshots
	}
	x := mat.ColSliceWith(ws, sub, 0, sub.C-1)
	s := svd.MixedCompute(eng, ws, x, opts.UseSVHT, opts.Rank)
	mat.PutDense(ws, x)
	return dmd.FromSVD(s, sub, dmd.Options{
		DT: dtSub, Engine: eng, Ws: ws,
	})
}

// windowStride computes the subsample stride so the window keeps about
// NyquistFactor × 2 × MaxCycles columns — enough to resolve MaxCycles
// oscillations at NyquistFactor× the Nyquist rate (paper §III-A).
func windowStride(n int, opts Options) int {
	target := opts.NyquistFactor * 2 * opts.MaxCycles
	if target < 4 {
		target = 4
	}
	stride := n / target
	if stride < 1 {
		stride = 1
	}
	return stride
}

// Reconstruct sums the slow-mode reconstructions of every node, giving the
// mrDMD approximation of the original data (Eq. 7/8).
func (t *Tree) Reconstruct() *mat.Dense {
	return reconstructNodes(t.Nodes, t.P, t.T, t.Opts.DT)
}

// ReconstructLevels reconstructs using only nodes with Level ≤ maxLevel,
// i.e. only timescales at least as slow as that level captures.
func (t *Tree) ReconstructLevels(maxLevel int) *mat.Dense {
	kept := make([]*Node, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		if n.Level <= maxLevel {
			kept = append(kept, n)
		}
	}
	return reconstructNodes(kept, t.P, t.T, t.Opts.DT)
}

func reconstructNodes(nodes []*Node, p, t int, dt float64) *mat.Dense {
	out := mat.NewDense(p, t)
	for _, nd := range nodes {
		addNodeRecon(out, nd, dt)
	}
	return out
}

// addNodeRecon adds a node's slow-part reconstruction into out over the
// node's own window.
func addNodeRecon(out *mat.Dense, nd *Node, dt float64) {
	if len(nd.Modes) == 0 {
		return
	}
	w := nd.Window()
	times := make([]float64, w)
	for k := range times {
		times[k] = float64(k) * dt
	}
	recon := dmd.ReconstructModes(nd.Modes, out.R, times)
	for i := 0; i < out.R; i++ {
		dst := out.Row(i)[nd.Start:nd.End]
		src := recon.Row(i)
		for k := range dst {
			dst[k] += src[k]
		}
	}
}

// Spectrum flattens every node's modes into spectrum points (Fig. 5/7).
func (t *Tree) Spectrum() []dmd.SpectrumPoint {
	return spectrumOf(t.Nodes)
}

func spectrumOf(nodes []*Node) []dmd.SpectrumPoint {
	var pts []dmd.SpectrumPoint
	for _, nd := range nodes {
		for _, m := range nd.Modes {
			pts = append(pts, dmd.SpectrumPoint{
				Freq:  m.Freq,
				Power: m.Power,
				Amp:   cmplx.Abs(m.Amp),
				Grow:  real(m.Psi),
				Level: nd.Level,
			})
		}
	}
	return pts
}

// NumModes counts retained modes across the tree.
func (t *Tree) NumModes() int {
	c := 0
	for _, n := range t.Nodes {
		c += len(n.Modes)
	}
	return c
}

// MaxLevel returns the deepest level present.
func (t *Tree) MaxLevel() int {
	m := 0
	for _, n := range t.Nodes {
		if n.Level > m {
			m = n.Level
		}
	}
	return m
}

// ReconError returns ‖data − Reconstruct()‖_F, the figure the paper
// reports for Fig. 3 (3958.58) and case study 2 (3423.847).
func (t *Tree) ReconError(data *mat.Dense) float64 {
	return mat.Sub(data, t.Reconstruct()).FrobNorm()
}

// ModeMagnitudes accumulates, per state/sensor row, the amplitude-weighted
// spatial mode magnitude Σᵢ |φᵢ(p)|·|bᵢ| over modes with frequency in
// [band.Lo, band.Hi]. This is the per-measurement quantity the z-score
// analysis compares against baselines (§III-A2).
func (t *Tree) ModeMagnitudes(band FreqBand) []float64 {
	return modeMagnitudes(t.Nodes, t.P, band)
}

// FreqBand is a closed frequency interval in cycles per time unit.
type FreqBand struct {
	Lo, Hi float64
}

// FullBand spans all frequencies.
func FullBand() FreqBand { return FreqBand{Lo: 0, Hi: math.Inf(1)} }

func modeMagnitudes(nodes []*Node, p int, band FreqBand) []float64 {
	mag := make([]float64, p)
	for _, nd := range nodes {
		// Weight nodes by their window share so long windows (slow
		// dynamics) and short windows contribute proportionally.
		for _, m := range nd.Modes {
			if m.Freq < band.Lo || m.Freq > band.Hi {
				continue
			}
			ab := cmplx.Abs(m.Amp)
			if ab == 0 {
				continue
			}
			for i := 0; i < p; i++ {
				mag[i] += cmplx.Abs(m.Phi[i]) * ab
			}
		}
	}
	return mag
}

// ReadingLevels returns the per-sensor time-mean of the band-limited
// reconstruction: the denoised "readings of interest" the case studies
// standardize into z-scores (red hues = readings much higher than
// baselines, blue = much lower). Restricting the band reproduces the
// paper's frequency-isolation step (e.g. 0–60 Hz in case study 1).
func (t *Tree) ReadingLevels(band FreqBand) []float64 {
	return readingLevels(t.Nodes, t.P, t.Opts.DT, band, 0, t.T)
}

// ReadingLevelsRange restricts the time-mean to columns [lo, hi) — the
// recency window online monitoring evaluates against.
func (t *Tree) ReadingLevelsRange(band FreqBand, lo, hi int) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > t.T {
		hi = t.T
	}
	if hi <= lo {
		return make([]float64, t.P)
	}
	return readingLevels(t.Nodes, t.P, t.Opts.DT, band, lo, hi)
}

func readingLevels(nodes []*Node, p int, dt float64, band FreqBand, lo, hi int) []float64 {
	acc := make([]float64, p)
	for _, nd := range nodes {
		// Intersect the node's window with the evaluation range.
		kLo, kHi := nd.Start, nd.End
		if kLo < lo {
			kLo = lo
		}
		if kHi > hi {
			kHi = hi
		}
		if kHi <= kLo {
			continue
		}
		for _, m := range nd.Modes {
			if m.Freq < band.Lo || m.Freq > band.Hi {
				continue
			}
			// S = Σ e^{ψ·(k−Start)Δt} over the intersected window; the
			// mode's contribution to sensor i's time-sum is Re(φᵢ·b·S).
			var s complex128
			for k := kLo; k < kHi; k++ {
				s += expPsiTC(m.Psi, float64(k-nd.Start)*dt)
			}
			bs := m.Amp * s
			if bs == 0 {
				continue
			}
			for i := 0; i < p; i++ {
				acc[i] += real(m.Phi[i] * bs)
			}
		}
	}
	inv := 1 / float64(hi-lo)
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}

// expPsiTC mirrors dmd's clamped exponential for use in level sums.
func expPsiTC(psi complex128, t float64) complex128 {
	re := real(psi) * t
	if re > 700 {
		re = 700
	}
	if re < -700 {
		return 0
	}
	return cmplx.Exp(complex(re, imag(psi)*t))
}
