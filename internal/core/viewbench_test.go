package core

import (
	"math/rand"
	"testing"
)

func BenchmarkViewPublish(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := multiscale(rng, 200, 4000, 1, 0.1)
	opts := Options{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true, BlockColumns: 8}
	inc := NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 2000)); err != nil {
		b.Fatal(err)
	}
	for c := 2000; c < 4000; c += 40 {
		if _, err := inc.PartialFit(data.ColSlice(c, c+40)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inc.View()
	}
}
