package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/codec"
	"imrdmd/internal/svd"
)

// PR 9 contract tests for the flat-horizon pipeline: the O(Δ) slow-grid
// cache must be invisible (bit-identical to re-evaluating from scratch),
// the drift log must behave as a bounded ring, the f32 cold tier must not
// perturb the fitted spectrum, the streamed ReconError must match the
// full-clone reference, and v1 snapshots must still restore.

// modesEqual reports whether two nodes carry bit-identical mode sets.
func modesEqual(t *testing.T, ctx string, a, b *Node) {
	t.Helper()
	if len(a.Modes) != len(b.Modes) {
		t.Fatalf("%s: %d modes vs %d", ctx, len(a.Modes), len(b.Modes))
	}
	for j := range a.Modes {
		ma, mb := &a.Modes[j], &b.Modes[j]
		if ma.Lambda != mb.Lambda || ma.Psi != mb.Psi || ma.Amp != mb.Amp {
			t.Fatalf("%s mode %d: scalars differ (%v/%v/%v vs %v/%v/%v)",
				ctx, j, ma.Lambda, ma.Psi, ma.Amp, mb.Lambda, mb.Psi, mb.Amp)
		}
		for i := range ma.Phi {
			if ma.Phi[i] != mb.Phi[i] {
				t.Fatalf("%s mode %d: Phi[%d] differs", ctx, j, i)
			}
		}
	}
}

// treesEqual asserts two analyzers hold bit-identical decompositions.
func treesEqual(t *testing.T, a, b *Incremental) {
	t.Helper()
	ta, tb := a.Tree(), b.Tree()
	if len(ta.Nodes) != len(tb.Nodes) {
		t.Fatalf("node count %d vs %d", len(ta.Nodes), len(tb.Nodes))
	}
	for k := range ta.Nodes {
		na, nb := ta.Nodes[k], tb.Nodes[k]
		if na.Start != nb.Start || na.End != nb.End || na.Level != nb.Level {
			t.Fatalf("node %d window/level differ: [%d,%d)@%d vs [%d,%d)@%d",
				k, na.Start, na.End, na.Level, nb.Start, nb.End, nb.Level)
		}
		modesEqual(t, "node", na, nb)
	}
}

// TestSlowGridCacheBitIdentical: with default options, PartialFit served
// from the cached slow-grid evaluation must produce bit-identical drifts
// and trees to an analyzer whose cache is dropped before every update
// (forcing the fresh full-window evaluation — the pre-PR-9 arithmetic).
func TestSlowGridCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data, _ := multiscale(rng, 10, 1024, 1, 0.1)
	init, batch := 512, 64

	cached := NewIncremental(defaultOpts())
	fresh := NewIncremental(defaultOpts())
	seed := data.ColSlice(0, init)
	if err := cached.InitialFit(seed); err != nil {
		t.Fatal(err)
	}
	if err := fresh.InitialFit(seed.Clone()); err != nil {
		t.Fatal(err)
	}
	for lo := init; lo < data.C; lo += batch {
		hi := lo + batch
		if hi > data.C {
			hi = data.C
		}
		blk := data.ColSlice(lo, hi)
		// Force the reference analyzer down the no-cache fallback path.
		fresh.mu.Lock()
		fresh.invalidateSlowGrid()
		fresh.mu.Unlock()
		sc, err := cached.PartialFit(blk)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := fresh.PartialFit(blk.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if sc.Drift != sf.Drift {
			t.Fatalf("step at %d: cached drift %v != fresh drift %v (must be bit-identical)",
				lo, sc.Drift, sf.Drift)
		}
	}
	treesEqual(t, cached, fresh)
	dc, df := cached.DriftLog(), fresh.DriftLog()
	for i := range dc {
		if dc[i] != df[i] {
			t.Fatalf("drift log entry %d differs: %v vs %v", i, dc[i], df[i])
		}
	}
}

// TestDriftLogRing: past driftLogCap entries the log must behave as a
// ring — bounded length, oldest-first iteration, correct last entry.
func TestDriftLogRing(t *testing.T) {
	inc := NewIncremental(defaultOpts())
	const n = driftLogCap + 357
	for i := 0; i < n; i++ {
		inc.logDrift(float64(i))
	}
	log := inc.DriftLog()
	if len(log) != driftLogCap {
		t.Fatalf("ring length %d, want %d", len(log), driftLogCap)
	}
	for i, v := range log {
		if want := float64(n - driftLogCap + i); v != want {
			t.Fatalf("entry %d = %v, want %v (oldest-first order broken)", i, v, want)
		}
	}
	if last := inc.lastDriftLocked(); last != float64(n-1) {
		t.Fatalf("lastDrift = %v, want %v", last, float64(n-1))
	}
	// While filling, the log is a plain append in insertion order.
	short := NewIncremental(defaultOpts())
	for i := 0; i < 5; i++ {
		short.logDrift(float64(10 + i))
	}
	sl := short.DriftLog()
	if len(sl) != 5 || sl[0] != 10 || sl[4] != 14 || short.lastDriftLocked() != 14 {
		t.Fatalf("filling-phase log wrong: %v", sl)
	}
}

// TestColdTierSpectrumUnchanged: the f32 cold tier stores only history the
// pipeline no longer fits against — every level-1 grid sample and every
// new-window residual is gathered while still hot — so the fitted
// decomposition must be bit-identical with and without ColdHorizon, and
// only raw-data queries (Raw, ReconError) see f32 rounding.
func TestColdTierSpectrumUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	data, _ := multiscale(rng, 8, 1536, 1, 0.1)
	init, batch := 512, 64

	optsCold := defaultOpts()
	optsCold.ColdHorizon = 192
	cold := NewIncremental(optsCold)
	warm := NewIncremental(defaultOpts())
	seed := data.ColSlice(0, init)
	if err := cold.InitialFit(seed); err != nil {
		t.Fatal(err)
	}
	if err := warm.InitialFit(seed.Clone()); err != nil {
		t.Fatal(err)
	}
	for lo := init; lo < data.C; lo += batch {
		blk := data.ColSlice(lo, lo+batch)
		if _, err := cold.PartialFit(blk); err != nil {
			t.Fatal(err)
		}
		if _, err := warm.PartialFit(blk.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	treesEqual(t, cold, warm)

	ms := cold.MemStats()
	if ms.ColdCols == 0 {
		t.Fatal("no columns demoted — cold tier never engaged")
	}
	if ms.Cols != data.C {
		t.Fatalf("MemStats.Cols = %d, want %d", ms.Cols, data.C)
	}
	if ms.ColdBytes == 0 || ms.HotBytes == 0 {
		t.Fatalf("tier byte accounting empty: hot=%d cold=%d", ms.HotBytes, ms.ColdBytes)
	}
	wms := warm.MemStats()
	if wms.ColdCols != 0 || wms.ColdBytes != 0 {
		t.Fatalf("warm analyzer reports cold state: %+v", wms)
	}

	// Raw() must round-trip: hot columns exact, cold columns within one
	// f32 rounding of the ingested values.
	raw := cold.Raw()
	coldCols := ms.ColdCols
	for i := 0; i < data.R; i++ {
		for k := 0; k < data.C; k++ {
			x, got := data.At(i, k), raw.At(i, k)
			if k >= coldCols {
				if got != x {
					t.Fatalf("hot column %d row %d: %v != %v (must be exact)", k, i, got, x)
				}
			} else if got != float64(float32(x)) {
				t.Fatalf("cold column %d row %d: %v != float64(float32(%v))", k, i, got, x)
			}
		}
	}

	// The full-resolution error only picks up f32 rounding on cold raw
	// columns — tiny against the reconstruction error itself.
	ec, ew := cold.ReconError(), warm.ReconError()
	if math.IsNaN(ec) || math.IsInf(ec, 0) {
		t.Fatalf("cold ReconError not finite: %v", ec)
	}
	if rel := math.Abs(ec-ew) / ew; rel > 1e-6 {
		t.Fatalf("cold/warm ReconError diverge: %v vs %v (rel %g)", ec, ew, rel)
	}
}

// TestStreamedReconErrorMatchesReference: the windowed streaming scan must
// reproduce the full-clone reference ‖raw − Reconstruct()‖_F to roundoff,
// including when history spans multiple scan windows.
func TestStreamedReconErrorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	data, _ := multiscale(rng, 6, 512+4*256, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	for lo := 512; lo < data.C; lo += 256 {
		if _, err := inc.PartialFit(data.ColSlice(lo, lo+256)); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Cols() <= reconErrWindow {
		t.Fatalf("test premise: want > %d columns to span multiple scan windows, got %d",
			reconErrWindow, inc.Cols())
	}
	got := inc.ReconError()
	// Reference: one consistent full-resolution pass (the pre-PR-9 shape).
	raw := inc.Raw()
	want := frobDiff(raw, inc.Reconstruct())
	if want == 0 {
		t.Fatal("degenerate reference")
	}
	if rel := math.Abs(got-want) / want; rel > 1e-8 {
		t.Fatalf("streamed ReconError %v vs reference %v (rel %g)", got, want, rel)
	}
}

// TestV1SnapshotRestores: a version-1 stream — flat f64 history, no
// windowing options, unbounded drift log — must decode into a working
// analyzer whose continued updates match the live original bit for bit.
func TestV1SnapshotRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	data, _ := multiscale(rng, 8, 768, 1, 0.1)
	inc := NewIncremental(defaultOpts())
	if err := inc.InitialFit(data.ColSlice(0, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.PartialFit(data.ColSlice(512, 640)); err != nil {
		t.Fatal(err)
	}

	// Hand-encode the PR-8 (version 1) layout from the live state.
	var buf bytes.Buffer
	enc := codec.NewWriterVersion(&buf, 1)
	o := inc.opts
	enc.Float(o.DT)
	enc.Int(o.MaxLevels)
	enc.Int(o.MaxCycles)
	enc.Int(o.NyquistFactor)
	enc.Int(o.Rank)
	enc.Bool(o.UseSVHT)
	enc.Int(o.MinWindow)
	enc.Bool(o.Parallel)
	enc.Int(o.Workers)
	enc.Int(o.BlockColumns)
	enc.String(o.Precision)
	enc.Int(o.Shards)
	enc.Float(inc.DriftThreshold)
	enc.Bool(inc.AsyncRecompute)
	enc.Int(inc.p)
	enc.Dense(inc.hist.Promote()) // v1: one flat f64 history matrix
	enc.Int(inc.stride1)
	enc.Dense(inc.sub1)
	enc.Int(inc.nextSample)
	encodeNode(enc, inc.level1)
	enc.Int(len(inc.segments))
	for _, seg := range inc.segments {
		enc.Int(seg.start)
		enc.Int(seg.end)
		enc.Int(len(seg.nodes))
		for _, nd := range seg.nodes {
			encodeNode(enc, nd)
		}
	}
	enc.Int(inc.updates)
	enc.Int(inc.recomputes)
	enc.Floats(inc.driftLogChrono())
	enc.Int(isvdUnsharded)
	inc.isvd.(*svd.Incremental).Encode(enc)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := DecodeIncremental(&buf)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if restored.Cols() != inc.Cols() || restored.Updates() != inc.Updates() {
		t.Fatalf("restored state mismatch: %d/%d cols, %d/%d updates",
			restored.Cols(), inc.Cols(), restored.Updates(), inc.Updates())
	}
	treesEqual(t, restored, inc)

	// Both continue the stream identically: the restored analyzer's first
	// update takes the fresh-evaluation fallback, which is bit-identical
	// to the live analyzer's cached path.
	blk := data.ColSlice(640, 768)
	sa, err := inc.PartialFit(blk)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := restored.PartialFit(blk.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if sa.Drift != sb.Drift {
		t.Fatalf("post-restore drift %v != live %v (must be bit-identical)", sb.Drift, sa.Drift)
	}
	treesEqual(t, restored, inc)
}
