package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"imrdmd/internal/compute"
	"imrdmd/internal/dmd"
	"imrdmd/internal/mat"
	"imrdmd/internal/shard"
	"imrdmd/internal/svd"
)

// level1SVD is the running level-1 decomposition behind PartialFit: the
// in-process svd.Incremental when Options.Shards ≤ 1 (bit-identical to
// prior releases) or the row-sharded shard.Coordinator above it. The
// mrDMD recursion consumes it through ResultView — the replicated Σ/V
// spectrum plus the (in-process contiguous) sharded U.
type level1SVD interface {
	UpdateBlock(c *mat.Dense, w int)
	AddRows(b *mat.Dense)
	ResultView() *svd.Result
}

// Incremental is the I-mrDMD state machine (paper Algorithm 1, Fig. 1(c)).
//
// After InitialFit over T columns, each PartialFit absorbs T₁ new columns:
//
//  1. The level-1 truncated SVD is updated incrementally (Brand/Kühl) with
//     the newly sampled columns, and the level-1 DMD — hence the slow
//     modes over the full [0, T+T₁) timeline — is recomputed from it.
//  2. All previously computed nodes are demoted one level (Algorithm 1,
//     lines 7–9): the new level 2 is the timeline split at T.
//  3. A fresh mrDMD subtree (levels 2…MaxLevels) is fitted to the new
//     window's residual after subtracting the new level-1 slow part.
//  4. The Frobenius norm of the drift between old and new level-1 slow
//     reconstructions over the old window is measured. If it exceeds
//     DriftThreshold, the old subtrees are recomputed against the new
//     slow part — synchronously, or asynchronously when AsyncRecompute is
//     set (the "embarrassingly parallel" update the paper defers to
//     future work; implemented here).
//
// The PartialFit cost is dominated by the new window's subtree, so it is
// nearly independent of how much history has been absorbed — the property
// behind Table I's flat partial-fit column.
type Incremental struct {
	// DriftThreshold triggers recomputation of pre-existing subtrees when
	// the level-1 slow-mode drift (Frobenius norm over the old window's
	// subsampled grid) exceeds it. Zero disables recomputation.
	DriftThreshold float64
	// AsyncRecompute runs triggered recomputations in background
	// goroutines; Wait blocks until they land.
	AsyncRecompute bool

	opts Options
	p    int

	eng  *compute.Engine    // long-lived worker pool shared by every layer
	ws   *compute.Workspace // pooled scratch shared with the SVD and DMD layers
	lane compute.Lane       // this analyzer's serial async-recompute lane

	mu  sync.Mutex // guards all mutable state below
	raw *mat.Dense // all absorbed data, P×T (kept for recompute and error reporting)

	stride1    int                // level-1 subsample stride, fixed at InitialFit
	sub1       *mat.Dense         // level-1 subsampled snapshots
	isvd       level1SVD          // running SVD of sub1's X part (all but last column)
	coord      *shard.Coordinator // non-nil when Shards > 1 (isvd aliases it)
	nextSample int                // next global column index on the level-1 grid

	level1   *Node
	segments []*segment

	updates    int
	recomputes int
	driftLog   []float64

	wg sync.WaitGroup
}

// segment is a contiguous window whose subtree (levels ≥ 2) was fitted in
// one InitialFit or PartialFit.
type segment struct {
	start, end int
	nodes      []*Node
}

// UpdateStats summarizes one PartialFit.
type UpdateStats struct {
	// Drift is ‖old slow recon − new slow recon‖_F over the old window's
	// level-1 sample grid.
	Drift float64
	// Recomputed reports whether old subtrees were (or are being, if
	// async) recomputed because Drift exceeded the threshold.
	Recomputed bool
	// NewColumns is the number of raw columns absorbed.
	NewColumns int
	// NewSamples is how many of them landed on the level-1 sample grid.
	NewSamples int
}

// NewIncremental creates an I-mrDMD analyzer; call InitialFit before
// PartialFit.
func NewIncremental(opts Options) *Incremental {
	opts = opts.withDefaults()
	return &Incremental{
		opts: opts,
		eng:  opts.engine(),
		ws:   compute.NewWorkspace(),
	}
}

// InitialFit performs the batch mrDMD over the first window and seeds the
// incremental level-1 SVD. Equivalent to Decompose on the same data.
func (inc *Incremental) InitialFit(data *mat.Dense) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.raw != nil {
		return errors.New("core: InitialFit called twice; create a new Incremental")
	}
	if err := inc.opts.Validate(); err != nil {
		return err
	}
	p, t := data.Dims()
	if t < 2 {
		return dmd.ErrTooFewSnapshots
	}
	if data.HasNaN() {
		return errors.New("core: input contains NaN or Inf")
	}
	inc.p = p
	inc.raw = data.Clone()
	inc.stride1 = windowStride(t, inc.opts)
	inc.sub1 = data.Subsample(inc.stride1)
	ns := inc.sub1.C
	inc.nextSample = ((t-1)/inc.stride1 + 1) * inc.stride1
	if ns < 2 {
		return fmt.Errorf("core: level-1 sample grid too small (%d columns)", ns)
	}
	seed := mat.ColSliceWith(inc.ws, inc.sub1, 0, ns-1)
	if inc.opts.Shards > 1 {
		if inc.opts.Shards > p {
			mat.PutDense(inc.ws, seed)
			return fmt.Errorf("core: Options.Shards = %d exceeds the %d sensor rows", inc.opts.Shards, p)
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Shards:    inc.opts.Shards,
			MaxRank:   inc.rankCap(),
			Payload32: inc.opts.Precision == PrecisionMixed,
			Engine:    inc.eng,
			Workspace: inc.ws,
		}, seed)
		if err != nil {
			mat.PutDense(inc.ws, seed)
			return err
		}
		inc.coord = coord
		inc.isvd = coord
	} else {
		inc.isvd = svd.NewIncrementalWith(inc.eng, inc.ws, seed, inc.rankCap())
	}
	mat.PutDense(inc.ws, seed)

	if err := inc.refreshLevel1(); err != nil {
		return err
	}
	// Levels ≥ 2: halves of the residual, exactly as batch mrDMD does.
	resid := inc.residualOf(0, t)
	nodes, err := inc.subtree(resid, 0)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return err
	}
	inc.segments = []*segment{{start: 0, end: t, nodes: nodes}}
	return nil
}

// rankCap bounds the incremental SVD's retained rank so update cost stays
// flat. It comfortably exceeds the slow-mode count at level 1.
func (inc *Incremental) rankCap() int {
	rc := 8 * inc.opts.NyquistFactor * inc.opts.MaxCycles
	if rc < 48 {
		rc = 48
	}
	if inc.opts.Rank > 0 && inc.opts.Rank+8 > rc {
		rc = inc.opts.Rank + 8
	}
	if rc > inc.p {
		rc = inc.p
	}
	return rc
}

// PartialFit absorbs newData (P×T₁) per Algorithm 1.
func (inc *Incremental) PartialFit(newData *mat.Dense) (UpdateStats, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	var stats UpdateStats
	if inc.raw == nil {
		return stats, errors.New("core: PartialFit before InitialFit")
	}
	if newData.R != inc.p {
		return stats, fmt.Errorf("core: PartialFit row mismatch %d vs %d", newData.R, inc.p)
	}
	if newData.C == 0 {
		return stats, nil
	}
	if newData.HasNaN() {
		return stats, errors.New("core: input contains NaN or Inf")
	}
	oldT := inc.raw.C
	// Amortized column growth: with spare capacity only the new columns
	// are written (the full-history copy HStack paid on every PartialFit
	// dominated the ingest profile).
	inc.raw = mat.GrowColsWith(inc.ws, inc.raw, newData)
	newT := inc.raw.C
	stats.NewColumns = newData.C

	// Snapshot the old level-1 slow reconstruction on the old sample grid
	// before the modes move.
	oldNS := inc.sub1.C
	oldSlow := inc.level1SlowOnGrid(oldNS)

	// Absorb new columns that land on the level-1 grid.
	var newCols []int
	for idx := inc.nextSample; idx < newT; idx += inc.stride1 {
		newCols = append(newCols, idx)
	}
	if len(newCols) > 0 {
		// Raw borrow: the gather loop below assigns every element.
		block := mat.GetDenseRaw(inc.ws, inc.p, len(newCols))
		for i := 0; i < inc.p; i++ {
			rrow := inc.raw.Row(i)
			brow := block.Row(i)
			for k, idx := range newCols {
				brow[k] = rrow[idx]
			}
		}
		inc.sub1 = mat.GrowColsWith(inc.ws, inc.sub1, block)
		mat.PutDense(inc.ws, block)
		inc.nextSample = newCols[len(newCols)-1] + inc.stride1
		// The running SVD tracks X = sub1[:, :end-1]: the previous last
		// column enters X now, and the newest column is held out as the
		// final Y target. The update block is a zero-copy column view —
		// the SVD layer's kernels are stride-aware end to end.
		ns := inc.sub1.C
		inc.isvd.UpdateBlock(mat.ColsView(inc.sub1, oldNS-1, ns-1), inc.opts.BlockColumns)
	}
	stats.NewSamples = len(newCols)

	if err := inc.refreshLevel1(); err != nil {
		return stats, err
	}

	// Drift of the slow part over the old window (Algorithm 1's update
	// criterion). Measured on the subsampled grid so the check is O(ns),
	// not O(T).
	newSlow := inc.level1SlowOnGrid(oldNS)
	stats.Drift = frobDiff(oldSlow, newSlow)
	mat.PutDense(inc.ws, oldSlow)
	mat.PutDense(inc.ws, newSlow)
	inc.driftLog = append(inc.driftLog, stats.Drift)

	// Demote every pre-existing node one level: the new level 2 is the
	// timeline split at oldT.
	for _, seg := range inc.segments {
		for _, nd := range seg.nodes {
			nd.Level++
		}
	}

	// Fresh subtree over the new window's residual.
	resid := inc.residualOf(oldT, newT)
	nodes, err := inc.subtree(resid, oldT)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return stats, err
	}
	inc.segments = append(inc.segments, &segment{start: oldT, end: newT, nodes: nodes})
	inc.updates++

	if inc.DriftThreshold > 0 && stats.Drift > inc.DriftThreshold {
		stats.Recomputed = true
		inc.recomputes++
		old := inc.segments[:len(inc.segments)-1]
		if inc.AsyncRecompute {
			// Recomputes run on this analyzer's own background lane:
			// serially in submission order, each parallelizing internally
			// through the engine pool, so Workers still bounds total
			// concurrency — and a recompute blocked on this analyzer's
			// mutex cannot stall other analyzers sharing the engine.
			for _, seg := range old {
				seg := seg
				inc.wg.Add(1)
				inc.lane.Go(func() {
					defer inc.wg.Done()
					inc.recomputeSegment(seg)
				})
			}
		} else {
			for _, seg := range old {
				inc.recomputeSegmentLocked(seg)
			}
		}
	}
	return stats, nil
}

// recomputeSegment re-derives a segment's subtree against the current
// level-1 slow part (async path: takes the lock itself).
func (inc *Incremental) recomputeSegment(seg *segment) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.recomputeSegmentLocked(seg)
}

func (inc *Incremental) recomputeSegmentLocked(seg *segment) {
	resid := inc.residualOf(seg.start, seg.end)
	nodes, err := inc.subtree(resid, seg.start)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return // keep the stale subtree; reconstruction degrades gracefully
	}
	// Preserve the demotion depth the segment has accumulated.
	extra := 0
	if len(seg.nodes) > 0 {
		minOld := seg.nodes[0].Level
		for _, nd := range seg.nodes {
			if nd.Level < minOld {
				minOld = nd.Level
			}
		}
		extra = minOld - 2
	}
	if extra > 0 {
		for _, nd := range nodes {
			nd.Level += extra
		}
	}
	seg.nodes = nodes
}

// subtree fits the levels ≥ 2 mrDMD tree on a residual window: the window
// is split in half and each half is decomposed starting at level 2,
// matching the batch recursion shape.
func (inc *Incremental) subtree(resid *mat.Dense, start int) ([]*Node, error) {
	if inc.opts.MaxLevels < 2 || resid.C < 2*inc.opts.MinWindow {
		return nil, nil
	}
	return splitDecompose(resid, 2, start, inc.opts, inc.eng, inc.ws)
}

// frobDiff returns ‖a − b‖_F without materializing the difference.
func frobDiff(a, b *mat.Dense) float64 {
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// refreshLevel1 recomputes the level-1 DMD and slow modes from the
// incremental SVD state.
func (inc *Incremental) refreshLevel1() error {
	t := inc.raw.C
	// The view is read-only and consumed before the next isvd update, so
	// no defensive clone of the (large) U/V factors is needed.
	res := inc.isvd.ResultView()
	dec, err := dmd.FromSVD(res, inc.sub1, dmd.Options{
		DT:      float64(inc.stride1) * inc.opts.DT,
		Rank:    inc.opts.Rank,
		UseSVHT: inc.opts.UseSVHT,
		Engine:  inc.eng,
		Ws:      inc.ws,
	})
	if err != nil {
		return err
	}
	rho := float64(inc.opts.MaxCycles) / (float64(t) * inc.opts.DT)
	slow, _ := dmd.SlowModes(dec.Modes, rho)
	inc.level1 = &Node{
		Level:       1,
		Start:       0,
		End:         t,
		Stride:      inc.stride1,
		Modes:       slow,
		NumAllModes: len(dec.Modes),
	}
	return nil
}

// level1SlowOnGrid evaluates the level-1 slow reconstruction on the first
// ns points of the level-1 sample grid.
func (inc *Incremental) level1SlowOnGrid(ns int) *mat.Dense {
	times := inc.ws.GetF64(ns)
	for k := range times {
		times[k] = float64(k*inc.stride1) * inc.opts.DT
	}
	out := mat.GetDenseRaw(inc.ws, inc.p, ns) // ReconstructModesIntoWith zeroes it
	dmd.ReconstructModesIntoWith(inc.eng, inc.ws, out, inc.level1.Modes, times)
	inc.ws.PutF64(times)
	return out
}

// residualOf returns raw[:, lo:hi] minus the level-1 slow reconstruction
// over that window, in a workspace-borrowed matrix the caller must
// PutDense back.
func (inc *Incremental) residualOf(lo, hi int) *mat.Dense {
	if len(inc.level1.Modes) == 0 {
		return mat.ColSliceWith(inc.ws, inc.raw, lo, hi)
	}
	times := inc.ws.GetF64(hi - lo)
	for k := range times {
		times[k] = float64(lo+k) * inc.opts.DT
	}
	// Evaluate the reconstruction, then flip it into the residual in the
	// same buffer: one raw-window read and one write instead of a window
	// copy plus a separate read-modify-write subtraction pass.
	resid := mat.GetDenseRaw(inc.ws, inc.p, hi-lo)
	dmd.ReconstructModesIntoWith(inc.eng, inc.ws, resid, inc.level1.Modes, times)
	for i := 0; i < inc.p; i++ {
		raw := inc.raw.Row(i)[lo:hi]
		row := resid.Row(i)
		for k := range row {
			row[k] = raw[k] - row[k]
		}
	}
	inc.ws.PutF64(times)
	return resid
}

// Wait blocks until all asynchronous recomputations have landed.
func (inc *Incremental) Wait() { inc.wg.Wait() }

// Tree snapshots the current decomposition as a Tree (level-1 node plus
// every segment subtree), usable with all Tree methods.
func (inc *Incremental) Tree() *Tree {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	nodes := []*Node{cloneNode(inc.level1)}
	for _, seg := range inc.segments {
		for _, nd := range seg.nodes {
			nodes = append(nodes, cloneNode(nd))
		}
	}
	return &Tree{Nodes: nodes, P: inc.p, T: inc.raw.C, Opts: inc.opts}
}

func cloneNode(n *Node) *Node {
	c := *n
	c.Modes = append([]dmd.Mode(nil), n.Modes...)
	return &c
}

// Reconstruct returns the current I-mrDMD approximation of all absorbed
// data.
func (inc *Incremental) Reconstruct() *mat.Dense {
	return inc.Tree().Reconstruct()
}

// ReconError returns ‖raw − Reconstruct()‖_F over all absorbed data.
func (inc *Incremental) ReconError() float64 {
	inc.mu.Lock()
	raw := inc.raw.Clone()
	inc.mu.Unlock()
	return mat.Sub(raw, inc.Reconstruct()).FrobNorm()
}

// Raw returns a copy of all absorbed data (useful for comparisons).
func (inc *Incremental) Raw() *mat.Dense {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.raw.Clone()
}

// RefitBatch runs batch mrDMD over everything absorbed so far — the
// "without our incremental approach" comparator in §IV and Q2.
func (inc *Incremental) RefitBatch() (*Tree, error) {
	return Decompose(inc.Raw(), inc.opts)
}

// Cols returns the number of absorbed columns.
func (inc *Incremental) Cols() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.raw == nil {
		return 0
	}
	return inc.raw.C
}

// Updates returns how many PartialFits have been applied.
func (inc *Incremental) Updates() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.updates
}

// Recomputes returns how many drift-triggered recomputations have run.
func (inc *Incremental) Recomputes() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.recomputes
}

// ShardStats reports the sharded level-1 SVD's transport accounting
// (collectives, payload sizes, bytes). ok is false when Shards ≤ 1 or
// before InitialFit — the unsharded path has no transport seam.
func (inc *Incremental) ShardStats() (st shard.Stats, ok bool) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.coord == nil {
		return shard.Stats{}, false
	}
	return inc.coord.Stats(), true
}

// DriftLog returns the drift measured at each PartialFit.
func (inc *Incremental) DriftLog() []float64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return append([]float64(nil), inc.driftLog...)
}
