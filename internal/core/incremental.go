package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"imrdmd/internal/compute"
	"imrdmd/internal/dmd"
	"imrdmd/internal/mat"
	"imrdmd/internal/shard"
	"imrdmd/internal/svd"
)

// level1SVD is the running level-1 decomposition behind PartialFit: the
// in-process svd.Incremental when Options.Shards ≤ 1 (bit-identical to
// prior releases) or the row-sharded shard.Coordinator above it. The
// mrDMD recursion consumes it through ResultView — the replicated Σ/V
// spectrum plus the (in-process contiguous) sharded U.
type level1SVD interface {
	UpdateBlock(c *mat.Dense, w int)
	AddRows(b *mat.Dense)
	ResultView() *svd.Result
}

// Incremental is the I-mrDMD state machine (paper Algorithm 1, Fig. 1(c)).
//
// After InitialFit over T columns, each PartialFit absorbs T₁ new columns:
//
//  1. The level-1 truncated SVD is updated incrementally (Brand/Kühl) with
//     the newly sampled columns, and the level-1 DMD — hence the slow
//     modes over the full [0, T+T₁) timeline — is recomputed from it.
//  2. All previously computed nodes are demoted one level (Algorithm 1,
//     lines 7–9): the new level 2 is the timeline split at T.
//  3. A fresh mrDMD subtree (levels 2…MaxLevels) is fitted to the new
//     window's residual after subtracting the new level-1 slow part.
//  4. The Frobenius norm of the drift between old and new level-1 slow
//     reconstructions over the old window is measured. If it exceeds
//     DriftThreshold, the old subtrees are recomputed against the new
//     slow part — synchronously, or asynchronously when AsyncRecompute is
//     set (the "embarrassingly parallel" update the paper defers to
//     future work; implemented here).
//
// The PartialFit cost is dominated by the new window's subtree, so it is
// nearly independent of how much history has been absorbed — the property
// behind Table I's flat partial-fit column.
type Incremental struct {
	// DriftThreshold triggers recomputation of pre-existing subtrees when
	// the level-1 slow-mode drift (Frobenius norm over the old window's
	// subsampled grid) exceeds it. Zero disables recomputation.
	DriftThreshold float64
	// AsyncRecompute runs triggered recomputations in background
	// goroutines; Wait blocks until they land.
	AsyncRecompute bool

	opts Options
	p    int

	eng  *compute.Engine    // long-lived worker pool shared by every layer
	ws   *compute.Workspace // pooled scratch shared with the SVD and DMD layers
	lane compute.Lane       // this analyzer's serial async-recompute lane

	mu sync.Mutex // guards all mutable state below
	// hist is all absorbed data, P×T (kept for recompute and error
	// reporting): a trailing float64 hot window plus, when
	// Options.ColdHorizon is set, float32 chunks for older columns.
	hist *mat.TieredCols

	stride1    int                // level-1 subsample stride, fixed at InitialFit
	sub1       *mat.Dense         // level-1 subsampled snapshots
	isvd       level1SVD          // running SVD of sub1's X part (all but last column)
	coord      *shard.Coordinator // non-nil when Shards > 1 (isvd aliases it)
	nextSample int                // next global column index on the level-1 grid

	level1   *Node
	segments []*segment

	// slowGrid caches the level-1 slow reconstruction over grid columns
	// [slowGridLo, sub1.C), built at the end of the previous PartialFit so
	// the next one starts from it instead of re-evaluating the grid — the
	// O(Δ) side of the drift pipeline. ws-borrowed and packed; nil after
	// restore or AddSensors (the next PartialFit falls back to one fresh
	// evaluation, arithmetic unchanged). Never serialized.
	slowGrid   *mat.Dense
	slowGridLo int

	updates    int
	recomputes int
	// driftLog is a bounded ring of the last driftLogCap per-PartialFit
	// drift values: driftPos is the next write slot once the ring is full
	// (while filling, entries are in insertion order and driftPos ==
	// len(driftLog)).
	driftLog []float64
	driftPos int

	wg sync.WaitGroup
}

// driftLogCap bounds the drift ring: PartialFit appends one float forever
// and every snapshot serializes the log, so an uncapped log is an O(T)
// term in both resident bytes and snapshot size. 1024 entries cover far
// more history than any drift diagnostic reads.
const driftLogCap = 1024

// segment is a contiguous window whose subtree (levels ≥ 2) was fitted in
// one InitialFit or PartialFit.
type segment struct {
	start, end int
	nodes      []*Node
}

// UpdateStats summarizes one PartialFit.
type UpdateStats struct {
	// Drift is ‖old slow recon − new slow recon‖_F over the old window's
	// level-1 sample grid (the trailing Options.DriftWindow grid columns
	// of it when that knob is set).
	Drift float64
	// Recomputed reports whether old subtrees were (or are being, if
	// async) recomputed because Drift exceeded the threshold.
	Recomputed bool
	// NewColumns is the number of raw columns absorbed.
	NewColumns int
	// NewSamples is how many of them landed on the level-1 sample grid.
	NewSamples int
}

// NewIncremental creates an I-mrDMD analyzer; call InitialFit before
// PartialFit.
func NewIncremental(opts Options) *Incremental {
	opts = opts.withDefaults()
	return &Incremental{
		opts: opts,
		eng:  opts.engine(),
		ws:   compute.NewWorkspace(),
	}
}

// InitialFit performs the batch mrDMD over the first window and seeds the
// incremental level-1 SVD. Equivalent to Decompose on the same data.
func (inc *Incremental) InitialFit(data *mat.Dense) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.hist != nil {
		return errors.New("core: InitialFit called twice; create a new Incremental")
	}
	if err := inc.opts.Validate(); err != nil {
		return err
	}
	p, t := data.Dims()
	if t < 2 {
		return dmd.ErrTooFewSnapshots
	}
	if data.HasNaN() {
		return errors.New("core: input contains NaN or Inf")
	}
	inc.p = p
	inc.hist = mat.NewTieredCols(data.Clone())
	inc.stride1 = windowStride(t, inc.opts)
	inc.sub1 = data.Subsample(inc.stride1)
	ns := inc.sub1.C
	inc.nextSample = ((t-1)/inc.stride1 + 1) * inc.stride1
	if ns < 2 {
		return fmt.Errorf("core: level-1 sample grid too small (%d columns)", ns)
	}
	seed := mat.ColSliceWith(inc.ws, inc.sub1, 0, ns-1)
	if inc.opts.Shards > 1 {
		if inc.opts.Shards > p {
			mat.PutDense(inc.ws, seed)
			return fmt.Errorf("core: Options.Shards = %d exceeds the %d sensor rows", inc.opts.Shards, p)
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Shards:    inc.opts.Shards,
			MaxRank:   inc.rankCap(),
			Payload32: inc.opts.Precision == PrecisionMixed,
			Engine:    inc.eng,
			Workspace: inc.ws,
		}, seed)
		if err != nil {
			mat.PutDense(inc.ws, seed)
			return err
		}
		inc.coord = coord
		inc.isvd = coord
	} else {
		inc.isvd = svd.NewIncrementalWith(inc.eng, inc.ws, seed, inc.rankCap())
	}
	mat.PutDense(inc.ws, seed)

	if err := inc.refreshLevel1(); err != nil {
		return err
	}
	// Levels ≥ 2: halves of the residual, exactly as batch mrDMD does.
	resid := inc.residualOf(0, t)
	nodes, err := inc.subtree(resid, 0)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return err
	}
	inc.segments = []*segment{{start: 0, end: t, nodes: nodes}}
	inc.rebuildSlowGridFresh()
	inc.demoteLocked()
	return nil
}

// driftLo returns the first grid column of the drift window for a grid of
// ns columns: 0 (full grid) unless Options.DriftWindow bounds it.
func (inc *Incremental) driftLo(ns int) int {
	if w := inc.opts.DriftWindow; w > 0 && w < ns {
		return ns - w
	}
	return 0
}

// demoteLocked moves raw columns older than Options.ColdHorizon to the
// f32 cold tier. Runs at the end of InitialFit/PartialFit, after every
// same-call consumer of exact history (residual fit, sync recompute) has
// read; async recomputes scheduled for later may observe demoted columns,
// carrying one f32 rounding into the refit of an old window — part of the
// documented contract of the (non-default) cold tier.
func (inc *Incremental) demoteLocked() {
	h := inc.opts.ColdHorizon
	if h <= 0 {
		return
	}
	// Never demote inside the level-1 sampling reach: the next update
	// gathers grid columns up to one stride behind the tail, and those
	// samples must enter sub1 exact.
	if h < 2*inc.stride1 {
		h = 2 * inc.stride1
	}
	inc.hist.Demote(h)
}

// invalidateSlowGrid drops the cached slow-grid evaluation (modes or
// sensor dimension changed in a way the Δ-extension cannot absorb).
func (inc *Incremental) invalidateSlowGrid() {
	if inc.slowGrid != nil {
		mat.PutDense(inc.ws, inc.slowGrid)
		inc.slowGrid = nil
	}
}

// rebuildSlowGridFresh evaluates the slow-grid cache from scratch over
// the current drift window, in the evaluation form a full fresh
// evaluation would pick — the state the next PartialFit extends.
func (inc *Incremental) rebuildSlowGridFresh() {
	inc.invalidateSlowGrid()
	ns := inc.sub1.C
	lo := inc.driftLo(ns)
	inc.slowGrid = inc.level1SlowOnGridRange(lo, ns,
		dmd.ReconGemmForm(inc.p, ns-lo, len(inc.level1.Modes)))
	inc.slowGridLo = lo
}

// rankCap bounds the incremental SVD's retained rank so update cost stays
// flat. It comfortably exceeds the slow-mode count at level 1.
func (inc *Incremental) rankCap() int {
	rc := 8 * inc.opts.NyquistFactor * inc.opts.MaxCycles
	if rc < 48 {
		rc = 48
	}
	if inc.opts.Rank > 0 && inc.opts.Rank+8 > rc {
		rc = inc.opts.Rank + 8
	}
	if rc > inc.p {
		rc = inc.p
	}
	return rc
}

// PartialFit absorbs newData (P×T₁) per Algorithm 1.
func (inc *Incremental) PartialFit(newData *mat.Dense) (UpdateStats, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	var stats UpdateStats
	if inc.hist == nil {
		return stats, errors.New("core: PartialFit before InitialFit")
	}
	if newData.R != inc.p {
		return stats, fmt.Errorf("core: PartialFit row mismatch %d vs %d", newData.R, inc.p)
	}
	if newData.C == 0 {
		return stats, nil
	}
	if newData.HasNaN() {
		return stats, errors.New("core: input contains NaN or Inf")
	}
	oldT := inc.hist.Cols()
	// Amortized column growth: with spare capacity only the new columns
	// are written (the full-history copy HStack paid on every PartialFit
	// dominated the ingest profile).
	inc.hist.Grow(inc.ws, newData)
	newT := inc.hist.Cols()
	stats.NewColumns = newData.C

	// The old level-1 slow reconstruction on the old sample grid (drift
	// window) before the modes move: taken from the cache the previous
	// update left — the values are bit-identical to a fresh evaluation,
	// which the first update after a restore or AddSensors falls back to.
	oldNS := inc.sub1.C
	oldLo := inc.driftLo(oldNS)
	var oldSlow *mat.Dense
	if inc.slowGrid != nil && inc.slowGridLo == oldLo && inc.slowGrid.C == oldNS-oldLo {
		oldSlow = inc.slowGrid
		inc.slowGrid = nil
	} else {
		inc.invalidateSlowGrid()
		oldSlow = inc.level1SlowOnGridRange(oldLo, oldNS,
			dmd.ReconGemmForm(inc.p, oldNS-oldLo, len(inc.level1.Modes)))
	}

	// Absorb new columns that land on the level-1 grid.
	var newCols []int
	for idx := inc.nextSample; idx < newT; idx += inc.stride1 {
		newCols = append(newCols, idx)
	}
	if len(newCols) > 0 {
		block := inc.hist.GatherCols(inc.ws, newCols)
		inc.sub1 = mat.GrowColsWith(inc.ws, inc.sub1, block)
		mat.PutDense(inc.ws, block)
		inc.nextSample = newCols[len(newCols)-1] + inc.stride1
		// The running SVD tracks X = sub1[:, :end-1]: the previous last
		// column enters X now, and the newest column is held out as the
		// final Y target. The update block is a zero-copy column view —
		// the SVD layer's kernels are stride-aware end to end.
		ns := inc.sub1.C
		inc.isvd.UpdateBlock(mat.ColsView(inc.sub1, oldNS-1, ns-1), inc.opts.BlockColumns)
	}
	stats.NewSamples = len(newCols)

	if err := inc.refreshLevel1(); err != nil {
		mat.PutDense(inc.ws, oldSlow)
		return stats, err
	}

	// Drift of the slow part over the old window (Algorithm 1's update
	// criterion). Measured on the subsampled grid — bounded further by
	// DriftWindow — so the check is O(window), not O(T).
	newSlow := inc.level1SlowOnGridRange(oldLo, oldNS,
		dmd.ReconGemmForm(inc.p, oldNS-oldLo, len(inc.level1.Modes)))
	stats.Drift = frobDiff(oldSlow, newSlow)
	mat.PutDense(inc.ws, oldSlow)
	inc.logDrift(stats.Drift)
	// newSlow becomes the next update's cache, extended by the Δ new grid
	// columns (consumes newSlow).
	inc.rebuildSlowGridFrom(newSlow, oldLo, oldNS)

	// Demote every pre-existing node one level: the new level 2 is the
	// timeline split at oldT.
	for _, seg := range inc.segments {
		for _, nd := range seg.nodes {
			nd.Level++
		}
	}

	// Fresh subtree over the new window's residual.
	resid := inc.residualOf(oldT, newT)
	nodes, err := inc.subtree(resid, oldT)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return stats, err
	}
	inc.segments = append(inc.segments, &segment{start: oldT, end: newT, nodes: nodes})
	inc.updates++

	if inc.DriftThreshold > 0 && stats.Drift > inc.DriftThreshold {
		stats.Recomputed = true
		inc.recomputes++
		old := inc.segments[:len(inc.segments)-1]
		if inc.AsyncRecompute {
			// Recomputes run on this analyzer's own background lane:
			// serially in submission order, each parallelizing internally
			// through the engine pool, so Workers still bounds total
			// concurrency — and a recompute blocked on this analyzer's
			// mutex cannot stall other analyzers sharing the engine.
			for _, seg := range old {
				seg := seg
				inc.wg.Add(1)
				inc.lane.Go(func() {
					defer inc.wg.Done()
					inc.recomputeSegment(seg)
				})
			}
		} else {
			for _, seg := range old {
				inc.recomputeSegmentLocked(seg)
			}
		}
	}
	inc.demoteLocked()
	return stats, nil
}

// rebuildSlowGridFrom turns newSlow — the just-measured slow evaluation
// over grid columns [oldLo, oldNS) — into the cache for the next update,
// covering [driftLo(ns), ns): the overlap is copied and only the Δ new
// grid columns are evaluated, in the form a from-scratch full-width
// evaluation would use, so per-column results stay bit-identical to one.
// Consumes newSlow. On a form crossing (the r·t·p volume stepping over
// the GEMM threshold, or the retained mode count changing it) the whole
// window is re-evaluated once in the target form.
func (inc *Incremental) rebuildSlowGridFrom(newSlow *mat.Dense, oldLo, oldNS int) {
	ns := inc.sub1.C
	newLo := inc.driftLo(ns)
	r := len(inc.level1.Modes)
	wantGemm := dmd.ReconGemmForm(inc.p, ns-newLo, r)
	haveGemm := dmd.ReconGemmForm(inc.p, oldNS-oldLo, r)
	if wantGemm != haveGemm || newLo < oldLo || newLo >= oldNS {
		mat.PutDense(inc.ws, newSlow)
		inc.rebuildSlowGridFresh()
		return
	}
	if ns == oldNS && newLo == oldLo {
		inc.slowGrid, inc.slowGridLo = newSlow, newLo
		return
	}
	buf := mat.GetDenseRaw(inc.ws, inc.p, ns-newLo)
	keep := oldNS - newLo
	for i := 0; i < inc.p; i++ {
		copy(buf.Row(i)[:keep], newSlow.Row(i)[newLo-oldLo:oldNS-oldLo])
	}
	mat.PutDense(inc.ws, newSlow)
	if ns > oldNS {
		ext := mat.ColsView(buf, keep, ns-newLo)
		times := inc.ws.GetF64(ns - oldNS)
		for k := range times {
			times[k] = float64((oldNS+k)*inc.stride1) * inc.opts.DT
		}
		dmd.ReconstructModesIntoFormWith(inc.eng, inc.ws, ext, inc.level1.Modes, times, wantGemm)
		inc.ws.PutF64(times)
	}
	inc.slowGrid, inc.slowGridLo = buf, newLo
}

// logDrift appends to the bounded drift ring.
func (inc *Incremental) logDrift(d float64) {
	if len(inc.driftLog) < driftLogCap {
		inc.driftLog = append(inc.driftLog, d)
		inc.driftPos = len(inc.driftLog) % driftLogCap
		return
	}
	inc.driftLog[inc.driftPos] = d
	inc.driftPos = (inc.driftPos + 1) % driftLogCap
}

// lastDriftLocked returns the most recent drift (0 before any update).
func (inc *Incremental) lastDriftLocked() float64 {
	n := len(inc.driftLog)
	if n == 0 {
		return 0
	}
	return inc.driftLog[(inc.driftPos-1+n)%n]
}

// driftLogChrono returns the ring's entries oldest-first.
func (inc *Incremental) driftLogChrono() []float64 {
	n := len(inc.driftLog)
	out := make([]float64, 0, n)
	if n < driftLogCap {
		return append(out, inc.driftLog...)
	}
	out = append(out, inc.driftLog[inc.driftPos:]...)
	return append(out, inc.driftLog[:inc.driftPos]...)
}

// recomputeSegment re-derives a segment's subtree against the current
// level-1 slow part (async path: takes the lock itself).
func (inc *Incremental) recomputeSegment(seg *segment) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.recomputeSegmentLocked(seg)
}

func (inc *Incremental) recomputeSegmentLocked(seg *segment) {
	resid := inc.residualOf(seg.start, seg.end)
	nodes, err := inc.subtree(resid, seg.start)
	mat.PutDense(inc.ws, resid)
	if err != nil {
		return // keep the stale subtree; reconstruction degrades gracefully
	}
	// Preserve the demotion depth the segment has accumulated.
	extra := 0
	if len(seg.nodes) > 0 {
		minOld := seg.nodes[0].Level
		for _, nd := range seg.nodes {
			if nd.Level < minOld {
				minOld = nd.Level
			}
		}
		extra = minOld - 2
	}
	if extra > 0 {
		for _, nd := range nodes {
			nd.Level += extra
		}
	}
	seg.nodes = nodes
}

// subtree fits the levels ≥ 2 mrDMD tree on a residual window: the window
// is split in half and each half is decomposed starting at level 2,
// matching the batch recursion shape.
func (inc *Incremental) subtree(resid *mat.Dense, start int) ([]*Node, error) {
	if inc.opts.MaxLevels < 2 || resid.C < 2*inc.opts.MinWindow {
		return nil, nil
	}
	return splitDecompose(resid, 2, start, inc.opts, inc.eng, inc.ws)
}

// frobDiff returns ‖a − b‖_F without materializing the difference.
func frobDiff(a, b *mat.Dense) float64 {
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// refreshLevel1 recomputes the level-1 DMD and slow modes from the
// incremental SVD state.
func (inc *Incremental) refreshLevel1() error {
	t := inc.hist.Cols()
	// The view is read-only and consumed before the next isvd update, so
	// no defensive clone of the (large) U/V factors is needed.
	res := inc.isvd.ResultView()
	dec, err := dmd.FromSVD(res, inc.sub1, dmd.Options{
		DT:              float64(inc.stride1) * inc.opts.DT,
		Rank:            inc.opts.Rank,
		UseSVHT:         inc.opts.UseSVHT,
		AmplitudeWindow: inc.opts.AmplitudeWindow,
		Engine:          inc.eng,
		Ws:              inc.ws,
	})
	if err != nil {
		return err
	}
	rho := float64(inc.opts.MaxCycles) / (float64(t) * inc.opts.DT)
	slow, _ := dmd.SlowModes(dec.Modes, rho)
	inc.level1 = &Node{
		Level:       1,
		Start:       0,
		End:         t,
		Stride:      inc.stride1,
		Modes:       slow,
		NumAllModes: len(dec.Modes),
	}
	return nil
}

// level1SlowOnGridRange evaluates the level-1 slow reconstruction on grid
// columns [lo, hi) of the level-1 sample grid, in the given evaluation
// form (see dmd.ReconGemmForm — pinning the form is what keeps partial
// evaluations bit-identical to full ones).
func (inc *Incremental) level1SlowOnGridRange(lo, hi int, gemm bool) *mat.Dense {
	n := hi - lo
	times := inc.ws.GetF64(n)
	for k := range times {
		times[k] = float64((lo+k)*inc.stride1) * inc.opts.DT
	}
	out := mat.GetDenseRaw(inc.ws, inc.p, n) // the eval overwrites every element
	dmd.ReconstructModesIntoFormWith(inc.eng, inc.ws, out, inc.level1.Modes, times, gemm)
	inc.ws.PutF64(times)
	return out
}

// residualOf returns history columns [lo, hi) minus the level-1 slow
// reconstruction over that window, in a workspace-borrowed matrix the
// caller must PutDense back.
func (inc *Incremental) residualOf(lo, hi int) *mat.Dense {
	if len(inc.level1.Modes) == 0 {
		// Copy, not view: subtree consumers mutate the residual in place.
		return inc.hist.CopyWindow(inc.ws, lo, hi)
	}
	times := inc.ws.GetF64(hi - lo)
	for k := range times {
		times[k] = float64(lo+k) * inc.opts.DT
	}
	// Evaluate the reconstruction, then flip it into the residual in the
	// same buffer: one raw-window read and one write instead of a window
	// copy plus a separate read-modify-write subtraction pass. The window
	// is a zero-copy view while the span is hot; cold spans widen through
	// a borrowed copy.
	resid := mat.GetDenseRaw(inc.ws, inc.p, hi-lo)
	dmd.ReconstructModesIntoWith(inc.eng, inc.ws, resid, inc.level1.Modes, times)
	win := inc.hist.Window(inc.ws, lo, hi)
	for i := 0; i < inc.p; i++ {
		raw := win.Row(i)
		row := resid.Row(i)
		for k := range row {
			row[k] = raw[k] - row[k]
		}
	}
	mat.PutDense(inc.ws, win)
	inc.ws.PutF64(times)
	return resid
}

// Wait blocks until all asynchronous recomputations have landed.
func (inc *Incremental) Wait() { inc.wg.Wait() }

// Tree snapshots the current decomposition as a Tree (level-1 node plus
// every segment subtree), usable with all Tree methods.
func (inc *Incremental) Tree() *Tree {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	nodes := []*Node{cloneNode(inc.level1)}
	for _, seg := range inc.segments {
		for _, nd := range seg.nodes {
			nodes = append(nodes, cloneNode(nd))
		}
	}
	return &Tree{Nodes: nodes, P: inc.p, T: inc.hist.Cols(), Opts: inc.opts}
}

func cloneNode(n *Node) *Node {
	c := *n
	c.Modes = append([]dmd.Mode(nil), n.Modes...)
	return &c
}

// Reconstruct returns the current I-mrDMD approximation of all absorbed
// data.
func (inc *Incremental) Reconstruct() *mat.Dense {
	return inc.Tree().Reconstruct()
}

// ReconError returns ‖raw − Reconstruct()‖_F over all absorbed data,
// streamed per column window: the lock is taken briefly to pin the node
// set and again per window to copy at most reconErrWindow history
// columns, so the hold time — and the scratch footprint — stays O(P·w)
// instead of the former full P×T clone. If the sensor dimension changes
// mid-scan (a concurrent AddSensors), the scan restarts against the new
// state.
func (inc *Incremental) ReconError() float64 {
	const maxRestarts = 3
	for attempt := 0; ; attempt++ {
		if s, ok := inc.reconErrorStreamed(); ok || attempt == maxRestarts {
			if ok {
				return s
			}
			// Pathological churn: fall back to one consistent full pass.
			inc.mu.Lock()
			raw := inc.hist.Promote()
			t := &Tree{Nodes: treeNodesLocked(inc), P: inc.p, T: inc.hist.Cols(), Opts: inc.opts}
			inc.mu.Unlock()
			return mat.Sub(raw, t.Reconstruct()).FrobNorm()
		}
	}
}

// reconErrWindow is the per-step column span of the streamed ReconError:
// wide enough to keep the node evaluations on the GEMM tier, small enough
// that the per-window lock hold and scratch stay modest.
const reconErrWindow = 1024

func treeNodesLocked(inc *Incremental) []*Node {
	nodes := []*Node{cloneNode(inc.level1)}
	for _, seg := range inc.segments {
		for _, nd := range seg.nodes {
			nodes = append(nodes, cloneNode(nd))
		}
	}
	return nodes
}

// reconErrorStreamed runs one streamed scan; ok is false when the state
// shifted under it (sensor count or shrunk history) and a restart is
// needed.
func (inc *Incremental) reconErrorStreamed() (float64, bool) {
	inc.mu.Lock()
	if inc.hist == nil {
		inc.mu.Unlock()
		return 0, true
	}
	p, t := inc.hist.Rows(), inc.hist.Cols()
	nodes := treeNodesLocked(inc)
	dt := inc.opts.DT
	inc.mu.Unlock()

	var s float64
	for lo := 0; lo < t; lo += reconErrWindow {
		hi := lo + reconErrWindow
		if hi > t {
			hi = t
		}
		// Window copy under the lock (a view could be recycled by a
		// concurrent Grow/Demote the moment the lock drops), evaluation
		// and accumulation outside it.
		inc.mu.Lock()
		if inc.hist.Rows() != p || inc.hist.Cols() < t {
			inc.mu.Unlock()
			return 0, false
		}
		chunk := inc.hist.CopyWindow(inc.ws, lo, hi)
		inc.mu.Unlock()

		acc := mat.GetDense(inc.ws, p, hi-lo) // zeroed accumulator
		for _, nd := range nodes {
			addNodeWindow(inc.eng, inc.ws, acc, nd, lo, hi, dt)
		}
		for i := 0; i < p; i++ {
			crow := chunk.Row(i)
			for k, a := range acc.Row(i) {
				d := crow[k] - a
				s += d * d
			}
		}
		mat.PutDense(inc.ws, acc)
		mat.PutDense(inc.ws, chunk)
	}
	return math.Sqrt(s), true
}

// addNodeWindow accumulates nd's reconstruction restricted to absolute
// columns [lo, hi) into acc (P×(hi−lo) covering that span) — the same
// arithmetic as Tree.Reconstruct's addNodeRecon, evaluated only where the
// node's window intersects the span.
func addNodeWindow(eng *compute.Engine, ws *compute.Workspace, acc *mat.Dense, nd *Node, lo, hi int, dt float64) {
	if len(nd.Modes) == 0 {
		return
	}
	a, b := nd.Start, nd.End
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return
	}
	times := ws.GetF64(b - a)
	for k := range times {
		times[k] = float64(a+k-nd.Start) * dt
	}
	dmd.AddReconstructionWith(eng, ws, mat.ColsView(acc, a-lo, b-lo), nd.Modes, times)
	ws.PutF64(times)
}

// Raw returns a copy of all absorbed data (useful for comparisons); cold
// columns widen from their f32 storage.
func (inc *Incremental) Raw() *mat.Dense {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.hist.Promote()
}

// MemStats reports the resident bytes of the absorbed history by tier —
// the per-tenant memory accounting behind the server's /stats.
type MemStats struct {
	// HotBytes / ColdBytes are the resident history bytes of the f64 hot
	// tail (including grow capacity) and the f32 cold chunks.
	HotBytes, ColdBytes int64
	// Cols / ColdCols count absorbed columns and how many are cold.
	Cols, ColdCols int
}

// MemStats returns the history-tier memory accounting.
func (inc *Incremental) MemStats() MemStats {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.hist == nil {
		return MemStats{}
	}
	return MemStats{
		HotBytes:  inc.hist.HotBytes(),
		ColdBytes: inc.hist.ColdBytes(),
		Cols:      inc.hist.Cols(),
		ColdCols:  inc.hist.ColdCols(),
	}
}

// ReleaseScratch drops the analyzer's pooled scratch buffers so the Go
// heap can actually shrink — for honest resident-memory measurement and
// idle-tenant footprint trimming. The pools refill on demand; steady-state
// performance recovers within one update.
func (inc *Incremental) ReleaseScratch() {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.invalidateSlowGrid()
	inc.ws.Drain()
}

// RefitBatch runs batch mrDMD over everything absorbed so far — the
// "without our incremental approach" comparator in §IV and Q2.
func (inc *Incremental) RefitBatch() (*Tree, error) {
	return Decompose(inc.Raw(), inc.opts)
}

// Cols returns the number of absorbed columns.
func (inc *Incremental) Cols() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.hist == nil {
		return 0
	}
	return inc.hist.Cols()
}

// Updates returns how many PartialFits have been applied.
func (inc *Incremental) Updates() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.updates
}

// Recomputes returns how many drift-triggered recomputations have run.
func (inc *Incremental) Recomputes() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.recomputes
}

// ShardStats reports the sharded level-1 SVD's transport accounting
// (collectives, payload sizes, bytes). ok is false when Shards ≤ 1 or
// before InitialFit — the unsharded path has no transport seam.
func (inc *Incremental) ShardStats() (st shard.Stats, ok bool) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.coord == nil {
		return shard.Stats{}, false
	}
	return inc.coord.Stats(), true
}

// DriftLog returns the drift measured at recent PartialFits, oldest
// first. The log is a bounded ring: once more than driftLogCap updates
// have been applied only the most recent driftLogCap drifts are retained.
func (inc *Incremental) DriftLog() []float64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.driftLogChrono()
}
