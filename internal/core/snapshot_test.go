package core_test

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/codec"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// snapshotScenarios are the paper workloads the restore-equivalence
// acceptance criterion runs against (same shapes as the shard sweeps).
func snapshotScenarios() []struct {
	name string
	data *mat.Dense
	dt   float64
} {
	return []struct {
		name string
		data *mat.Dense
		dt   float64
	}{
		{"sclog", bench.SCLogData(96, 1536, 1), 20},
		{"gpu", bench.GPUData(96, 1536, 1), 1},
	}
}

// interruptedScenario runs the same stream as streamScenario but pauses
// after two partial fits to snapshot, restore, and finish the remaining
// fits on the restored analyzer.
func interruptedScenario(t *testing.T, data *mat.Dense, opts core.Options) *core.Incremental {
	t.Helper()
	const initialT = 1024
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, initialT)); err != nil {
		t.Fatal(err)
	}
	step := (data.C - initialT) / 4
	fit := func(target *core.Incremental, c int) {
		hi := c + step
		if hi > data.C {
			hi = data.C
		}
		if _, err := target.PartialFit(data.ColSlice(c, hi)); err != nil {
			t.Fatal(err)
		}
	}
	fit(inc, initialT)
	fit(inc, initialT+step)

	var buf bytes.Buffer
	if err := inc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.DecodeIncremental(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cols() != inc.Cols() || restored.Sensors() != inc.Sensors() || restored.Updates() != inc.Updates() {
		t.Fatalf("restored state mismatch: cols %d/%d sensors %d/%d updates %d/%d",
			restored.Cols(), inc.Cols(), restored.Sensors(), inc.Sensors(), restored.Updates(), inc.Updates())
	}
	fit(restored, initialT+2*step)
	fit(restored, initialT+3*step)
	return restored
}

// TestSnapshotRestoreContinuesStream is the PR's acceptance criterion:
// encode → decode → continue-streaming must match an uninterrupted run to
// 1e-12 on the SC Log and GPU Metrics scenarios, across both precision
// tiers and the unsharded/sharded level-1 paths. (The continuation is
// bit-compatible by construction — the tolerance only pads float compare
// plumbing.)
func TestSnapshotRestoreContinuesStream(t *testing.T) {
	for _, sc := range snapshotScenarios() {
		for _, prec := range []string{core.PrecisionFloat64, core.PrecisionMixed} {
			for _, shards := range []int{1, 2} {
				opts := core.Options{
					DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
					Parallel: true, BlockColumns: 8, Precision: prec, Shards: shards,
				}
				want := streamScenario(t, sc.data, opts)
				got := interruptedScenario(t, sc.data, opts)
				label := sc.name + "/" + prec + "/shards=" + strconv.Itoa(shards)
				compareTrees(t, label, got, want, 1e-12)
				if shards > 1 {
					st, ok := got.ShardStats()
					if !ok || st.Updates == 0 {
						t.Fatalf("%s: restored sharded path not engaged (%+v, ok=%v)", label, st, ok)
					}
				}
			}
		}
	}
}

// TestSnapshotRestoreIdenticalAtRest: a freshly restored analyzer must
// report the identical decomposition — tree, drift log, counters —
// before any further stream arrives.
func TestSnapshotRestoreIdenticalAtRest(t *testing.T) {
	sc := snapshotScenarios()[0]
	opts := core.Options{DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, BlockColumns: 8}
	want := streamScenario(t, sc.data, opts)
	var buf bytes.Buffer
	if err := want.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodeIncremental(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compareTrees(t, "at-rest", got, want, 0)
	gd, wd := got.DriftLog(), want.DriftLog()
	if len(gd) != len(wd) {
		t.Fatalf("drift log %d entries vs %d", len(gd), len(wd))
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("drift[%d] %v vs %v", i, gd[i], wd[i])
		}
	}
	if got.Recomputes() != want.Recomputes() {
		t.Fatalf("recomputes %d vs %d", got.Recomputes(), want.Recomputes())
	}
	if d := mat.Sub(got.Raw(), want.Raw()).FrobNorm(); d != 0 {
		t.Fatalf("restored raw history deviates by %g", d)
	}
}

// TestSnapshotErrors pins the failure modes: snapshot before any fit,
// version-mismatched input, truncated input and plain garbage.
func TestSnapshotErrors(t *testing.T) {
	inc := core.NewIncremental(core.Options{})
	if err := inc.Snapshot(io.Discard); err == nil {
		t.Fatal("Snapshot before InitialFit accepted")
	}

	sc := snapshotScenarios()[0]
	fitted := streamScenario(t, sc.data, core.Options{DT: sc.dt, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	var buf bytes.Buffer
	if err := fitted.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Version mismatch: patch the header's version field.
	bad := append([]byte(nil), full...)
	bad[8]++ // first byte of the little-endian version word after the magic
	if _, err := core.DecodeIncremental(bytes.NewReader(bad)); !errors.Is(err, codec.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}

	// Truncation at several depths: always a clean error.
	for _, cut := range []int{16, len(full) / 3, len(full) - 2} {
		if _, err := core.DecodeIncremental(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}

	if _, err := core.DecodeIncremental(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, codec.ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
}
