package core_test

import (
	"math"
	"math/cmplx"
	"strconv"
	"sync"
	"testing"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// Documented agreement tolerances for the flat-horizon windowing knobs on
// persistent (statistically stationary) workloads like the paper's SC Log
// and GPU Metrics streams. The windowed amplitude refit drops redundant
// normal-equation rows, not information, so level-1 eigenvalues are
// untouched and amplitudes move only by the noise resolved differently
// over fewer samples; the full-resolution reconstruction error moves by
// strictly less.
const (
	// flatWinFreqTol bounds level-1 mode frequency drift: eigenvalues come
	// from the (un-windowed) SVD update, so frequencies must be identical
	// up to compare plumbing.
	flatWinFreqTol = 1e-12
	// flatWinAmpTol bounds the relative level-1 amplitude difference
	// between a trailing-window fit and the full-width fit, for modes
	// still carrying most of their envelope when the window opens
	// (|λ|ᵏ⁰ ≥ flatWinMassHi). A 16-of-24 grid-column window re-resolves
	// the noise floor over a third fewer samples, which moves even the DC
	// amplitude several percent on the SC Log stream.
	flatWinAmpTol = 0.10
	// flatWinMassHi / flatWinMassLo split modes by remaining envelope at
	// the window boundary: above Hi the amplitude must agree to
	// flatWinAmpTol; below Lo the fit must report the mode absent (the
	// dmd layer's mass floor); between, the estimate is documented as
	// noise-amplified by at most 1/mass and only boundedness is asserted.
	flatWinMassHi = 0.5
	flatWinMassLo = 0.02
	// flatWinErrTol bounds how far the windowed run's ReconError may sit
	// above the full-width run's (ratio − 1).
	flatWinErrTol = 0.10
)

// streamRecompute is streamScenario with drift-triggered (synchronous)
// recompute enabled — the configuration the windowing knobs are designed
// to pair with: old subtrees keep refitting against the current level-1
// slow part, so what the windowed fit resolves differently at early times
// is absorbed by the residual subtrees rather than left as error.
func streamRecompute(t *testing.T, data *mat.Dense, opts core.Options) *core.Incremental {
	t.Helper()
	const initialT = 1024
	inc := core.NewIncremental(opts)
	inc.DriftThreshold = 1e-9
	if err := inc.InitialFit(data.ColSlice(0, initialT)); err != nil {
		t.Fatal(err)
	}
	step := (data.C - initialT) / 4
	for c := initialT; c < data.C; c += step {
		hi := c + step
		if hi > data.C {
			hi = data.C
		}
		if _, err := inc.PartialFit(data.ColSlice(c, hi)); err != nil {
			t.Fatal(err)
		}
	}
	return inc
}

// TestFlatWindowsAgreeAcrossPrecisionShards: DriftWindow + AmplitudeWindow
// bound per-update work without changing what the analyzer converges to —
// across both precision tiers and the unsharded/sharded level-1 paths.
func TestFlatWindowsAgreeAcrossPrecisionShards(t *testing.T) {
	for _, sc := range snapshotScenarios() {
		for _, prec := range []string{core.PrecisionFloat64, core.PrecisionMixed} {
			for _, shards := range []int{1, 2} {
				label := sc.name + "/" + prec + "/shards=" + strconv.Itoa(shards)
				opts := core.Options{
					DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
					Parallel: true, BlockColumns: 8, Precision: prec, Shards: shards,
				}
				full := streamRecompute(t, sc.data, opts)

				wopts := opts
				// The level-1 grid ends at 24 columns here (stride 64 over
				// 1536); both windows must be genuinely narrower than that
				// or the test degenerates to the full-width path.
				wopts.DriftWindow = 8
				wopts.AmplitudeWindow = 16
				win := streamRecompute(t, sc.data, wopts)

				ft, wt := full.Tree(), win.Tree()
				if len(ft.Nodes) == 0 || len(wt.Nodes) == 0 {
					t.Fatalf("%s: empty tree", label)
				}
				fl1, wl1 := ft.Nodes[0], wt.Nodes[0]
				if len(fl1.Modes) != len(wl1.Modes) {
					t.Fatalf("%s: level-1 mode count %d vs %d", label, len(wl1.Modes), len(fl1.Modes))
				}
				// k0 grid columns precede the amplitude window; a mode's
				// remaining envelope there decides which contract applies.
				k0 := 24 - wopts.AmplitudeWindow
				var maxAmpFull float64
				for j := range fl1.Modes {
					if a := cmplx.Abs(fl1.Modes[j].Amp); a > maxAmpFull {
						maxAmpFull = a
					}
				}
				for j := range fl1.Modes {
					fm, wm := &fl1.Modes[j], &wl1.Modes[j]
					if d := math.Abs(fm.Freq - wm.Freq); d > flatWinFreqTol*(1+math.Abs(fm.Freq)) {
						t.Fatalf("%s mode %d: freq %v vs %v (windowing must not move eigenvalues)",
							label, j, wm.Freq, fm.Freq)
					}
					fa := cmplx.Abs(fm.Amp)
					if fa < 1e-9 {
						continue
					}
					mass := math.Pow(cmplx.Abs(fm.Lambda), float64(k0))
					if mass > 1 {
						mass = 1
					}
					switch {
					case mass >= flatWinMassHi:
						if rel := cmplx.Abs(fm.Amp-wm.Amp) / fa; rel > flatWinAmpTol {
							t.Fatalf("%s mode %d (mass %g): windowed amplitude rel diff %g > %g (%v vs %v)",
								label, j, mass, rel, flatWinAmpTol, wm.Amp, fm.Amp)
						}
					case mass < flatWinMassLo:
						if wm.Amp != 0 {
							t.Fatalf("%s mode %d (mass %g): decayed mode kept amplitude %v, want 0",
								label, j, mass, wm.Amp)
						}
					default:
						// Gray zone: either zeroed by the mass floor or a
						// ≤ 1/mass noise-amplified estimate — never worse.
						if wa := cmplx.Abs(wm.Amp); wa > maxAmpFull/mass {
							t.Fatalf("%s mode %d (mass %g): windowed amplitude %g exceeds the 1/mass bound %g",
								label, j, mass, wa, maxAmpFull/mass)
						}
					}
				}

				fe, we := full.ReconError(), win.ReconError()
				if math.IsNaN(we) || math.IsInf(we, 0) {
					t.Fatalf("%s: windowed ReconError not finite: %v", label, we)
				}
				if we > fe*(1+flatWinErrTol) {
					t.Fatalf("%s: windowed ReconError %v exceeds full-width %v by more than %g",
						label, we, fe, flatWinErrTol)
				}

				fd, wd := full.DriftLog(), win.DriftLog()
				if len(fd) != len(wd) {
					t.Fatalf("%s: drift log lengths %d vs %d", label, len(wd), len(fd))
				}
				for i, d := range wd {
					if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
						t.Fatalf("%s: windowed drift %d invalid: %v", label, i, d)
					}
				}
			}
		}
	}
}

// TestTieredAsyncConcurrentReaders drives the cold tier, async drift
// recompute and every read surface concurrently — the CI race leg's
// target. Correctness here is "no race, no panic, finite results": the
// numeric contracts are pinned by the deterministic tests.
func TestTieredAsyncConcurrentReaders(t *testing.T) {
	sc := snapshotScenarios()[0]
	inc := core.NewIncremental(core.Options{
		DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
		Parallel: true, BlockColumns: 8, ColdHorizon: 256,
	})
	inc.DriftThreshold = 1e-9 // recompute on every update
	inc.AsyncRecompute = true
	const initialT, batch = 512, 128
	if err := inc.InitialFit(sc.data.ColSlice(0, initialT)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				switch r {
				case 0:
					if e := inc.ReconError(); math.IsNaN(e) {
						t.Error("ReconError NaN under concurrency")
						return
					}
				case 1:
					v := inc.View()
					if v.Steps > 0 && v.Nodes == 0 {
						t.Error("View lost its nodes under concurrency")
						return
					}
					_ = inc.MemStats()
					_ = inc.DriftLog()
				case 2:
					raw := inc.Raw()
					if raw.R == 0 {
						t.Error("Raw empty under concurrency")
						return
					}
				}
			}
		}(r)
	}

	for c := initialT; c < sc.data.C; c += batch {
		if _, err := inc.PartialFit(sc.data.ColSlice(c, c+batch)); err != nil {
			t.Fatal(err)
		}
	}
	inc.Wait()
	close(done)
	readers.Wait()

	if inc.Cols() != sc.data.C {
		t.Fatalf("absorbed %d cols, want %d", inc.Cols(), sc.data.C)
	}
	ms := inc.MemStats()
	if ms.ColdCols == 0 {
		t.Fatal("cold tier never engaged under the concurrent stream")
	}
	if r := inc.Recomputes(); r == 0 {
		t.Fatal("async recompute path never engaged")
	}
	if e := inc.ReconError(); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("final ReconError not finite: %v", e)
	}
}
