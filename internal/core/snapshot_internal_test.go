package core

import (
	"math"
	"testing"

	"imrdmd/internal/mat"
)

// TestValidateDecodedInvariants exercises the structural checks a
// checksum-valid-but-wrong snapshot must die on at restore time: the
// grid-index invariant whose violation would send PartialFit's gather
// loop out of range, and the level-1 factor shape checks. White-box: a
// genuinely fitted analyzer satisfies the invariants, and each mutation
// below must flip validation to an error.
func TestValidateDecodedInvariants(t *testing.T) {
	data := mat.NewDense(6, 64)
	for i := range data.Data {
		data.Data[i] = 50 + 3*math.Sin(float64(i)/9)
	}
	inc := NewIncremental(Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	if err := inc.InitialFit(data); err != nil {
		t.Fatal(err)
	}
	if err := inc.validateDecoded(); err != nil {
		t.Fatalf("fitted analyzer fails its own invariants: %v", err)
	}

	mutate := func(name string, f func(), undo func()) {
		f()
		if err := inc.validateDecoded(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		undo()
		if err := inc.validateDecoded(); err != nil {
			t.Fatalf("%s: undo left analyzer invalid: %v", name, err)
		}
	}

	ns := inc.nextSample
	mutate("negative nextSample",
		func() { inc.nextSample = -100 },
		func() { inc.nextSample = ns })
	mutate("runaway nextSample",
		func() { inc.nextSample = inc.hist.Cols() + 100*inc.stride1 },
		func() { inc.nextSample = ns })
	if inc.stride1 < 2 {
		t.Fatalf("test premise: want stride > 1, got %d", inc.stride1)
	}
	mutate("misaligned nextSample",
		func() { inc.nextSample = ns + 1 },
		func() { inc.nextSample = ns })
	p := inc.p
	mutate("sensor-count mismatch",
		func() { inc.p = p + 3 },
		func() { inc.p = p })
	st := inc.stride1
	mutate("zero stride",
		func() { inc.stride1 = 0 },
		func() { inc.stride1 = st })
	segs := inc.segments
	mutate("segment outside history",
		func() { inc.segments = append(segs, &segment{start: 10, end: inc.hist.Cols() + 50}) },
		func() { inc.segments = segs })
}

// TestValidateDecodedNodeInvariants: tree-node corruption (window out of
// range, short spatial vectors) must fail validation — these are indexed
// unchecked by reconstruction and spectrum queries.
func TestValidateDecodedNodeInvariants(t *testing.T) {
	data := mat.NewDense(6, 64)
	for i := range data.Data {
		data.Data[i] = 50 + 3*math.Sin(float64(i)/9)
	}
	inc := NewIncremental(Options{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true})
	if err := inc.InitialFit(data); err != nil {
		t.Fatal(err)
	}
	if err := inc.validateDecoded(); err != nil {
		t.Fatal(err)
	}

	end := inc.level1.End
	inc.level1.End = inc.hist.Cols() + 7
	if err := inc.validateDecoded(); err == nil {
		t.Fatal("node window past history accepted")
	}
	inc.level1.End = end

	if len(inc.level1.Modes) == 0 {
		t.Fatal("test premise: want level-1 modes")
	}
	phi := inc.level1.Modes[0].Phi
	inc.level1.Modes[0].Phi = phi[:len(phi)-2]
	if err := inc.validateDecoded(); err == nil {
		t.Fatal("short spatial vector accepted")
	}
	inc.level1.Modes[0].Phi = phi
	if err := inc.validateDecoded(); err != nil {
		t.Fatal(err)
	}
}
