package core_test

import (
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// shardSweep returns the shard counts the agreement suites compare against
// the unsharded path, extended by the CI race leg's IMRDMD_TEST_SHARDS
// knob (an odd count exercises uneven row splits).
func shardSweep() []int {
	counts := []int{2, 4}
	if v := os.Getenv("IMRDMD_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			counts = append(counts, n)
		}
	}
	return counts
}

// streamScenario runs the streaming pipeline (initial fit + four partial
// fits) over data with the given options and returns the analyzer.
func streamScenario(t *testing.T, data *mat.Dense, opts core.Options) *core.Incremental {
	t.Helper()
	const initialT = 1024
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, initialT)); err != nil {
		t.Fatal(err)
	}
	step := (data.C - initialT) / 4
	for c := initialT; c < data.C; c += step {
		hi := c + step
		if hi > data.C {
			hi = data.C
		}
		if _, err := inc.PartialFit(data.ColSlice(c, hi)); err != nil {
			t.Fatal(err)
		}
	}
	return inc
}

// compareTrees asserts that two decompositions of the same stream agree:
// same node windows, same per-node mode counts, frequencies and powers
// within relTol, and reconstruction errors within relTol of each other.
func compareTrees(t *testing.T, label string, got, want *core.Incremental, relTol float64) {
	t.Helper()
	gt, wt := got.Tree(), want.Tree()
	if len(gt.Nodes) != len(wt.Nodes) {
		t.Fatalf("%s: %d nodes vs %d", label, len(gt.Nodes), len(wt.Nodes))
	}
	for i, wn := range wt.Nodes {
		gn := gt.Nodes[i]
		if gn.Level != wn.Level || gn.Start != wn.Start || gn.End != wn.End {
			t.Fatalf("%s node %d: L%d [%d,%d) vs L%d [%d,%d)",
				label, i, gn.Level, gn.Start, gn.End, wn.Level, wn.Start, wn.End)
		}
		if len(gn.Modes) != len(wn.Modes) {
			t.Fatalf("%s node %d (L%d [%d,%d)): %d modes vs %d",
				label, i, wn.Level, wn.Start, wn.End, len(gn.Modes), len(wn.Modes))
		}
		for j, wm := range wn.Modes {
			gm := gn.Modes[j]
			if d := math.Abs(gm.Freq - wm.Freq); d > relTol*(1+math.Abs(wm.Freq)) {
				t.Fatalf("%s node %d mode %d: freq %v vs %v", label, i, j, gm.Freq, wm.Freq)
			}
			if d := math.Abs(gm.Power - wm.Power); d > relTol*(1+wm.Power) {
				t.Fatalf("%s node %d mode %d: power %v vs %v", label, i, j, gm.Power, wm.Power)
			}
		}
	}
	ge, we := got.ReconError(), want.ReconError()
	if d := math.Abs(ge - we); d > relTol*(1+we) {
		t.Fatalf("%s: reconstruction error %v vs %v (rel %g > %g)", label, ge, we, d/(1+we), relTol)
	}
}

// TestShardsReproduceUnshardedScenarios is the PR's acceptance criterion:
// on the paperbench SC Log and GPU Metrics scenarios, Shards ∈ {2, 4}
// must reproduce the single-shard decomposition — modes, spectrum and
// reconstruction error — to 1e-8 in the float64 tier. The sharded update
// differs algorithmically (eigen square root of the reduced residual Gram
// vs local MGS2 QR), so this bounds the roundoff of the whole phase split
// end to end, across partial fits and reorth boundaries.
func TestShardsReproduceUnshardedScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		data *mat.Dense
		dt   float64
	}{
		{"sclog", bench.SCLogData(96, 1536, 1), 20},
		{"gpu", bench.GPUData(96, 1536, 1), 1},
	}
	for _, sc := range scenarios {
		base := core.Options{
			DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
			Parallel: true, BlockColumns: 8,
		}
		want := streamScenario(t, sc.data, base)
		for _, shards := range shardSweep() {
			opts := base
			opts.Shards = shards
			got := streamScenario(t, sc.data, opts)
			if st, ok := got.ShardStats(); !ok || st.Reduces == 0 {
				t.Fatalf("%s shards=%d: sharded path not engaged (stats %+v ok=%v)", sc.name, shards, st, ok)
			}
			compareTrees(t, sc.name+"/shards="+strconv.Itoa(shards), got, want, 1e-8)
		}
	}
}

// TestShardsReproduceUnshardedMixed repeats the scenario agreement under
// Precision "mixed", where the sharded collective ships float32 payloads
// (half the bytes). The narrowing perturbs the level-1 projection at f32
// epsilon per update, so agreement with the single-shard mixed path is
// pinned at screening accuracy (2e-5) rather than the f64 tier's 1e-8 —
// the same fidelity contract the mixed tier documents everywhere else
// (kept-mode sets identical, values within f32 visibility).
func TestShardsReproduceUnshardedMixed(t *testing.T) {
	scenarios := []struct {
		name string
		data *mat.Dense
		dt   float64
	}{
		{"sclog", bench.SCLogData(96, 1536, 1), 20},
		{"gpu", bench.GPUData(96, 1536, 1), 1},
	}
	for _, sc := range scenarios {
		base := core.Options{
			DT: sc.dt, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
			Parallel: true, BlockColumns: 8, Precision: core.PrecisionMixed,
		}
		want := streamScenario(t, sc.data, base)
		for _, shards := range shardSweep() {
			opts := base
			opts.Shards = shards
			got := streamScenario(t, sc.data, opts)
			st, ok := got.ShardStats()
			if !ok || !st.Payload32 {
				t.Fatalf("%s shards=%d: f32 payload not engaged (stats %+v ok=%v)", sc.name, shards, st, ok)
			}
			if st.LastPayloadBytes != 4*st.LastPayloadElems {
				t.Fatalf("%s shards=%d: payload %d bytes for %d elems, want f32-sized",
					sc.name, shards, st.LastPayloadBytes, st.LastPayloadElems)
			}
			compareTrees(t, sc.name+"/mixed/shards="+strconv.Itoa(shards), got, want, 2e-5)
		}
	}
}

// TestShardsValidatedAtInitialFit pins the InitialFit-time half of the
// Shards validation: more shards than sensor rows cannot be partitioned.
func TestShardsValidatedAtInitialFit(t *testing.T) {
	data := bench.SCLogData(8, 256, 1)
	inc := core.NewIncremental(core.Options{DT: 20, Shards: 9})
	err := inc.InitialFit(data)
	if err == nil {
		t.Fatal("9 shards over 8 sensor rows accepted")
	}
	if got := err.Error(); !strings.Contains(got, "Shards") {
		t.Fatalf("error %q does not name the Shards knob", got)
	}
	// At the boundary the partition is legal (one row per shard).
	inc = core.NewIncremental(core.Options{DT: 20, Shards: 8})
	if err := inc.InitialFit(data); err != nil {
		t.Fatalf("8 shards over 8 rows rejected: %v", err)
	}
}
