package core

import (
	"errors"
	"fmt"
	"io"

	"imrdmd/internal/codec"
	"imrdmd/internal/compute"
	"imrdmd/internal/dmd"
	"imrdmd/internal/mat"
	"imrdmd/internal/shard"
	"imrdmd/internal/svd"
)

// This file is the snapshot/restore layer of the I-mrDMD state machine:
// the complete analyzer state — options, absorbed history, the level-1
// sample grid, the multi-level window tree, the incremental SVD (sharded
// or not) and every counter that phases future updates — serialized
// through the internal/codec wire format. A decoded analyzer continues a
// PartialFit stream bit-compatibly with the uninterrupted original, which
// is what makes long-running tenants restartable and migratable (see
// DESIGN.md §8).

// isvd kind tags written before the level-1 SVD payload.
const (
	isvdUnsharded = 0
	isvdSharded   = 1
)

// Snapshot serializes the analyzer's full state to w. It waits for any
// in-flight asynchronous recomputations first (so the snapshot is a
// consistent post-recompute state), then holds the state lock for the
// duration of the write. Snapshot before InitialFit is an error — there
// is no state to save.
func (inc *Incremental) Snapshot(w io.Writer) error {
	inc.wg.Wait()
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.hist == nil {
		return errors.New("core: Snapshot before InitialFit")
	}
	enc := codec.NewWriter(w)
	encodeOptions(enc, inc.opts)
	enc.Float(inc.DriftThreshold)
	enc.Bool(inc.AsyncRecompute)
	enc.Int(inc.p)
	// History, tier-structured (format v2): cold f32 chunks then the hot
	// f64 tail. A v1 stream holds the same columns as one f64 matrix.
	enc.Int(inc.hist.ChunkCols())
	cold := inc.hist.ColdChunks()
	enc.Int(len(cold))
	for _, ch := range cold {
		enc.Dense32(ch)
	}
	enc.Dense(inc.hist.Hot())
	enc.Int(inc.stride1)
	enc.Dense(inc.sub1)
	enc.Int(inc.nextSample)
	encodeNode(enc, inc.level1)
	enc.Int(len(inc.segments))
	for _, seg := range inc.segments {
		enc.Int(seg.start)
		enc.Int(seg.end)
		enc.Int(len(seg.nodes))
		for _, nd := range seg.nodes {
			encodeNode(enc, nd)
		}
	}
	enc.Int(inc.updates)
	enc.Int(inc.recomputes)
	enc.Floats(inc.driftLogChrono())
	if inc.coord != nil {
		enc.Int(isvdSharded)
		inc.coord.Encode(enc)
	} else {
		enc.Int(isvdUnsharded)
		inc.isvd.(*svd.Incremental).Encode(enc)
	}
	return enc.Close()
}

// DecodeIncremental reconstructs an analyzer written by Snapshot,
// resolving the compute engine from the snapshot's own Workers option.
func DecodeIncremental(r io.Reader) (*Incremental, error) {
	return DecodeIncrementalWith(r, nil)
}

// DecodeIncrementalWith is DecodeIncremental with an explicit engine —
// the hook a multi-tenant server uses to land every restored analyzer on
// its one bounded pool regardless of what the snapshot was running on.
// nil eng defers to the snapshot's options.
func DecodeIncrementalWith(r io.Reader, eng *compute.Engine) (*Incremental, error) {
	dec, err := codec.NewReader(r)
	if err != nil {
		return nil, err
	}
	opts := decodeOptions(dec)
	driftThreshold := dec.Float()
	asyncRecompute := dec.Bool()
	p := dec.Len()
	var hist *mat.TieredCols
	if dec.Version() >= 2 {
		chunk := dec.Int()
		nCold := dec.Len()
		cold := make([]*mat.Dense32, 0, minCap(nCold, 64))
		for i := 0; i < nCold && dec.Err() == nil; i++ {
			cold = append(cold, dec.Dense32())
		}
		hot := dec.Dense()
		if dec.Err() == nil {
			var terr error
			hist, terr = mat.TieredFromParts(cold, hot, chunk)
			if terr != nil {
				return nil, fmt.Errorf("%w: %v", codec.ErrCorrupt, terr)
			}
		}
	} else if raw := dec.Dense(); raw != nil {
		// v1: one all-f64 history matrix.
		hist = mat.NewTieredCols(raw)
	}
	stride1 := dec.Int()
	sub1 := dec.Dense()
	nextSample := dec.Int()
	level1 := decodeNode(dec)
	var segments []*segment
	nSeg := dec.Len()
	for i := 0; i < nSeg && dec.Err() == nil; i++ {
		seg := &segment{start: dec.Int(), end: dec.Int()}
		nNodes := dec.Len()
		for j := 0; j < nNodes && dec.Err() == nil; j++ {
			seg.nodes = append(seg.nodes, decodeNode(dec))
		}
		segments = append(segments, seg)
	}
	updates := dec.Int()
	recomputes := dec.Int()
	driftLog := dec.Floats()
	// v1 streams carry the full unbounded log; keep the trailing window
	// the ring would have retained.
	if len(driftLog) > driftLogCap {
		driftLog = driftLog[len(driftLog)-driftLogCap:]
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if eng == nil {
		eng = opts.engine()
	}
	ws := compute.NewWorkspace()

	inc := &Incremental{
		DriftThreshold: driftThreshold,
		AsyncRecompute: asyncRecompute,
		opts:           opts,
		p:              p,
		eng:            eng,
		ws:             ws,
		hist:           hist,
		stride1:        stride1,
		sub1:           sub1,
		nextSample:     nextSample,
		level1:         level1,
		segments:       segments,
		updates:        updates,
		recomputes:     recomputes,
		driftLog:       driftLog,
		driftPos:       len(driftLog) % driftLogCap,
	}

	kind := dec.Int()
	switch kind {
	case isvdUnsharded:
		isvd, err := svd.DecodeIncrementalState(dec, eng, ws)
		if err != nil {
			return nil, err
		}
		inc.isvd = isvd
	case isvdSharded:
		coord, err := shard.DecodeCoordinator(dec, eng, ws, nil)
		if err != nil {
			return nil, err
		}
		inc.coord = coord
		inc.isvd = coord
	default:
		if err := dec.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown level-1 SVD kind %d", codec.ErrCorrupt, kind)
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	if err := inc.validateDecoded(); err != nil {
		return nil, err
	}
	return inc, nil
}

// validateDecoded cross-checks the structural invariants PartialFit
// assumes, so a corrupt-but-checksum-valid stream (or a format bug) fails
// at restore time with a clear error instead of panicking mid-update.
func (inc *Incremental) validateDecoded() error {
	if inc.hist == nil || inc.sub1 == nil || inc.level1 == nil {
		return errors.New("core: decoded snapshot structurally incomplete")
	}
	if inc.hist.Rows() != inc.p || inc.sub1.R != inc.p {
		return fmt.Errorf("core: decoded row counts inconsistent (p=%d, raw %d, sub1 %d)",
			inc.p, inc.hist.Rows(), inc.sub1.R)
	}
	if inc.stride1 < 1 {
		return fmt.Errorf("core: decoded level-1 stride %d invalid", inc.stride1)
	}
	if inc.sub1.C < 2 || inc.sub1.C > inc.hist.Cols() {
		return fmt.Errorf("core: decoded sample grid (%d columns) inconsistent with %d absorbed columns",
			inc.sub1.C, inc.hist.Cols())
	}
	// nextSample is the next level-1 grid index: a stride multiple in
	// (raw.C - stride1, raw.C + stride1]. Anything else sends PartialFit's
	// grid loop out of range (negative gather indices) or into a
	// billion-iteration append — fail here instead.
	if t := inc.hist.Cols(); inc.nextSample%inc.stride1 != 0 || inc.nextSample < t || inc.nextSample > t+inc.stride1 {
		return fmt.Errorf("core: decoded next sample index %d inconsistent with %d columns at stride %d",
			inc.nextSample, t, inc.stride1)
	}
	// The level-1 SVD tracks X = sub1[:, :ns-1]: its factors must agree
	// with the sensor dimension and the grid width, or the next update's
	// GEMMs panic on shape.
	res := inc.isvd.ResultView()
	if res.U.R != inc.p || res.V.R != inc.sub1.C-1 {
		return fmt.Errorf("core: decoded level-1 SVD shape %d×%d factors for %d sensors × %d grid columns",
			res.U.R, res.V.R, inc.p, inc.sub1.C)
	}
	if err := inc.validateDecodedNode(inc.level1); err != nil {
		return err
	}
	for _, seg := range inc.segments {
		if seg.start < 0 || seg.end > inc.hist.Cols() || seg.end < seg.start {
			return fmt.Errorf("core: decoded segment window [%d,%d) outside the %d absorbed columns",
				seg.start, seg.end, inc.hist.Cols())
		}
		for _, nd := range seg.nodes {
			if err := inc.validateDecodedNode(nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateDecodedNode checks the per-node invariants reconstruction and
// spectrum queries index by: the window inside the absorbed history and
// every mode's spatial vector spanning the sensor dimension.
func (inc *Incremental) validateDecodedNode(n *Node) error {
	if n.Start < 0 || n.End > inc.hist.Cols() || n.End < n.Start || n.Stride < 1 {
		return fmt.Errorf("core: decoded node window [%d,%d) stride %d outside the %d absorbed columns",
			n.Start, n.End, n.Stride, inc.hist.Cols())
	}
	for i := range n.Modes {
		if len(n.Modes[i].Phi) != inc.p {
			return fmt.Errorf("core: decoded mode %d of node [%d,%d) has %d-sensor spatial vector, want %d",
				i, n.Start, n.End, len(n.Modes[i].Phi), inc.p)
		}
	}
	return nil
}

// Options returns the analyzer's (default-filled) configuration — what a
// restored public Analyzer re-wraps.
func (inc *Incremental) Options() Options {
	return inc.opts
}

// encodeOptions writes every persistent Options field. The runtime-only
// Engine override is deliberately not serialized: a snapshot restored in
// another process resolves its pool from Workers (or the restorer's
// explicit engine).
func encodeOptions(w *codec.Writer, o Options) {
	w.Float(o.DT)
	w.Int(o.MaxLevels)
	w.Int(o.MaxCycles)
	w.Int(o.NyquistFactor)
	w.Int(o.Rank)
	w.Bool(o.UseSVHT)
	w.Int(o.MinWindow)
	w.Bool(o.Parallel)
	w.Int(o.Workers)
	w.Int(o.BlockColumns)
	w.String(o.Precision)
	w.Int(o.Shards)
	w.Int(o.DriftWindow)
	w.Int(o.AmplitudeWindow)
	w.Int(o.ColdHorizon)
}

func decodeOptions(r *codec.Reader) Options {
	o := Options{
		DT:            r.Float(),
		MaxLevels:     r.Int(),
		MaxCycles:     r.Int(),
		NyquistFactor: r.Int(),
		Rank:          r.Int(),
		UseSVHT:       r.Bool(),
		MinWindow:     r.Int(),
		Parallel:      r.Bool(),
		Workers:       r.Int(),
		BlockColumns:  r.Int(),
		Precision:     r.String(),
		Shards:        r.Int(),
	}
	if r.Version() >= 2 {
		o.DriftWindow = r.Int()
		o.AmplitudeWindow = r.Int()
		o.ColdHorizon = r.Int()
	}
	return o
}

func minCap(n, cap int) int {
	if n < cap {
		return n
	}
	return cap
}

// encodeNode writes one tree node with its retained modes.
func encodeNode(w *codec.Writer, n *Node) {
	w.Int(n.Level)
	w.Int(n.Start)
	w.Int(n.End)
	w.Int(n.Stride)
	w.Int(n.NumAllModes)
	w.Int(len(n.Modes))
	for i := range n.Modes {
		m := &n.Modes[i]
		w.Complexes(m.Phi)
		w.Complex(m.Lambda)
		w.Complex(m.Psi)
		w.Complex(m.Amp)
		w.Float(m.Freq)
		w.Float(m.Power)
	}
}

func decodeNode(r *codec.Reader) *Node {
	n := &Node{
		Level:       r.Int(),
		Start:       r.Int(),
		End:         r.Int(),
		Stride:      r.Int(),
		NumAllModes: r.Int(),
	}
	nModes := r.Len()
	for i := 0; i < nModes && r.Err() == nil; i++ {
		n.Modes = append(n.Modes, dmd.Mode{
			Phi:    r.Complexes(),
			Lambda: r.Complex(),
			Psi:    r.Complex(),
			Amp:    r.Complex(),
			Freq:   r.Float(),
			Power:  r.Float(),
		})
	}
	return n
}
