package core_test

import (
	"math"
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
)

// TestAddSensorsBlockColumnsInterplay covers the interaction the features'
// standalone tests miss: adding sensor rows BETWEEN block-column partial
// fits. The row update rewrites the level-1 factors that subsequent block
// updates rotate, so a block-size-dependent divergence would surface here
// and nowhere else. As with the pure block-column test, Brand updates
// compose exactly up to rank truncation, so the BlockColumns=8 stream
// must match the column-at-a-time stream to 1e-8 after the row update —
// in sensor count, mode count and reconstruction error.
func TestAddSensorsBlockColumnsInterplay(t *testing.T) {
	const (
		p        = 96
		extra    = 8
		initialT = 1024
		stride   = 64 // level-1 stride for T=1024 at the 4×-Nyquist default
		batch    = 8 * stride
	)
	data := bench.SCLogData(p+extra, initialT+3*batch, 3)
	top := data.RowSlice(0, p)
	base := core.Options{
		DT:        20,
		MaxLevels: 4,
		MaxCycles: 2,
		Rank:      6, // fixed rank: keeps mode selection schedule-independent
	}

	run := func(blockCols int) *core.Incremental {
		opts := base
		opts.BlockColumns = blockCols
		inc := core.NewIncremental(opts)
		if err := inc.InitialFit(top.ColSlice(0, initialT)); err != nil {
			t.Fatal(err)
		}
		// One block-column partial fit on the original sensors…
		if _, err := inc.PartialFit(top.ColSlice(initialT, initialT+batch)); err != nil {
			t.Fatal(err)
		}
		// …then the new sensors arrive with their history over everything
		// absorbed so far…
		if err := inc.AddSensors(data.RowSlice(p, p+extra).ColSlice(0, initialT+batch)); err != nil {
			t.Fatal(err)
		}
		// …and the stream continues over the grown sensor dimension.
		for c := initialT + batch; c < data.C; c += batch {
			if _, err := inc.PartialFit(data.ColSlice(c, c+batch)); err != nil {
				t.Fatal(err)
			}
		}
		return inc
	}

	blocked := run(8)
	colwise := run(1)

	if blocked.Sensors() != p+extra || colwise.Sensors() != p+extra {
		t.Fatalf("sensor counts %d / %d, want %d", blocked.Sensors(), colwise.Sensors(), p+extra)
	}
	if blocked.Cols() != data.C || colwise.Cols() != data.C {
		t.Fatalf("absorbed %d / %d columns, want %d", blocked.Cols(), colwise.Cols(), data.C)
	}
	if bm, cm := blocked.Tree().NumModes(), colwise.Tree().NumModes(); bm != cm {
		t.Fatalf("mode counts diverge across block sizes: %d vs %d", bm, cm)
	}
	errBlock, errCol := blocked.ReconError(), colwise.ReconError()
	if d := math.Abs(errBlock - errCol); d > 1e-8 {
		t.Fatalf("BlockColumns=8 with AddSensors deviates from column-at-a-time by %g (> 1e-8): %v vs %v",
			d, errBlock, errCol)
	}
	// The fit must be meaningful for the comparison to mean anything.
	if norm := data.FrobNorm(); errBlock > 0.5*norm {
		t.Fatalf("reconstruction error %v not meaningfully below data norm %v", errBlock, norm)
	}
}
