package core

import (
	"math"

	"imrdmd/internal/dmd"
	"imrdmd/internal/mat"
)

// View is the cheap read-side summary of an Incremental: everything a
// query surface publishes after an update, assembled in one pass under
// the analyzer lock without cloning the tree or re-walking it per field.
// The spectrum points match Tree().Spectrum() exactly (same node order);
// the error is measured on the level-1 sample grid (see GridError) so
// assembling a View after every absorbed block costs O(modes·P·grid)
// instead of the O(P·T) of a full-resolution reconstruction — the same
// subsampled-grid trade PartialFit's drift check already makes.
type View struct {
	// Spectrum flattens every node's retained modes, in Tree node order
	// (level 1 first, then each segment's subtree oldest to newest).
	Spectrum []dmd.SpectrumPoint
	// NumModes, MaxLevel and Nodes mirror the Tree methods of the same
	// names; Steps is the absorbed column count and Sensors the spatial
	// dimension.
	NumModes int
	MaxLevel int
	Nodes    int
	Steps    int
	Sensors  int
	// Updates and Recomputes are the PartialFit / drift-recompute
	// counters.
	Updates    int
	Recomputes int
	// LastDrift is the drift measured by the most recent PartialFit
	// (zero before the first update).
	LastDrift float64
	// GridError is ‖raw − recon‖_F restricted to the level-1 sample grid
	// (every stride1-th column): the streaming reconstruction-quality
	// signal. It is exact on the grid — identical arithmetic to
	// evaluating Tree().Reconstruct() at the sampled columns — and its
	// cost is independent of how much history has been absorbed between
	// samples, which keeps publish-per-update viable at high ingest
	// rates. The full-resolution ‖raw − Reconstruct()‖_F remains
	// available through ReconError.
	GridError float64
	// GridCols is how many sampled columns GridError spans.
	GridCols int
}

// View assembles the published summary. Callers polling at high rates
// should prefer this over separate Tree()/ReconError() calls: one lock
// acquisition, no per-node mode cloning, and the grid-restricted error
// instead of a full-resolution reconstruction.
func (inc *Incremental) View() View {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	var v View
	if inc.hist == nil {
		return v
	}
	v.Steps = inc.hist.Cols()
	v.Sensors = inc.p
	v.Updates = inc.updates
	v.Recomputes = inc.recomputes
	v.LastDrift = inc.lastDriftLocked()
	// Walk the live nodes in Tree order without cloning them — the walk
	// is read-only and completes before the lock is released.
	nodes := make([]*Node, 0, 1+len(inc.segments)*4)
	nodes = append(nodes, inc.level1)
	for _, seg := range inc.segments {
		nodes = append(nodes, seg.nodes...)
	}
	v.Nodes = len(nodes)
	for _, nd := range nodes {
		v.NumModes += len(nd.Modes)
		if nd.Level > v.MaxLevel {
			v.MaxLevel = nd.Level
		}
	}
	v.Spectrum = spectrumOf(nodes)
	v.GridError, v.GridCols = inc.gridErrorLocked(nodes)
	return v
}

// gridErrorLocked evaluates ‖raw − recon‖_F over the level-1 sample grid:
// the summed node reconstructions at the sampled columns against sub1,
// which holds exactly those columns of raw.
func (inc *Incremental) gridErrorLocked(nodes []*Node) (float64, int) {
	ns := inc.sub1.C
	if ns == 0 {
		return 0, 0
	}
	acc := mat.GetDense(inc.ws, inc.p, ns)
	for _, nd := range nodes {
		inc.addNodeOnGrid(acc, nd)
	}
	var s float64
	for i := 0; i < inc.p; i++ {
		arow := acc.Row(i)
		for j, val := range inc.sub1.Row(i) {
			d := val - arow[j]
			s += d * d
		}
	}
	mat.PutDense(inc.ws, acc)
	return math.Sqrt(s), ns
}

// addNodeOnGrid adds nd's slow reconstruction, evaluated at the level-1
// sample columns inside nd's window, into acc (P×ns over the grid). Grid
// column g holds raw column g·stride1, so the node covers grid columns
// [⌈Start/stride1⌉, ⌈End/stride1⌉).
func (inc *Incremental) addNodeOnGrid(acc *mat.Dense, nd *Node) {
	if len(nd.Modes) == 0 {
		return
	}
	st := inc.stride1
	lo := (nd.Start + st - 1) / st
	hi := (nd.End + st - 1) / st
	if hi > acc.C {
		hi = acc.C
	}
	if hi <= lo {
		return
	}
	w := hi - lo
	times := inc.ws.GetF64(w)
	for k := 0; k < w; k++ {
		times[k] = float64((lo+k)*st-nd.Start) * inc.opts.DT
	}
	dmd.AddReconstructionWith(inc.eng, inc.ws, mat.ColsView(acc, lo, hi), nd.Modes, times)
	inc.ws.PutF64(times)
}
