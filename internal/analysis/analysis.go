// Package analysis is the in-tree static-analysis framework behind
// cmd/imrdmd-vet: a deliberately small, dependency-free re-implementation
// of the golang.org/x/tools/go/analysis surface (Analyzer, Pass,
// Diagnostic) plus the repo's directive and scoping conventions. The
// toolchain in this repo builds offline with no module dependencies, so
// the framework is standard-library only; the driver (load.go, unit.go)
// speaks both a standalone `imrdmd-vet ./...` mode and the cmd/go
// `go vet -vettool=` unitchecker protocol.
//
// The suite exists to machine-check contracts earlier PRs established in
// prose: pooled workspaces are always returned (wspair), the tenant lock
// never covers marshaling or client I/O (lockio), published results are
// immutable after the atomic swap (cowpublish), kernel packages stay
// deterministic (detorder), and request-derived bytes are only decoded
// through internal/codec's bounds-checked primitives (codecbounds).
// DESIGN.md §11 documents each contract and the PR that created it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package (a Pass) and reports diagnostics through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable flags,
	// and //imrdmd:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract statement shown by -help.
	Doc string
	// Run performs the check. A returned error aborts the whole vet run
	// (it means the analyzer itself is broken, not that the code under
	// analysis is); findings go through Pass.Reportf instead.
	Run func(*Pass) error
}

// KnownAnalyzerNames is the canonical name set the //imrdmd:allow
// directive validator accepts. Kept here (as strings) so the framework
// can validate directives without importing the analyzer packages.
var KnownAnalyzerNames = []string{"codecbounds", "cowpublish", "detorder", "lockio", "wspair"}

func knownAnalyzer(name string) bool {
	for _, n := range KnownAnalyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// A Unit is one type-checked package ready for analysis — the common
// currency of the standalone loader, the unitchecker driver, and the
// analysistest harness.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Pass carries one (analyzer, unit) pairing through Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Posn:     p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Posn     token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Posn, d.Message, d.Analyzer)
}

// allowDirective is one parsed //imrdmd:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	posn     token.Position
}

// directiveRe matches `//imrdmd:allow <name> -- <reason>`. The reason is
// mandatory: an exception without a recorded justification is itself a
// diagnostic, so every suppression in the tree stays auditable.
var directiveRe = regexp.MustCompile(`^//imrdmd:allow\s+([a-z0-9]+)\s*(?:--\s*(.*))?$`)

// parseDirectives scans a file's comments for //imrdmd:allow lines,
// returning the well-formed directives and reporting malformed ones
// (missing reason, unknown analyzer name) as diagnostics.
func parseDirectives(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimRight(c.Text, " \t")
			if !strings.HasPrefix(text, "//imrdmd:") {
				continue
			}
			posn := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				report(Diagnostic{Analyzer: "directive", Pos: c.Pos(), Posn: posn,
					Message: "malformed //imrdmd: directive (want `//imrdmd:allow <analyzer> -- <reason>`)"})
				continue
			}
			name, reason := m[1], strings.TrimSpace(m[2])
			if !knownAnalyzer(name) {
				report(Diagnostic{Analyzer: "directive", Pos: c.Pos(), Posn: posn,
					Message: fmt.Sprintf("//imrdmd:allow names unknown analyzer %q", name)})
				continue
			}
			if reason == "" {
				report(Diagnostic{Analyzer: "directive", Pos: c.Pos(), Posn: posn,
					Message: fmt.Sprintf("//imrdmd:allow %s requires a reason (`-- <why this exception is sound>`)", name)})
				continue
			}
			out = append(out, allowDirective{analyzer: name, reason: reason, posn: posn})
		}
	}
	return out
}

// Run executes the analyzers over one unit and returns the surviving
// diagnostics, sorted by position. Three framework-level policies apply
// uniformly:
//
//   - *_test.go findings are dropped: the contracts govern production
//     code, and tests exercise violations on purpose (analysistest's
//     golden corpora, lock-order tests, …).
//   - an `//imrdmd:allow <name> -- reason` directive on the finding's
//     line, or on the line directly above it, suppresses that analyzer's
//     findings there; malformed or unknown-name directives are reported.
//   - diagnostics are deduplicated by (analyzer, position, message) so
//     an expansion that reaches the same sink twice reports once.
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: u.Fset, Files: u.Files, Pkg: u.Pkg, Info: u.Info, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	// Directive collection (and validation) is per-file, once per unit.
	type allowKey struct {
		file string
		line int
		name string
	}
	allowed := make(map[allowKey]bool)
	var directiveDiags []Diagnostic
	for _, f := range u.Files {
		ds := parseDirectives(u.Fset, f, func(d Diagnostic) { directiveDiags = append(directiveDiags, d) })
		for _, d := range ds {
			// The directive covers its own line and the next one, so it
			// works both as a trailing comment and on the line above.
			allowed[allowKey{d.posn.Filename, d.posn.Line, d.analyzer}] = true
			allowed[allowKey{d.posn.Filename, d.posn.Line + 1, d.analyzer}] = true
		}
	}
	diags = append(diags, directiveDiags...)

	seen := make(map[string]bool)
	out := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Posn.Filename, "_test.go") {
			continue
		}
		if allowed[allowKey{d.Posn.Filename, d.Posn.Line, d.Analyzer}] {
			continue
		}
		key := fmt.Sprintf("%s\x00%s\x00%s", d.Analyzer, d.Posn, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Posn, out[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---- shared type/AST helpers used by the analyzer suite ----

// Deref unwraps pointer types.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the named type behind t (through pointers and
// aliases), or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = Deref(types.Unalias(t))
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (through pointers) is the named type
// pkgName.typeName. Matching is by package *name* rather than full
// import path so the analysistest corpora can stub repo packages
// (testdata/src/compute, testdata/src/server, …) with the same shapes
// the real tree has.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// CalleeFunc resolves the *types.Func a call invokes: plain functions,
// methods (incl. interface methods), and generic instantiations. Returns
// nil for calls through function-typed variables, conversions, and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Strip explicit instantiation: F[T](...) / F[T1, T2](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// FuncPkgPath returns the import path of the package a function belongs
// to ("" for builtins or unresolved callees).
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// PkgPathBase returns the last element of an import path — the unit the
// analyzers' package scoping rules key on, so `internal/mat` and a
// testdata stub loaded as plain `mat` scope identically.
func PkgPathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RecvNamed returns the named receiver type of a method (through
// pointers), or nil for plain functions.
func RecvNamed(f *types.Func) *types.Named {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}
