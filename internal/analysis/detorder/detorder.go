// Package detorder protects the bit-stability contract of the kernel
// path (internal/{mat,svd,shard,dmd}): the 1e-8/1e-12 equivalence pins
// from PR 4 and PR 9 assume every reduction runs in a deterministic
// order and nothing on the compute path consults a clock or an RNG.
// Two finding classes:
//
//   - iteration over a map feeding float accumulation or payload
//     assembly (compound float arithmetic, float element stores, or
//     append inside the loop body): Go randomizes map order, so such a
//     loop produces run-to-run different rounding. Iterate a sorted key
//     slice instead.
//   - any use of time.Now/time.Since/time.Sleep or of math/rand (v1 or
//     v2) in these packages. Boot-time uses that provably never run on
//     the per-batch path carry an `//imrdmd:allow detorder -- reason`
//     directive instead (e.g. the mat cache-probe autotune).
package detorder

import (
	"go/ast"
	"go/types"

	"imrdmd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flags map-order-dependent numeric loops and clock/RNG use in the " +
		"kernel packages (mat, svd, shard, dmd), protecting bit-stable reductions",
	Run: run,
}

// kernelPackages are the package-path base names the determinism
// contract covers.
var kernelPackages = map[string]bool{"mat": true, "svd": true, "shard": true, "dmd": true}

// forbiddenTimeFuncs are the wall-clock entry points; time.Duration
// arithmetic and constants stay legal.
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true, "Sleep": true, "Tick": true, "After": true}

func run(pass *analysis.Pass) error {
	if !kernelPackages[analysis.PkgPathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkIdent(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkIdent(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[obj.Name()] {
			pass.Reportf(id.Pos(), "time.%s in kernel package %s: the kernel path must stay deterministic (no wall clock); hoist timing to the caller or add an //imrdmd:allow detorder directive with justification", obj.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(id.Pos(), "%s.%s in kernel package %s: the kernel path must stay deterministic (no RNG); thread randomness in from the caller", obj.Pkg().Path(), obj.Name(), pass.Pkg.Name())
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// accumulates floating-point state or assembles a payload, i.e. when the
// randomized iteration order can change the numeric result.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if why := accumulationIn(pass, rng.Body); why != "" {
		pass.Reportf(rng.Pos(), "map iteration order feeds %s: Go randomizes map order, breaking the kernel path's bit-stable reductions; iterate sorted keys instead", why)
	}
}

// accumulationIn describes the first order-sensitive operation in body
// ("" if none): compound float/complex arithmetic, a float/complex
// element store, or an append (payload assembly).
func accumulationIn(pass *analysis.Pass, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if isFloatish(pass, n.Lhs[0]) {
					why = "float accumulation"
				}
			case "=", ":=":
				for _, lhs := range n.Lhs {
					switch lhs.(type) {
					case *ast.IndexExpr, *ast.SelectorExpr:
						if isFloatish(pass, lhs) {
							why = "a float element store"
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					why = "payload assembly (append)"
				}
			}
		}
		return true
	})
	return why
}

func isFloatish(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
