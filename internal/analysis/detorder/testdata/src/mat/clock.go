package mat

import (
	"math/rand"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now in kernel package mat`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in kernel package mat`
}

func badRand() float64 {
	return rand.Float64() // want `math/rand.Float64 in kernel package mat`
}

// Duration arithmetic and constants stay legal.
func okDuration(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

// The sanctioned escape hatch for boot-time probes.
func okAllowed() time.Time {
	//imrdmd:allow detorder -- corpus check: boot-time probe, never on the kernel path
	return time.Now()
}
