package svd

func badAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order feeds float accumulation`
		sum += v
	}
	return sum
}

func badElementStore(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m { // want `map iteration order feeds a float element store`
		out[i] = v * 2
		i++
	}
}

func badPayload(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `map iteration order feeds payload assembly \(append\)`
		keys = append(keys, k)
	}
	return keys
}

// Sorted-key iteration is the prescribed fix.
func okSortedKeys(keys []int, m map[int]float64) float64 {
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Order-insensitive map loops stay legal.
func okCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func okMax(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
