package detorder_test

import (
	"testing"

	"imrdmd/internal/analysis/analysistest"
	"imrdmd/internal/analysis/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "mat", "svd")
}
