package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// checkSource type-checks one import-free source file into a Unit.
func checkSource(t *testing.T, filename, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	u, err := CheckParsed("p", fset, []*ast.File{f}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// reportEveryFunc flags every function declaration — enough surface to
// exercise the framework's filtering.
var reportEveryFunc = &Analyzer{
	Name: "wspair", // a known name, so //imrdmd:allow wspair applies
	Doc:  "test analyzer: reports every FuncDecl",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func messages(ds []Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestDirectiveSuppression(t *testing.T) {
	u := checkSource(t, "x.go", `package p

func plain() {}

//imrdmd:allow wspair -- justified exception for the test
func excused() {}
`)
	ds, err := Run(u, []*Analyzer{reportEveryFunc})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(ds)
	if len(got) != 1 || !strings.Contains(got[0], "func plain flagged") {
		t.Fatalf("want exactly the un-excused finding, got %q", got)
	}
}

func TestDirectiveValidation(t *testing.T) {
	u := checkSource(t, "x.go", `package p

//imrdmd:allow wspair
func missingReason() {}

//imrdmd:allow nosuchanalyzer -- the name is wrong
func unknownName() {}
`)
	ds, err := Run(u, []*Analyzer{})
	if err != nil {
		t.Fatal(err)
	}
	var reasonless, unknown bool
	for _, d := range ds {
		if d.Analyzer != "directive" {
			t.Errorf("directive findings must carry the directive analyzer name, got %q", d.Analyzer)
		}
		if strings.Contains(d.Message, "reason") {
			reasonless = true
		}
		if strings.Contains(d.Message, "nosuchanalyzer") {
			unknown = true
		}
	}
	if !reasonless || !unknown {
		t.Fatalf("want a reasonless-directive and an unknown-name finding, got %q", messages(ds))
	}
	// A reasonless directive must NOT suppress: exceptions stay auditable.
	ds, err = Run(u, []*Analyzer{reportEveryFunc})
	if err != nil {
		t.Fatal(err)
	}
	var stillFlagged bool
	for _, d := range ds {
		if strings.Contains(d.Message, "func missingReason flagged") {
			stillFlagged = true
		}
	}
	if !stillFlagged {
		t.Fatalf("reasonless directive suppressed a finding; got %q", messages(ds))
	}
}

func TestTestFileFindingsDropped(t *testing.T) {
	u := checkSource(t, "x_test.go", `package p

func helper() {}
`)
	ds, err := Run(u, []*Analyzer{reportEveryFunc})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("findings in _test.go files must be dropped, got %q", messages(ds))
	}
}

func TestDiagnosticsSortedAndDeduped(t *testing.T) {
	u := checkSource(t, "x.go", `package p

func b() {}

func a() {}
`)
	twice := &Analyzer{
		Name: "wspair",
		Doc:  "reports each FuncDecl twice",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
						pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	ds, err := Run(u, []*Analyzer{twice})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(ds)
	want := []string{"wspair: func b flagged", "wspair: func a flagged"} // source order
	if len(got) != len(want) {
		t.Fatalf("dedup failed: got %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %q, want %q", got, want)
		}
	}
}
