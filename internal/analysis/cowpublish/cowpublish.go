// Package cowpublish enforces the PR-6 copy-on-write publication
// contract in internal/server: a PublishedResult is immutable the moment
// it is swapped into the atomic pointer (or pushed into the history
// ring). Readers share instances with no synchronization, so any
// post-publication write is a data race that the type system cannot see.
//
// Allowed writes, in order of checking:
//
//   - writes inside a function literal passed to (*sync.Once).Do — the
//     sanctioned lazy-render path (SpectrumBody) that PR 6 introduced;
//     sync.Once provides the publication barrier.
//   - writes in a constructor (a function that builds the value with a
//     PublishedResult composite literal), but only before the value is
//     Stored: a constructor that stores and then keeps mutating is
//     exactly the bug this analyzer exists to catch.
//
// Everything else — field assignments, element stores into a result's
// slices (directly or through a one-level alias) — is a finding.
package cowpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"imrdmd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "cowpublish",
	Doc: "flags writes to server.PublishedResult (or its slices) outside its " +
		"constructor or sync.Once lazy-render path, and any write after the atomic Store",
	Run: run,
}

const typeName = "PublishedResult"

func run(pass *analysis.Pass) error {
	if analysis.PkgPathBase(pass.Pkg.Path()) != "server" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// funcFacts are the per-function positions the write rules key on.
type funcFacts struct {
	constructor bool
	// firstStore is the position of the first atomic Pointer.Store (or
	// ring append via history.Store) in the function; writes after it
	// are post-publication even inside a constructor.
	firstStore token.Pos
	// onceRanges are the body extents of function literals passed to
	// (*sync.Once).Do.
	onceRanges [][2]token.Pos
	// aliases maps local slice variables one assignment away from a
	// PublishedResult field (s := p.Spectrum).
	aliases map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	facts := gatherFacts(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			target, kind := classifyWrite(pass, facts, lhs)
			if target == nil {
				continue
			}
			pos := lhs.Pos()
			if inOnce(facts, pos) {
				continue
			}
			if facts.constructor && (facts.firstStore == token.NoPos || pos < facts.firstStore) {
				continue
			}
			if facts.constructor {
				pass.Reportf(pos, "%s %s after the atomic Store: the result is published and shared with lock-free readers; build it fully before storing", kind, typeName)
			} else {
				pass.Reportf(pos, "%s %s outside its constructor: published results are immutable after the swap (PR 6 contract); assemble a new result and re-publish instead", kind, typeName)
			}
		}
		return true
	})
}

func gatherFacts(pass *analysis.Pass, fd *ast.FuncDecl) *funcFacts {
	facts := &funcFacts{firstStore: token.NoPos, aliases: make(map[types.Object]bool)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if analysis.IsNamed(pass.Info.Types[n].Type, "server", typeName) {
				facts.constructor = true
			}
		case *ast.CallExpr:
			if isOnceDo(pass, n) {
				if lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit); ok {
					facts.onceRanges = append(facts.onceRanges, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
				}
			}
			if isAtomicStore(pass, n) && (facts.firstStore == token.NoPos || n.Pos() < facts.firstStore) {
				facts.firstStore = n.Pos()
			}
		case *ast.AssignStmt:
			// One-level alias tracking: s := p.Spectrum.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if sel, ok := ast.Unparen(n.Rhs[i]).(*ast.SelectorExpr); ok && isResultField(pass, sel) {
						if obj := objOf(pass, id); obj != nil {
							facts.aliases[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return facts
}

// classifyWrite decides whether lhs writes into a PublishedResult. It
// returns a non-nil anchor node and a description, or nil.
func classifyWrite(pass *analysis.Pass, facts *funcFacts, lhs ast.Expr) (ast.Node, string) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if isResultField(pass, lhs) {
			return lhs, "field write to"
		}
	case *ast.IndexExpr:
		x := ast.Unparen(lhs.X)
		if sel, ok := x.(*ast.SelectorExpr); ok && isResultField(pass, sel) {
			return lhs, "element store into a slice of"
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil && facts.aliases[obj] {
				return lhs, "element store (through an alias) into a slice of"
			}
		}
	}
	return nil, ""
}

// isResultField reports whether sel selects a field of PublishedResult.
func isResultField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.Info.Types[sel.X].Type
	return t != nil && analysis.IsNamed(t, "server", typeName)
}

func isOnceDo(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "Do" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := analysis.RecvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Once"
}

// isAtomicStore matches Store calls on sync/atomic values (the generic
// atomic.Pointer[T] swap and the history-ring pointer both publish).
func isAtomicStore(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	return fn != nil && fn.Name() == "Store" && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func inOnce(facts *funcFacts, pos token.Pos) bool {
	for _, r := range facts.onceRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
