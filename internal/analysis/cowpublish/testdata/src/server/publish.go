package server

import (
	"sync"
	"sync/atomic"
)

type PublishedResult struct {
	Version  uint64
	Spectrum []float64
	body     []byte
	once     sync.Once
}

type tenant struct {
	pub atomic.Pointer[PublishedResult]
}

// Constructor writes before the Store are the point of a constructor.
func okConstructor(t *tenant, spectrum []float64) {
	p := &PublishedResult{Version: 1}
	p.Spectrum = spectrum
	t.pub.Store(p)
}

// Writes after the Store race with lock-free readers.
func badAfterStore(t *tenant, spectrum []float64) {
	p := &PublishedResult{Version: 1}
	t.pub.Store(p)
	p.Version = 2     // want `field write to PublishedResult after the atomic Store`
	p.Spectrum[0] = 1 // want `element store into a slice of PublishedResult after the atomic Store`
	_ = spectrum
}

// Any write outside a constructor mutates a potentially-published value.
func badOutsideConstructor(p *PublishedResult) {
	p.Version = 2 // want `field write to PublishedResult outside its constructor`
}

func badAliasStore(p *PublishedResult) {
	s := p.Spectrum
	s[0] = 1 // want `element store \(through an alias\) into a slice of PublishedResult outside its constructor`
}

// The sync.Once lazy-render path is the sanctioned post-publication
// write (the publication barrier is the Once).
func okLazyRender(p *PublishedResult) []byte {
	p.once.Do(func() {
		p.body = []byte("rendered")
	})
	return p.body
}

// Reads are always fine.
func okRead(p *PublishedResult) float64 {
	if len(p.Spectrum) == 0 {
		return 0
	}
	return p.Spectrum[0]
}

// Writes to unrelated types stay out of scope.
type scratch struct{ vals []float64 }

func okOtherType(s *scratch) {
	s.vals = append(s.vals, 1)
	s.vals[0] = 2
}
