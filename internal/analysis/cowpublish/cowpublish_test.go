package cowpublish_test

import (
	"testing"

	"imrdmd/internal/analysis/analysistest"
	"imrdmd/internal/analysis/cowpublish"
)

func TestCowpublish(t *testing.T) {
	analysistest.Run(t, "testdata", cowpublish.Analyzer, "server")
}
