// Package compute stubs the repo's workspace pool surface: the analyzer
// matches by package name + type name, so this corpus-local shape stands
// in for imrdmd/internal/compute.
package compute

type Workspace struct{ f64 [][]float64 }

func (ws *Workspace) GetF64(n int) []float64     { return make([]float64, n) }
func (ws *Workspace) GetF64Zero(n int) []float64 { return make([]float64, n) }
func (ws *Workspace) PutF64(b []float64)         { ws.f64 = append(ws.f64, b) }

func (ws *Workspace) GetC128(n int) []complex128 { return make([]complex128, n) }
func (ws *Workspace) PutC128(b []complex128)     {}

func GetFloats[T float32 | float64](ws *Workspace, n int) []T { return make([]T, n) }
func PutFloats[T float32 | float64](ws *Workspace, b []T)     {}
