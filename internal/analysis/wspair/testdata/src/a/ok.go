package a

import "compute"

// The negative corpus pins the idioms the real tree uses; every pattern
// here once false-positived during development and must stay silent.

func deferPut(ws *compute.Workspace, fail bool) error {
	buf := ws.GetF64(8)
	defer ws.PutF64(buf)
	buf[0] = 1
	if fail {
		return errOops
	}
	return nil
}

func deferClosure(ws *compute.Workspace) {
	a := ws.GetF64(8)
	b := ws.GetC128(4)
	defer func() {
		ws.PutF64(a)
		ws.PutC128(b)
	}()
	a[0] = real(b[0])
}

// Ownership transfer: the caller receives the pairing obligation.
func transferReturn(ws *compute.Workspace) []float64 {
	buf := ws.GetF64(8)
	buf[0] = 1
	return buf
}

// Reslice keeps the same backing array; the Put still pairs.
func reslice(ws *compute.Workspace, n int) {
	buf := ws.GetF64(16)
	buf = buf[:n]
	ws.PutF64(buf)
}

// The power-iteration swap: both buffers stay referenced and are Put
// after the loop (internal/eig/nonsymmetric.go).
func swap(ws *compute.Workspace, iters int) {
	v := ws.GetC128(4)
	w := ws.GetC128(4)
	for i := 0; i < iters; i++ {
		v, w = w, v
	}
	ws.PutC128(v)
	ws.PutC128(w)
}

// The lazy-borrow idiom: acquire and release both guarded by the
// buffer's own nil-ness (internal/mat/skinny.go).
func lazyBorrow(ws *compute.Workspace, n int) {
	var buf []float64
	for i := 0; i < n; i++ {
		if buf == nil {
			buf = ws.GetF64(64)
		}
		buf[0]++
	}
	if buf != nil {
		ws.PutF64(buf)
	}
}

type holder struct{ b []float64 }

// install stores its parameter: an escape helper, ownership moves with
// the value (internal/shard Coordinator.install).
func (h *holder) install(b []float64) {
	h.b = b
}

func transferInstall(ws *compute.Workspace, h *holder) {
	buf := ws.GetF64(8)
	buf[0] = 1
	h.install(buf)
}

// releaseVia is a put-helper: passing a held buffer to it releases it.
func releaseVia(ws *compute.Workspace, b []float64) {
	ws.PutF64(b)
}

func viaHelper(ws *compute.Workspace) {
	buf := ws.GetF64(8)
	buf[0] = 1
	releaseVia(ws, buf)
}

// Borrowing: handing the buffer to an arbitrary callee does not end the
// caller's obligation, and the Put afterwards satisfies it.
func borrow(ws *compute.Workspace) {
	buf := ws.GetF64(8)
	fill(buf)
	ws.PutF64(buf)
}

func fill(b []float64) {
	for i := range b {
		b[i] = 1
	}
}

// Storing into a field directly is an ownership transfer.
func storeField(ws *compute.Workspace, h *holder) {
	buf := ws.GetF64(8)
	h.b = buf
}
