package a

import (
	"errors"

	"compute"
)

var errOops = errors.New("oops")

// The PR-1 leak class: the error return skips the Put.
func leakOnError(ws *compute.Workspace, fail bool) error {
	buf := ws.GetF64(8) // want `buf from ws.GetF64 is not returned to the pool on every path out of leakOnError`
	buf[0] = 1
	if fail {
		return errOops
	}
	ws.PutF64(buf)
	return nil
}

func leakAlways(ws *compute.Workspace) float64 {
	buf := ws.GetF64(8) // want `buf from ws.GetF64 is not returned to the pool on every path out of leakAlways`
	return buf[0]
}

func leakGeneric(ws *compute.Workspace, fail bool) error {
	buf := compute.GetFloats[float32](ws, 8) // want `buf from compute.GetFloats is not returned to the pool on every path out of leakGeneric`
	_ = buf[0]
	if fail {
		return errOops
	}
	compute.PutFloats(ws, buf)
	return nil
}

func doublePut(ws *compute.Workspace, cond bool) {
	buf := ws.GetF64(8)
	if cond {
		ws.PutF64(buf)
	}
	ws.PutF64(buf) // want `buf may already have been returned to the pool on this path`
}

func useAfterPut(ws *compute.Workspace) float64 {
	buf := ws.GetF64(8)
	ws.PutF64(buf)
	return buf[0] // want `buf is used after being returned to the pool`
}

func overwriteHeld(ws *compute.Workspace) {
	buf := ws.GetF64(8)
	buf[0] = 1
	buf = ws.GetF64(16) // want `buf is overwritten by a new Get while still held`
	ws.PutF64(buf)
}

func reassignHeld(ws *compute.Workspace, other []float64) {
	buf := ws.GetF64(8)
	buf = other // want `buf is reassigned while still held`
	_ = buf
}

func leakVarDecl(ws *compute.Workspace, fail bool) error {
	var buf = ws.GetF64Zero(8) // want `buf from ws.GetF64Zero is not returned to the pool on every path out of leakVarDecl`
	_ = buf
	if fail {
		return errOops
	}
	ws.PutF64(buf)
	return nil
}
