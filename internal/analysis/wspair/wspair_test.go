package wspair_test

import (
	"testing"

	"imrdmd/internal/analysis/analysistest"
	"imrdmd/internal/analysis/wspair"
)

func TestWspair(t *testing.T) {
	analysistest.Run(t, "testdata", wspair.Analyzer, "a")
}
