// Package wspair enforces the PR-1 pooling contract: every buffer taken
// from a compute.Workspace pool (ws.GetF64 / GetC128 / compute.GetFloats
// / mat.GetDense and friends) is returned with the matching Put* on
// every path out of the acquiring function, unless ownership is
// explicitly transferred (the buffer is returned to the caller or stored
// into a longer-lived structure). A buffer that misses its Put on an
// early-error return is not a crash — it is a silent pool drain that
// turns the steady-state alloc/op the PR-1 benchmarks pinned back into
// per-batch garbage, which is why this is machine-checked.
//
// The analysis runs a forward may-dataflow over the framework CFG
// (internal/analysis/cfg.go). Per acquired buffer it tracks the set of
// path-states {held, held+deferred-release, released, released+deferred}
// and reports:
//
//	leak          some exit path still holds the buffer
//	double-put    a Put on a path where the buffer may already be released
//	use-after-put a read of the buffer on a path where it may be released
//
// Ownership transfers (return, store into field/index/global, capture by
// a non-deferred closure, send, append into an escaping slice) stop
// tracking — the contract moves with the value. Passing the buffer to a
// same-package helper whose body Puts the corresponding parameter counts
// as a release (one-level call graph); passing it to any other call
// leaves it held, which matches the tree's convention that kernels
// borrow buffers and the getter returns them.
package wspair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imrdmd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wspair",
	Doc: "checks workspace-pool Get*/Put* pairing on all return paths " +
		"(leaks, double-puts, use-after-put) via CFG dataflow",
	Run: run,
}

// status is one per-path state of a tracked buffer.
type status uint8

const (
	held     status = 1 << iota // acquired, not released, no defer pending
	heldD                       // acquired, a deferred release will run
	released                    // explicitly released
	releasedD
)

type statusSet = status // bitmask union of statuses

func run(pass *analysis.Pass) error {
	helpers, escapes := indexHelpers(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					name := n.Name.Name
					analyzeFunc(pass, helpers, escapes, name, n.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, helpers, escapes, "func literal", n.Body)
			}
			return true // descend: nested literals analyzed separately
		})
	}
	return nil
}

// ---- pool API matching ----

// isWorkspaceType matches compute.Workspace through pointers; the
// testdata corpus stubs the same shape under a package named "compute".
func isWorkspaceType(t types.Type) bool {
	return analysis.IsNamed(t, "compute", "Workspace")
}

// poolCall classifies a call as a pool acquire ("get"), release ("put"),
// or neither, by the repo's naming convention anchored on the Workspace
// type: a Get*/Put* method on *compute.Workspace, or a Get*/Put*
// function whose parameters include a *compute.Workspace (the mat
// adapters and the generic compute.GetFloats/PutFloats).
func poolCall(info *types.Info, call *ast.CallExpr) (kind string, fn *types.Func) {
	fn = analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", nil
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Get"):
		kind = "get"
	case strings.HasPrefix(name, "Put"):
		kind = "put"
	default:
		return "", nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", nil
	}
	if sig.Recv() != nil && isWorkspaceType(sig.Recv().Type()) {
		return kind, fn
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isWorkspaceType(sig.Params().At(i).Type()) {
			return kind, fn
		}
	}
	return "", nil
}

// indexHelpers classifies same-package functions by what they do with
// their parameters:
//
//   - put-helpers Put one of their parameters, so passing a held buffer
//     to such a helper counts as the release (one-level call graph);
//   - escape-helpers store a parameter's reference into a field, index,
//     dereference, global, channel, or return value (ownership transfer:
//     Coordinator.install is the canonical case) — the callee (or
//     whatever it stored into) now owns the pairing obligation, so the
//     argument stops being tracked at the call site.
func indexHelpers(pass *analysis.Pass) (putH, escH map[*types.Func][]bool) {
	putH = make(map[*types.Func][]bool)
	escH = make(map[*types.Func][]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			nparams := sig.Params().Len()
			puts := make([]bool, nparams)
			escs := make([]bool, nparams)
			anyPut, anyEsc := false, false
			paramIdx := func(obj types.Object) int {
				for i := 0; i < nparams; i++ {
					if obj == sig.Params().At(i) {
						return i
					}
				}
				return -1
			}
			markStored := func(e ast.Expr) {
				forEachStoredIdent(e, func(id *ast.Ident) {
					if i := paramIdx(pass.Info.Uses[id]); i >= 0 {
						escs[i] = true
						anyEsc = true
					}
				})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if kind, _ := poolCall(pass.Info, n); kind != "put" {
						return true
					}
					for _, arg := range n.Args {
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok {
							continue
						}
						if i := paramIdx(pass.Info.Uses[id]); i >= 0 {
							puts[i] = true
							anyPut = true
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
							continue // local copy, not a store
						}
						markStored(n.Rhs[i])
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						markStored(res)
					}
				case *ast.SendStmt:
					markStored(n.Value)
				}
				return true
			})
			if anyPut {
				putH[fn] = puts
			}
			if anyEsc {
				escH[fn] = escs
			}
		}
	}
	return putH, escH
}

// forEachStoredIdent visits the identifiers whose *reference* expression
// e stores (value position: the ident itself, a reslice, its address, a
// composite element) — the same shape untrackStored walks.
func forEachStoredIdent(e ast.Expr, fn func(*ast.Ident)) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn(e)
	case *ast.SliceExpr:
		forEachStoredIdent(e.X, fn)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			forEachStoredIdent(e.X, fn)
		}
	case *ast.StarExpr:
		forEachStoredIdent(e.X, fn)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			forEachStoredIdent(elt, fn)
		}
	case *ast.KeyValueExpr:
		forEachStoredIdent(e.Value, fn)
	}
}

// ---- per-function dataflow ----

type tracked struct {
	obj  types.Object
	pos  token.Pos // acquire site, for leak attribution
	expr string    // rendered acquire call, for messages
}

type analyzer struct {
	pass    *analysis.Pass
	helpers map[*types.Func][]bool
	escapes map[*types.Func][]bool
	funcN   string
	body    *ast.BlockStmt

	acquired map[types.Object]*tracked
	// deferPuts are buffers some defer statement in this function
	// releases (directly, via closure, or via a put-helper); an acquire
	// of such a buffer starts in the held+deferred state.
	deferPuts map[types.Object]bool
	// nilGet / nilPut record the lazy-borrow idiom the path-insensitive
	// dataflow cannot correlate: an acquire under `if b == nil` and a
	// release under `if b != nil`. Both present ⇒ the pairing is guarded
	// by the pointer itself and the exit-leak check stands down.
	nilGet map[types.Object]bool
	nilPut map[types.Object]bool

	reportedLeak   map[types.Object]bool
	reportedDouble map[types.Object]bool
	reportedUse    map[types.Object]bool
}

func analyzeFunc(pass *analysis.Pass, helpers, escapes map[*types.Func][]bool, name string, body *ast.BlockStmt) {
	a := &analyzer{
		pass: pass, helpers: helpers, escapes: escapes, funcN: name, body: body,
		acquired:       make(map[types.Object]*tracked),
		deferPuts:      make(map[types.Object]bool),
		nilGet:         make(map[types.Object]bool),
		nilPut:         make(map[types.Object]bool),
		reportedLeak:   make(map[types.Object]bool),
		reportedDouble: make(map[types.Object]bool),
		reportedUse:    make(map[types.Object]bool),
	}
	if !a.prescan() {
		return // no pool activity in this function
	}
	cfg := analysis.BuildCFG(body, pass.Info)
	if cfg.Unsupported {
		return // goto-bearing control flow: stay silent rather than guess
	}

	// Forward may-analysis to fixpoint, then one reporting pass.
	in := make(map[*analysis.CFGBlock]map[types.Object]statusSet)
	out := make(map[*analysis.CFGBlock]map[types.Object]statusSet)
	work := []*analysis.CFGBlock{cfg.Entry}
	inWork := map[*analysis.CFGBlock]bool{cfg.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work, inWork[b] = work[1:], false
		state := cloneState(in[b])
		state = a.transfer(b, state, false)
		if !sameState(out[b], state) {
			out[b] = state
			for _, succ := range b.Succs {
				merged := mergeState(in[succ], state)
				if !sameState(in[succ], merged) {
					in[succ] = merged
					if !inWork[succ] {
						work = append(work, succ)
						inWork[succ] = true
					}
				}
			}
		}
	}
	for _, b := range cfg.Blocks {
		a.transfer(b, cloneState(in[b]), true)
	}
	// Exit: anything still (only-)held on some path leaked. Lazy borrows
	// whose acquire and release are both guarded by the buffer's own
	// nil-ness are path-correlated in a way the may-analysis cannot see.
	for obj, st := range in[cfg.Exit] {
		if a.nilGet[obj] && a.nilPut[obj] {
			continue
		}
		if st&held != 0 && !a.reportedLeak[obj] {
			t := a.acquired[obj]
			if t == nil {
				continue
			}
			a.reportedLeak[obj] = true
			a.pass.Reportf(t.pos, "workspace buffer %s from %s is not returned to the pool on every path out of %s: add the matching Put* (or defer it) before returning", obj.Name(), t.expr, a.funcN)
		}
	}
}

// prescan records acquire sites and function-wide deferred releases;
// reports whether the function touches the pool API at all.
func (a *analyzer) prescan() bool {
	any := false
	ast.Inspect(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind, _ := poolCall(a.pass.Info, call)
				if kind != "get" {
					continue
				}
				any = true
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := a.objOf(id); obj != nil {
					a.acquired[obj] = &tracked{obj: obj, pos: call.Pos(), expr: exprText(call.Fun)}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok {
					continue
				}
				if kind, _ := poolCall(a.pass.Info, call); kind != "get" {
					continue
				}
				any = true
				if i < len(n.Names) && n.Names[i].Name != "_" {
					if obj := a.objOf(n.Names[i]); obj != nil {
						a.acquired[obj] = &tracked{obj: obj, pos: call.Pos(), expr: exprText(call.Fun)}
					}
				}
			}
		case *ast.CallExpr:
			if kind, _ := poolCall(a.pass.Info, n); kind != "" {
				any = true
			}
		case *ast.DeferStmt:
			for _, obj := range a.deferReleased(n.Call) {
				a.deferPuts[obj] = true
			}
		case *ast.IfStmt:
			a.noteNilGuard(n)
		}
		return true
	})
	return any
}

// noteNilGuard records the lazy-borrow idiom: `if b == nil { b = Get }`
// and `if b != nil { Put(b) }`.
func (a *analyzer) noteNilGuard(ifs *ast.IfStmt) {
	obj, eq := nilCompare(a.pass.Info, ifs.Cond)
	if obj == nil {
		return
	}
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !eq || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || a.objOf(id) != obj {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
					if kind, _ := poolCall(a.pass.Info, call); kind == "get" {
						a.nilGet[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if eq {
				return true
			}
			for _, rel := range a.callReleased(n) {
				if rel == obj {
					a.nilPut[obj] = true
				}
			}
		}
		return true
	})
}

// callReleased lists the objects one call releases (direct Put or
// put-helper).
func (a *analyzer) callReleased(call *ast.CallExpr) []types.Object {
	var out []types.Object
	if kind, _ := poolCall(a.pass.Info, call); kind == "put" {
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := a.pass.Info.Uses[id]; obj != nil {
					out = append(out, obj)
				}
			}
		}
		return out
	}
	if fn := analysis.CalleeFunc(a.pass.Info, call); fn != nil {
		if puts, ok := a.helpers[fn]; ok {
			for i, arg := range call.Args {
				if i < len(puts) && puts[i] {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := a.pass.Info.Uses[id]; obj != nil {
							out = append(out, obj)
						}
					}
				}
			}
		}
	}
	return out
}

// nilCompare matches `x == nil` (eq=true) / `x != nil` (eq=false).
func nilCompare(info *types.Info, cond ast.Expr) (obj types.Object, eq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	classify := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		o := info.Uses[id]
		if _, isNil := o.(*types.Nil); isNil {
			return nil, true
		}
		return o, false
	}
	xo, xn := classify(be.X)
	yo, yn := classify(be.Y)
	switch {
	case xo != nil && yn:
		return xo, be.Op == token.EQL
	case yo != nil && xn:
		return yo, be.Op == token.EQL
	}
	return nil, false
}

// deferReleased lists the objects a deferred call releases: a direct
// Put*, a closure whose body Puts captured buffers, or a put-helper.
func (a *analyzer) deferReleased(call *ast.CallExpr) []types.Object {
	var out []types.Object
	collectArgs := func(c *ast.CallExpr) {
		for _, arg := range c.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := a.pass.Info.Uses[id]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	if kind, _ := poolCall(a.pass.Info, call); kind == "put" {
		collectArgs(call)
		return out
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, _ := poolCall(a.pass.Info, c); kind == "put" {
				collectArgs(c)
			}
			return true
		})
		return out
	}
	if fn := analysis.CalleeFunc(a.pass.Info, call); fn != nil {
		if puts, ok := a.helpers[fn]; ok {
			for i, arg := range call.Args {
				if i < len(puts) && puts[i] {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := a.pass.Info.Uses[id]; obj != nil {
							out = append(out, obj)
						}
					}
				}
			}
		}
	}
	return out
}

// transfer runs one block's statements over state. When report is true,
// double-put and use-after-put findings are emitted (the fixpoint pass
// runs silent so findings come from stable states).
func (a *analyzer) transfer(b *analysis.CFGBlock, state map[types.Object]statusSet, report bool) map[types.Object]statusSet {
	for _, s := range b.Stmts {
		a.transferStmt(s, state, report)
	}
	return state
}

func (a *analyzer) transferStmt(s ast.Stmt, state map[types.Object]statusSet, report bool) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		for _, obj := range a.deferReleased(s.Call) {
			if st, ok := state[obj]; ok {
				state[obj] = shiftDefer(st)
			}
		}
		// Arguments of the deferred call are evaluated now; other
		// tracked uses inside are fine (release happens at exit).
		return

	case *ast.ReturnStmt:
		// Returning a tracked buffer transfers ownership to the caller.
		for _, res := range s.Results {
			a.untrackStored(res, state)
		}
		a.scanUses(s, state, report)
		return

	case *ast.AssignStmt:
		// RHS uses happen first.
		for _, rhs := range s.Rhs {
			a.scanExpr(rhs, state, report)
		}
		// Move semantics: `x = y` (and the swap `v, w = w, v` of power
		// iteration) transfers the pairing obligation to the target
		// variable. A tuple assignment evaluates every RHS before any
		// LHS, so statuses are snapshotted up front.
		type move struct {
			dst types.Object
			st  statusSet
		}
		var moves []move
		moveAt := make(map[int]bool)
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				rid, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				src := a.pass.Info.Uses[rid]
				if src == nil {
					continue
				}
				st, live := state[src]
				if !live {
					continue
				}
				dst := a.objOf(id)
				if dst == nil {
					continue
				}
				moves = append(moves, move{dst: dst, st: st})
				moveAt[i] = true
				if a.acquired[dst] == nil {
					a.acquired[dst] = a.acquired[src]
				}
				delete(state, src)
			}
		}
		for i, lhs := range s.Lhs {
			if moveAt[i] {
				continue // applied after the loop, post-snapshot
			}
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			}
			if isIdent {
				obj := a.objOf(id)
				if obj == nil {
					continue
				}
				if _, isAcq := a.acquired[obj]; isAcq && rhs != nil {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						if kind, _ := poolCall(a.pass.Info, call); kind == "get" {
							// (Re-)acquire through this site. A lazy borrow
							// (`if b == nil { b = Get }`) only runs un-held.
							if st, live := state[obj]; live && st&(held|heldD) != 0 && !mentions(rhs, a.pass.Info, obj) && !a.nilGet[obj] && report && !a.reportedLeak[obj] {
								a.reportedLeak[obj] = true
								a.pass.Reportf(id.Pos(), "workspace buffer %s is overwritten by a new Get while still held: the previous buffer leaks; Put it first", obj.Name())
							}
							if a.deferPuts[obj] {
								state[obj] = heldD
							} else {
								state[obj] = held
							}
							continue
						}
					}
				}
				if st, live := state[obj]; live {
					// Reassignment of a live tracked variable.
					if rhs != nil && mentions(rhs, a.pass.Info, obj) {
						continue // reslice (b = b[:n]): same backing array
					}
					if st&(held|heldD) != 0 && report && !a.reportedLeak[obj] {
						a.reportedLeak[obj] = true
						a.pass.Reportf(id.Pos(), "workspace buffer %s is reassigned while still held: the pooled buffer leaks; Put it before reusing the variable", obj.Name())
					}
					delete(state, obj)
				}
				continue
			}
			// Store into a field/index/map/deref: a buffer stored there
			// (as a value, not an element read) escapes the frame.
			if rhs != nil {
				a.untrackStored(rhs, state)
			}
			a.scanExpr(lhs, state, report)
		}
		for _, mv := range moves {
			if st, live := state[mv.dst]; live && st&(held|heldD) != 0 && report && !a.reportedLeak[mv.dst] {
				a.reportedLeak[mv.dst] = true
				a.pass.Reportf(s.Pos(), "workspace buffer %s is reassigned while still held: the pooled buffer leaks; Put it before reusing the variable", mv.dst.Name())
			}
			state[mv.dst] = mv.st
		}
		return

	case *ast.GoStmt:
		// The goroutine may use or release captured buffers at any time.
		a.untrackIn(s.Call, state)
		return

	case *ast.SendStmt:
		a.untrackStored(s.Value, state)
		a.scanExpr(s.Chan, state, report)
		return

	case *ast.RangeStmt:
		a.scanExpr(s.X, state, report)
		return

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						a.scanExpr(v, state, report)
						if i < len(vs.Names) {
							a.maybeAcquireDecl(vs.Names[i], v, state)
						}
					}
				}
			}
		}
		return

	default:
		a.scanUses(s, state, report)
	}
}

// scanUses walks a statement's expressions for pool events and tracked
// uses (skipping nested function literals — they are analyzed on their
// own, and capture untracks below).
func (a *analyzer) scanUses(n ast.Node, state map[types.Object]statusSet, report bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Captured buffers may live beyond this function's frame.
			a.untrackIn(n.Body, state)
			return false
		case *ast.CallExpr:
			kind, _ := poolCall(a.pass.Info, n)
			if kind == "put" {
				a.applyPut(n, state, report)
				return false // args of the Put are not "uses"
			}
			if fn := analysis.CalleeFunc(a.pass.Info, n); fn != nil {
				if puts, ok := a.helpers[fn]; ok {
					a.applyHelper(n, puts, state, report)
					return false
				}
				if escs, ok := a.escapes[fn]; ok {
					// Ownership transfer: the callee stores these args.
					for i, arg := range n.Args {
						if i < len(escs) && escs[i] {
							a.untrackStored(arg, state)
						}
					}
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isB := a.pass.Info.Uses[id].(*types.Builtin); isB {
					// appending a tracked buffer into a slice escapes it
					for _, arg := range n.Args[1:] {
						a.untrackStored(arg, state)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &b: the address escapes analysis precision.
				a.untrackIn(n.X, state)
				return false
			}
		case *ast.CompositeLit:
			// A buffer placed (as a value) in a composite literal escapes.
			for _, e := range n.Elts {
				a.untrackStored(e, state)
			}
		case *ast.Ident:
			a.useIdent(n, state, report)
		}
		return true
	})
}

// maybeAcquireDecl handles `var b = ws.GetF64(n)` declarations.
func (a *analyzer) maybeAcquireDecl(name *ast.Ident, value ast.Expr, state map[types.Object]statusSet) {
	call, ok := ast.Unparen(value).(*ast.CallExpr)
	if !ok {
		return
	}
	if kind, _ := poolCall(a.pass.Info, call); kind != "get" {
		return
	}
	obj := a.objOf(name)
	if obj == nil || name.Name == "_" {
		return
	}
	if a.deferPuts[obj] {
		state[obj] = heldD
	} else {
		state[obj] = held
	}
}

func (a *analyzer) scanExpr(e ast.Expr, state map[types.Object]statusSet, report bool) {
	a.scanUses(e, state, report)
}

func (a *analyzer) useIdent(id *ast.Ident, state map[types.Object]statusSet, report bool) {
	obj := a.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	st, ok := state[obj]
	if !ok {
		return
	}
	if st&(released|releasedD) != 0 && report && !a.reportedUse[obj] {
		a.reportedUse[obj] = true
		a.pass.Reportf(id.Pos(), "workspace buffer %s is used after being returned to the pool: the pool may have handed it to another goroutine", obj.Name())
	}
}

func (a *analyzer) applyPut(call *ast.CallExpr, state map[types.Object]statusSet, report bool) {
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := a.pass.Info.Uses[id]
		if obj == nil {
			continue
		}
		st, live := state[obj]
		if !live {
			continue
		}
		if st&(released|releasedD) != 0 && report && !a.reportedDouble[obj] {
			a.reportedDouble[obj] = true
			a.pass.Reportf(call.Pos(), "workspace buffer %s may already have been returned to the pool on this path (double Put corrupts the pool's reuse invariants)", obj.Name())
		}
		state[obj] = shiftPut(st)
	}
}

func (a *analyzer) applyHelper(call *ast.CallExpr, puts []bool, state map[types.Object]statusSet, report bool) {
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := a.pass.Info.Uses[id]
		if obj == nil {
			continue
		}
		if i < len(puts) && puts[i] {
			if st, live := state[obj]; live {
				if st&(released|releasedD) != 0 && report && !a.reportedDouble[obj] {
					a.reportedDouble[obj] = true
					a.pass.Reportf(call.Pos(), "workspace buffer %s may already have been returned to the pool on this path (double Put corrupts the pool's reuse invariants)", obj.Name())
				}
				state[obj] = shiftPut(st)
			}
		} else {
			a.useIdent(id, state, report)
		}
	}
}

// untrackStored removes from state the objects whose *reference* the
// expression stores somewhere (the ident itself, a reslice of it, its
// address, or a composite carrying it). Element reads (b[i]) do not
// escape the buffer — kernels read and write borrowed buffers
// constantly — so IndexExpr deliberately contributes nothing.
func (a *analyzer) untrackStored(e ast.Expr, state map[types.Object]statusSet) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := a.pass.Info.Uses[e]; obj != nil {
			delete(state, obj)
		}
	case *ast.SliceExpr:
		a.untrackStored(e.X, state) // b[2:] shares the backing array
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			a.untrackStored(e.X, state)
		}
	case *ast.StarExpr:
		a.untrackStored(e.X, state)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.untrackStored(elt, state)
		}
	case *ast.KeyValueExpr:
		a.untrackStored(e.Value, state)
	case *ast.FuncLit:
		a.untrackIn(e.Body, state) // captured: any later use is out of view
	}
}

// untrackIn removes every tracked object referenced in n from state:
// ownership has moved somewhere the intraprocedural analysis cannot see,
// so the pairing obligation moves with it.
func (a *analyzer) untrackIn(n ast.Node, state map[types.Object]statusSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.pass.Info.Uses[id]; obj != nil {
				delete(state, obj)
			}
		}
		return true
	})
}

func (a *analyzer) objOf(id *ast.Ident) types.Object {
	if obj := a.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.pass.Info.Uses[id]
}

// ---- status algebra ----

func shiftPut(st statusSet) statusSet {
	var out statusSet
	if st&held != 0 {
		out |= released
	}
	if st&heldD != 0 {
		out |= releasedD
	}
	if st&released != 0 {
		out |= released
	}
	if st&releasedD != 0 {
		out |= releasedD
	}
	return out
}

func shiftDefer(st statusSet) statusSet {
	var out statusSet
	if st&held != 0 {
		out |= heldD
	}
	if st&released != 0 {
		out |= releasedD
	}
	out |= st & (heldD | releasedD)
	return out
}

func cloneState(m map[types.Object]statusSet) map[types.Object]statusSet {
	out := make(map[types.Object]statusSet, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergeState(dst, src map[types.Object]statusSet) map[types.Object]statusSet {
	out := cloneState(dst)
	for k, v := range src {
		out[k] |= v
	}
	return out
}

func sameState(a, b map[types.Object]statusSet) bool {
	if a == nil || len(a) != len(b) {
		return a != nil && len(b) == 0 && len(a) == 0
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// mentions reports whether expr references obj (reslice detection).
func mentions(e ast.Expr, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X)
	case *ast.IndexListExpr:
		return exprText(e.X)
	}
	return "Get*"
}
