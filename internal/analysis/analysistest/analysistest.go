// Package analysistest runs an analyzer over a golden corpus laid out
// GOPATH-style under testdata/src/<pkg>/ and checks its diagnostics
// against `// want "regex"` comments, mirroring the x/tools analysistest
// convention without the dependency (the build is offline).
//
// Each `// want` comment expects one diagnostic on its own line; several
// quoted regexes expect several diagnostics. Lines without a want
// comment must produce no diagnostic, and every want must be matched —
// both directions fail the test with the full actual/expected sets.
//
// Corpus packages may import each other by bare path (testdata/src is
// the root) and anything from the standard library; std imports are
// type-checked from $GOROOT source, so the corpus can exercise
// sync.Mutex, encoding/json, sync/atomic, and friends for real.
// Diagnostics flow through analysis.Run, so the corpus also exercises
// //imrdmd:allow directives exactly as go vet does.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"imrdmd/internal/analysis"
)

// Run checks analyzer a against the corpus packages pkgs (import paths
// relative to testdata/src).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	imp := &corpusImporter{
		root:  root,
		std:   importer.ForCompiler(token.NewFileSet(), "source", nil),
		cache: make(map[string]*types.Package),
	}
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			unit, err := imp.load(pkg)
			if err != nil {
				t.Fatalf("loading corpus package %s: %v", pkg, err)
			}
			diags, err := analysis.Run(unit, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
			}
			check(t, unit, diags)
		})
	}
}

// corpusImporter resolves corpus-local packages from root and everything
// else from the standard library source importer.
type corpusImporter struct {
	root  string
	std   types.Importer
	cache map[string]*types.Package
}

func (ci *corpusImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ci.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ci.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		unit, err := ci.check(path, dir)
		if err != nil {
			return nil, err
		}
		ci.cache[path] = unit.Pkg
		return unit.Pkg, nil
	}
	return ci.std.Import(path)
}

// load type-checks one corpus package into a framework Unit.
func (ci *corpusImporter) load(path string) (*analysis.Unit, error) {
	return ci.check(path, filepath.Join(ci.root, path))
}

func (ci *corpusImporter) check(path, dir string) (*analysis.Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return analysis.CheckParsed(path, fset, files, ci, "")
}

// wantRe matches the quoted regexes of one want comment — either
// double-quoted (with \" and \\ escapes) or backtick-quoted (literal).
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against the unit's want comments.
func check(t *testing.T, unit *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := unit.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat := m[2] // backtick form: taken literally
					if m[1] != "" || m[2] == "" {
						pat = unquoteWant(m[1])
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Posn.Filename && w.line == d.Posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", filepath.Base(d.Posn.Filename), d.Posn.Line, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d: want match for %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// unquoteWant undoes the minimal escaping the want syntax needs (\" and
// \\); everything else passes through to the regexp compiler.
func unquoteWant(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
