// A small intra-function control-flow graph over ast.Stmt, built for the
// wspair dataflow (leak / double-put / use-after-put over pooled
// workspace buffers). It models the constructs that appear on the repo's
// compute paths — blocks, if/else, for/range, switch/type-switch,
// select, break/continue (labeled or not), return, and panic-terminated
// paths — and declines (CFG.Unsupported) on goto, so the analysis can
// fall back to silence rather than guess.
package analysis

import (
	"go/ast"
	"go/types"
)

// A CFGBlock is a straight-line run of statements. Terminators are
// encoded in the successor edges; Return records the return statement
// (if any) that ends the block so exit-time reporting can point at it.
type CFGBlock struct {
	Stmts []ast.Stmt
	Succs []*CFGBlock
	// Return is set when the block ends in an explicit return.
	Return *ast.ReturnStmt
	// Panics is set when the block ends in a call to panic(...) — such
	// paths do not reach the function exit for leak-reporting purposes.
	Panics bool
}

// CFG is the graph for one function body. Exit is a synthetic empty
// block every returning path feeds into.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
	// Unsupported is set when the body uses control flow the builder
	// does not model (goto); callers should skip analysis of the
	// function rather than report from an incomplete graph.
	Unsupported bool
}

type cfgBuilder struct {
	cfg  *CFG
	info *types.Info
	// break/continue targets, innermost last.
	breaks    []*CFGBlock
	continues []*CFGBlock
	// label -> targets, for labeled break/continue.
	labelBreak    map[string]*CFGBlock
	labelContinue map[string]*CFGBlock
}

// BuildCFG constructs the CFG for a function body. info may be nil; it
// is only used to sharpen panic detection (recognizing the builtin).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	cfg := &CFG{}
	b := &cfgBuilder{
		cfg:           cfg,
		info:          info,
		labelBreak:    make(map[string]*CFGBlock),
		labelContinue: make(map[string]*CFGBlock),
	}
	cfg.Entry = b.newBlock()
	cfg.Exit = b.newBlock()
	last := b.stmts(body.List, cfg.Entry, "")
	if last != nil {
		b.edge(last, cfg.Exit) // implicit return at end of body
	}
	return cfg
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the block
// control falls out of (nil if the list always transfers away). label is
// the pending label for the next loop/switch statement.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *CFGBlock, label string) *CFGBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch; keep building a
			// detached block so its statements still get scanned (it can
			// hold no live buffer state, which is fine).
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, label)
		label = ""
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *CFGBlock, label string) *CFGBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur, "")

	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Cond})
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmts(s.Body.List, thenB, "")
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(s.Else, elseB, "")
			if elseEnd != nil {
				b.edge(elseEnd, join)
			}
		} else {
			b.edge(cur, join)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		b.edge(post, head)
		b.pushLoop(after, post, label)
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		bodyEnd := b.stmts(s.Body.List, bodyB, "")
		if bodyEnd != nil {
			b.edge(bodyEnd, post)
		}
		b.popLoop(label)
		// For a `for {}` with no reachable break, after simply has no
		// predecessors — downstream blocks then start from empty state,
		// which reports nothing (sound for leak detection: those paths
		// never reach the function exit).
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Stmts = append(head.Stmts, s) // key/value bindings + ranged expr
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after) // zero iterations
		b.pushLoop(after, head, label)
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		bodyEnd := b.stmts(s.Body.List, bodyB, "")
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		b.popLoop(label)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(s, cur, label)

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		cur.Return = s
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		switch s.Tok.String() {
		case "break":
			if t := b.branchTarget(s, b.breaks, b.labelBreak); t != nil {
				b.edge(cur, t)
			}
		case "continue":
			if t := b.branchTarget(s, b.continues, b.labelContinue); t != nil {
				b.edge(cur, t)
			}
		case "goto":
			b.cfg.Unsupported = true
		case "fallthrough":
			// Handled by switchLike's case chaining; treat as fallthrough
			// edge added there. Mark unsupported only if seen outside.
		}
		return nil

	default:
		cur.Stmts = append(cur.Stmts, s)
		if isPanicStmt(s, b.info) {
			cur.Panics = true
			return nil
		}
		return cur
	}
}

// switchLike builds switch/type-switch/select: each clause is an
// alternative branch from the head; fallthrough chains to the next case
// body.
func (b *cfgBuilder) switchLike(s ast.Stmt, cur *CFGBlock, label string) *CFGBlock {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		if s.Tag != nil {
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Tag})
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	after := b.newBlock()
	b.breaks = append(b.breaks, after)
	if label != "" {
		b.labelBreak[label] = after
	}
	// Build case bodies; collect them so fallthrough can chain.
	type caseBody struct {
		first *CFGBlock
		end   *CFGBlock
		falls bool
	}
	var cases []caseBody
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: e})
			}
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				stmts = append([]ast.Stmt{cl.Comm}, cl.Body...)
			} else {
				hasDefault = true
				stmts = cl.Body
			}
		}
		first := b.newBlock()
		b.edge(cur, first)
		falls := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				falls = true
				stmts = stmts[:n-1]
			}
		}
		end := b.stmts(stmts, first, "")
		cases = append(cases, caseBody{first: first, end: end, falls: falls})
	}
	for i, c := range cases {
		if c.end == nil {
			continue
		}
		if c.falls && i+1 < len(cases) {
			b.edge(c.end, cases[i+1].first)
		} else {
			b.edge(c.end, after)
		}
	}
	if !hasDefault {
		b.edge(cur, after) // no case matched
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
	return after
}

func (b *cfgBuilder) pushLoop(brk, cont *CFGBlock, label string) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
}

func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, stack []*CFGBlock, labeled map[string]*CFGBlock) *CFGBlock {
	if s.Label != nil {
		if t, ok := labeled[s.Label.Name]; ok {
			return t
		}
		b.cfg.Unsupported = true
		return nil
	}
	if len(stack) == 0 {
		b.cfg.Unsupported = true
		return nil
	}
	return stack[len(stack)-1]
}

// isPanicStmt recognizes `panic(...)` expression statements (and
// log.Fatal-style never-returns are deliberately not modeled — only the
// builtin is a guaranteed terminator).
func isPanicStmt(s ast.Stmt, info *types.Info) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if info != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
		// Unresolved (shouldn't happen in a checked package): fall back
		// to the name match.
	}
	return true
}
