// Standalone package loading for imrdmd-vet: `imrdmd-vet ./...` resolves
// patterns with `go list -export -deps -json`, parses each target
// package from source, and type-checks it against the gc export data the
// go command just built for every dependency. This is the same
// type-checking recipe the `go vet -vettool` unitchecker path uses
// (unit.go), just with the configuration discovered instead of handed
// over in a vet.cfg — so `make lint` and CI see identical diagnostics.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct{ Err string }
}

// LoadPackages resolves the patterns in dir and returns one type-checked
// Unit per matched (non-dependency) package.
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		all = append(all, &p)
	}

	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	var units []*Unit
	for _, p := range all {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		var files []string
		for _, f := range p.GoFiles {
			if strings.HasPrefix(f, "/") {
				files = append(files, f)
			} else {
				files = append(files, p.Dir+"/"+f)
			}
		}
		u, err := CheckFiles(p.ImportPath, files, exportLookup(exports, nil), goVersion)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// exportLookup builds the importer lookup over a path -> export-file
// map, applying the source-import-path -> canonical-path rename map
// first (vet.cfg's ImportMap; nil in standalone mode where paths are
// already canonical).
func exportLookup(exports, importMap map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// CheckFiles parses and type-checks one package from its source files,
// resolving every import through lookup (gc export data). It returns a
// Unit ready for Run.
func CheckFiles(importPath string, filenames []string, lookup func(string) (io.ReadCloser, error), goVersion string) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckParsed(importPath, fset, files, importer.ForCompiler(fset, "gc", lookup), goVersion)
}

// CheckParsed type-checks already-parsed files with the given importer.
func CheckParsed(importPath string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Unit{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
