// The cmd/go vettool protocol. `go vet -vettool=imrdmd-vet ./...` drives
// the binary the same way it drives the bundled vet tool:
//
//   - `imrdmd-vet -V=full` must print "<name> version devel ...
//     buildID=<content hash>" — cmd/go folds the line into its action
//     cache key, which is what makes the CI vettool leg cacheable.
//   - `imrdmd-vet -flags` must print a JSON description of the flags the
//     tool accepts, so cmd/go knows which command-line flags to forward.
//   - per package, cmd/go writes a vet.cfg (the vetConfig JSON below)
//     naming the source files, the import map, and the export-data file
//     for every dependency, then invokes `imrdmd-vet <flags> vet.cfg`.
//     The tool type-checks from those inputs — no network, no go/packages
//     — reports findings to stderr, writes the (empty, we are fact-free)
//     facts file cmd/go caches, and exits 2 when it found anything.
//
// Reference: go/src/cmd/go/internal/work/exec.go (buildVetConfig, vet).
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// VetConfig mirrors cmd/go's vetConfig (the vet.cfg JSON schema).
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunUnitchecker handles one `imrdmd-vet <cfgFile>` invocation from
// cmd/go: load the config, type-check the package, run the analyzers,
// print findings, write the facts file. The returned exit code follows
// the vet convention (0 clean, 1 tool failure, 2 findings).
func RunUnitchecker(cfgFile string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "imrdmd-vet: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "imrdmd-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go caches and reuses the facts ("vetx") output; our analyzers
	// are fact-free, so an empty file both satisfies the cache and keeps
	// re-vets incremental.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "imrdmd-vet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency package: cmd/go only wants facts, not findings.
		return 0
	}

	unit, err := CheckFiles(cfg.ImportPath, cfg.GoFiles, exportLookup(cfg.PackageFile, cfg.ImportMap), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go's documented hack (#18395): a package that does not
			// compile is reported by the build, not by vet.
			return 0
		}
		fmt.Fprintf(stderr, "imrdmd-vet: %v\n", err)
		return 1
	}
	diags, err := Run(unit, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "imrdmd-vet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		writeJSONDiagnostics(stdout, cfg.ID, diags)
		return 0 // JSON mode reports through stdout, not the exit code
	}
	fmt.Fprintf(stderr, "# %s\n", cfg.ID)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Posn, d.Message)
	}
	return 2
}

// writeJSONDiagnostics emits the {pkgID: {analyzer: [{posn, message}]}}
// shape `go vet -json` expects from a vet tool.
func writeJSONDiagnostics(w io.Writer, pkgID string, diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Posn.String(), Message: d.Message})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	b, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		panic(fmt.Sprintf("analysis: marshaling diagnostics: %v", err)) // structs of strings cannot fail
	}
	w.Write(append(b, '\n'))
}

// PrintVersion implements `-V=full`. cmd/go requires the second field to
// be "version" and, for a "devel" version, a final "buildID=" field; the
// content hash of the executable makes rebuilt tools produce new cache
// keys (see toolID in go/src/cmd/go/internal/work/buildid.go).
func PrintVersion(w io.Writer) {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Fprintf(w, "%s version devel buildID=%x\n", filepath.Base(progname), h.Sum(nil))
}

// PrintFlags implements `-flags`: a JSON description of the supported
// flags, which cmd/go consults to decide what it may forward.
func PrintFlags(w io.Writer, analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit JSON output"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable only the " + a.Name + " analyzer (and other explicitly enabled ones)"})
	}
	b, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		panic(fmt.Sprintf("analysis: marshaling flags: %v", err))
	}
	w.Write(append(b, '\n'))
}
