// Package codec is the one sanctioned encoding/binary user: its
// bounds-checked primitives are what the rest of the tree must call.
package codec

import "encoding/binary"

func ReadU64(b []byte) (uint64, bool) {
	if len(b) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}
