package a

import "encoding/binary"

func badDecode(b []byte) uint64 {
	return binary.LittleEndian.Uint64(b) // want `raw encoding/binary.LittleEndian use outside internal/codec` `raw encoding/binary.Uint64 use outside internal/codec`
}

func badPut(b []byte, v uint32) {
	binary.BigEndian.PutUint32(b, v) // want `raw encoding/binary.BigEndian use outside internal/codec` `raw encoding/binary.PutUint32 use outside internal/codec`
}
