package codecbounds_test

import (
	"testing"

	"imrdmd/internal/analysis/analysistest"
	"imrdmd/internal/analysis/codecbounds"
)

func TestCodecbounds(t *testing.T) {
	analysistest.Run(t, "testdata", codecbounds.Analyzer, "a", "codec")
}
