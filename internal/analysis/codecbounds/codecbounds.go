// Package codecbounds enforces the PR-5 decode contract: request- and
// snapshot-derived bytes are only decoded through internal/codec's
// bounds-checked, checksummed primitives. Raw encoding/binary access
// (binary.LittleEndian.Uint64(b[off:]) and friends) outside
// internal/codec bypasses the length validation that keeps a lying
// snapshot from OOMing or panicking the restore path, so any use of the
// encoding/binary package outside the codec package is a finding.
package codecbounds

import (
	"go/ast"

	"imrdmd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "codecbounds",
	Doc: "flags encoding/binary use outside internal/codec; request-derived " +
		"bytes must decode through the codec package's bounds-checked primitives",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The codec package is the one sanctioned encoding/binary user.
	if analysis.PkgPathBase(pass.Pkg.Path()) == "codec" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
				return true
			}
			pass.Reportf(id.Pos(), "raw encoding/binary.%s use outside internal/codec; decode request-derived bytes through the codec package's bounds-checked primitives", obj.Name())
			return true
		})
	}
	return nil
}
