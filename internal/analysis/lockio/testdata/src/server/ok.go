package server

import (
	"encoding/json"
	"os"
)

// Assemble under the lock, render outside: the sanctioned shape.
func (r *registry) okMarshalOutside() []byte {
	r.mu.Lock()
	n := len(r.data)
	r.mu.Unlock()
	b, _ := json.Marshal(n)
	return b
}

// Marshal before taking the lock.
func (r *registry) okMarshalBefore() []byte {
	b, _ := json.Marshal(len(r.data))
	r.mu.Lock()
	r.data["published"] = len(b)
	r.mu.Unlock()
	return b
}

// Pure os accessors are allowed under a lock.
func (r *registry) okGetenv() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return os.Getenv("HOME")
}

// A closure built under the lock runs later, outside the region.
func (r *registry) okClosure() func() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.data)
	return func() []byte {
		b, _ := json.Marshal(n)
		return b
	}
}

// An inner region that closes before the marshal.
func (r *registry) okInnerRegion(cond bool) []byte {
	if cond {
		r.mu.Lock()
		r.data["hits"]++
		r.mu.Unlock()
	}
	b, _ := json.Marshal(r.data)
	return b
}
