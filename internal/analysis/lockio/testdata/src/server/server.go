package server

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

type registry struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Direct marshal in a defer-unlock region.
func (r *registry) badMarshal() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, _ := json.Marshal(r.data) // want `marshaling under a lock rides the ingest latency tail`
	return b
}

// The publish → assemble → render chain the real tree had: the sink is
// three helpers below the call made under the lock.
func (r *registry) badChain() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publish() // want `publish while r.mu is held reaches assemble → render → json.Marshal`
}

func (r *registry) publish() []byte  { return r.assemble() }
func (r *registry) assemble() []byte { return render(r.data) }

func render(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}

// File-system access inside an explicit Lock…Unlock region.
func (r *registry) badFile(path string) {
	r.mu.Lock()
	_ = os.WriteFile(path, nil, 0o644) // want `file-system access under a lock`
	r.mu.Unlock()
}

// Reading a request body (io interface method) under a read lock still
// blocks writers for as long as the client takes.
func (r *registry) badBodyRead(body io.Reader, dst []byte) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	_, _ = body.Read(dst) // want `I/O through an io interface under a lock`
}

// io helper driving an unknown endpoint.
func (r *registry) badCopy(w io.Writer, src io.Reader) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = io.Copy(w, src) // want `I/O under a lock lets a slow reader/writer stall`
}
