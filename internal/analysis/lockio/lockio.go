// Package lockio enforces the PR-5/PR-6 latency contract on the service
// packages (internal/server, internal/shard): a tenant or registry mutex
// is never held across JSON/gob/xml marshaling, client I/O (request-body
// reads, response writes), file-system access, or network calls. Every
// one of those can stall for an unbounded time, and the tenant lock
// serializes the ingest path — a slow downloader must never be able to
// hold a stream's updates hostage (see DESIGN.md §8–§9).
//
// The check is intraprocedural over lexical Lock()…Unlock() regions
// (deferred unlocks extend the region to the end of the function), with
// a same-package call-graph expansion of depth 3 so a violation buried
// under helper functions (publish → assemble → marshal) is still
// attributed to the call made while the lock is held.
package lockio

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"imrdmd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "flags marshaling, client I/O, file-system, and network calls made " +
		"while a sync.Mutex/RWMutex is held in internal/server and internal/shard",
	Run: run,
}

// scopedPackages are the package-path base names whose locks guard
// latency-sensitive registries (the tenant map, the shard coordinator).
var scopedPackages = map[string]bool{"server": true, "shard": true}

// expandDepth bounds the same-package call-graph walk: up to three
// levels of helpers beneath the call made in the lock region (enough to
// reach publish → assemble → render → marshal chains).
const expandDepth = 3

func run(pass *analysis.Pass) error {
	if !scopedPackages[analysis.PkgPathBase(pass.Pkg.Path())] {
		return nil
	}
	c := &checker{pass: pass, bodies: make(map[*types.Func]*ast.FuncDecl)}
	// Index same-package function bodies for the call-graph expansion.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					c.bodies[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.scanList(n.Body.List, nil)
				}
				return false // scanList descends itself
			case *ast.FuncLit:
				c.scanList(n.Body.List, nil)
				return false
			}
			return true
		})
	}
	return nil
}

type heldLock struct {
	name string // rendered receiver expression, e.g. "t.mu"
	rw   bool   // RLock region (still forbids I/O: it blocks writers)
}

type checker struct {
	pass   *analysis.Pass
	bodies map[*types.Func]*ast.FuncDecl
}

// scanList walks one statement list in execution order, tracking which
// locks are held. Nested lists (if/for/switch bodies) inherit the held
// set; a region that is still open when the list ends simply ends with
// it (a Lock whose Unlock lives in an outer list is out of model —
// lexical regions cover every pattern the service packages use).
func (c *checker) scanList(list []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, s := range list {
		if lk, kind := c.lockStmt(s); kind != 0 {
			switch kind {
			case opLock:
				held = append(held, lk)
			case opUnlock:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].name == lk.name {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case opDeferUnlock:
				// Region extends to function end; nothing to pop.
			}
			continue
		}
		if len(held) > 0 {
			c.checkStmt(s, held)
			continue
		}
		// Not under a lock: descend looking for inner regions.
		for _, child := range childStmtLists(s) {
			c.scanList(child, held)
		}
	}
}

type lockOp int

const (
	opLock lockOp = iota + 1
	opUnlock
	opDeferUnlock
)

// lockStmt classifies `x.Lock()` / `x.Unlock()` / `defer x.Unlock()`
// statements on sync.Mutex / sync.RWMutex values.
func (c *checker) lockStmt(s ast.Stmt) (heldLock, lockOp) {
	var call *ast.CallExpr
	deferred := false
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		deferred = true
	}
	if call == nil {
		return heldLock{}, 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, 0
	}
	fn := analysis.CalleeFunc(c.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, 0
	}
	recv := analysis.RecvNamed(fn)
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return heldLock{}, 0
	}
	lk := heldLock{name: c.exprString(sel.X), rw: strings.HasPrefix(fn.Name(), "R")}
	switch fn.Name() {
	case "Lock", "RLock":
		if deferred {
			return heldLock{}, 0
		}
		return lk, opLock
	case "Unlock", "RUnlock":
		if deferred {
			return lk, opDeferUnlock
		}
		return lk, opUnlock
	}
	return heldLock{}, 0
}

// checkStmt inspects one statement executed under held locks for
// forbidden calls, expanding same-package callees up to expandDepth.
// Function literals are skipped: a closure built under the lock runs
// when it is invoked, which the region model does not track.
func (c *checker) checkStmt(s ast.Stmt, held []heldLock) {
	lock := held[len(held)-1].name
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(c.pass.Info, call)
		if fn == nil {
			return true
		}
		if why := forbidden(fn); why != "" {
			c.pass.Reportf(call.Pos(), "%s while %s is held: %s", callName(fn), lock, why)
			return true
		}
		if chain, bad, why := c.expand(fn, expandDepth, nil); bad {
			c.pass.Reportf(call.Pos(), "%s while %s is held reaches %s: %s", fn.Name(), lock, strings.Join(chain, " → "), why)
		}
		return true
	})
}

// expand walks same-package callees (depth-limited, cycle-safe) looking
// for a forbidden call; it returns the call chain down to the sink.
func (c *checker) expand(fn *types.Func, depth int, seen []*types.Func) ([]string, bool, string) {
	if depth <= 0 {
		return nil, false, ""
	}
	for _, s := range seen {
		if s == fn {
			return nil, false, ""
		}
	}
	decl, ok := c.bodies[fn]
	if !ok {
		return nil, false, ""
	}
	seen = append(seen, fn)
	var chain []string
	var why string
	bad := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if bad {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(c.pass.Info, call)
		if callee == nil {
			return true
		}
		if w := forbidden(callee); w != "" {
			chain, bad, why = []string{callName(callee)}, true, w
			return false
		}
		if sub, b, w := c.expand(callee, depth-1, seen); b {
			chain, bad, why = append([]string{callee.Name()}, sub...), true, w
			return false
		}
		return true
	})
	return chain, bad, why
}

// osAllowed are the os-package entry points that neither block nor touch
// the file system.
var osAllowed = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true,
	"Getppid": true, "Getuid": true, "Geteuid": true, "Hostname": true,
	"TempDir": true, "IsNotExist": true, "IsExist": true, "IsPermission": true,
	"IsTimeout": true, "Expand": true, "ExpandEnv": true,
}

// ioForbidden are the io-package helpers that drive a Reader/Writer —
// unbounded when the endpoint is a client connection or disk.
var ioForbidden = map[string]bool{
	"ReadAll": true, "Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadFull": true, "ReadAtLeast": true, "WriteString": true, "Pipe": true,
}

// netAllowed are the net/http identifiers that are pure accessors.
var netAllowed = map[string]bool{"Context": true, "StatusText": true, "CanonicalHeaderKey": true}

// forbidden classifies a callee as a marshal/I-O sink; "" means clean.
func forbidden(fn *types.Func) string {
	path := analysis.FuncPkgPath(fn)
	name := fn.Name()
	switch path {
	case "encoding/json", "encoding/gob", "encoding/xml":
		return "marshaling under a lock rides the ingest latency tail; assemble data under the lock, render it outside (or lazily via sync.Once)"
	case "io":
		if ioForbidden[name] {
			return "I/O under a lock lets a slow reader/writer stall every other holder; move the transfer outside the critical section"
		}
		if recv := analysis.RecvNamed(fn); recv != nil {
			// Methods on io interfaces (Reader, Writer, Closer, …): the
			// dynamic endpoint is unknown, assume it can block.
			return "I/O through an io interface under a lock can block on a client or disk; buffer outside the critical section"
		}
	case "os":
		if !osAllowed[name] {
			return "file-system access under a lock couples lock hold time to disk latency; stage to memory and write outside"
		}
	}
	if path == "net" || strings.HasPrefix(path, "net/") {
		if path == "net/url" || path == "net/netip" || path == "net/mail" || netAllowed[name] {
			return ""
		}
		return "network/HTTP activity under a lock couples hold time to the peer; never hold a registry or tenant lock across client I/O"
	}
	return ""
}

func callName(fn *types.Func) string {
	if recv := analysis.RecvNamed(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// childStmtLists returns the nested statement lists of one statement so
// the scanner can hunt for lock regions inside control flow.
func childStmtLists(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := s.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

func (c *checker) exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return buf.String()
}
