package lockio_test

import (
	"testing"

	"imrdmd/internal/analysis/analysistest"
	"imrdmd/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, "testdata", lockio.Analyzer, "server")
}
