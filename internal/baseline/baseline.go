// Package baseline implements the paper's baseline / z-score analysis
// (§III-A2, following Brunton et al. [1]): pick a set of measurements that
// represent expected system behaviour, then express every measurement's
// mode magnitude as a z-score of its change from the baseline population.
// The rack views (Figs. 4 and 6) color nodes by exactly these z-scores.
package baseline

import (
	"errors"
	"math"
	"sort"

	"imrdmd/internal/mat"
)

// SelectByMeanRange returns the row indices of data whose time-mean lies
// in [lo, hi] — the paper's rule for choosing baseline readings (e.g.
// 46 °C–57 °C in case study 1).
func SelectByMeanRange(data *mat.Dense, lo, hi float64) []int {
	var out []int
	for i := 0; i < data.R; i++ {
		m := mean(data.Row(i))
		if m >= lo && m <= hi {
			out = append(out, i)
		}
	}
	return out
}

// ErrNoBaseline is returned when the baseline set is empty or degenerate.
var ErrNoBaseline = errors.New("baseline: empty or degenerate baseline set")

// ZScores standardizes each measurement's magnitude against the baseline
// population: z[i] = (mag[i] − μ_B) / σ_B where μ_B, σ_B are the mean and
// standard deviation of mag over the baseline indices.
func ZScores(mag []float64, baselineIdx []int) ([]float64, error) {
	if len(baselineIdx) < 2 {
		return nil, ErrNoBaseline
	}
	var mu float64
	for _, i := range baselineIdx {
		mu += mag[i]
	}
	mu /= float64(len(baselineIdx))
	var vr float64
	for _, i := range baselineIdx {
		d := mag[i] - mu
		vr += d * d
	}
	vr /= float64(len(baselineIdx) - 1)
	sd := math.Sqrt(vr)
	if sd == 0 || math.IsNaN(sd) {
		return nil, ErrNoBaseline
	}
	z := make([]float64, len(mag))
	for i, v := range mag {
		z[i] = (v - mu) / sd
	}
	return z, nil
}

// Class is the paper's interpretation band for a z-score.
type Class int

// Bands from the case studies: |z| ≤ 1.5 is near baseline; z > 2 means
// dangerously hot components; negative z suggests idle/stalled nodes.
const (
	Cold Class = iota // z < −1.5: under-utilized / stalled
	Near              // −1.5 ≤ z ≤ 1.5: close to baseline
	Warm              // 1.5 < z ≤ 2
	Hot               // z > 2: overheating risk
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Cold:
		return "cold"
	case Near:
		return "near-baseline"
	case Warm:
		return "warm"
	case Hot:
		return "hot"
	}
	return "unknown"
}

// Classify maps a z-score to its band.
func Classify(z float64) Class {
	switch {
	case z < -1.5:
		return Cold
	case z <= 1.5:
		return Near
	case z <= 2:
		return Warm
	default:
		return Hot
	}
}

// Summary holds distribution statistics of a z-score vector.
type Summary struct {
	Mean, Std, Min, Max float64
	NumCold, NumNear    int
	NumWarm, NumHot     int
}

// Summarize computes a Summary.
func Summarize(z []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(z) == 0 {
		return Summary{}
	}
	for _, v := range z {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		switch Classify(v) {
		case Cold:
			s.NumCold++
		case Near:
			s.NumNear++
		case Warm:
			s.NumWarm++
		default:
			s.NumHot++
		}
	}
	s.Mean /= float64(len(z))
	var vr float64
	for _, v := range z {
		d := v - s.Mean
		vr += d * d
	}
	s.Std = math.Sqrt(vr / float64(len(z)))
	return s
}

// SeparationGap measures how well z separates two index sets: the
// difference between the lower quartile of |z| over `anomalous` and the
// upper quartile of |z| over `normal`. Positive values mean the
// populations separate (used by the Fig. 8 comparison).
func SeparationGap(z []float64, normal, anomalous []int) float64 {
	if len(normal) == 0 || len(anomalous) == 0 {
		return 0
	}
	absAt := func(idx []int) []float64 {
		v := make([]float64, 0, len(idx))
		for _, i := range idx {
			v = append(v, math.Abs(z[i]))
		}
		sort.Float64s(v)
		return v
	}
	nv := absAt(normal)
	av := absAt(anomalous)
	upperNormal := nv[(len(nv)*3)/4]
	lowerAnomalous := av[len(av)/4]
	return lowerAnomalous - upperNormal
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
