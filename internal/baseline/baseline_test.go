package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"imrdmd/internal/mat"
)

func TestSelectByMeanRange(t *testing.T) {
	data := mat.NewDense(3, 4)
	for j := 0; j < 4; j++ {
		data.Set(0, j, 50) // mean 50: in range
		data.Set(1, j, 80) // mean 80: out
		data.Set(2, j, 46) // mean 46: boundary, inclusive
	}
	got := SelectByMeanRange(data, 46, 57)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("SelectByMeanRange = %v want [0 2]", got)
	}
}

func TestZScoresStandardizeBaseline(t *testing.T) {
	mag := []float64{1, 2, 3, 10}
	idx := []int{0, 1, 2}
	z, err := ZScores(mag, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline population must standardize to mean 0.
	var mu float64
	for _, i := range idx {
		mu += z[i]
	}
	if math.Abs(mu) > 1e-12 {
		t.Fatalf("baseline z mean = %g want 0", mu)
	}
	if z[3] <= 2 {
		t.Fatalf("outlier z = %g should exceed 2", z[3])
	}
}

func TestZScoresProperty(t *testing.T) {
	// Affine transformation of magnitudes leaves z-scores unchanged.
	f := func(scale, shift float64) bool {
		s := math.Abs(scale)
		if s < 1e-3 || s > 1e3 || math.Abs(shift) > 1e6 || math.IsNaN(shift) {
			return true // skip degenerate draws
		}
		mag := []float64{3, 1, 4, 1, 5, 9, 2, 6}
		idx := []int{0, 1, 2, 3, 4}
		z1, err1 := ZScores(mag, idx)
		scaled := make([]float64, len(mag))
		for i, v := range mag {
			scaled[i] = s*v + shift
		}
		z2, err2 := ZScores(scaled, idx)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range z1 {
			if math.Abs(z1[i]-z2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZScoresErrors(t *testing.T) {
	if _, err := ZScores([]float64{1, 2}, []int{0}); err != ErrNoBaseline {
		t.Fatal("single-element baseline must fail")
	}
	if _, err := ZScores([]float64{5, 5, 5}, []int{0, 1, 2}); err != ErrNoBaseline {
		t.Fatal("zero-variance baseline must fail")
	}
}

func TestClassifyBands(t *testing.T) {
	cases := []struct {
		z    float64
		want Class
	}{
		{-3, Cold}, {-1.6, Cold}, {-1.5, Near}, {0, Near}, {1.5, Near},
		{1.7, Warm}, {2.0, Warm}, {2.1, Hot}, {5, Hot},
	}
	for _, c := range cases {
		if got := Classify(c.z); got != c.want {
			t.Errorf("Classify(%g) = %v want %v", c.z, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for _, c := range []Class{Cold, Near, Warm, Hot} {
		if c.String() == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestSummarize(t *testing.T) {
	z := []float64{-2, 0, 1, 3}
	s := Summarize(z)
	if s.NumCold != 1 || s.NumNear != 2 || s.NumHot != 1 {
		t.Fatalf("band counts wrong: %+v", s)
	}
	if s.Min != -2 || s.Max != 3 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Fatalf("mean = %g want 0.5", s.Mean)
	}
	if e := Summarize(nil); e.NumCold != 0 || e.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSeparationGap(t *testing.T) {
	z := []float64{0.1, -0.2, 0.3, 5, 6, 7}
	normal := []int{0, 1, 2}
	anomalous := []int{3, 4, 5}
	if g := SeparationGap(z, normal, anomalous); g <= 0 {
		t.Fatalf("well-separated populations give gap %g, want > 0", g)
	}
	mixed := []float64{1, 1, 1, 1, 1, 1}
	if g := SeparationGap(mixed, normal, anomalous); g > 0 {
		t.Fatalf("identical populations give gap %g, want ≤ 0", g)
	}
	if g := SeparationGap(z, nil, anomalous); g != 0 {
		t.Fatal("empty set should give 0")
	}
}
