package dmd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

// linearSystem generates snapshots of x_{k+1} = A x_k for a known stable A
// with oscillatory eigenvalues, lifted to dimension p through a random
// orthonormal map so DMD has to find the latent dynamics.
func linearSystem(rng *rand.Rand, p, t int, freqs []float64, decays []float64, dt float64) (*mat.Dense, []complex128) {
	r := 2 * len(freqs)
	lift := mat.QRFactor(randDense(rng, p, r)).Q
	// Latent state: pairs of (cos, sin) oscillators.
	data := mat.NewDense(p, t)
	var eigs []complex128
	for fi, f := range freqs {
		om := 2 * math.Pi * f
		lam := cmplx.Exp(complex(decays[fi]*dt, om*dt))
		eigs = append(eigs, lam, cmplx.Conj(lam))
		amp := 1.0 + rng.Float64()
		phase := rng.Float64() * 2 * math.Pi
		for k := 0; k < t; k++ {
			tt := float64(k) * dt
			c := amp * math.Exp(decays[fi]*tt) * math.Cos(om*tt+phase)
			s := amp * math.Exp(decays[fi]*tt) * math.Sin(om*tt+phase)
			for i := 0; i < p; i++ {
				data.Data[i*t+k] += lift.At(i, 2*fi)*c + lift.At(i, 2*fi+1)*s
			}
		}
	}
	return data, eigs
}

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestComputeRecoversKnownEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dt := 0.1
	data, wantEigs := linearSystem(rng, 30, 200, []float64{0.5, 1.2}, []float64{-0.05, -0.2}, dt)
	dec, err := Compute(data, Options{DT: dt})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Modes) < len(wantEigs) {
		t.Fatalf("got %d modes, want at least %d", len(dec.Modes), len(wantEigs))
	}
	// Every true eigenvalue must be matched by some DMD eigenvalue.
	for _, w := range wantEigs {
		best := math.Inf(1)
		for _, m := range dec.Modes {
			if d := cmplx.Abs(m.Lambda - w); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Fatalf("eigenvalue %v not recovered (closest at distance %g)", w, best)
		}
	}
}

func TestComputeFrequenciesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dt := 0.05
	want := 0.8 // cycles per unit time
	data, _ := linearSystem(rng, 20, 300, []float64{want}, []float64{0}, dt)
	dec, err := Compute(data, Options{DT: dt})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range dec.Modes {
		if math.Abs(m.Freq-want) < 1e-6 {
			found = true
		}
	}
	if !found {
		freqs := make([]float64, len(dec.Modes))
		for i, m := range dec.Modes {
			freqs[i] = m.Freq
		}
		t.Fatalf("frequency %v not found in %v", want, freqs)
	}
}

func TestReconstructMatchesData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dt := 0.1
	data, _ := linearSystem(rng, 25, 150, []float64{0.3, 0.9}, []float64{-0.1, -0.3}, dt)
	dec, err := Compute(data, Options{DT: dt})
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 150)
	for k := range times {
		times[k] = float64(k) * dt
	}
	recon := dec.Reconstruct(times)
	if d := mat.Sub(recon, data).FrobNorm(); d > 1e-5*(1+data.FrobNorm()) {
		t.Fatalf("reconstruction error %g too large", d)
	}
}

func TestComputePredictsFuture(t *testing.T) {
	// Fit on the first half, predict the second half (Eq. 6).
	rng := rand.New(rand.NewSource(4))
	dt := 0.1
	data, _ := linearSystem(rng, 15, 200, []float64{0.4}, []float64{-0.02}, dt)
	train := data.ColSlice(0, 100)
	dec, err := Compute(train, Options{DT: dt})
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 200)
	for k := range times {
		times[k] = float64(k) * dt
	}
	pred := dec.Reconstruct(times)
	if d := mat.Sub(pred, data).FrobNorm(); d > 1e-3*(1+data.FrobNorm()) {
		t.Fatalf("extrapolation error %g too large for a noise-free linear system", d)
	}
}

func TestTooFewSnapshots(t *testing.T) {
	if _, err := Compute(mat.NewDense(5, 1), Options{DT: 1}); err != ErrTooFewSnapshots {
		t.Fatalf("want ErrTooFewSnapshots, got %v", err)
	}
}

func TestBadDT(t *testing.T) {
	if _, err := Compute(mat.NewDense(5, 10), Options{DT: 0}); err == nil {
		t.Fatal("want error for DT=0")
	}
}

func TestZeroDataProducesNoModes(t *testing.T) {
	dec, err := Compute(mat.NewDense(5, 10), Options{DT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Modes) != 0 {
		t.Fatalf("zero data produced %d modes", len(dec.Modes))
	}
	recon := dec.Reconstruct([]float64{0, 1, 2})
	if recon.FrobNorm() != 0 {
		t.Fatal("zero-mode reconstruction must be zero")
	}
}

func TestFixedRankTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := linearSystem(rng, 20, 100, []float64{0.2, 0.7, 1.5}, []float64{0, 0, 0}, 0.1)
	dec, err := Compute(data, Options{DT: 0.1, Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rank != 2 || len(dec.Modes) != 2 {
		t.Fatalf("rank = %d modes = %d, want 2", dec.Rank, len(dec.Modes))
	}
}

func TestSVHTTruncatesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data, _ := linearSystem(rng, 40, 300, []float64{0.5}, []float64{0}, 0.1)
	// Scale the signal well above the added unit-ish noise.
	for i := range data.Data {
		data.Data[i] = 100*data.Data[i] + 0.01*rng.NormFloat64()
	}
	dec, err := Compute(data, Options{DT: 0.1, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rank > 6 {
		t.Fatalf("SVHT kept %d directions for a rank-2 signal", dec.Rank)
	}
}

func TestSlowModesPartition(t *testing.T) {
	modes := []Mode{
		{Psi: complex(0, 2*math.Pi*0.1)}, // 0.1 cycles/unit
		{Psi: complex(0, 2*math.Pi*5.0)}, // 5 cycles/unit
		{Psi: complex(-10, 0)},           // strong decay: |ψ|/2π ≈ 1.6
	}
	slow, fast := SlowModes(modes, 0.5)
	if len(slow) != 1 || len(fast) != 2 {
		t.Fatalf("slow=%d fast=%d want 1,2", len(slow), len(fast))
	}
}

func TestSpectrumQuantities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dt := 0.1
	data, _ := linearSystem(rng, 10, 100, []float64{0.6}, []float64{-0.1}, dt)
	dec, err := Compute(data, Options{DT: dt})
	if err != nil {
		t.Fatal(err)
	}
	pts := dec.Spectrum()
	if len(pts) != len(dec.Modes) {
		t.Fatal("spectrum length mismatch")
	}
	for i, p := range pts {
		if p.Freq < 0 || p.Power < 0 || p.Amp < 0 {
			t.Fatalf("negative spectrum quantity at %d: %+v", i, p)
		}
		// Eq. 10: power equals squared mode norm.
		var pow float64
		for _, c := range dec.Modes[i].Phi {
			pow += real(c)*real(c) + imag(c)*imag(c)
		}
		if math.Abs(p.Power-pow) > 1e-12*(1+pow) {
			t.Fatal("power does not match ‖φ‖²")
		}
	}
}

func TestFilterBand(t *testing.T) {
	pts := []SpectrumPoint{{Freq: 0.1}, {Freq: 1}, {Freq: 10}}
	got := FilterBand(pts, 0.5, 5)
	if len(got) != 1 || got[0].Freq != 1 {
		t.Fatalf("FilterBand = %+v", got)
	}
}

func TestExpPsiTOverflowClamped(t *testing.T) {
	w := expPsiT(complex(1000, 0), 10)
	if math.IsInf(real(w), 0) || math.IsNaN(real(w)) {
		t.Fatal("growth clamp failed")
	}
	if z := expPsiT(complex(-1e6, 0), 10); z != 0 {
		t.Fatal("strong decay should underflow to exactly 0")
	}
}

func TestLogLambdaZeroSafe(t *testing.T) {
	psi := logLambda(0, 0.5)
	if math.IsInf(real(psi), 0) || math.IsNaN(real(psi)) {
		t.Fatalf("logLambda(0) not finite: %v", psi)
	}
	if real(psi) >= 0 {
		t.Fatal("λ=0 must map to strong decay")
	}
}

func BenchmarkCompute200x500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := linearSystem(rng, 200, 500, []float64{0.2, 0.5, 1.1}, []float64{-0.1, -0.05, -0.2}, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(data, Options{DT: 0.1, UseSVHT: true}); err != nil {
			b.Fatal(err)
		}
	}
}
