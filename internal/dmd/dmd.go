// Package dmd implements exact Dynamic Mode Decomposition (Tu et al.,
// "On dynamic mode decomposition: theory and applications") plus the
// spectrum quantities (Eq. 9 and Eq. 10 of the paper) that the mrDMD
// layer and its frequency-isolation step are built on.
package dmd

import (
	"errors"
	"math"
	"math/cmplx"

	"imrdmd/internal/compute"
	"imrdmd/internal/eig"
	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// Mode is one DMD eigentriple with its derived spectrum quantities.
type Mode struct {
	Phi    []complex128 // spatial mode, length P, column of Φ = YVΣ⁻¹W
	Lambda complex128   // discrete-time eigenvalue of Ã
	Psi    complex128   // continuous-time exponent ψ = ln(λ)/Δt
	Amp    complex128   // initial amplitude b from Φ b = x₁
	Freq   float64      // |Im ψ| / 2π, cycles per unit time (Eq. 9)
	Power  float64      // ‖φ‖₂² (Eq. 10)
}

// Options configures a decomposition.
type Options struct {
	// DT is the sampling interval of the snapshot columns.
	DT float64
	// Rank fixes the SVD truncation rank; 0 defers to SVHT (or full rank
	// if UseSVHT is false).
	Rank int
	// UseSVHT truncates at the Gavish–Donoho optimal hard threshold.
	UseSVHT bool
	// AmplitudeWindow bounds the Jovanović amplitude fit to the trailing
	// w snapshot columns: the Vandermonde, both Gram terms and the
	// snapshot GEMMs shrink from O(T) to O(w) while the eigenvalue powers
	// stay referenced to t=0, so the fitted b remains a t=0 amplitude.
	// 0 (the default) fits over the full history — bit-identical to the
	// pre-windowed pipeline.
	AmplitudeWindow int
	// Engine routes the parallel kernel sections; nil uses the shared
	// default pool.
	Engine *compute.Engine
	// Ws supplies pooled scratch buffers for the decomposition's
	// intermediates; nil allocates.
	Ws *compute.Workspace
}

// Decomposition is the result of exact DMD on a snapshot matrix.
type Decomposition struct {
	Modes []Mode
	P     int     // state dimension (rows)
	T     int     // snapshots used (columns)
	DT    float64 // sampling interval
	Rank  int     // SVD truncation rank actually used
}

// ErrTooFewSnapshots is returned when fewer than two snapshot columns are
// available.
var ErrTooFewSnapshots = errors.New("dmd: need at least 2 snapshot columns")

// Compute runs exact DMD on data (P×T, columns are snapshots Δt apart).
func Compute(data *mat.Dense, opts Options) (*Decomposition, error) {
	_, t := data.Dims()
	if t < 2 {
		return nil, ErrTooFewSnapshots
	}
	e, ws := opts.engine(), opts.Ws
	x := mat.ColSliceWith(ws, data, 0, t-1)
	s := svd.ComputeWith(e, ws, x)
	mat.PutDense(ws, x)
	return FromSVD(s, data, opts)
}

// engine resolves the configured engine, defaulting to the shared pool.
func (o Options) engine() *compute.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return compute.Default()
}

// FromSVD finishes a DMD given the (possibly incrementally maintained)
// economy SVD of X = snapshots[:, :T-1]. This split is what lets I-mrDMD
// reuse the incremental SVD state at level 1. Amplitudes are fitted over
// all snapshots (Jovanović et al. optimal amplitudes), not just the first
// one — essential for mrDMD, where a poor slow-mode amplitude leaks error
// into every deeper level.
func FromSVD(s *svd.Result, snapshots *mat.Dense, opts Options) (*Decomposition, error) {
	if opts.DT <= 0 {
		return nil, errors.New("dmd: Options.DT must be positive")
	}
	p, t := snapshots.Dims()
	if t < 2 {
		return nil, ErrTooFewSnapshots
	}
	e, ws := opts.engine(), opts.Ws
	y := mat.ColsView(snapshots, 1, t) // zero-copy: every consumer is stride-aware
	rank := s.Rank()
	if opts.UseSVHT {
		rank = svd.SVHTRankWith(ws, s.S, s.U.R, s.V.R)
	}
	if opts.Rank > 0 && opts.Rank < rank {
		rank = opts.Rank
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Rank() {
		rank = s.Rank()
	}
	tr := s.TruncateWith(ws, rank)
	putTr := func() {
		if tr != s {
			mat.PutDense(ws, tr.U)
			mat.PutDense(ws, tr.V)
		}
	}
	// Guard degenerate zero data: all-zero singular spectrum.
	if tr.S[0] == 0 {
		putTr()
		return &Decomposition{Modes: nil, P: p, T: t, DT: opts.DT, Rank: 0}, nil
	}

	// Ã = Uᵀ Y V Σ⁻¹ (r×r).
	uty := mat.MulTWith(e, ws, tr.U, y)   // r×(t-1)
	utyv := mat.MulWith(e, ws, uty, tr.V) // r×r
	mat.PutDense(ws, uty)
	for i := 0; i < utyv.R; i++ { // scale columns by Σ⁻¹
		row := utyv.Row(i)
		for j := range row {
			row[j] /= tr.S[j]
		}
	}

	vals, vecs := eig.NonsymmetricWith(ws, utyv) // clones utyv internally
	mat.PutDense(ws, utyv)

	// Φ = Y V Σ⁻¹ W (exact DMD modes).
	yvs := mat.MulWith(e, ws, y, tr.V) // p×r
	for i := 0; i < yvs.R; i++ {
		row := yvs.Row(i)
		for j := range row {
			row[j] /= tr.S[j]
		}
	}
	putTr()
	cyvs := mat.ComplexWith(ws, yvs)
	mat.PutDense(ws, yvs)
	phi := mat.CMulWith(ws, cyvs, vecs) // p×r
	mat.PutCDense(ws, cyvs)
	mat.PutCDense(ws, vecs)

	b := optimalAmplitudes(e, ws, phi, vals, snapshots, opts.AmplitudeWindow)

	modes := make([]Mode, 0, len(vals))
	for j, lam := range vals {
		col := make([]complex128, p)
		for i := 0; i < p; i++ {
			col[i] = phi.At(i, j)
		}
		psi := logLambda(lam, opts.DT)
		var pow float64
		for _, c := range col {
			pow += real(c)*real(c) + imag(c)*imag(c)
		}
		modes = append(modes, Mode{
			Phi:    col,
			Lambda: lam,
			Psi:    psi,
			Amp:    b[j],
			Freq:   math.Abs(imag(psi)) / (2 * math.Pi),
			Power:  pow,
		})
	}
	mat.PutCDense(ws, phi)
	return &Decomposition{Modes: modes, P: p, T: t, DT: opts.DT, Rank: rank}, nil
}

// optimalAmplitudes solves min_b ‖X − Φ diag(b) V‖_F where V is the
// Vandermonde matrix V[i,k] = λᵢᵏ over all T snapshots (Jovanović,
// Schmid & Nichols, "Sparsity-promoting dynamic mode decomposition").
// The normal equations are
//
//	(ΦᴴΦ ∘ conj(V Vᴴ)) b = conj(diag(V Xᴴ Φ))
//
// with ∘ the Hadamard product; the system matrix is positive
// semidefinite by the Schur product theorem.
//
// win > 0 restricts the fit to the trailing win snapshot columns
// [t−win, t): the Vandermonde keeps its absolute powers λᵏ (so b stays a
// t=0 amplitude) but only the windowed columns enter V, G2 and the
// snapshot contraction, turning the per-refresh cost from O(T) to O(win).
// win ≤ 0 or win ≥ t fits the full history, bit-identical to the
// unwindowed code path.
func optimalAmplitudes(e *compute.Engine, ws *compute.Workspace, phi *mat.CDense, vals []complex128, snapshots *mat.Dense, win int) []complex128 {
	p, t := snapshots.Dims()
	r := len(vals)
	k0 := 0
	if win > 0 && win < t {
		k0 = t - win
	}
	tw := t - k0
	// Vandermonde V (r×tw): powers λᵏ for k in [k0, t) of the discrete
	// eigenvalues. The power recurrence always starts at k=0 with its
	// magnitude clamp (so explosive spurious eigenvalues cannot overflow
	// and the windowed trajectory matches the full one bit for bit); only
	// the windowed columns are stored.
	vand := mat.GetCDense(ws, r, tw)
	for i, lam := range vals {
		w := complex(1, 0)
		for k := 0; k < t; k++ {
			if k >= k0 {
				vand.Set(i, k-k0, w)
			}
			w *= lam
			if a := real(w)*real(w) + imag(w)*imag(w); a > 1e300 {
				w = w / complex(math.Sqrt(a), 0) * complex(1e150, 0)
			}
		}
	}
	// G1 = ΦᴴΦ (r×r), G2 = V Vᴴ (r×r).
	g1 := mat.GetCDense(ws, r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			var s complex128
			for k := 0; k < p; k++ {
				s += cmplx.Conj(phi.At(k, i)) * phi.At(k, j)
			}
			g1.Set(i, j, s)
		}
	}
	g2 := mat.GetCDense(ws, r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			var s complex128
			for k := 0; k < tw; k++ {
				s += vand.At(i, k) * cmplx.Conj(vand.At(j, k))
			}
			g2.Set(i, j, s)
		}
	}
	// System matrix P = G1 ∘ conj(G2); rhs q = conj(diag(V Xᴴ Φ)).
	sys := mat.GetCDense(ws, r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			sys.Set(i, j, g1.At(i, j)*cmplx.Conj(g2.At(i, j)))
		}
	}
	// rhs q = conj(diag(V Xᴴ Φ)): the inner factor XᵀΦ (t×r) is computed
	// on Φ's real and imaginary planes with two real GEMMs — X is real so
	// the planes never mix, and the p×t×r contraction rides the tall-skinny
	// kernels instead of an O(r·t·p) scalar triple loop.
	phiRe := mat.GetDenseRaw(ws, p, r)
	phiIm := mat.GetDenseRaw(ws, p, r)
	for i := 0; i < p; i++ {
		reRow, imRow := phiRe.Row(i), phiIm.Row(i)
		for j := 0; j < r; j++ {
			v := phi.At(i, j)
			reRow[j] = real(v)
			imRow[j] = imag(v)
		}
	}
	snapWin := mat.ColsView(snapshots, k0, t)     // p×tw, zero-copy
	xphiRe := mat.MulTWith(e, ws, snapWin, phiRe) // tw×r
	xphiIm := mat.MulTWith(e, ws, snapWin, phiIm) // tw×r
	mat.PutDense(ws, phiRe)
	mat.PutDense(ws, phiIm)
	q := make([]complex128, r)
	for i := 0; i < r; i++ {
		// (V Xᴴ Φ)[i,i] = Σ_k V[i,k] · (XᵀΦ)[k,i]
		var s complex128
		for k := 0; k < tw; k++ {
			s += vand.At(i, k) * complex(xphiRe.At(k, i), xphiIm.At(k, i))
		}
		q[i] = cmplx.Conj(s)
	}
	mat.PutDense(ws, xphiRe)
	mat.PutDense(ws, xphiIm)
	// Tikhonov-style jitter keeps the solve stable when modes coincide.
	var trace float64
	for i := 0; i < r; i++ {
		trace += cmplx.Abs(sys.At(i, i))
	}
	jitter := complex(1e-12*(trace/float64(r)+1), 0)
	for i := 0; i < r; i++ {
		sys.Set(i, i, sys.At(i, i)+jitter)
	}
	b := mat.CLUFactorInPlace(sys).Solve(q) // consumes sys's storage
	if k0 > 0 {
		// A mode that has decayed away before the window opens leaves
		// (almost) no mass in V's row: its normal-equation row is tiny and
		// the solve returns noise scaled by 1/λᵏ⁰ — an estimate that blows
		// up any reconstruction at early times (a mode with 3% of its
		// envelope left amplifies the fit noise ~30×). Below the mass
		// floor, the window simply carries too little signal to reference
		// the mode back to t=0, and reporting it absent is strictly more
		// accurate than reporting the amplified noise.
		var maxScale float64
		scales := make([]float64, r)
		for i := 0; i < r; i++ {
			var s float64
			for k := 0; k < tw; k++ {
				if a := cmplx.Abs(vand.At(i, k)); a > s {
					s = a
				}
			}
			scales[i] = s
			if s > maxScale {
				maxScale = s
			}
		}
		for i := 0; i < r; i++ {
			if scales[i] <= ampWindowMassFloor*maxScale {
				b[i] = 0
			}
		}
	}
	mat.PutCDense(ws, vand)
	mat.PutCDense(ws, g1)
	mat.PutCDense(ws, g2)
	mat.PutCDense(ws, sys)
	return b
}

// logLambda computes ψ = ln(λ)/Δt with a floor on |λ| so that numerically
// dead modes (λ≈0, i.e. fully damped within one step) yield a very
// negative but finite growth rate instead of -Inf.
func logLambda(lam complex128, dt float64) complex128 {
	const floor = 1e-300
	if cmplx.Abs(lam) < floor {
		lam = complex(floor, 0)
	}
	return cmplx.Log(lam) / complex(dt, 0)
}

// Reconstruct evaluates the DMD model x(t) = Σ φᵢ e^{ψᵢ t} bᵢ (Eq. 6) at
// the given times (in the same units as DT), returning a real P×len(times)
// matrix (imaginary parts cancel up to roundoff for real data and are
// discarded).
func (d *Decomposition) Reconstruct(times []float64) *mat.Dense {
	return ReconstructModes(d.Modes, d.P, times)
}

// ReconstructModes evaluates a subset of modes at the given times.
func ReconstructModes(modes []Mode, p int, times []float64) *mat.Dense {
	out := mat.NewDense(p, len(times))
	reconstructInto(out, modes, times)
	return out
}

// ReconstructModesInto evaluates modes at the given times into out
// (p×len(times)), overwriting its contents — the allocation-free variant
// for pooled reconstruction scratch.
func ReconstructModesInto(out *mat.Dense, modes []Mode, times []float64) {
	ReconstructModesIntoWith(nil, nil, out, modes, times)
}

// ampWindowMassFloor is the windowed amplitude fit's relative mass floor:
// a mode whose |λᵏ| envelope over the fit window peaks below this fraction
// of the dominant mode's is reported with amplitude 0. The floor caps the
// 1/λᵏ⁰ noise amplification of referencing trailing-window information
// back to t=0 at ~1/floor; modes above it keep their (documented, at worst
// floor⁻¹-noise-amplified) estimates.
const ampWindowMassFloor = 0.05

// reconGemmMin is the r·t·p volume above which reconstruction goes
// through the GEMM form instead of the scalar triple loop: below it the
// plane setup costs more than the loop saves.
const reconGemmMin = 4096

// ReconGemmForm reports which evaluation form ReconstructModesIntoWith
// would pick for a p×t reconstruction of r modes: true for the two-GEMM
// plane form, false for the scalar triple loop. The two forms agree only
// to roundoff, so callers that evaluate a span incrementally (the O(Δ)
// slow-grid cache) must pin the form the full-width evaluation would use
// — per-column results are then bit-identical regardless of how the span
// was partitioned, because both forms accumulate each output column
// independently and in the same order.
func ReconGemmForm(p, t, r int) bool { return r*t*p >= reconGemmMin }

// ReconstructModesIntoWith is ReconstructModesInto with the evaluation
// GEMMs routed through engine e and scratch borrowed from ws (both may be
// nil). For non-trivial mode sets the evaluation runs as two real GEMMs,
// Re(X̂) = Re(Φ)·Re(W) − Im(Φ)·Im(W) with W[j,k] = e^{ψⱼtₖ}bⱼ — X is
// real, so the planes never mix — which lands on the tall-skinny kernel
// tier for the streaming residual shapes (p×r times r×t with r small).
func ReconstructModesIntoWith(e *compute.Engine, ws *compute.Workspace, out *mat.Dense, modes []Mode, times []float64) {
	ReconstructModesIntoFormWith(e, ws, out, modes, times,
		ReconGemmForm(out.R, len(times), len(modes)))
}

// ReconstructModesIntoFormWith is ReconstructModesIntoWith with the
// evaluation form pinned by the caller instead of derived from the output
// volume — the contract the incremental slow-grid extension relies on to
// stay bit-identical to a from-scratch full-width evaluation.
func ReconstructModesIntoFormWith(e *compute.Engine, ws *compute.Workspace, out *mat.Dense, modes []Mode, times []float64, gemm bool) {
	if out.C != len(times) {
		panic("dmd: ReconstructModesInto shape mismatch")
	}
	p, t := out.R, len(times)
	if gemm && len(modes) > 0 && t > 0 && p > 0 {
		reconstructGemm(e, ws, out, modes, times)
		return
	}
	s := out.RowStride()
	for i := 0; i < p; i++ {
		row := out.Data[i*s : i*s+t]
		for k := range row {
			row[k] = 0
		}
	}
	reconstructInto(out, modes, times)
}

func reconstructInto(out *mat.Dense, modes []Mode, times []float64) {
	p, s := out.R, out.RowStride()
	for _, m := range modes {
		for k, t := range times {
			w := expPsiT(m.Psi, t) * m.Amp
			if w == 0 {
				continue
			}
			for i := 0; i < p; i++ {
				out.Data[i*s+k] += real(m.Phi[i] * w)
			}
		}
	}
}

// reconPlanes splits Φ and the time-weight matrix W[j,k] = e^{ψⱼtₖ}bⱼ
// into real/imaginary plane matrices for the GEMM evaluation forms.
func reconPlanes(ws *compute.Workspace, p int, modes []Mode, times []float64) (phiRe, phiIm, wRe, wIm *mat.Dense) {
	t, r := len(times), len(modes)
	phiRe = mat.GetDenseRaw(ws, p, r)
	phiIm = mat.GetDenseRaw(ws, p, r)
	for i := 0; i < p; i++ {
		rre, rim := phiRe.Row(i), phiIm.Row(i)
		for j := range modes {
			v := modes[j].Phi[i]
			rre[j], rim[j] = real(v), imag(v)
		}
	}
	wRe = mat.GetDenseRaw(ws, r, t)
	wIm = mat.GetDenseRaw(ws, r, t)
	for j := range modes {
		m := &modes[j]
		wre, wim := wRe.Row(j), wIm.Row(j)
		for k, tk := range times {
			w := expPsiT(m.Psi, tk) * m.Amp
			wre[k], wim[k] = real(w), imag(w)
		}
	}
	return phiRe, phiIm, wRe, wIm
}

func putReconPlanes(ws *compute.Workspace, phiRe, phiIm, wRe, wIm *mat.Dense) {
	mat.PutDense(ws, wIm)
	mat.PutDense(ws, wRe)
	mat.PutDense(ws, phiIm)
	mat.PutDense(ws, phiRe)
}

// reconstructGemm evaluates the mode sum as two real GEMMs over the
// real/imaginary planes of Φ and the time-weight matrix W.
func reconstructGemm(e *compute.Engine, ws *compute.Workspace, out *mat.Dense, modes []Mode, times []float64) {
	phiRe, phiIm, wRe, wIm := reconPlanes(ws, out.R, modes, times)
	mat.MulIntoWith(e, out, phiRe, wRe)
	tmp := mat.MulWith(e, ws, phiIm, wIm)
	mat.SubInPlace(out, tmp)
	mat.PutDense(ws, tmp)
	putReconPlanes(ws, phiRe, phiIm, wRe, wIm)
}

// AddReconstructionWith accumulates the mode-sum evaluation into dst
// (dst += X̂) without materializing X̂: the two plane GEMMs run in
// accumulate mode straight into dst. dst may be a column view.
func AddReconstructionWith(e *compute.Engine, ws *compute.Workspace, dst *mat.Dense, modes []Mode, times []float64) {
	accumReconstruction(e, ws, dst, modes, times, 1)
}

// SubReconstructionWith subtracts the mode-sum evaluation from dst
// (dst -= X̂) — the residual flip of the mrDMD recursion, fused so the
// window buffer is the only p×t matrix touched.
func SubReconstructionWith(e *compute.Engine, ws *compute.Workspace, dst *mat.Dense, modes []Mode, times []float64) {
	accumReconstruction(e, ws, dst, modes, times, -1)
}

func accumReconstruction(e *compute.Engine, ws *compute.Workspace, dst *mat.Dense, modes []Mode, times []float64, sign float64) {
	if dst.C != len(times) {
		panic("dmd: reconstruction accumulate shape mismatch")
	}
	p, t, r := dst.R, len(times), len(modes)
	if r == 0 || t == 0 || p == 0 {
		return
	}
	if r*t*p >= reconGemmMin {
		phiRe, phiIm, wRe, wIm := reconPlanes(ws, p, modes, times)
		if sign > 0 {
			mat.MulAddIntoWith(e, dst, phiRe, wRe)
			mat.MulSubIntoWith(e, dst, phiIm, wIm)
		} else {
			mat.MulSubIntoWith(e, dst, phiRe, wRe)
			mat.MulAddIntoWith(e, dst, phiIm, wIm)
		}
		putReconPlanes(ws, phiRe, phiIm, wRe, wIm)
		return
	}
	s := dst.RowStride()
	for j := range modes {
		m := &modes[j]
		for k, tk := range times {
			w := expPsiT(m.Psi, tk) * m.Amp * complex(sign, 0)
			if w == 0 {
				continue
			}
			for i := 0; i < p; i++ {
				dst.Data[i*s+k] += real(m.Phi[i] * w)
			}
		}
	}
}

// expPsiT computes e^{ψt} with the real exponent clamped so growing modes
// cannot overflow to +Inf when extrapolated across a long window.
func expPsiT(psi complex128, t float64) complex128 {
	re := real(psi) * t
	if re > 700 {
		re = 700
	}
	if re < -700 {
		return 0
	}
	im := imag(psi) * t
	return cmplx.Exp(complex(re, im))
}

// SlowModes partitions modes by the mrDMD slow-mode criterion
// |ψ|/(2π) ≤ rho (cycles per unit time), following the reference mrDMD
// implementation which applies the modulus of the full complex exponent
// so that fast-growing modes also count as "fast".
func SlowModes(modes []Mode, rho float64) (slow, fast []Mode) {
	for _, m := range modes {
		if cmplx.Abs(m.Psi)/(2*math.Pi) <= rho {
			slow = append(slow, m)
		} else {
			fast = append(fast, m)
		}
	}
	return slow, fast
}

// SpectrumPoint is one (frequency, power, amplitude) sample of the DMD /
// mrDMD spectrum used for frequency isolation (paper §III-A2, Fig. 5/7).
type SpectrumPoint struct {
	Freq  float64 // cycles per unit time (Eq. 9)
	Power float64 // ‖φ‖² (Eq. 10)
	Amp   float64 // |b|, the plotted "mode amplitude"
	Grow  float64 // Re ψ: positive = growing, negative = decaying
	Level int     // mrDMD level the mode came from (0 for plain DMD)
}

// Spectrum returns the spectrum points of a decomposition.
func (d *Decomposition) Spectrum() []SpectrumPoint {
	pts := make([]SpectrumPoint, 0, len(d.Modes))
	for _, m := range d.Modes {
		pts = append(pts, SpectrumPoint{
			Freq:  m.Freq,
			Power: m.Power,
			Amp:   cmplx.Abs(m.Amp),
			Grow:  real(m.Psi),
		})
	}
	return pts
}

// FilterBand keeps spectrum points with Freq in [lo, hi].
func FilterBand(pts []SpectrumPoint, lo, hi float64) []SpectrumPoint {
	out := pts[:0:0]
	for _, p := range pts {
		if p.Freq >= lo && p.Freq <= hi {
			out = append(out, p)
		}
	}
	return out
}
