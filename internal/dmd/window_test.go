package dmd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// decomposeWindowed runs FromSVD on the same data with a given amplitude
// window. rank 0 defers to SVHT.
func decomposeWindowed(t *testing.T, data *mat.Dense, dt float64, win, rank int) *Decomposition {
	t.Helper()
	x := mat.ColSliceWith(nil, data, 0, data.C-1)
	s := svd.Compute(x)
	dec, err := FromSVD(s, data, Options{DT: dt, UseSVHT: rank == 0, Rank: rank, AmplitudeWindow: win})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestAmplitudeWindowFullWidthBitIdentical: window ≥ T (or 0) must take
// exactly the unwindowed code path — the flat-horizon default contract.
func TestAmplitudeWindowFullWidthBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dt := 0.05
	data, _ := linearSystem(rng, 24, 160, []float64{0.4, 1.1}, []float64{-0.05, -0.1}, dt)
	full := decomposeWindowed(t, data, dt, 0, 0)
	for _, win := range []int{160, 161, 10_000} {
		w := decomposeWindowed(t, data, dt, win, 0)
		if len(w.Modes) != len(full.Modes) {
			t.Fatalf("win=%d: %d modes vs %d", win, len(w.Modes), len(full.Modes))
		}
		for j := range full.Modes {
			if w.Modes[j].Amp != full.Modes[j].Amp {
				t.Fatalf("win=%d mode %d: Amp %v != %v (must be bit-identical)",
					win, j, w.Modes[j].Amp, full.Modes[j].Amp)
			}
			if w.Modes[j].Lambda != full.Modes[j].Lambda {
				t.Fatalf("win=%d mode %d: Lambda differs", win, j)
			}
		}
	}
}

// TestAmplitudeWindowAgreesWithFull: a trailing window covering most of a
// stationary signal's history must reproduce the full-width amplitudes to
// a documented tolerance — the window drops redundant normal-equation
// rows, not information, when the dynamics are persistent.
func TestAmplitudeWindowAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dt := 0.05
	// Pure oscillators (no decay): every window sees the same dynamics.
	data, _ := linearSystem(rng, 24, 400, []float64{0.4, 1.1}, []float64{0, 0}, dt)
	full := decomposeWindowed(t, data, dt, 0, 4)
	win := decomposeWindowed(t, data, dt, 128, 4)
	if len(win.Modes) != len(full.Modes) {
		t.Fatalf("mode count changed under windowing: %d vs %d", len(win.Modes), len(full.Modes))
	}
	for j := range full.Modes {
		fa, wa := full.Modes[j].Amp, win.Modes[j].Amp
		denom := cmplx.Abs(fa)
		if denom < 1e-9 {
			continue
		}
		if rel := cmplx.Abs(fa-wa) / denom; rel > 1e-6 {
			t.Fatalf("mode %d: windowed amplitude rel diff %g (full %v, win %v)", j, rel, fa, wa)
		}
	}
}

// TestAmplitudeWindowZeroesDecayedModes: a mode that has fully decayed
// before the window opens carries no information into the windowed
// normal equations; its amplitude must come back exactly 0, not jitter
// noise scaled by 1/λᵏ⁰ (which would blow up early-time reconstruction).
func TestAmplitudeWindowZeroesDecayedModes(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dt := 0.05
	// One persistent oscillator, one that decays to ~e⁻⁶⁸ before the
	// trailing 128 columns begin.
	data, _ := linearSystem(rng, 24, 400, []float64{0.4, 1.1}, []float64{0, -5}, dt)
	win := decomposeWindowed(t, data, dt, 128, 4)
	var zeroed, live int
	for _, m := range win.Modes {
		if cmplx.Abs(m.Lambda) < 0.9 {
			if m.Amp != 0 {
				t.Fatalf("decayed mode |λ|=%g kept noisy amplitude %v", cmplx.Abs(m.Lambda), m.Amp)
			}
			zeroed++
		} else if m.Amp != 0 {
			live++
		}
	}
	if zeroed == 0 || live == 0 {
		t.Fatalf("test lost its shape: %d zeroed, %d live of %d modes", zeroed, live, len(win.Modes))
	}
}

// TestReconFormPinnedBitIdentical: evaluating a span in two pieces with
// the form pinned must reproduce the one-shot full-span evaluation bit
// for bit — the contract the O(Δ) slow-grid cache extension depends on.
func TestReconFormPinnedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dt := 0.05
	data, _ := linearSystem(rng, 40, 200, []float64{0.3, 0.9}, []float64{-0.02, -0.05}, dt)
	dec := decomposeWindowed(t, data, dt, 0, 0)
	if len(dec.Modes) == 0 {
		t.Fatal("no modes")
	}
	p := data.R
	const n = 96
	times := make([]float64, n)
	for k := range times {
		times[k] = float64(k) * dt
	}
	gemm := ReconGemmForm(p, n, len(dec.Modes))
	whole := mat.NewDense(p, n)
	ReconstructModesIntoFormWith(nil, nil, whole, dec.Modes, times, gemm)

	for _, split := range []int{1, 17, n / 2, n - 3} {
		pieces := mat.NewDense(p, n)
		ReconstructModesIntoFormWith(nil, nil, mat.ColsView(pieces, 0, split), dec.Modes, times[:split], gemm)
		ReconstructModesIntoFormWith(nil, nil, mat.ColsView(pieces, split, n), dec.Modes, times[split:], gemm)
		for i := 0; i < p; i++ {
			for k := 0; k < n; k++ {
				if pieces.At(i, k) != whole.At(i, k) {
					t.Fatalf("split %d: (%d,%d) %v != %v — piecewise eval not bit-identical",
						split, i, k, pieces.At(i, k), whole.At(i, k))
				}
			}
		}
		// The *unpinned* forms genuinely differ across the volume
		// threshold; assert both forms at least agree to roundoff so the
		// pinning contract is about bits, not correctness.
		other := mat.NewDense(p, n)
		ReconstructModesIntoFormWith(nil, nil, other, dec.Modes, times, !gemm)
		var maxDiff, scale float64
		for i := range whole.Data {
			if d := math.Abs(whole.Data[i] - other.Data[i]); d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(whole.Data[i]); a > scale {
				scale = a
			}
		}
		if maxDiff > 1e-9*(scale+1) {
			t.Fatalf("forms disagree beyond roundoff: %g (scale %g)", maxDiff, scale)
		}
	}
}
