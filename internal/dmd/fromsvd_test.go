package dmd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// TestFromSVDMatchesCompute verifies the split entry point I-mrDMD uses:
// finishing a DMD from an incrementally maintained SVD must agree with
// Compute on the same snapshots.
func TestFromSVDMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dt := 0.1
	data, _ := linearSystem(rng, 20, 120, []float64{0.4, 1.0}, []float64{-0.05, -0.1}, dt)

	direct, err := Compute(data, Options{DT: dt, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}

	// Incremental SVD of X built in three chunks.
	x := data.ColSlice(0, data.C-1)
	inc := svd.NewIncremental(x.ColSlice(0, 40), 0)
	inc.Update(x.ColSlice(40, 80))
	inc.Update(x.ColSlice(80, x.C))
	viaInc, err := FromSVD(inc.Result(), data, Options{DT: dt, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(direct.Modes) != len(viaInc.Modes) {
		t.Fatalf("mode counts differ: %d vs %d", len(direct.Modes), len(viaInc.Modes))
	}
	// Same spectra (order may differ): match eigenvalues pairwise.
	for _, m := range direct.Modes {
		best := math.Inf(1)
		for _, n := range viaInc.Modes {
			if d := cmplx.Abs(m.Lambda - n.Lambda); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Fatalf("eigenvalue %v not matched (closest %g away)", m.Lambda, best)
		}
	}
	// Same reconstructions.
	times := make([]float64, data.C)
	for k := range times {
		times[k] = float64(k) * dt
	}
	d := mat.Sub(direct.Reconstruct(times), viaInc.Reconstruct(times)).FrobNorm()
	if d > 1e-6*(1+data.FrobNorm()) {
		t.Fatalf("reconstructions differ by %g", d)
	}
}

func TestOptimalAmplitudesBeatSingleSnapshot(t *testing.T) {
	// With noise, amplitudes fitted over all snapshots must reconstruct
	// better than amplitudes fitted from x₁ alone (the motivation for the
	// Jovanović formulation in mrDMD).
	rng := rand.New(rand.NewSource(2))
	dt := 1.0
	p, tt := 12, 100
	data := mat.NewDense(p, tt)
	f := 0.03
	for i := 0; i < p; i++ {
		amp := 1 + rng.Float64()
		ph := rng.Float64() * 2 * math.Pi
		for k := 0; k < tt; k++ {
			data.Set(i, k, amp*math.Sin(2*math.Pi*f*float64(k)+ph)+0.3*rng.NormFloat64())
		}
	}
	dec, err := Compute(data, Options{DT: dt, UseSVHT: true})
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, tt)
	for k := range times {
		times[k] = float64(k)
	}
	optErr := mat.Sub(dec.Reconstruct(times), data).FrobNorm()

	// Refit amplitudes from the first snapshot only.
	phi := mat.NewCDense(p, len(dec.Modes))
	for j, m := range dec.Modes {
		for i := 0; i < p; i++ {
			phi.Set(i, j, m.Phi[i])
		}
	}
	x1 := make([]complex128, p)
	for i := 0; i < p; i++ {
		x1[i] = complex(data.At(i, 0), 0)
	}
	b1 := mat.CLstSq(phi, x1)
	single := make([]Mode, len(dec.Modes))
	copy(single, dec.Modes)
	for j := range single {
		single[j].Amp = b1[j]
	}
	singleErr := mat.Sub(ReconstructModes(single, p, times), data).FrobNorm()

	if optErr > singleErr {
		t.Fatalf("optimal amplitudes (%g) worse than single-snapshot fit (%g)", optErr, singleErr)
	}
}

func TestReconstructModesEmpty(t *testing.T) {
	out := ReconstructModes(nil, 4, []float64{0, 1, 2})
	if out.R != 4 || out.C != 3 || out.FrobNorm() != 0 {
		t.Fatal("empty mode reconstruction should be zero matrix")
	}
}

func TestComputeConstantSignal(t *testing.T) {
	// A constant signal is a single λ=1 mode; reconstruction must be
	// exact and the frequency zero.
	data := mat.NewDense(5, 50)
	for i := range data.Data {
		data.Data[i] = 42
	}
	dec, err := Compute(data, Options{DT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Modes) == 0 {
		t.Fatal("no modes for constant signal")
	}
	for _, m := range dec.Modes {
		if m.Freq > 1e-10 {
			t.Fatalf("constant signal produced oscillation at %g", m.Freq)
		}
	}
	times := []float64{0, 10, 49}
	recon := dec.Reconstruct(times)
	for i := 0; i < 5; i++ {
		for k := range times {
			if math.Abs(recon.At(i, k)-42) > 1e-6 {
				t.Fatalf("constant reconstruction %g want 42", recon.At(i, k))
			}
		}
	}
}
