package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
	"imrdmd/internal/stream"
)

// testClient wraps an httptest server with the request helpers the suite
// repeats.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, s *Server) *testClient {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &testClient{t: t, srv: srv}
}

// do issues a request and returns status and body.
func (c *testClient) do(method, path, contentType string, body []byte) (int, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

// must asserts the expected status and returns the body.
func (c *testClient) must(method, path, contentType string, body []byte, wantCode int) []byte {
	c.t.Helper()
	code, out := c.do(method, path, contentType, body)
	if code != wantCode {
		c.t.Fatalf("%s %s: status %d want %d (%s)", method, path, code, wantCode, out)
	}
	return out
}

// csvBody renders columns [lo, hi) of data as a CSV ingest body.
func csvBody(t *testing.T, data *mat.Dense, lo, hi int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stream.WriteCSV(&buf, data.ColSlice(lo, hi)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// jsonBody renders columns [lo, hi) of data as one JSON batch object.
func jsonBody(t *testing.T, data *mat.Dense, lo, hi int) []byte {
	t.Helper()
	sl := data.ColSlice(lo, hi)
	rows := make([][]float64, sl.R)
	for i := range rows {
		rows[i] = sl.Row(i)
	}
	out, err := json.Marshal(stream.JSONBatch{Data: rows})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// referenceAnalyzer replays the same stream schedule the test drives over
// HTTP, directly against a core analyzer.
func referenceAnalyzer(t *testing.T, data *mat.Dense, opts TenantOptions, seedCols, step, until int) *core.Incremental {
	t.Helper()
	copts := opts.toCore(nil)
	copts.Workers = 4
	inc := core.NewIncremental(copts)
	if err := inc.InitialFit(data.ColSlice(0, seedCols)); err != nil {
		t.Fatal(err)
	}
	for c := seedCols; c < until; c += step {
		if _, err := inc.PartialFit(data.ColSlice(c, c+step)); err != nil {
			t.Fatal(err)
		}
	}
	return inc
}

// spectraMatch compares a server spectrum response against a reference
// analyzer's to tol.
func spectraMatch(t *testing.T, label string, body []byte, ref *core.Incremental, tol float64) {
	t.Helper()
	var got []SpectrumPoint
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want := ref.Tree().Spectrum()
	if len(got) != len(want) {
		t.Fatalf("%s: %d spectrum points vs %d", label, len(got), len(want))
	}
	for i, wp := range want {
		gp := got[i]
		if d := math.Abs(gp.Freq - wp.Freq); d > tol*(1+math.Abs(wp.Freq)) {
			t.Fatalf("%s point %d: freq %v vs %v", label, i, gp.Freq, wp.Freq)
		}
		if d := math.Abs(gp.Power - wp.Power); d > tol*(1+wp.Power) {
			t.Fatalf("%s point %d: power %v vs %v", label, i, gp.Power, wp.Power)
		}
	}
}

// TestServerTenantLifecycle walks one tenant through create → seed →
// stream → query → delete over CSV ingest.
func TestServerTenantLifecycle(t *testing.T) {
	data := bench.SCLogData(48, 768, 1)
	s := New(Config{Workers: 4, DefaultInitialCols: 512})
	c := newTestClient(t, s)

	opts := []byte(`{"dt":20,"max_levels":3,"max_cycles":2,"use_svht":true,"block_columns":8}`)
	c.must("POST", "/v1/tenants/theta", "application/json", opts, http.StatusCreated)

	// Under-seed ingest buffers without fitting.
	body := c.must("POST", "/v1/tenants/theta/ingest", "text/csv", csvBody(t, data, 0, 256), http.StatusOK)
	var ing struct {
		Seeded  bool `json:"seeded"`
		Pending int  `json:"pending"`
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Seeded || ing.Pending != 256 {
		t.Fatalf("pre-seed state: %+v", ing)
	}
	// Query endpoints refuse before the seed.
	c.must("GET", "/v1/tenants/theta/spectrum", "", nil, http.StatusConflict)
	c.must("GET", "/v1/tenants/theta/snapshot", "", nil, http.StatusConflict)

	// Crossing the seed width fits and spills the excess into a partial fit.
	c.must("POST", "/v1/tenants/theta/ingest", "text/csv", csvBody(t, data, 256, 640), http.StatusOK)
	c.must("POST", "/v1/tenants/theta/ingest", "text/csv", csvBody(t, data, 640, 768), http.StatusOK)

	ref := referenceAnalyzer(t, data, TenantOptions{DT: 20, MaxLevels: 3, MaxCycles: 2, UseSVHT: true, BlockColumns: 8}, 512, 128, 768)
	spectraMatch(t, "lifecycle", c.must("GET", "/v1/tenants/theta/spectrum", "", nil, http.StatusOK), ref, 1e-12)

	var st TenantStatus
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/theta/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Steps != 768 || !st.Seeded || st.Ingests != 3 {
		t.Fatalf("stats: %+v", st)
	}
	var me struct {
		Modes int `json:"modes"`
	}
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/theta/modes", "", nil, http.StatusOK), &me); err != nil {
		t.Fatal(err)
	}
	if me.Modes != ref.Tree().NumModes() {
		t.Fatalf("modes %d vs reference %d", me.Modes, ref.Tree().NumModes())
	}

	c.must("DELETE", "/v1/tenants/theta", "", nil, http.StatusNoContent)
	c.must("GET", "/v1/tenants/theta/stats", "", nil, http.StatusNotFound)
}

// TestServerColdTierStats: a tenant created with the flat-horizon knobs
// demotes old history to the f32 tier, reports the tiered footprint in
// /stats, and carries the knobs (and the cold tier) across
// snapshot → restore.
func TestServerColdTierStats(t *testing.T) {
	data := bench.SCLogData(48, 1536, 3)
	s := New(Config{Workers: 4, DefaultInitialCols: 512})
	c := newTestClient(t, s)

	opts := []byte(`{"dt":20,"max_levels":3,"max_cycles":2,"use_svht":true,"block_columns":8,` +
		`"cold_horizon":256,"drift_window":8,"amplitude_window":16}`)
	c.must("POST", "/v1/tenants/flat", "application/json", opts, http.StatusCreated)
	for lo := 0; lo < 1280; lo += 256 {
		c.must("POST", "/v1/tenants/flat/ingest", "text/csv", csvBody(t, data, lo, lo+256), http.StatusOK)
	}

	var st TenantStatus
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/flat/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Options.ColdHorizon != 256 || st.Options.DriftWindow != 8 || st.Options.AmplitudeWindow != 16 {
		t.Fatalf("options lost the flat-horizon knobs: %+v", st.Options)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident_bytes not reported: %d", st.ResidentBytes)
	}
	if st.RawColdCols == 0 {
		t.Fatal("raw_cold_cols = 0: cold tier never engaged")
	}
	// Cold storage halves those columns: resident must undercut all-f64.
	if allF64 := int64(48 * st.Steps * 8); st.ResidentBytes >= allF64 {
		t.Fatalf("resident_bytes %d not below the all-f64 footprint %d", st.ResidentBytes, allF64)
	}

	snap := c.must("GET", "/v1/tenants/flat/snapshot", "", nil, http.StatusOK)
	s2 := New(Config{Workers: 4, DefaultInitialCols: 512})
	c2 := newTestClient(t, s2)
	c2.must("PUT", "/v1/tenants/flat", "application/octet-stream", snap, http.StatusCreated)
	c2.must("POST", "/v1/tenants/flat/ingest", "text/csv", csvBody(t, data, 1280, 1536), http.StatusOK)
	var rst TenantStatus
	if err := json.Unmarshal(c2.must("GET", "/v1/tenants/flat/stats", "", nil, http.StatusOK), &rst); err != nil {
		t.Fatal(err)
	}
	if rst.Options.ColdHorizon != 256 || rst.Steps != 1536 || rst.RawColdCols == 0 {
		t.Fatalf("restored tenant lost tiering: %+v", rst)
	}
}

// TestServerRejects pins the client-error surface: bad options, duplicate
// ids, unknown tenants, malformed and non-finite ingest bodies, and the
// tenant cap.
func TestServerRejects(t *testing.T) {
	s := New(Config{Workers: 2, MaxTenants: 2, DefaultInitialCols: 8})
	c := newTestClient(t, s)

	c.must("POST", "/v1/tenants/bad", "application/json", []byte(`{"precision":"float16"}`), http.StatusBadRequest)
	c.must("POST", "/v1/tenants/bad", "application/json", []byte(`{"block_columns":-1}`), http.StatusBadRequest)
	c.must("POST", "/v1/tenants/bad", "application/json", []byte(`{"initial_cols":1}`), http.StatusBadRequest)
	c.must("POST", "/v1/tenants/bad", "application/json", []byte(`{"unknown_knob":true}`), http.StatusBadRequest)

	c.must("POST", "/v1/tenants/a", "application/json", nil, http.StatusCreated)
	c.must("POST", "/v1/tenants/a", "application/json", nil, http.StatusConflict)
	c.must("POST", "/v1/tenants/b", "application/json", nil, http.StatusCreated)
	c.must("POST", "/v1/tenants/c", "application/json", nil, http.StatusTooManyRequests)

	c.must("POST", "/v1/tenants/nope/ingest", "text/csv", []byte("1,2\n3,4\n"), http.StatusNotFound)
	c.must("POST", "/v1/tenants/a/ingest", "text/csv", []byte("1,NaN\n2,3\n"), http.StatusBadRequest)
	c.must("POST", "/v1/tenants/a/ingest", "application/json", []byte(`{"data":[[1,2],[3]]}`), http.StatusBadRequest)
	c.must("POST", "/v1/tenants/a/ingest", "application/pdf", []byte("x"), http.StatusBadRequest)
	c.must("PUT", "/v1/tenants/x", "application/octet-stream", []byte("not a snapshot"), http.StatusBadRequest)
}

// TestServerConcurrentTenantsSnapshotRestore is the PR's server
// acceptance criterion, run under -race in CI: two tenants with
// independent Options (float64/unsharded vs mixed/sharded) ingest
// concurrently against one engine; both are snapshotted, the process
// "restarts" (a fresh Server), both restore and continue streaming; the
// final spectra must match uninterrupted reference runs to 1e-12.
func TestServerConcurrentTenantsSnapshotRestore(t *testing.T) {
	const (
		p     = 48
		total = 1024
		seed  = 512
		step  = 64
		mid   = 768 // snapshot point, between partial fits
	)
	scen := map[string]struct {
		data *mat.Dense
		opts TenantOptions
		body string // ingest encoding: csv or json
	}{
		"sclog-f64": {
			data: bench.SCLogData(p, total, 1),
			opts: TenantOptions{DT: 20, MaxLevels: 3, MaxCycles: 2, UseSVHT: true, Parallel: true, BlockColumns: 8, InitialCols: seed},
			body: "csv",
		},
		"gpu-mixed-sharded": {
			data: bench.GPUData(p, total, 1),
			opts: TenantOptions{DT: 1, MaxLevels: 3, MaxCycles: 2, UseSVHT: true, Parallel: true, BlockColumns: 8, Precision: core.PrecisionMixed, Shards: 2, InitialCols: seed},
			body: "json",
		},
	}

	s := New(Config{Workers: 4})
	c := newTestClient(t, s)
	for id, sc := range scen {
		ob, err := json.Marshal(sc.opts)
		if err != nil {
			t.Fatal(err)
		}
		c.must("POST", "/v1/tenants/"+id, "application/json", ob, http.StatusCreated)
	}

	// Phase 1: concurrent ingest to the snapshot point.
	ingestRange := func(cl *testClient, id string, lo, hi int) {
		sc := scen[id]
		for x := lo; x < hi; x += step {
			if sc.body == "csv" {
				cl.must("POST", "/v1/tenants/"+id+"/ingest", "text/csv", csvBody(t, sc.data, x, x+step), http.StatusOK)
			} else {
				cl.must("POST", "/v1/tenants/"+id+"/ingest", "application/json", jsonBody(t, sc.data, x, x+step), http.StatusOK)
			}
		}
	}
	var wg sync.WaitGroup
	for id := range scen {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ingestRange(c, id, 0, mid)
		}(id)
	}
	// Metrics polling races the in-flight ingest — the shard.Stats
	// synchronization this PR adds is what keeps this clean under -race.
	pollDone := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			for id := range scen {
				resp, err := http.Get(c.srv.URL + "/v1/tenants/" + id + "/stats")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	wg.Wait()
	close(pollDone)
	pollWg.Wait()

	snapshots := map[string][]byte{}
	for id := range scen {
		snapshots[id] = c.must("GET", "/v1/tenants/"+id+"/snapshot", "", nil, http.StatusOK)
	}

	// Phase 2: "restart" — fresh server, restore both, continue streaming.
	s2 := New(Config{Workers: 4})
	c2 := newTestClient(t, s2)
	for id, snap := range snapshots {
		c2.must("PUT", "/v1/tenants/"+id, "application/octet-stream", snap, http.StatusCreated)
	}
	var wg2 sync.WaitGroup
	for id := range scen {
		wg2.Add(1)
		go func(id string) {
			defer wg2.Done()
			ingestRange(c2, id, mid, total)
		}(id)
	}
	wg2.Wait()

	for id, sc := range scen {
		ref := referenceAnalyzer(t, sc.data, sc.opts, seed, step, total)
		spectraMatch(t, id, c2.must("GET", "/v1/tenants/"+id+"/spectrum", "", nil, http.StatusOK), ref, 1e-12)
		var st TenantStatus
		if err := json.Unmarshal(c2.must("GET", "/v1/tenants/"+id+"/stats", "", nil, http.StatusOK), &st); err != nil {
			t.Fatal(err)
		}
		if st.Steps != total {
			t.Fatalf("%s: restored tenant absorbed %d steps, want %d", id, st.Steps, total)
		}
		if sc.opts.Shards > 1 && (st.Shard == nil || st.Shard.Updates == 0) {
			t.Fatalf("%s: sharded transport stats missing after restore: %+v", id, st.Shard)
		}
	}
}

// TestSnapshotAllRestoreDir drives the on-disk state round trip the
// serve binary uses at shutdown/boot.
func TestSnapshotAllRestoreDir(t *testing.T) {
	data := bench.SCLogData(32, 640, 1)
	dir := t.TempDir()

	s := New(Config{Workers: 2, DefaultInitialCols: 512})
	c := newTestClient(t, s)
	c.must("POST", "/v1/tenants/disk", "application/json", []byte(`{"dt":20,"max_levels":3,"use_svht":true}`), http.StatusCreated)
	c.must("POST", "/v1/tenants/idle", "application/json", nil, http.StatusCreated) // never seeds
	c.must("POST", "/v1/tenants/disk/ingest", "text/csv", csvBody(t, data, 0, 640), http.StatusOK)

	n, err := s.SnapshotAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("wrote %d snapshots, want 1 (unseeded tenant skipped)", n)
	}

	s2 := New(Config{Workers: 2})
	ids, err := s2.RestoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "disk" {
		t.Fatalf("restored %v", ids)
	}
	c2 := newTestClient(t, s2)
	var st TenantStatus
	if err := json.Unmarshal(c2.must("GET", "/v1/tenants/disk/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Steps != 640 || !st.Seeded {
		t.Fatalf("restored stats: %+v", st)
	}

	// Restoring into an occupied id conflicts rather than clobbering.
	if _, err := s2.RestoreDir(dir); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	// Missing directory is a clean no-op (fresh deployments).
	if ids, err := New(Config{}).RestoreDir(dir + "-missing"); err != nil || len(ids) != 0 {
		t.Fatalf("missing dir: %v %v", ids, err)
	}
}

// TestHealthAndList covers the fleet-facing endpoints.
func TestHealthAndList(t *testing.T) {
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	var h struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if err := json.Unmarshal(c.must("GET", "/healthz", "", nil, http.StatusOK), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Tenants != 0 {
		t.Fatalf("health: %+v", h)
	}
	for _, id := range []string{"zeta", "alpha"} {
		c.must("POST", "/v1/tenants/"+id, "application/json", nil, http.StatusCreated)
	}
	var list []TenantStatus
	if err := json.Unmarshal(c.must("GET", "/v1/tenants", "", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "alpha" || list[1].ID != "zeta" {
		t.Fatalf("list: %+v", list)
	}
	if s.Tenants() != 2 {
		t.Fatalf("Tenants() = %d", s.Tenants())
	}
}

// TestTenantIDSanitized: ids become -state-dir file names, so separators
// and dot segments must be rejected (ServeMux unescapes %2F into the
// path value — a traversal id would otherwise escape the state dir).
func TestTenantIDSanitized(t *testing.T) {
	s := New(Config{Workers: 1})
	c := newTestClient(t, s)
	for _, id := range []string{"..%2Fpwn", "%2e%2e", "a%2Fb", "a%5Cb", "sp%20ace", "na%00me"} {
		code, _ := c.do("POST", "/v1/tenants/"+id, "application/json", nil)
		if code != http.StatusBadRequest && code != http.StatusNotFound {
			t.Fatalf("id %q: status %d, want rejection", id, code)
		}
	}
	// Dot-only ids never reach the handler over HTTP (path cleaning), but
	// the validator must still refuse them for any future caller.
	for _, id := range []string{".", "..", "...", ""} {
		if validTenantID(id) {
			t.Fatalf("id %q accepted by validator", id)
		}
	}
	if s.Tenants() != 0 {
		t.Fatalf("%d hostile tenants registered", s.Tenants())
	}
	c.must("POST", "/v1/tenants/ok-1._B", "application/json", nil, http.StatusCreated)
}

// TestIngestRowMismatchPreSeed: a pre-seed batch with a different sensor
// count must return 400, not panic the handler (regression: Feeder.Push
// used to hit mat.HStack's row-mismatch panic).
func TestIngestRowMismatchPreSeed(t *testing.T) {
	s := New(Config{Workers: 1, DefaultInitialCols: 64})
	c := newTestClient(t, s)
	c.must("POST", "/v1/tenants/rows", "application/json", nil, http.StatusCreated)
	c.must("POST", "/v1/tenants/rows/ingest", "text/csv", []byte("1,2\n3,4\n"), http.StatusOK)
	c.must("POST", "/v1/tenants/rows/ingest", "text/csv", []byte("1,2\n3,4\n5,6\n"), http.StatusBadRequest)
	// The tenant is still alive and consistent after the rejection.
	var st TenantStatus
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/rows/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Pending != 2 || st.Seeded {
		t.Fatalf("tenant state after rejected batch: %+v", st)
	}
}

// TestIngestFailureAbsorptionContract: the whole body decodes before any
// state is touched, so malformed or internally inconsistent bodies
// absorb NOTHING (no double-ingest risk on retry); an apply-phase
// rejection (analyzer row mismatch) reports the absorbed counts so a
// client knows exactly how far the ingest got.
func TestIngestFailureAbsorptionContract(t *testing.T) {
	data := bench.SCLogData(8, 96, 1)
	s := New(Config{Workers: 1, DefaultInitialCols: 16})
	c := newTestClient(t, s)
	c.must("POST", "/v1/tenants/part", "application/json", nil, http.StatusCreated)

	// Decode failure mid-body: nothing absorbed (parse happens up front,
	// before the first valid batch could have been applied).
	bad := string(jsonBody(t, data, 0, 32)) + `{"data":[[1],[2],[3]]` // truncated object
	code, _ := c.do("POST", "/v1/tenants/part/ingest", "application/json", []byte(bad))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", code)
	}
	var st TenantStatus
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/part/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Seeded || st.Pending != 0 {
		t.Fatalf("malformed body absorbed columns: %+v", st)
	}
	// Same for a body whose batches disagree on row count with each other.
	mixed := string(jsonBody(t, data, 0, 32)) + `{"data":[[1,2],[3,4]]}`
	c.must("POST", "/v1/tenants/part/ingest", "application/json", []byte(mixed), http.StatusBadRequest)

	// Apply-phase rejection: seed with 8 sensors, then send a well-formed
	// body with the wrong sensor count — the response carries the
	// absorbed counts (zero here) alongside the error.
	c.must("POST", "/v1/tenants/part/ingest", "application/json", jsonBody(t, data, 0, 32), http.StatusOK)
	body := c.must("POST", "/v1/tenants/part/ingest", "application/json", []byte(`{"data":[[1,2],[3,4]]}`), http.StatusBadRequest)
	var pr struct {
		Error   string `json:"error"`
		Columns int    `json:"columns_absorbed"`
		Batches int    `json:"batches_absorbed"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Error == "" || pr.Columns != 0 || pr.Batches != 0 {
		t.Fatalf("apply-failure report: %+v", pr)
	}
	if err := json.Unmarshal(c.must("GET", "/v1/tenants/part/stats", "", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Steps != 32 {
		t.Fatalf("steps after rejected ingest = %d want 32", st.Steps)
	}
}

// TestRestoreDirSkipsInvalidIDs: a snapshot file whose name is not a
// valid tenant id must be skipped at boot (it would register a zombie no
// request can address), reported in the returned error.
func TestRestoreDirSkipsInvalidIDs(t *testing.T) {
	data := bench.SCLogData(16, 320, 1)
	dir := t.TempDir()
	s := New(Config{Workers: 1, DefaultInitialCols: 256})
	c := newTestClient(t, s)
	c.must("POST", "/v1/tenants/good", "application/json", nil, http.StatusCreated)
	c.must("POST", "/v1/tenants/good/ingest", "text/csv", csvBody(t, data, 0, 320), http.StatusOK)
	if _, err := s.SnapshotAll(dir); err != nil {
		t.Fatal(err)
	}
	// A well-formed snapshot under an unaddressable file name.
	snap := c.must("GET", "/v1/tenants/good/snapshot", "", nil, http.StatusOK)
	if err := os.WriteFile(filepath.Join(dir, "bad name.imrdmd"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1})
	ids, err := s2.RestoreDir(dir)
	if err == nil {
		t.Fatal("invalid-id snapshot not reported")
	}
	if len(ids) != 1 || ids[0] != "good" || s2.Tenants() != 1 {
		t.Fatalf("restored %v (%d tenants)", ids, s2.Tenants())
	}
}
