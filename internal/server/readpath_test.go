package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imrdmd/internal/bench"
)

// get issues a GET with optional extra headers and returns the full
// response (headers included) plus the drained body.
func (c *testClient) get(path string, hdr map[string]string) (*http.Response, []byte) {
	c.t.Helper()
	req, err := http.NewRequest("GET", c.srv.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, body
}

// respVersion parses the X-Imrdmd-Version header.
func respVersion(t *testing.T, resp *http.Response) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(resp.Header.Get(versionHeader), 10, 64)
	if err != nil {
		t.Fatalf("bad %s header %q: %v", versionHeader, resp.Header.Get(versionHeader), err)
	}
	return v
}

// multiset folds spectrum points into their multiset form.
func multiset(pts []SpectrumPoint) map[SpectrumPoint]int {
	m := make(map[SpectrumPoint]int, len(pts))
	for _, p := range pts {
		m[p]++
	}
	return m
}

// applyDelta applies (−removed, +added) to a multiset in place,
// reporting an error when a removal names a point the set doesn't hold —
// the delta contract violation torn reads would produce.
func applyDelta(set map[SpectrumPoint]int, added, removed []SpectrumPoint) error {
	for _, p := range removed {
		if set[p] == 0 {
			return fmt.Errorf("delta removes %+v which the base set does not hold", p)
		}
		set[p]--
		if set[p] == 0 {
			delete(set, p)
		}
	}
	for _, p := range added {
		set[p]++
	}
	return nil
}

func multisetsEqual(a, b map[SpectrumPoint]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestSpectrumDeltaMultiset pins the delta contract on the pure
// function: old − removed + added == cur exactly, including duplicates.
func TestSpectrumDeltaMultiset(t *testing.T) {
	pt := func(f float64) SpectrumPoint { return SpectrumPoint{Freq: f, Power: f * 2, Level: 1} }
	old := []SpectrumPoint{pt(1), pt(2), pt(2), pt(3)}
	cur := []SpectrumPoint{pt(2), pt(4), pt(4), pt(3), pt(5)}
	added, removed := spectrumDelta(old, cur)
	set := multiset(old)
	if err := applyDelta(set, added, removed); err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(set, multiset(cur)) {
		t.Fatalf("applying delta (added=%d removed=%d) did not reproduce cur", len(added), len(removed))
	}
	// No-op delta on identical spectra.
	added, removed = spectrumDelta(cur, cur)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("identical spectra produced delta +%d/-%d", len(added), len(removed))
	}
}

// TestAppendSpectrumJSON pins the direct spectrum render against the
// reflective encoder: the bytes must parse back to the identical
// points (shortest-roundtrip floats), including exponent-form values
// and the empty spectrum.
func TestAppendSpectrumJSON(t *testing.T) {
	pts := []SpectrumPoint{
		{Freq: 0.000123456789, Power: 1e21, Amp: -42.5, Grow: 1.0 / 3.0, Level: 3},
		{Freq: 2e-9, Power: 0, Amp: 123456789012345, Grow: -1e-300, Level: 1},
		{},
	}
	var got []SpectrumPoint
	if err := json.Unmarshal(appendSpectrumJSON(nil, pts), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("%d points round-tripped, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %+v round-tripped to %+v", i, pts[i], got[i])
		}
	}
	if string(appendSpectrumJSON(nil, nil)) != "[]" {
		t.Fatalf("empty spectrum rendered %q", appendSpectrumJSON(nil, nil))
	}
}

// TestHubDropSlowest pins the backpressure contract: a subscriber that
// never drains loses the OLDEST queued publishes, keeps the newest, and
// sees the drops counted; unsubscribe and close end the stream.
func TestHubDropSlowest(t *testing.T) {
	var h pubHub
	sub := h.subscribe()
	const extra = 5
	for v := uint64(1); v <= subscriberBuffer+extra; v++ {
		h.broadcast(&PublishedResult{Version: v})
	}
	if got := sub.dropped.Load(); got != extra {
		t.Fatalf("dropped %d want %d", got, extra)
	}
	for want := uint64(extra + 1); want <= subscriberBuffer+extra; want++ {
		p := <-sub.ch
		if p.Version != want {
			t.Fatalf("drained version %d want %d", p.Version, want)
		}
	}
	select {
	case p := <-sub.ch:
		t.Fatalf("unexpected extra publish v%d", p.Version)
	default:
	}
	h.unsubscribe(sub)
	if _, open := <-sub.ch; open {
		t.Fatal("channel still open after unsubscribe")
	}
	h.close()
	if sub2 := h.subscribe(); func() bool { _, open := <-sub2.ch; return open }() {
		t.Fatal("subscribe on a closed hub returned a live stream")
	}
	h.broadcast(&PublishedResult{Version: 99}) // must not panic after close
}

// TestReadPathETagAndSince walks the conditional-request surface over
// HTTP: strong ETags with If-None-Match 304s on every published
// endpoint, version headers that only move forward, and the three
// ?since forms (current → 304, in-ring → delta, aged-out → resync).
func TestReadPathETagAndSince(t *testing.T) {
	data := bench.SCLogData(16, 768, 1)
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	opts := []byte(`{"dt":20,"max_levels":3,"max_cycles":2,"use_svht":true,"initial_cols":256}`)
	c.must("POST", "/v1/tenants/rp", "application/json", opts, http.StatusCreated)

	// Pre-seed: result endpoints refuse, stats serves the v1 publish.
	c.must("GET", "/v1/tenants/rp/spectrum", "", nil, http.StatusConflict)
	c.must("GET", "/v1/tenants/rp/modes", "", nil, http.StatusConflict)
	c.must("GET", "/v1/tenants/rp/error", "", nil, http.StatusConflict)
	resp, _ := c.get("/v1/tenants/rp/stats", nil)
	if v := respVersion(t, resp); v != 1 {
		t.Fatalf("creation publish version %d want 1", v)
	}
	statsTag := resp.Header.Get("ETag")
	if statsTag == "" {
		t.Fatal("stats response has no ETag")
	}
	// A pre-seed ingest republishes, but the stats BODY changes (ingest
	// counters), so no 304; the spectrum is what holds still pre-seed.
	c.must("POST", "/v1/tenants/rp/ingest", "text/csv", csvBody(t, data, 0, 128), http.StatusOK)
	resp, _ = c.get("/v1/tenants/rp/stats", map[string]string{"If-None-Match": statsTag})
	if resp.StatusCode != http.StatusOK || respVersion(t, resp) != 2 {
		t.Fatalf("stats after pre-seed ingest: %d v%s", resp.StatusCode, resp.Header.Get(versionHeader))
	}

	// Seed, then exercise 304s on every result endpoint.
	c.must("POST", "/v1/tenants/rp/ingest", "text/csv", csvBody(t, data, 128, 256), http.StatusOK)
	var baseSpec []SpectrumPoint
	resp, body := c.get("/v1/tenants/rp/spectrum", nil)
	if err := json.Unmarshal(body, &baseSpec); err != nil {
		t.Fatal(err)
	}
	baseVer := respVersion(t, resp)
	if baseVer != 3 {
		t.Fatalf("post-seed version %d want 3", baseVer)
	}
	for _, ep := range []string{"spectrum", "modes", "error", "stats"} {
		first, _ := c.get("/v1/tenants/rp/"+ep, nil)
		tag := first.Header.Get("ETag")
		if tag == "" || !strings.HasPrefix(tag, `"`) {
			t.Fatalf("%s: want strong quoted ETag, got %q", ep, tag)
		}
		again, body := c.get("/v1/tenants/rp/"+ep, map[string]string{"If-None-Match": tag})
		if again.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("%s: conditional GET returned %d with %d body bytes", ep, again.StatusCode, len(body))
		}
		if again.Header.Get("ETag") != tag || respVersion(t, again) != baseVer {
			t.Fatalf("%s: 304 lost headers", ep)
		}
		// A stale tag still gets the full body.
		miss, body := c.get("/v1/tenants/rp/"+ep, map[string]string{"If-None-Match": `"deadbeef"`})
		if miss.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: stale-tag GET returned %d", ep, miss.StatusCode)
		}
	}

	// ?since=current → bodyless 304.
	resp, body = c.get(fmt.Sprintf("/v1/tenants/rp/spectrum?since=%d", baseVer), nil)
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("since=current: %d with %d bytes", resp.StatusCode, len(body))
	}

	// Ingest forward; ?since=baseVer must return a delta that transforms
	// the base spectrum into the current one exactly.
	c.must("POST", "/v1/tenants/rp/ingest", "text/csv", csvBody(t, data, 256, 384), http.StatusOK)
	var cur []SpectrumPoint
	resp, body = c.get("/v1/tenants/rp/spectrum", nil)
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	curVer := respVersion(t, resp)
	var delta spectrumDeltaResponse
	resp, body = c.get(fmt.Sprintf("/v1/tenants/rp/spectrum?since=%d", baseVer), nil)
	if err := json.Unmarshal(body, &delta); err != nil {
		t.Fatal(err)
	}
	if !delta.Delta || delta.Version != curVer || delta.Since != baseVer || delta.Spectrum != nil {
		t.Fatalf("delta response: %+v", delta)
	}
	set := multiset(baseSpec)
	if err := applyDelta(set, delta.Added, delta.Removed); err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(set, multiset(cur)) {
		t.Fatal("delta did not transform base spectrum into current")
	}

	// Age baseVer out of the ring (> pubHistoryLen publishes), then
	// ?since=baseVer must fall back to a full resync.
	for i := 0; i < pubHistoryLen+1; i++ {
		c.must("POST", "/v1/tenants/rp/ingest", "text/csv", csvBody(t, data, 384+i*16, 384+(i+1)*16), http.StatusOK)
	}
	resp, body = c.get(fmt.Sprintf("/v1/tenants/rp/spectrum?since=%d", baseVer), nil)
	if err := json.Unmarshal(body, &delta); err != nil {
		t.Fatal(err)
	}
	_, full := c.get("/v1/tenants/rp/spectrum", nil)
	var fullSpec []SpectrumPoint
	if err := json.Unmarshal(full, &fullSpec); err != nil {
		t.Fatal(err)
	}
	if delta.Delta || len(delta.Spectrum) == 0 || !multisetsEqual(multiset(delta.Spectrum), multiset(fullSpec)) {
		t.Fatalf("aged-out since should resync: delta=%v points=%d", delta.Delta, len(delta.Spectrum))
	}
	c.must("GET", "/v1/tenants/rp/spectrum?since=notanumber", "", nil, http.StatusBadRequest)
}

// sseEvent is one parsed SSE publish event.
type sseEvent struct {
	id   uint64
	data pushEvent
}

// sseReader incrementally parses `event:`/`id:`/`data:` frames off an
// open SSE response body.
type sseReader struct {
	br *bufio.Reader
}

func (r *sseReader) next() (sseEvent, error) {
	var ev sseEvent
	seen := false
	for {
		line, err := r.br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && seen:
			return ev, nil
		case strings.HasPrefix(line, "id: "):
			id, perr := strconv.ParseUint(line[len("id: "):], 10, 64)
			if perr != nil {
				return ev, perr
			}
			ev.id = id
			seen = true
		case strings.HasPrefix(line, "data: "):
			if perr := json.Unmarshal([]byte(line[len("data: "):]), &ev.data); perr != nil {
				return ev, perr
			}
			seen = true
		}
	}
}

// openSSE starts an /events stream and returns its reader plus a cancel
// that tears the connection down.
func openSSE(t *testing.T, c *testClient, path string, hdr map[string]string) (*sseReader, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", c.srv.URL+path, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		cancel()
		t.Fatalf("events: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	return &sseReader{br: bufio.NewReader(resp.Body)}, func() { cancel(); resp.Body.Close() }
}

// TestEventsStream drives the SSE surface serially: the immediate
// current-state event, one delta event per publish, Last-Event-ID
// resume, and stream teardown on tenant delete.
func TestEventsStream(t *testing.T) {
	data := bench.SCLogData(16, 640, 1)
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	opts := []byte(`{"dt":20,"max_levels":3,"max_cycles":2,"use_svht":true,"initial_cols":256}`)
	c.must("POST", "/v1/tenants/sse", "application/json", opts, http.StatusCreated)
	c.must("POST", "/v1/tenants/sse/ingest", "text/csv", csvBody(t, data, 0, 256), http.StatusOK)

	c.must("GET", "/v1/tenants/nope/events", "", nil, http.StatusNotFound)

	r, stop := openSSE(t, c, "/v1/tenants/sse/events", nil)
	defer stop()
	first, err := r.next()
	if err != nil {
		t.Fatal(err)
	}
	if !first.data.Reset || first.id != first.data.Version || !first.data.Seeded {
		t.Fatalf("first event: %+v", first)
	}
	state := multiset(first.data.Spectrum)
	_, full := c.get("/v1/tenants/sse/spectrum", nil)
	var spec []SpectrumPoint
	if err := json.Unmarshal(full, &spec); err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(state, multiset(spec)) {
		t.Fatal("initial SSE spectrum disagrees with GET /spectrum")
	}

	// Each ingest publishes one delta event against the previous one.
	prev := first.id
	for i := 0; i < 3; i++ {
		c.must("POST", "/v1/tenants/sse/ingest", "text/csv", csvBody(t, data, 256+i*64, 256+(i+1)*64), http.StatusOK)
		ev, err := r.next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.id <= prev || ev.data.Since != prev || ev.data.Reset {
			t.Fatalf("event %d: id=%d since=%d reset=%v (prev %d)", i, ev.id, ev.data.Since, ev.data.Reset, prev)
		}
		if err := applyDelta(state, ev.data.Added, ev.data.Removed); err != nil {
			t.Fatal(err)
		}
		prev = ev.id
	}
	_, full = c.get("/v1/tenants/sse/spectrum", nil)
	if err := json.Unmarshal(full, &spec); err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(state, multiset(spec)) {
		t.Fatal("delta-maintained SSE spectrum diverged from GET /spectrum")
	}

	// Resume with Last-Event-ID two versions back: the first event must
	// be a delta against that version, not a reset.
	r2, stop2 := openSSE(t, c, "/v1/tenants/sse/events", map[string]string{"Last-Event-ID": strconv.FormatUint(prev-1, 10)})
	defer stop2()
	ev, err := r2.next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.data.Reset || ev.data.Since != prev-1 || ev.id != prev {
		t.Fatalf("resume event: %+v", ev)
	}

	// Deleting the tenant ends both streams.
	c.must("DELETE", "/v1/tenants/sse", "", nil, http.StatusNoContent)
	deadline := time.After(5 * time.Second)
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := r.next(); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case <-deadline:
		t.Fatal("SSE stream did not end after tenant delete")
	case err := <-done:
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Logf("stream ended with %v", err)
		}
	}
}

// TestReadPathConcurrentHammer is the PR's lock-free acceptance test,
// run under -race in CI: four reader goroutines hammer every published
// endpoint (with conditional requests and ?since polling) and one SSE
// subscriber follows the event stream, all while the writer streams
// PartialFit batches over HTTP. Asserts per-reader monotone versions,
// the delta contract under concurrency, cross-endpoint agreement at
// equal versions (no torn reads), and final convergence of every
// delta-maintained spectrum to the last published one.
func TestReadPathConcurrentHammer(t *testing.T) {
	const (
		p     = 16
		seed  = 256
		total = 768
		step  = 16
	)
	data := bench.SCLogData(p, total, 1)
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	opts := []byte(`{"dt":20,"max_levels":3,"max_cycles":2,"use_svht":true,"initial_cols":256}`)
	c.must("POST", "/v1/tenants/hammer", "application/json", opts, http.StatusCreated)
	c.must("POST", "/v1/tenants/hammer/ingest", "text/csv", csvBody(t, data, 0, seed), http.StatusOK)

	// modesAt records version → mode count observations from every
	// endpoint that reports both; two observations of the same version
	// must agree (a torn read would not).
	var obsMu sync.Mutex
	modesAt := map[uint64]int{}
	recordModes := func(version uint64, modes int) error {
		obsMu.Lock()
		defer obsMu.Unlock()
		if prev, ok := modesAt[version]; ok && prev != modes {
			return fmt.Errorf("version %d observed with %d and %d modes", version, prev, modes)
		}
		modesAt[version] = modes
		return nil
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup

	// Readers: rotate endpoints, track monotone versions, maintain a
	// delta-synced spectrum via ?since, replay ETags as If-None-Match.
	base := "/v1/tenants/hammer"
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			var lastVer uint64
			var sinceVer uint64
			var etags [4]string
			eps := [4]string{"spectrum", "modes", "error", "stats"}
			state := map[SpectrumPoint]int{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := eps[i%4]
				hdr := map[string]string{}
				if tag := etags[i%4]; tag != "" && i%3 == 0 {
					hdr["If-None-Match"] = tag
				}
				path := base + "/" + ep
				if ep == "spectrum" && i%2 == 1 {
					path += "?since=" + strconv.FormatUint(sinceVer, 10)
					delete(hdr, "If-None-Match")
				}
				resp, body := c.get(path, hdr)
				ver := respVersion(t, resp)
				if ver < lastVer {
					errs <- fmt.Errorf("reader %d: version went backwards %d → %d on %s", reader, lastVer, ver, ep)
					return
				}
				lastVer = ver
				if resp.StatusCode == http.StatusNotModified {
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: %s returned %d (%s)", reader, path, resp.StatusCode, body)
					return
				}
				etags[i%4] = resp.Header.Get("ETag")
				switch ep {
				case "spectrum":
					if strings.Contains(path, "since") {
						var d spectrumDeltaResponse
						if err := json.Unmarshal(body, &d); err != nil {
							errs <- err
							return
						}
						if d.Delta {
							if err := applyDelta(state, d.Added, d.Removed); err != nil {
								errs <- fmt.Errorf("reader %d since=%d→%d: %w", reader, d.Since, d.Version, err)
								return
							}
						} else {
							state = multiset(d.Spectrum)
						}
						sinceVer = d.Version
					} else {
						var spec []SpectrumPoint
						if err := json.Unmarshal(body, &spec); err != nil {
							errs <- err
							return
						}
						if err := recordModes(ver, len(spec)); err != nil {
							errs <- err
							return
						}
					}
				case "modes":
					var mp modesPayload
					if err := json.Unmarshal(body, &mp); err != nil {
						errs <- err
						return
					}
					if err := recordModes(ver, mp.Modes); err != nil {
						errs <- err
						return
					}
				case "stats":
					var st TenantStatus
					if err := json.Unmarshal(body, &st); err != nil {
						errs <- err
						return
					}
					if st.Version != ver {
						errs <- fmt.Errorf("reader %d: stats body version %d vs header %d", reader, st.Version, ver)
						return
					}
				}
			}
		}(reader)
	}

	// SSE subscriber: follow the stream, maintain the delta spectrum,
	// assert strictly increasing ids. Coalescing (drop-slowest) is fine —
	// the per-connection delta base makes skipped publishes transparent.
	var sseLast atomic.Uint64
	var sseMu sync.Mutex
	sseState := map[SpectrumPoint]int{}
	r, stopSSE := openSSE(t, c, base+"/events", nil)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for {
			ev, err := r.next()
			if err != nil {
				return // connection canceled at test end
			}
			if ev.id <= prev {
				errs <- fmt.Errorf("sse: non-increasing id %d after %d", ev.id, prev)
				return
			}
			sseMu.Lock()
			if ev.data.Reset {
				sseState = multiset(ev.data.Spectrum)
			} else if err := applyDelta(sseState, ev.data.Added, ev.data.Removed); err != nil {
				sseMu.Unlock()
				errs <- fmt.Errorf("sse delta %d→%d: %w", ev.data.Since, ev.id, err)
				return
			}
			sseMu.Unlock()
			prev = ev.id
			sseLast.Store(ev.id)
		}
	}()

	// Writer: stream the rest of the data over HTTP while readers hammer.
	var finalVer uint64
	for x := seed; x < total; x += step {
		body := c.must("POST", base+"/ingest", "application/json", jsonBody(t, data, x, x+step), http.StatusOK)
		var ing struct {
			Version uint64 `json:"version"`
		}
		if err := json.Unmarshal(body, &ing); err != nil {
			t.Fatal(err)
		}
		if ing.Version <= finalVer {
			t.Fatalf("ingest version not monotone: %d after %d", ing.Version, finalVer)
		}
		finalVer = ing.Version
	}

	// Wait for the SSE subscriber to converge on the final publish, then
	// stop everyone.
	waitUntil := time.Now().Add(5 * time.Second)
	for sseLast.Load() < finalVer && time.Now().Before(waitUntil) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	stopSSE()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Final convergence: the SSE-maintained spectrum must equal the last
	// published one exactly.
	if got := sseLast.Load(); got != finalVer {
		t.Fatalf("sse subscriber stalled at version %d, final is %d", got, finalVer)
	}
	resp, full := c.get(base+"/spectrum", nil)
	if respVersion(t, resp) != finalVer {
		t.Fatalf("final spectrum version %d want %d", respVersion(t, resp), finalVer)
	}
	var spec []SpectrumPoint
	if err := json.Unmarshal(full, &spec); err != nil {
		t.Fatal(err)
	}
	sseMu.Lock()
	defer sseMu.Unlock()
	if !multisetsEqual(sseState, multiset(spec)) {
		t.Fatal("sse delta-maintained spectrum diverged from the final published spectrum")
	}
}
