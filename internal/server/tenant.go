package server

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"imrdmd/internal/compute"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
	"imrdmd/internal/shard"
	"imrdmd/internal/stream"
)

// TenantOptions is the JSON configuration a tenant is created with — the
// per-tenant knobs of the analyzer (the PR-3/PR-4 Precision and Shards
// selections ride here) plus the seed width. Workers is deliberately
// absent: every tenant's kernels run on the server's one bounded engine,
// which is what keeps N tenants from spawning N worker pools.
type TenantOptions struct {
	DT             float64 `json:"dt,omitempty"`
	MaxLevels      int     `json:"max_levels,omitempty"`
	MaxCycles      int     `json:"max_cycles,omitempty"`
	NyquistFactor  int     `json:"nyquist_factor,omitempty"`
	Rank           int     `json:"rank,omitempty"`
	UseSVHT        bool    `json:"use_svht,omitempty"`
	MinWindow      int     `json:"min_window,omitempty"`
	Parallel       bool    `json:"parallel,omitempty"`
	BlockColumns   int     `json:"block_columns,omitempty"`
	Precision      string  `json:"precision,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	AsyncRecompute bool    `json:"async_recompute,omitempty"`
	// DriftWindow / AmplitudeWindow / ColdHorizon are the flat-horizon
	// knobs (PR 9): bounded drift measurement, bounded amplitude refit,
	// and f32 demotion of raw history older than the horizon.
	DriftWindow     int `json:"drift_window,omitempty"`
	AmplitudeWindow int `json:"amplitude_window,omitempty"`
	ColdHorizon     int `json:"cold_horizon,omitempty"`
	// InitialCols is how many columns seed InitialFit before streaming
	// begins (0 uses the server default). Must be at least 2.
	InitialCols int `json:"initial_cols,omitempty"`
}

// toCore maps the wire options onto the analyzer configuration, pinning
// the engine to the server's shared pool.
func (o TenantOptions) toCore(eng *compute.Engine) core.Options {
	return core.Options{
		DT:              o.DT,
		MaxLevels:       o.MaxLevels,
		MaxCycles:       o.MaxCycles,
		NyquistFactor:   o.NyquistFactor,
		Rank:            o.Rank,
		UseSVHT:         o.UseSVHT,
		MinWindow:       o.MinWindow,
		Parallel:        o.Parallel,
		BlockColumns:    o.BlockColumns,
		Precision:       o.Precision,
		Shards:          o.Shards,
		DriftWindow:     o.DriftWindow,
		AmplitudeWindow: o.AmplitudeWindow,
		ColdHorizon:     o.ColdHorizon,
		Engine:          eng,
	}
}

// latencyWindow bounds the per-tenant ingest latency reservoir the
// percentile stats are computed over (newest batches win).
const latencyWindow = 4096

// tenant is one registered stream: an analyzer, the push-based feeder
// that seeds it, and the ingest accounting its stats endpoint reports.
// Mutable state is guarded by mu — ingest and snapshot calls on the same
// tenant serialize, while different tenants proceed concurrently on the
// shared engine. The QUERY path never touches mu: every state-changing
// call ends by publishing an immutable PublishedResult through the
// atomic pub/history pointers, and readers load those.
type tenant struct {
	id      string
	created time.Time

	// seeded latches true when InitialFit has run (set at seed time,
	// never cleared) so pre-publish callers check seededness without the
	// tenant lock.
	seeded atomic.Bool
	// pub is the current copy-on-write read-side result; history the
	// immutable ring of recent results backing ?since deltas and SSE
	// resume. Writers swap whole values; readers only load.
	pub     atomic.Pointer[PublishedResult]
	history atomic.Pointer[[]*PublishedResult]
	hub     pubHub

	mu         sync.Mutex
	version    uint64 // publish counter; monotone under mu
	opts       TenantOptions
	inc        *core.Incremental
	feeder     *stream.Feeder
	ingests    int
	batches    int
	latencies  []time.Duration // ring of the last latencyWindow batch latencies
	latPos     int
	latScratch []time.Duration // reusable sort buffer for the quantiles
}

// newTenant validates opts (through the core Options.Validate path) and
// builds an unseeded tenant on the server's engine.
func newTenant(id string, opts TenantOptions, eng *compute.Engine, defaultInitialCols int) (*tenant, error) {
	if opts.InitialCols == 0 {
		opts.InitialCols = defaultInitialCols
	}
	copts := opts.toCore(eng)
	if err := copts.Validate(); err != nil {
		return nil, err
	}
	inc := core.NewIncremental(copts)
	inc.DriftThreshold = opts.DriftThreshold
	inc.AsyncRecompute = opts.AsyncRecompute
	feeder, err := stream.NewFeeder(inc, opts.InitialCols)
	if err != nil {
		return nil, err
	}
	t := &tenant{id: id, created: time.Now(), opts: opts, inc: inc, feeder: feeder}
	t.mu.Lock()
	t.publishLocked()
	t.mu.Unlock()
	return t, nil
}

// restoreTenant rebuilds a tenant from a snapshot stream, landing the
// decoded analyzer on the server's engine. The restored feeder starts
// seeded: snapshots only exist for fitted analyzers.
func restoreTenant(id string, r io.Reader, eng *compute.Engine) (*tenant, error) {
	inc, err := core.DecodeIncrementalWith(r, eng)
	if err != nil {
		return nil, err
	}
	copts := inc.Options()
	opts := TenantOptions{
		DT:              copts.DT,
		MaxLevels:       copts.MaxLevels,
		MaxCycles:       copts.MaxCycles,
		NyquistFactor:   copts.NyquistFactor,
		Rank:            copts.Rank,
		UseSVHT:         copts.UseSVHT,
		MinWindow:       copts.MinWindow,
		Parallel:        copts.Parallel,
		BlockColumns:    copts.BlockColumns,
		Precision:       copts.Precision,
		Shards:          copts.Shards,
		DriftWindow:     copts.DriftWindow,
		AmplitudeWindow: copts.AmplitudeWindow,
		ColdHorizon:     copts.ColdHorizon,
		DriftThreshold:  inc.DriftThreshold,
		AsyncRecompute:  inc.AsyncRecompute,
		InitialCols:     inc.Cols(),
	}
	t := &tenant{id: id, created: time.Now(), opts: opts, inc: inc, feeder: stream.ResumeFeeder(inc)}
	t.mu.Lock()
	t.publishLocked()
	t.mu.Unlock()
	return t, nil
}

// ingest pushes already-decoded batches through the feeder, recording
// per-batch latency. It returns how many columns and batches were
// absorbed — on error, the counts say how far the ingest got before the
// failing batch (everything before it is permanently absorbed). The
// final state — complete or partial — is published as the new read-side
// result before the lock is released, so queries observe every ingest
// exactly once and never a half-applied one.
func (t *tenant) ingest(batches []*mat.Dense) (cols, done int, pub *PublishedResult, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ingests++
	defer func() { pub = t.publishLocked() }()
	for _, b := range batches {
		start := time.Now()
		if perr := t.feeder.Push(b); perr != nil {
			return cols, done, nil, perr
		}
		t.recordLatency(time.Since(start))
		cols += b.C
		done++
		t.batches++
	}
	return cols, done, nil, nil
}

// publishLocked assembles the immutable read-side result from the
// current analyzer state and swaps it into the atomic pointer, the
// history ring, and every SSE subscriber's queue. Requires t.mu; it is
// the ONLY writer of the atomics, so results are stored in version
// order. The assembly is deliberately cheap — core.View walks the live
// tree once (no clones, grid-restricted error) and the four payloads
// marshal small structs — so publishing per ingest does not perturb the
// ingest latency the dashboards are watching.
func (t *tenant) publishLocked() *PublishedResult {
	t.version++
	seeded := t.feeder.Seeded()
	if seeded {
		t.seeded.Store(true)
	}
	pub := newPublishedResult(t.version, seeded, t.inc.View(), t.statusLocked())
	t.pub.Store(pub)
	old := t.history.Load()
	var hist []*PublishedResult
	if old != nil {
		tail := *old
		if len(tail) >= pubHistoryLen {
			tail = tail[len(tail)-pubHistoryLen+1:]
		}
		hist = make([]*PublishedResult, 0, len(tail)+1)
		hist = append(hist, tail...)
	}
	hist = append(hist, pub)
	t.history.Store(&hist)
	t.hub.broadcast(pub)
	return pub
}

// lookupPublished finds a still-retained published result by version
// (nil when it has aged out of the ring). Lock-free.
func (t *tenant) lookupPublished(version uint64) *PublishedResult {
	h := t.history.Load()
	if h == nil {
		return nil
	}
	for _, p := range *h {
		if p.Version == version {
			return p
		}
	}
	return nil
}

func (t *tenant) recordLatency(d time.Duration) {
	if len(t.latencies) < latencyWindow {
		t.latencies = append(t.latencies, d)
		return
	}
	t.latencies[t.latPos] = d
	t.latPos = (t.latPos + 1) % latencyWindow
}

// latencyQuantiles returns the p50 and p99 of the recorded batch
// latencies (zeros when nothing has been ingested). The sort runs on a
// scratch slice retained across calls — sized once to the ring cap — so
// computing the published quantiles allocates nothing under the tenant
// lock. (Before the publish layer this copied-and-sorted the whole ring
// on every /stats request; now it runs once per ingest.)
func (t *tenant) latencyQuantiles() (p50, p99 time.Duration) {
	n := len(t.latencies)
	if n == 0 {
		return 0, 0
	}
	if cap(t.latScratch) < n {
		t.latScratch = make([]time.Duration, latencyWindow)
	}
	s := t.latScratch[:n]
	copy(s, t.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return stream.Quantile(s, 0.50), stream.Quantile(s, 0.99)
}

// TenantStatus is the wire form of one tenant's state summary.
type TenantStatus struct {
	ID string `json:"id"`
	// Version is the published-result version this status was frozen at
	// — the value ?since and SSE Last-Event-ID speak.
	Version uint64  `json:"version"`
	Created string  `json:"created"`
	Seeded  bool    `json:"seeded"`
	Pending int     `json:"pending_columns"`
	Steps   int     `json:"steps"`
	Sensors int     `json:"sensors"`
	Updates int     `json:"updates"`
	Ingests int     `json:"ingests"`
	Batches int     `json:"batches"`
	P50Ms   float64 `json:"ingest_p50_ms"`
	P99Ms   float64 `json:"ingest_p99_ms"`
	// ResidentBytes is the tenant's resident raw-history footprint across
	// both storage tiers; RawColdCols counts the columns demoted to the
	// f32 cold tier (0 unless cold_horizon is set).
	ResidentBytes int64 `json:"resident_bytes"`
	RawColdCols   int   `json:"raw_cold_cols"`

	Options TenantOptions `json:"options"`
	// Shard carries the level-1 transport accounting when the tenant runs
	// sharded (Options.Shards > 1) — the stats whose concurrent read path
	// the coordinator guards.
	Shard *shard.Stats `json:"shard,omitempty"`
}

// statusLocked snapshots the tenant summary for publication. Requires
// t.mu (it reads the ingest accounting); query traffic reads the frozen
// copy inside the published result instead of calling this.
func (t *tenant) statusLocked() TenantStatus {
	p50, p99 := t.latencyQuantiles()
	st := TenantStatus{
		ID:      t.id,
		Version: t.version,
		Created: t.created.UTC().Format(time.RFC3339),
		Seeded:  t.feeder.Seeded(),
		Pending: t.feeder.Pending(),
		Steps:   t.inc.Cols(),
		Sensors: t.inc.Sensors(),
		Updates: t.inc.Updates(),
		Ingests: t.ingests,
		Batches: t.batches,
		P50Ms:   float64(p50) / float64(time.Millisecond),
		P99Ms:   float64(p99) / float64(time.Millisecond),
		Options: t.opts,
	}
	ms := t.inc.MemStats()
	st.ResidentBytes = ms.HotBytes + ms.ColdBytes
	st.RawColdCols = ms.ColdCols
	if ss, ok := t.inc.ShardStats(); ok {
		st.Shard = &ss
	}
	return st
}

// snapshot serializes the analyzer into a memory buffer and returns the
// bytes. Serializing under the lock but NEVER writing to a caller-paced
// sink while holding it keeps a slow snapshot downloader (or a stalled
// disk) from blocking the tenant's ingest path — the same
// lock-across-client-I/O rule the ingest side follows. Unseeded tenants
// have no incremental state to save — checked on the latched atomic
// flag, so the refusal does not touch the tenant lock.
func (t *tenant) snapshot() ([]byte, error) {
	if !t.seeded.Load() {
		return nil, errSnapshotUnseeded
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var buf bytes.Buffer
	if err := t.inc.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

var errSnapshotUnseeded = fmt.Errorf("tenant has not seeded yet; nothing to snapshot")
