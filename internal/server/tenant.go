package server

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"imrdmd/internal/compute"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
	"imrdmd/internal/shard"
	"imrdmd/internal/stream"
)

// TenantOptions is the JSON configuration a tenant is created with — the
// per-tenant knobs of the analyzer (the PR-3/PR-4 Precision and Shards
// selections ride here) plus the seed width. Workers is deliberately
// absent: every tenant's kernels run on the server's one bounded engine,
// which is what keeps N tenants from spawning N worker pools.
type TenantOptions struct {
	DT             float64 `json:"dt,omitempty"`
	MaxLevels      int     `json:"max_levels,omitempty"`
	MaxCycles      int     `json:"max_cycles,omitempty"`
	NyquistFactor  int     `json:"nyquist_factor,omitempty"`
	Rank           int     `json:"rank,omitempty"`
	UseSVHT        bool    `json:"use_svht,omitempty"`
	MinWindow      int     `json:"min_window,omitempty"`
	Parallel       bool    `json:"parallel,omitempty"`
	BlockColumns   int     `json:"block_columns,omitempty"`
	Precision      string  `json:"precision,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	AsyncRecompute bool    `json:"async_recompute,omitempty"`
	// InitialCols is how many columns seed InitialFit before streaming
	// begins (0 uses the server default). Must be at least 2.
	InitialCols int `json:"initial_cols,omitempty"`
}

// toCore maps the wire options onto the analyzer configuration, pinning
// the engine to the server's shared pool.
func (o TenantOptions) toCore(eng *compute.Engine) core.Options {
	return core.Options{
		DT:            o.DT,
		MaxLevels:     o.MaxLevels,
		MaxCycles:     o.MaxCycles,
		NyquistFactor: o.NyquistFactor,
		Rank:          o.Rank,
		UseSVHT:       o.UseSVHT,
		MinWindow:     o.MinWindow,
		Parallel:      o.Parallel,
		BlockColumns:  o.BlockColumns,
		Precision:     o.Precision,
		Shards:        o.Shards,
		Engine:        eng,
	}
}

// latencyWindow bounds the per-tenant ingest latency reservoir the
// percentile stats are computed over (newest batches win).
const latencyWindow = 4096

// tenant is one registered stream: an analyzer, the push-based feeder
// that seeds it, and the ingest accounting its stats endpoint reports.
// All state is guarded by mu — ingest, query and snapshot calls on the
// same tenant serialize, while different tenants proceed concurrently on
// the shared engine.
type tenant struct {
	id      string
	created time.Time

	mu        sync.Mutex
	opts      TenantOptions
	inc       *core.Incremental
	feeder    *stream.Feeder
	ingests   int
	batches   int
	latencies []time.Duration // ring of the last latencyWindow batch latencies
	latPos    int
}

// newTenant validates opts (through the core Options.Validate path) and
// builds an unseeded tenant on the server's engine.
func newTenant(id string, opts TenantOptions, eng *compute.Engine, defaultInitialCols int) (*tenant, error) {
	if opts.InitialCols == 0 {
		opts.InitialCols = defaultInitialCols
	}
	copts := opts.toCore(eng)
	if err := copts.Validate(); err != nil {
		return nil, err
	}
	inc := core.NewIncremental(copts)
	inc.DriftThreshold = opts.DriftThreshold
	inc.AsyncRecompute = opts.AsyncRecompute
	feeder, err := stream.NewFeeder(inc, opts.InitialCols)
	if err != nil {
		return nil, err
	}
	return &tenant{id: id, created: time.Now(), opts: opts, inc: inc, feeder: feeder}, nil
}

// restoreTenant rebuilds a tenant from a snapshot stream, landing the
// decoded analyzer on the server's engine. The restored feeder starts
// seeded: snapshots only exist for fitted analyzers.
func restoreTenant(id string, r io.Reader, eng *compute.Engine) (*tenant, error) {
	inc, err := core.DecodeIncrementalWith(r, eng)
	if err != nil {
		return nil, err
	}
	copts := inc.Options()
	opts := TenantOptions{
		DT:             copts.DT,
		MaxLevels:      copts.MaxLevels,
		MaxCycles:      copts.MaxCycles,
		NyquistFactor:  copts.NyquistFactor,
		Rank:           copts.Rank,
		UseSVHT:        copts.UseSVHT,
		MinWindow:      copts.MinWindow,
		Parallel:       copts.Parallel,
		BlockColumns:   copts.BlockColumns,
		Precision:      copts.Precision,
		Shards:         copts.Shards,
		DriftThreshold: inc.DriftThreshold,
		AsyncRecompute: inc.AsyncRecompute,
		InitialCols:    inc.Cols(),
	}
	return &tenant{id: id, created: time.Now(), opts: opts, inc: inc, feeder: stream.ResumeFeeder(inc)}, nil
}

// ingest pushes already-decoded batches through the feeder, recording
// per-batch latency. It returns how many columns and batches were
// absorbed — on error, the counts say how far the ingest got before the
// failing batch (everything before it is permanently absorbed).
func (t *tenant) ingest(batches []*mat.Dense) (cols, done int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ingests++
	for _, b := range batches {
		start := time.Now()
		if err := t.feeder.Push(b); err != nil {
			return cols, done, err
		}
		t.recordLatency(time.Since(start))
		cols += b.C
		done++
		t.batches++
	}
	return cols, done, nil
}

func (t *tenant) recordLatency(d time.Duration) {
	if len(t.latencies) < latencyWindow {
		t.latencies = append(t.latencies, d)
		return
	}
	t.latencies[t.latPos] = d
	t.latPos = (t.latPos + 1) % latencyWindow
}

// latencyQuantiles returns the p50 and p99 of the recorded batch
// latencies (zeros when nothing has been ingested).
func (t *tenant) latencyQuantiles() (p50, p99 time.Duration) {
	if len(t.latencies) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), t.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return stream.Quantile(s, 0.50), stream.Quantile(s, 0.99)
}

// TenantStatus is the wire form of one tenant's state summary.
type TenantStatus struct {
	ID      string  `json:"id"`
	Created string  `json:"created"`
	Seeded  bool    `json:"seeded"`
	Pending int     `json:"pending_columns"`
	Steps   int     `json:"steps"`
	Sensors int     `json:"sensors"`
	Updates int     `json:"updates"`
	Ingests int     `json:"ingests"`
	Batches int     `json:"batches"`
	P50Ms   float64 `json:"ingest_p50_ms"`
	P99Ms   float64 `json:"ingest_p99_ms"`

	Options TenantOptions `json:"options"`
	// Shard carries the level-1 transport accounting when the tenant runs
	// sharded (Options.Shards > 1) — the stats whose concurrent read path
	// the coordinator guards.
	Shard *shard.Stats `json:"shard,omitempty"`
}

// status snapshots the tenant summary. Safe to call concurrently with
// ingest on other tenants; serializes with this tenant's own ingest.
func (t *tenant) status() TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	p50, p99 := t.latencyQuantiles()
	st := TenantStatus{
		ID:      t.id,
		Created: t.created.UTC().Format(time.RFC3339),
		Seeded:  t.feeder.Seeded(),
		Pending: t.feeder.Pending(),
		Steps:   t.inc.Cols(),
		Sensors: t.inc.Sensors(),
		Updates: t.inc.Updates(),
		Ingests: t.ingests,
		Batches: t.batches,
		P50Ms:   float64(p50) / float64(time.Millisecond),
		P99Ms:   float64(p99) / float64(time.Millisecond),
		Options: t.opts,
	}
	if ss, ok := t.inc.ShardStats(); ok {
		st.Shard = &ss
	}
	return st
}

// snapshot serializes the analyzer into a memory buffer and returns the
// bytes. Serializing under the lock but NEVER writing to a caller-paced
// sink while holding it keeps a slow snapshot downloader (or a stalled
// disk) from blocking the tenant's ingest path — the same
// lock-across-client-I/O rule the ingest side follows. Unseeded tenants
// have no incremental state to save.
func (t *tenant) snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.feeder.Seeded() {
		return nil, errSnapshotUnseeded
	}
	var buf bytes.Buffer
	if err := t.inc.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

var errSnapshotUnseeded = fmt.Errorf("tenant has not seeded yet; nothing to snapshot")
