package server

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"imrdmd/internal/core"
)

// TestPublishRendersLazily pins the lockio fix: newPublishedResult runs
// with the tenant mutex held, so it must not marshal anything — every
// response body renders on first read, outside the critical section.
func TestPublishRendersLazily(t *testing.T) {
	view := core.View{NumModes: 3, MaxLevel: 2, Nodes: 5, Steps: 400, GridCols: 40, LastDrift: 0.25, GridError: 1.5}
	st := TenantStatus{Updates: 7}
	pub := newPublishedResult(9, true, view, st)

	if pub.modesJSON != nil || pub.errorJSON != nil || pub.statusJSON != nil || pub.spectrumJSON != nil {
		t.Fatal("newPublishedResult pre-rendered a body; publish runs under the tenant mutex and must stay marshal-free")
	}

	modes, modesTag := pub.ModesBody()
	var mp modesPayload
	if err := json.Unmarshal(modes, &mp); err != nil {
		t.Fatalf("modes body: %v", err)
	}
	if mp != (modesPayload{Modes: 3, Levels: 2, Nodes: 5, Steps: 400}) {
		t.Fatalf("modes body %+v does not reflect the frozen view", mp)
	}
	errBody, errTag := pub.ErrorBody()
	var ep errorPayload
	if err := json.Unmarshal(errBody, &ep); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if ep != (errorPayload{ReconError: 1.5, Steps: 400, GridCols: 40, Drift: 0.25}) {
		t.Fatalf("error body %+v does not reflect the frozen view", ep)
	}
	status, statusTag := pub.StatusBody()
	var sp TenantStatus
	if err := json.Unmarshal(status, &sp); err != nil {
		t.Fatalf("status body: %v", err)
	}
	if sp.Updates != 7 {
		t.Fatalf("status body %+v does not reflect the frozen status", sp)
	}

	for _, tag := range []string{modesTag, errTag, statusTag} {
		if len(tag) < 4 || tag[0] != '"' || tag[len(tag)-1] != '"' {
			t.Fatalf("ETag %q is not a quoted strong tag", tag)
		}
	}

	// Frozen bytes: every subsequent read sees the identical slice.
	again, againTag := pub.ModesBody()
	if &again[0] != &modes[0] || againTag != modesTag {
		t.Fatal("ModesBody re-rendered; bodies must freeze after the first read")
	}
}

// TestPublishBodyConcurrentReaders drives the lazy render from many
// goroutines; the race detector (CI runs this package with -race) makes
// any once-less mutation visible.
func TestPublishBodyConcurrentReaders(t *testing.T) {
	view := core.View{NumModes: 2, MaxLevel: 1, Nodes: 1, Steps: 10}
	pub := newPublishedResult(1, true, view, TenantStatus{})
	var wg sync.WaitGroup
	bodies := make([][]byte, 16)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := pub.ModesBody()
			eb, _ := pub.ErrorBody()
			sb, _ := pub.StatusBody()
			bodies[i] = append(append(append([]byte(nil), body...), eb...), sb...)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("reader %d saw different frozen bytes", i)
		}
	}
}
