// Copy-on-write read path: after every absorbed ingest the tenant
// assembles one immutable PublishedResult — spectrum, counts, error,
// status, marshaled to JSON with strong ETags (small payloads at
// publish time, the large spectrum body once on first read) — and swaps
// it in through an atomic pointer. Query handlers load the pointer and
// write the frozen bytes: no tenant lock, no per-request marshaling, no
// allocation of result data. The single writer (ingest, serialized by
// the tenant mutex) is the only goroutine that builds results, so reads
// scale with cores while the expensive update path stays unperturbed.
//
// A short history ring of recent results (also behind an atomic pointer
// to an immutable slice) backs the `?since=<version>` delta form and the
// SSE resume path: a dashboard that already holds version v fetches only
// the spectrum points added/removed since v, or a full resync when v has
// aged out of the ring.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"

	"imrdmd/internal/core"
)

// pubHistoryLen bounds the retained published results per tenant. Deltas
// are only computable against versions still in the ring; older clients
// get a full resync. 16 covers a dashboard that polls at least once per
// 16 ingests — beyond that the full spectrum is cheaper than the
// accumulated delta anyway.
const pubHistoryLen = 16

// PublishedResult is one immutable read-side view of a tenant. Every
// field is frozen at publish time; handlers and SSE subscribers share
// instances freely across goroutines without synchronization.
type PublishedResult struct {
	// Version increases by one per publish (one publish per ingest
	// request, plus the creation/restore publish). Monotone per tenant.
	Version uint64
	// Seeded reports whether the analyzer has run InitialFit — the
	// pre-publish query gate, frozen into the result.
	Seeded bool

	// Spectrum is the published mode set, retained un-marshaled for
	// delta computation (?since and SSE events diff two results).
	Spectrum []SpectrumPoint
	// Status is the stats summary frozen at publish time.
	Status TenantStatus
	// Drift and ReconError mirror the analyzer view: the most recent
	// PartialFit drift and the grid-restricted reconstruction error.
	Drift      float64
	ReconError float64
	GridCols   int
	Modes      int
	Levels     int
	Nodes      int
	Steps      int

	// Response bodies and their strong ETags (quoted FNV-64a of the
	// body) are rendered lazily, once per published version, by the
	// first reader that needs each one. Ingest publishes a result per
	// absorbed request whether or not anyone is watching; rendering on
	// first read keeps every marshal off the ingest latency tail (the
	// tenant mutex is held across publish — see the lockio analyzer) and
	// skips it entirely for versions that age out of the ring unread.
	// sync.Once gives the same frozen-bytes guarantee handlers rely on.
	// The spectrum body is by far the largest payload (~70 KB at bench
	// scale); modes/error/status are small but ride the same path so the
	// critical section stays marshal-free.
	modesOnce  sync.Once
	modesJSON  []byte
	modesETag  string
	errorOnce  sync.Once
	errorJSON  []byte
	errorETag  string
	statusOnce sync.Once
	statusJSON []byte
	statusETag string

	spectrumOnce sync.Once
	spectrumJSON []byte
	spectrumETag string
}

// ModesBody returns the frozen GET /modes response body and its strong
// ETag, rendering them on first call. Safe for concurrent use.
func (p *PublishedResult) ModesBody() (body []byte, etag string) {
	p.modesOnce.Do(func() {
		p.modesJSON = mustJSON(modesPayload{Modes: p.Modes, Levels: p.Levels, Nodes: p.Nodes, Steps: p.Steps})
		p.modesETag = strongETag(p.modesJSON)
	})
	return p.modesJSON, p.modesETag
}

// ErrorBody returns the frozen GET /error response body and its strong
// ETag, rendering them on first call. Safe for concurrent use.
func (p *PublishedResult) ErrorBody() (body []byte, etag string) {
	p.errorOnce.Do(func() {
		p.errorJSON = mustJSON(errorPayload{ReconError: p.ReconError, Steps: p.Steps, GridCols: p.GridCols, Drift: p.Drift})
		p.errorETag = strongETag(p.errorJSON)
	})
	return p.errorJSON, p.errorETag
}

// StatusBody returns the frozen GET /status response body and its
// strong ETag, rendering them on first call. Safe for concurrent use.
func (p *PublishedResult) StatusBody() (body []byte, etag string) {
	p.statusOnce.Do(func() {
		p.statusJSON = mustJSON(p.Status)
		p.statusETag = strongETag(p.statusJSON)
	})
	return p.statusJSON, p.statusETag
}

// SpectrumBody returns the frozen spectrum response body and its strong
// ETag, rendering them on first call. Safe for concurrent use.
func (p *PublishedResult) SpectrumBody() (body []byte, etag string) {
	p.spectrumOnce.Do(func() {
		p.spectrumJSON = appendSpectrumJSON(make([]byte, 0, 2+72*len(p.Spectrum)), p.Spectrum)
		p.spectrumETag = strongETag(p.spectrumJSON)
	})
	return p.spectrumJSON, p.spectrumETag
}

// modesPayload is the wire form of GET /modes.
type modesPayload struct {
	Modes  int `json:"modes"`
	Levels int `json:"levels"`
	Nodes  int `json:"nodes"`
	Steps  int `json:"steps"`
}

// errorPayload is the wire form of GET /error. ReconError is measured on
// the level-1 sample grid (every stride-th absorbed column, GridCols of
// them) — exact on the grid and O(grid) to publish, where the previous
// on-demand full-resolution error was O(all absorbed data) per request
// while holding the tenant lock.
type errorPayload struct {
	ReconError float64 `json:"recon_error"`
	Steps      int     `json:"steps"`
	GridCols   int     `json:"grid_cols"`
	Drift      float64 `json:"drift"`
}

// strongETag renders the quoted FNV-64a hash of a payload. Content-keyed
// (not version-keyed) on purpose: a publish that leaves a body unchanged
// (pre-seed ingests, a stats-only change while the spectrum holds still)
// keeps its ETag, so pollers keep getting 304s.
func strongETag(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// mustJSON marshals a value that cannot fail (structs of numbers and
// strings); a failure is a programming error worth crashing loudly for.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: publish marshal: %v", err))
	}
	return b
}

// appendSpectrumJSON renders the spectrum array directly with
// strconv.AppendFloat instead of encoding/json's reflective encoder —
// hundreds of points, five numbers each, rebuilt once per published
// version. Shortest-roundtrip formatting, so the bytes parse back to
// the identical float64s.
func appendSpectrumJSON(buf []byte, pts []SpectrumPoint) []byte {
	if len(pts) == 0 {
		return append(buf, '[', ']')
	}
	for i, p := range pts {
		if i == 0 {
			buf = append(buf, '[')
		} else {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"freq":`...)
		buf = appendJSONFloat(buf, p.Freq)
		buf = append(buf, `,"power":`...)
		buf = appendJSONFloat(buf, p.Power)
		buf = append(buf, `,"amp":`...)
		buf = appendJSONFloat(buf, p.Amp)
		buf = append(buf, `,"grow":`...)
		buf = appendJSONFloat(buf, p.Grow)
		buf = append(buf, `,"level":`...)
		buf = strconv.AppendInt(buf, int64(p.Level), 10)
		buf = append(buf, '}')
	}
	return append(buf, ']')
}

func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// encoding/json would error here; match mustJSON's posture.
		panic(fmt.Sprintf("server: publish marshal: non-finite spectrum value %v", f))
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

// newPublishedResult freezes a view + status pair into the immutable
// wire-ready form.
func newPublishedResult(version uint64, seeded bool, view core.View, st TenantStatus) *PublishedResult {
	spectrum := make([]SpectrumPoint, len(view.Spectrum))
	for i, p := range view.Spectrum {
		spectrum[i] = SpectrumPoint{Freq: p.Freq, Power: p.Power, Amp: p.Amp, Grow: p.Grow, Level: p.Level}
	}
	return &PublishedResult{
		Version:    version,
		Seeded:     seeded,
		Spectrum:   spectrum,
		Status:     st,
		Drift:      view.LastDrift,
		ReconError: view.GridError,
		GridCols:   view.GridCols,
		Modes:      view.NumModes,
		Levels:     view.MaxLevel,
		Nodes:      view.Nodes,
		Steps:      view.Steps,
	}
}

// spectrumDelta computes the multiset difference between two published
// spectra: added holds points in cur but not old, removed the reverse,
// both preserving publication order. Applying (old − removed + added)
// reproduces cur exactly — the contract the delta consumers (and the
// read-path tests) rely on. SpectrumPoint is a comparable value type, so
// equality is exact bitwise float comparison: a mode that moved at all
// appears as one removal plus one addition.
func spectrumDelta(old, cur []SpectrumPoint) (added, removed []SpectrumPoint) {
	counts := make(map[SpectrumPoint]int, len(old))
	for _, p := range old {
		counts[p]++
	}
	for _, p := range cur {
		if counts[p] > 0 {
			counts[p]--
		} else {
			added = append(added, p)
		}
	}
	for _, p := range old {
		if counts[p] > 0 {
			counts[p]--
			removed = append(removed, p)
		}
	}
	return added, removed
}

// spectrumDeltaResponse is the wire form of GET /spectrum?since=v. When
// Delta is true, Added/Removed transform the client's version-Since
// spectrum into version-Version; when false the Since version was not
// available for diffing (aged out of the ring, or the client is ahead of
// the server after a restore) and Spectrum carries the full resync.
type spectrumDeltaResponse struct {
	Version  uint64          `json:"version"`
	Since    uint64          `json:"since"`
	Delta    bool            `json:"delta"`
	Added    []SpectrumPoint `json:"added,omitempty"`
	Removed  []SpectrumPoint `json:"removed,omitempty"`
	Spectrum []SpectrumPoint `json:"spectrum,omitempty"`
}
