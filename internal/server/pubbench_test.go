package server

import (
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/mat"
)

func BenchmarkPublishLocked(b *testing.B) {
	data := bench.SCLogData(200, 4000, 1)
	t, err := newTenant("b", TenantOptions{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true, BlockColumns: 8, InitialCols: 2000}, nil, 256)
	if err != nil {
		b.Fatal(err)
	}
	var batches []*mat.Dense
	batches = append(batches, data.ColSlice(0, 2000))
	for c := 2000; c < 4000; c += 40 {
		batches = append(batches, data.ColSlice(c, c+40))
	}
	if _, _, _, err := t.ingest(batches); err != nil {
		b.Fatal(err)
	}
	b.Run("view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = t.inc.View()
		}
	})
	t.mu.Lock()
	view := t.inc.View()
	st := t.statusLocked()
	t.mu.Unlock()
	b.Run("freeze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = newPublishedResult(1, true, view, st)
		}
	})
	// freeze plus the lazy spectrum render a first reader triggers; the
	// difference against "freeze" is the marshal kept off the ingest tail.
	b.Run("freeze+render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pub := newPublishedResult(1, true, view, st)
			_, _ = pub.SpectrumBody()
		}
	})
	b.Run("full", func(b *testing.B) {
		t.mu.Lock()
		for i := 0; i < b.N; i++ {
			_ = t.publishLocked()
		}
		t.mu.Unlock()
	})
}
