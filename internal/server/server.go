// Package server is the streaming ingestion service around the I-mrDMD
// analyzer: a long-running HTTP server holding a registry of per-tenant
// incremental analyzers that many dashboards stream against concurrently.
// Each tenant picks its own analysis options — including the Precision
// and Shards fidelity knobs — while every tenant's kernels run on one
// bounded compute engine, so the process's concurrency is Workers-shaped
// no matter how many tenants register. Chunked CSV/JSON ingest feeds the
// stream plumbing (stream.Source → stream.Feeder), and the snapshot
// endpoints expose the internal/codec state serialization that lets a
// tenant survive process restarts or migrate between servers. See
// DESIGN.md §8 for the architecture and §9 for the read path.
//
// The query surface is lock-free: each ingest publishes an immutable
// PublishedResult (pre-marshaled JSON + strong ETags) through an atomic
// pointer, and the GET handlers below serve those frozen bytes without
// touching the tenant mutex. All published responses carry `ETag` and
// `X-Imrdmd-Version` headers and honor `If-None-Match` with 304;
// /spectrum additionally accepts `?since=<version>` for delta responses,
// and /events pushes every publish over SSE.
//
// Routes (all tenant state lives under /v1/tenants/{id}):
//
//	GET    /healthz                   liveness + tenant count
//	GET    /v1/tenants                tenant summaries
//	POST   /v1/tenants/{id}           create (JSON TenantOptions body; empty = defaults)
//	PUT    /v1/tenants/{id}           restore from a binary snapshot body
//	DELETE /v1/tenants/{id}           drop the tenant
//	POST   /v1/tenants/{id}/ingest    CSV (text/csv) or JSON batches (application/json)
//	GET    /v1/tenants/{id}/stats     TenantStatus (incl. shard transport stats)
//	GET    /v1/tenants/{id}/modes     retained mode/level counts
//	GET    /v1/tenants/{id}/spectrum  per-mode spectrum points (?since=<version> for deltas)
//	GET    /v1/tenants/{id}/error     grid reconstruction error + drift
//	GET    /v1/tenants/{id}/events    SSE stream, one event per publish
//	GET    /v1/tenants/{id}/snapshot  binary analyzer snapshot
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
	"imrdmd/internal/stream"
)

// Config sizes a Server.
type Config struct {
	// Workers bounds the shared compute engine every tenant's kernels run
	// on (0 = GOMAXPROCS). This is the process's total kernel concurrency:
	// tenants contend for these lanes rather than multiplying them.
	Workers int
	// MaxTenants caps the registry; 0 means unlimited.
	MaxTenants int
	// DefaultInitialCols seeds tenants whose options leave InitialCols
	// unset; 0 defaults to 256.
	DefaultInitialCols int
}

// Server is the tenant registry plus its HTTP surface.
type Server struct {
	cfg Config
	eng *compute.Engine

	mu      sync.RWMutex
	tenants map[string]*tenant
}

// New builds a server with its shared engine.
func New(cfg Config) *Server {
	if cfg.DefaultInitialCols == 0 {
		cfg.DefaultInitialCols = 256
	}
	return &Server{
		cfg:     cfg,
		eng:     compute.Shared(cfg.Workers),
		tenants: make(map[string]*tenant),
	}
}

// Handler returns the HTTP routing surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/tenants", s.handleList)
	mux.HandleFunc("POST /v1/tenants/{id}", s.handleCreate)
	mux.HandleFunc("PUT /v1/tenants/{id}", s.handleRestore)
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/tenants/{id}/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/tenants/{id}/modes", s.handleModes)
	mux.HandleFunc("GET /v1/tenants/{id}/spectrum", s.handleSpectrum)
	mux.HandleFunc("GET /v1/tenants/{id}/error", s.handleError)
	mux.HandleFunc("GET /v1/tenants/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", s.handleSnapshot)
	return mux
}

// Close ends every tenant's SSE stream so in-flight /events handlers
// return and http.Server.Shutdown can complete. The tenants themselves
// stay registered and queryable; Close only severs push subscribers.
func (s *Server) Close() {
	s.mu.RLock()
	list := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		list = append(list, t)
	}
	s.mu.RUnlock()
	for _, t := range list {
		t.hub.close()
	}
}

// httpError is a handler failure with its status code.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }

func fail(code int, err error) *httpError { return &httpError{code: code, err: err} }

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// versionHeader carries the published-result version on every read-path
// response — the value a client hands back via ?since or Last-Event-ID.
const versionHeader = "X-Imrdmd-Version"

// etagMatch reports whether an If-None-Match header matches a strong
// ETag: `*` matches anything, otherwise any listed tag equal to ours
// (weak-validator prefixes stripped; our comparisons are byte-exact
// bodies, so W/ forms of our own tags still match).
func etagMatch(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

// servePublished writes one pre-marshaled published body: sets ETag and
// version headers, answers If-None-Match with 304, otherwise streams the
// frozen bytes. No locks, no allocation of response data.
func servePublished(w http.ResponseWriter, r *http.Request, version uint64, etag string, body []byte) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set(versionHeader, strconv.FormatUint(version, 10))
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// tenantID validates the {id} path segment. Ids become file names under
// -state-dir (<id>.imrdmd), so the charset is restricted to names that
// cannot traverse or escape it: letters, digits, '.', '_' and '-', no
// separator characters (ServeMux unescapes %2F into the path value) and
// no dot-only segments.
func tenantID(r *http.Request) (string, error) {
	id := r.PathValue("id")
	if !validTenantID(id) {
		return "", fail(http.StatusBadRequest, fmt.Errorf("invalid tenant id %q (want 1-128 chars of [A-Za-z0-9._-], not dots only)", id))
	}
	return id, nil
}

func validTenantID(id string) bool {
	if id == "" || len(id) > 128 || strings.Trim(id, ".") == "" {
		return false
	}
	for _, c := range []byte(id) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// lookup fetches a registered tenant.
func (s *Server) lookup(id string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	if !ok {
		return nil, fail(http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
	}
	return t, nil
}

// register inserts a tenant, enforcing uniqueness and the registry cap.
func (s *Server) register(t *tenant) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[t.id]; ok {
		return fail(http.StatusConflict, fmt.Errorf("tenant %q already exists", t.id))
	}
	if s.cfg.MaxTenants > 0 && len(s.tenants) >= s.cfg.MaxTenants {
		return fail(http.StatusTooManyRequests, fmt.Errorf("tenant limit %d reached", s.cfg.MaxTenants))
	}
	s.tenants[t.id] = t
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": n, "workers": s.eng.Workers()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	list := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		list = append(list, t)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	out := make([]TenantStatus, len(list))
	for i, t := range list {
		out[i] = t.pub.Load().Status
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	id, err := tenantID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var opts TenantOptions
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, fail(http.StatusBadRequest, fmt.Errorf("invalid options body: %w", err)))
		return
	}
	t, err := newTenant(id, opts, s.eng, s.cfg.DefaultInitialCols)
	if err != nil {
		writeErr(w, fail(http.StatusBadRequest, err))
		return
	}
	if err := s.register(t); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.pub.Load().Status)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	id, err := tenantID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	t, err := restoreTenant(id, r.Body, s.eng)
	if err != nil {
		writeErr(w, fail(http.StatusBadRequest, fmt.Errorf("restore: %w", err)))
		return
	}
	if err := s.register(t); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.pub.Load().Status)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := tenantID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	t, ok := s.tenants[id]
	delete(s.tenants, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, fail(http.StatusNotFound, fmt.Errorf("unknown tenant %q", id)))
		return
	}
	t.hub.close() // end the tenant's SSE streams
	w.WriteHeader(http.StatusNoContent)
}

// bodySource adapts the request body to a stream.Source by content type:
// JSON bodies stream batch objects directly; CSV bodies parse to one
// matrix fed as a single batch.
func bodySource(r *http.Request) (stream.Source, error) {
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.Contains(ct, "json"):
		return stream.FromJSON(r.Body)
	case ct == "" || strings.Contains(ct, "csv") || strings.Contains(ct, "text/plain"):
		m, err := stream.ReadCSV(r.Body)
		if err != nil {
			return nil, err
		}
		if m.C == 0 {
			return nil, errors.New("ingest body holds no columns")
		}
		return stream.FromMatrix(m, m.C), nil
	default:
		return nil, fmt.Errorf("unsupported Content-Type %q (want text/csv or application/json)", ct)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id, err := tenantID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	t, err := s.lookup(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Decode the whole body into batches BEFORE touching tenant state:
	// malformed input (ragged rows, non-finite values, bad syntax) fails
	// here with nothing absorbed, and a slow client trickling its body
	// cannot sit on the tenant lock starving stats/snapshot/shutdown.
	src, err := bodySource(r)
	if err != nil {
		writeErr(w, fail(http.StatusBadRequest, err))
		return
	}
	var batches []*mat.Dense
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	if err := stream.SourceErr(src); err != nil {
		writeErr(w, fail(http.StatusBadRequest, err))
		return
	}
	cols, done, pub, err := t.ingest(batches)
	if err != nil {
		// An analyzer rejection mid-stream (e.g. a batch whose row count
		// disagrees with the fitted sensor dimension) is a client error,
		// but the earlier batches of this request ARE absorbed — report
		// how far the ingest got so the client retries only the remainder
		// instead of double-ingesting.
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":            err.Error(),
			"columns_absorbed": cols,
			"batches_absorbed": done,
		})
		return
	}
	// The response reads the result THIS ingest published — no second
	// lock acquisition, and concurrent ingests can't skew the counts.
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": cols,
		"batches": done,
		"seeded":  pub.Seeded,
		"pending": pub.Status.Pending,
		"steps":   pub.Status.Steps,
		"version": pub.Version,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, err := s.lookupReq(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	pub := t.pub.Load()
	body, etag := pub.StatusBody()
	servePublished(w, r, pub.Version, etag, body)
}

// seededPublished resolves the request tenant's current published result
// and requires a seeded one — the query endpoints have nothing to report
// before the seed. Entirely lock-free: tenant lookup is the registry
// RWMutex (not the tenant), and the seeded gate is the frozen flag in
// the published result itself.
func (s *Server) seededPublished(r *http.Request) (*tenant, *PublishedResult, error) {
	t, err := s.lookupReq(r)
	if err != nil {
		return nil, nil, err
	}
	pub := t.pub.Load()
	if !pub.Seeded {
		return nil, nil, fail(http.StatusConflict, fmt.Errorf("tenant %q has not seeded yet (%s)", t.id, "POST more columns first"))
	}
	return t, pub, nil
}

func (s *Server) lookupReq(r *http.Request) (*tenant, error) {
	id, err := tenantID(r)
	if err != nil {
		return nil, err
	}
	return s.lookup(id)
}

func (s *Server) handleModes(w http.ResponseWriter, r *http.Request) {
	_, pub, err := s.seededPublished(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	body, etag := pub.ModesBody()
	servePublished(w, r, pub.Version, etag, body)
}

// SpectrumPoint is the wire form of one retained mode. A comparable
// value type on purpose: spectrum deltas are multiset differences over
// these values.
type SpectrumPoint struct {
	Freq  float64 `json:"freq"`
	Power float64 `json:"power"`
	Amp   float64 `json:"amp"`
	Grow  float64 `json:"grow"`
	Level int     `json:"level"`
}

func (s *Server) handleSpectrum(w http.ResponseWriter, r *http.Request) {
	t, pub, err := s.seededPublished(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
		since, perr := strconv.ParseUint(sinceStr, 10, 64)
		if perr != nil {
			writeErr(w, fail(http.StatusBadRequest, fmt.Errorf("invalid since=%q: %v", sinceStr, perr)))
			return
		}
		s.serveSpectrumDelta(w, r, t, pub, since)
		return
	}
	body, etag := pub.SpectrumBody()
	servePublished(w, r, pub.Version, etag, body)
}

// serveSpectrumDelta answers GET /spectrum?since=v: 304 when v is the
// current version, an added/removed delta when v is still in the history
// ring, and a full-spectrum resync otherwise. The delta body depends on
// the client's v, so it is marshaled per request — but it is typically a
// handful of points, and the common no-change case is a bodyless 304.
func (s *Server) serveSpectrumDelta(w http.ResponseWriter, r *http.Request, t *tenant, pub *PublishedResult, since uint64) {
	w.Header().Set(versionHeader, strconv.FormatUint(pub.Version, 10))
	if since == pub.Version {
		_, etag := pub.SpectrumBody()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp := spectrumDeltaResponse{Version: pub.Version, Since: since}
	if old := t.lookupPublished(since); old != nil && since < pub.Version {
		resp.Delta = true
		resp.Added, resp.Removed = spectrumDelta(old.Spectrum, pub.Spectrum)
	} else {
		// Aged out of the ring (or a bogus future version): full resync.
		resp.Spectrum = pub.Spectrum
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleError(w http.ResponseWriter, r *http.Request) {
	_, pub, err := s.seededPublished(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	body, etag := pub.ErrorBody()
	servePublished(w, r, pub.Version, etag, body)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, err := s.lookupReq(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, err := t.snapshot()
	if err != nil {
		if errors.Is(err, errSnapshotUnseeded) {
			writeErr(w, fail(http.StatusConflict, err))
			return
		}
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", t.id+snapshotExt))
	w.Write(snap)
}

// snapshotExt names on-disk snapshot files.
const snapshotExt = ".imrdmd"

// SnapshotAll writes every seeded tenant's snapshot into dir as
// <id>.imrdmd — the graceful-shutdown path of cmd/imrdmd-serve. Unseeded
// tenants are skipped (they have no incremental state). Each file is
// written to a temp name and renamed into place only when complete, so
// an interrupted shutdown (crash, disk full, kill mid-write) can never
// clobber the previous good snapshot with a truncated one. Returns the
// number of snapshots written.
func (s *Server) SnapshotAll(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	s.mu.RLock()
	list := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		list = append(list, t)
	}
	s.mu.RUnlock()
	n := 0
	for _, t := range list {
		snap, err := t.snapshot()
		if errors.Is(err, errSnapshotUnseeded) {
			continue
		}
		if err != nil {
			return n, fmt.Errorf("snapshot tenant %q: %w", t.id, err)
		}
		final := filepath.Join(dir, t.id+snapshotExt)
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, snap, 0o644); err != nil {
			os.Remove(tmp)
			return n, fmt.Errorf("snapshot tenant %q: %w", t.id, err)
		}
		if err := os.Rename(tmp, final); err != nil {
			os.Remove(tmp)
			return n, fmt.Errorf("snapshot tenant %q: %w", t.id, err)
		}
		n++
	}
	return n, nil
}

// RestoreDir loads every <id>.imrdmd snapshot in dir into the registry —
// the boot path of cmd/imrdmd-serve. A file that fails to restore
// (truncated, corrupt, wrong version) does NOT abort the boot: the
// remaining tenants still come up, and the failures are reported in the
// returned (joined) error alongside the successfully restored ids. Only
// a missing directory is a clean no-op.
func (s *Server) RestoreDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		id := strings.TrimSuffix(name, snapshotExt)
		if !validTenantID(id) {
			// An id the HTTP surface would reject would register a zombie
			// tenant no request can ever address, query or delete.
			errs = append(errs, fmt.Errorf("tenant %q: invalid id for a snapshot file", id))
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			errs = append(errs, fmt.Errorf("tenant %q: %w", id, err))
			continue
		}
		t, err := restoreTenant(id, f, s.eng)
		f.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("tenant %q: %w", id, err))
			continue
		}
		if err := s.register(t); err != nil {
			errs = append(errs, err)
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, errors.Join(errs...)
}

// Tenants returns the registered tenant count.
func (s *Server) Tenants() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tenants)
}
