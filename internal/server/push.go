// SSE push surface: GET /v1/tenants/{id}/events streams one event per
// publish instead of being polled. Each subscriber owns a small buffered
// channel; the publisher never blocks on a slow consumer — when a buffer
// is full the OLDEST queued publish is dropped to admit the newest
// (drop-slowest backpressure), and the handler's per-connection delta
// tracking makes the coalescing transparent: an event's spectrum delta
// is always computed against the last version actually sent on that
// connection, so skipped intermediate publishes just widen the delta.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// subscriberBuffer is the per-subscriber channel depth. Small on
// purpose: a consumer that falls more than a few publishes behind wants
// the newest state, not a faithful replay of everything it missed.
const subscriberBuffer = 8

// subscriber is one SSE connection's mailbox.
type subscriber struct {
	ch chan *PublishedResult
	// dropped counts publishes evicted from this subscriber's buffer —
	// surfaced in events so a dashboard knows its view coalesced.
	dropped atomic.Uint64
}

// pubHub fans published results out to subscribers. The zero value is
// ready to use. All channel operations happen under mu and are
// non-blocking, so a publish costs the writer O(subscribers) regardless
// of how slowly any consumer drains.
type pubHub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func (h *pubHub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub := &subscriber{ch: make(chan *PublishedResult, subscriberBuffer)}
	if h.closed {
		close(sub.ch) // subscriber sees an immediately-ended stream
		return sub
	}
	if h.subs == nil {
		h.subs = make(map[*subscriber]struct{})
	}
	h.subs[sub] = struct{}{}
	return sub
}

func (h *pubHub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// broadcast enqueues p for every subscriber without ever blocking the
// publisher: a full buffer evicts its oldest entry (counted in
// sub.dropped) and retries. The eviction loop terminates because only
// the subscriber's handler receives concurrently — each iteration either
// frees a slot or finds one freed.
func (h *pubHub) broadcast(p *PublishedResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.subs {
		for {
			select {
			case sub.ch <- p:
			default:
				select {
				case <-sub.ch:
					sub.dropped.Add(1)
				default:
					// The handler drained the buffer between our two
					// selects; the retry will find room.
				}
				continue
			}
			break
		}
	}
}

// close ends every subscriber's stream; later subscribes end
// immediately. Used at tenant delete and server close so SSE handlers
// cannot hold graceful shutdown hostage.
func (h *pubHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
	}
	h.subs = nil
}

// subscribers returns the current subscriber count (stats surface).
func (h *pubHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// pushEvent is the SSE `data:` payload of one publish. Spectrum changes
// ride as a delta against the Since version (the previous event on this
// connection, or the client's Last-Event-ID on resume); Reset marks a
// full-spectrum resync when no delta base was available.
type pushEvent struct {
	Version    uint64          `json:"version"`
	Since      uint64          `json:"since,omitempty"`
	Seeded     bool            `json:"seeded"`
	Steps      int             `json:"steps"`
	Pending    int             `json:"pending_columns"`
	Modes      int             `json:"modes"`
	Levels     int             `json:"levels"`
	Drift      float64         `json:"drift"`
	ReconError float64         `json:"recon_error"`
	Reset      bool            `json:"reset"`
	Spectrum   []SpectrumPoint `json:"spectrum,omitempty"`
	Added      []SpectrumPoint `json:"added,omitempty"`
	Removed    []SpectrumPoint `json:"removed,omitempty"`
	// Dropped is the cumulative count of publishes coalesced away for
	// this subscriber (drop-slowest backpressure); a rising value means
	// the consumer is not keeping up with the publish rate.
	Dropped uint64 `json:"dropped,omitempty"`
}

// handleEvents is GET /v1/tenants/{id}/events: an SSE stream with one
// `publish` event per published result. Events carry `id: <version>`, so
// a reconnecting client sends Last-Event-ID and resumes with a delta
// when its version is still in the history ring.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, err := s.lookupReq(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, fail(http.StatusInternalServerError, errors.New("response writer does not support streaming")))
		return
	}
	sub := t.hub.subscribe()
	defer t.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Delta base: the version this connection last saw. A resuming
	// client supplies it via Last-Event-ID; if that version is still in
	// the ring we diff against it, otherwise the first event is a reset.
	var last uint64
	var lastSpectrum []SpectrumPoint
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if v, perr := strconv.ParseUint(lei, 10, 64); perr == nil {
			if old := t.lookupPublished(v); old != nil {
				last, lastSpectrum = old.Version, old.Spectrum
			}
		}
	}
	// Emit the current state immediately: a fresh dashboard renders now
	// and only then waits for the next ingest.
	if pub := t.pub.Load(); pub != nil && pub.Version > last {
		if writeSSE(w, fl, pub, last, lastSpectrum, sub.dropped.Load()) != nil {
			return
		}
		last, lastSpectrum = pub.Version, pub.Spectrum
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case pub, open := <-sub.ch:
			if !open {
				return // tenant deleted or server closing
			}
			if pub.Version <= last {
				continue // already covered by a newer state we sent
			}
			if writeSSE(w, fl, pub, last, lastSpectrum, sub.dropped.Load()) != nil {
				return
			}
			last, lastSpectrum = pub.Version, pub.Spectrum
		}
	}
}

// writeSSE renders one publish as an SSE `publish` event, delta-encoded
// against the (sinceVersion, sinceSpectrum) base when one exists.
func writeSSE(w http.ResponseWriter, fl http.Flusher, pub *PublishedResult, sinceVersion uint64, sinceSpectrum []SpectrumPoint, dropped uint64) error {
	ev := pushEvent{
		Version:    pub.Version,
		Since:      sinceVersion,
		Seeded:     pub.Seeded,
		Steps:      pub.Status.Steps,
		Pending:    pub.Status.Pending,
		Modes:      pub.Modes,
		Levels:     pub.Levels,
		Drift:      pub.Drift,
		ReconError: pub.ReconError,
		Dropped:    dropped,
	}
	if sinceVersion == 0 {
		ev.Reset = true
		ev.Spectrum = pub.Spectrum
	} else {
		ev.Added, ev.Removed = spectrumDelta(sinceSpectrum, pub.Spectrum)
	}
	if _, err := fmt.Fprintf(w, "event: publish\nid: %d\ndata: %s\n\n", pub.Version, mustJSON(ev)); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
