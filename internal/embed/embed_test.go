package embed

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/mat"
)

// twoClusters builds n samples in d dims: half around +c, half around −c.
// Returns the data and the label of each sample (0 or 1).
func twoClusters(rng *rand.Rand, n, d int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
			labels[i] = 1
		}
		for j := 0; j < d; j++ {
			center := 0.0
			if j < 3 { // separation lives in the first few dims
				center = sign * sep
			}
			x.Set(i, j, center+rng.NormFloat64())
		}
	}
	return x, labels
}

// separationScore returns (between-centroid distance) / (mean within-
// cluster spread) of a 2-D embedding — higher is better separated.
func separationScore(y *mat.Dense, labels []int) float64 {
	var c0, c1 [2]float64
	var n0, n1 float64
	for i := 0; i < y.R; i++ {
		if labels[i] == 0 {
			c0[0] += y.At(i, 0)
			c0[1] += y.At(i, 1)
			n0++
		} else {
			c1[0] += y.At(i, 0)
			c1[1] += y.At(i, 1)
			n1++
		}
	}
	c0[0] /= n0
	c0[1] /= n0
	c1[0] /= n1
	c1[1] /= n1
	var spread float64
	for i := 0; i < y.R; i++ {
		c := c0
		if labels[i] == 1 {
			c = c1
		}
		dx := y.At(i, 0) - c[0]
		dy := y.At(i, 1) - c[1]
		spread += math.Sqrt(dx*dx + dy*dy)
	}
	spread /= float64(y.R)
	dx := c0[0] - c1[0]
	dy := c0[1] - c1[1]
	between := math.Sqrt(dx*dx + dy*dy)
	if spread == 0 {
		return math.Inf(1)
	}
	return between / spread
}

func TestPairwiseSqDist(t *testing.T) {
	x := mat.NewDenseData(3, 2, []float64{0, 0, 3, 4, 0, 1})
	d := pairwiseSqDist(x)
	if d.At(0, 1) != 25 || d.At(1, 0) != 25 {
		t.Fatalf("d(0,1) = %g want 25", d.At(0, 1))
	}
	if d.At(0, 2) != 1 {
		t.Fatalf("d(0,2) = %g want 1", d.At(0, 2))
	}
	for i := 0; i < 3; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("self distance nonzero")
		}
	}
}

func TestKNearest(t *testing.T) {
	x := mat.NewDenseData(4, 1, []float64{0, 1, 10, 11})
	nb := kNearest(x, 2)
	if nb[0][0].idx != 1 {
		t.Fatalf("nearest of 0 = %d want 1", nb[0][0].idx)
	}
	if nb[2][0].idx != 3 {
		t.Fatalf("nearest of 2 = %d want 3", nb[2][0].idx)
	}
	if len(nb[0]) != 2 {
		t.Fatalf("k = %d want 2", len(nb[0]))
	}
	// k >= n clamps
	nb = kNearest(x, 10)
	if len(nb[0]) != 3 {
		t.Fatalf("clamped k = %d want 3", len(nb[0]))
	}
}

func TestPCASeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := twoClusters(rng, 60, 20, 4)
	p := &PCA{Components: 2}
	y, err := p.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.R != 60 || y.C != 2 {
		t.Fatalf("shape %dx%d", y.R, y.C)
	}
	if s := separationScore(y, labels); s < 2 {
		t.Fatalf("PCA separation %g too weak", s)
	}
	// Explained variance must be descending.
	for i := 1; i < len(p.Explained); i++ {
		if p.Explained[i] > p.Explained[i-1] {
			t.Fatal("explained variance not descending")
		}
	}
}

func TestPCATransformConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := twoClusters(rng, 40, 10, 3)
	p := &PCA{Components: 2}
	y, err := p.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	y2 := p.Transform(x)
	if d := mat.Sub(y, y2).FrobNorm(); d > 1e-9 {
		t.Fatalf("Transform deviates from FitTransform by %g", d)
	}
}

func TestIPCAMatchesPCASubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := twoClusters(rng, 80, 15, 4)
	ip := &IPCA{Components: 2, BatchSize: 10}
	y, err := ip.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.R != 80 || y.C != 2 {
		t.Fatalf("shape %dx%d", y.R, y.C)
	}
	// IPCA should separate the clusters about as well as PCA.
	if s := separationScore(y, labels); s < 2 {
		t.Fatalf("IPCA separation %g too weak", s)
	}
	// And its singular values should approximate batch PCA's. The
	// truncation to 2 components per batch makes this approximate (as in
	// scikit-learn's IncrementalPCA), hence the loose tolerance.
	p := &PCA{Components: 2}
	if _, err := p.FitTransform(x); err != nil {
		t.Fatal(err)
	}
	for i := range ip.sv {
		rel := math.Abs(ip.sv[i]-p.Explained[i]) / p.Explained[i]
		if rel > 0.25 {
			t.Fatalf("IPCA σ[%d]=%g vs PCA %g (rel %g)", i, ip.sv[i], p.Explained[i], rel)
		}
	}
}

func TestIPCASingleBatchMatchesPCAExactly(t *testing.T) {
	// With the whole data in one batch, IPCA reduces to PCA exactly.
	rng := rand.New(rand.NewSource(11))
	x, _ := twoClusters(rng, 50, 12, 4)
	ip := &IPCA{Components: 2, BatchSize: 50}
	if _, err := ip.FitTransform(x); err != nil {
		t.Fatal(err)
	}
	p := &PCA{Components: 2}
	if _, err := p.FitTransform(x); err != nil {
		t.Fatal(err)
	}
	for i := range ip.sv {
		if math.Abs(ip.sv[i]-p.Explained[i]) > 1e-8*(1+p.Explained[i]) {
			t.Fatalf("σ[%d]: IPCA %g PCA %g", i, ip.sv[i], p.Explained[i])
		}
	}
}

func TestIPCAPartialFitIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := twoClusters(rng, 60, 10, 3)
	ip := &IPCA{Components: 2}
	for i := 0; i < 60; i += 20 {
		if err := ip.PartialFit(x.RowSlice(i, i+20)); err != nil {
			t.Fatal(err)
		}
	}
	if ip.n != 60 {
		t.Fatalf("absorbed %d samples want 60", ip.n)
	}
	y := ip.Transform(x)
	if y.R != 60 || y.C != 2 {
		t.Fatalf("shape %dx%d", y.R, y.C)
	}
	if y.HasNaN() {
		t.Fatal("IPCA transform produced NaN")
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := twoClusters(rng, 60, 10, 6)
	ts := &TSNE{Components: 2, Perplexity: 10, Iters: 300, Seed: 1}
	y, err := ts.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.HasNaN() {
		t.Fatal("t-SNE produced NaN")
	}
	if s := separationScore(y, labels); s < 1.5 {
		t.Fatalf("t-SNE separation %g too weak", s)
	}
}

func TestTSNETooFewSamples(t *testing.T) {
	ts := &TSNE{}
	if _, err := ts.FitTransform(mat.NewDense(3, 4)); err != ErrTooFewSamples {
		t.Fatalf("want ErrTooFewSamples, got %v", err)
	}
}

func TestUMAPSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, labels := twoClusters(rng, 80, 10, 6)
	u := &UMAP{NNeighbors: 10, Epochs: 100, Seed: 2}
	y, err := u.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.R != 80 || y.C != 2 {
		t.Fatalf("shape %dx%d", y.R, y.C)
	}
	if y.HasNaN() {
		t.Fatal("UMAP produced NaN")
	}
	if s := separationScore(y, labels); s < 1.5 {
		t.Fatalf("UMAP separation %g too weak", s)
	}
}

func TestUMAPTooFewSamples(t *testing.T) {
	u := &UMAP{}
	if _, err := u.FitTransform(mat.NewDense(4, 3)); err != ErrTooFewSamples {
		t.Fatalf("want ErrTooFewSamples, got %v", err)
	}
}

func TestFitABParamsKnownValues(t *testing.T) {
	// umap-learn's fitted constants for min_dist=0.1, spread=1.0 are
	// a≈1.577, b≈0.895.
	a, b := fitABParams(0.1, 1.0)
	if math.Abs(a-1.577) > 0.15 {
		t.Fatalf("a = %g want ≈1.577", a)
	}
	if math.Abs(b-0.895) > 0.08 {
		t.Fatalf("b = %g want ≈0.895", b)
	}
}

func TestSmoothKNNDistTarget(t *testing.T) {
	nbrs := []neighbor{{1, 1.0}, {2, 1.5}, {3, 2.0}, {4, 2.5}, {5, 3.0}}
	target := math.Log2(5)
	sigma := smoothKNNDist(nbrs, 1.0, target)
	var sum float64
	for _, nb := range nbrs {
		d := nb.dist - 1.0
		if d < 0 {
			d = 0
		}
		sum += math.Exp(-d / sigma)
	}
	if math.Abs(sum-target) > 1e-3 {
		t.Fatalf("calibration off: sum=%g target=%g", sum, target)
	}
}

func TestAlignedUMAPWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x1, labels := twoClusters(rng, 60, 12, 6)
	// Window 2: same structure, slightly perturbed features.
	x2 := x1.Clone()
	for i := range x2.Data {
		x2.Data[i] += 0.2 * rng.NormFloat64()
	}
	au := &AlignedUMAP{Base: UMAP{NNeighbors: 10, Epochs: 80, Seed: 3}, AlignmentWeight: 0.5}
	y1, err := au.InitialFit(x1)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := au.PartialFit(x2)
	if err != nil {
		t.Fatal(err)
	}
	if len(au.Embeddings) != 2 {
		t.Fatalf("windows = %d want 2", len(au.Embeddings))
	}
	// Alignment: consecutive embeddings of (nearly) the same data must
	// stay much closer than a fresh unaligned run would be.
	drift := mat.Sub(y1, y2).FrobNorm() / float64(y1.R)
	if drift > 1.0 {
		t.Fatalf("aligned windows drifted %g per point", drift)
	}
	if s := separationScore(y2, labels); s < 1.0 {
		t.Fatalf("aligned window separation %g too weak", s)
	}
}

func TestAlignedUMAPShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x1, _ := twoClusters(rng, 40, 8, 4)
	x2, _ := twoClusters(rng, 30, 8, 4)
	au := &AlignedUMAP{Base: UMAP{NNeighbors: 8, Epochs: 40, Seed: 4}}
	if _, err := au.InitialFit(x1); err != nil {
		t.Fatal(err)
	}
	if _, err := au.PartialFit(x2); err != ErrWindowShape {
		t.Fatalf("want ErrWindowShape, got %v", err)
	}
}

func TestAlignedUMAPFirstCallIsInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, _ := twoClusters(rng, 40, 8, 4)
	au := &AlignedUMAP{Base: UMAP{NNeighbors: 8, Epochs: 40, Seed: 5}}
	if _, err := au.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	if len(au.Embeddings) != 1 {
		t.Fatal("PartialFit on empty state should behave as InitialFit")
	}
}

func BenchmarkPCA1000x1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := twoClusters(rng, 1000, 1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &PCA{Components: 2}
		if _, err := p.FitTransform(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUMAP200x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := twoClusters(rng, 200, 100, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := &UMAP{NNeighbors: 15, Epochs: 50, Seed: 1}
		if _, err := u.FitTransform(x); err != nil {
			b.Fatal(err)
		}
	}
}
