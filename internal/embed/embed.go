// Package embed reimplements the dimensionality-reduction methods the
// paper compares I-mrDMD against in Fig. 8 and Fig. 9: PCA, incremental
// PCA (Ross et al.), exact t-SNE (van der Maaten), UMAP (McInnes et al.)
// and Aligned-UMAP (Dadu et al.) — all stdlib-only. Inputs are
// samples×features matrices; outputs are samples×k embeddings.
package embed

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"imrdmd/internal/mat"
)

// Embedder is a batch dimensionality-reduction method.
type Embedder interface {
	// Name identifies the method in benchmark tables.
	Name() string
	// FitTransform embeds x (n samples × d features) into n×k.
	FitTransform(x *mat.Dense) (*mat.Dense, error)
}

// ErrTooFewSamples is returned when a method needs more samples.
var ErrTooFewSamples = errors.New("embed: too few samples")

// pairwiseSqDist returns the n×n matrix of squared Euclidean distances
// between rows of x, computed via the Gram expansion ‖a−b‖² =
// ‖a‖²+‖b‖²−2a·b (one matrix multiply instead of n² row scans).
func pairwiseSqDist(x *mat.Dense) *mat.Dense {
	n := x.R
	g := mat.Gram(x, false) // x xᵀ
	d := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		gii := g.At(i, i)
		for j := 0; j < n; j++ {
			v := gii + g.At(j, j) - 2*g.At(i, j)
			if v < 0 { // roundoff
				v = 0
			}
			d.Set(i, j, v)
		}
	}
	return d
}

// neighbor is one kNN edge.
type neighbor struct {
	idx  int
	dist float64 // Euclidean (not squared)
}

// kNearest returns, for each row, its k nearest other rows by Euclidean
// distance (exact, O(n²) — the benchmark sizes are ≤ a few thousand).
func kNearest(x *mat.Dense, k int) [][]neighbor {
	n := x.R
	if k >= n {
		k = n - 1
	}
	d2 := pairwiseSqDist(x)
	out := make([][]neighbor, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		for j := range idx {
			idx[j] = j
		}
		row := d2.Row(i)
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		nb := make([]neighbor, 0, k)
		for _, j := range idx {
			if j == i {
				continue
			}
			nb = append(nb, neighbor{idx: j, dist: math.Sqrt(row[j])})
			if len(nb) == k {
				break
			}
		}
		out[i] = nb
	}
	return out
}

// randn fills an n×k matrix with scaled Gaussian noise.
func randn(rng *rand.Rand, n, k int, scale float64) *mat.Dense {
	m := mat.NewDense(n, k)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

// columnMeans returns the feature means of x.
func columnMeans(x *mat.Dense) []float64 {
	mu := make([]float64, x.C)
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(x.R)
	}
	return mu
}

// centerRows returns x with mu subtracted from every row.
func centerRows(x *mat.Dense, mu []float64) *mat.Dense {
	out := x.Clone()
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= mu[j]
		}
	}
	return out
}
