package embed

import (
	"math"
	"math/rand"

	"imrdmd/internal/mat"
)

// TSNE is exact t-distributed stochastic neighbor embedding (van der
// Maaten & Hinton), matching the reference implementation's structure:
// perplexity-calibrated Gaussian affinities, early exaggeration, and
// momentum gradient descent with adaptive gains. O(n²) per iteration —
// exact, not Barnes–Hut — which covers the paper's comparison sizes.
type TSNE struct {
	Components   int     // output dims, default 2
	Perplexity   float64 // default 30
	LearningRate float64 // default 200 ("auto"-ish); the paper used 0.01 with sklearn's different scaling
	Iters        int     // default 500
	Exaggeration float64 // early exaggeration factor, default 12 for the first quarter of iters
	Seed         int64
}

// Name implements Embedder.
func (t *TSNE) Name() string { return "TSNE" }

// FitTransform implements Embedder.
func (t *TSNE) FitTransform(x *mat.Dense) (*mat.Dense, error) {
	n := x.R
	if n < 4 {
		return nil, ErrTooFewSamples
	}
	k := t.Components
	if k <= 0 {
		k = 2
	}
	perp := t.Perplexity
	if perp <= 0 {
		perp = 30
	}
	if perp > float64(n-1)/3 {
		perp = float64(n-1) / 3
	}
	lr := t.LearningRate
	if lr <= 0 {
		lr = math.Max(float64(n)/12, 50)
	}
	iters := t.Iters
	if iters <= 0 {
		iters = 500
	}
	exag := t.Exaggeration
	if exag <= 0 {
		exag = 12
	}

	p := affinities(x, perp)
	// Symmetrize and normalize: P = (P+Pᵀ)/(2n), floored.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p.At(i, j) + p.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p.Set(i, j, v)
			p.Set(j, i, v)
		}
		p.Set(i, i, 0)
	}

	rng := rand.New(rand.NewSource(t.Seed + 1))
	y := randn(rng, n, k, 1e-4)
	vel := mat.NewDense(n, k)
	gains := mat.NewDense(n, k)
	for i := range gains.Data {
		gains.Data[i] = 1
	}

	exagUntil := iters / 4
	grad := mat.NewDense(n, k)
	q := mat.NewDense(n, n)
	for iter := 0; iter < iters; iter++ {
		scale := 1.0
		if iter < exagUntil {
			scale = exag
		}
		// Student-t affinities in embedding space.
		var qsum float64
		for i := 0; i < n; i++ {
			yi := y.Row(i)
			for j := i + 1; j < n; j++ {
				yj := y.Row(j)
				var d2 float64
				for c := 0; c < k; c++ {
					d := yi[c] - yj[c]
					d2 += d * d
				}
				w := 1 / (1 + d2)
				q.Set(i, j, w)
				q.Set(j, i, w)
				qsum += 2 * w
			}
		}
		if qsum < 1e-12 {
			qsum = 1e-12
		}
		// Gradient: 4 Σ_j (p_ij·scale − q_ij/qsum) w_ij (y_i − y_j).
		for i := range grad.Data {
			grad.Data[i] = 0
		}
		for i := 0; i < n; i++ {
			yi := y.Row(i)
			gi := grad.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				w := q.At(i, j)
				coef := 4 * (scale*p.At(i, j) - w/qsum) * w
				yj := y.Row(j)
				for c := 0; c < k; c++ {
					gi[c] += coef * (yi[c] - yj[c])
				}
			}
		}
		// Momentum + adaptive gains update.
		mom := 0.5
		if iter >= exagUntil {
			mom = 0.8
		}
		for i := range y.Data {
			g := grad.Data[i]
			if (g > 0) == (vel.Data[i] > 0) {
				gains.Data[i] *= 0.8
			} else {
				gains.Data[i] += 0.2
			}
			if gains.Data[i] < 0.01 {
				gains.Data[i] = 0.01
			}
			vel.Data[i] = mom*vel.Data[i] - lr*gains.Data[i]*g
			y.Data[i] += vel.Data[i]
		}
		centerInPlace(y)
	}
	return y, nil
}

// affinities builds the conditional Gaussian affinity matrix with a
// per-point precision found by binary search to match the perplexity.
func affinities(x *mat.Dense, perp float64) *mat.Dense {
	n := x.R
	d2 := pairwiseSqDist(x)
	p := mat.NewDense(n, n)
	logU := math.Log(perp)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(row, d2.Row(i))
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		var h float64
		for iter := 0; iter < 50; iter++ {
			var sum, dsum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				w := math.Exp(-row[j] * beta)
				sum += w
				dsum += row[j] * w
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			h = math.Log(sum) + beta*dsum/sum
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		var sum float64
		pr := p.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			pr[j] = math.Exp(-row[j] * beta)
			sum += pr[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := range pr {
			pr[j] /= sum
		}
	}
	return p
}

func centerInPlace(y *mat.Dense) {
	mu := columnMeans(y)
	for i := 0; i < y.R; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] -= mu[j]
		}
	}
}
