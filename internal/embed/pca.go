package embed

import (
	"math"

	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// PCA projects samples onto the leading principal components
// (scikit-learn's PCA(n_components=k, svd_solver='auto') equivalent).
type PCA struct {
	Components int

	mean []float64
	// basis is d×k: the right singular vectors of the centered data.
	basis *mat.Dense
	// Explained holds the singular values of the kept components.
	Explained []float64
}

// Name implements Embedder.
func (p *PCA) Name() string { return "PCA" }

// FitTransform implements Embedder.
func (p *PCA) FitTransform(x *mat.Dense) (*mat.Dense, error) {
	if x.R < 2 {
		return nil, ErrTooFewSamples
	}
	k := p.Components
	if k <= 0 {
		k = 2
	}
	p.mean = columnMeans(x)
	xc := centerRows(x, p.mean)
	res := svd.Compute(xc)
	if k > res.Rank() {
		k = res.Rank()
	}
	tr := res.Truncate(k)
	p.basis = tr.V
	p.Explained = tr.S
	// Scores = U Σ = Xc V.
	return mat.Mul(xc, tr.V), nil
}

// Transform projects new samples with the fitted basis.
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	return mat.Mul(centerRows(x, p.mean), p.basis)
}

// IPCA is incremental PCA after Ross et al., "Incremental learning for
// robust visual tracking" (the algorithm scikit-learn's IncrementalPCA
// implements): batches of samples update a running mean and a truncated
// SVD, with an extra correction row accounting for the mean shift.
type IPCA struct {
	Components int
	BatchSize  int // used by FitTransform's internal chunking; default 10

	n     int // samples absorbed
	mean  []float64
	sv    []float64  // singular values (k)
	basis *mat.Dense // d×k right singular vectors
}

// Name implements Embedder.
func (p *IPCA) Name() string { return "IPCA" }

// FitTransform chunks x into batches and PartialFits each, then projects
// all of x — mirroring sklearn's fit(X).transform(X).
func (p *IPCA) FitTransform(x *mat.Dense) (*mat.Dense, error) {
	if x.R < 2 {
		return nil, ErrTooFewSamples
	}
	bs := p.BatchSize
	if bs <= 0 {
		bs = 10
	}
	k := p.Components
	if k <= 0 {
		k = 2
	}
	if bs < k {
		bs = k
	}
	for i := 0; i < x.R; i += bs {
		hi := i + bs
		if hi > x.R {
			hi = x.R
		}
		if err := p.PartialFit(x.RowSlice(i, hi)); err != nil {
			return nil, err
		}
	}
	return p.Transform(x), nil
}

// PartialFit absorbs a batch of samples (m×d).
func (p *IPCA) PartialFit(batch *mat.Dense) error {
	if batch.R == 0 {
		return nil
	}
	k := p.Components
	if k <= 0 {
		k = 2
	}
	m := batch.R
	bmean := columnMeans(batch)
	if p.n == 0 {
		p.mean = bmean
		xc := centerRows(batch, bmean)
		// xc = U Σ Vᵀ (m×d); the feature-space basis is V.
		res := svd.Compute(xc)
		kk := k
		if kk > res.Rank() {
			kk = res.Rank()
		}
		tr := res.Truncate(kk)
		p.basis = tr.V
		p.sv = tr.S
		p.n = m
		return nil
	}
	nOld := float64(p.n)
	nNew := float64(m)
	nTot := nOld + nNew
	// Updated mean.
	newMean := make([]float64, len(p.mean))
	for j := range newMean {
		newMean[j] = (nOld*p.mean[j] + nNew*bmean[j]) / nTot
	}
	// Stack: [diag(sv)·basisᵀ ; batch − bmean ; √(n·m/(n+m))·(mean−bmean)].
	kCur := len(p.sv)
	d := batch.C
	rows := kCur + m + 1
	stack := mat.NewDense(rows, d)
	for i := 0; i < kCur; i++ {
		for j := 0; j < d; j++ {
			stack.Set(i, j, p.sv[i]*p.basis.At(j, i))
		}
	}
	for i := 0; i < m; i++ {
		src := batch.Row(i)
		dst := stack.Row(kCur + i)
		for j := 0; j < d; j++ {
			dst[j] = src[j] - bmean[j]
		}
	}
	corr := math.Sqrt(nOld * nNew / nTot)
	last := stack.Row(kCur + m)
	for j := 0; j < d; j++ {
		last[j] = corr * (p.mean[j] - bmean[j])
	}
	res := svd.Compute(stack)
	kk := k
	if kk > res.Rank() {
		kk = res.Rank()
	}
	tr := res.Truncate(kk)
	p.basis = tr.V
	p.sv = tr.S
	p.mean = newMean
	p.n += m
	return nil
}

// Transform projects samples onto the running components.
func (p *IPCA) Transform(x *mat.Dense) *mat.Dense {
	return mat.Mul(centerRows(x, p.mean), p.basis)
}

// Rank returns the number of components currently kept.
func (p *IPCA) Rank() int { return len(p.sv) }
