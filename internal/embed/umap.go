package embed

import (
	"math"
	"math/rand"

	"imrdmd/internal/mat"
)

// UMAP is uniform manifold approximation and projection (McInnes, Healy,
// Saul, Großberger), following umap-learn's algorithm: exact kNN graph,
// smooth-kNN kernel calibration, fuzzy simplicial set union, and
// edge-sampled SGD layout with negative sampling. Initialization is PCA
// (umap-learn's spectral init approximated; documented in DESIGN.md).
type UMAP struct {
	Components   int     // default 2
	NNeighbors   int     // default 15
	MinDist      float64 // default 0.1
	Spread       float64 // default 1.0
	Epochs       int     // default 200
	LearningRate float64 // default 1.0
	NegSamples   int     // default 5
	Seed         int64

	// anchors, when non-nil, adds a quadratic pull of each point toward
	// anchors[i] with weight AnchorWeight — the alignment regularization
	// Aligned-UMAP adds between consecutive windows.
	anchors      *mat.Dense
	AnchorWeight float64
}

// Name implements Embedder.
func (u *UMAP) Name() string { return "UMAP" }

// edge is one weighted edge of the fuzzy graph.
type edge struct {
	a, b int
	w    float64
}

// FitTransform implements Embedder.
func (u *UMAP) FitTransform(x *mat.Dense) (*mat.Dense, error) {
	n := x.R
	if n < 5 {
		return nil, ErrTooFewSamples
	}
	k := u.Components
	if k <= 0 {
		k = 2
	}
	nn := u.NNeighbors
	if nn <= 0 {
		nn = 15
	}
	if nn >= n {
		nn = n - 1
	}
	minDist := u.MinDist
	if minDist <= 0 {
		minDist = 0.1
	}
	spread := u.Spread
	if spread <= 0 {
		spread = 1.0
	}
	epochs := u.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr0 := u.LearningRate
	if lr0 <= 0 {
		lr0 = 1.0
	}
	neg := u.NegSamples
	if neg <= 0 {
		neg = 5
	}

	edges := fuzzyGraph(x, nn)
	a, b := fitABParams(minDist, spread)

	// Initialization: PCA scores scaled to ~10 units (umap-learn scales
	// its spectral init similarly), or the anchor positions when aligned.
	var y *mat.Dense
	if u.anchors != nil {
		y = u.anchors.Clone()
	} else {
		pca := &PCA{Components: k}
		scores, err := pca.FitTransform(x)
		if err != nil {
			return nil, err
		}
		y = scores
		rescaleTo(y, 10)
		rng := rand.New(rand.NewSource(u.Seed + 7))
		for i := range y.Data {
			y.Data[i] += rng.NormFloat64() * 1e-4
		}
	}

	// Edge sampling schedule: edge e fires every maxW/w epochs.
	var maxW float64
	for _, e := range edges {
		if e.w > maxW {
			maxW = e.w
		}
	}
	if maxW == 0 {
		return y, nil
	}
	nextFire := make([]float64, len(edges))
	period := make([]float64, len(edges))
	for i, e := range edges {
		period[i] = maxW / e.w
		nextFire[i] = period[i]
	}

	rng := rand.New(rand.NewSource(u.Seed + 13))
	const clip = 4.0
	for epoch := 0; epoch < epochs; epoch++ {
		alpha := lr0 * (1 - float64(epoch)/float64(epochs))
		for ei, e := range edges {
			if nextFire[ei] > float64(epoch+1) {
				continue
			}
			nextFire[ei] += period[ei]
			yi := y.Row(e.a)
			yj := y.Row(e.b)
			// Attractive move along the edge.
			d2 := rowSqDist(yi, yj)
			if d2 > 0 {
				gradCoef := -2 * a * b * math.Pow(d2, b-1) / (1 + a*math.Pow(d2, b))
				for c := 0; c < k; c++ {
					g := clamp(gradCoef*(yi[c]-yj[c]), clip)
					yi[c] += alpha * g
					yj[c] -= alpha * g
				}
			}
			// Negative samples repel.
			for s := 0; s < neg; s++ {
				j := rng.Intn(n)
				if j == e.a {
					continue
				}
				yn := y.Row(j)
				d2 := rowSqDist(yi, yn)
				gradCoef := 2 * b / ((0.001 + d2) * (1 + a*math.Pow(d2, b)))
				for c := 0; c < k; c++ {
					g := clamp(gradCoef*(yi[c]-yn[c]), clip)
					yi[c] += alpha * g
				}
			}
			// Alignment spring toward the previous window's position.
			if u.anchors != nil && u.AnchorWeight > 0 {
				ai := u.anchors.Row(e.a)
				for c := 0; c < k; c++ {
					yi[c] += alpha * u.AnchorWeight * (ai[c] - yi[c])
				}
			}
		}
	}
	return y, nil
}

// fuzzyGraph builds the symmetrized fuzzy simplicial set over the exact
// kNN graph: per-point (ρ, σ) calibration to log2(k) total membership,
// then the probabilistic t-conorm union w∪ = w + wᵀ − w∘wᵀ.
func fuzzyGraph(x *mat.Dense, nn int) []edge {
	n := x.R
	knn := kNearest(x, nn)
	target := math.Log2(float64(nn))
	type key struct{ a, b int }
	weights := make(map[key]float64, n*nn)
	for i, nbrs := range knn {
		if len(nbrs) == 0 {
			continue
		}
		rho := nbrs[0].dist
		sigma := smoothKNNDist(nbrs, rho, target)
		for _, nb := range nbrs {
			d := nb.dist - rho
			if d < 0 {
				d = 0
			}
			w := math.Exp(-d / sigma)
			weights[key{i, nb.idx}] = w
		}
	}
	var edges []edge
	seen := make(map[key]bool, len(weights))
	for kk, w := range weights {
		if seen[kk] {
			continue
		}
		rev := key{kk.b, kk.a}
		seen[kk], seen[rev] = true, true
		wr := weights[rev]
		union := w + wr - w*wr
		if union > 1e-8 {
			edges = append(edges, edge{a: kk.a, b: kk.b, w: union})
		}
	}
	return edges
}

// smoothKNNDist binary-searches σ so that Σ exp(−max(d−ρ,0)/σ) = target.
func smoothKNNDist(nbrs []neighbor, rho, target float64) float64 {
	lo, hi := 0.0, math.Inf(1)
	sigma := 1.0
	for iter := 0; iter < 64; iter++ {
		var sum float64
		for _, nb := range nbrs {
			d := nb.dist - rho
			if d <= 0 {
				sum++
				continue
			}
			sum += math.Exp(-d / sigma)
		}
		if math.Abs(sum-target) < 1e-5 {
			break
		}
		if sum > target {
			hi = sigma
			sigma = (lo + hi) / 2
		} else {
			lo = sigma
			if math.IsInf(hi, 1) {
				sigma *= 2
			} else {
				sigma = (lo + hi) / 2
			}
		}
	}
	if sigma <= 0 || math.IsNaN(sigma) {
		sigma = 1e-3
	}
	return sigma
}

// fitABParams fits the rational kernel 1/(1+a·x^{2b}) to the target curve
// (1 for x ≤ minDist, exp(−(x−minDist)/spread) beyond) by Gauss–Newton on
// sampled points — the same curve-fit umap-learn does with scipy.
func fitABParams(minDist, spread float64) (a, b float64) {
	const samples = 300
	xs := make([]float64, samples)
	ys := make([]float64, samples)
	for i := 0; i < samples; i++ {
		x := 3 * spread * float64(i+1) / samples
		xs[i] = x
		if x <= minDist {
			ys[i] = 1
		} else {
			ys[i] = math.Exp(-(x - minDist) / spread)
		}
	}
	a, b = 1.0, 1.0
	for iter := 0; iter < 100; iter++ {
		// Residuals and Jacobian of f(x) = 1/(1+a x^{2b}).
		var jtj [2][2]float64
		var jtr [2]float64
		for i := range xs {
			x2b := math.Pow(xs[i], 2*b)
			den := 1 + a*x2b
			f := 1 / den
			r := ys[i] - f
			dfda := -x2b / (den * den)
			dfdb := -2 * a * x2b * math.Log(xs[i]) / (den * den)
			jtj[0][0] += dfda * dfda
			jtj[0][1] += dfda * dfdb
			jtj[1][0] += dfda * dfdb
			jtj[1][1] += dfdb * dfdb
			jtr[0] += dfda * r
			jtr[1] += dfdb * r
		}
		// Levenberg damping keeps the 2×2 solve stable.
		lam := 1e-6 * (jtj[0][0] + jtj[1][1])
		jtj[0][0] += lam
		jtj[1][1] += lam
		det := jtj[0][0]*jtj[1][1] - jtj[0][1]*jtj[1][0]
		if math.Abs(det) < 1e-300 {
			break
		}
		da := (jtr[0]*jtj[1][1] - jtr[1]*jtj[0][1]) / det
		db := (jtr[1]*jtj[0][0] - jtr[0]*jtj[1][0]) / det
		a += da
		b += db
		if a <= 0 {
			a = 1e-3
		}
		if b <= 0 {
			b = 1e-3
		}
		if math.Abs(da)+math.Abs(db) < 1e-9 {
			break
		}
	}
	return a, b
}

func rowSqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clamp(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// rescaleTo scales y so its max absolute coordinate is `limit`.
func rescaleTo(y *mat.Dense, limit float64) {
	m := y.MaxAbs()
	if m == 0 {
		return
	}
	f := limit / m
	for i := range y.Data {
		y.Data[i] *= f
	}
}
