package embed

import (
	"errors"

	"imrdmd/internal/mat"
)

// AlignedUMAP embeds a sequence of feature windows of the same sample
// population (Dadu et al., "Application of Aligned-UMAP to longitudinal
// biomedical studies"): each window is laid out by UMAP, initialized from
// and spring-anchored to the previous window's embedding, so trajectories
// stay comparable across windows. Like the reference implementation it
// exposes an initial fit over the first window and partial fits for each
// subsequent window.
type AlignedUMAP struct {
	// Base configures the per-window UMAP. Components/NNeighbors etc.
	// follow UMAP defaults when zero.
	Base UMAP
	// AlignmentWeight is the spring strength toward the previous window's
	// positions (default 0.5, in the range the reference uses).
	AlignmentWeight float64

	prev *mat.Dense
	// Embeddings accumulates one embedding per window.
	Embeddings []*mat.Dense
}

// Name implements a label for benchmark tables.
func (a *AlignedUMAP) Name() string { return "Aligned-UMAP" }

// ErrWindowShape is returned when a window's sample count differs from
// the first window's.
var ErrWindowShape = errors.New("embed: aligned window has different sample count")

// InitialFit embeds the first window.
func (a *AlignedUMAP) InitialFit(x *mat.Dense) (*mat.Dense, error) {
	u := a.Base
	u.anchors = nil
	u.AnchorWeight = 0
	y, err := u.FitTransform(x)
	if err != nil {
		return nil, err
	}
	a.prev = y.Clone()
	a.Embeddings = append(a.Embeddings, y)
	return y, nil
}

// PartialFit embeds the next window anchored to the previous embedding.
func (a *AlignedUMAP) PartialFit(x *mat.Dense) (*mat.Dense, error) {
	if a.prev == nil {
		return a.InitialFit(x)
	}
	if x.R != a.prev.R {
		return nil, ErrWindowShape
	}
	u := a.Base
	u.anchors = a.prev
	u.AnchorWeight = a.AlignmentWeight
	if u.AnchorWeight <= 0 {
		u.AnchorWeight = 0.5
	}
	y, err := u.FitTransform(x)
	if err != nil {
		return nil, err
	}
	a.prev = y.Clone()
	a.Embeddings = append(a.Embeddings, y)
	return y, nil
}
