//go:build amd64

#include "textflag.h"

// func gemmKernel4x8FMA(c []float32, ldc int, ap, bp []float32, kc, mode int)
//
// 4×8 float32 register tile: Y0..Y3 accumulate rows 0..3 of the tile
// (eight floats each). Each k step loads one B strip row (8 floats,
// contiguous) and broadcasts the four A strip values, issuing four
// VFMADD231PS — the same schedule as the float64 kernel at double the
// element width. The k loop is unrolled ×2. At the end the tile is stored
// to c with row stride ldc according to mode (0 = overwrite, 1 = add,
// 2 = subtract).
TEXT ·gemmKernel4x8FMA(SB), NOSPLIT, $0-96
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ ap_base+32(FP), SI
	MOVQ bp_base+56(FP), BX
	MOVQ kc+80(FP), CX
	MOVQ mode+88(FP), R8

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	MOVQ CX, R9
	SHRQ $1, R9         // R9 = kc/2 (unrolled pairs)
	JZ   tail

pair:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS 8(SI), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS  Y4, Y8, Y3

	VMOVUPS      32(BX), Y9
	VBROADCASTSS 16(SI), Y10
	VFMADD231PS  Y9, Y10, Y0
	VBROADCASTSS 20(SI), Y11
	VFMADD231PS  Y9, Y11, Y1
	VBROADCASTSS 24(SI), Y12
	VFMADD231PS  Y9, Y12, Y2
	VBROADCASTSS 28(SI), Y13
	VFMADD231PS  Y9, Y13, Y3

	ADDQ $32, SI
	ADDQ $64, BX
	DECQ R9
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   store
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS 8(SI), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS  Y4, Y8, Y3

store:
	SHLQ $2, DX         // ldc in bytes
	CMPQ R8, $1
	JEQ  madd
	CMPQ R8, $2
	JEQ  msub

	// mode 0: overwrite
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS Y1, (DI)
	ADDQ    DX, DI
	VMOVUPS Y2, (DI)
	ADDQ    DX, DI
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

madd:
	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

msub:
	VMOVUPS (DI), Y4
	VSUBPS  Y0, Y4, Y4
	VMOVUPS Y4, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y5
	VSUBPS  Y1, Y5, Y5
	VMOVUPS Y5, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y6
	VSUBPS  Y2, Y6, Y6
	VMOVUPS Y6, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y7
	VSUBPS  Y3, Y7, Y7
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET

// func gemmKernel8x16sAVX512(c []float32, ldc int, ap, bp []float32, kc, mode int)
//
// 8×16 float32 register tile: Z0..Z7 accumulate rows 0..7 (sixteen floats
// each). Each k step loads one B strip row (16 floats, one 512-bit
// vector) and issues eight embedded-broadcast VFMADD231PS. The k loop is
// unrolled ×2. Per-element accumulation is the same p-order FMA chain as
// the 4×8 AVX2 kernel, so at equal KC both produce bit-identical outputs.
TEXT ·gemmKernel8x16sAVX512(SB), NOSPLIT, $0-96
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ ap_base+32(FP), SI
	MOVQ bp_base+56(FP), BX
	MOVQ kc+80(FP), CX
	MOVQ mode+88(FP), R8

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7

	MOVQ CX, R9
	SHRQ $1, R9         // R9 = kc/2 (unrolled pairs)
	JZ   tail512

pair512:
	VMOVUPS          (BX), Z8
	VFMADD231PS.BCST (SI), Z8, Z0
	VFMADD231PS.BCST 4(SI), Z8, Z1
	VFMADD231PS.BCST 8(SI), Z8, Z2
	VFMADD231PS.BCST 12(SI), Z8, Z3
	VFMADD231PS.BCST 16(SI), Z8, Z4
	VFMADD231PS.BCST 20(SI), Z8, Z5
	VFMADD231PS.BCST 24(SI), Z8, Z6
	VFMADD231PS.BCST 28(SI), Z8, Z7

	VMOVUPS          64(BX), Z9
	VFMADD231PS.BCST 32(SI), Z9, Z0
	VFMADD231PS.BCST 36(SI), Z9, Z1
	VFMADD231PS.BCST 40(SI), Z9, Z2
	VFMADD231PS.BCST 44(SI), Z9, Z3
	VFMADD231PS.BCST 48(SI), Z9, Z4
	VFMADD231PS.BCST 52(SI), Z9, Z5
	VFMADD231PS.BCST 56(SI), Z9, Z6
	VFMADD231PS.BCST 60(SI), Z9, Z7

	ADDQ $64, SI
	ADDQ $128, BX
	DECQ R9
	JNZ  pair512

tail512:
	ANDQ $1, CX
	JZ   store512
	VMOVUPS          (BX), Z8
	VFMADD231PS.BCST (SI), Z8, Z0
	VFMADD231PS.BCST 4(SI), Z8, Z1
	VFMADD231PS.BCST 8(SI), Z8, Z2
	VFMADD231PS.BCST 12(SI), Z8, Z3
	VFMADD231PS.BCST 16(SI), Z8, Z4
	VFMADD231PS.BCST 20(SI), Z8, Z5
	VFMADD231PS.BCST 24(SI), Z8, Z6
	VFMADD231PS.BCST 28(SI), Z8, Z7

store512:
	SHLQ $2, DX         // ldc in bytes
	CMPQ R8, $1
	JEQ  madd512
	CMPQ R8, $2
	JEQ  msub512

	// mode 0: overwrite
	VMOVUPS Z0, (DI)
	ADDQ    DX, DI
	VMOVUPS Z1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z2, (DI)
	ADDQ    DX, DI
	VMOVUPS Z3, (DI)
	ADDQ    DX, DI
	VMOVUPS Z4, (DI)
	ADDQ    DX, DI
	VMOVUPS Z5, (DI)
	ADDQ    DX, DI
	VMOVUPS Z6, (DI)
	ADDQ    DX, DI
	VMOVUPS Z7, (DI)
	VZEROUPPER
	RET

madd512:
	VADDPS  (DI), Z0, Z0
	VMOVUPS Z0, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z2, Z2
	VMOVUPS Z2, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z3, Z3
	VMOVUPS Z3, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z4, Z4
	VMOVUPS Z4, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z5, Z5
	VMOVUPS Z5, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z6, Z6
	VMOVUPS Z6, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Z7, Z7
	VMOVUPS Z7, (DI)
	VZEROUPPER
	RET

msub512:
	VMOVUPS (DI), Z8
	VSUBPS  Z0, Z8, Z8
	VMOVUPS Z8, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z9
	VSUBPS  Z1, Z9, Z9
	VMOVUPS Z9, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z10
	VSUBPS  Z2, Z10, Z10
	VMOVUPS Z10, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z11
	VSUBPS  Z3, Z11, Z11
	VMOVUPS Z11, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z12
	VSUBPS  Z4, Z12, Z12
	VMOVUPS Z12, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z13
	VSUBPS  Z5, Z13, Z13
	VMOVUPS Z13, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z14
	VSUBPS  Z6, Z14, Z14
	VMOVUPS Z14, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Z16
	VSUBPS  Z7, Z16, Z16
	VMOVUPS Z16, (DI)
	VZEROUPPER
	RET
