//go:build amd64

#include "textflag.h"

// func gemmKernel4x8FMA(c []float32, ldc int, ap, bp []float32, kc, mode int)
//
// 4×8 float32 register tile: Y0..Y3 accumulate rows 0..3 of the tile
// (eight floats each). Each k step loads one B strip row (8 floats,
// contiguous) and broadcasts the four A strip values, issuing four
// VFMADD231PS — the same schedule as the float64 kernel at double the
// element width. The k loop is unrolled ×2. At the end the tile is stored
// to c with row stride ldc according to mode (0 = overwrite, 1 = add,
// 2 = subtract).
TEXT ·gemmKernel4x8FMA(SB), NOSPLIT, $0-96
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ ap_base+32(FP), SI
	MOVQ bp_base+56(FP), BX
	MOVQ kc+80(FP), CX
	MOVQ mode+88(FP), R8

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	MOVQ CX, R9
	SHRQ $1, R9         // R9 = kc/2 (unrolled pairs)
	JZ   tail

pair:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS 8(SI), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS  Y4, Y8, Y3

	VMOVUPS      32(BX), Y9
	VBROADCASTSS 16(SI), Y10
	VFMADD231PS  Y9, Y10, Y0
	VBROADCASTSS 20(SI), Y11
	VFMADD231PS  Y9, Y11, Y1
	VBROADCASTSS 24(SI), Y12
	VFMADD231PS  Y9, Y12, Y2
	VBROADCASTSS 28(SI), Y13
	VFMADD231PS  Y9, Y13, Y3

	ADDQ $32, SI
	ADDQ $64, BX
	DECQ R9
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   store
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS 8(SI), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS  Y4, Y8, Y3

store:
	SHLQ $2, DX         // ldc in bytes
	CMPQ R8, $1
	JEQ  madd
	CMPQ R8, $2
	JEQ  msub

	// mode 0: overwrite
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS Y1, (DI)
	ADDQ    DX, DI
	VMOVUPS Y2, (DI)
	ADDQ    DX, DI
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

madd:
	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    DX, DI
	VADDPS  (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

msub:
	VMOVUPS (DI), Y4
	VSUBPS  Y0, Y4, Y4
	VMOVUPS Y4, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y5
	VSUBPS  Y1, Y5, Y5
	VMOVUPS Y5, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y6
	VSUBPS  Y2, Y6, Y6
	VMOVUPS Y6, (DI)
	ADDQ    DX, DI
	VMOVUPS (DI), Y7
	VSUBPS  Y3, Y7, Y7
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET
