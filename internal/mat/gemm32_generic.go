//go:build !amd64

package mat

// Non-amd64 float32 micro-kernels: portable loops at both tile shapes.

func gemmKernel4x8(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	gemmKernel4x8Go(c, ldc, ap, bp, kc, mode)
}

func gemmKernel8x16s(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	gemmKernel8x16sGo(c, ldc, ap, bp, kc, mode)
}
