//go:build !amd64

package mat

// Non-amd64 builds use the portable float32 micro-kernel.
func gemmKernel4x8(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	gemmKernel4x8Go(c, ldc, ap, bp, kc, mode)
}
