//go:build amd64

package mat

// On amd64 the 4×4 micro-kernel has an AVX2+FMA implementation
// (gemm_amd64.s): the four C-tile rows live in four YMM accumulators and
// each k step is one 256-bit B load, four A broadcasts and four fused
// multiply-adds. Feature detection runs once at init via CPUID/XGETBV;
// CPUs without AVX2+FMA (or OS contexts not saving YMM state) fall back
// to the portable scalar kernel.
//
// The FMA kernel contracts each a·b+c without an intermediate rounding,
// so packed products differ from the naive loops in the last bits — all
// equivalence tests against the naive reference are tolerance-based
// (gemm_test.go), while serial-vs-parallel equivalence stays exact
// because both run the same kernel in the same per-element order.
var useFMAKernel = cpuHasAVX2FMA()

// cpuHasAVX2FMA reports AVX2+FMA support with OS-enabled YMM state.
func cpuHasAVX2FMA() bool

// gemmKernel4x4FMA is the AVX2+FMA micro-kernel. c must expose at least
// 3·ldc+4 elements, ap and bp at least 4·kc.
//
//go:noescape
func gemmKernel4x4FMA(c []float64, ldc int, ap, bp []float64, kc, mode int)

func gemmKernel4x4(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	if useFMAKernel {
		gemmKernel4x4FMA(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel4x4Go(c, ldc, ap, bp, kc, mode)
}
