//go:build amd64

package mat

// amd64 kernel dispatch and feature detection. Two assembly tiers exist
// above the portable kernels:
//
//	AVX2+FMA (gemm_amd64.s, gemm32_amd64.s): 4×4 f64 / 4×8 f32 tiles in
//	YMM accumulators — one 256-bit B load, MR broadcasts and MR fused
//	multiply-adds per k step.
//	AVX-512 (same files): 8×16 tiles in both precisions held in ZMM
//	accumulators — f32 rows are one 512-bit vector (eight embedded-
//	broadcast FMAs per k step), f64 rows two (each A broadcast feeds a
//	pair of FMAs, halving load-port pressure per flop).
//
// Detection runs once at package init via CPUID/XGETBV: the AVX-512 tier
// additionally requires the OS to save ZMM/opmask state (XCR0) and the
// AVX512F+DQ leaves, so OS contexts that disable ZMM fall back to AVX2
// cleanly. IMRDMD_GEMM_KERNEL can cap the tier (tune.go).
//
// The FMA kernels contract each a·b+c without intermediate rounding, so
// packed products differ from the naive loops in the last bits — all
// equivalence tests against the naive reference are tolerance-based,
// while serial-vs-parallel equivalence stays exact because both run the
// same kernel in the same per-element order. At equal KC the AVX2 and
// AVX-512 asm kernels also agree bit for bit with each other: both
// accumulate every output element over the identical p-order FMA chain
// (dispatch_test.go pins this on AVX-512 hosts).

// cpuHasAVX2FMA reports AVX2+FMA support with OS-enabled YMM state.
func cpuHasAVX2FMA() bool

// cpuHasAVX512 reports AVX-512F+DQ support with OS-enabled ZMM, opmask
// and Hi16_ZMM state.
func cpuHasAVX512() bool

// cpuidRaw executes CPUID with the given leaf/subleaf and returns the
// four result registers.
func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// detectKernelTier reports the widest micro-kernel tier the host can run.
func detectKernelTier() kernelTier {
	switch {
	case cpuHasAVX512():
		return tierAVX512
	case cpuHasAVX2FMA():
		return tierAVX2
	default:
		return tierGeneric
	}
}

// cpuidCaches enumerates the data-cache hierarchy: Intel's deterministic
// cache parameters (leaf 4) when present, otherwise AMD's legacy L1/L2/L3
// leaves (0x8000_0005/6). Returns zeros when neither reports (masked
// hypervisor leaves); the caller falls back to a timed sweep.
func cpuidCaches() cacheInfo {
	var ci cacheInfo
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf >= 4 {
		for sub := uint32(0); sub < 16; sub++ {
			a, b, c, _ := cpuidRaw(4, sub)
			ctype := a & 0x1f
			if ctype == 0 {
				break
			}
			// Data (1) and unified (3) caches only.
			if ctype != 1 && ctype != 3 {
				continue
			}
			level := (a >> 5) & 7
			lineSize := int(b&0xfff) + 1
			partitions := int((b>>12)&0x3ff) + 1
			ways := int((b>>22)&0x3ff) + 1
			sets := int(c) + 1
			size := lineSize * partitions * ways * sets
			switch level {
			case 1:
				ci.l1d = size
			case 2:
				ci.l2 = size
			case 3:
				ci.l3 = size
			}
		}
	}
	if ci.l1d != 0 {
		return ci
	}
	maxExt, _, _, _ := cpuidRaw(0x80000000, 0)
	if maxExt >= 0x80000006 {
		// AMD legacy leaves: sizes in KiB packed into register high bytes.
		_, _, c5, _ := cpuidRaw(0x80000005, 0)
		ci.l1d = int(c5>>24) << 10
		_, _, c6, d6 := cpuidRaw(0x80000006, 0)
		ci.l2 = int(c6>>16) << 10
		ci.l3 = int(d6>>18) << 19 // L3 in 512 KiB units
	}
	return ci
}

// gemmKernel4x4FMA is the AVX2+FMA micro-kernel. c must expose at least
// 3·ldc+4 elements, ap and bp at least 4·kc.
//
//go:noescape
func gemmKernel4x4FMA(c []float64, ldc int, ap, bp []float64, kc, mode int)

// gemmKernel8x16dAVX512 is the AVX-512 float64 micro-kernel. c must
// expose at least 7·ldc+16 elements, ap at least 8·kc and bp at least
// 16·kc.
//
//go:noescape
func gemmKernel8x16dAVX512(c []float64, ldc int, ap, bp []float64, kc, mode int)

func gemmKernel4x4(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	if gemmTier >= tierAVX2 {
		gemmKernel4x4FMA(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel4x4Go(c, ldc, ap, bp, kc, mode)
}

func gemmKernel8x16d(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	if gemmTier >= tierAVX512 {
		gemmKernel8x16dAVX512(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel8x16dGo(c, ldc, ap, bp, kc, mode)
}
