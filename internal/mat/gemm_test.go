package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imrdmd/internal/compute"
)

// refMul is the retained naive reference: a plain triple loop over the
// logical (possibly transposed) operands, accumulating in a fresh output.
// Every packed-GEMM property test checks against it.
func refMul(a view[float64], aT bool, b view[float64], bT bool) *Dense {
	ar, ac := a.r, a.c
	if aT {
		ar, ac = ac, ar
	}
	bc := b.c
	if bT {
		bc = b.r
	}
	at := func(i, p int) float64 {
		if aT {
			return a.data[p*a.stride+i]
		}
		return a.data[i*a.stride+p]
	}
	bt := func(p, j int) float64 {
		if bT {
			return b.data[j*b.stride+p]
		}
		return b.data[p*b.stride+j]
	}
	out := NewDense(ar, bc)
	for i := 0; i < ar; i++ {
		for p := 0; p < ac; p++ {
			aip := at(i, p)
			for j := 0; j < bc; j++ {
				out.Data[i*bc+j] += aip * bt(p, j)
			}
		}
	}
	return out
}

func assertClose(t *testing.T, op string, want, got *Dense, tol float64) {
	t.Helper()
	if want.R != got.R || want.C != got.C {
		t.Fatalf("%s: shape %dx%d want %dx%d", op, got.R, got.C, want.R, want.C)
	}
	scale := 1 + want.MaxAbs()
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > tol*scale {
			t.Fatalf("%s: element %d differs: %v vs %v", op, i, got.Data[i], want.Data[i])
		}
	}
}

// TestGemmRandomShapes drives the packed kernel directly (bypassing the
// size heuristics that would route small shapes to the naive loops) over
// randomized shapes — odd sizes, 1×N, N×1, empty and remainder rows/cols
// in every combination of transposes — against the naive reference.
// go test -race runs this too, covering the pack-buffer pool.
func TestGemmRandomShapes(t *testing.T) {
	dims := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 33}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		aT := rng.Intn(2) == 1
		bT := rng.Intn(2) == 1
		var a, b *Dense
		if aT {
			a = randDense(rng, k, m)
		} else {
			a = randDense(rng, m, k)
		}
		if bT {
			b = randDense(rng, n, k)
		} else {
			b = randDense(rng, k, n)
		}
		want := refMul(denseView(a), aT, denseView(b), bT)
		got := NewDense(m, n)
		// Dirty output: gemmSet must fully overwrite.
		for i := range got.Data {
			got.Data[i] = math.Inf(1)
		}
		gemmView(nil, denseView(got), denseView(a), aT, denseView(b), bT, gemmSet)
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-12*(1+want.MaxAbs()) {
				t.Logf("seed %d m=%d k=%d n=%d aT=%v bT=%v: element %d %v vs %v",
					seed, m, k, n, aT, bT, i, got.Data[i], want.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmAccumulateModes checks the += and −= kernel modes used by QR's
// trailing-matrix update, on strided views into a larger matrix.
func TestGemmAccumulateModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	host := randDense(rng, 40, 50) // views below are strided windows into this
	a := randDense(rng, 13, 40)
	b := randDense(rng, 40, 50)

	dstRows := rowsView(host, 3, 16) // 13×50, stride 50
	before := host.Clone()
	prod := refMul(denseView(a), false, denseView(b), false) // 13×50

	gemmView(nil, dstRows, denseView(a), false, denseView(b), false, gemmAdd)
	for i := 0; i < 13; i++ {
		for j := 0; j < 50; j++ {
			want := before.At(3+i, j) + prod.At(i, j)
			if math.Abs(host.At(3+i, j)-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("gemmAdd: (%d,%d) = %v want %v", i, j, host.At(3+i, j), want)
			}
		}
	}
	gemmView(nil, dstRows, denseView(a), false, denseView(b), false, gemmSub)
	for i := 0; i < 13; i++ {
		for j := 0; j < 50; j++ {
			want := before.At(3+i, j)
			if math.Abs(host.At(3+i, j)-want) > 1e-11*(1+math.Abs(want)) {
				t.Fatalf("gemmSub did not undo gemmAdd at (%d,%d): %v want %v", i, j, host.At(3+i, j), want)
			}
		}
	}
}

// TestGemmLargeAgainstNaive compares the routed Mul/MulT/Gram entry points
// (which take the packed path at these sizes) against the retained naive
// kernels on shapes exercising remainder tiles in both dimensions.
func TestGemmLargeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct{ m, k, n int }{
		{129, 257, 131}, // remainders in every blocking dimension
		{128, 256, 128}, // exact multiples of every blocking constant
		{1, 300, 200},   // single output row
		{300, 1, 200},   // k=1: every tile is one rank-1 step
		{200, 300, 1},   // single output column
		{97, 513, 64},   // kc remainder across two depth panels
	}
	for _, c := range cases {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		want := NewDense(c.m, c.n)
		mulRange(want, a, b, 0, c.m)
		assertClose(t, "Mul", want, Mul(a, b), 1e-12)

		at := randDense(rng, c.k, c.m) // MulT: atᵀ·b
		wantT := NewDense(c.m, c.n)
		mulTRange(wantT, at, b, 0, c.m)
		assertClose(t, "MulT", wantT, MulT(at, b), 1e-12)
	}

	g := randDense(rng, 123, 77)
	wantGC := refMul(denseView(g), true, denseView(g), false)
	assertClose(t, "Gram cols", wantGC, Gram(g, true), 1e-12)
	wantGR := refMul(denseView(g), false, denseView(g), true)
	assertClose(t, "Gram rows", wantGR, Gram(g, false), 1e-12)
}

// TestGemmParallelBitIdentical pins the panel-aligned fan-out contract:
// the packed path must produce bit-identical output on a multi-lane
// engine and serially, including at sizes with ragged final panels.
func TestGemmParallelBitIdentical(t *testing.T) {
	eng := compute.NewEngine(7)
	defer eng.Close()
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ m, k, n int }{
		{257, 180, 131}, // 3 ragged MC panels
		{512, 512, 96},
		{130, 700, 40},
		{96, 800, 64},  // shorter than one MC panel: sub-panel row bands
		{9, 99999, 9},  // minimal band width (above threshold, m barely ≥ 2·mr)
		{17, 99999, 9}, // barely ≥ 2·mr for the 8-row AVX-512 tile
	} {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		serial := NewDense(c.m, c.n)
		gemmView(nil, denseView(serial), denseView(a), false, denseView(b), false, gemmSet)
		parallel := NewDense(c.m, c.n)
		gemmView(eng, denseView(parallel), denseView(a), false, denseView(b), false, gemmSet)
		for i := range serial.Data {
			if serial.Data[i] != parallel.Data[i] {
				t.Fatalf("%dx%dx%d: element %d differs bitwise: %v vs %v",
					c.m, c.k, c.n, i, serial.Data[i], parallel.Data[i])
			}
		}
	}
}

// TestGemmKernelsAgree cross-checks the architecture-specific micro-kernel
// against the portable Go one on identical packed strips. The FMA kernel
// contracts multiply-adds, so agreement is tolerance-based.
func TestGemmKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, kc := range []int{1, 2, 7, 64, 255, 256} {
		ap := make([]float64, 4*kc)
		bp := make([]float64, 4*kc)
		for i := range ap {
			ap[i] = rng.NormFloat64()
			bp[i] = rng.NormFloat64()
		}
		for mode := gemmSet; mode <= gemmSub; mode++ {
			want := make([]float64, 16)
			got := make([]float64, 16)
			for i := range want {
				v := rng.NormFloat64()
				want[i] = v
				got[i] = v
			}
			gemmKernel4x4Go(want, 4, ap, bp, kc, mode)
			gemmKernel4x4(got, 4, ap, bp, kc, mode)
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-11*(1+math.Abs(want[i])) {
					t.Fatalf("kc=%d mode=%d: element %d: %v vs %v", kc, mode, i, got[i], want[i])
				}
			}
		}
	}
}
