package mat

import "imrdmd/internal/compute"

// This file adapts the compute.Workspace buffer pool to the matrix types:
// shape-keyed Get/Put of GDense[T] and CDense scratch, generic over the
// element tier, plus the float64 ↔ float32 conversions that move data
// between the precision tiers. A nil workspace always degrades to plain
// allocation, so every With-variant can be called with ws == nil.

// GetDenseOf borrows a zeroed r×c matrix of element type T from ws (nil
// ws allocates). Return it with PutDense when done.
func GetDenseOf[T Element](ws *compute.Workspace, r, c int) *GDense[T] {
	return &GDense[T]{R: r, C: c, Data: compute.GetFloatsZero[T](ws, r*c)}
}

// GetDense borrows a zeroed r×c float64 matrix from ws.
func GetDense(ws *compute.Workspace, r, c int) *Dense {
	return GetDenseOf[float64](ws, r, c)
}

// GetDenseRawOf borrows an r×c matrix of element type T whose contents
// are unspecified — for callers that overwrite every element before
// reading (e.g. feeding dmd.ReconstructModesInto, which zeroes its output
// itself).
func GetDenseRawOf[T Element](ws *compute.Workspace, r, c int) *GDense[T] {
	return &GDense[T]{R: r, C: c, Data: compute.GetFloats[T](ws, r*c)}
}

// GetDenseRaw borrows an r×c float64 matrix with unspecified contents.
func GetDenseRaw(ws *compute.Workspace, r, c int) *Dense {
	return GetDenseRawOf[float64](ws, r, c)
}

// PutDense returns a matrix's storage to the pool. The matrix must not be
// used afterwards. Nil m or ws is a no-op, as is a view (ColsView,
// RowsView): a view's storage belongs to its parent, so recycling it here
// would hand aliased memory to an unrelated borrower.
func PutDense[T Element](ws *compute.Workspace, m *GDense[T]) {
	if m == nil || m.noPool {
		return
	}
	compute.PutFloats(ws, m.Data)
	m.Data = nil
}

// GetCDense borrows a zeroed r×c complex matrix from ws.
func GetCDense(ws *compute.Workspace, r, c int) *CDense {
	return &CDense{R: r, C: c, Data: ws.GetC128Zero(r * c)}
}

// PutCDense returns a complex matrix's storage to the pool.
func PutCDense(ws *compute.Workspace, m *CDense) {
	if m == nil {
		return
	}
	ws.PutC128(m.Data)
	m.Data = nil
}

// CloneWith copies m into a (tightly packed) matrix borrowed from ws.
func CloneWith[T Element](ws *compute.Workspace, m *GDense[T]) *GDense[T] {
	out := GetDenseRawOf[T](ws, m.R, m.C)
	if m.packed() {
		copy(out.Data, m.Data)
		return out
	}
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// ColSliceWith copies columns [j0, j1) of m into a matrix borrowed from ws.
func ColSliceWith[T Element](ws *compute.Workspace, m *GDense[T], j0, j1 int) *GDense[T] {
	if j0 < 0 || j1 > m.C || j0 > j1 {
		panic("mat: ColSliceWith out of range")
	}
	out := GetDenseRawOf[T](ws, m.R, j1-j0)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(i)[j0:j1])
	}
	return out
}

// SubsampleWith copies every stride-th column (starting at 0) into a
// matrix borrowed from ws.
func SubsampleWith[T Element](ws *compute.Workspace, m *GDense[T], stride int) *GDense[T] {
	if stride <= 1 {
		return CloneWith(ws, m)
	}
	n := (m.C + stride - 1) / stride
	out := GetDenseRawOf[T](ws, m.R, n)
	for i := 0; i < m.R; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := 0, 0; j < m.C; k, j = k+1, j+stride {
			dst[k] = src[j]
		}
	}
	return out
}

// HStackWith builds [A B] in a matrix borrowed from ws.
func HStackWith[T Element](ws *compute.Workspace, a, b *GDense[T]) *GDense[T] {
	if a.R != b.R {
		panic("mat: HStack row mismatch")
	}
	out := GetDenseRawOf[T](ws, a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		row := out.Row(i)
		copy(row[:a.C], a.Row(i))
		copy(row[a.C:], b.Row(i))
	}
	return out
}

// VStackWith builds [A; B] in a matrix borrowed from ws.
func VStackWith[T Element](ws *compute.Workspace, a, b *GDense[T]) *GDense[T] {
	if a.C != b.C {
		panic("mat: VStack col mismatch")
	}
	out := GetDenseRawOf[T](ws, a.R+b.R, a.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i), a.Row(i))
	}
	for i := 0; i < b.R; i++ {
		copy(out.Row(a.R+i), b.Row(i))
	}
	return out
}

// TWith copies the transpose of m into a matrix borrowed from ws.
func TWith[T Element](ws *compute.Workspace, m *GDense[T]) *GDense[T] {
	t := GetDenseRawOf[T](ws, m.C, m.R)
	const bs = 64
	ms := m.RowStride()
	for ii := 0; ii < m.R; ii += bs {
		iMax := min(ii+bs, m.R)
		for jj := 0; jj < m.C; jj += bs {
			jMax := min(jj+bs, m.C)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*ms:]
				for j := jj; j < jMax; j++ {
					t.Data[j*m.R+i] = row[j]
				}
			}
		}
	}
	return t
}

// ComplexWith converts a real matrix to a complex one borrowed from ws.
func ComplexWith(ws *compute.Workspace, a *Dense) *CDense {
	out := &CDense{R: a.R, C: a.C, Data: ws.GetC128(a.R * a.C)}
	for i := 0; i < a.R; i++ {
		orow := out.Data[i*a.C : (i+1)*a.C]
		for j, v := range a.Row(i) {
			orow[j] = complex(v, 0)
		}
	}
	return out
}

// CMulWith computes the complex product a*b into a matrix borrowed from
// ws (zeroed internally before accumulation).
func CMulWith(ws *compute.Workspace, a, b *CDense) *CDense {
	if a.C != b.R {
		panic("mat: CMul inner dimension mismatch")
	}
	out := GetCDense(ws, a.R, b.C)
	cmulInto(out, a, b)
	return out
}
