//go:build amd64

#include "textflag.h"

// func interleave4F64(dst []float64, dstStride int, src []float64, srcStride, n int)
//
// Interleaves four float64 rows into packed columns: dst[p*dstStride+r] =
// src[r*srcStride+p]. Processes four columns per iteration with a 4×4
// in-register transpose: one 256-bit load per row, VUNPCKL/HPD pairs,
// VPERM2F128 to assemble whole columns, four column stores. n must be a
// multiple of 4 (the Go wrapper peels the tail).
TEXT ·interleave4F64(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dstStride+24(FP), DX
	MOVQ src_base+32(FP), SI
	MOVQ srcStride+56(FP), R9
	MOVQ n+64(FP), CX

	SHLQ $3, DX         // dst stride in bytes
	SHLQ $3, R9         // src stride in bytes
	MOVQ SI, R10        // row 0
	LEAQ (SI)(R9*1), R11
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	MOVQ DX, R14
	SHLQ $2, R14        // dst advance per 4-column block

	SHRQ $2, CX         // column blocks
	JZ   done

block:
	VMOVUPD (R10), Y0   // r0[p..p+3]
	VMOVUPD (R11), Y1
	VMOVUPD (R12), Y2
	VMOVUPD (R13), Y3

	VUNPCKLPD Y1, Y0, Y4    // [r0p0 r1p0 r0p2 r1p2]
	VUNPCKHPD Y1, Y0, Y5    // [r0p1 r1p1 r0p3 r1p3]
	VUNPCKLPD Y3, Y2, Y6    // [r2p0 r3p0 r2p2 r3p2]
	VUNPCKHPD Y3, Y2, Y7    // [r2p1 r3p1 r2p3 r3p3]

	VPERM2F128 $0x20, Y6, Y4, Y8   // column p+0
	VPERM2F128 $0x20, Y7, Y5, Y9   // column p+1
	VPERM2F128 $0x31, Y6, Y4, Y10  // column p+2
	VPERM2F128 $0x31, Y7, Y5, Y11  // column p+3

	VMOVUPD Y8, (DI)
	VMOVUPD Y9, (DI)(DX*1)
	LEAQ    (DI)(DX*2), R8
	VMOVUPD Y10, (R8)
	VMOVUPD Y11, (R8)(DX*1)

	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ R14, DI
	DECQ CX
	JNZ  block

done:
	VZEROUPPER
	RET

// func interleave4F32(dst []float32, dstStride int, src []float32, srcStride, n int)
//
// Float32 variant: eight columns per iteration via a 4×8 register
// transpose (VUNPCKL/HPS + VSHUFPS build whole columns in each 128-bit
// lane; low lanes store columns p..p+3, VEXTRACTF128 highs store
// p+4..p+7). n must be a multiple of 8 (the Go wrapper peels the tail).
TEXT ·interleave4F32(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dstStride+24(FP), DX
	MOVQ src_base+32(FP), SI
	MOVQ srcStride+56(FP), R9
	MOVQ n+64(FP), CX

	SHLQ $2, DX         // dst stride in bytes
	SHLQ $2, R9         // src stride in bytes
	MOVQ SI, R10        // row 0
	LEAQ (SI)(R9*1), R11
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	MOVQ DX, R14
	SHLQ $3, R14        // dst advance per 8-column block

	SHRQ $3, CX         // column blocks
	JZ   done32

block32:
	VMOVUPS (R10), Y0   // r0[p..p+7]
	VMOVUPS (R11), Y1
	VMOVUPS (R12), Y2
	VMOVUPS (R13), Y3

	VUNPCKLPS Y1, Y0, Y4    // per lane [r0p0 r1p0 r0p1 r1p1]
	VUNPCKHPS Y1, Y0, Y5    // per lane [r0p2 r1p2 r0p3 r1p3]
	VUNPCKLPS Y3, Y2, Y6    // per lane [r2p0 r3p0 r2p1 r3p1]
	VUNPCKHPS Y3, Y2, Y7    // per lane [r2p2 r3p2 r2p3 r3p3]

	VSHUFPS $0x44, Y6, Y4, Y8    // columns p+0 | p+4
	VSHUFPS $0xEE, Y6, Y4, Y9    // columns p+1 | p+5
	VSHUFPS $0x44, Y7, Y5, Y10   // columns p+2 | p+6
	VSHUFPS $0xEE, Y7, Y5, Y11   // columns p+3 | p+7

	VMOVUPS X8, (DI)
	VMOVUPS X9, (DI)(DX*1)
	LEAQ    (DI)(DX*2), R8
	VMOVUPS X10, (R8)
	VMOVUPS X11, (R8)(DX*1)
	LEAQ    (R8)(DX*2), R8
	VEXTRACTF128 $1, Y8, X12
	VEXTRACTF128 $1, Y9, X13
	VEXTRACTF128 $1, Y10, X14
	VEXTRACTF128 $1, Y11, X15
	VMOVUPS X12, (R8)
	VMOVUPS X13, (R8)(DX*1)
	LEAQ    (R8)(DX*2), R8
	VMOVUPS X14, (R8)
	VMOVUPS X15, (R8)(DX*1)

	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ R14, DI
	DECQ CX
	JNZ  block32

done32:
	VZEROUPPER
	RET
