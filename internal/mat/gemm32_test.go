package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imrdmd/internal/compute"
)

// f32Tol is the relative tolerance for float32 GEMM results against the
// float64 reference: a kc=256 depth panel accumulates ~256 rounding steps
// of 2⁻²⁴ each, well inside 1e-4 for the normalized random operands used
// here.
const f32Tol = 1e-4

func randDense32(rng *rand.Rand, r, c int) *Dense32 {
	m := NewDense32(r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// toF64 widens for comparison against the float64 reference kernels.
func toF64(m *Dense32) *Dense {
	out := NewDense(m.R, m.C)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// TestGemm32RandomShapes drives the float32 packed kernel directly over
// randomized shapes — odd sizes, 1×N, N×1, empty and remainder rows/cols
// in every combination of transposes — against the float64 naive
// reference on the widened operands. Covers the 4×8 tile's edge handling
// (w < 8 strips) that the f64 4×4 path never exercises.
func TestGemm32RandomShapes(t *testing.T) {
	dims := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 33}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		aT := rng.Intn(2) == 1
		bT := rng.Intn(2) == 1
		var a, b *Dense32
		if aT {
			a = randDense32(rng, k, m)
		} else {
			a = randDense32(rng, m, k)
		}
		if bT {
			b = randDense32(rng, n, k)
		} else {
			b = randDense32(rng, k, n)
		}
		want := refMul(denseView(toF64(a)), aT, denseView(toF64(b)), bT)
		got := NewDense32(m, n)
		for i := range got.Data {
			got.Data[i] = float32(math.Inf(1)) // gemmSet must fully overwrite
		}
		gemmView(nil, denseView(got), denseView(a), aT, denseView(b), bT, gemmSet)
		for i := range want.Data {
			if math.Abs(want.Data[i]-float64(got.Data[i])) > f32Tol*(1+want.MaxAbs()) {
				t.Logf("seed %d m=%d k=%d n=%d aT=%v bT=%v: element %d %v vs %v",
					seed, m, k, n, aT, bT, i, got.Data[i], want.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestGemm32AccumulateModes checks the += and −= modes of the float32
// kernel on strided views, mirroring TestGemmAccumulateModes.
func TestGemm32AccumulateModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	host := randDense32(rng, 40, 50)
	a := randDense32(rng, 13, 40)
	b := randDense32(rng, 40, 50)

	dstRows := rowsView(host, 3, 16) // 13×50, stride 50
	before := host.Clone()
	prod := refMul(denseView(toF64(a)), false, denseView(toF64(b)), false)

	gemmView(nil, dstRows, denseView(a), false, denseView(b), false, gemmAdd)
	for i := 0; i < 13; i++ {
		for j := 0; j < 50; j++ {
			want := float64(before.At(3+i, j)) + prod.At(i, j)
			if math.Abs(float64(host.At(3+i, j))-want) > f32Tol*(1+math.Abs(want)) {
				t.Fatalf("gemmAdd: (%d,%d) = %v want %v", i, j, host.At(3+i, j), want)
			}
		}
	}
	gemmView(nil, dstRows, denseView(a), false, denseView(b), false, gemmSub)
	for i := 0; i < 13; i++ {
		for j := 0; j < 50; j++ {
			want := float64(before.At(3+i, j))
			if math.Abs(float64(host.At(3+i, j))-want) > f32Tol*(1+math.Abs(want)) {
				t.Fatalf("gemmSub did not undo gemmAdd at (%d,%d): %v want %v", i, j, host.At(3+i, j), want)
			}
		}
	}
}

// TestGemm32ParallelBitIdentical pins the fan-out contract for the f32
// tier too: engine and serial runs must agree bit for bit, since panel
// ownership and per-element accumulation order are identical.
func TestGemm32ParallelBitIdentical(t *testing.T) {
	eng := compute.NewEngine(7)
	defer eng.Close()
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ m, k, n int }{
		{257, 180, 131},
		{96, 800, 64},
		{9, 99999, 9},
	} {
		a := randDense32(rng, c.m, c.k)
		b := randDense32(rng, c.k, c.n)
		serial := NewDense32(c.m, c.n)
		gemmView(nil, denseView(serial), denseView(a), false, denseView(b), false, gemmSet)
		parallel := NewDense32(c.m, c.n)
		gemmView(eng, denseView(parallel), denseView(a), false, denseView(b), false, gemmSet)
		for i := range serial.Data {
			if serial.Data[i] != parallel.Data[i] {
				t.Fatalf("%dx%dx%d: element %d differs bitwise: %v vs %v",
					c.m, c.k, c.n, i, serial.Data[i], parallel.Data[i])
			}
		}
	}
}

// TestGemm32KernelsAgree cross-checks the architecture-specific float32
// micro-kernel against the portable Go one on identical packed strips.
func TestGemm32KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, kc := range []int{1, 2, 7, 64, 255, 256} {
		ap := make([]float32, 4*kc)
		bp := make([]float32, 8*kc)
		for i := range ap {
			ap[i] = float32(rng.NormFloat64())
		}
		for i := range bp {
			bp[i] = float32(rng.NormFloat64())
		}
		for mode := gemmSet; mode <= gemmSub; mode++ {
			want := make([]float32, 32)
			got := make([]float32, 32)
			for i := range want {
				v := float32(rng.NormFloat64())
				want[i] = v
				got[i] = v
			}
			gemmKernel4x8Go(want, 8, ap, bp, kc, mode)
			gemmKernel4x8(got, 8, ap, bp, kc, mode)
			for i := range want {
				w := float64(want[i])
				if math.Abs(w-float64(got[i])) > 1e-4*(1+math.Abs(w)) {
					t.Fatalf("kc=%d mode=%d: element %d: %v vs %v", kc, mode, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkMulF32 is the screening-tier counterpart of BenchmarkMul; the
// CI bench smoke step (-bench=.) exercises the 8-wide kernel path through
// it on every push.
func BenchmarkMulF32(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randDense32(rng, n, n)
			y := randDense32(rng, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Mul(x, y)
			}
		})
	}
}

func BenchmarkMulTF32(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(benchSize(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randDense32(rng, n, n)
			y := randDense32(rng, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = MulT(x, y)
			}
		})
	}
}
