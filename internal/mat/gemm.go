package mat

import (
	"unsafe"

	"imrdmd/internal/compute"
)

// This file is the packed, register-blocked GEMM that backs every dense
// multiply in the package (Mul/MulInto/MulT/Gram and QR's trailing-matrix
// update), generic over the element type. The layout follows the classic
// Goto/BLIS decomposition:
//
//	for jc over N by ncBlock:            (B panel column block)
//	  for pc over K by kcBlock:          (depth block)
//	    pack B[pc:pc+kc, jc:jc+nc]  →  bp  (strips of nr columns)
//	    for ic over M by mcBlock:        (A panel row block, parallel unit)
//	      pack A[ic:ic+mc, pc:pc+kc] → ap  (strips of mrTile rows)
//	      macro-kernel: mrTile×nr register tiles over (ap, bp)
//
// Packing copies both operands into contiguous, tile-ordered buffers so the
// micro-kernel streams unit-stride with no bounds-check or stride math in
// the inner loop, and so transposed operands (MulT, Gram's m·mᵀ) cost the
// same as plain ones — the transpose is absorbed by the packing read. Pack
// buffers are borrowed from a package-level compute.Workspace (which pools
// float32 and float64 size classes separately), so steady state packs are
// allocation-free in both tiers.
//
// The micro-kernel is per-type: the tile is always mrTile rows tall, and
// its width is one 256-bit vector of elements — 4 for float64, 8 for
// float32 (nrOf). float64 keeps the existing hand-unrolled 4×4 kernel
// (AVX2+FMA asm on amd64, portable Go elsewhere) bit-for-bit unchanged;
// float32 dispatches to a 4×8 kernel (gemm32_amd64.s / gemm32_generic.go)
// whose doubled vector width is where the screening tier's ~2× throughput
// comes from. Edge tiles (mr<4 or nr<tile width) run the same kernel into
// a zero-padded scratch tile and merge the valid region, so the hot path
// has no remainder branches.
//
// Parallelism: the engine fans out over mcBlock row panels (each worker
// packs its own A panels; the B panel is packed once by the caller and
// shared read-only). Panel boundaries align with tile boundaries and each
// output element is owned by exactly one worker with the same per-element
// accumulation order as the serial loop, so engine and serial runs agree
// bit for bit (mul_parallel_test.go and gemm_test.go pin this).
const (
	mrTile = 4 // micro-kernel rows (register tile height, both tiers)
	nrMax  = 8 // widest micro-kernel tile (float32)

	// kcBlock × nr is one packed B strip (8 KiB for f64, 8 KiB for f32 at
	// double width): resident in L1 across a whole row of tiles. mcBlock ×
	// kcBlock is one packed A panel (≤ 256 KiB): resident in L2 across the
	// nc loop. ncBlock bounds the shared B panel (≤ 1 MiB) so it stays
	// cache-friendly while amortizing A packing over as many columns as
	// possible.
	kcBlock = 256
	mcBlock = 128
	ncBlock = 512

	// gemmMinFlops is the m·k·n product below which the naive loops win:
	// packing two operands costs O(m·k + k·n) copies, which only pays
	// for itself once every packed element is reused a few times.
	gemmMinFlops = 1 << 14
)

// Micro-kernel output modes.
const (
	gemmSet = iota // dst tile = product
	gemmAdd        // dst tile += product
	gemmSub        // dst tile -= product
)

// packPool supplies pack buffers for all GEMM calls in the process. It is
// deliberately package-level (not the caller's workspace): pack buffers
// never escape a call, every caller needs the same two size classes per
// tier, and a shared pool keeps even ws==nil entry points allocation-free
// in steady state.
var packPool = compute.NewWorkspace()

// nrOf is the micro-kernel tile width for element type T: one 256-bit
// vector of elements (4 float64, 8 float32). The sizeof comparison is a
// per-instantiation constant, so the expression folds at compile time.
func nrOf[T Element]() int {
	var z T
	return 32 / int(unsafe.Sizeof(z))
}

// sliceOf reinterprets a float slice as its concrete element type (E and T
// are the same size whenever this is called, so the cast is layout-exact).
// It lets the generic macro-kernel hand packed strips to the non-generic,
// per-type micro-kernels without a copy.
func sliceOf[E, T Element](s []T) []E {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*E)(unsafe.Pointer(&s[0])), len(s))
}

// gemmKernel dispatches one register tile to the per-type micro-kernel:
// float64 → 4×4 (AVX2+FMA asm or portable Go), float32 → 4×8. The type
// branch folds per instantiation; the call itself is direct.
func gemmKernel[T Element](c []T, ldc int, ap, bp []T, kc, mode int) {
	var z T
	if unsafe.Sizeof(z) == 8 {
		gemmKernel4x4(sliceOf[float64](c), ldc, sliceOf[float64](ap), sliceOf[float64](bp), kc, mode)
		return
	}
	gemmKernel4x8(sliceOf[float32](c), ldc, sliceOf[float32](ap), sliceOf[float32](bp), kc, mode)
}

// view is a strided window into row-major storage: element (i, j) lives at
// data[i*stride + j]. It lets the GEMM operate on submatrices (QR's
// trailing columns) without copying them out first.
type view[T Element] struct {
	data   []T
	r, c   int
	stride int
}

func denseView[T Element](m *GDense[T]) view[T] {
	return view[T]{data: m.Data, r: m.R, c: m.C, stride: m.C}
}

// rowsView is rows [i0, i1) of m as a view.
func rowsView[T Element](m *GDense[T], i0, i1 int) view[T] {
	if i0 == i1 {
		return view[T]{r: 0, c: m.C, stride: m.C}
	}
	return view[T]{data: m.Data[i0*m.C:], r: i1 - i0, c: m.C, stride: m.C}
}

// gemmView computes dst = A·B (mode gemmSet), dst += A·B (gemmAdd) or
// dst −= A·B (gemmSub), where A is a (or aᵀ when aT) and B is b (or bᵀ
// when bT). dst must be sized M×N with M = rows(A), N = cols(B); the
// shared inner dimension K is taken from the operands. dst must not
// overlap a or b. A nil engine (or a small problem) runs serially.
func gemmView[T Element](e *compute.Engine, dst view[T], a view[T], aT bool, b view[T], bT bool, mode int) {
	m, n := dst.r, dst.c
	k := a.c
	if aT {
		k = a.r
	}
	kb := b.r
	if bT {
		kb = b.c
	}
	if k != kb {
		panic("mat: gemm inner dimension mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if mode == gemmSet {
			for i := 0; i < m; i++ {
				row := dst.data[i*dst.stride : i*dst.stride+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	nr := nrOf[T]()

	// The parallel unit is normally a full MC panel. A matrix shorter than
	// one panel would lose all fan-out, so its single panel is subdivided
	// into mrTile-aligned row bands, one per lane: strip boundaries stay on
	// the same global 4-row grid and every output element keeps its serial
	// per-element accumulation order, so the result is still bit-identical
	// to the serial run for any band size.
	unit := mcBlock
	wantParallel := fanOut(e, m*k*n)
	if wantParallel && m <= mcBlock && m >= 2*mrTile {
		perLane := (m + e.Workers() - 1) / e.Workers()
		unit = (perLane + mrTile - 1) / mrTile * mrTile
	}
	panels := (m + unit - 1) / unit
	parallel := panels > 1 && wantParallel

	bp := compute.GetFloats[T](packPool, ((ncBlock+nr-1)/nr)*nr*kcBlock)
	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			packB(bp, b, bT, pc, kc, jc, nc, nr)
			md := mode
			if mode == gemmSet && pc > 0 {
				md = gemmAdd
			}
			run := func(lo, hi int) {
				ap := compute.GetFloats[T](packPool, unit*kcBlock)
				for pi := lo; pi < hi; pi++ {
					ic := pi * unit
					mc := min(unit, m-ic)
					packA(ap, a, aT, ic, mc, pc, kc)
					gemmMacro(dst, ap, bp, ic, mc, jc, nc, kc, nr, md)
				}
				compute.PutFloats(packPool, ap)
			}
			if parallel {
				e.ParallelFor(panels, run)
			} else {
				run(0, panels)
			}
		}
	}
	compute.PutFloats(packPool, bp)
}

// packA copies the mc×kc block of A at (ic, pc) into ap as strips of
// mrTile rows: strip s holds rows [ic+s·mr, ic+s·mr+mr) laid out p-major
// (ap[s·kc·mr + p·mr + r]), zero-padded to a full strip at the edge. When
// aT is set the logical A is aᵀ, i.e. element (i, p) reads a.data[p][i].
func packA[T Element](ap []T, a view[T], aT bool, ic, mc, pc, kc int) {
	off := 0
	for s := 0; s < mc; s += mrTile {
		mr := min(mrTile, mc-s)
		if aT {
			for p := 0; p < kc; p++ {
				src := a.data[(pc+p)*a.stride+ic+s:]
				for r := 0; r < mr; r++ {
					ap[off+r] = src[r]
				}
				for r := mr; r < mrTile; r++ {
					ap[off+r] = 0
				}
				off += mrTile
			}
			continue
		}
		r0 := a.data[(ic+s)*a.stride+pc:]
		var r1, r2, r3 []T
		if mr > 1 {
			r1 = a.data[(ic+s+1)*a.stride+pc:]
		}
		if mr > 2 {
			r2 = a.data[(ic+s+2)*a.stride+pc:]
		}
		if mr > 3 {
			r3 = a.data[(ic+s+3)*a.stride+pc:]
		}
		switch mr {
		case 4:
			for p := 0; p < kc; p++ {
				ap[off] = r0[p]
				ap[off+1] = r1[p]
				ap[off+2] = r2[p]
				ap[off+3] = r3[p]
				off += 4
			}
		default:
			for p := 0; p < kc; p++ {
				ap[off] = r0[p]
				if mr > 1 {
					ap[off+1] = r1[p]
				} else {
					ap[off+1] = 0
				}
				if mr > 2 {
					ap[off+2] = r2[p]
				} else {
					ap[off+2] = 0
				}
				ap[off+3] = 0
				off += 4
			}
		}
	}
}

// packB copies the kc×nc block of B at (pc, jc) into bp as strips of nr
// columns: strip s holds columns [jc+s·nr, jc+s·nr+nr) laid out p-major
// (bp[s·kc·nr + p·nr + t]), zero-padded at the edge. When bT is set the
// logical B is bᵀ, i.e. element (p, j) reads b.data[j][p].
func packB[T Element](bp []T, b view[T], bT bool, pc, kc, jc, nc, nr int) {
	off := 0
	for s := 0; s < nc; s += nr {
		w := min(nr, nc-s)
		if bT {
			// Columns of the logical B are rows of b; gather w of them.
			var cols [nrMax][]T
			for t := 0; t < w; t++ {
				cols[t] = b.data[(jc+s+t)*b.stride+pc:]
			}
			for p := 0; p < kc; p++ {
				for t := 0; t < w; t++ {
					bp[off+t] = cols[t][p]
				}
				for t := w; t < nr; t++ {
					bp[off+t] = 0
				}
				off += nr
			}
			continue
		}
		if w == nr {
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.stride+jc+s : (pc+p)*b.stride+jc+s+nr]
				copy(bp[off:off+nr], src)
				off += nr
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.stride+jc+s:]
				for t := 0; t < w; t++ {
					bp[off+t] = src[t]
				}
				for t := w; t < nr; t++ {
					bp[off+t] = 0
				}
				off += nr
			}
		}
	}
}

// gemmMacro runs the register-tile sweep of one packed A panel against the
// packed B panel: B strips outer (each strip stays L1-resident across the
// panel's rows), A strips inner. Interior tiles store straight into dst;
// edge tiles go through a zero-padded scratch tile and merge.
func gemmMacro[T Element](dst view[T], ap, bp []T, ic, mc, jc, nc, kc, nr, mode int) {
	var tile [mrTile * nrMax]T
	for js := 0; js < nc; js += nr {
		bstrip := bp[(js/nr)*kc*nr:]
		w := min(nr, nc-js)
		for is := 0; is < mc; is += mrTile {
			astrip := ap[(is/mrTile)*kc*mrTile:]
			mr := min(mrTile, mc-is)
			ci := (ic+is)*dst.stride + jc + js
			if mr == mrTile && w == nr {
				gemmKernel(dst.data[ci:], dst.stride, astrip, bstrip, kc, mode)
				continue
			}
			for i := range tile[:mrTile*nr] {
				tile[i] = 0
			}
			gemmKernel(tile[:], nr, astrip, bstrip, kc, gemmSet)
			for r := 0; r < mr; r++ {
				drow := dst.data[ci+r*dst.stride : ci+r*dst.stride+w]
				trow := tile[r*nr : r*nr+w]
				switch mode {
				case gemmAdd:
					for t := range drow {
						drow[t] += trow[t]
					}
				case gemmSub:
					for t := range drow {
						drow[t] -= trow[t]
					}
				default:
					copy(drow, trow)
				}
			}
		}
	}
}

// gemmKernel4x4Go is the portable float64 micro-kernel: a 4×4 tile of dst
// (row stride ldc) gets the product of a packed mrTile-row A strip and a
// packed 4-column B strip over kc steps. Sixteen scalar accumulators
// live in registers across the k loop; the tile is touched once at the
// end. It is the only kernel on non-amd64 builds and the fallback when
// the CPU lacks AVX2/FMA; gemm_test.go pins it against the assembly path.
func gemmKernel4x4Go(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	i := 0
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
		b0, b1, b2, b3 := bp[i], bp[i+1], bp[i+2], bp[i+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		i += 4
	}
	r0 := c[0:4:4]
	r1 := c[ldc : ldc+4 : ldc+4]
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	switch mode {
	case gemmAdd:
		r0[0] += c00
		r0[1] += c01
		r0[2] += c02
		r0[3] += c03
		r1[0] += c10
		r1[1] += c11
		r1[2] += c12
		r1[3] += c13
		r2[0] += c20
		r2[1] += c21
		r2[2] += c22
		r2[3] += c23
		r3[0] += c30
		r3[1] += c31
		r3[2] += c32
		r3[3] += c33
	case gemmSub:
		r0[0] -= c00
		r0[1] -= c01
		r0[2] -= c02
		r0[3] -= c03
		r1[0] -= c10
		r1[1] -= c11
		r1[2] -= c12
		r1[3] -= c13
		r2[0] -= c20
		r2[1] -= c21
		r2[2] -= c22
		r2[3] -= c23
		r3[0] -= c30
		r3[1] -= c31
		r3[2] -= c32
		r3[3] -= c33
	default:
		r0[0] = c00
		r0[1] = c01
		r0[2] = c02
		r0[3] = c03
		r1[0] = c10
		r1[1] = c11
		r1[2] = c12
		r1[3] = c13
		r2[0] = c20
		r2[1] = c21
		r2[2] = c22
		r2[3] = c23
		r3[0] = c30
		r3[1] = c31
		r3[2] = c32
		r3[3] = c33
	}
}

// gemmKernel4x8Go is the portable float32 micro-kernel: a 4×8 tile of dst
// (row stride ldc) accumulates the product of a packed 4-row A strip and a
// packed 8-column B strip over kc steps. The tile is one 256-bit vector of
// float32 wide — the same register shape as the f64 kernel's 4×4 at twice
// the element count, which is where the screening tier's throughput comes
// from on SIMD builds (gemm32_amd64.s); this Go version is the non-amd64 /
// no-AVX2 fallback and the reference the asm kernel is pinned against.
func gemmKernel4x8Go(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	var acc [mrTile][8]float32
	ia, ib := 0, 0
	for p := 0; p < kc; p++ {
		b := bp[ib : ib+8 : ib+8]
		a := ap[ia : ia+4 : ia+4]
		for r := 0; r < mrTile; r++ {
			ar := a[r]
			cr := &acc[r]
			for t := 0; t < 8; t++ {
				cr[t] += ar * b[t]
			}
		}
		ia += 4
		ib += 8
	}
	for r := 0; r < mrTile; r++ {
		drow := c[r*ldc : r*ldc+8 : r*ldc+8]
		cr := &acc[r]
		switch mode {
		case gemmAdd:
			for t := 0; t < 8; t++ {
				drow[t] += cr[t]
			}
		case gemmSub:
			for t := 0; t < 8; t++ {
				drow[t] -= cr[t]
			}
		default:
			for t := 0; t < 8; t++ {
				drow[t] = cr[t]
			}
		}
	}
}
