package mat

import (
	"unsafe"

	"imrdmd/internal/compute"
)

// This file is the packed, register-blocked GEMM that backs every dense
// multiply in the package (Mul/MulInto/MulT/Gram and QR's trailing-matrix
// update), generic over the element type. The layout follows the classic
// Goto/BLIS decomposition:
//
//	for jc over N by NC:                (B panel column block)
//	  for pc over K by KC:              (depth block)
//	    pack B[pc:pc+kc, jc:jc+nc]  →  bp  (strips of NR columns)
//	    for ic over M by MC:            (A panel row block, parallel unit)
//	      pack A[ic:ic+mc, pc:pc+kc] → ap  (strips of MR rows)
//	      macro-kernel: MR×NR register tiles over (ap, bp)
//
// Packing (pack.go) copies both operands into contiguous, tile-ordered
// buffers so the micro-kernel streams unit-stride with no bounds-check or
// stride math in the inner loop, and so transposed operands (MulT, Gram's
// m·mᵀ) cost the same as plain ones — the transpose is absorbed by the
// packing read. Pack buffers are borrowed from a package-level
// compute.Workspace (which pools float32 and float64 size classes
// separately), so steady state packs are allocation-free in both tiers.
//
// Tile geometry and cache blocking are per-ISA and per-type, resolved at
// boot (tune.go): the micro-tile is MR rows by one vector of elements —
// 4×4 f64 / 4×8 f32 on the 256-bit tiers, 8×8 f64 / 8×16 f32 on the
// AVX-512 tier — and KC/MC/NC are derived from the probed cache sizes
// (IMRDMD_GEMM_TUNE=off pins the historical 256/128/512). Edge tiles
// (rows < MR or width < NR) run the same kernel into a zero-padded
// scratch tile and merge the valid region, so the hot path has no
// remainder branches.
//
// Parallelism: the engine fans out over MC row panels (each worker packs
// its own A panels; the B panel is packed once by the caller and shared
// read-only). Panel boundaries align with tile boundaries and each output
// element is owned by exactly one worker with the same per-element
// accumulation order as the serial loop, so engine and serial runs agree
// bit for bit (mul_parallel_test.go and gemm_test.go pin this).
const (
	mrMax = 8  // tallest micro-kernel tile (AVX-512 tiers)
	nrMax = 16 // widest micro-kernel tile (float32 AVX-512)

	// gemmMinFlops is the m·k·n product below which the naive loops win:
	// packing two operands costs O(m·k + k·n) copies, which only pays for
	// itself once every packed element is reused a few times. Revalidated
	// for the asm pack routines (PR 7): the measured crossover on both the
	// AVX2 and AVX-512 tiers sits just under this boundary
	// (threshold_test.go pins the routing decision).
	gemmMinFlops = 1 << 14
)

// Micro-kernel output modes.
const (
	gemmSet = iota // dst tile = product
	gemmAdd        // dst tile += product
	gemmSub        // dst tile -= product
)

// packPool supplies pack buffers for all GEMM calls in the process. It is
// deliberately package-level (not the caller's workspace): pack buffers
// never escape a call, every caller needs the same two size classes per
// tier, and a shared pool keeps even ws==nil entry points allocation-free
// in steady state.
var packPool = compute.NewWorkspace()

// sliceOf reinterprets a float slice as its concrete element type (E and T
// are the same size whenever this is called, so the cast is layout-exact).
// It lets the generic macro-kernel hand packed strips to the non-generic,
// per-type micro-kernels without a copy.
func sliceOf[E, T Element](s []T) []E {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*E)(unsafe.Pointer(&s[0])), len(s))
}

// gemmKernel dispatches one register tile to the per-type, per-tier
// micro-kernel: 4×4 f64 / 4×8 f32 on the generic and AVX2 tiers, 8×16 in
// both precisions on the AVX-512 tier. The type branch folds per
// instantiation; the tier is the same one gemmParams sized the packed
// strips for.
func gemmKernel[T Element](c []T, ldc int, ap, bp []T, kc, mode int) {
	var z T
	if unsafe.Sizeof(z) == 8 {
		if gemmTier == tierAVX512 {
			gemmKernel8x16d(sliceOf[float64](c), ldc, sliceOf[float64](ap), sliceOf[float64](bp), kc, mode)
		} else {
			gemmKernel4x4(sliceOf[float64](c), ldc, sliceOf[float64](ap), sliceOf[float64](bp), kc, mode)
		}
		return
	}
	if gemmTier == tierAVX512 {
		gemmKernel8x16s(sliceOf[float32](c), ldc, sliceOf[float32](ap), sliceOf[float32](bp), kc, mode)
	} else {
		gemmKernel4x8(sliceOf[float32](c), ldc, sliceOf[float32](ap), sliceOf[float32](bp), kc, mode)
	}
}

// view is a strided window into row-major storage: element (i, j) lives at
// data[i*stride + j]. It lets the GEMM operate on submatrices (QR's
// trailing columns) without copying them out first.
type view[T Element] struct {
	data   []T
	r, c   int
	stride int
}

func denseView[T Element](m *GDense[T]) view[T] {
	return view[T]{data: m.Data, r: m.R, c: m.C, stride: m.RowStride()}
}

// rowsView is rows [i0, i1) of m as a view.
func rowsView[T Element](m *GDense[T], i0, i1 int) view[T] {
	s := m.RowStride()
	if i0 == i1 {
		return view[T]{r: 0, c: m.C, stride: s}
	}
	return view[T]{data: m.Data[i0*s:], r: i1 - i0, c: m.C, stride: s}
}

// gemmView computes dst = A·B (mode gemmSet), dst += A·B (gemmAdd) or
// dst −= A·B (gemmSub), where A is a (or aᵀ when aT) and B is b (or bᵀ
// when bT). dst must be sized M×N with M = rows(A), N = cols(B); the
// shared inner dimension K is taken from the operands. dst must not
// overlap a or b. A nil engine (or a small problem) runs serially.
func gemmView[T Element](e *compute.Engine, dst view[T], a view[T], aT bool, b view[T], bT bool, mode int) {
	m, n := dst.r, dst.c
	k := a.c
	if aT {
		k = a.r
	}
	kb := b.r
	if bT {
		kb = b.c
	}
	if k != kb {
		panic("mat: gemm inner dimension mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if mode == gemmSet {
			for i := 0; i < m; i++ {
				row := dst.data[i*dst.stride : i*dst.stride+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	p := gemmParams[T]()
	mr, nr := p.mr, p.nr

	// The parallel unit is normally a full MC panel. A matrix shorter than
	// one panel would lose all fan-out, so its single panel is subdivided
	// into mr-aligned row bands, one per lane: strip boundaries stay on
	// the same global mr-row grid and every output element keeps its serial
	// per-element accumulation order, so the result is still bit-identical
	// to the serial run for any band size.
	unit := p.mc
	wantParallel := fanOut(e, m*k*n)
	if wantParallel && m <= p.mc && m >= 2*mr {
		perLane := (m + e.Workers() - 1) / e.Workers()
		unit = (perLane + mr - 1) / mr * mr
	}
	panels := (m + unit - 1) / unit
	parallel := panels > 1 && wantParallel

	// Pack buffers are sized for the problem at hand, not the blocking
	// maxima, so small multiplies after an autotuned NC/KC widening do not
	// borrow multi-megabyte size classes they never touch.
	kcMax := min(p.kc, k)
	bp := compute.GetFloats[T](packPool, ((min(p.nc, n)+nr-1)/nr)*nr*kcMax)
	for jc := 0; jc < n; jc += p.nc {
		nc := min(p.nc, n-jc)
		for pc := 0; pc < k; pc += p.kc {
			kc := min(p.kc, k-pc)
			packB(bp, b, bT, pc, kc, jc, nc, nr)
			md := mode
			if mode == gemmSet && pc > 0 {
				md = gemmAdd
			}
			run := func(lo, hi int) {
				ap := compute.GetFloats[T](packPool, unit*kcMax)
				for pi := lo; pi < hi; pi++ {
					ic := pi * unit
					mc := min(unit, m-ic)
					packA(ap, a, aT, ic, mc, pc, kc, mr)
					gemmMacro(dst, ap, bp, ic, mc, jc, nc, kc, mr, nr, md)
				}
				compute.PutFloats(packPool, ap)
			}
			if parallel {
				e.ParallelFor(panels, run)
			} else {
				run(0, panels)
			}
		}
	}
	compute.PutFloats(packPool, bp)
}

// gemmMacro runs the register-tile sweep of one packed A panel against the
// packed B panel: B strips outer (each strip stays L1-resident across the
// panel's rows), A strips inner. Interior tiles store straight into dst;
// edge tiles go through a zero-padded scratch tile and merge.
func gemmMacro[T Element](dst view[T], ap, bp []T, ic, mc, jc, nc, kc, mr, nr, mode int) {
	var tile [mrMax * nrMax]T
	for js := 0; js < nc; js += nr {
		bstrip := bp[(js/nr)*kc*nr:]
		w := min(nr, nc-js)
		for is := 0; is < mc; is += mr {
			astrip := ap[(is/mr)*kc*mr:]
			rows := min(mr, mc-is)
			ci := (ic+is)*dst.stride + jc + js
			if rows == mr && w == nr {
				gemmKernel(dst.data[ci:], dst.stride, astrip, bstrip, kc, mode)
				continue
			}
			for i := range tile[:mr*nr] {
				tile[i] = 0
			}
			gemmKernel(tile[:], nr, astrip, bstrip, kc, gemmSet)
			for r := 0; r < rows; r++ {
				drow := dst.data[ci+r*dst.stride : ci+r*dst.stride+w]
				trow := tile[r*nr : r*nr+w]
				switch mode {
				case gemmAdd:
					for t := range drow {
						drow[t] += trow[t]
					}
				case gemmSub:
					for t := range drow {
						drow[t] -= trow[t]
					}
				default:
					copy(drow, trow)
				}
			}
		}
	}
}
