package mat

import "imrdmd/internal/compute"

// This file is the packed, register-blocked GEMM that backs every dense
// multiply in the package (Mul/MulInto/MulT/Gram and QR's trailing-matrix
// update). The layout follows the classic Goto/BLIS decomposition:
//
//	for jc over N by ncBlock:            (B panel column block)
//	  for pc over K by kcBlock:          (depth block)
//	    pack B[pc:pc+kc, jc:jc+nc]  →  bp  (strips of nrTile columns)
//	    for ic over M by mcBlock:        (A panel row block, parallel unit)
//	      pack A[ic:ic+mc, pc:pc+kc] → ap  (strips of mrTile rows)
//	      macro-kernel: mrTile×nrTile register tiles over (ap, bp)
//
// Packing copies both operands into contiguous, tile-ordered buffers so the
// micro-kernel streams unit-stride with no bounds-check or stride math in
// the inner loop, and so transposed operands (MulT, Gram's m·mᵀ) cost the
// same as plain ones — the transpose is absorbed by the packing read. Pack
// buffers are borrowed from a package-level compute.Workspace, so steady
// state packs are allocation-free.
//
// The micro-kernel itself is gemmKernel4x4: a hand-unrolled 4×4 register
// tile, dst[0:4, 0:4] (mode: overwrite / += / −=) of ap-strip · bp-strip.
// On amd64 with AVX2+FMA it is four YMM accumulator rows driven by
// broadcast/FMA (see gemm_amd64.s); elsewhere a pure-Go unrolled version
// (gemm_generic.go) with sixteen scalar accumulators. Edge tiles (mr<4 or
// nr<4) run the same kernel into a zero-padded 4×4 scratch tile and merge
// the valid region, so the hot path has no remainder branches.
//
// Parallelism: the engine fans out over mcBlock row panels (each worker
// packs its own A panels; the B panel is packed once by the caller and
// shared read-only). Panel boundaries align with tile boundaries and each
// output element is owned by exactly one worker with the same per-element
// accumulation order as the serial loop, so engine and serial runs agree
// bit for bit (mul_parallel_test.go and gemm_test.go pin this).
const (
	mrTile = 4 // micro-kernel rows (register tile height)
	nrTile = 4 // micro-kernel cols (register tile width)

	// kcBlock × nrTile is one packed B strip (8 KiB): resident in L1
	// across a whole row of tiles. mcBlock × kcBlock is one packed A
	// panel (256 KiB): resident in L2 across the nc loop. ncBlock bounds
	// the shared B panel (≤ 1 MiB) so it stays cache-friendly while
	// amortizing A packing over as many columns as possible.
	kcBlock = 256
	mcBlock = 128
	ncBlock = 512

	// gemmMinFlops is the m·k·n product below which the naive loops win:
	// packing two operands costs O(m·k + k·n) copies, which only pays
	// for itself once every packed element is reused a few times.
	gemmMinFlops = 1 << 14
)

// Micro-kernel output modes.
const (
	gemmSet = iota // dst tile = product
	gemmAdd        // dst tile += product
	gemmSub        // dst tile -= product
)

// packPool supplies pack buffers for all GEMM calls in the process. It is
// deliberately package-level (not the caller's workspace): pack buffers
// never escape a call, every caller needs the same two size classes, and a
// shared pool keeps even ws==nil entry points allocation-free in steady
// state.
var packPool = compute.NewWorkspace()

// view is a strided window into row-major storage: element (i, j) lives at
// data[i*stride + j]. It lets the GEMM operate on submatrices (QR's
// trailing columns) without copying them out first.
type view struct {
	data   []float64
	r, c   int
	stride int
}

func denseView(m *Dense) view { return view{data: m.Data, r: m.R, c: m.C, stride: m.C} }

// rowsView is rows [i0, i1) of m as a view.
func rowsView(m *Dense, i0, i1 int) view {
	if i0 == i1 {
		return view{r: 0, c: m.C, stride: m.C}
	}
	return view{data: m.Data[i0*m.C:], r: i1 - i0, c: m.C, stride: m.C}
}

// gemmView computes dst = A·B (mode gemmSet), dst += A·B (gemmAdd) or
// dst −= A·B (gemmSub), where A is a (or aᵀ when aT) and B is b (or bᵀ
// when bT). dst must be sized M×N with M = rows(A), N = cols(B); the
// shared inner dimension K is taken from the operands. dst must not
// overlap a or b. A nil engine (or a small problem) runs serially.
func gemmView(e *compute.Engine, dst view, a view, aT bool, b view, bT bool, mode int) {
	m, n := dst.r, dst.c
	k := a.c
	if aT {
		k = a.r
	}
	kb := b.r
	if bT {
		kb = b.c
	}
	if k != kb {
		panic("mat: gemm inner dimension mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if mode == gemmSet {
			for i := 0; i < m; i++ {
				row := dst.data[i*dst.stride : i*dst.stride+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}

	// The parallel unit is normally a full MC panel. A matrix shorter than
	// one panel would lose all fan-out, so its single panel is subdivided
	// into mrTile-aligned row bands, one per lane: strip boundaries stay on
	// the same global 4-row grid and every output element keeps its serial
	// per-element accumulation order, so the result is still bit-identical
	// to the serial run for any band size.
	unit := mcBlock
	wantParallel := fanOut(e, m*k*n)
	if wantParallel && m <= mcBlock && m >= 2*mrTile {
		perLane := (m + e.Workers() - 1) / e.Workers()
		unit = (perLane + mrTile - 1) / mrTile * mrTile
	}
	panels := (m + unit - 1) / unit
	parallel := panels > 1 && wantParallel

	bp := packPool.GetF64(((ncBlock + nrTile - 1) / nrTile) * nrTile * kcBlock)
	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			packB(bp, b, bT, pc, kc, jc, nc)
			md := mode
			if mode == gemmSet && pc > 0 {
				md = gemmAdd
			}
			run := func(lo, hi int) {
				ap := packPool.GetF64(unit * kcBlock)
				for pi := lo; pi < hi; pi++ {
					ic := pi * unit
					mc := min(unit, m-ic)
					packA(ap, a, aT, ic, mc, pc, kc)
					gemmMacro(dst, ap, bp, ic, mc, jc, nc, kc, md)
				}
				packPool.PutF64(ap)
			}
			if parallel {
				e.ParallelFor(panels, run)
			} else {
				run(0, panels)
			}
		}
	}
	packPool.PutF64(bp)
}

// packA copies the mc×kc block of A at (ic, pc) into ap as strips of
// mrTile rows: strip s holds rows [ic+s·mr, ic+s·mr+mr) laid out p-major
// (ap[s·kc·mr + p·mr + r]), zero-padded to a full strip at the edge. When
// aT is set the logical A is aᵀ, i.e. element (i, p) reads a.data[p][i].
func packA(ap []float64, a view, aT bool, ic, mc, pc, kc int) {
	off := 0
	for s := 0; s < mc; s += mrTile {
		mr := min(mrTile, mc-s)
		if aT {
			for p := 0; p < kc; p++ {
				src := a.data[(pc+p)*a.stride+ic+s:]
				for r := 0; r < mr; r++ {
					ap[off+r] = src[r]
				}
				for r := mr; r < mrTile; r++ {
					ap[off+r] = 0
				}
				off += mrTile
			}
			continue
		}
		r0 := a.data[(ic+s)*a.stride+pc:]
		var r1, r2, r3 []float64
		if mr > 1 {
			r1 = a.data[(ic+s+1)*a.stride+pc:]
		}
		if mr > 2 {
			r2 = a.data[(ic+s+2)*a.stride+pc:]
		}
		if mr > 3 {
			r3 = a.data[(ic+s+3)*a.stride+pc:]
		}
		switch mr {
		case 4:
			for p := 0; p < kc; p++ {
				ap[off] = r0[p]
				ap[off+1] = r1[p]
				ap[off+2] = r2[p]
				ap[off+3] = r3[p]
				off += 4
			}
		default:
			for p := 0; p < kc; p++ {
				ap[off] = r0[p]
				if mr > 1 {
					ap[off+1] = r1[p]
				} else {
					ap[off+1] = 0
				}
				if mr > 2 {
					ap[off+2] = r2[p]
				} else {
					ap[off+2] = 0
				}
				ap[off+3] = 0
				off += 4
			}
		}
	}
}

// packB copies the kc×nc block of B at (pc, jc) into bp as strips of
// nrTile columns: strip s holds columns [jc+s·nr, jc+s·nr+nr) laid out
// p-major (bp[s·kc·nr + p·nr + t]), zero-padded at the edge. When bT is
// set the logical B is bᵀ, i.e. element (p, j) reads b.data[j][p].
func packB(bp []float64, b view, bT bool, pc, kc, jc, nc int) {
	off := 0
	for s := 0; s < nc; s += nrTile {
		nr := min(nrTile, nc-s)
		if bT {
			var c0, c1, c2, c3 []float64
			c0 = b.data[(jc+s)*b.stride+pc:]
			if nr > 1 {
				c1 = b.data[(jc+s+1)*b.stride+pc:]
			}
			if nr > 2 {
				c2 = b.data[(jc+s+2)*b.stride+pc:]
			}
			if nr > 3 {
				c3 = b.data[(jc+s+3)*b.stride+pc:]
			}
			for p := 0; p < kc; p++ {
				bp[off] = c0[p]
				if nr > 1 {
					bp[off+1] = c1[p]
				} else {
					bp[off+1] = 0
				}
				if nr > 2 {
					bp[off+2] = c2[p]
				} else {
					bp[off+2] = 0
				}
				if nr > 3 {
					bp[off+3] = c3[p]
				} else {
					bp[off+3] = 0
				}
				off += 4
			}
			continue
		}
		if nr == 4 {
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.stride+jc+s:]
				bp[off] = src[0]
				bp[off+1] = src[1]
				bp[off+2] = src[2]
				bp[off+3] = src[3]
				off += 4
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.stride+jc+s:]
				for t := 0; t < nr; t++ {
					bp[off+t] = src[t]
				}
				for t := nr; t < nrTile; t++ {
					bp[off+t] = 0
				}
				off += 4
			}
		}
	}
}

// gemmMacro runs the register-tile sweep of one packed A panel against the
// packed B panel: B strips outer (each strip stays L1-resident across the
// panel's rows), A strips inner. Interior tiles store straight into dst;
// edge tiles go through a zero-padded scratch tile and merge.
func gemmMacro(dst view, ap, bp []float64, ic, mc, jc, nc, kc, mode int) {
	var tile [mrTile * nrTile]float64
	for js := 0; js < nc; js += nrTile {
		bstrip := bp[(js/nrTile)*kc*nrTile:]
		nr := min(nrTile, nc-js)
		for is := 0; is < mc; is += mrTile {
			astrip := ap[(is/mrTile)*kc*mrTile:]
			mr := min(mrTile, mc-is)
			ci := (ic+is)*dst.stride + jc + js
			if mr == mrTile && nr == nrTile {
				gemmKernel4x4(dst.data[ci:], dst.stride, astrip, bstrip, kc, mode)
				continue
			}
			for i := range tile {
				tile[i] = 0
			}
			gemmKernel4x4(tile[:], nrTile, astrip, bstrip, kc, gemmSet)
			for r := 0; r < mr; r++ {
				drow := dst.data[ci+r*dst.stride : ci+r*dst.stride+nr]
				trow := tile[r*nrTile : r*nrTile+nr]
				switch mode {
				case gemmAdd:
					for t := range drow {
						drow[t] += trow[t]
					}
				case gemmSub:
					for t := range drow {
						drow[t] -= trow[t]
					}
				default:
					copy(drow, trow)
				}
			}
		}
	}
}

// gemmKernel4x4Go is the portable micro-kernel: a 4×4 tile of dst
// (row stride ldc) gets the product of a packed mrTile-row A strip and a
// packed nrTile-column B strip over kc steps. Sixteen scalar accumulators
// live in registers across the k loop; the tile is touched once at the
// end. It is the only kernel on non-amd64 builds and the fallback when
// the CPU lacks AVX2/FMA; gemm_test.go pins it against the assembly path.
func gemmKernel4x4Go(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	i := 0
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
		b0, b1, b2, b3 := bp[i], bp[i+1], bp[i+2], bp[i+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		i += 4
	}
	r0 := c[0:4:4]
	r1 := c[ldc : ldc+4 : ldc+4]
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	switch mode {
	case gemmAdd:
		r0[0] += c00
		r0[1] += c01
		r0[2] += c02
		r0[3] += c03
		r1[0] += c10
		r1[1] += c11
		r1[2] += c12
		r1[3] += c13
		r2[0] += c20
		r2[1] += c21
		r2[2] += c22
		r2[3] += c23
		r3[0] += c30
		r3[1] += c31
		r3[2] += c32
		r3[3] += c33
	case gemmSub:
		r0[0] -= c00
		r0[1] -= c01
		r0[2] -= c02
		r0[3] -= c03
		r1[0] -= c10
		r1[1] -= c11
		r1[2] -= c12
		r1[3] -= c13
		r2[0] -= c20
		r2[1] -= c21
		r2[2] -= c22
		r2[3] -= c23
		r3[0] -= c30
		r3[1] -= c31
		r3[2] -= c32
		r3[3] -= c33
	default:
		r0[0] = c00
		r0[1] = c01
		r0[2] = c02
		r0[3] = c03
		r1[0] = c10
		r1[1] = c11
		r1[2] = c12
		r1[3] = c13
		r2[0] = c20
		r2[1] = c21
		r2[2] = c22
		r2[3] = c23
		r3[0] = c30
		r3[1] = c31
		r3[2] = c32
		r3[3] = c33
	}
}
