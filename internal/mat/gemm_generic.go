//go:build !amd64

package mat

// Non-amd64 builds use the portable micro-kernels at every tile shape and
// have no CPUID: the tier is always generic and cache sizes come from the
// timed sweep (tune.go).

func detectKernelTier() kernelTier { return tierGeneric }

func cpuidCaches() cacheInfo { return cacheInfo{} }

func gemmKernel4x4(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	gemmKernel4x4Go(c, ldc, ap, bp, kc, mode)
}

func gemmKernel8x16d(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	gemmKernel8x16dGo(c, ldc, ap, bp, kc, mode)
}
