//go:build !amd64

package mat

// Non-amd64 builds use the portable scalar micro-kernel.
func gemmKernel4x4(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	gemmKernel4x4Go(c, ldc, ap, bp, kc, mode)
}
