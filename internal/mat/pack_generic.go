//go:build !amd64

package mat

// Non-amd64 builds interleave with the portable bounds-check-free loop.
func interleave4[T Element](dst []T, dstStride int, src []T, srcStride, n int) {
	interleave4Go(dst, dstStride, src, srcStride, n)
}
