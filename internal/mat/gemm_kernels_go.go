package mat

// Portable micro-kernels, one per tile shape. They are the only kernels on
// non-amd64 builds and under the forced-generic tier, and the references
// the assembly kernels are pinned against (gemm_test.go, dispatch_test.go).
// Each accumulates its full register tile across the k loop and touches
// the dst tile exactly once at the end, in the same per-element p-order as
// the corresponding asm kernel.

// gemmKernel4x4Go is the portable float64 4×4 kernel: a 4×4 tile of dst
// (row stride ldc) gets the product of a packed 4-row A strip and a packed
// 4-column B strip over kc steps. Sixteen scalar accumulators live in
// registers across the k loop.
func gemmKernel4x4Go(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	i := 0
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
		b0, b1, b2, b3 := bp[i], bp[i+1], bp[i+2], bp[i+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		i += 4
	}
	r0 := c[0:4:4]
	r1 := c[ldc : ldc+4 : ldc+4]
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	switch mode {
	case gemmAdd:
		r0[0] += c00
		r0[1] += c01
		r0[2] += c02
		r0[3] += c03
		r1[0] += c10
		r1[1] += c11
		r1[2] += c12
		r1[3] += c13
		r2[0] += c20
		r2[1] += c21
		r2[2] += c22
		r2[3] += c23
		r3[0] += c30
		r3[1] += c31
		r3[2] += c32
		r3[3] += c33
	case gemmSub:
		r0[0] -= c00
		r0[1] -= c01
		r0[2] -= c02
		r0[3] -= c03
		r1[0] -= c10
		r1[1] -= c11
		r1[2] -= c12
		r1[3] -= c13
		r2[0] -= c20
		r2[1] -= c21
		r2[2] -= c22
		r2[3] -= c23
		r3[0] -= c30
		r3[1] -= c31
		r3[2] -= c32
		r3[3] -= c33
	default:
		r0[0] = c00
		r0[1] = c01
		r0[2] = c02
		r0[3] = c03
		r1[0] = c10
		r1[1] = c11
		r1[2] = c12
		r1[3] = c13
		r2[0] = c20
		r2[1] = c21
		r2[2] = c22
		r2[3] = c23
		r3[0] = c30
		r3[1] = c31
		r3[2] = c32
		r3[3] = c33
	}
}

// gemmKernel4x8Go is the portable float32 4×8 kernel: one 256-bit vector
// of floats wide — the same register shape as the f64 4×4 at twice the
// element count.
func gemmKernel4x8Go(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	var acc [4][8]float32
	ia, ib := 0, 0
	for p := 0; p < kc; p++ {
		b := bp[ib : ib+8 : ib+8]
		a := ap[ia : ia+4 : ia+4]
		for r := 0; r < 4; r++ {
			ar := a[r]
			cr := &acc[r]
			for t := 0; t < 8; t++ {
				cr[t] += ar * b[t]
			}
		}
		ia += 4
		ib += 8
	}
	for r := 0; r < 4; r++ {
		drow := c[r*ldc : r*ldc+8 : r*ldc+8]
		cr := &acc[r]
		switch mode {
		case gemmAdd:
			for t := 0; t < 8; t++ {
				drow[t] += cr[t]
			}
		case gemmSub:
			for t := 0; t < 8; t++ {
				drow[t] -= cr[t]
			}
		default:
			for t := 0; t < 8; t++ {
				drow[t] = cr[t]
			}
		}
	}
}

// gemmKernel8x16dGo is the portable float64 8×16 kernel matching the
// AVX-512 tile shape: eight rows by two 512-bit vectors of doubles. It
// exists so the AVX-512 tier has a reference with identical tile geometry
// (the asm kernel is tolerance-pinned against it) and so dispatch still
// links on builds without the asm.
func gemmKernel8x16dGo(c []float64, ldc int, ap, bp []float64, kc, mode int) {
	var acc [8][16]float64
	ia, ib := 0, 0
	for p := 0; p < kc; p++ {
		b := bp[ib : ib+16 : ib+16]
		a := ap[ia : ia+8 : ia+8]
		for r := 0; r < 8; r++ {
			ar := a[r]
			cr := &acc[r]
			for t := 0; t < 16; t++ {
				cr[t] += ar * b[t]
			}
		}
		ia += 8
		ib += 16
	}
	for r := 0; r < 8; r++ {
		drow := c[r*ldc : r*ldc+16 : r*ldc+16]
		cr := &acc[r]
		switch mode {
		case gemmAdd:
			for t := 0; t < 16; t++ {
				drow[t] += cr[t]
			}
		case gemmSub:
			for t := 0; t < 16; t++ {
				drow[t] -= cr[t]
			}
		default:
			for t := 0; t < 16; t++ {
				drow[t] = cr[t]
			}
		}
	}
}

// gemmKernel8x16sGo is the portable float32 8×16 kernel matching the
// AVX-512 tile shape: eight rows by one 512-bit vector of floats.
func gemmKernel8x16sGo(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	var acc [8][16]float32
	ia, ib := 0, 0
	for p := 0; p < kc; p++ {
		b := bp[ib : ib+16 : ib+16]
		a := ap[ia : ia+8 : ia+8]
		for r := 0; r < 8; r++ {
			ar := a[r]
			cr := &acc[r]
			for t := 0; t < 16; t++ {
				cr[t] += ar * b[t]
			}
		}
		ia += 8
		ib += 16
	}
	for r := 0; r < 8; r++ {
		drow := c[r*ldc : r*ldc+16 : r*ldc+16]
		cr := &acc[r]
		switch mode {
		case gemmAdd:
			for t := 0; t < 16; t++ {
				drow[t] += cr[t]
			}
		case gemmSub:
			for t := 0; t < 16; t++ {
				drow[t] -= cr[t]
			}
		default:
			for t := 0; t < 16; t++ {
				drow[t] = cr[t]
			}
		}
	}
}
