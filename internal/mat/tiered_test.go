package mat

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
)

// refTiered mirrors a TieredCols as a plain f64 matrix plus the expected
// per-column fidelity: columns < coldCols should read back as
// float64(float32(x)) exactly, hot columns as x exactly.
func tieredRef(t *testing.T, tc *TieredCols, full *Dense) {
	t.Helper()
	if tc.Rows() != full.R || tc.Cols() != full.C {
		t.Fatalf("shape: tiered %dx%d vs ref %dx%d", tc.Rows(), tc.Cols(), full.R, full.C)
	}
	cc := tc.ColdCols()
	for i := 0; i < full.R; i++ {
		for j := 0; j < full.C; j++ {
			want := full.At(i, j)
			if j < cc {
				// The cold tier stores exactly one f32 rounding of the
				// original value — not an approximation with a tolerance.
				want = float64(float32(want))
			}
			if got := tc.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %v, want %v (coldCols=%d)", i, j, got, want, cc)
			}
		}
	}
}

func TestTieredGrowDemoteRoundTrip(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(9))
	const p = 7
	full := randDense(rng, p, 0)
	tc := NewTieredCols(NewDense(p, 0))

	for step := 0; step < 12; step++ {
		b := randDense(rng, p, 97)
		full = HStack(full, b)
		tc.Grow(ws, b)
		if step%3 == 2 {
			horizon := 150
			before := tc.Hot().C
			moved := tc.Demote(horizon)
			if moved%tc.ChunkCols() != 0 {
				t.Fatalf("demoted %d cols, not a chunk multiple", moved)
			}
			if got := tc.Hot().C; got != before-moved {
				t.Fatalf("hot width %d after demote, want %d", got, before-moved)
			}
			if tc.Hot().C < horizon && moved > 0 {
				t.Fatalf("demote ate into the horizon: hot=%d < %d", tc.Hot().C, horizon)
			}
		}
		tieredRef(t, tc, full)
	}
	if tc.ColdCols() == 0 {
		t.Fatal("test never exercised the cold tier")
	}

	// Promote widens cold values exactly: float64(float32(x)), and the
	// round-trip error is bounded by half-ULP relative error of f32.
	pm := tc.Promote()
	for i := 0; i < p; i++ {
		for j := 0; j < full.C; j++ {
			orig := full.At(i, j)
			got := pm.At(i, j)
			if j < tc.ColdCols() {
				if got != float64(float32(orig)) {
					t.Fatalf("promote (%d,%d): %v != float64(float32(%v))", i, j, got, orig)
				}
				if rel := math.Abs(got-orig) / math.Abs(orig); rel > 1.0/(1<<24) {
					t.Fatalf("promote (%d,%d): rel err %g exceeds f32 half-ULP bound", i, j, rel)
				}
			} else if got != orig {
				t.Fatalf("promote hot (%d,%d): %v != %v", i, j, got, orig)
			}
		}
	}
}

func TestTieredWindowAndGather(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(11))
	const p, total = 5, 700
	full := randDense(rng, p, total)
	tc := NewTieredCols(NewDense(p, 0))
	tc.Grow(ws, full)
	tc.Demote(100) // 2 chunks cold (512), 188 hot

	if tc.ColdCols() != 2*TieredChunkCols {
		t.Fatalf("coldCols = %d, want %d", tc.ColdCols(), 2*TieredChunkCols)
	}

	spans := [][2]int{{0, total}, {0, 100}, {200, 300}, {500, 700}, {512, 700}, {600, 600}}
	for _, sp := range spans {
		lo, hi := sp[0], sp[1]
		w := tc.Window(ws, lo, hi)
		cw := tc.CopyWindow(ws, lo, hi)
		if w.R != p || w.C != hi-lo || cw.R != p || cw.C != hi-lo {
			t.Fatalf("window [%d,%d) wrong shape", lo, hi)
		}
		for i := 0; i < p; i++ {
			for j := lo; j < hi; j++ {
				want := tc.At(i, j)
				if got := w.At(i, j-lo); got != want {
					t.Fatalf("Window(%d,%d) at (%d,%d): %v != %v", lo, hi, i, j, got, want)
				}
				if got := cw.At(i, j-lo); got != want {
					t.Fatalf("CopyWindow(%d,%d) at (%d,%d): %v != %v", lo, hi, i, j, got, want)
				}
			}
		}
		PutDense(ws, cw)
		PutDense(ws, w)
	}

	idxs := []int{0, 3, 255, 256, 511, 512, 513, 699}
	g := tc.GatherCols(ws, idxs)
	for i := 0; i < p; i++ {
		for k, j := range idxs {
			if got, want := g.At(i, k), tc.At(i, j); got != want {
				t.Fatalf("gather (%d, idx %d): %v != %v", i, j, got, want)
			}
		}
	}
	PutDense(ws, g)

	hotIdxs := []int{515, 600, 699}
	hg := tc.GatherCols(ws, hotIdxs)
	for i := 0; i < p; i++ {
		for k, j := range hotIdxs {
			if got, want := hg.At(i, k), full.At(i, j); got != want {
				t.Fatalf("hot gather (%d, idx %d): %v != %v", i, j, got, want)
			}
		}
	}
	PutDense(ws, hg)
}

// TestTieredDemotePackedHot: demoting straight off a tightly packed hot
// matrix (Stride == 0, as NewTieredCols receives from a Clone) must pin
// the physical row stride before shrinking C — the in-place shift is
// relative to row offsets that would otherwise re-base mid-demote.
func TestTieredDemotePackedHot(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(19))
	const p, total = 6, 650
	full := randDense(rng, p, total)
	tc := NewTieredCols(full.Clone()) // packed, never grown
	if moved := tc.Demote(100); moved != 2*TieredChunkCols {
		t.Fatalf("demoted %d cols, want %d", moved, 2*TieredChunkCols)
	}
	tieredRef(t, tc, full)

	// The vacated columns are capacity slack: growth reuses them in place.
	b := randDense(rng, p, 30)
	tc.Grow(ws, b)
	tieredRef(t, tc, HStack(full, b))
}

func TestTieredAddRows(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(13))
	const p, total, extra = 4, 600, 3
	full := randDense(rng, p, total)
	tc := NewTieredCols(NewDense(p, 0))
	tc.Grow(ws, full)
	tc.Demote(64) // 2 chunks cold

	newRows := randDense(rng, extra, total)
	tc.AddRows(ws, newRows)
	if tc.Rows() != p+extra {
		t.Fatalf("rows = %d, want %d", tc.Rows(), p+extra)
	}
	grown := VStack(full, newRows)
	tieredRef(t, tc, grown)

	// Growth after AddRows keeps both tiers consistent.
	b := randDense(rng, p+extra, 40)
	tc.Grow(ws, b)
	tieredRef(t, tc, HStack(grown, b))
}

func TestTieredFromPartsValidation(t *testing.T) {
	hot := NewDense(3, 10)
	good := []*Dense32{NewDense32(3, 4), NewDense32(3, 4)}
	tc, err := TieredFromParts(good, hot, 4)
	if err != nil || tc.Cols() != 18 || tc.ColdCols() != 8 {
		t.Fatalf("valid parts rejected: %v (tc=%+v)", err, tc)
	}
	if _, err := TieredFromParts([]*Dense32{NewDense32(2, 4)}, hot, 4); err == nil {
		t.Fatal("row-mismatched cold chunk accepted")
	}
	if _, err := TieredFromParts([]*Dense32{NewDense32(3, 5)}, hot, 4); err == nil {
		t.Fatal("width-mismatched cold chunk accepted")
	}
	if _, err := TieredFromParts(nil, nil, 4); err == nil {
		t.Fatal("nil hot tier accepted")
	}
	if _, err := TieredFromParts(nil, hot, 0); err == nil {
		t.Fatal("zero chunk width accepted")
	}
}

func TestNarrowWiden(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randDense(rng, 6, 9)
	n := Narrow(m)
	w := Widen(n)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if got, want := w.At(i, j), float64(float32(m.At(i, j))); got != want {
				t.Fatalf("narrow/widen (%d,%d): %v != %v", i, j, got, want)
			}
		}
	}
}

func TestTieredBytes(t *testing.T) {
	ws := compute.NewWorkspace()
	tc := NewTieredCols(NewDense(8, 0))
	tc.Grow(ws, NewDense(8, 600))
	tc.Demote(0) // both full chunks demote, 88 hot remain
	if tc.ColdCols() != 512 {
		t.Fatalf("coldCols = %d, want 512", tc.ColdCols())
	}
	if got, want := tc.ColdBytes(), int64(8*512*4); got != want {
		t.Fatalf("ColdBytes = %d, want %d", got, want)
	}
	if tc.HotBytes() < int64(8*88*8) {
		t.Fatalf("HotBytes = %d too small for 8x88 f64", tc.HotBytes())
	}
}
