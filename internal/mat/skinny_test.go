package mat

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
)

// Tests for the pack-free skinny dispatch tier (skinny.go). The central
// claim is stronger than tolerance equivalence: on every tier the skinny
// kernels replay the packed path's per-element accumulation order, so
// routing a shape through either path must produce bit-identical output.
// Tests here mutate package-level dispatch state and must not use
// t.Parallel.

// skinnyShapes covers all four classifier classes plus edge-row tiles
// and KC-boundary crossings: {class, m, k, n}.
var skinnyShapes = []struct {
	name    string
	m, k, n int
}{
	{"skinnyB", 200, 64, 8},          // n ≤ NR: one B strip
	{"skinnyB_edge", 203, 64, 5},     // ragged rows and width
	{"innerprod", 48, 4096, 8},       // Uᵀ·c projection shape
	{"innerprod_kc", 32, 515, 8},     // crosses the KC chunk boundary twice
	{"outerprod", 200, 8, 48},        // rank-w update shape
	{"outerprod_edge", 197, 8, 47},   // ragged both ways
	{"smallpanel", 48, 200, 48},      // reorth's q×q collective
	{"smallpanel_edge", 63, 129, 61}, // ragged small panel
}

// TestSkinnyMatchesPackedBitwise runs every skinny shape through both
// the pack-free driver and the packed gemmView under every reachable
// tier, in both precisions and all three store modes, and requires the
// outputs to agree bit for bit.
func TestSkinnyMatchesPackedBitwise(t *testing.T) {
	for _, tier := range hostTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := rand.New(rand.NewSource(53))
			for _, c := range skinnyShapes {
				for _, aT := range []bool{false, true} {
					ar, ac := c.m, c.k
					if aT {
						ar, ac = c.k, c.m
					}
					a := randDense(rng, ar, ac)
					b := randDense(rng, c.k, c.n)
					a32 := randDense32(rng, ar, ac)
					b32 := randDense32(rng, c.k, c.n)
					for mode := gemmSet; mode <= gemmSub; mode++ {
						packed := randDense(rng, c.m, c.n)
						free := packed.Clone()
						gemmView(nil, denseView(packed), denseView(a), aT, denseView(b), false, mode)
						skinnyGemm(nil, denseView(free), denseView(a), aT, denseView(b), mode)
						for i := range packed.Data {
							if packed.Data[i] != free.Data[i] {
								t.Fatalf("f64 %s aT=%v mode=%d: element %d: packed %v vs skinny %v",
									c.name, aT, mode, i, packed.Data[i], free.Data[i])
							}
						}

						packed32 := randDense32(rng, c.m, c.n)
						free32 := packed32.Clone()
						gemmView(nil, denseView(packed32), denseView(a32), aT, denseView(b32), false, mode)
						skinnyGemm(nil, denseView(free32), denseView(a32), aT, denseView(b32), mode)
						for i := range packed32.Data {
							if packed32.Data[i] != free32.Data[i] {
								t.Fatalf("f32 %s aT=%v mode=%d: element %d: packed %v vs skinny %v",
									c.name, aT, mode, i, packed32.Data[i], free32.Data[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestSkinnyWidthSweep exercises every masked tile width w = 1..lanes
// on every reachable tier (the opmask and mask-vector edge paths),
// checking against the naive reference.
func TestSkinnyWidthSweep(t *testing.T) {
	for _, tier := range hostTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			_, lanes64 := skinnyTile[float64]()
			rng := rand.New(rand.NewSource(59))
			for w := 1; w <= lanes64; w++ {
				for _, m := range []int{8, 48, 53} {
					a := randDense(rng, m, 300)
					b := randDense(rng, 300, w)
					got := NewDense(m, w)
					skinnyGemm(nil, denseView(got), denseView(a), false, denseView(b), gemmSet)
					want := refMul(denseView(a), false, denseView(b), false)
					assertClose(t, "f64", want, got, 1e-11)
				}
			}
			_, lanes32 := skinnyTile[float32]()
			for w := 1; w <= lanes32; w++ {
				a32 := randDense32(rng, 48, 300)
				b32 := randDense32(rng, 300, w)
				got32 := NewDense32(48, w)
				skinnyGemm(nil, denseView(got32), denseView(a32), false, denseView(b32), gemmSet)
				want := refMul(denseView(toF64(a32)), false, denseView(toF64(b32)), false)
				for i := range got32.Data {
					d := want.Data[i] - float64(got32.Data[i])
					if d < 0 {
						d = -d
					}
					if d > f32Tol*(1+want.MaxAbs()) {
						t.Fatalf("f32 w=%d: element %d: %v vs %v", w, i, got32.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

// TestSkinnyParallelBitIdentical pins engine-vs-serial bit identity for
// the pack-free driver's row-tile fan-out, for each skinny class with
// enough flops to cross parallelThreshold.
func TestSkinnyParallelBitIdentical(t *testing.T) {
	eng := compute.NewEngine(7)
	defer eng.Close()
	rng := rand.New(rand.NewSource(61))
	for _, c := range []struct{ m, k, n int }{
		{48, 99999, 8}, // inner-product, m not tile-aligned across 7 lanes
		{2000, 9, 48},  // outer-product, many tiles
		{2003, 300, 5}, // skinny-B with a ragged final tile
	} {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		serial := NewDense(c.m, c.n)
		skinnyGemm(nil, denseView(serial), denseView(a), false, denseView(b), gemmSet)
		parallel := NewDense(c.m, c.n)
		skinnyGemm(eng, denseView(parallel), denseView(a), false, denseView(b), gemmSet)
		for i := range serial.Data {
			if serial.Data[i] != parallel.Data[i] {
				t.Fatalf("%dx%dx%d: element %d differs bitwise", c.m, c.k, c.n, i)
			}
		}
	}
}

// TestSkinnyStridedOperands feeds the driver column views (stride >
// width) on both sides, as the streaming pipeline does, and checks the
// result against the same multiply on tightly packed clones.
func TestSkinnyStridedOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	parentA := randDense(rng, 48, 500)
	parentB := randDense(rng, 300, 24)
	av := ColsView(parentA, 100, 400) // 48×300 at stride 500
	bv := ColsView(parentB, 3, 11)    // 300×8 at stride 24
	want := MulWith(nil, nil, CloneWith(nil, av), CloneWith(nil, bv))
	got := MulWith(nil, nil, av, bv)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: packed-operand %v vs view-operand %v", i, want.Data[i], got.Data[i])
		}
	}
}

// TestSkinnyRoutingBoundary pins the classifier against the active
// blocking: the hot-path shapes must take the pack-free tier, bulk
// shapes must not, and gemmMinFlops still gates the naive path below —
// the skinny tier slots between the two without moving either boundary.
func TestSkinnyRoutingBoundary(t *testing.T) {
	p := gemmParams[float64]()
	if !gemmSkinny {
		t.Skip("IMRDMD_GEMM_SKINNY=off")
	}
	// Wide enough to clear both the n ≤ NR and the 64-column small-panel
	// predicates, so each case isolates the predicate it names.
	big := 4 * p.nr
	if big <= 64 {
		big = 80
	}
	cases := []struct {
		name    string
		m, k, n int
		want    bool
	}{
		{"n at NR", 200, 200, p.nr, true},
		{"n past NR", 200, 200, p.nr + 1, false},
		{"m below MR", p.mr - 1, 10000, big, true},
		{"m at MR", p.mr, 10000, big, false},
		{"k at NR", 300, p.nr, big, true},
		{"k past NR", 300, p.nr + 1, big, false},
		{"small panel", 64, 10000, 64, true},
		{"panel too wide", 64, 10000, 65, false},
		{"panel too tall", 65, 10000, 65, false},
	}
	for _, c := range cases {
		if got := skinnyShape[float64](c.m, c.k, c.n); got != c.want {
			t.Errorf("%s: skinnyShape(%d,%d,%d) = %v, want %v", c.name, c.m, c.k, c.n, got, c.want)
		}
	}
	// The naive-path gate is untouched: shapes under gemmMinFlops never
	// reach the classifier (threshold_test.go pins the exact boundary).
	if usePacked(8, 16, 16) {
		t.Errorf("usePacked(8,16,16) = true; gemmMinFlops gate moved")
	}
	if !usePacked(64, 64, 64) {
		t.Errorf("usePacked(64,64,64) = false; gemmMinFlops gate moved")
	}
}

// TestSkinnyOffBitNeutral flips the IMRDMD_GEMM_SKINNY escape hatch in
// process and requires identical bits from the public entry points —
// the contract that makes the knob safe to flip in production triage.
func TestSkinnyOffBitNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randDense(rng, 200, 64)
	b := randDense(rng, 64, 8)
	u := randDense(rng, 200, 48)
	withSkinny := func(on bool, f func()) {
		old := gemmSkinny
		gemmSkinny = on
		defer func() { gemmSkinny = old }()
		f()
	}
	var on, off *Dense
	var onT, offT *Dense
	var onG, offG *Dense
	withSkinny(true, func() {
		on = Mul(a, b)
		onT = MulT(u, a)
		onG = Gram(u, true)
	})
	withSkinny(false, func() {
		off = Mul(a, b)
		offT = MulT(u, a)
		offG = Gram(u, true)
	})
	for name, pair := range map[string][2]*Dense{
		"Mul": {on, off}, "MulT": {onT, offT}, "Gram": {onG, offG},
	} {
		for i := range pair[0].Data {
			if pair[0].Data[i] != pair[1].Data[i] {
				t.Fatalf("%s: element %d: skinny %v vs packed %v", name, i, pair[0].Data[i], pair[1].Data[i])
			}
		}
	}
}

// TestMulAccIntoMatchesReference checks the accumulate-mode entry points
// (MulAddIntoWith / MulSubIntoWith) against Mul plus an explicit
// elementwise pass, across shapes that route through the packed tier,
// the skinny tier, and the tiny serial fallback — including a strided
// column-view destination, which is how the mrDMD residual flip calls
// them.
func TestMulAccIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	shapes := []struct{ m, k, n int }{
		{3, 4, 5},     // below parallel/packed thresholds: serial loop
		{200, 64, 8},  // skinny-B class
		{48, 4096, 8}, // inner-product class
		{96, 96, 96},  // packed blocked path
	}
	for _, c := range shapes {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		prod := Mul(a, b)
		for _, sub := range []bool{false, true} {
			// Plain destination.
			dst := randDense(rng, c.m, c.n)
			want := dst.Clone()
			if sub {
				MulSubIntoWith(nil, dst, a, b)
			} else {
				MulAddIntoWith(nil, dst, a, b)
			}
			for i := range want.Data {
				if sub {
					want.Data[i] -= prod.Data[i]
				} else {
					want.Data[i] += prod.Data[i]
				}
			}
			for i := range want.Data {
				if math.Abs(want.Data[i]-dst.Data[i]) > 1e-12 {
					t.Fatalf("%dx%dx%d sub=%v: element %d: got %v want %v",
						c.m, c.k, c.n, sub, i, dst.Data[i], want.Data[i])
				}
			}
			// Column-view destination inside a wider matrix.
			wide := randDense(rng, c.m, c.n+7)
			wantWide := wide.Clone()
			view := ColsView(wide, 3, 3+c.n)
			if sub {
				MulSubIntoWith(nil, view, a, b)
			} else {
				MulAddIntoWith(nil, view, a, b)
			}
			for i := 0; i < c.m; i++ {
				wrow := wantWide.Row(i)[3 : 3+c.n]
				prow := prod.Row(i)
				for j := range wrow {
					if sub {
						wrow[j] -= prow[j]
					} else {
						wrow[j] += prow[j]
					}
				}
			}
			for i := range wantWide.Data {
				if math.Abs(wantWide.Data[i]-wide.Data[i]) > 1e-12 {
					t.Fatalf("%dx%dx%d sub=%v view: element %d: got %v want %v",
						c.m, c.k, c.n, sub, i, wide.Data[i], wantWide.Data[i])
				}
			}
		}
	}
}
