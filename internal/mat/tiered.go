package mat

import (
	"fmt"

	"imrdmd/internal/compute"
)

// Tiered column storage: the memory-hierarchy form of the multifidelity
// trade the precision tiers make for arithmetic (DESIGN.md §6, §10). A
// TieredCols holds a growing sequence of columns where the trailing "hot"
// window stays in float64 and everything older is demoted to float32
// chunks — half the resident bytes for history that is only ever read
// back for full-resolution reconstruction error, segment recompute after
// drift, or snapshot export, all of which tolerate (and report) the
// f32-rounding of cold values. Demotion is explicit (Demote), so a caller
// that never demotes keeps a plain all-f64 store with view-based window
// access — bit-identical to the pre-tiered layout.

// TieredChunkCols is the demotion granularity: cold columns move in full
// chunks of this many columns, so chunk bookkeeping stays O(T/chunk) and
// each demotion is one bounded O(P·chunk) pass.
const TieredChunkCols = 256

// TieredCols is a P×T column store whose first ColdCols() columns live as
// float32 chunks and whose tail lives as one float64 matrix. It is not
// concurrency-safe; callers serialize access (the analyzer lock).
type TieredCols struct {
	r     int
	chunk int        // cold chunk width in columns
	cold  []*Dense32 // each r×chunk, oldest first
	hot   *Dense     // columns [ColdCols(), Cols()), stride = grow capacity
}

// NewTieredCols wraps hot (taking ownership of it) as an all-hot store.
func NewTieredCols(hot *Dense) *TieredCols {
	return &TieredCols{r: hot.R, chunk: TieredChunkCols, hot: hot}
}

// TieredFromParts rebuilds a store from decoded parts, validating the
// shape invariants a corrupt snapshot could violate. Ownership of cold
// and hot transfers to the store.
func TieredFromParts(cold []*Dense32, hot *Dense, chunk int) (*TieredCols, error) {
	if hot == nil {
		return nil, fmt.Errorf("mat: tiered store missing hot tier")
	}
	if chunk < 1 {
		return nil, fmt.Errorf("mat: tiered chunk width %d invalid", chunk)
	}
	for i, c := range cold {
		if c == nil || c.R != hot.R || c.C != chunk {
			return nil, fmt.Errorf("mat: cold chunk %d shape inconsistent with %d×%d store (chunk %d)",
				i, hot.R, chunk, chunk)
		}
	}
	return &TieredCols{r: hot.R, chunk: chunk, cold: cold, hot: hot}, nil
}

// Rows returns the row (sensor) dimension.
func (t *TieredCols) Rows() int { return t.r }

// Cols returns the total column count across both tiers.
func (t *TieredCols) Cols() int { return len(t.cold)*t.chunk + t.hot.C }

// ColdCols returns how many leading columns live in the f32 tier.
func (t *TieredCols) ColdCols() int { return len(t.cold) * t.chunk }

// ChunkCols returns the demotion chunk width.
func (t *TieredCols) ChunkCols() int { return t.chunk }

// Hot returns the hot-tier matrix (the trailing f64 columns). Callers
// must treat it as read-only; it is exposed for serialization.
func (t *TieredCols) Hot() *Dense { return t.hot }

// ColdChunks returns the cold-tier chunks, oldest first. Read-only; for
// serialization.
func (t *TieredCols) ColdChunks() []*Dense32 { return t.cold }

// At returns element (i, j) with j a global column index, widening cold
// values to float64.
func (t *TieredCols) At(i, j int) float64 {
	if cc := t.ColdCols(); j < cc {
		return float64(t.cold[j/t.chunk].At(i, j%t.chunk))
	} else {
		return t.hot.At(i, j-cc)
	}
}

// Grow appends b's columns to the hot tier (amortized, via GrowColsWith
// capacity slack).
func (t *TieredCols) Grow(ws *compute.Workspace, b *Dense) {
	if b.R != t.r {
		panic(fmt.Sprintf("mat: TieredCols.Grow row mismatch %d vs %d", b.R, t.r))
	}
	t.hot = GrowColsWith(ws, t.hot, b)
}

// Demote narrows full chunks of the oldest hot columns to float32 until
// at most horizon + ChunkCols − 1 hot columns remain (so the trailing
// horizon columns always stay exact). It returns how many columns were
// demoted. The hot tier shifts left in place, keeping its grow capacity.
func (t *TieredCols) Demote(horizon int) int {
	if horizon < 0 {
		horizon = 0
	}
	moved := 0
	for t.hot.C-t.chunk >= horizon {
		c32 := NewDense32(t.r, t.chunk)
		for i := 0; i < t.r; i++ {
			src := t.hot.Row(i)[:t.chunk]
			dst := c32.Row(i)
			for k, v := range src {
				dst[k] = float32(v)
			}
		}
		t.cold = append(t.cold, c32)
		// Shift the remaining hot columns left within the same buffer
		// (overlap-safe copy). The physical row stride must be pinned
		// before C shrinks: on a tightly packed matrix RowStride() tracks
		// C, and letting it shrink would re-base every row offset mid-
		// shift. Pinning turns the vacated columns into the capacity
		// slack GrowColsWith reuses.
		s := t.hot.RowStride()
		if t.hot.Stride == 0 {
			t.hot.Stride = s
		}
		for i := 0; i < t.r; i++ {
			row := t.hot.Data[i*s : i*s+t.hot.C]
			copy(row[:t.hot.C-t.chunk], row[t.chunk:])
		}
		t.hot.C -= t.chunk
		moved += t.chunk
	}
	return moved
}

// Window returns columns [lo, hi) as a float64 matrix: a zero-copy view
// of the hot tier when the range is entirely hot (PutDense is then a
// no-op, and the data is valid only until the next Grow/Demote), or a
// ws-borrowed copy with cold values widened exactly otherwise. Callers
// PutDense the result either way.
func (t *TieredCols) Window(ws *compute.Workspace, lo, hi int) *Dense {
	cc := t.ColdCols()
	if lo < 0 || hi > t.Cols() || lo > hi {
		panic(fmt.Sprintf("mat: TieredCols.Window [%d,%d) out of range for %d cols", lo, hi, t.Cols()))
	}
	if lo >= cc {
		return ColsView(t.hot, lo-cc, hi-cc)
	}
	return t.CopyWindow(ws, lo, hi)
}

// CopyWindow returns columns [lo, hi) as a ws-borrowed packed float64
// copy regardless of tier — the safe-to-hold form for callers that
// release the guarding lock before reading.
func (t *TieredCols) CopyWindow(ws *compute.Workspace, lo, hi int) *Dense {
	if lo < 0 || hi > t.Cols() || lo > hi {
		panic(fmt.Sprintf("mat: TieredCols.CopyWindow [%d,%d) out of range for %d cols", lo, hi, t.Cols()))
	}
	out := GetDenseRawOf[float64](ws, t.r, hi-lo)
	t.fillWindow(out, lo, hi)
	return out
}

// fillWindow copies columns [lo, hi) into out (r×(hi-lo)), widening cold
// chunks.
func (t *TieredCols) fillWindow(out *Dense, lo, hi int) {
	cc := t.ColdCols()
	for i := 0; i < t.r; i++ {
		dst := out.Row(i)
		j := lo
		for j < hi && j < cc {
			ch := t.cold[j/t.chunk]
			cLo := j % t.chunk
			cHi := t.chunk
			if hi-j < cHi-cLo {
				cHi = cLo + (hi - j)
			}
			src := ch.Row(i)[cLo:cHi]
			for k, v := range src {
				dst[j-lo+k] = float64(v)
			}
			j += cHi - cLo
		}
		if j < hi {
			copy(dst[j-lo:], t.hot.Row(i)[j-cc:hi-cc])
		}
	}
}

// GatherCols copies the given global columns (ascending not required)
// into a ws-borrowed r×len(idxs) matrix. The all-hot case — the level-1
// sample gather of the streaming update — runs as a per-row slice loop
// with no tier checks.
func (t *TieredCols) GatherCols(ws *compute.Workspace, idxs []int) *Dense {
	out := GetDenseRawOf[float64](ws, t.r, len(idxs))
	cc := t.ColdCols()
	allHot := true
	for _, j := range idxs {
		if j < cc {
			allHot = false
		}
		if j < 0 || j >= t.Cols() {
			panic(fmt.Sprintf("mat: TieredCols.GatherCols index %d out of range for %d cols", j, t.Cols()))
		}
	}
	if allHot {
		for i := 0; i < t.r; i++ {
			src := t.hot.Row(i)
			dst := out.Row(i)
			for k, j := range idxs {
				dst[k] = src[j-cc]
			}
		}
		return out
	}
	for i := 0; i < t.r; i++ {
		dst := out.Row(i)
		for k, j := range idxs {
			dst[k] = t.At(i, j)
		}
	}
	return out
}

// AddRows appends new sensor rows carrying the full column history: the
// hot slice of rows joins the hot tier, and each cold chunk gains the
// corresponding columns narrowed to float32 — so the new rows take on
// exactly the fidelity of the tier they land in.
func (t *TieredCols) AddRows(ws *compute.Workspace, rows *Dense) {
	if rows.C != t.Cols() {
		panic(fmt.Sprintf("mat: TieredCols.AddRows needs %d columns, got %d", t.Cols(), rows.C))
	}
	cc := t.ColdCols()
	hotRows := ColsView(rows, cc, rows.C)
	grown := VStackWith(ws, t.hot, hotRows)
	PutDense(ws, t.hot)
	t.hot = grown
	for ci, ch := range t.cold {
		c0 := ci * t.chunk
		g := NewDense32(t.r+rows.R, t.chunk)
		for i := 0; i < t.r; i++ {
			copy(g.Row(i), ch.Row(i))
		}
		for i := 0; i < rows.R; i++ {
			src := rows.Row(i)[c0 : c0+t.chunk]
			dst := g.Row(t.r + i)
			for k, v := range src {
				dst[k] = float32(v)
			}
		}
		t.cold[ci] = g
	}
	t.r += rows.R
}

// Promote returns the full history as one freshly allocated packed
// float64 matrix (cold values widened exactly).
func (t *TieredCols) Promote() *Dense {
	out := NewDense(t.r, t.Cols())
	t.fillWindow(out, 0, t.Cols())
	return out
}

// HotBytes returns the resident bytes of the hot tier, counting the grow
// capacity actually held.
func (t *TieredCols) HotBytes() int64 { return int64(len(t.hot.Data)) * 8 }

// ColdBytes returns the resident bytes of the cold tier.
func (t *TieredCols) ColdBytes() int64 {
	var n int64
	for _, c := range t.cold {
		n += int64(len(c.Data)) * 4
	}
	return n
}

// Narrow converts m to float32, rounding every element once.
func Narrow(m *Dense) *Dense32 {
	out := NewDense32(m.R, m.C)
	for i := 0; i < m.R; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float32(v)
		}
	}
	return out
}

// Widen converts m to float64 exactly (every float32 is representable).
func Widen(m *Dense32) *Dense {
	out := NewDense(m.R, m.C)
	for i := 0; i < m.R; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float64(v)
		}
	}
	return out
}
