package mat

import (
	"runtime"
	"sync"
)

// parallelThreshold is the flop count above which Mul fans work out to
// worker goroutines. Below it the goroutine overhead dominates.
const parallelThreshold = 1 << 18

// Mul returns a*b using a blocked i-k-j kernel, parallelized over row
// bands when the problem is large enough.
func Mul(a, b *Dense) *Dense {
	if a.C != b.R {
		panic("mat: Mul inner dimension mismatch")
	}
	out := NewDense(a.R, b.C)
	mulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b, reusing dst's storage. dst must be a.R×b.C
// and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.C != b.R {
		panic("mat: MulInto inner dimension mismatch")
	}
	if dst.R != a.R || dst.C != b.C {
		panic("mat: MulInto output shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	mulInto(dst, a, b)
}

func mulInto(out, a, b *Dense) {
	flops := a.R * a.C * b.C
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers <= 1 || a.R < 2 {
		mulRange(out, a, b, 0, a.R)
		return
	}
	if workers > a.R {
		workers = a.R
	}
	var wg sync.WaitGroup
	chunk := (a.R + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.R)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo,hi) of out += a*b with an ikj loop order so
// the inner loop streams through contiguous rows of b and out.
func mulRange(out, a, b *Dense, lo, hi int) {
	n := b.C
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// MulT returns aᵀ*b without materializing the transpose.
func MulT(a, b *Dense) *Dense {
	if a.R != b.R {
		panic("mat: MulT dimension mismatch")
	}
	out := NewDense(a.C, b.C)
	workers := runtime.GOMAXPROCS(0)
	flops := a.R * a.C * b.C
	if flops < parallelThreshold || workers <= 1 || a.C < 2 {
		mulTRange(out, a, b, 0, a.C)
		return out
	}
	if workers > a.C {
		workers = a.C
	}
	var wg sync.WaitGroup
	chunk := (a.C + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.C)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulTRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulTRange computes rows [lo,hi) of out = aᵀb. Row i of the output is
// Σ_k a[k][i] * b[k][:], streaming both a and b row-wise.
func mulTRange(out, a, b *Dense, lo, hi int) {
	n := b.C
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : k*n+n]
		for i := lo; i < hi; i++ {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			orow := out.Data[i*n : i*n+n]
			for j, bkj := range brow {
				orow[j] += aki * bkj
			}
		}
	}
}

// MulVec returns a*x for a vector x of length a.C.
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.C {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.R)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Gram returns mᵀm (C×C) if byCols, else m mᵀ (R×R). The result is
// symmetric positive semidefinite; only the upper triangle is computed
// and mirrored.
func Gram(m *Dense, byCols bool) *Dense {
	if byCols {
		return gramCols(m)
	}
	return gramRows(m)
}

func gramRows(m *Dense) *Dense {
	n := m.R
	out := NewDense(n, n)
	workers := runtime.GOMAXPROCS(0)
	if n*n*m.C < parallelThreshold || workers <= 1 {
		gramRowsRange(out, m, 0, n)
	} else {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				gramRowsRange(out, m, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Data[i*n+j] = out.Data[j*n+i]
		}
	}
	return out
}

func gramRowsRange(out, m *Dense, lo, hi int) {
	n := m.R
	for i := lo; i < hi; i++ {
		ri := m.Row(i)
		for j := i; j < n; j++ {
			rj := m.Row(j)
			var s float64
			for k, v := range ri {
				s += v * rj[k]
			}
			out.Data[i*n+j] = s
		}
	}
}

func gramCols(m *Dense) *Dense {
	// mᵀm accumulated row-by-row of m: for each row r, out += r rᵀ.
	n := m.C
	out := NewDense(n, n)
	for k := 0; k < m.R; k++ {
		row := m.Row(k)
		for i := 0; i < n; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			orow := out.Data[i*n : i*n+n]
			for j := i; j < n; j++ {
				orow[j] += ri * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Data[i*n+j] = out.Data[j*n+i]
		}
	}
	return out
}
