package mat

import (
	"unsafe"

	"imrdmd/internal/compute"
)

// parallelThreshold is the flop count above which the multiply kernels fan
// work out to the engine's worker pool. At or below it the handoff
// overhead dominates, so a problem of exactly this size stays serial
// (threshold_test.go pins the boundary).
const parallelThreshold = 1 << 18

// fanOut reports whether a kernel with the given flop count should split
// across engine e. The comparison is strict: work fans out only strictly
// above parallelThreshold.
func fanOut(e *compute.Engine, flops int) bool {
	return flops > parallelThreshold && e.Workers() > 1
}

// usePacked reports whether an m×k by k×n multiply should route through
// the packed GEMM rather than the naive loops. The boundary is inclusive
// (threshold_test.go pins it from both sides).
func usePacked(m, k, n int) bool {
	return m*k*n >= gemmMinFlops
}

// Mul returns a*b. Problems of at least gemmMinFlops run through the
// packed register-blocked GEMM (see gemm.go), fanned out over row panels
// on the shared compute engine when large enough; smaller ones use a
// serial i-k-j loop. Generic over the element tier: a float32 call uses
// the 8-wide f32 micro-kernel, a float64 call the unchanged 4-wide one.
func Mul[T Element](a, b *GDense[T]) *GDense[T] {
	return MulWith(compute.Default(), nil, a, b)
}

// MulWith computes a*b on engine e, borrowing the result from ws (pass
// nil ws to allocate). The caller owns the result; if it came from a
// workspace, return it with PutDense when done.
func MulWith[T Element](e *compute.Engine, ws *compute.Workspace, a, b *GDense[T]) *GDense[T] {
	if a.C != b.R {
		panic("mat: Mul inner dimension mismatch")
	}
	out := GetDenseRawOf[T](ws, a.R, b.C)
	mulIntoWith(e, out, a, b)
	return out
}

// MulInto computes dst = a*b, reusing dst's storage. dst must be a.R×b.C
// and must not alias a or b (aliasing panics).
func MulInto[T Element](dst, a, b *GDense[T]) {
	MulIntoWith(compute.Default(), dst, a, b)
}

// MulIntoWith computes dst = a*b on engine e. dst's prior contents are
// overwritten band-by-band inside the kernel — there is no separate
// zeroing pass — so dst may come straight from a workspace. dst must not
// alias a or b.
func MulIntoWith[T Element](e *compute.Engine, dst, a, b *GDense[T]) {
	if a.C != b.R {
		panic("mat: MulInto inner dimension mismatch")
	}
	if dst.R != a.R || dst.C != b.C {
		panic("mat: MulInto output shape mismatch")
	}
	if overlaps(dst.Data, a.Data) || overlaps(dst.Data, b.Data) {
		panic("mat: MulInto destination aliases an operand")
	}
	mulIntoWith(e, dst, a, b)
}

// MulAddIntoWith computes dst += a*b through the same kernel routing as
// MulIntoWith: existing dst contents are kept and the product accumulates
// on top, so residual flips need no intermediate product matrix.
func MulAddIntoWith[T Element](e *compute.Engine, dst, a, b *GDense[T]) {
	mulAccIntoWith(e, dst, a, b, gemmAdd)
}

// MulSubIntoWith computes dst -= a*b; see MulAddIntoWith.
func MulSubIntoWith[T Element](e *compute.Engine, dst, a, b *GDense[T]) {
	mulAccIntoWith(e, dst, a, b, gemmSub)
}

func mulAccIntoWith[T Element](e *compute.Engine, dst, a, b *GDense[T], md int) {
	if a.C != b.R {
		panic("mat: MulInto inner dimension mismatch")
	}
	if dst.R != a.R || dst.C != b.C {
		panic("mat: MulInto output shape mismatch")
	}
	if overlaps(dst.Data, a.Data) || overlaps(dst.Data, b.Data) {
		panic("mat: MulInto destination aliases an operand")
	}
	if usePacked(a.R, a.C, b.C) {
		if skinnyShape[T](a.R, a.C, b.C) {
			skinnyGemm(e, denseView(dst), denseView(a), false, denseView(b), md)
			return
		}
		gemmView(e, denseView(dst), denseView(a), false, denseView(b), false, md)
		return
	}
	mulRangeAcc(dst, a, b, 0, a.R, md)
}

// mulRangeAcc is mulRange without the zeroing pass: rows of a*b accumulate
// into (gemmAdd) or subtract from (gemmSub) the existing out rows.
func mulRangeAcc[T Element](out, a, b *GDense[T], lo, hi, md int) {
	n := b.C
	bs := b.RowStride()
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*bs : k*bs+n]
			if md == gemmSub {
				for j, bkj := range brow {
					orow[j] -= aik * bkj
				}
			} else {
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
	}
}

// overlaps reports whether the backing arrays of x and y share memory.
func overlaps[T Element](x, y []T) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	x0 := uintptr(unsafe.Pointer(&x[0]))
	x1 := x0 + uintptr(len(x))*unsafe.Sizeof(x[0])
	y0 := uintptr(unsafe.Pointer(&y[0]))
	y1 := y0 + uintptr(len(y))*unsafe.Sizeof(y[0])
	return x0 < y1 && y0 < x1
}

func mulIntoWith[T Element](e *compute.Engine, out, a, b *GDense[T]) {
	if usePacked(a.R, a.C, b.C) {
		if skinnyShape[T](a.R, a.C, b.C) {
			skinnyGemm(e, denseView(out), denseView(a), false, denseView(b), gemmSet)
			return
		}
		gemmView(e, denseView(out), denseView(a), false, denseView(b), false, gemmSet)
		return
	}
	// Below gemmMinFlops the problem is far under parallelThreshold too,
	// so the naive kernel always runs serially on the caller.
	mulRange(out, a, b, 0, a.R)
}

// mulRange computes rows [lo,hi) of out = a*b with an ikj loop order so
// the inner loop streams through contiguous rows of b and out. Each output
// row is zeroed just before accumulation, so out need not be pre-zeroed.
func mulRange[T Element](out, a, b *GDense[T], lo, hi int) {
	n := b.C
	bs := b.RowStride()
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*bs : k*bs+n]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// MulT returns aᵀ*b without materializing the transpose.
func MulT[T Element](a, b *GDense[T]) *GDense[T] {
	return MulTWith(compute.Default(), nil, a, b)
}

// MulTWith computes aᵀ*b on engine e, borrowing the result from ws (nil
// ws allocates).
func MulTWith[T Element](e *compute.Engine, ws *compute.Workspace, a, b *GDense[T]) *GDense[T] {
	if a.R != b.R {
		panic("mat: MulT dimension mismatch")
	}
	out := GetDenseRawOf[T](ws, a.C, b.C)
	mulTIntoWith(e, out, a, b)
	return out
}

// MulTIntoWith computes dst = aᵀ*b on engine e, reusing dst's storage
// (prior contents are overwritten; dst may come straight from a
// workspace or alias a caller-owned payload buffer). dst must be
// a.C×b.C and must not alias a or b.
func MulTIntoWith[T Element](e *compute.Engine, dst, a, b *GDense[T]) {
	if a.R != b.R {
		panic("mat: MulTInto dimension mismatch")
	}
	if dst.R != a.C || dst.C != b.C {
		panic("mat: MulTInto output shape mismatch")
	}
	if overlaps(dst.Data, a.Data) || overlaps(dst.Data, b.Data) {
		panic("mat: MulTInto destination aliases an operand")
	}
	mulTIntoWith(e, dst, a, b)
}

func mulTIntoWith[T Element](e *compute.Engine, out, a, b *GDense[T]) {
	if usePacked(a.C, a.R, b.C) {
		if skinnyShape[T](a.C, a.R, b.C) {
			skinnyGemm(e, denseView(out), denseView(a), true, denseView(b), gemmSet)
			return
		}
		gemmView(e, denseView(out), denseView(a), true, denseView(b), false, gemmSet)
		return
	}
	mulTRange(out, a, b, 0, a.C)
}

// mulTRange computes rows [lo,hi) of out = aᵀb. Row i of the output is
// Σ_k a[k][i] * b[k][:], streaming both a and b row-wise. The band's
// output rows are zeroed up front, so out need not be pre-zeroed.
func mulTRange[T Element](out, a, b *GDense[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bkj := range brow {
				orow[j] += aki * bkj
			}
		}
	}
}

// MulVec returns a*x for a vector x of length a.C.
func MulVec[T Element](a *GDense[T], x []T) []T {
	if len(x) != a.C {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]T, a.R)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		var s T
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Gram returns mᵀm (C×C) if byCols, else m mᵀ (R×R). The result is
// symmetric positive semidefinite, with exact symmetry pinned by
// mirroring the upper triangle (the small-input paths compute only that
// triangle; the packed-GEMM path computes both and re-mirrors).
func Gram[T Element](m *GDense[T], byCols bool) *GDense[T] {
	return GramWith(compute.Default(), nil, m, byCols)
}

// GramWith computes the Gram matrix on engine e, borrowing the result
// from ws (nil ws allocates).
func GramWith[T Element](e *compute.Engine, ws *compute.Workspace, m *GDense[T], byCols bool) *GDense[T] {
	n := m.C
	if !byCols {
		n = m.R
	}
	out := GetDenseRawOf[T](ws, n, n)
	GramIntoWith(e, out, m, byCols)
	return out
}

// GramIntoWith computes dst = mᵀm (byCols) or m mᵀ into dst, reusing
// dst's storage — for callers accumulating into a collective payload
// without an intermediate copy. dst must be square of the appropriate
// dimension and must not alias m.
func GramIntoWith[T Element](e *compute.Engine, dst *GDense[T], m *GDense[T], byCols bool) {
	n := m.C
	if !byCols {
		n = m.R
	}
	if dst.R != n || dst.C != n {
		panic("mat: GramInto output shape mismatch")
	}
	if overlaps(dst.Data, m.Data) {
		panic("mat: GramInto destination aliases the operand")
	}
	if byCols {
		gramColsInto(e, dst, m)
	} else {
		gramRowsInto(e, dst, m)
	}
}

func gramRowsInto[T Element](e *compute.Engine, out *GDense[T], m *GDense[T]) {
	n := m.R
	if usePacked(n, m.C, n) {
		// m·mᵀ through the packed kernel; the transpose is absorbed by
		// the B-packing read. The product is symmetric by construction
		// (identical per-element accumulation order for (i,j) and (j,i)),
		// but the upper triangle is mirrored anyway to pin the exact
		// symmetry the eigensolver relies on.
		gemmView(e, denseView(out), denseView(m), false, denseView(m), true, gemmSet)
	} else {
		gramRowsRange(out, m, 0, n)
	}
	mirrorUpperToLower(out)
}

func gramRowsRange[T Element](out, m *GDense[T], lo, hi int) {
	n := m.R
	for i := lo; i < hi; i++ {
		ri := m.Row(i)
		for j := i; j < n; j++ {
			rj := m.Row(j)
			var s T
			for k, v := range ri {
				s += v * rj[k]
			}
			out.Data[i*n+j] = s
		}
	}
}

func gramColsInto[T Element](e *compute.Engine, out *GDense[T], m *GDense[T]) {
	// mᵀm through the skinny or packed kernel when large; the rank-1
	// accumulation below handles small inputs without packing overhead.
	n := m.C
	if usePacked(n, m.R, n) {
		if skinnyShape[T](n, m.R, n) {
			skinnyGemm(e, denseView(out), denseView(m), true, denseView(m), gemmSet)
		} else {
			gemmView(e, denseView(out), denseView(m), true, denseView(m), false, gemmSet)
		}
		mirrorUpperToLower(out)
		return
	}
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k := 0; k < m.R; k++ {
		row := m.Row(k)
		for i := 0; i < n; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			orow := out.Row(i)
			for j := i; j < n; j++ {
				orow[j] += ri * row[j]
			}
		}
	}
	mirrorUpperToLower(out)
}

// mirrorUpperToLower copies the strict upper triangle of the square
// matrix out onto its lower triangle, pinning exact symmetry.
func mirrorUpperToLower[T Element](out *GDense[T]) {
	n := out.C
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Data[i*n+j] = out.Data[j*n+i]
		}
	}
}
