//go:build amd64

package mat

import "unsafe"

// On amd64 the four-row interleave — the hot inner loop of packA (plain
// orientation) and packB (transposed orientation), ~15% of GEMM time at
// 512³ when run as scalar Go — is an AVX shuffle kernel: load one vector
// from each of the four rows, transpose the register block (4×4 doubles
// via VUNPCKL/HPD + VPERM2F128, 4×8 floats via VUNPCKL/HPS + VSHUFPS +
// VEXTRACTF128) and store whole packed columns. The asm handles the
// vector-aligned prefix; the ragged column tail falls through to the Go
// loop shifted past it. The generic tier keeps everything in Go so the
// forced-fallback CI leg exercises the portable path end to end.

// interleave4F64 interleaves four float64 rows: dst[p·dstStride+r] =
// src[r·srcStride+p] for r < 4, p < n. n must be a multiple of 4;
// len(src) must cover element 3·srcStride + n - 1 and len(dst) element
// (n-1)·dstStride + 3. Requires AVX (gated on the AVX2 kernel tier).
//
//go:noescape
func interleave4F64(dst []float64, dstStride int, src []float64, srcStride, n int)

// interleave4F32 is the float32 variant; n must be a multiple of 8.
//
//go:noescape
func interleave4F32(dst []float32, dstStride int, src []float32, srcStride, n int)

func interleave4[T Element](dst []T, dstStride int, src []T, srcStride, n int) {
	if gemmTier == tierGeneric {
		interleave4Go(dst, dstStride, src, srcStride, n)
		return
	}
	var z T
	if unsafe.Sizeof(z) == 8 {
		nb := n &^ 3
		if nb > 0 {
			interleave4F64(sliceOf[float64](dst), dstStride, sliceOf[float64](src), srcStride, nb)
		}
		if nb < n {
			interleave4Go(dst[nb*dstStride:], dstStride, src[nb:], srcStride, n-nb)
		}
		return
	}
	nb := n &^ 7
	if nb > 0 {
		interleave4F32(sliceOf[float32](dst), dstStride, sliceOf[float32](src), srcStride, nb)
	}
	if nb < n {
		interleave4Go(dst[nb*dstStride:], dstStride, src[nb:], srcStride, n-nb)
	}
}
