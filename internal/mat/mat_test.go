package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	if len(m.Data) != 12 {
		t.Fatalf("len(Data) = %d want 12", len(m.Data))
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	if got := m.Data[1*3+2]; got != 7.5 {
		t.Fatalf("row-major layout violated: %v", got)
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 7, 5)
	tr := m.T()
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(20)
		c := 1 + rng.Intn(20)
		m := randDense(rng, r, c)
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 6, 6)
	p := Mul(m, Eye(6))
	for i := range m.Data {
		if !almostEq(m.Data[i], p.Data[i], 1e-14) {
			t.Fatalf("A·I ≠ A at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if p.Data[i] != w {
			t.Fatalf("Mul known product: got %v want %v", p.Data, want)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulParallelMatchesSerial(t *testing.T) {
	// Large enough to cross the parallel threshold.
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 130, 90)
	b := randDense(rng, 90, 110)
	p := Mul(a, b)
	// Serial reference.
	ref := NewDense(130, 110)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			for j := 0; j < b.C; j++ {
				ref.Data[i*ref.C+j] += a.At(i, k) * b.At(k, j)
			}
		}
	}
	if d := Sub(p, ref).FrobNorm(); d > 1e-10 {
		t.Fatalf("parallel multiply deviates from serial by %g", d)
	}
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 40, 30)
	b := randDense(rng, 40, 20)
	got := MulT(a, b)
	want := Mul(a.T(), b)
	if d := Sub(got, want).FrobNorm(); d > 1e-10 {
		t.Fatalf("MulT deviates by %g", d)
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	got := MulVec(a, []float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v want [17 39]", got)
	}
}

func TestGramMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 30, 12)
	gc := Gram(a, true)
	wantC := Mul(a.T(), a)
	if d := Sub(gc, wantC).FrobNorm(); d > 1e-10 {
		t.Fatalf("Gram cols deviates by %g", d)
	}
	gr := Gram(a, false)
	wantR := Mul(a, a.T())
	if d := Sub(gr, wantR).FrobNorm(); d > 1e-10 {
		t.Fatalf("Gram rows deviates by %g", d)
	}
}

func TestGramSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 2+rng.Intn(20), 2+rng.Intn(20))
		g := Gram(a, true)
		for i := 0; i < g.R; i++ {
			for j := 0; j < g.C; j++ {
				if g.At(i, j) != g.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHStackVStack(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 1, []float64{9, 10})
	h := HStack(a, b)
	if h.C != 3 || h.At(0, 2) != 9 || h.At(1, 2) != 10 {
		t.Fatalf("HStack wrong: %+v", h)
	}
	c := NewDenseData(1, 2, []float64{7, 8})
	v := VStack(a, c)
	if v.R != 3 || v.At(2, 0) != 7 || v.At(2, 1) != 8 {
		t.Fatalf("VStack wrong: %+v", v)
	}
}

func TestColSliceRowSlice(t *testing.T) {
	a := NewDenseData(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	cs := a.ColSlice(1, 3)
	if cs.R != 2 || cs.C != 2 || cs.At(0, 0) != 2 || cs.At(1, 1) != 7 {
		t.Fatalf("ColSlice wrong: %+v", cs)
	}
	rs := a.RowSlice(1, 2)
	if rs.R != 1 || rs.At(0, 0) != 5 {
		t.Fatalf("RowSlice wrong: %+v", rs)
	}
}

func TestSubsample(t *testing.T) {
	a := NewDenseData(1, 7, []float64{0, 1, 2, 3, 4, 5, 6})
	s := a.Subsample(3)
	want := []float64{0, 3, 6}
	if s.C != 3 {
		t.Fatalf("Subsample cols = %d want 3", s.C)
	}
	for i, w := range want {
		if s.At(0, i) != w {
			t.Fatalf("Subsample = %v want %v", s.Row(0), want)
		}
	}
	// stride 1 must be a copy, not an alias
	s1 := a.Subsample(1)
	s1.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Subsample(1) aliased the source")
	}
}

func TestFrobNorm(t *testing.T) {
	a := NewDenseData(1, 2, []float64{3, 4})
	if got := a.FrobNorm(); !almostEq(got, 5, 1e-14) {
		t.Fatalf("FrobNorm = %v want 5", got)
	}
}

func TestHasNaN(t *testing.T) {
	a := NewDense(2, 2)
	if a.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	a.Set(0, 1, math.NaN())
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
	a.Set(0, 1, math.Inf(1))
	if !a.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestQRFactorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(30)
		n := 1 + rng.Intn(m)
		a := randDense(rng, m, n)
		qr := QRFactor(a)
		// Q orthonormal.
		qtq := Mul(qr.Q.T(), qr.Q)
		if d := Sub(qtq, Eye(n)).FrobNorm(); d > 1e-10 {
			return false
		}
		// QR = A.
		if d := Sub(Mul(qr.Q, qr.R), a).FrobNorm(); d > 1e-10*(1+a.FrobNorm()) {
			return false
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLstSqExactSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 10, 4)
	xTrue := []float64{1, -2, 3, 0.5}
	b := MulVec(a, xTrue)
	x := LstSq(a, b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("LstSq = %v want %v", x, xTrue)
		}
	}
}

func TestLstSqResidualOrthogonal(t *testing.T) {
	// Least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 20, 5)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := LstSq(a, b)
	ax := MulVec(a, x)
	res := make([]float64, 20)
	for i := range res {
		res[i] = b[i] - ax[i]
	}
	for j := 0; j < a.C; j++ {
		var dot float64
		for i := 0; i < a.R; i++ {
			dot += a.At(i, j) * res[i]
		}
		if math.Abs(dot) > 1e-9 {
			t.Fatalf("residual not orthogonal to column %d: %g", j, dot)
		}
	}
}

func TestSolveUpperSingularGivesFiniteSolution(t *testing.T) {
	r := NewDenseData(2, 2, []float64{1, 1, 0, 0})
	x := SolveUpper(r, []float64{2, 0})
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("singular solve produced non-finite value %v", x)
		}
	}
}

func TestCLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	a := NewCDense(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	xTrue := make([]complex128, n)
	for i := range xTrue {
		xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := CMulVec(a, xTrue)
	lu := CLUFactor(a)
	x := lu.Solve(b)
	for i := range x {
		if d := x[i] - xTrue[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("CLU solve wrong at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestCLstSqExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, n := 12, 5
	a := NewCDense(m, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	xTrue := make([]complex128, n)
	for i := range xTrue {
		xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := CMulVec(a, xTrue)
	x := CLstSq(a, b)
	for i := range x {
		if d := x[i] - xTrue[i]; math.Hypot(real(d), imag(d)) > 1e-8 {
			t.Fatalf("CLstSq wrong at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestComplexRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 4, 6)
	back := RealPart(Complex(a))
	if d := Sub(a, back).FrobNorm(); d != 0 {
		t.Fatalf("Complex/RealPart round trip deviates by %g", d)
	}
}

func TestCMulKnown(t *testing.T) {
	a := NewCDense(1, 2)
	a.Set(0, 0, complex(0, 1))
	a.Set(0, 1, complex(1, 0))
	b := NewCDense(2, 1)
	b.Set(0, 0, complex(0, 1))
	b.Set(1, 0, complex(2, 0))
	p := CMul(a, b)
	if got := p.At(0, 0); got != complex(1, 0) {
		t.Fatalf("CMul = %v want (1+0i)", got)
	}
}

func TestDiagOfAndEye(t *testing.T) {
	d := DiagOf([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatal("DiagOf wrong")
	}
	e := Eye(3)
	if d2 := Sub(Mul(d, e), d).FrobNorm(); d2 != 0 {
		t.Fatal("Eye is not multiplicative identity")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{4, 5, 6})
	if got := Add(a, b).Data[2]; got != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data[0]; got != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a).Data[1]; got != 4 {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	SubInPlace(c, a)
	if c.FrobNorm() != 0 {
		t.Fatal("SubInPlace wrong")
	}
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 256, 256)
	y := randDense(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkGram1000x200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 1000, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(x, true)
	}
}
