package mat

import (
	"unsafe"

	"imrdmd/internal/compute"
)

// Pack-free dispatch tier for small and skinny shapes. The packed GEMM
// (gemm.go) buys its throughput by copying both operands into
// tile-ordered buffers; that copy amortizes over NR column reuses of
// every packed A element. The streaming-update hot path is dominated by
// shapes where it cannot amortize:
//
//	skinny-B        n ≤ NR      one strip of B; packing A costs a full
//	                            extra pass over the big operand
//	inner-product   m, n small  Uᵀ·c projections: k is the huge
//	                k large     dimension, both outputs fit in registers
//	outer-product   k ≤ NR      rank-w updates: every A element is used
//	                m large     at most w times
//	small panel     m, n ≤ 64   reorth's q×q collectives
//
// For these the driver below reads A and B in place. One micro-kernel
// per precision serves all shapes through a unified addressing scheme:
// element A(r, p) lives at a[r·aOff + p·aStep], so a plain operand uses
// (aOff, aStep) = (lda, 1) and a transposed one (1, lda) — the transpose
// costs nothing, exactly as packing absorbed it before.
//
// Numeric contract: every output element accumulates over the identical
// per-element chain the packed path uses — ascending-p FMA (asm tiers)
// or unfused multiply-add (generic tier) within each KC chunk, chunks
// merged in ascending order with the same first-chunk-set/later-add
// scheme as gemmView. Row padding in the packed path never enters a
// valid element's chain, so the pack-free results are bit-identical to
// the packed ones on every tier and IMRDMD_GEMM_SKINNY=off is an escape
// hatch, not a numeric switch (skinny_test.go pins this).

// skinnyShape reports whether an m×k by k×n multiply (B untransposed)
// that already cleared gemmMinFlops should take the pack-free tier.
// The predicates mirror the shapes above; n ≤ NR also catches every
// multiply whose packed route would pad B's single strip to NR columns.
func skinnyShape[T Element](m, k, n int) bool {
	if !gemmSkinny {
		return false
	}
	p := gemmParams[T]()
	return n <= p.nr || m < p.mr || k <= p.nr || (m <= 64 && n <= 64)
}

// skinnyTile returns the register-tile geometry for element type T on
// the active tier: tr rows by one vector of lanes columns. The generic
// tier borrows the 512-bit geometry — the portable kernel handles any
// (rows ≤ tr, w ≤ lanes) directly, and wider tiles mean fewer calls.
func skinnyTile[T Element]() (tr, lanes int) {
	var z T
	if gemmTier == tierAVX2 {
		if unsafe.Sizeof(z) == 8 {
			return 4, 4
		}
		return 4, 8
	}
	if unsafe.Sizeof(z) == 8 {
		return 8, 8
	}
	return 8, 16
}

// skinnyGemm computes dst = A·B (mode gemmSet), dst += A·B (gemmAdd) or
// dst −= A·B (gemmSub) without packing, where A is a (or aᵀ when aT)
// and B is b, never transposed (the classifier excludes bT shapes). The
// loop nest is row tiles → lane-wide column chunks → KC depth chunks,
// so an inner-product shape streams each A row strip exactly once and a
// rank-w update keeps its tiny B block register-resident. Fan-out
// splits the row tiles across engine workers; every output element is
// owned by one worker with the serial accumulation order, so engine and
// serial runs agree bit for bit.
func skinnyGemm[T Element](e *compute.Engine, dst view[T], a view[T], aT bool, b view[T], mode int) {
	m, n := dst.r, dst.c
	k := a.c
	aOff, aStep := a.stride, 1
	if aT {
		k = a.r
		aOff, aStep = 1, a.stride
	}
	if k != b.r {
		panic("mat: skinny gemm inner dimension mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if mode == gemmSet {
			for i := 0; i < m; i++ {
				row := dst.data[i*dst.stride : i*dst.stride+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	p := gemmParams[T]()
	tr, lanes := skinnyTile[T]()
	kcMax := min(p.kc, k)
	tiles := (m + tr - 1) / tr

	run := func(lo, hi int) {
		// Edge row tiles (rows < tr) on the asm tiers go through a
		// zero-padded A scratch so the full-tile kernel still runs — the
		// zero rows feed accumulators whose results are discarded at the
		// merge, leaving valid elements' chains untouched. The generic
		// kernel takes short tiles directly. Scratch is borrowed lazily:
		// tile-aligned m (the common case) never allocates.
		var ascratch []T
		var ctile [mrMax * nrMax]T
		for ti := lo; ti < hi; ti++ {
			i0 := ti * tr
			rows := min(tr, m-i0)
			direct := rows == tr || gemmTier == tierGeneric
			for jc := 0; jc < n; jc += lanes {
				w := min(lanes, n-jc)
				ci := i0*dst.stride + jc
				for pc := 0; pc < k; pc += p.kc {
					kc := min(p.kc, k-pc)
					md := mode
					if mode == gemmSet && pc > 0 {
						md = gemmAdd
					}
					bb := b.data[pc*b.stride+jc:]
					if direct {
						ab := a.data[i0*aOff+pc*aStep:]
						skinnyKernel(dst.data[ci:], dst.stride, ab, aOff, aStep, bb, b.stride, rows, w, kc, md)
						continue
					}
					if ascratch == nil {
						ascratch = compute.GetFloats[T](packPool, tr*kcMax)
					}
					for r := 0; r < rows; r++ {
						srow := ascratch[r*kc : r*kc+kc]
						if aT {
							for pp := range srow {
								srow[pp] = a.data[(pc+pp)*aStep+i0+r]
							}
						} else {
							copy(srow, a.data[(i0+r)*aOff+pc:(i0+r)*aOff+pc+kc])
						}
					}
					for i := range ascratch[rows*kc : tr*kc] {
						ascratch[rows*kc+i] = 0
					}
					for i := range ctile[:tr*lanes] {
						ctile[i] = 0
					}
					skinnyKernel(ctile[:], lanes, ascratch, kc, 1, bb, b.stride, tr, w, kc, gemmSet)
					for r := 0; r < rows; r++ {
						drow := dst.data[ci+r*dst.stride : ci+r*dst.stride+w]
						trow := ctile[r*lanes : r*lanes+w]
						switch md {
						case gemmAdd:
							for t := range drow {
								drow[t] += trow[t]
							}
						case gemmSub:
							for t := range drow {
								drow[t] -= trow[t]
							}
						default:
							copy(drow, trow)
						}
					}
				}
			}
		}
		if ascratch != nil {
			compute.PutFloats(packPool, ascratch)
		}
	}
	if fanOut(e, m*k*n) && tiles > 1 {
		e.ParallelFor(tiles, run)
	} else {
		run(0, tiles)
	}
}

// skinnyKernel dispatches one register tile to the per-type kernel
// (asm on the AVX tiers for full-height tiles, the portable twin
// otherwise). c must expose (rows−1)·ldc+w elements, a the addressing
// span (rows−1)·aOff+(kc−1)·aStep+1, b (kc−1)·ldb+w.
func skinnyKernel[T Element](c []T, ldc int, a []T, aOff, aStep int, b []T, ldb, rows, w, kc, mode int) {
	var z T
	if unsafe.Sizeof(z) == 8 {
		skinnyKern64(sliceOf[float64](c), ldc, sliceOf[float64](a), aOff, aStep, sliceOf[float64](b), ldb, rows, w, kc, mode)
		return
	}
	skinnyKern32(sliceOf[float32](c), ldc, sliceOf[float32](a), aOff, aStep, sliceOf[float32](b), ldb, rows, w, kc, mode)
}

// skinnyKernGo is the portable micro-kernel, shared by the generic tier
// and non-amd64 builds. Accumulation is per-element ascending-p unfused
// multiply-add — the same chain as the packed portable kernels
// (gemm_kernels_go.go), which Go does not contract into FMA on amd64 —
// so packed and pack-free results match bit for bit on the generic tier.
func skinnyKernGo[T Element](c []T, ldc int, a []T, aOff, aStep int, b []T, ldb, rows, w, kc, mode int) {
	var acc [mrMax][nrMax]T
	for p := 0; p < kc; p++ {
		brow := b[p*ldb : p*ldb+w]
		ai := p * aStep
		for r := 0; r < rows; r++ {
			ar := a[ai+r*aOff]
			crow := &acc[r]
			for t, bv := range brow {
				crow[t] += ar * bv
			}
		}
	}
	for r := 0; r < rows; r++ {
		drow := c[r*ldc : r*ldc+w]
		arow := acc[r][:w]
		switch mode {
		case gemmAdd:
			for t := range drow {
				drow[t] += arow[t]
			}
		case gemmSub:
			for t := range drow {
				drow[t] -= arow[t]
			}
		default:
			copy(drow, arow)
		}
	}
}
