//go:build !amd64

package mat

// Non-amd64 builds run the portable skinny kernel at every tile shape
// (the tier is always generic there; see gemm_generic.go).

func skinnyKern64(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, rows, w, kc, mode int) {
	skinnyKernGo(c, ldc, a, aOff, aStep, b, ldb, rows, w, kc, mode)
}

func skinnyKern32(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, rows, w, kc, mode int) {
	skinnyKernGo(c, ldc, a, aOff, aStep, b, ldb, rows, w, kc, mode)
}
