package mat

import (
	"math/rand"
	"testing"
)

func benchDense(r, c int, seed int64) *Dense {
	return randDense(rand.New(rand.NewSource(seed)), r, c)
}

func BenchmarkMul(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			a := benchDense(n, n, 1)
			c := benchDense(n, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Mul(a, c)
			}
		})
	}
}

func BenchmarkMulInto(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			a := benchDense(n, n, 1)
			c := benchDense(n, n, 2)
			dst := NewDense(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulInto(dst, a, c)
			}
		})
	}
}

func BenchmarkMulT(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			a := benchDense(n, n, 1)
			c := benchDense(n, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = MulT(a, c)
			}
		})
	}
}

func benchSize(n int) string {
	switch n {
	case 64:
		return "64x64"
	case 256:
		return "256x256"
	case 512:
		return "512x512"
	case 1024:
		return "1024x1024"
	}
	return "n"
}
