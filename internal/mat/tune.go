package mat

import (
	"os"
	"strings"
	"time"
	"unsafe"

	"imrdmd/internal/compute"
)

// This file picks the GEMM kernel tier and cache-blocking parameters at
// boot. Three tiers exist:
//
//	tierGeneric — portable Go micro-kernels (4×4 f64, 4×8 f32)
//	tierAVX2    — 256-bit asm micro-kernels (4×4 f64, 4×8 f32)
//	tierAVX512  — 512-bit asm micro-kernels (8×16 in both precisions)
//
// and each (tier, element type) pair gets its own blockParams: the
// micro-tile geometry MR×NR plus the Goto/BLIS cache blocks KC/MC/NC.
// Geometry follows the tier (a 512-bit kernel wants an 8-row strip);
// blocking follows the machine, derived once at boot from the probed
// cache sizes (CPUID on amd64, a bounded timed sweep elsewhere or when
// CPUID is masked).
//
// KC is special: it splits the k-reduction into register-accumulated
// chunks, so changing it changes last-bit rounding. It is therefore part
// of the numeric contract and is derived from L1 only for the AVX-512
// tier, which has no prior output to preserve; the AVX2 and generic
// tiers keep KC=256 so their results stay bit-identical to every
// previous release. MC and NC only partition independent outputs — any
// value yields bit-identical results — so they float freely on every
// tier.
//
// Two environment knobs pin the configuration for reproducibility:
//
//	IMRDMD_GEMM_KERNEL = generic | avx2 | avx512 | auto
//	    caps the dispatch tier (never raises it above the hardware);
//	    "generic" forces the portable Go kernels and Go pack routines.
//	IMRDMD_GEMM_TUNE = off
//	    skips cache probing and pins KC/MC/NC at the historical
//	    256/128/512 for every tier (micro-tile geometry still follows
//	    the tier).
//	IMRDMD_GEMM_SKINNY = off
//	    disables the pack-free small/skinny-shape dispatch tier
//	    (skinny.go), forcing every above-threshold multiply through the
//	    packed path. The skinny kernels replay the packed path's exact
//	    per-element accumulation order (same KC chunking, same FMA or
//	    mul-add shape per tier), so flipping this knob is bit-neutral —
//	    the escape hatch exists for triage, not numerics.

// kernelTier identifies which micro-kernel family gemmKernel dispatches
// to. The zero value is the portable tier, so a GEMM that somehow runs
// before package init (another package's var initializer) is safe.
type kernelTier int

const (
	tierGeneric kernelTier = iota
	tierAVX2
	tierAVX512
)

func (t kernelTier) String() string {
	switch t {
	case tierAVX512:
		return "avx512"
	case tierAVX2:
		return "avx2"
	default:
		return "generic"
	}
}

// blockParams is the per-element-type kernel configuration: micro-tile
// geometry (mr rows × nr columns, nr one vector of elements) and the
// cache-blocking sizes consulted by gemmView.
type blockParams struct {
	mr, nr     int
	kc, mc, nc int
}

// cacheInfo is the probed per-core cache hierarchy in bytes; zero means
// unknown (deriveParams substitutes conservative defaults).
type cacheInfo struct {
	l1d, l2, l3 int
}

// Package-level kernel configuration, resolved once in dependency order:
// tier first (hardware capped by IMRDMD_GEMM_KERNEL), then the cache
// probe (skipped under IMRDMD_GEMM_TUNE=off), then per-type blocking.
var (
	gemmTuned    = os.Getenv("IMRDMD_GEMM_TUNE") != "off"
	gemmSkinny   = os.Getenv("IMRDMD_GEMM_SKINNY") != "off"
	gemmTier     = resolveTier(detectKernelTier(), os.Getenv("IMRDMD_GEMM_KERNEL"))
	kernelCaches = probeCaches(gemmTuned)
	bp64         = deriveParams(gemmTier, 8, kernelCaches, gemmTuned, compute.Default().Workers())
	bp32         = deriveParams(gemmTier, 4, kernelCaches, gemmTuned, compute.Default().Workers())
)

// gemmParams returns the active blocking for element type T. The sizeof
// branch folds per instantiation; the var read is the only runtime cost.
func gemmParams[T Element]() blockParams {
	var z T
	if unsafe.Sizeof(z) == 8 {
		return bp64
	}
	return bp32
}

// resolveTier caps the detected tier with the IMRDMD_GEMM_KERNEL knob.
// The env can lower the tier (forcing fallback paths into CI on any
// host) but never raise it above what the hardware supports.
func resolveTier(detected kernelTier, env string) kernelTier {
	switch strings.ToLower(strings.TrimSpace(env)) {
	case "generic", "off":
		return tierGeneric
	case "avx2":
		if detected > tierAVX2 {
			return tierAVX2
		}
		return detected
	default: // "", "auto", "avx512", unknown values
		return detected
	}
}

// probeCaches returns the cache hierarchy: CPUID enumeration where the
// architecture provides it, otherwise (or when CPUID is masked by a
// hypervisor) a bounded timed sweep. Untuned runs skip probing entirely.
func probeCaches(tuned bool) cacheInfo {
	if !tuned {
		return cacheInfo{}
	}
	ci := cpuidCaches()
	if ci.l1d == 0 {
		ci = sweepCaches()
	}
	return ci
}

// deriveParams computes the blocking for one (tier, element size) pair.
// Derivation targets (the standard Goto/BLIS residency argument):
//
//	KC·NR·esize ≈ L1d/2     one packed B strip stays L1-resident across a
//	                        panel row of tiles (AVX-512 tier only; see the
//	                        numeric-contract note atop this file)
//	MC·KC·esize ≈ L2/3      one packed A panel stays L2-resident across
//	                        the whole NC loop, leaving room for the B
//	                        strip stream and dst traffic
//	NC·KC·esize ≈ L3/w/8    bounds the shared B panel by this worker's
//	                        *share* of the L3 — w concurrent engine lanes
//	                        each stream their own A panels against it, so
//	                        sizing against the full cache overcommits it
//	                        w-fold; larger NC amortizes A packing over
//	                        more columns, capped so pooled pack buffers
//	                        stay moderate
//
// all rounded down to their tile multiple and clamped to sane ranges.
// workers is the engine fan-out width (engine.Workers()); NC is the only
// output that depends on it — MC and KC are per-lane L2/L1 quantities and
// the caches below L3 are private per core.
func deriveParams(tier kernelTier, esize int, caches cacheInfo, tuned bool, workers int) blockParams {
	p := blockParams{mr: 4, nr: 32 / esize, kc: 256, mc: 128, nc: 512}
	if tier == tierAVX512 {
		// 8×16 in both precisions: one 512-bit vector of floats per row,
		// two of doubles — the doubled f64 width halves the broadcast-load
		// pressure per FMA, which is what the 8-wide tile is bound by.
		p.mr, p.nr = 8, 16
	}
	if !tuned {
		return p
	}
	l1, l2, l3 := caches.l1d, caches.l2, caches.l3
	if l1 == 0 {
		l1 = 32 << 10
	}
	if l2 == 0 {
		l2 = 1 << 20
	}
	if l3 == 0 {
		l3 = 8 << 20
	}
	if tier == tierAVX512 {
		p.kc = clampMult(l1/2/(p.nr*esize), 8, 128, 1024)
	}
	p.mc = clampMult(l2/3/(p.kc*esize), p.mr, 4*p.mr, 512)
	if workers < 1 {
		workers = 1
	}
	p.nc = clampMult(l3/workers/8/(p.kc*esize), p.nr, 4*p.nr, 1024)
	return p
}

// clampMult rounds v down to a multiple of mult and clamps it to
// [lo, hi] (lo and hi must themselves be multiples of mult).
func clampMult(v, mult, lo, hi int) int {
	v = v / mult * mult
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sweepSink keeps the sweep's loads observable so the compiler cannot
// delete them.
var sweepSink byte

// sweepCaches estimates L1d and L2 by timing line-strided passes over
// growing working sets and finding where the per-line cost jumps. It is
// the fallback for hosts where CPUID reports nothing (non-amd64 builds,
// masked hypervisor leaves); the whole sweep touches ≤2 MiB and is
// bounded to a few hundred microseconds of boot time. L3 is left
// unknown — deriveParams substitutes a conservative default — because
// sizing it by timing needs working sets too large for a boot probe.
func sweepCaches() cacheInfo {
	const line = 64
	sizes := []int{16 << 10, 32 << 10, 48 << 10, 64 << 10, 96 << 10,
		128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}
	buf := make([]byte, sizes[len(sizes)-1])
	for i := range buf {
		buf[i] = byte(i)
	}
	perLine := make([]float64, len(sizes))
	var sink byte
	for i, sz := range sizes {
		lines := sz / line
		reps := (1 << 15) / lines
		if reps < 1 {
			reps = 1
		}
		// One warm pass off the clock, then the timed repetitions.
		for off := 0; off < sz; off += line {
			sink += buf[off]
		}
		//imrdmd:allow detorder -- boot-time cache-size probe; runs once before any batch, never on the kernel path
		start := time.Now()
		for r := 0; r < reps; r++ {
			for off := 0; off < sz; off += line {
				sink += buf[off]
			}
		}
		//imrdmd:allow detorder -- boot-time cache-size probe; runs once before any batch, never on the kernel path
		perLine[i] = float64(time.Since(start)) / float64(reps*lines)
	}
	sweepSink = sink

	// A size still inside a cache level costs within ~1.5× of the level's
	// fastest size; the first size past a knee jumps above it.
	var ci cacheInfo
	base := perLine[0]
	i := 0
	for ; i < len(sizes) && perLine[i] <= 1.5*base; i++ {
		ci.l1d = sizes[i]
	}
	if i < len(sizes) {
		base = perLine[i]
		for ; i < len(sizes) && perLine[i] <= 1.5*base; i++ {
			ci.l2 = sizes[i]
		}
	}
	// A sweep that never found a knee (uniform timings: tiny machine or
	// noisy clock) reports nothing rather than claiming a 2 MiB L1.
	if ci.l1d >= sizes[len(sizes)-1] {
		return cacheInfo{}
	}
	return ci
}

// KernelParams is the public mirror of one element type's blocking, as
// reported by Kernel (and recorded in paperbench's BENCH snapshots so
// perf trajectories are comparable across hosts).
type KernelParams struct {
	MR, NR, KC, MC, NC int
}

// KernelInfo describes the GEMM dispatch configuration chosen at boot.
type KernelInfo struct {
	// Tier is the micro-kernel family: "avx512", "avx2" or "generic".
	Tier string
	// Tuned is false when IMRDMD_GEMM_TUNE=off pinned the historical
	// blocking constants instead of deriving them from the cache probe.
	Tuned bool
	// Skinny is false when IMRDMD_GEMM_SKINNY=off disabled the pack-free
	// small/skinny-shape dispatch tier.
	Skinny bool
	// L1D, L2, L3 are the probed cache sizes in bytes (0 = unknown or
	// probing skipped).
	L1D, L2, L3 int
	// F64 and F32 are the per-precision tile geometry and blocking.
	F64, F32 KernelParams
}

// Kernel reports the boot-time kernel configuration.
func Kernel() KernelInfo {
	pub := func(p blockParams) KernelParams {
		return KernelParams{MR: p.mr, NR: p.nr, KC: p.kc, MC: p.mc, NC: p.nc}
	}
	return KernelInfo{
		Tier:   gemmTier.String(),
		Tuned:  gemmTuned,
		Skinny: gemmSkinny,
		L1D:    kernelCaches.l1d,
		L2:     kernelCaches.l2,
		L3:     kernelCaches.l3,
		F64:    pub(bp64),
		F32:    pub(bp32),
	}
}
