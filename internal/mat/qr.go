package mat

import (
	"math"

	"imrdmd/internal/compute"
)

// GQR holds a thin (economy) QR factorization A = Q R with Q m×n
// column-orthonormal and R n×n upper triangular, for m ≥ n, over either
// element tier.
type GQR[T Element] struct {
	Q *GDense[T]
	R *GDense[T]
}

// QR is the float64 thin QR factorization.
type QR = GQR[float64]

// qrPanel is the blocked-QR panel width: columns are factored panel by
// panel, and each panel is orthogonalized against all previous columns
// with two GEMM passes (the trailing-matrix update) before the
// column-by-column MGS runs inside the panel. 32 keeps the panel (32
// contiguous rows of the transposed working copy) L1-resident for typical
// row counts while giving the trailing update tall-enough GEMM operands.
const qrPanel = 32

// QRFactor computes the thin QR factorization of a (m×n, m ≥ n) by
// blocked modified Gram–Schmidt with re-orthogonalization. Panels of
// qrPanel columns are first orthogonalized against the already-factored
// columns via the packed GEMM (two passes — block CGS2, numerically
// comparable to Householder for the well- to moderately-conditioned
// matrices this package sees), then factored internally by two-pass MGS.
// Q stays explicit, which the incremental-SVD layer needs.
func QRFactor[T Element](a *GDense[T]) *GQR[T] {
	return QRFactorOn(compute.Default(), nil, a)
}

// QRFactorWith is QRFactor with Q and R borrowed from ws (nil ws
// allocates). Return both factors with PutDense (or qr.Release) when the
// factorization is no longer needed.
func QRFactorWith[T Element](ws *compute.Workspace, a *GDense[T]) *GQR[T] {
	return QRFactorOn(compute.Default(), ws, a)
}

// QRFactorOn is QRFactorWith with the trailing-matrix GEMM updates routed
// through engine e (nil e runs them serially). Generic over the element
// tier: the float32 instantiation is the screening SVD's preconditioner.
//
// The factorization works on the transpose of a: columns become
// contiguous rows, so every dot product, axpy and norm in the panel
// streams unit-stride, and the trailing update is a pair of view-GEMMs
// over row blocks. The result is transposed back into Q at the end.
func QRFactorOn[T Element](e *compute.Engine, ws *compute.Workspace, a *GDense[T]) *GQR[T] {
	m, n := a.R, a.C
	if m < n {
		panic("mat: QRFactor requires rows >= cols")
	}
	if n <= qrSmallMax {
		return qrSmall(ws, a)
	}
	return qrBlocked(e, ws, a)
}

// qrBlocked is the general transposed blocked-CGS2/MGS2 path.
func qrBlocked[T Element](e *compute.Engine, ws *compute.Workspace, a *GDense[T]) *GQR[T] {
	n := a.C
	qt := TWith(ws, a) // n×m: row j is column j of a
	r := GetDenseOf[T](ws, n, n)
	for j0 := 0; j0 < n; j0 += qrPanel {
		j1 := min(j0+qrPanel, n)
		if j0 > 0 {
			// Orthogonalize the panel against all previous columns: two
			// block passes (CGS2). S = Qprevᵀ·P is qtLeft·qtPanelᵀ in the
			// transposed layout; the corrections accumulate into R and the
			// panel update P −= Qprev·S is a GEMM in sub mode.
			for pass := 0; pass < 2; pass++ {
				s := GetDenseRawOf[T](ws, j0, j1-j0)
				gemmView(e, denseView(s), rowsView(qt, 0, j0), false, rowsView(qt, j0, j1), true, gemmSet)
				for i := 0; i < j0; i++ {
					srow := s.Row(i)
					rrow := r.Row(i)
					for jj, v := range srow {
						rrow[j0+jj] += v
					}
				}
				gemmView(e, rowsView(qt, j0, j1), denseView(s), true, rowsView(qt, 0, j0), false, gemmSub)
				PutDense(ws, s)
			}
		}
		// Two MGS passes inside the panel; the second pass
		// re-orthogonalizes and its corrections accumulate into R.
		for j := j0; j < j1; j++ {
			for pass := 0; pass < 2; pass++ {
				for i := j0; i < j; i++ {
					dot := rowDot(qt, i, j)
					r.Data[i*n+j] += dot
					rowAxpy(qt, -dot, i, j)
				}
			}
			nrm := rowNorm(qt, j)
			r.Data[j*n+j] = nrm
			if nrm > 0 {
				rowScale(qt, j, 1/nrm)
			}
		}
	}
	q := TWith(ws, qt)
	PutDense(ws, qt)
	return &GQR[T]{Q: q, R: r}
}

// Release returns both factors' storage to ws.
func (qr *GQR[T]) Release(ws *compute.Workspace) {
	PutDense(ws, qr.Q)
	PutDense(ws, qr.R)
}

// qrSmallMax is the column bound under which QRFactorOn takes the fused
// small-panel path: the whole matrix is at most qrSmallMax columns wide
// (the streaming update's residual blocks are m×w with w ≤ 8), so it is
// cache-resident and the general path's transpose round trip costs more
// than the factorization itself.
const qrSmallMax = 16

// qrSmall factors a ≤ qrSmallMax-column matrix by two-pass MGS directly
// on the columns of one working copy — no transposes, no panel logic.
// The dot/axpy/norm loops visit elements in exactly the same index order
// as the transposed general path, so for n ≤ qrPanel the two paths
// produce bit-identical factors (qr_test.go pins this).
func qrSmall[T Element](ws *compute.Workspace, a *GDense[T]) *GQR[T] {
	n := a.C
	q := CloneWith(ws, a)
	r := GetDenseOf[T](ws, n, n)
	for j := 0; j < n; j++ {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				dot := colDot(q, i, j)
				r.Data[i*n+j] += dot
				colAxpy(q, -dot, i, j)
			}
		}
		nrm := colNorm(q, j)
		r.Data[j*n+j] = nrm
		if nrm > 0 {
			colScale(q, j, 1/nrm)
		}
	}
	return &GQR[T]{Q: q, R: r}
}

// colDot returns column i · column j of m. The 4-lane accumulator
// round-robin breaks the loop-carried dependency chain; rowDot uses the
// identical lane assignment and reduction so the small and blocked QR
// paths keep producing bit-identical factors.
func colDot[T Element](m *GDense[T], i, j int) T {
	s := m.RowStride()
	var a0, a1, a2, a3 T
	r := 0
	for ; r+4 <= m.R; r += 4 {
		a0 += m.Data[r*s+i] * m.Data[r*s+j]
		a1 += m.Data[(r+1)*s+i] * m.Data[(r+1)*s+j]
		a2 += m.Data[(r+2)*s+i] * m.Data[(r+2)*s+j]
		a3 += m.Data[(r+3)*s+i] * m.Data[(r+3)*s+j]
	}
	switch m.R - r {
	case 3:
		a2 += m.Data[(r+2)*s+i] * m.Data[(r+2)*s+j]
		fallthrough
	case 2:
		a1 += m.Data[(r+1)*s+i] * m.Data[(r+1)*s+j]
		fallthrough
	case 1:
		a0 += m.Data[r*s+i] * m.Data[r*s+j]
	}
	return (a0 + a1) + (a2 + a3)
}

// colAxpy does column j += alpha * column i.
func colAxpy[T Element](m *GDense[T], alpha T, i, j int) {
	s := m.RowStride()
	for r := 0; r < m.R; r++ {
		m.Data[r*s+j] += alpha * m.Data[r*s+i]
	}
}

func colNorm[T Element](m *GDense[T], j int) T {
	s := m.RowStride()
	var d T
	for r := 0; r < m.R; r++ {
		v := m.Data[r*s+j]
		d += v * v
	}
	return T(math.Sqrt(float64(d)))
}

func colScale[T Element](m *GDense[T], j int, sc T) {
	s := m.RowStride()
	for r := 0; r < m.R; r++ {
		m.Data[r*s+j] *= sc
	}
}

// rowDot returns row i · row j of m (contiguous). Lane structure matches
// colDot exactly — see the note there.
func rowDot[T Element](m *GDense[T], i, j int) T {
	ri := m.Row(i)
	rj := m.Row(j)
	var a0, a1, a2, a3 T
	k := 0
	for ; k+4 <= len(ri); k += 4 {
		a0 += ri[k] * rj[k]
		a1 += ri[k+1] * rj[k+1]
		a2 += ri[k+2] * rj[k+2]
		a3 += ri[k+3] * rj[k+3]
	}
	switch len(ri) - k {
	case 3:
		a2 += ri[k+2] * rj[k+2]
		fallthrough
	case 2:
		a1 += ri[k+1] * rj[k+1]
		fallthrough
	case 1:
		a0 += ri[k] * rj[k]
	}
	return (a0 + a1) + (a2 + a3)
}

// rowAxpy does row j += alpha * row i.
func rowAxpy[T Element](m *GDense[T], alpha T, i, j int) {
	ri := m.Row(i)
	rj := m.Row(j)
	for k, v := range ri {
		rj[k] += alpha * v
	}
}

func rowNorm[T Element](m *GDense[T], j int) T {
	var s T
	for _, v := range m.Row(j) {
		s += v * v
	}
	return T(math.Sqrt(float64(s)))
}

func rowScale[T Element](m *GDense[T], j int, s T) {
	rj := m.Row(j)
	for k := range rj {
		rj[k] *= s
	}
}

// SolveUpper solves R x = b for upper-triangular R (n×n). Zero (or tiny)
// pivots are treated as rank deficiencies: the corresponding solution
// component is set to zero, giving a basic least-norm-flavored solution
// rather than NaNs.
func SolveUpper[T Element](r *GDense[T], b []T) []T {
	n := r.R
	x := make([]T, n)
	tol := 1e-13 * r.MaxAbs()
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if math.Abs(float64(row[i])) <= tol {
			x[i] = 0
			continue
		}
		x[i] = s / row[i]
	}
	return x
}

// LstSq solves min ‖Ax − b‖₂ via thin QR: x = R⁻¹ Qᵀ b. A must have
// rows ≥ cols.
func LstSq[T Element](a *GDense[T], b []T) []T {
	if len(b) != a.R {
		panic("mat: LstSq dimension mismatch")
	}
	qr := QRFactor(a)
	// qtb = Qᵀ b
	qtb := make([]T, a.C)
	for j := 0; j < a.C; j++ {
		var s T
		for i := 0; i < a.R; i++ {
			s += qr.Q.Data[i*a.C+j] * b[i]
		}
		qtb[j] = s
	}
	return SolveUpper(qr.R, qtb)
}
