package mat

import (
	"math"

	"imrdmd/internal/compute"
)

// QR holds a thin (economy) QR factorization A = Q R with Q m×n
// column-orthonormal and R n×n upper triangular, for m ≥ n.
type QR struct {
	Q *Dense
	R *Dense
}

// QRFactor computes the thin QR factorization of a (m×n, m ≥ n) by
// modified Gram–Schmidt with one re-orthogonalization pass. MGS with
// re-orthogonalization is numerically comparable to Householder for the
// well- to moderately-conditioned matrices this package sees, and keeps
// Q explicit, which the incremental-SVD layer needs.
func QRFactor(a *Dense) *QR {
	return QRFactorWith(nil, a)
}

// QRFactorWith is QRFactor with Q and R borrowed from ws (nil ws
// allocates). Return both factors with PutDense (or qr.Release) when the
// factorization is no longer needed.
func QRFactorWith(ws *compute.Workspace, a *Dense) *QR {
	m, n := a.R, a.C
	if m < n {
		panic("mat: QRFactor requires rows >= cols")
	}
	q := CloneWith(ws, a)
	r := GetDense(ws, n, n)
	for j := 0; j < n; j++ {
		// Two MGS passes against previous columns; the second pass
		// re-orthogonalizes and its corrections accumulate into R.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				dot := colDot(q, i, j)
				r.Data[i*n+j] += dot
				colAxpy(q, -dot, i, j)
			}
		}
		nrm := colNorm(q, j)
		r.Data[j*n+j] = nrm
		if nrm > 0 {
			colScale(q, j, 1/nrm)
		}
	}
	return &QR{Q: q, R: r}
}

// Release returns both factors' storage to ws.
func (qr *QR) Release(ws *compute.Workspace) {
	PutDense(ws, qr.Q)
	PutDense(ws, qr.R)
}

// colDot returns column i · column j of m.
func colDot(m *Dense, i, j int) float64 {
	var s float64
	for k := 0; k < m.R; k++ {
		row := m.Data[k*m.C:]
		s += row[i] * row[j]
	}
	return s
}

// colAxpy does column j += alpha * column i.
func colAxpy(m *Dense, alpha float64, i, j int) {
	for k := 0; k < m.R; k++ {
		row := m.Data[k*m.C:]
		row[j] += alpha * row[i]
	}
}

func colNorm(m *Dense, j int) float64 {
	var s float64
	for k := 0; k < m.R; k++ {
		v := m.Data[k*m.C+j]
		s += v * v
	}
	return math.Sqrt(s)
}

func colScale(m *Dense, j int, s float64) {
	for k := 0; k < m.R; k++ {
		m.Data[k*m.C+j] *= s
	}
}

// SolveUpper solves R x = b for upper-triangular R (n×n). Zero (or tiny)
// pivots are treated as rank deficiencies: the corresponding solution
// component is set to zero, giving a basic least-norm-flavored solution
// rather than NaNs.
func SolveUpper(r *Dense, b []float64) []float64 {
	n := r.R
	x := make([]float64, n)
	tol := 1e-13 * r.MaxAbs()
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if math.Abs(row[i]) <= tol {
			x[i] = 0
			continue
		}
		x[i] = s / row[i]
	}
	return x
}

// LstSq solves min ‖Ax − b‖₂ via thin QR: x = R⁻¹ Qᵀ b. A must have
// rows ≥ cols.
func LstSq(a *Dense, b []float64) []float64 {
	if len(b) != a.R {
		panic("mat: LstSq dimension mismatch")
	}
	qr := QRFactor(a)
	// qtb = Qᵀ b
	qtb := make([]float64, a.C)
	for j := 0; j < a.C; j++ {
		var s float64
		for i := 0; i < a.R; i++ {
			s += qr.Q.Data[i*a.C+j] * b[i]
		}
		qtb[j] = s
	}
	return SolveUpper(qr.R, qtb)
}
