//go:build amd64

package mat

// On amd64 the float32 4×8 micro-kernel has an AVX2+FMA implementation
// (gemm32_amd64.s): the four C-tile rows live in four YMM accumulators of
// eight floats each, and each k step is one 256-bit B load, four A
// broadcasts and four fused multiply-adds — the same instruction count as
// the float64 4×4 kernel for twice the elements, which is the screening
// tier's throughput advantage. Feature detection is shared with the f64
// kernel (useFMAKernel in gemm_amd64.go); CPUs without AVX2+FMA fall back
// to the portable gemmKernel4x8Go.

// gemmKernel4x8FMA is the AVX2+FMA float32 micro-kernel. c must expose at
// least 3·ldc+8 elements, ap at least 4·kc and bp at least 8·kc.
//
//go:noescape
func gemmKernel4x8FMA(c []float32, ldc int, ap, bp []float32, kc, mode int)

func gemmKernel4x8(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	if useFMAKernel {
		gemmKernel4x8FMA(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel4x8Go(c, ldc, ap, bp, kc, mode)
}
