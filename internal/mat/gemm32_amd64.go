//go:build amd64

package mat

// float32 kernel dispatch; feature detection is shared with the f64 side
// (gemm_amd64.go). Each float32 tile carries twice the elements of its
// f64 sibling at the same instruction count — one vector of floats wide —
// which is the screening tier's throughput advantage.

// gemmKernel4x8FMA is the AVX2+FMA float32 micro-kernel. c must expose at
// least 3·ldc+8 elements, ap at least 4·kc and bp at least 8·kc.
//
//go:noescape
func gemmKernel4x8FMA(c []float32, ldc int, ap, bp []float32, kc, mode int)

// gemmKernel8x16sAVX512 is the AVX-512 float32 micro-kernel. c must
// expose at least 7·ldc+16 elements, ap at least 8·kc and bp at least
// 16·kc.
//
//go:noescape
func gemmKernel8x16sAVX512(c []float32, ldc int, ap, bp []float32, kc, mode int)

func gemmKernel4x8(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	if gemmTier >= tierAVX2 {
		gemmKernel4x8FMA(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel4x8Go(c, ldc, ap, bp, kc, mode)
}

func gemmKernel8x16s(c []float32, ldc int, ap, bp []float32, kc, mode int) {
	if gemmTier >= tierAVX512 {
		gemmKernel8x16sAVX512(c, ldc, ap, bp, kc, mode)
		return
	}
	gemmKernel8x16sGo(c, ldc, ap, bp, kc, mode)
}
