package mat

import (
	"fmt"

	"imrdmd/internal/compute"
)

// Views and amortized column growth. A view shares its parent's storage
// through the GDense Stride field: the streaming-update pipeline hands out
// column windows of an incoming block, and the analyzer's history matrices
// grow by columns, without the full-matrix copies HStack-style growth
// pays. PutDense recognizes views and never recycles their storage.

// ColsView returns columns [j0, j1) of m as a view aliasing m's storage.
// The view is valid as long as m's Data is; PutDense on it is a no-op.
func ColsView[T Element](m *GDense[T], j0, j1 int) *GDense[T] {
	if j0 < 0 || j1 > m.C || j0 > j1 {
		panic(fmt.Sprintf("mat: ColsView [%d,%d) out of range for %d cols", j0, j1, m.C))
	}
	s := m.RowStride()
	end := j0
	if m.R > 0 {
		end = (m.R-1)*s + j1
	}
	return &GDense[T]{R: m.R, C: j1 - j0, Stride: s, Data: m.Data[j0:end:end], noPool: true}
}

// RowsView returns rows [i0, i1) of m as a view aliasing m's storage.
// The rows stay at m's stride, so the view is tightly packed only when m
// is; PutDense on it is a no-op.
func RowsView[T Element](m *GDense[T], i0, i1 int) *GDense[T] {
	if i0 < 0 || i1 > m.R || i0 > i1 {
		panic(fmt.Sprintf("mat: RowsView [%d,%d) out of range for %d rows", i0, i1, m.R))
	}
	s := m.RowStride()
	end := i0 * s
	if i1 > i0 {
		end = (i1-1)*s + m.C
	}
	return &GDense[T]{R: i1 - i0, C: m.C, Stride: s, Data: m.Data[i0*s : end : end], noPool: true}
}

// GrowColsWith appends b's columns to m — the amortized replacement for
// HStackWith growth loops. When m has spare column capacity (Stride > C,
// as left by a previous grow) only the new columns are written; otherwise
// a fresh matrix with ~1.5× column headroom is borrowed from ws, m's rows
// are copied once, and m's storage is recycled. Either way the caller's m
// is consumed and the returned matrix replaces it:
//
//	m = mat.GrowColsWith(ws, m, block)
//
// The result carries Stride = capacity, so consumers must go through the
// stride-aware accessors (every kernel in this package does).
func GrowColsWith[T Element](ws *compute.Workspace, m, b *GDense[T]) *GDense[T] {
	if m.R != b.R {
		panic("mat: GrowCols row mismatch")
	}
	newC := m.C + b.C
	if !m.noPool && newC <= m.RowStride() {
		s := m.RowStride()
		for i := 0; i < m.R; i++ {
			copy(m.Data[i*s+m.C:i*s+newC], b.Row(i))
		}
		m.C = newC
		return m
	}
	// Request the exact size — the pool rounds capacity up to the next
	// power-of-two class anyway, so claiming that slack as column headroom
	// gives amortized 2× growth without ever asking for a colder (larger)
	// size class than a plain exact-size reallocation would.
	out := GetDenseRawOf[T](ws, m.R, newC)
	capc := newC
	if c := cap(out.Data) / m.R; c > newC {
		capc = c
		out.Data = out.Data[:m.R*capc]
		out.Stride = capc
	}
	for i := 0; i < m.R; i++ {
		row := out.Data[i*capc : i*capc+newC]
		copy(row[:m.C], m.Row(i))
		copy(row[m.C:], b.Row(i))
	}
	PutDense(ws, m)
	return out
}
