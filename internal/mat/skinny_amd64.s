//go:build amd64

#include "textflag.h"

// Pack-free skinny micro-kernels (see skinny.go for the dispatch tier
// and skinny_amd64.go for the Go declarations). All four kernels share
// one addressing scheme: A element (r, p) lives at a + r*aOff + p*aStep
// (offsets in elements, scaled to bytes on entry), so the same code
// serves plain and transposed A. B rows are read with a width mask —
// opmask registers on AVX-512, a mask vector from the table below on
// AVX2 — so tiles narrower than one vector never read or write past
// their w columns and nothing is padded or staged.
//
// Per-element accumulation is a pure ascending-p FMA chain, the same
// chain the packed kernels produce, so results are bit-identical with
// the packed route (the numeric contract atop skinny.go).

// 64 bytes: four all-ones qwords then four zero qwords. An AVX2 f64
// mask of width w is the 4 qwords at offset (4-w)*8; an f32 mask of
// width w is the 8 dwords at offset (8-w)*4.
DATA skinnymask<>+0(SB)/8, $0xffffffffffffffff
DATA skinnymask<>+8(SB)/8, $0xffffffffffffffff
DATA skinnymask<>+16(SB)/8, $0xffffffffffffffff
DATA skinnymask<>+24(SB)/8, $0xffffffffffffffff
DATA skinnymask<>+32(SB)/8, $0
DATA skinnymask<>+40(SB)/8, $0
DATA skinnymask<>+48(SB)/8, $0
DATA skinnymask<>+56(SB)/8, $0
GLOBL skinnymask<>(SB), RODATA, $64

// func skinnyKern8dAVX512(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, w, kc, mode int)
//
// 8 rows × w ≤ 8 float64 columns in Z0..Z7. Each k step masked-loads
// one B row vector and broadcasts the eight A values through the
// three-base scheme (SI, SI+3*aOff, SI+6*aOff with *1/*2 scaled-index
// offsets), issuing eight VFMADD231PD. All bases advance aStep bytes
// per step, so plain (aStep = one element) and transposed (aStep = lda)
// A run the same loop.
TEXT ·skinnyKern8dAVX512(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ a_base+32(FP), SI
	MOVQ aOff+56(FP), R9
	SHLQ $3, R9
	MOVQ aStep+64(FP), R10
	SHLQ $3, R10
	MOVQ b_base+72(FP), BX
	MOVQ ldb+96(FP), R11
	SHLQ $3, R11
	MOVQ mode+120(FP), R8

	MOVQ  w+104(FP), CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVB AX, K1
	MOVQ  kc+112(FP), CX

	LEAQ (SI)(R9*2), R12
	ADDQ R9, R12        // R12 = a + 3*aOff (rows 3..5)
	LEAQ (R12)(R9*2), R13
	ADDQ R9, R13        // R13 = a + 6*aOff (rows 6..7)

	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	VXORPD Z4, Z4, Z4
	VXORPD Z5, Z5, Z5
	VXORPD Z6, Z6, Z6
	VXORPD Z7, Z7, Z7

loop8d:
	VMOVUPD.Z    (BX), K1, Z8
	VBROADCASTSD (SI), Z9
	VFMADD231PD  Z8, Z9, Z0
	VBROADCASTSD (SI)(R9*1), Z10
	VFMADD231PD  Z8, Z10, Z1
	VBROADCASTSD (SI)(R9*2), Z9
	VFMADD231PD  Z8, Z9, Z2
	VBROADCASTSD (R12), Z10
	VFMADD231PD  Z8, Z10, Z3
	VBROADCASTSD (R12)(R9*1), Z9
	VFMADD231PD  Z8, Z9, Z4
	VBROADCASTSD (R12)(R9*2), Z10
	VFMADD231PD  Z8, Z10, Z5
	VBROADCASTSD (R13), Z9
	VFMADD231PD  Z8, Z9, Z6
	VBROADCASTSD (R13)(R9*1), Z10
	VFMADD231PD  Z8, Z10, Z7
	ADDQ         R10, SI
	ADDQ         R10, R12
	ADDQ         R10, R13
	ADDQ         R11, BX
	DECQ         CX
	JNZ          loop8d

	SHLQ $3, DX         // ldc in bytes
	CMPQ R8, $1
	JEQ  add8d
	CMPQ R8, $2
	JEQ  sub8d

	// mode 0: overwrite
	VMOVUPD Z0, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z1, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z2, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z3, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z4, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z5, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z6, K1, (DI)
	ADDQ    DX, DI
	VMOVUPD Z7, K1, (DI)
	VZEROUPPER
	RET

add8d:
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z0, Z0
	VMOVUPD   Z0, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z1, Z1
	VMOVUPD   Z1, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z2, Z2
	VMOVUPD   Z2, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z3, Z3
	VMOVUPD   Z3, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z4, Z4
	VMOVUPD   Z4, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z5, Z5
	VMOVUPD   Z5, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z6, Z6
	VMOVUPD   Z6, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VADDPD    Z8, Z7, Z7
	VMOVUPD   Z7, K1, (DI)
	VZEROUPPER
	RET

sub8d:
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z0, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z1, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z2, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z3, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z4, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z5, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z6, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPD.Z (DI), K1, Z8
	VSUBPD    Z7, Z8, Z8
	VMOVUPD   Z8, K1, (DI)
	VZEROUPPER
	RET

// func skinnyKern8sAVX512(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, w, kc, mode int)
//
// float32 twin: 8 rows × w ≤ 16 columns, same structure with a 16-lane
// opmask.
TEXT ·skinnyKern8sAVX512(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ a_base+32(FP), SI
	MOVQ aOff+56(FP), R9
	SHLQ $2, R9
	MOVQ aStep+64(FP), R10
	SHLQ $2, R10
	MOVQ b_base+72(FP), BX
	MOVQ ldb+96(FP), R11
	SHLQ $2, R11
	MOVQ mode+120(FP), R8

	MOVQ  w+104(FP), CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1
	MOVQ  kc+112(FP), CX

	LEAQ (SI)(R9*2), R12
	ADDQ R9, R12
	LEAQ (R12)(R9*2), R13
	ADDQ R9, R13

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7

loop8s:
	VMOVUPS.Z    (BX), K1, Z8
	VBROADCASTSS (SI), Z9
	VFMADD231PS  Z8, Z9, Z0
	VBROADCASTSS (SI)(R9*1), Z10
	VFMADD231PS  Z8, Z10, Z1
	VBROADCASTSS (SI)(R9*2), Z9
	VFMADD231PS  Z8, Z9, Z2
	VBROADCASTSS (R12), Z10
	VFMADD231PS  Z8, Z10, Z3
	VBROADCASTSS (R12)(R9*1), Z9
	VFMADD231PS  Z8, Z9, Z4
	VBROADCASTSS (R12)(R9*2), Z10
	VFMADD231PS  Z8, Z10, Z5
	VBROADCASTSS (R13), Z9
	VFMADD231PS  Z8, Z9, Z6
	VBROADCASTSS (R13)(R9*1), Z10
	VFMADD231PS  Z8, Z10, Z7
	ADDQ         R10, SI
	ADDQ         R10, R12
	ADDQ         R10, R13
	ADDQ         R11, BX
	DECQ         CX
	JNZ          loop8s

	SHLQ $2, DX
	CMPQ R8, $1
	JEQ  add8s
	CMPQ R8, $2
	JEQ  sub8s

	VMOVUPS Z0, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z1, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z2, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z3, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z4, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z5, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z6, K1, (DI)
	ADDQ    DX, DI
	VMOVUPS Z7, K1, (DI)
	VZEROUPPER
	RET

add8s:
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z0, Z0
	VMOVUPS   Z0, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z1, Z1
	VMOVUPS   Z1, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z2, Z2
	VMOVUPS   Z2, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z3, Z3
	VMOVUPS   Z3, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z4, Z4
	VMOVUPS   Z4, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z5, Z5
	VMOVUPS   Z5, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z6, Z6
	VMOVUPS   Z6, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VADDPS    Z8, Z7, Z7
	VMOVUPS   Z7, K1, (DI)
	VZEROUPPER
	RET

sub8s:
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z0, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z1, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z2, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z3, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z4, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z5, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z6, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	ADDQ      DX, DI
	VMOVUPS.Z (DI), K1, Z8
	VSUBPS    Z7, Z8, Z8
	VMOVUPS   Z8, K1, (DI)
	VZEROUPPER
	RET

// func skinnyKern4dFMA(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, w, kc, mode int)
//
// AVX2 twin: 4 rows × w ≤ 4 float64 columns in Y0..Y3, B loads and C
// stores masked through Y12 (built from the table above). Rows 0..2
// come off the base with *1/*2 scaled offsets, row 3 off a second base
// at a + 3*aOff.
TEXT ·skinnyKern4dFMA(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ a_base+32(FP), SI
	MOVQ aOff+56(FP), R9
	SHLQ $3, R9
	MOVQ aStep+64(FP), R10
	SHLQ $3, R10
	MOVQ b_base+72(FP), BX
	MOVQ ldb+96(FP), R11
	SHLQ $3, R11
	MOVQ kc+112(FP), CX
	MOVQ mode+120(FP), R8

	MOVQ    $4, R14
	SUBQ    w+104(FP), R14
	SHLQ    $3, R14
	LEAQ    skinnymask<>(SB), AX
	VMOVDQU (AX)(R14*1), Y12

	LEAQ (SI)(R9*2), R12
	ADDQ R9, R12        // R12 = a + 3*aOff (row 3)

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

loop4d:
	VMASKMOVPD   (BX), Y12, Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD (SI)(R9*1), Y6
	VFMADD231PD  Y4, Y6, Y1
	VBROADCASTSD (SI)(R9*2), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD (R12), Y6
	VFMADD231PD  Y4, Y6, Y3
	ADDQ         R10, SI
	ADDQ         R10, R12
	ADDQ         R11, BX
	DECQ         CX
	JNZ          loop4d

	SHLQ $3, DX
	CMPQ R8, $1
	JEQ  add4d
	CMPQ R8, $2
	JEQ  sub4d

	VMASKMOVPD Y0, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD Y1, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD Y2, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD Y3, Y12, (DI)
	VZEROUPPER
	RET

add4d:
	VMASKMOVPD (DI), Y12, Y4
	VADDPD     Y4, Y0, Y0
	VMASKMOVPD Y0, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VADDPD     Y4, Y1, Y1
	VMASKMOVPD Y1, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VADDPD     Y4, Y2, Y2
	VMASKMOVPD Y2, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VADDPD     Y4, Y3, Y3
	VMASKMOVPD Y3, Y12, (DI)
	VZEROUPPER
	RET

sub4d:
	VMASKMOVPD (DI), Y12, Y4
	VSUBPD     Y0, Y4, Y4
	VMASKMOVPD Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VSUBPD     Y1, Y4, Y4
	VMASKMOVPD Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VSUBPD     Y2, Y4, Y4
	VMASKMOVPD Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPD (DI), Y12, Y4
	VSUBPD     Y3, Y4, Y4
	VMASKMOVPD Y4, Y12, (DI)
	VZEROUPPER
	RET

// func skinnyKern4sFMA(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, w, kc, mode int)
//
// AVX2 float32 twin: 4 rows × w ≤ 8 columns.
TEXT ·skinnyKern4sFMA(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ a_base+32(FP), SI
	MOVQ aOff+56(FP), R9
	SHLQ $2, R9
	MOVQ aStep+64(FP), R10
	SHLQ $2, R10
	MOVQ b_base+72(FP), BX
	MOVQ ldb+96(FP), R11
	SHLQ $2, R11
	MOVQ kc+112(FP), CX
	MOVQ mode+120(FP), R8

	MOVQ    $8, R14
	SUBQ    w+104(FP), R14
	SHLQ    $2, R14
	LEAQ    skinnymask<>(SB), AX
	VMOVDQU (AX)(R14*1), Y12

	LEAQ (SI)(R9*2), R12
	ADDQ R9, R12

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop4s:
	VMASKMOVPS   (BX), Y12, Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS (SI)(R9*1), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS (SI)(R9*2), Y5
	VFMADD231PS  Y4, Y5, Y2
	VBROADCASTSS (R12), Y6
	VFMADD231PS  Y4, Y6, Y3
	ADDQ         R10, SI
	ADDQ         R10, R12
	ADDQ         R11, BX
	DECQ         CX
	JNZ          loop4s

	SHLQ $2, DX
	CMPQ R8, $1
	JEQ  add4s
	CMPQ R8, $2
	JEQ  sub4s

	VMASKMOVPS Y0, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS Y1, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS Y2, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS Y3, Y12, (DI)
	VZEROUPPER
	RET

add4s:
	VMASKMOVPS (DI), Y12, Y4
	VADDPS     Y4, Y0, Y0
	VMASKMOVPS Y0, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VADDPS     Y4, Y1, Y1
	VMASKMOVPS Y1, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VADDPS     Y4, Y2, Y2
	VMASKMOVPS Y2, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VADDPS     Y4, Y3, Y3
	VMASKMOVPS Y3, Y12, (DI)
	VZEROUPPER
	RET

sub4s:
	VMASKMOVPS (DI), Y12, Y4
	VSUBPS     Y0, Y4, Y4
	VMASKMOVPS Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VSUBPS     Y1, Y4, Y4
	VMASKMOVPS Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VSUBPS     Y2, Y4, Y4
	VMASKMOVPS Y4, Y12, (DI)
	ADDQ       DX, DI
	VMASKMOVPS (DI), Y12, Y4
	VSUBPS     Y3, Y4, Y4
	VMASKMOVPS Y4, Y12, (DI)
	VZEROUPPER
	RET
