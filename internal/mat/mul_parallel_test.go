package mat

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
)

// TestMulIntoAliasGuard verifies MulInto panics when dst shares storage
// with an operand instead of silently corrupting the product.
func TestMulIntoAliasGuard(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on aliased MulInto", name)
			}
		}()
		fn()
	}
	a := benchDense(8, 8, 1)
	b := benchDense(8, 8, 2)
	expectPanic("dst==a", func() { MulInto(a, a, b) })
	expectPanic("dst==b", func() { MulInto(b, a, b) })
	// Partial overlap through a shared backing slice.
	backing := make([]float64, 8*8*2)
	x := NewDenseData(8, 8, backing[:64])
	y := NewDenseData(8, 8, backing[32:96])
	expectPanic("overlap", func() { MulInto(y, x, b) })

	// Disjoint views of one backing array must NOT trip the guard.
	u := NewDenseData(8, 8, backing[:64])
	v := NewDenseData(8, 8, backing[64:128])
	MulInto(v, u, b)
}

// TestMulParallelSerialEquivalence checks that routing the kernels
// through a multi-lane engine produces bitwise-identical results to the
// serial path, for sizes below and above parallelThreshold and for odd
// row counts that split into ragged bands.
func TestMulParallelSerialEquivalence(t *testing.T) {
	eng := compute.NewEngine(5)
	defer eng.Close()
	rng := rand.New(rand.NewSource(7))
	// 13×17·17×19 is far below parallelThreshold; 129×67·67×131 and
	// 257×91·91×77 are above it with odd, non-divisible row counts.
	cases := []struct{ m, k, n int }{
		{13, 17, 19},
		{64, 64, 64},
		{129, 67, 131},
		{257, 91, 77},
		{303, 303, 303},
	}
	for _, c := range cases {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		bt := randDense(rng, c.m, c.n) // same row count as a, for MulT

		serial := MulWith(nil, nil, a, b)
		parallel := MulWith(eng, nil, a, b)
		assertIdentical(t, "Mul", serial, parallel)

		st := MulTWith(nil, nil, a, bt)
		pt := MulTWith(eng, nil, a, bt)
		assertIdentical(t, "MulT", st, pt)

		gs := GramWith(nil, nil, a, false)
		gp := GramWith(eng, nil, a, false)
		assertIdentical(t, "Gram", gs, gp)
	}
}

func assertIdentical(t *testing.T, op string, want, got *Dense) {
	t.Helper()
	if want.R != got.R || want.C != got.C {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", op, want.R, want.C, got.R, got.C)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] && !(math.IsNaN(want.Data[i]) && math.IsNaN(got.Data[i])) {
			t.Fatalf("%s: element %d differs: %v vs %v", op, i, want.Data[i], got.Data[i])
		}
	}
}

// TestMulWithWorkspaceReuse verifies the pooled-result path returns
// correct products when the destination buffer arrives dirty from the
// pool (the kernel must not depend on pre-zeroed storage).
func TestMulWithWorkspaceReuse(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 40, 30)
	b := randDense(rng, 30, 20)
	want := Mul(a, b)
	for iter := 0; iter < 4; iter++ {
		got := MulWith(nil, ws, a, b)
		assertIdentical(t, "MulWith", want, got)
		// Poison the buffer before returning it so a zeroing bug in the
		// next round is visible.
		for i := range got.Data {
			got.Data[i] = math.Inf(1)
		}
		PutDense(ws, got)
	}
	// Same for MulT and Gram.
	wantT := MulT(a, a)
	for iter := 0; iter < 4; iter++ {
		got := MulTWith(nil, ws, a, a)
		assertIdentical(t, "MulTWith", wantT, got)
		for i := range got.Data {
			got.Data[i] = math.NaN()
		}
		PutDense(ws, got)
	}
}

// TestQRFactorWithMatchesQRFactor checks the pooled QR variant against
// the allocating one, including under buffer reuse.
func TestQRFactorWithMatchesQRFactor(t *testing.T) {
	ws := compute.NewWorkspace()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 3; iter++ {
		a := randDense(rng, 30, 12)
		want := QRFactor(a)
		got := QRFactorWith(ws, a)
		assertIdentical(t, "QR.Q", want.Q, got.Q)
		assertIdentical(t, "QR.R", want.R, got.R)
		got.Release(ws)
	}
}
