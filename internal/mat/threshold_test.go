package mat

import (
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
)

// TestParallelThresholdBoundary pins the fan-out decision exactly at the
// threshold. parallelThreshold is documented as the flop count *above*
// which kernels split across the engine; the pre-fix comparison fanned
// out at equality too, so a 64×64×64 multiply (exactly 2¹⁸ flops) paid
// the handoff overhead the constant exists to avoid.
func TestParallelThresholdBoundary(t *testing.T) {
	eng := compute.NewEngine(4)
	defer eng.Close()

	if 64*64*64 != parallelThreshold {
		t.Fatalf("test assumes 64³ == parallelThreshold (%d)", parallelThreshold)
	}
	if fanOut(eng, parallelThreshold) {
		t.Fatal("a problem of exactly parallelThreshold flops must stay serial")
	}
	if !fanOut(eng, parallelThreshold+1) {
		t.Fatal("a problem strictly above parallelThreshold must fan out")
	}
	if fanOut(nil, parallelThreshold+1) {
		t.Fatal("a nil engine must never fan out")
	}
	if fanOut(compute.NewEngine(1), parallelThreshold+1) {
		t.Fatal("a single-lane engine must never fan out")
	}
}

// TestPackedRoutingBoundary pins the naive-vs-packed routing decision at
// exactly gemmMinFlops. The constant was revalidated after the pack
// routines moved to assembly (PR 7): cheaper packing moves the measured
// crossover down, not up, so the inclusive boundary stays correct — a
// problem of exactly gemmMinFlops flops must take the packed route.
func TestPackedRoutingBoundary(t *testing.T) {
	if 16*32*32 != gemmMinFlops {
		t.Fatalf("test assumes 16·32·32 == gemmMinFlops (%d)", gemmMinFlops)
	}
	if !usePacked(16, 32, 32) {
		t.Fatal("a problem of exactly gemmMinFlops must route to the packed GEMM")
	}
	if usePacked(16, 32, 31) {
		t.Fatal("a problem below gemmMinFlops must stay on the naive loops")
	}
}

// TestThresholdBoundaryBitIdentical runs the three routed kernels at
// exactly the threshold size on a multi-lane engine and requires
// bit-for-bit agreement with the serial path: at the boundary both must
// take the same (serial, packed) route, and above it the panel-aligned
// fan-out preserves per-element accumulation order anyway.
func TestThresholdBoundaryBitIdentical(t *testing.T) {
	eng := compute.NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(17))

	for _, n := range []int{64, 65} { // at the boundary, and just above it
		a := randDense(rng, n, 64)
		b := randDense(rng, 64, 64)
		assertIdentical(t, "Mul@threshold", MulWith(nil, nil, a, b), MulWith(eng, nil, a, b))

		at := randDense(rng, 64, n)
		assertIdentical(t, "MulT@threshold", MulTWith(nil, nil, at, b), MulTWith(eng, nil, at, b))

		g := randDense(rng, n, 64)
		assertIdentical(t, "Gram@threshold", GramWith(nil, nil, g, false), GramWith(eng, nil, g, false))
	}
}
