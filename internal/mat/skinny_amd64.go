//go:build amd64

package mat

// amd64 dispatch for the pack-free skinny kernels. The asm twins mirror
// the packed micro-kernels' per-element FMA chains exactly (ascending p,
// one contraction per step), so routing a shape through the skinny tier
// never changes its bits — see the contract note atop skinny.go. Tile
// widths below one vector are handled with opmask (AVX-512) or
// mask-vector (AVX2) loads and stores rather than padding, which is what
// makes the tier pack-free: no operand or output is ever staged.
//
// The asm kernels require a full-height tile (8 rows on AVX-512, 4 on
// AVX2); the driver pads edge tiles through a zeroed A scratch before
// calling. Anything else falls to the portable twin.

// skinnyKern8dAVX512 accumulates an 8-row × w-column (w ≤ 8) float64
// tile over kc depth steps, reading A at a[r·aOff + p·aStep] and B rows
// at b[p·ldb : p·ldb+w], then combines into c per mode.
//
//go:noescape
func skinnyKern8dAVX512(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, w, kc, mode int)

// skinnyKern8sAVX512 is the float32 twin: 8 rows × w ≤ 16 columns.
//
//go:noescape
func skinnyKern8sAVX512(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, w, kc, mode int)

// skinnyKern4dFMA is the AVX2+FMA float64 kernel: 4 rows × w ≤ 4.
//
//go:noescape
func skinnyKern4dFMA(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, w, kc, mode int)

// skinnyKern4sFMA is the AVX2+FMA float32 kernel: 4 rows × w ≤ 8.
//
//go:noescape
func skinnyKern4sFMA(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, w, kc, mode int)

func skinnyKern64(c []float64, ldc int, a []float64, aOff, aStep int, b []float64, ldb, rows, w, kc, mode int) {
	switch {
	case gemmTier == tierAVX512 && rows == 8:
		skinnyKern8dAVX512(c, ldc, a, aOff, aStep, b, ldb, w, kc, mode)
	case gemmTier == tierAVX2 && rows == 4:
		skinnyKern4dFMA(c, ldc, a, aOff, aStep, b, ldb, w, kc, mode)
	default:
		skinnyKernGo(c, ldc, a, aOff, aStep, b, ldb, rows, w, kc, mode)
	}
}

func skinnyKern32(c []float32, ldc int, a []float32, aOff, aStep int, b []float32, ldb, rows, w, kc, mode int) {
	switch {
	case gemmTier == tierAVX512 && rows == 8:
		skinnyKern8sAVX512(c, ldc, a, aOff, aStep, b, ldb, w, kc, mode)
	case gemmTier == tierAVX2 && rows == 4:
		skinnyKern4sFMA(c, ldc, a, aOff, aStep, b, ldb, w, kc, mode)
	default:
		skinnyKernGo(c, ldc, a, aOff, aStep, b, ldb, rows, w, kc, mode)
	}
}
