package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CDense is a row-major dense matrix of complex128.
type CDense struct {
	R, C int
	Data []complex128
}

// NewCDense returns a zeroed r×c complex matrix.
func NewCDense(r, c int) *CDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &CDense{R: r, C: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (m *CDense) At(i, j int) complex128 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *CDense) Set(i, j int, v complex128) { m.Data[i*m.C+j] = v }

// Row returns row i aliasing the matrix storage.
func (m *CDense) Row(i int) []complex128 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *CDense) Clone() *CDense {
	d := make([]complex128, len(m.Data))
	copy(d, m.Data)
	return &CDense{R: m.R, C: m.C, Data: d}
}

// Complex converts a real matrix to complex.
func Complex(a *Dense) *CDense {
	out := NewCDense(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = complex(v, 0)
	}
	return out
}

// RealPart returns the element-wise real part of m.
func RealPart(m *CDense) *Dense {
	out := NewDense(m.R, m.C)
	for i, v := range m.Data {
		out.Data[i] = real(v)
	}
	return out
}

// CMul returns a*b for complex matrices.
func CMul(a, b *CDense) *CDense {
	if a.C != b.R {
		panic("mat: CMul inner dimension mismatch")
	}
	out := NewCDense(a.R, b.C)
	cmulInto(out, a, b)
	return out
}

// cmulInto accumulates a*b into out, which must be zeroed.
func cmulInto(out, a, b *CDense) {
	n := b.C
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// CMulVec returns a*x.
func CMulVec(a *CDense, x []complex128) []complex128 {
	if len(x) != a.C {
		panic("mat: CMulVec dimension mismatch")
	}
	out := make([]complex128, a.R)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// CScaleCols scales column j of a by d[j] (a * diag(d)).
func CScaleCols(a *CDense, d []complex128) *CDense {
	if len(d) != a.C {
		panic("mat: CScaleCols dimension mismatch")
	}
	out := a.Clone()
	for i := 0; i < a.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] *= d[j]
		}
	}
	return out
}

// CFrobNorm returns the Frobenius norm.
func (m *CDense) CFrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// CLU is an LU factorization with partial pivoting of a square complex
// matrix: P A = L U, stored packed in LU with the permutation in Piv.
type CLU struct {
	LU   *CDense
	Piv  []int
	Sign int
}

// CLUFactor computes the factorization. Singular pivots are replaced by a
// tiny value so inverse iteration (which deliberately shifts close to an
// eigenvalue) stays finite; callers that need exact singularity detection
// can check MinPivot.
func CLUFactor(a *CDense) *CLU {
	return CLUFactorInPlace(a.Clone())
}

// CLUFactorInPlace factors a in place (a's storage becomes the packed LU
// and must not be used as a matrix afterwards) — the low-allocation
// variant for pooled or scratch inputs.
func CLUFactorInPlace(a *CDense) *CLU {
	f := &CLU{}
	f.FactorInPlace(a)
	return f
}

// FactorInPlace (re)factors a in place into f, reusing f's pivot storage
// when capacities allow. Repeated factorizations of equal-size systems —
// inverse iteration's per-eigenvalue solves — allocate nothing.
func (f *CLU) FactorInPlace(a *CDense) {
	if a.R != a.C {
		panic("mat: CLUFactor requires a square matrix")
	}
	n := a.R
	lu := a
	if cap(f.Piv) >= n {
		f.Piv = f.Piv[:n]
	} else {
		f.Piv = make([]int, n)
	}
	piv := f.Piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, pmax := k, cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if p != k {
			ri, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		if pivot == 0 {
			pivot = complex(1e-300, 0)
			lu.Set(k, k, pivot)
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowi := lu.Row(i)
			rowk := lu.Row(k)
			for j := k + 1; j < n; j++ {
				rowi[j] -= m * rowk[j]
			}
		}
	}
	f.LU, f.Sign = lu, sign
}

// Solve solves A x = b using the factorization.
func (f *CLU) Solve(b []complex128) []complex128 {
	return f.SolveInto(make([]complex128, f.LU.R), b)
}

// SolveInto solves A x = b into the provided x (len n, distinct from b)
// and returns it, allocating nothing.
func (f *CLU) SolveInto(x, b []complex128) []complex128 {
	n := f.LU.R
	if len(b) != n || len(x) != n {
		panic("mat: CLU.Solve dimension mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.Piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 0; i < n; i++ {
		row := f.LU.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.LU.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// CLstSq solves min ‖Ax − b‖₂ for complex A (rows ≥ cols) by modified
// Gram–Schmidt QR with re-orthogonalization.
func CLstSq(a *CDense, b []complex128) []complex128 {
	m, n := a.R, a.C
	if m < n {
		panic("mat: CLstSq requires rows >= cols")
	}
	if len(b) != m {
		panic("mat: CLstSq dimension mismatch")
	}
	q := a.Clone()
	r := NewCDense(n, n)
	for j := 0; j < n; j++ {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				var dot complex128
				for k := 0; k < m; k++ {
					row := q.Data[k*n:]
					dot += cmplx.Conj(row[i]) * row[j]
				}
				r.Data[i*n+j] += dot
				for k := 0; k < m; k++ {
					row := q.Data[k*n:]
					row[j] -= dot * row[i]
				}
			}
		}
		var nrm float64
		for k := 0; k < m; k++ {
			v := q.Data[k*n+j]
			nrm += real(v)*real(v) + imag(v)*imag(v)
		}
		nrm = math.Sqrt(nrm)
		r.Data[j*n+j] = complex(nrm, 0)
		if nrm > 0 {
			inv := complex(1/nrm, 0)
			for k := 0; k < m; k++ {
				q.Data[k*n+j] *= inv
			}
		}
	}
	// qtb = Qᴴ b
	qtb := make([]complex128, n)
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < m; i++ {
			s += cmplx.Conj(q.Data[i*n+j]) * b[i]
		}
		qtb[j] = s
	}
	// Back substitution on R.
	x := make([]complex128, n)
	tol := 1e-13 * maxAbsC(r)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if cmplx.Abs(row[i]) <= tol {
			x[i] = 0
			continue
		}
		x[i] = s / row[i]
	}
	return x
}

func maxAbsC(m *CDense) float64 {
	var s float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > s {
			s = a
		}
	}
	return s
}
