// Package mat provides the dense real and complex matrix types and the
// basic linear-algebra kernels (multiply, QR, LU, least squares, norms)
// that the SVD, eigendecomposition and DMD layers are built on.
//
// Matrices are row-major. The package is self-contained (stdlib only) and
// its hot kernels (matrix multiply) are blocked and goroutine-parallel.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty matrix. Use NewDense or NewDenseData to
// construct one with a shape.
type Dense struct {
	R, C int
	Data []float64 // len == R*C, row-major: element (i,j) at Data[i*C+j]
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps an existing row-major slice as an r×c matrix.
// The slice is used directly, not copied.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*m.C+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.R {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.Data[i*m.C+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{R: m.R, C: m.C, Data: d}
}

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.R, m.C }

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.C, m.R)
	// Blocked transpose for cache friendliness.
	const bs = 64
	for ii := 0; ii < m.R; ii += bs {
		iMax := min(ii+bs, m.R)
		for jj := 0; jj < m.C; jj += bs {
			jMax := min(jj+bs, m.C)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.C:]
				for j := jj; j < jMax; j++ {
					t.Data[j*m.R+i] = row[j]
				}
			}
		}
	}
	return t
}

// ColSlice returns a copy of columns [j0, j1).
func (m *Dense) ColSlice(j0, j1 int) *Dense {
	if j0 < 0 || j1 > m.C || j0 > j1 {
		panic(fmt.Sprintf("mat: ColSlice [%d,%d) out of range for %d cols", j0, j1, m.C))
	}
	out := NewDense(m.R, j1-j0)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Data[i*m.C+j0:i*m.C+j1])
	}
	return out
}

// RowSlice returns a copy of rows [i0, i1).
func (m *Dense) RowSlice(i0, i1 int) *Dense {
	if i0 < 0 || i1 > m.R || i0 > i1 {
		panic(fmt.Sprintf("mat: RowSlice [%d,%d) out of range for %d rows", i0, i1, m.R))
	}
	out := NewDense(i1-i0, m.C)
	copy(out.Data, m.Data[i0*m.C:i1*m.C])
	return out
}

// Subsample returns a copy with every stride-th column starting at column 0.
func (m *Dense) Subsample(stride int) *Dense {
	if stride <= 1 {
		return m.Clone()
	}
	n := (m.C + stride - 1) / stride
	out := NewDense(m.R, n)
	for i := 0; i < m.R; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := 0, 0; j < m.C; k, j = k+1, j+stride {
			dst[k] = src[j]
		}
	}
	return out
}

// HStack returns [A B] (columns of b appended to a). Row counts must match.
func HStack(a, b *Dense) *Dense {
	if a.R != b.R {
		panic("mat: HStack row mismatch")
	}
	out := NewDense(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// VStack returns [A; B] (rows of b appended to a). Column counts must match.
func VStack(a, b *Dense) *Dense {
	if a.C != b.C {
		panic("mat: VStack col mismatch")
	}
	out := NewDense(a.R+b.R, a.C)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// DiagOf returns a square matrix with v on the diagonal.
func DiagOf(v []float64) *Dense {
	n := len(v)
	m := NewDense(n, n)
	for i, x := range v {
		m.Data[i*n+i] = x
	}
	return m
}

// Add returns a + b element-wise.
func Add(a, b *Dense) *Dense {
	checkSameShape("Add", a, b)
	out := NewDense(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Dense) *Dense {
	checkSameShape("Sub", a, b)
	out := NewDense(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// SubInPlace subtracts b from a in place.
func SubInPlace(a, b *Dense) {
	checkSameShape("SubInPlace", a, b)
	for i := range a.Data {
		a.Data[i] -= b.Data[i]
	}
}

// Scale returns s*a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// HasNaN reports whether any entry is NaN or ±Inf.
func (m *Dense) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func checkSameShape(op string, a, b *Dense) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.R, a.C, b.R, b.C))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
