// Package mat provides the dense real and complex matrix types and the
// basic linear-algebra kernels (multiply, QR, LU, least squares, norms)
// that the SVD, eigendecomposition and DMD layers are built on.
//
// Matrices are row-major. The package is self-contained (stdlib only) and
// its hot kernels (matrix multiply) are blocked and goroutine-parallel.
//
// The dense type and every real kernel are generic over the element type
// (float32 | float64): Dense is the float64 instantiation used by the
// high-fidelity pipeline, Dense32 the float32 instantiation that backs the
// mixed-precision screening tier (see DESIGN.md §6). The float64 paths are
// unchanged instantiations of the same generic code, so enabling the f32
// tier cannot perturb f64 results.
package mat

import (
	"fmt"
	"math"

	"imrdmd/internal/compute"
)

// Element constrains the matrix element type to the float tiers the
// compute layer pools (float32 | float64).
type Element = compute.Float

// GDense is a row-major dense matrix over element type T.
//
// The zero value is an empty matrix. Use NewDense / NewDense32 / NewOf to
// construct one with a shape.
type GDense[T Element] struct {
	R, C int
	Data []T // row-major: element (i,j) at Data[i*RowStride()+j]

	// Stride is the row stride of Data; 0 means tightly packed
	// (stride == C), which every constructor in this package produces.
	// Strided matrices arise only from ColsView windows (stride = the
	// parent's) and GrowCols capacity padding (stride = column capacity);
	// all accessors and kernels honor it.
	Stride int

	// noPool marks matrices whose Data aliases another matrix's storage
	// (ColsView, RowsView): PutDense must not recycle it.
	noPool bool
}

// RowStride returns the distance in elements between the starts of
// consecutive rows of Data.
func (m *GDense[T]) RowStride() int {
	if m.Stride > 0 {
		return m.Stride
	}
	return m.C
}

// packed reports whether Data is one tight R*C block, so flat loops over
// it visit exactly the matrix elements.
func (m *GDense[T]) packed() bool {
	return (m.Stride == 0 || m.Stride == m.C) && len(m.Data) == m.R*m.C
}

// Dense is the float64 dense matrix — the default, high-fidelity tier.
type Dense = GDense[float64]

// Dense32 is the float32 dense matrix — the screening (low-fidelity) tier.
type Dense32 = GDense[float32]

// NewOf returns a zeroed r×c matrix with element type T.
func NewOf[T Element](r, c int) *GDense[T] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &GDense[T]{R: r, C: c, Data: make([]T, r*c)}
}

// NewDense returns a zeroed r×c float64 matrix.
func NewDense(r, c int) *Dense { return NewOf[float64](r, c) }

// NewDense32 returns a zeroed r×c float32 matrix.
func NewDense32(r, c int) *Dense32 { return NewOf[float32](r, c) }

// NewDenseData wraps an existing row-major slice as an r×c matrix.
// The slice is used directly, not copied.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// At returns element (i, j).
func (m *GDense[T]) At(i, j int) T { return m.Data[i*m.RowStride()+j] }

// Set assigns element (i, j).
func (m *GDense[T]) Set(i, j int, v T) { m.Data[i*m.RowStride()+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *GDense[T]) Row(i int) []T {
	s := m.RowStride()
	return m.Data[i*s : i*s+m.C : i*s+m.C]
}

// Col returns a copy of column j.
func (m *GDense[T]) Col(j int) []T {
	out := make([]T, m.R)
	s := m.RowStride()
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*s+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *GDense[T]) SetCol(j int, v []T) {
	if len(v) != m.R {
		panic("mat: SetCol length mismatch")
	}
	s := m.RowStride()
	for i := 0; i < m.R; i++ {
		m.Data[i*s+j] = v[i]
	}
}

// Clone returns a deep (tightly packed) copy.
func (m *GDense[T]) Clone() *GDense[T] {
	d := make([]T, m.R*m.C)
	if m.packed() {
		copy(d, m.Data)
	} else {
		for i := 0; i < m.R; i++ {
			copy(d[i*m.C:(i+1)*m.C], m.Row(i))
		}
	}
	return &GDense[T]{R: m.R, C: m.C, Data: d}
}

// Dims returns (rows, cols).
func (m *GDense[T]) Dims() (int, int) { return m.R, m.C }

// T returns the transpose as a new matrix.
func (m *GDense[T]) T() *GDense[T] {
	t := NewOf[T](m.C, m.R)
	// Blocked transpose for cache friendliness.
	const bs = 64
	ms := m.RowStride()
	for ii := 0; ii < m.R; ii += bs {
		iMax := min(ii+bs, m.R)
		for jj := 0; jj < m.C; jj += bs {
			jMax := min(jj+bs, m.C)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*ms:]
				for j := jj; j < jMax; j++ {
					t.Data[j*m.R+i] = row[j]
				}
			}
		}
	}
	return t
}

// ColSlice returns a copy of columns [j0, j1).
func (m *GDense[T]) ColSlice(j0, j1 int) *GDense[T] {
	if j0 < 0 || j1 > m.C || j0 > j1 {
		panic(fmt.Sprintf("mat: ColSlice [%d,%d) out of range for %d cols", j0, j1, m.C))
	}
	out := NewOf[T](m.R, j1-j0)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(i)[j0:j1])
	}
	return out
}

// RowSlice returns a copy of rows [i0, i1).
func (m *GDense[T]) RowSlice(i0, i1 int) *GDense[T] {
	if i0 < 0 || i1 > m.R || i0 > i1 {
		panic(fmt.Sprintf("mat: RowSlice [%d,%d) out of range for %d rows", i0, i1, m.R))
	}
	out := NewOf[T](i1-i0, m.C)
	for i := i0; i < i1; i++ {
		copy(out.Row(i-i0), m.Row(i))
	}
	return out
}

// Subsample returns a copy with every stride-th column starting at column 0.
func (m *GDense[T]) Subsample(stride int) *GDense[T] {
	if stride <= 1 {
		return m.Clone()
	}
	n := (m.C + stride - 1) / stride
	out := NewOf[T](m.R, n)
	for i := 0; i < m.R; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := 0, 0; j < m.C; k, j = k+1, j+stride {
			dst[k] = src[j]
		}
	}
	return out
}

// HStack returns [A B] (columns of b appended to a). Row counts must match.
func HStack[T Element](a, b *GDense[T]) *GDense[T] {
	if a.R != b.R {
		panic("mat: HStack row mismatch")
	}
	out := NewOf[T](a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// VStack returns [A; B] (rows of b appended to a). Column counts must match.
func VStack[T Element](a, b *GDense[T]) *GDense[T] {
	if a.C != b.C {
		panic("mat: VStack col mismatch")
	}
	out := NewOf[T](a.R+b.R, a.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i), a.Row(i))
	}
	for i := 0; i < b.R; i++ {
		copy(out.Row(a.R+i), b.Row(i))
	}
	return out
}

// Eye returns the n×n float64 identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// DiagOf returns a square matrix with v on the diagonal.
func DiagOf[T Element](v []T) *GDense[T] {
	n := len(v)
	m := NewOf[T](n, n)
	for i, x := range v {
		m.Data[i*n+i] = x
	}
	return m
}

// Add returns a + b element-wise.
func Add[T Element](a, b *GDense[T]) *GDense[T] {
	checkSameShape("Add", a, b)
	out := NewOf[T](a.R, a.C)
	for i := 0; i < a.R; i++ {
		orow, arow, brow := out.Row(i), a.Row(i), b.Row(i)
		for j := range orow {
			orow[j] = arow[j] + brow[j]
		}
	}
	return out
}

// Sub returns a - b element-wise.
func Sub[T Element](a, b *GDense[T]) *GDense[T] {
	checkSameShape("Sub", a, b)
	out := NewOf[T](a.R, a.C)
	for i := 0; i < a.R; i++ {
		orow, arow, brow := out.Row(i), a.Row(i), b.Row(i)
		for j := range orow {
			orow[j] = arow[j] - brow[j]
		}
	}
	return out
}

// SubInPlace subtracts b from a in place.
func SubInPlace[T Element](a, b *GDense[T]) {
	checkSameShape("SubInPlace", a, b)
	for i := 0; i < a.R; i++ {
		arow, brow := a.Row(i), b.Row(i)
		for j := range arow {
			arow[j] -= brow[j]
		}
	}
}

// Scale returns s*a.
func Scale[T Element](s T, a *GDense[T]) *GDense[T] {
	out := NewOf[T](a.R, a.C)
	for i := 0; i < a.R; i++ {
		orow, arow := out.Row(i), a.Row(i)
		for j := range orow {
			orow[j] = s * arow[j]
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of m, accumulated in float64
// regardless of the element type.
func (m *GDense[T]) FrobNorm() float64 {
	var s float64
	if m.packed() {
		for _, v := range m.Data {
			f := float64(v)
			s += f * f
		}
		return math.Sqrt(s)
	}
	for i := 0; i < m.R; i++ {
		for _, v := range m.Row(i) {
			f := float64(v)
			s += f * f
		}
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *GDense[T]) MaxAbs() float64 {
	var s float64
	for i := 0; i < m.R; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(float64(v)); a > s {
				s = a
			}
		}
	}
	return s
}

// HasNaN reports whether any entry is NaN or ±Inf.
func (m *GDense[T]) HasNaN() bool {
	for i := 0; i < m.R; i++ {
		for _, v := range m.Row(i) {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return true
			}
		}
	}
	return false
}

func checkSameShape[T Element](op string, a, b *GDense[T]) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.R, a.C, b.R, b.C))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
