// Package mat provides the dense real and complex matrix types and the
// basic linear-algebra kernels (multiply, QR, LU, least squares, norms)
// that the SVD, eigendecomposition and DMD layers are built on.
//
// Matrices are row-major. The package is self-contained (stdlib only) and
// its hot kernels (matrix multiply) are blocked and goroutine-parallel.
//
// The dense type and every real kernel are generic over the element type
// (float32 | float64): Dense is the float64 instantiation used by the
// high-fidelity pipeline, Dense32 the float32 instantiation that backs the
// mixed-precision screening tier (see DESIGN.md §6). The float64 paths are
// unchanged instantiations of the same generic code, so enabling the f32
// tier cannot perturb f64 results.
package mat

import (
	"fmt"
	"math"

	"imrdmd/internal/compute"
)

// Element constrains the matrix element type to the float tiers the
// compute layer pools (float32 | float64).
type Element = compute.Float

// GDense is a row-major dense matrix over element type T.
//
// The zero value is an empty matrix. Use NewDense / NewDense32 / NewOf to
// construct one with a shape.
type GDense[T Element] struct {
	R, C int
	Data []T // len == R*C, row-major: element (i,j) at Data[i*C+j]
}

// Dense is the float64 dense matrix — the default, high-fidelity tier.
type Dense = GDense[float64]

// Dense32 is the float32 dense matrix — the screening (low-fidelity) tier.
type Dense32 = GDense[float32]

// NewOf returns a zeroed r×c matrix with element type T.
func NewOf[T Element](r, c int) *GDense[T] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &GDense[T]{R: r, C: c, Data: make([]T, r*c)}
}

// NewDense returns a zeroed r×c float64 matrix.
func NewDense(r, c int) *Dense { return NewOf[float64](r, c) }

// NewDense32 returns a zeroed r×c float32 matrix.
func NewDense32(r, c int) *Dense32 { return NewOf[float32](r, c) }

// NewDenseData wraps an existing row-major slice as an r×c matrix.
// The slice is used directly, not copied.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// At returns element (i, j).
func (m *GDense[T]) At(i, j int) T { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *GDense[T]) Set(i, j int, v T) { m.Data[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *GDense[T]) Row(i int) []T { return m.Data[i*m.C : (i+1)*m.C] }

// Col returns a copy of column j.
func (m *GDense[T]) Col(j int) []T {
	out := make([]T, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*m.C+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *GDense[T]) SetCol(j int, v []T) {
	if len(v) != m.R {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.Data[i*m.C+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *GDense[T]) Clone() *GDense[T] {
	d := make([]T, len(m.Data))
	copy(d, m.Data)
	return &GDense[T]{R: m.R, C: m.C, Data: d}
}

// Dims returns (rows, cols).
func (m *GDense[T]) Dims() (int, int) { return m.R, m.C }

// T returns the transpose as a new matrix.
func (m *GDense[T]) T() *GDense[T] {
	t := NewOf[T](m.C, m.R)
	// Blocked transpose for cache friendliness.
	const bs = 64
	for ii := 0; ii < m.R; ii += bs {
		iMax := min(ii+bs, m.R)
		for jj := 0; jj < m.C; jj += bs {
			jMax := min(jj+bs, m.C)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.C:]
				for j := jj; j < jMax; j++ {
					t.Data[j*m.R+i] = row[j]
				}
			}
		}
	}
	return t
}

// ColSlice returns a copy of columns [j0, j1).
func (m *GDense[T]) ColSlice(j0, j1 int) *GDense[T] {
	if j0 < 0 || j1 > m.C || j0 > j1 {
		panic(fmt.Sprintf("mat: ColSlice [%d,%d) out of range for %d cols", j0, j1, m.C))
	}
	out := NewOf[T](m.R, j1-j0)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Data[i*m.C+j0:i*m.C+j1])
	}
	return out
}

// RowSlice returns a copy of rows [i0, i1).
func (m *GDense[T]) RowSlice(i0, i1 int) *GDense[T] {
	if i0 < 0 || i1 > m.R || i0 > i1 {
		panic(fmt.Sprintf("mat: RowSlice [%d,%d) out of range for %d rows", i0, i1, m.R))
	}
	out := NewOf[T](i1-i0, m.C)
	copy(out.Data, m.Data[i0*m.C:i1*m.C])
	return out
}

// Subsample returns a copy with every stride-th column starting at column 0.
func (m *GDense[T]) Subsample(stride int) *GDense[T] {
	if stride <= 1 {
		return m.Clone()
	}
	n := (m.C + stride - 1) / stride
	out := NewOf[T](m.R, n)
	for i := 0; i < m.R; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := 0, 0; j < m.C; k, j = k+1, j+stride {
			dst[k] = src[j]
		}
	}
	return out
}

// HStack returns [A B] (columns of b appended to a). Row counts must match.
func HStack[T Element](a, b *GDense[T]) *GDense[T] {
	if a.R != b.R {
		panic("mat: HStack row mismatch")
	}
	out := NewOf[T](a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// VStack returns [A; B] (rows of b appended to a). Column counts must match.
func VStack[T Element](a, b *GDense[T]) *GDense[T] {
	if a.C != b.C {
		panic("mat: VStack col mismatch")
	}
	out := NewOf[T](a.R+b.R, a.C)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// Eye returns the n×n float64 identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// DiagOf returns a square matrix with v on the diagonal.
func DiagOf[T Element](v []T) *GDense[T] {
	n := len(v)
	m := NewOf[T](n, n)
	for i, x := range v {
		m.Data[i*n+i] = x
	}
	return m
}

// Add returns a + b element-wise.
func Add[T Element](a, b *GDense[T]) *GDense[T] {
	checkSameShape("Add", a, b)
	out := NewOf[T](a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub[T Element](a, b *GDense[T]) *GDense[T] {
	checkSameShape("Sub", a, b)
	out := NewOf[T](a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// SubInPlace subtracts b from a in place.
func SubInPlace[T Element](a, b *GDense[T]) {
	checkSameShape("SubInPlace", a, b)
	for i := range a.Data {
		a.Data[i] -= b.Data[i]
	}
}

// Scale returns s*a.
func Scale[T Element](s T, a *GDense[T]) *GDense[T] {
	out := NewOf[T](a.R, a.C)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// FrobNorm returns the Frobenius norm of m, accumulated in float64
// regardless of the element type.
func (m *GDense[T]) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		f := float64(v)
		s += f * f
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *GDense[T]) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(float64(v)); a > s {
			s = a
		}
	}
	return s
}

// HasNaN reports whether any entry is NaN or ±Inf.
func (m *GDense[T]) HasNaN() bool {
	for _, v := range m.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

func checkSameShape[T Element](op string, a, b *GDense[T]) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.R, a.C, b.R, b.C))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
