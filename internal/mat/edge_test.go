package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulIntoReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 8, 6)
	b := randDense(rng, 6, 5)
	dst := NewDense(8, 5)
	// Pre-dirty the destination: MulInto must zero it first.
	for i := range dst.Data {
		dst.Data[i] = 99
	}
	MulInto(dst, a, b)
	want := Mul(a, b)
	if d := Sub(dst, want).FrobNorm(); d > 1e-12 {
		t.Fatalf("MulInto deviates by %g", d)
	}
}

func TestMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad output shape")
		}
	}()
	MulInto(NewDense(2, 2), NewDense(2, 3), NewDense(3, 3))
}

func TestMulTShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for row mismatch")
		}
	}()
	MulT(NewDense(3, 2), NewDense(4, 2))
}

func TestMulVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	MulVec(NewDense(2, 3), []float64{1, 2})
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for column mismatch")
		}
	}()
	VStack(NewDense(1, 2), NewDense(1, 3))
}

func TestHStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for row mismatch")
		}
	}()
	HStack(NewDense(2, 1), NewDense(3, 1))
}

func TestColSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slice")
		}
	}()
	NewDense(2, 3).ColSlice(1, 4)
}

func TestRowSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slice")
		}
	}()
	NewDense(2, 3).RowSlice(0, 3)
}

func TestQRFactorWidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	QRFactor(NewDense(2, 5))
}

func TestColHelpers(t *testing.T) {
	m := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	col := m.Col(1)
	if col[0] != 2 || col[2] != 6 {
		t.Fatalf("Col = %v", col)
	}
	// Col returns a copy.
	col[0] = 99
	if m.At(0, 1) == 99 {
		t.Fatal("Col aliased the matrix")
	}
	m.SetCol(0, []float64{7, 8, 9})
	if m.At(2, 0) != 9 {
		t.Fatal("SetCol failed")
	}
}

func TestSetColLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad column length")
		}
	}()
	NewDense(3, 2).SetCol(0, []float64{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone aliased the source")
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewDenseData(1, 3, []float64{-7, 2, 5})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v want 7", a.MaxAbs())
	}
	if NewDense(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestGramEmptyAndSingle(t *testing.T) {
	g := Gram(NewDense(0, 3), true)
	if g.R != 3 || g.FrobNorm() != 0 {
		t.Fatal("empty-row Gram wrong")
	}
	one := NewDenseData(1, 1, []float64{3})
	if got := Gram(one, true).At(0, 0); got != 9 {
		t.Fatalf("1×1 Gram = %v want 9", got)
	}
}

func TestCLUSingularStaysFinite(t *testing.T) {
	// Exactly singular: the guarded pivot keeps solves finite (inverse
	// iteration relies on this).
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	lu := CLUFactor(a)
	x := lu.Solve([]complex128{1, 2})
	for _, v := range x {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
			t.Fatal("singular solve produced NaN")
		}
	}
}

func TestCScaleCols(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	s := CScaleCols(a, []complex128{2, complex(0, 1)})
	if s.At(0, 0) != 2 || s.At(1, 1) != complex(0, 4) {
		t.Fatalf("CScaleCols wrong: %v %v", s.At(0, 0), s.At(1, 1))
	}
	// Original untouched.
	if a.At(0, 0) != 1 {
		t.Fatal("CScaleCols mutated input")
	}
}

func TestCFrobNorm(t *testing.T) {
	a := NewCDense(1, 1)
	a.Set(0, 0, complex(3, 4))
	if a.CFrobNorm() != 5 {
		t.Fatalf("CFrobNorm = %v want 5", a.CFrobNorm())
	}
}

func TestSubsampleEdge(t *testing.T) {
	a := NewDenseData(1, 4, []float64{0, 1, 2, 3})
	s := a.Subsample(4)
	if s.C != 1 || s.At(0, 0) != 0 {
		t.Fatalf("Subsample(4) = %v", s.Row(0))
	}
	s = a.Subsample(100)
	if s.C != 1 {
		t.Fatal("oversized stride should keep the first column")
	}
}
