package mat

// Pack routines: copy operand blocks into the contiguous, tile-ordered
// buffers the micro-kernels stream from. Both routines reduce to the same
// primitive — interleave R regularly-strided rows into column-major order
// (dst[p·R + r] = src[r·stride + p]) — because packing an A block strip
// of MR rows and packing a transposed-B strip of NR columns are the same
// data movement. Full strips go through interleave4 (an AVX shuffle
// kernel on amd64, a bounds-check-free Go loop elsewhere or under the
// generic tier) in groups of four rows; ragged edge strips and the
// contiguous-source cases (transposed A, plain B) use straight copies
// with zero padding.

// packA copies the mc×kc block of A at (ic, pc) into ap as strips of mr
// rows: strip s holds rows [ic+s·mr, ic+s·mr+mr) laid out p-major
// (ap[s·kc·mr + p·mr + r]), zero-padded to a full strip at the edge.
// When aT is set the logical A is aᵀ, i.e. element (i, p) reads
// a.data[p·stride+i].
func packA[T Element](ap []T, a view[T], aT bool, ic, mc, pc, kc, mr int) {
	off := 0
	for s := 0; s < mc; s += mr {
		rows := min(mr, mc-s)
		switch {
		case aT:
			// The strip's rows are contiguous in the transposed source, so
			// each packed column is one copy plus tail padding.
			base := pc*a.stride + ic + s
			for p := 0; p < kc; p++ {
				dst := ap[off : off+mr : off+mr]
				copy(dst, a.data[base:base+rows])
				for r := rows; r < mr; r++ {
					dst[r] = 0
				}
				base += a.stride
				off += mr
			}
		case rows == mr:
			packInterleave(ap[off:off+mr*kc], mr, a.data[(ic+s)*a.stride+pc:], a.stride, mr, kc)
			off += mr * kc
		default:
			packInterleaveEdge(ap[off:off+mr*kc], mr, a.data[(ic+s)*a.stride+pc:], a.stride, rows, kc)
			off += mr * kc
		}
	}
}

// packB copies the kc×nc block of B at (pc, jc) into bp as strips of nr
// columns: strip s holds columns [jc+s·nr, jc+s·nr+nr) laid out p-major
// (bp[s·kc·nr + p·nr + t]), zero-padded at the edge. When bT is set the
// logical B is bᵀ, i.e. element (p, j) reads b.data[j·stride+p] — the
// strip's columns are then rows of b and packing is the same interleave
// primitive as packA's.
func packB[T Element](bp []T, b view[T], bT bool, pc, kc, jc, nc, nr int) {
	off := 0
	for s := 0; s < nc; s += nr {
		w := min(nr, nc-s)
		switch {
		case bT && w == nr:
			packInterleave(bp[off:off+nr*kc], nr, b.data[(jc+s)*b.stride+pc:], b.stride, nr, kc)
			off += nr * kc
		case bT:
			packInterleaveEdge(bp[off:off+nr*kc], nr, b.data[(jc+s)*b.stride+pc:], b.stride, w, kc)
			off += nr * kc
		case w == nr:
			base := pc*b.stride + jc + s
			for p := 0; p < kc; p++ {
				copy(bp[off:off+nr:off+nr], b.data[base:base+nr])
				base += b.stride
				off += nr
			}
		default:
			base := pc*b.stride + jc + s
			for p := 0; p < kc; p++ {
				dst := bp[off : off+nr : off+nr]
				copy(dst, b.data[base:base+w])
				for t := w; t < nr; t++ {
					dst[t] = 0
				}
				base += b.stride
				off += nr
			}
		}
	}
}

// packInterleave writes dst[p·dstStride + r] = src[r·srcStride + p] for
// r < rows, p < n, in groups of four source rows. rows must be a
// multiple of 4 (every tile height is) and len(src) must cover element
// (rows-1)·srcStride + n - 1.
func packInterleave[T Element](dst []T, dstStride int, src []T, srcStride, rows, n int) {
	for g := 0; g < rows; g += 4 {
		interleave4(dst[g:], dstStride, src[g*srcStride:], srcStride, n)
	}
}

// interleave4Go is the portable four-row interleave: dst[p·dstStride+r] =
// src[r·srcStride+p] for r < 4, p < n. The full-length row reslices let
// the compiler drop every bounds check in the p loop; it is the
// reference the asm kernel is pinned against and the tail/fallback path.
func interleave4Go[T Element](dst []T, dstStride int, src []T, srcStride, n int) {
	if n == 0 {
		return
	}
	r0 := src[0:n:n]
	r1 := src[srcStride : srcStride+n : srcStride+n]
	r2 := src[2*srcStride : 2*srcStride+n : 2*srcStride+n]
	r3 := src[3*srcStride : 3*srcStride+n : 3*srcStride+n]
	o := 0
	for p := 0; p < n; p++ {
		d := dst[o : o+4 : o+4]
		d[0] = r0[p]
		d[1] = r1[p]
		d[2] = r2[p]
		d[3] = r3[p]
		o += dstStride
	}
}

// packInterleaveEdge handles a ragged strip (rows < dstStride live rows):
// live rows are interleaved with strided writes, the padding rows are
// zeroed. Only edge strips take this path, so it stays scalar.
func packInterleaveEdge[T Element](dst []T, dstStride int, src []T, srcStride, rows, n int) {
	for r := 0; r < rows; r++ {
		srow := src[r*srcStride : r*srcStride+n : r*srcStride+n]
		o := r
		for p := 0; p < n; p++ {
			dst[o] = srow[p]
			o += dstStride
		}
	}
	for r := rows; r < dstStride; r++ {
		o := r
		for p := 0; p < n; p++ {
			dst[o] = 0
			o += dstStride
		}
	}
}
