//go:build amd64

#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// CPUID leaf 1: ECX bit 12 = FMA, bit 27 = OSXSAVE, bit 28 = AVX.
// XGETBV(0): bits 1,2 = OS saves XMM+YMM state.
// CPUID leaf 7 subleaf 0: EBX bit 5 = AVX2.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $402657280, R8 // FMA | OSXSAVE | AVX = 1<<12 | 1<<27 | 1<<28
	CMPL R8, $402657280
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX         // XCR0: XMM (bit 1) and YMM (bit 2) state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $32, BX        // AVX2 = 1<<5
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func gemmKernel4x4FMA(c []float64, ldc int, ap, bp []float64, kc, mode int)
//
// 4×4 register tile: Y0..Y3 accumulate rows 0..3 of the tile. Each k step
// loads one B strip row (4 doubles, contiguous) and broadcasts the four A
// strip values, issuing four VFMADD231PD. The k loop is unrolled ×2. At
// the end the tile is stored to c with row stride ldc according to mode
// (0 = overwrite, 1 = add, 2 = subtract).
TEXT ·gemmKernel4x4FMA(SB), NOSPLIT, $0-96
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), DX
	MOVQ ap_base+32(FP), SI
	MOVQ bp_base+56(FP), BX
	MOVQ kc+80(FP), CX
	MOVQ mode+88(FP), R8

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	MOVQ CX, R9
	SHRQ $1, R9         // R9 = kc/2 (unrolled pairs)
	JZ   tail

pair:
	VMOVUPD      (BX), Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD 8(SI), Y6
	VFMADD231PD  Y4, Y6, Y1
	VBROADCASTSD 16(SI), Y7
	VFMADD231PD  Y4, Y7, Y2
	VBROADCASTSD 24(SI), Y8
	VFMADD231PD  Y4, Y8, Y3

	VMOVUPD      32(BX), Y9
	VBROADCASTSD 32(SI), Y10
	VFMADD231PD  Y9, Y10, Y0
	VBROADCASTSD 40(SI), Y11
	VFMADD231PD  Y9, Y11, Y1
	VBROADCASTSD 48(SI), Y12
	VFMADD231PD  Y9, Y12, Y2
	VBROADCASTSD 56(SI), Y13
	VFMADD231PD  Y9, Y13, Y3

	ADDQ $64, SI
	ADDQ $64, BX
	DECQ R9
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   store
	VMOVUPD      (BX), Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD 8(SI), Y6
	VFMADD231PD  Y4, Y6, Y1
	VBROADCASTSD 16(SI), Y7
	VFMADD231PD  Y4, Y7, Y2
	VBROADCASTSD 24(SI), Y8
	VFMADD231PD  Y4, Y8, Y3

store:
	SHLQ $3, DX         // ldc in bytes
	CMPQ R8, $1
	JEQ  madd
	CMPQ R8, $2
	JEQ  msub

	// mode 0: overwrite
	VMOVUPD Y0, (DI)
	ADDQ    DX, DI
	VMOVUPD Y1, (DI)
	ADDQ    DX, DI
	VMOVUPD Y2, (DI)
	ADDQ    DX, DI
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

madd:
	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y3, Y3
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

msub:
	VMOVUPD (DI), Y4
	VSUBPD  Y0, Y4, Y4
	VMOVUPD Y4, (DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y5
	VSUBPD  Y1, Y5, Y5
	VMOVUPD Y5, (DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y6
	VSUBPD  Y2, Y6, Y6
	VMOVUPD Y6, (DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y7
	VSUBPD  Y3, Y7, Y7
	VMOVUPD Y7, (DI)
	VZEROUPPER
	RET
