package mat

import (
	"math/rand"
	"testing"
)

// TestQRSmallMatchesBlockedBitwise pins the fused small-panel QR against
// the general transposed path: for n ≤ qrPanel the blocked path runs no
// CGS2 block and its MGS loops visit elements in the same index order as
// qrSmall's column loops, so the factors must agree bit for bit. This is
// what lets the small path slot under QRFactorOn without perturbing the
// incremental-SVD scenario numerics.
func TestQRSmallMatchesBlockedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, c := range []struct{ m, n int }{
		{200, 8},  // the streaming residual shape
		{200, 16}, // at the qrSmallMax boundary
		{17, 16},  // nearly square
		{9, 1},    // single column
	} {
		a := randDense(rng, c.m, c.n)
		small := qrSmall(nil, a)
		blocked := qrBlocked(nil, nil, a)
		for i := range small.Q.Data {
			if small.Q.Data[i] != blocked.Q.Data[i] {
				t.Fatalf("%dx%d: Q element %d: small %v vs blocked %v",
					c.m, c.n, i, small.Q.Data[i], blocked.Q.Data[i])
			}
		}
		for i := range small.R.Data {
			if small.R.Data[i] != blocked.R.Data[i] {
				t.Fatalf("%dx%d: R element %d: small %v vs blocked %v",
					c.m, c.n, i, small.R.Data[i], blocked.R.Data[i])
			}
		}
	}
}

// TestQRSmallStridedInput feeds the small path a column view, as the
// streaming pipeline does, and checks the factors match the packed clone's.
func TestQRSmallStridedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	parent := randDense(rng, 100, 40)
	v := ColsView(parent, 5, 13) // 100×8 at stride 40
	got := QRFactor(v)
	want := QRFactor(v.Clone())
	for i := range want.Q.Data {
		if got.Q.Data[i] != want.Q.Data[i] {
			t.Fatalf("Q element %d differs on strided input", i)
		}
	}
	for i := range want.R.Data {
		if got.R.Data[i] != want.R.Data[i] {
			t.Fatalf("R element %d differs on strided input", i)
		}
	}
}
